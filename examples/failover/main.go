// Failover: storage nodes die and come back while the filesystem keeps
// working — the reliability story that motivates putting the directory
// hierarchy inside the object cloud in the first place (paper §1: index
// clouds are where metadata gets lost; object clouds already know how to
// replicate and repair).
//
// The demo writes through failures of replica nodes, shows reads falling
// through to surviving replicas and writes diverting to handoff nodes,
// then heals the cluster with an anti-entropy repair pass.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/h2cloud/h2cloud"
)

func main() {
	ctx := context.Background()
	cloud := h2cloud.NewSwiftLikeCluster()
	mw, err := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
	if err != nil {
		log.Fatal(err)
	}
	must(mw.CreateAccount(ctx, "alice"))
	fs := mw.FS("alice")
	must(fs.Mkdir(ctx, "/docs"))
	must(fs.WriteFile(ctx, "/docs/precious.txt", []byte("written before the outage")))
	must(mw.FlushAll(ctx))

	fmt.Println("healthy cluster: 8 nodes, 3 replicas per object")

	// Kill two nodes. Some objects now have only one live primary; new
	// writes to affected partitions divert to handoff nodes.
	cloud.SetNodeDown(0, true)
	cloud.SetNodeDown(1, true)
	fmt.Println("nodes 0 and 1 are down")

	data, err := fs.ReadFile(ctx, "/docs/precious.txt")
	must(err)
	fmt.Printf("read during outage: %q (served by a surviving replica)\n", data)

	must(fs.WriteFile(ctx, "/docs/during-outage.txt", []byte("still accepting writes")))
	must(fs.Mkdir(ctx, "/docs/new-dir"))
	entries, err := fs.List(ctx, "/docs", false)
	must(err)
	fmt.Printf("directory operations during outage: LIST sees %d entries\n", len(entries))

	// Nodes return; one anti-entropy pass restores full replication and
	// reclaims the diverted handoff copies.
	cloud.SetNodeDown(0, false)
	cloud.SetNodeDown(1, false)
	repaired := cloud.Repair(ctx)
	fmt.Printf("nodes recovered; repair wrote/reclaimed %d replica copies\n", repaired)

	data, err = fs.ReadFile(ctx, "/docs/during-outage.txt")
	must(err)
	fmt.Printf("post-repair read: %q\n", data)

	// Every object is back to full replication.
	must(mw.FlushAll(ctx))
	if n := cloud.Repair(ctx); n != 0 {
		log.Fatalf("cluster not converged: second repair did %d writes", n)
	}
	fmt.Println("second repair pass found nothing to do — cluster fully healed ✔")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
