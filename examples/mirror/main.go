// Mirror: back a local directory tree into H2Cloud and read it back —
// the cloud-storage-client scenario (Dropbox-style sync) that motivates
// the paper's §1.
//
// Usage:
//
//	go run ./examples/mirror [dir]
//
// Walks the local directory (default "."), uploads every file through the
// filesystem API, prints what was mirrored, then verifies a round trip
// and demonstrates the quick O(1) relative-access method on one of the
// mirrored directories.
package main

import (
	"context"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/h2cloud/h2cloud"
)

const maxFileSize = 1 << 20 // skip local files beyond 1 MiB

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	ctx := context.Background()
	cloud := h2cloud.NewSwiftLikeCluster()
	mw, err := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := mw.CreateAccount(ctx, "mirror"); err != nil {
		log.Fatal(err)
	}
	remote := mw.FS("mirror")

	files, dirs := 0, 0
	var firstFile string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		// Skip dotfiles and anything unspeakable in a demo.
		if strings.HasPrefix(d.Name(), ".") {
			if d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		remotePath := "/" + filepath.ToSlash(rel)
		if d.IsDir() {
			dirs++
			return remote.Mkdir(ctx, remotePath)
		}
		info, err := d.Info()
		if err != nil || info.Size() > maxFileSize || !info.Mode().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files++
		if firstFile == "" {
			firstFile = remotePath
		}
		return remote.WriteFile(ctx, remotePath, data)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mirrored %d directories and %d files from %s\n", dirs, files, root)

	// Round-trip verification.
	if firstFile != "" {
		local, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(firstFile, "/"))))
		if err != nil {
			log.Fatal(err)
		}
		back, err := remote.ReadFile(ctx, firstFile)
		if err != nil {
			log.Fatal(err)
		}
		if string(local) != string(back) {
			log.Fatalf("round trip mismatch for %s", firstFile)
		}
		fmt.Printf("verified round trip of %s (%d bytes)\n", firstFile, len(back))

		// Quick method (§3.2): resolve the parent directory's namespace
		// once, then address its children in O(1) without walking.
		dir := firstFile[:strings.LastIndexByte(firstFile, '/')]
		if dir == "" {
			dir = "/"
		}
		ns, err := mw.ResolveNS(ctx, "mirror", dir)
		if err != nil {
			log.Fatal(err)
		}
		name := firstFile[strings.LastIndexByte(firstFile, '/')+1:]
		quick, _, err := mw.AccessRelative(ctx, "mirror", ns+"::"+name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("quick relative access %s::%s -> %d bytes (single object GET)\n", ns, name, len(quick))
	}

	if err := mw.FlushAll(ctx); err != nil {
		log.Fatal(err)
	}
	st := cloud.Stats()
	fmt.Printf("cloud: %d objects, %d bytes — including every directory and NameRing\n",
		st.Objects, st.Bytes)
}
