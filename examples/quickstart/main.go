// Quickstart: host a filesystem in an object storage cloud with H2Cloud.
//
// Builds the whole stack in-process — a replicated object storage cloud,
// one H2Middleware — then exercises the filesystem API: directories,
// files, LIST, RENAME, MOVE, COPY. Everything, including the directory
// hierarchy itself, lives as objects on the cloud's consistent hashing
// ring: no separate index service exists anywhere in this program.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/h2cloud/h2cloud"
)

func main() {
	ctx := context.Background()

	// 1. An object storage cloud: 8 in-process storage nodes, 3 replicas
	// per object, Swift-like placement.
	cloud := h2cloud.NewSwiftLikeCluster()

	// 2. An H2Middleware mapping filesystem calls onto PUT/GET/DELETE.
	mw, err := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1, EagerGC: true})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A user account: one root namespace plus its NameRing.
	if err := mw.CreateAccount(ctx, "alice"); err != nil {
		log.Fatal(err)
	}
	fs := mw.FS("alice")

	// 4. A small filesystem, mirroring the paper's Figure 4 example.
	must(fs.Mkdir(ctx, "/bin"))
	must(fs.Mkdir(ctx, "/home"))
	must(fs.Mkdir(ctx, "/home/ubuntu"))
	must(fs.WriteFile(ctx, "/bin/cat", []byte("#!ELF cat")))
	must(fs.WriteFile(ctx, "/bin/bash", []byte("#!ELF bash")))
	must(fs.WriteFile(ctx, "/bin/nc", []byte("#!ELF nc")))
	must(fs.WriteFile(ctx, "/home/ubuntu/file1", []byte("hello, hierarchical hash")))

	entries, err := fs.List(ctx, "/bin", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LIST /bin (detailed):")
	for _, e := range entries {
		fmt.Printf("  %-6s %3d bytes\n", e.Name, e.Size)
	}

	// 5. Directory operations are O(1) NameRing updates: rename /home to
	// /users, and note the file is still reachable — its object never
	// moved, because its key is relative to the directory's namespace.
	must(h2cloud.Rename(ctx, fs, "/home", "users"))
	data, err := fs.ReadFile(ctx, "/users/ubuntu/file1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter RENAME /home -> /users, file1 reads: %q\n", data)

	// 6. COPY duplicates content; MOVE only re-points.
	must(fs.Copy(ctx, "/bin", "/bin-backup"))
	must(fs.Mkdir(ctx, "/archive"))
	must(fs.Move(ctx, "/bin-backup", "/archive/bin"))
	info, err := fs.Stat(ctx, "/archive/bin/cat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("copied+moved /archive/bin/cat: %d bytes\n", info.Size)

	// 7. Everything above is objects in the cloud — look for yourself.
	must(mw.FlushAll(ctx)) // fold outstanding NameRing patches
	st := cloud.Stats()
	fmt.Printf("\ncloud now holds %d objects (%d bytes): files, directories and NameRings alike\n",
		st.Objects, st.Bytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
