// Gossipdemo: three H2Middlewares over one cloud, concurrent updates to a
// shared directory, and eventual convergence through the NameRing
// maintenance protocol (paper §3.3.2).
//
// Each middleware submits patches for its own writes, the Background
// Merger folds them into the NameRing objects, and gossip advertisements
// make every node fetch and merge its peers' updates. The demo prints
// each node's view before and after the gossip round, showing the
// asynchronous protocol converging without locks or a coordinator.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"github.com/h2cloud/h2cloud"
)

func main() {
	ctx := context.Background()
	cloud := h2cloud.NewSwiftLikeCluster()
	bus := h2cloud.NewGossipBus()

	mws := make([]*h2cloud.Middleware, 3)
	for i := range mws {
		mw, err := h2cloud.NewMiddleware(h2cloud.Config{
			Store: cloud, Node: i + 1, Gossip: bus,
		})
		if err != nil {
			log.Fatal(err)
		}
		mws[i] = mw
	}

	if err := mws[0].CreateAccount(ctx, "team"); err != nil {
		log.Fatal(err)
	}
	if err := mws[0].FS("team").Mkdir(ctx, "/shared"); err != nil {
		log.Fatal(err)
	}
	if err := mws[0].FlushAll(ctx); err != nil {
		log.Fatal(err)
	}
	bus.Pump(ctx) // every node now knows /shared

	// Concurrent writers: each middleware drops 3 files into the shared
	// directory at the same time.
	var wg sync.WaitGroup
	for i, mw := range mws {
		wg.Add(1)
		go func(i int, mw *h2cloud.Middleware) {
			defer wg.Done()
			fs := mw.FS("team")
			for j := 0; j < 3; j++ {
				path := fmt.Sprintf("/shared/node%d-file%d", i+1, j)
				if err := fs.WriteFile(ctx, path, []byte("x")); err != nil {
					log.Printf("node %d: %v", i+1, err)
				}
			}
		}(i, mw)
	}
	wg.Wait()

	show := func(stage string) {
		fmt.Printf("%s:\n", stage)
		for _, mw := range mws {
			entries, err := mw.FS("team").List(ctx, "/shared", false)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  node %d sees %d entries\n", mw.Node(), len(entries))
		}
	}
	show("before maintenance (each node has only its own patches)")

	// Background Merger + gossip: flush everyone, deliver advertisements,
	// and run one repair round for read-modify-write races.
	for round := 1; round <= 2; round++ {
		for _, mw := range mws {
			if err := mw.FlushAll(ctx); err != nil {
				log.Fatal(err)
			}
		}
		delivered := bus.Pump(ctx)
		fmt.Printf("gossip round %d: %d messages delivered\n", round, delivered)
	}
	show("after maintenance")

	// Verify: all three local views are identical and complete.
	want := 9
	for _, mw := range mws {
		entries, err := mw.FS("team").List(ctx, "/shared", false)
		if err != nil {
			log.Fatal(err)
		}
		if len(entries) != want {
			log.Fatalf("node %d converged to %d entries, want %d", mw.Node(), len(entries), want)
		}
	}
	fmt.Println("all middlewares converged to the same 9-entry NameRing ✔")
}
