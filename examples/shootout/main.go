// Shootout: run the same synthetic user filesystem and operation trace
// over every Table 1 data structure — Compressed Snapshot, CAS, plain
// Consistent Hash, Swift's CH+DB, Single Index Server, Static Partition,
// Dynamic Partition and H2Cloud — and print their simulated operation
// times side by side.
//
// This is the paper's Table 1 brought to life on a realistic mixed
// workload instead of single-operation microbenchmarks.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/h2cloud/h2cloud/internal/bench"
	"github.com/h2cloud/h2cloud/internal/vclock"
	"github.com/h2cloud/h2cloud/internal/workload"
)

func main() {
	// One light user's filesystem plus a 500-operation interactive trace.
	tree := workload.Generate(workload.LightUser(2026))
	ops := workload.GenerateOps(tree, 500, 7, nil)
	st := tree.Stats()
	fmt.Printf("workload: %d dirs, %d files (max depth %d, max %d files/dir), %d ops\n\n",
		st.Dirs, st.Files, st.MaxDepth, st.MaxPerDir, len(ops))

	fmt.Printf("%-22s %14s %14s %12s\n", "system", "populate", "500-op trace", "per op")
	for _, kind := range bench.Kinds {
		sys, err := bench.NewSystem(kind)
		if err != nil {
			log.Fatal(err)
		}
		popTracker := vclock.NewTracker()
		popCtx := vclock.With(context.Background(), popTracker)
		if err := tree.Populate(popCtx, sys.FS, 256); err != nil {
			log.Fatalf("%s populate: %v", kind, err)
		}
		opTracker := vclock.NewTracker()
		opCtx := vclock.With(context.Background(), opTracker)
		if err := workload.Replay(opCtx, sys.FS, ops); err != nil {
			log.Fatalf("%s replay: %v", kind, err)
		}
		perOp := opTracker.Elapsed() / time.Duration(len(ops))
		fmt.Printf("%-22s %14s %14s %12s\n",
			bench.DisplayName(kind),
			popTracker.Elapsed().Round(time.Millisecond),
			opTracker.Elapsed().Round(time.Millisecond),
			perOp.Round(100*time.Microsecond))
	}
	fmt.Println("\ntimes are simulated service time (virtual clock), excluding WAN RTT — the paper's metric")
}
