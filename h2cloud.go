// Package h2cloud maintains whole user filesystems — file content and
// directory hierarchy alike — inside a single flat object storage cloud,
// reproducing "H2Cloud: Maintaining the Whole Filesystem in an Object
// Storage Cloud" (ICPP 2018).
//
// The core idea is the Hierarchical Hash (H2) data structure: every
// directory is a namespace with a NameRing object listing its direct
// children, and directories, NameRings and files are all ordinary objects
// on one consistent-hashing ring. Directory operations become O(1)
// NameRing updates; no separate index cloud or database is needed.
//
// Quick start:
//
//	cloud := h2cloud.NewSwiftLikeCluster()
//	mw, _ := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
//	_ = mw.CreateAccount(ctx, "alice")
//	fs := mw.FS("alice")
//	_ = fs.Mkdir(ctx, "/photos")
//	_ = fs.WriteFile(ctx, "/photos/cat.jpg", data)
//	entries, _ := fs.List(ctx, "/photos", true)
//
// The package root re-exports the stable surface; implementation lives
// under internal/ (see DESIGN.md for the system inventory and the
// experiment index reproducing the paper's evaluation).
package h2cloud

import (
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/httpapi"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// Core H2Cloud types.
type (
	// Middleware is one H2Middleware instance: the component translating
	// POSIX-like filesystem calls into flat object operations.
	Middleware = h2fs.Middleware
	// Config describes a Middleware.
	Config = h2fs.Config
	// AccountFS is one account's filesystem view; it implements
	// FileSystem.
	AccountFS = h2fs.AccountFS
)

// Filesystem contract shared by H2Cloud and the baseline systems.
type (
	// FileSystem is the POSIX-like operation set of the paper's §5.
	FileSystem = fsapi.FileSystem
	// EntryInfo describes one file or directory.
	EntryInfo = fsapi.EntryInfo
)

// Object storage cloud.
type (
	// ObjectStore is the flat PUT/GET/DELETE contract.
	ObjectStore = objstore.Store
	// ObjectInfo is stored-object metadata.
	ObjectInfo = objstore.ObjectInfo
	// Cluster is the in-process replicated object storage cloud.
	Cluster = cluster.Cluster
	// ClusterConfig configures a Cluster.
	ClusterConfig = cluster.Config
	// CostProfile prices simulated storage primitives.
	CostProfile = cluster.CostProfile
)

// Gossip transport for multi-middleware deployments.
type (
	// GossipBus is the in-process gossip transport (§3.3.2 phase 2).
	GossipBus = gossip.Bus
)

// Observability.
type (
	// MetricsRegistry collects per-op latency and robustness counters;
	// pass one to Config.Metrics to light up /v1/stats counters and the
	// GC-queue gauge.
	MetricsRegistry = metrics.Registry
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// HTTP web API (the paper's Inbound API, §4.3).
type (
	// Server exposes a Middleware over HTTP.
	Server = httpapi.Server
	// Client talks to a Server; Client.FS returns a FileSystem.
	Client = httpapi.Client
	// ClientFS is one account's filesystem view over the HTTP API.
	ClientFS = httpapi.ClientFS
)

// Typed filesystem errors.
var (
	ErrNotFound    = fsapi.ErrNotFound
	ErrExists      = fsapi.ErrExists
	ErrNotDir      = fsapi.ErrNotDir
	ErrIsDir       = fsapi.ErrIsDir
	ErrInvalidPath = fsapi.ErrInvalidPath
)

// NewMiddleware builds an H2Middleware over an object store.
func NewMiddleware(cfg Config) (*Middleware, error) { return h2fs.New(cfg) }

// NewCluster builds an in-process object storage cloud.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewSwiftLikeCluster builds the paper-calibrated default cloud: 8 nodes
// in 4 zones, 3 replicas per object, Swift-like service times.
func NewSwiftLikeCluster() *Cluster { return cluster.NewSwiftLike() }

// SwiftProfile returns the paper-calibrated cost profile.
func SwiftProfile() CostProfile { return cluster.SwiftProfile() }

// ZeroProfile returns a cost profile that charges no virtual time (for
// wall-clock benchmarking).
func ZeroProfile() CostProfile { return cluster.ZeroProfile() }

// NewGossipBus builds an in-process gossip transport connecting several
// middlewares.
func NewGossipBus() *GossipBus { return gossip.NewBus() }

// NewServer exposes a middleware over HTTP.
func NewServer(mw *Middleware) *Server { return httpapi.NewServer(mw) }

// NewClient connects to an H2Cloud HTTP server.
func NewClient(base string) *Client { return httpapi.NewClient(base, nil) }

// Rename renames a file or directory in place (the MOVE special case).
var Rename = fsapi.Rename
