// Package pathdb implements the per-account file-path database OpenStack
// Swift pairs with its consistent-hash object layer (paper §2, Figure 3).
//
// Swift keeps one SQL-style database per account in which every file is a
// record keyed by its full path; binary search over the ordered records
// reduces LIST from O(N) to O(m·logN) and COPY from O(N) to O(n+logN).
// This package reproduces that component: an ordered index with O(log n)
// point operations, ordered prefix scans, and record-level virtual-time
// accounting so the baseline exhibits the same cost shape. It is exactly
// the "secondary sub-system" H2 is designed to eliminate.
package pathdb

import (
	"context"
	"math"
	"strings"
	"time"

	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Record is one file-path row.
type Record struct {
	Path    string
	Size    int64
	IsDir   bool
	ModTime time.Time
}

// Costs prices the DB's primitive steps for virtual-time accounting. The
// zero value charges nothing.
type Costs struct {
	Probe time.Duration // one binary-search probe (charged log2(n) times per search)
	Scan  time.Duration // one record visited during an ordered scan
	Write time.Duration // one record insert or delete
}

// DB is one account's ordered file-path index. It is not safe for
// concurrent use; callers (the Swift baseline's proxy) serialize access
// per account, matching SQLite's writer model.
type DB struct {
	sl    *skipList[Record]
	costs Costs
}

// New returns an empty file-path DB with the given step costs.
func New(costs Costs) *DB {
	return &DB{sl: newSkipList[Record](1), costs: costs}
}

// Len reports the number of records.
func (db *DB) Len() int { return db.sl.len() }

func (db *DB) chargeSearch(ctx context.Context) {
	if db.costs.Probe <= 0 {
		return
	}
	n := db.sl.len()
	probes := 1
	if n > 1 {
		probes = int(math.Ceil(math.Log2(float64(n))))
	}
	vclock.Charge(ctx, time.Duration(probes)*db.costs.Probe)
}

// Insert adds or replaces the record for rec.Path.
func (db *DB) Insert(ctx context.Context, rec Record) {
	db.chargeSearch(ctx)
	vclock.Charge(ctx, db.costs.Write)
	db.sl.set(rec.Path, rec)
}

// Delete removes the record for path, reporting whether it existed.
func (db *DB) Delete(ctx context.Context, path string) bool {
	db.chargeSearch(ctx)
	vclock.Charge(ctx, db.costs.Write)
	return db.sl.del(path)
}

// Get looks up one record by full path (a binary search, O(log n)).
func (db *DB) Get(ctx context.Context, path string) (Record, bool) {
	db.chargeSearch(ctx)
	return db.sl.get(path)
}

// ScanPrefix visits, in path order, every record whose path starts with
// prefix, until fn returns false. One search locates the range start; each
// visited record charges one scan step.
func (db *DB) ScanPrefix(ctx context.Context, prefix string, fn func(Record) bool) {
	db.chargeSearch(ctx)
	// Scan steps are charged in one batch after the walk — the same total
	// as charging per record, without a vclock call per row.
	visited := 0
	for n := db.sl.seek(prefix); n != nil && strings.HasPrefix(n.key, prefix); n = n.next[0] {
		visited++
		if !fn(n.val) {
			break
		}
	}
	vclock.Charge(ctx, time.Duration(visited)*db.costs.Scan)
}

// ScanRange visits records with from <= path < to in order.
func (db *DB) ScanRange(ctx context.Context, from, to string, fn func(Record) bool) {
	db.chargeSearch(ctx)
	visited := 0
	for n := db.sl.seek(from); n != nil && n.key < to; n = n.next[0] {
		visited++
		if !fn(n.val) {
			break
		}
	}
	vclock.Charge(ctx, time.Duration(visited)*db.costs.Scan)
}
