package pathdb

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/h2cloud/h2cloud/internal/vclock"
)

func TestInsertGetDelete(t *testing.T) {
	db := New(Costs{})
	ctx := context.Background()
	db.Insert(ctx, Record{Path: "/a/b", Size: 10})
	rec, ok := db.Get(ctx, "/a/b")
	if !ok || rec.Size != 10 {
		t.Fatalf("Get = %+v, %v", rec, ok)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	if !db.Delete(ctx, "/a/b") {
		t.Fatal("Delete returned false")
	}
	if _, ok := db.Get(ctx, "/a/b"); ok {
		t.Fatal("record survived delete")
	}
	if db.Delete(ctx, "/a/b") {
		t.Fatal("double delete returned true")
	}
}

func TestInsertReplaces(t *testing.T) {
	db := New(Costs{})
	ctx := context.Background()
	db.Insert(ctx, Record{Path: "/x", Size: 1})
	db.Insert(ctx, Record{Path: "/x", Size: 2})
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	rec, _ := db.Get(ctx, "/x")
	if rec.Size != 2 {
		t.Fatalf("Size = %d, want 2", rec.Size)
	}
}

func TestScanPrefixOrderedAndScoped(t *testing.T) {
	db := New(Costs{})
	ctx := context.Background()
	paths := []string{"/a/1", "/a/2", "/a/sub/3", "/ab/4", "/b/5"}
	for _, p := range paths {
		db.Insert(ctx, Record{Path: p})
	}
	var got []string
	db.ScanPrefix(ctx, "/a/", func(r Record) bool {
		got = append(got, r.Path)
		return true
	})
	want := []string{"/a/1", "/a/2", "/a/sub/3"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

func TestScanPrefixEarlyStop(t *testing.T) {
	db := New(Costs{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		db.Insert(ctx, Record{Path: fmt.Sprintf("/d/%02d", i)})
	}
	n := 0
	db.ScanPrefix(ctx, "/d/", func(Record) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d records, want 3", n)
	}
}

func TestScanRange(t *testing.T) {
	db := New(Costs{})
	ctx := context.Background()
	for _, p := range []string{"a", "b", "c", "d"} {
		db.Insert(ctx, Record{Path: p})
	}
	var got []string
	db.ScanRange(ctx, "b", "d", func(r Record) bool {
		got = append(got, r.Path)
		return true
	})
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("range scan = %v", got)
	}
}

func TestCostAccounting(t *testing.T) {
	costs := Costs{Probe: time.Millisecond, Scan: time.Microsecond, Write: 2 * time.Millisecond}
	db := New(costs)
	bg := context.Background()
	for i := 0; i < 1024; i++ {
		db.Insert(bg, Record{Path: fmt.Sprintf("/f/%04d", i)})
	}
	tr := vclock.NewTracker()
	ctx := vclock.With(bg, tr)
	db.Get(ctx, "/f/0000")
	// 1024 records -> 10 probes.
	if got, want := tr.Elapsed(), 10*time.Millisecond; got != want {
		t.Fatalf("Get charged %v, want %v", got, want)
	}
	tr.Reset()
	count := 0
	db.ScanPrefix(ctx, "/f/", func(Record) bool { count++; return true })
	want := 10*time.Millisecond + 1024*time.Microsecond
	if got := tr.Elapsed(); got != want {
		t.Fatalf("Scan charged %v, want %v (visited %d)", got, want, count)
	}
}

// Property: the DB agrees with a reference map + sort under random
// operation sequences.
func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := New(Costs{})
	ref := map[string]Record{}
	ctx := context.Background()
	for i := 0; i < 5000; i++ {
		p := fmt.Sprintf("/p/%03d", rng.Intn(500))
		switch rng.Intn(3) {
		case 0, 1:
			rec := Record{Path: p, Size: int64(i)}
			db.Insert(ctx, rec)
			ref[p] = rec
		case 2:
			got := db.Delete(ctx, p)
			_, want := ref[p]
			if got != want {
				t.Fatalf("Delete(%q) = %v, want %v", p, got, want)
			}
			delete(ref, p)
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(ref))
	}
	var wantPaths []string
	for p := range ref {
		wantPaths = append(wantPaths, p)
	}
	sort.Strings(wantPaths)
	var gotPaths []string
	db.ScanPrefix(ctx, "/p/", func(r Record) bool {
		gotPaths = append(gotPaths, r.Path)
		if ref[r.Path].Size != r.Size {
			t.Fatalf("record %q size %d, want %d", r.Path, r.Size, ref[r.Path].Size)
		}
		return true
	})
	if len(gotPaths) != len(wantPaths) {
		t.Fatalf("scan found %d, want %d", len(gotPaths), len(wantPaths))
	}
	for i := range wantPaths {
		if gotPaths[i] != wantPaths[i] {
			t.Fatalf("order mismatch at %d: %q vs %q", i, gotPaths[i], wantPaths[i])
		}
	}
}

// Property: inserted keys are always retrievable with their latest value.
func TestQuickInsertGet(t *testing.T) {
	db := New(Costs{})
	ctx := context.Background()
	f := func(path string, size int64) bool {
		db.Insert(ctx, Record{Path: path, Size: size})
		rec, ok := db.Get(ctx, path)
		return ok && rec.Size == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDBInsert(b *testing.B) {
	db := New(Costs{})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Insert(ctx, Record{Path: fmt.Sprintf("/bench/%09d", i)})
	}
}

// BenchmarkDBScanPrefix is the detailed-LIST shape: one ordered range
// scan visiting 1000 records per op out of a 100k-record DB.
func BenchmarkDBScanPrefix(b *testing.B) {
	db := New(Costs{})
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		for j := 0; j < 1000; j++ {
			db.Insert(ctx, Record{Path: fmt.Sprintf("/d%03d/%06d", i, j)})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		db.ScanPrefix(ctx, fmt.Sprintf("/d%03d/", i%100), func(Record) bool { n++; return true })
		if n != 1000 {
			b.Fatalf("visited %d records", n)
		}
	}
}

// BenchmarkDBScanPrefixCharged is the same scan with a vclock tracker
// attached, the way the Swift baseline's detailed LIST actually runs it.
func BenchmarkDBScanPrefixCharged(b *testing.B) {
	db := New(Costs{Probe: time.Microsecond, Scan: time.Microsecond, Write: time.Microsecond})
	bgCtx := context.Background()
	for i := 0; i < 100; i++ {
		for j := 0; j < 1000; j++ {
			db.Insert(bgCtx, Record{Path: fmt.Sprintf("/d%03d/%06d", i, j)})
		}
	}
	ctx := vclock.With(bgCtx, vclock.NewTracker())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ScanPrefix(ctx, fmt.Sprintf("/d%03d/", i%100), func(Record) bool { return true })
	}
}

func BenchmarkDBGet(b *testing.B) {
	db := New(Costs{})
	ctx := context.Background()
	for i := 0; i < 100000; i++ {
		db.Insert(ctx, Record{Path: fmt.Sprintf("/bench/%09d", i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get(ctx, fmt.Sprintf("/bench/%09d", i%100000))
	}
}
