package pathdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestSkipListSetGetDel(t *testing.T) {
	sl := newSkipList[int](1)
	if _, ok := sl.get("missing"); ok {
		t.Fatal("empty list returned a value")
	}
	if !sl.set("a", 1) {
		t.Fatal("first set not reported as insert")
	}
	if sl.set("a", 2) {
		t.Fatal("overwrite reported as insert")
	}
	if v, ok := sl.get("a"); !ok || v != 2 {
		t.Fatalf("get = %d, %v", v, ok)
	}
	if sl.len() != 1 {
		t.Fatalf("len = %d", sl.len())
	}
	if !sl.del("a") {
		t.Fatal("del existing returned false")
	}
	if sl.del("a") {
		t.Fatal("double del returned true")
	}
	if sl.len() != 0 {
		t.Fatalf("len after del = %d", sl.len())
	}
}

func TestSkipListOrderedIteration(t *testing.T) {
	sl := newSkipList[int](2)
	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for i, k := range keys {
		sl.set(k, i)
	}
	var got []string
	for n := sl.seek(""); n != nil; n = n.next[0] {
		got = append(got, n.key)
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("iterated %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSkipListSeek(t *testing.T) {
	sl := newSkipList[int](3)
	for _, k := range []string{"b", "d", "f"} {
		sl.set(k, 0)
	}
	cases := map[string]string{"a": "b", "b": "b", "c": "d", "f": "f", "g": ""}
	for from, want := range cases {
		n := sl.seek(from)
		got := ""
		if n != nil {
			got = n.key
		}
		if got != want {
			t.Fatalf("seek(%q) = %q, want %q", from, got, want)
		}
	}
}

func TestSkipListLevelShrinksAfterDeletes(t *testing.T) {
	sl := newSkipList[int](4)
	for i := 0; i < 2000; i++ {
		sl.set(fmt.Sprintf("k%06d", i), i)
	}
	grown := sl.level
	if grown < 2 {
		t.Fatalf("level did not grow: %d", grown)
	}
	for i := 0; i < 2000; i++ {
		sl.del(fmt.Sprintf("k%06d", i))
	}
	if sl.level != 1 {
		t.Fatalf("level after emptying = %d, want 1", sl.level)
	}
	if sl.len() != 0 {
		t.Fatalf("len = %d", sl.len())
	}
}

func TestSkipListRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sl := newSkipList[int](5)
	ref := map[string]int{}
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(400))
		switch rng.Intn(3) {
		case 0, 1:
			insertedRef := false
			if _, ok := ref[k]; !ok {
				insertedRef = true
			}
			inserted := sl.set(k, i)
			if inserted != insertedRef {
				t.Fatalf("set(%q) insert=%v, ref=%v", k, inserted, insertedRef)
			}
			ref[k] = i
		case 2:
			_, had := ref[k]
			if sl.del(k) != had {
				t.Fatalf("del(%q) disagrees with reference", k)
			}
			delete(ref, k)
		}
	}
	if sl.len() != len(ref) {
		t.Fatalf("len = %d, ref %d", sl.len(), len(ref))
	}
	for k, v := range ref {
		got, ok := sl.get(k)
		if !ok || got != v {
			t.Fatalf("get(%q) = %d,%v want %d", k, got, ok, v)
		}
	}
}
