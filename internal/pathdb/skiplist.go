package pathdb

import "math/rand"

// skipList is an ordered string-keyed map used as the storage engine of
// the file-path DB. A skip list gives O(log n) expected search/insert/
// delete plus ordered iteration — the same access profile as the SQLite
// B-tree OpenStack Swift uses per account, which is all the paper's
// complexity analysis relies on.
type skipList[V any] struct {
	head   *slNode[V]
	level  int
	length int
	rng    *rand.Rand
	// prev is the write-path scratch for findPath. Keeping it on the
	// struct avoids a 32-pointer allocation per set/del; the list is
	// single-writer (see DB's concurrency contract), so reuse is safe.
	prev [slMaxLevel]*slNode[V]
}

type slNode[V any] struct {
	key  string
	val  V
	next []*slNode[V]
}

const slMaxLevel = 32

func newSkipList[V any](seed int64) *skipList[V] {
	return &skipList[V]{
		head:  &slNode[V]{next: make([]*slNode[V], slMaxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (s *skipList[V]) randomLevel() int {
	lvl := 1
	for lvl < slMaxLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// findPath fills prev with the rightmost node before key at every level and
// returns the candidate node (which may or may not match key).
func (s *skipList[V]) findPath(key string, prev []*slNode[V]) *slNode[V] {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		if prev != nil {
			prev[i] = x
		}
	}
	return x.next[0]
}

// get returns the value stored under key. probes reports the number of
// comparison steps taken, used for cost accounting.
func (s *skipList[V]) get(key string) (val V, ok bool) {
	x := s.findPath(key, nil)
	if x != nil && x.key == key {
		return x.val, true
	}
	return val, false
}

// set inserts or replaces the value under key and reports whether the key
// was newly inserted.
func (s *skipList[V]) set(key string, val V) bool {
	prev := s.prev[:]
	for i := s.level; i < slMaxLevel; i++ {
		prev[i] = s.head
	}
	x := s.findPath(key, prev)
	if x != nil && x.key == key {
		x.val = val
		return false
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		s.level = lvl
	}
	n := &slNode[V]{key: key, val: val, next: make([]*slNode[V], lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	s.length++
	return true
}

// del removes key and reports whether it was present.
func (s *skipList[V]) del(key string) bool {
	prev := s.prev[:]
	for i := s.level; i < slMaxLevel; i++ {
		prev[i] = s.head
	}
	x := s.findPath(key, prev)
	if x == nil || x.key != key {
		return false
	}
	for i := 0; i < len(x.next); i++ {
		if prev[i].next[i] == x {
			prev[i].next[i] = x.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.length--
	return true
}

// seek returns the first node with key >= from.
func (s *skipList[V]) seek(from string) *slNode[V] {
	return s.findPath(from, nil)
}

func (s *skipList[V]) len() int { return s.length }
