package ring

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func devs(n int) []Device {
	ds := make([]Device, n)
	for i := range ds {
		ds[i] = Device{ID: i, Zone: i % 4, Weight: 1}
	}
	return ds
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, devs(4)); err == nil {
		t.Error("partPower 0 accepted")
	}
	if _, err := New(25, 3, devs(4)); err == nil {
		t.Error("partPower 25 accepted")
	}
	if _, err := New(8, 0, devs(4)); err == nil {
		t.Error("replicas 0 accepted")
	}
	if _, err := New(8, 3, nil); !errors.Is(err, ErrNoDevices) {
		t.Error("empty device list accepted")
	}
	if _, err := New(8, 3, []Device{{ID: 1, Weight: -2}}); !errors.Is(err, ErrNoDevices) {
		t.Error("all-zero-weight device list accepted")
	}
	if _, err := New(8, 3, []Device{{ID: 1, Weight: 1}, {ID: 1, Weight: 1}}); err == nil {
		t.Error("duplicate device IDs accepted")
	}
}

func TestReplicasCappedAtDeviceCount(t *testing.T) {
	r, err := New(6, 5, devs(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReplicaCount(); got != 2 {
		t.Fatalf("ReplicaCount = %d, want 2", got)
	}
}

func TestPartitionDeterministicAndInRange(t *testing.T) {
	r, _ := New(10, 3, devs(8))
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("obj-%d", i)
		p := r.Partition(name)
		if p != r.Partition(name) {
			t.Fatal("Partition not deterministic")
		}
		if p >= uint32(r.PartitionCount()) {
			t.Fatalf("partition %d out of range", p)
		}
	}
}

func TestDevicesDistinctPerPartition(t *testing.T) {
	r, _ := New(8, 3, devs(8))
	for p := uint32(0); p < uint32(r.PartitionCount()); p++ {
		ds := r.PartitionDevices(p)
		if len(ds) != 3 {
			t.Fatalf("partition %d has %d replicas", p, len(ds))
		}
		seen := map[int]bool{}
		for _, d := range ds {
			if seen[d] {
				t.Fatalf("partition %d has duplicate device %d", p, d)
			}
			seen[d] = true
		}
	}
}

func TestZoneSpreadWhenPossible(t *testing.T) {
	// 6 devices in 3 zones, 3 replicas: every partition must span 3 zones.
	ds := []Device{
		{ID: 0, Zone: 0, Weight: 1}, {ID: 1, Zone: 0, Weight: 1},
		{ID: 2, Zone: 1, Weight: 1}, {ID: 3, Zone: 1, Weight: 1},
		{ID: 4, Zone: 2, Weight: 1}, {ID: 5, Zone: 2, Weight: 1},
	}
	r, _ := New(8, 3, ds)
	zoneOf := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2}
	for p := uint32(0); p < uint32(r.PartitionCount()); p++ {
		zones := map[int]bool{}
		for _, d := range r.PartitionDevices(p) {
			zones[zoneOf[d]] = true
		}
		if len(zones) != 3 {
			t.Fatalf("partition %d spans %d zones, want 3", p, len(zones))
		}
	}
}

func TestBalanceUniformWeights(t *testing.T) {
	r, _ := New(12, 3, devs(8))
	st := r.Stats()
	if st.MaxRatio > 1.05 {
		t.Fatalf("MaxRatio %.3f > 1.05 for uniform weights", st.MaxRatio)
	}
	if st.MaxLoad-st.MinLoad > st.MaxLoad/10+1 {
		t.Fatalf("load spread too wide: min %d max %d", st.MinLoad, st.MaxLoad)
	}
}

func TestBalanceWeighted(t *testing.T) {
	// Weights chosen so fair shares are feasible under both the one-replica-
	// per-device and one-replica-per-zone constraints (each device and each
	// zone holds at most 1/replicas of the total weight).
	ds := []Device{
		{ID: 0, Zone: 0, Weight: 1.5}, {ID: 1, Zone: 0, Weight: 0.5},
		{ID: 2, Zone: 1, Weight: 1.0}, {ID: 3, Zone: 1, Weight: 1.0},
		{ID: 4, Zone: 2, Weight: 0.5}, {ID: 5, Zone: 2, Weight: 1.5},
		{ID: 6, Zone: 3, Weight: 1.0}, {ID: 7, Zone: 3, Weight: 1.0},
	}
	r, _ := New(12, 3, ds)
	st := r.Stats()
	if st.MaxRatio > 1.10 {
		t.Fatalf("MaxRatio %.3f > 1.10 for weighted devices", st.MaxRatio)
	}
}

func TestAddDeviceRebalanceMovesBoundedLoad(t *testing.T) {
	r, _ := New(10, 3, devs(8))
	before := map[uint32][]int{}
	for p := uint32(0); p < uint32(r.PartitionCount()); p++ {
		before[p] = r.PartitionDevices(p)
	}
	if err := r.AddDevice(Device{ID: 100, Zone: 5, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	moved := r.Rebalance()
	total := r.PartitionCount() * r.ReplicaCount()
	// Adding 1 of 9 equal devices should move roughly 1/9 of assignments;
	// allow generous slack but reject wholesale reshuffles.
	if moved > total/3 {
		t.Fatalf("rebalance moved %d of %d assignments; too many", moved, total)
	}
	newLoad := 0
	for p := uint32(0); p < uint32(r.PartitionCount()); p++ {
		for _, d := range r.PartitionDevices(p) {
			if d == 100 {
				newLoad++
			}
		}
	}
	if newLoad == 0 {
		t.Fatal("new device received no partitions")
	}
}

func TestRemoveDeviceReassigns(t *testing.T) {
	r, _ := New(8, 3, devs(8))
	if err := r.RemoveDevice(3); err != nil {
		t.Fatal(err)
	}
	r.Rebalance()
	for p := uint32(0); p < uint32(r.PartitionCount()); p++ {
		for _, d := range r.PartitionDevices(p) {
			if d == 3 {
				t.Fatalf("partition %d still assigned to removed device", p)
			}
		}
	}
}

func TestRemoveUnknownAndLastDevice(t *testing.T) {
	r, _ := New(4, 1, devs(1))
	if err := r.RemoveDevice(42); err == nil {
		t.Error("removing unknown device succeeded")
	}
	if err := r.RemoveDevice(0); err == nil {
		t.Error("removing last device succeeded")
	}
}

func TestAddDeviceValidation(t *testing.T) {
	r, _ := New(4, 1, devs(2))
	if err := r.AddDevice(Device{ID: 9, Weight: 0}); err == nil {
		t.Error("zero-weight device accepted")
	}
	if err := r.AddDevice(Device{ID: 0, Weight: 1}); err == nil {
		t.Error("duplicate device accepted")
	}
}

// Property: for any set of devices, every object maps to a full, distinct
// replica set.
func TestAssignmentProperty(t *testing.T) {
	f := func(nDevs uint8, seed uint16) bool {
		n := int(nDevs%12) + 1
		r, err := New(6, 3, devs(n))
		if err != nil {
			return false
		}
		name := fmt.Sprintf("key-%d", seed)
		ds := r.Devices(name)
		if len(ds) != r.ReplicaCount() {
			return false
		}
		seen := map[int]bool{}
		for _, d := range ds {
			if d < 0 || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceIDsSorted(t *testing.T) {
	r, _ := New(4, 2, []Device{{ID: 7, Weight: 1}, {ID: 2, Weight: 1}, {ID: 5, Weight: 1}})
	ids := r.DeviceIDs()
	want := []int{2, 5, 7}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("DeviceIDs = %v, want %v", ids, want)
		}
	}
}

// TestAssignmentDeterministic: two rings built from the same device set
// must agree on every partition's replica set. Persistent clusters depend
// on this — a restart rebuilds the ring and must find objects where the
// previous process put them.
func TestAssignmentDeterministic(t *testing.T) {
	build := func() *Ring {
		ds := []Device{
			{ID: 3, Zone: 1, Weight: 2}, {ID: 0, Zone: 0, Weight: 1},
			{ID: 7, Zone: 3, Weight: 1}, {ID: 5, Zone: 2, Weight: 2},
			{ID: 1, Zone: 0, Weight: 1}, {ID: 6, Zone: 3, Weight: 1},
			{ID: 4, Zone: 2, Weight: 1}, {ID: 2, Zone: 1, Weight: 1},
		}
		r, err := New(10, 3, ds)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build(), build()
	for p := uint32(0); p < uint32(a.PartitionCount()); p++ {
		da, db := a.PartitionDevices(p), b.PartitionDevices(p)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("partition %d differs between builds: %v vs %v", p, da, db)
			}
		}
	}
}

func BenchmarkPartition(b *testing.B) {
	r, _ := New(16, 3, devs(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Partition("account/container/some/deep/path/object.dat")
	}
}

func BenchmarkDevices(b *testing.B) {
	r, _ := New(16, 3, devs(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Devices("account/container/some/deep/path/object.dat")
	}
}

func BenchmarkDeviceIDs(b *testing.B) {
	r, _ := New(10, 3, devs(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DeviceIDs()
	}
}

func BenchmarkRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(12, 3, devs(16)); err != nil {
			b.Fatal(err)
		}
	}
}
