// Package ring implements a Swift-style consistent hashing ring.
//
// The object storage cloud underneath H2Cloud (paper §3.1, Figure 4c) keeps
// all objects — file content, directory objects, and NameRings alike — on a
// single, larger consistent hashing ring so that load balance is kept
// automatically. Following OpenStack Swift's design, the ring divides the
// hash space into 2^partPower partitions; an object's MD5 hash selects its
// partition, and each partition is assigned to `replicas` devices spread
// across failure zones, proportionally to device weight.
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Device is a storage device participating in the ring.
type Device struct {
	ID     int     // unique device identifier
	Zone   int     // failure zone; replicas avoid sharing zones when possible
	Weight float64 // relative capacity; partitions assigned proportionally
}

// Ring maps object names to replica device sets.
//
// Structural mutation (AddDevice/RemoveDevice/Rebalance) is caller-
// synchronized, as before. The internal partition memo is safe for
// concurrent readers because Partition is a pure function of the
// immutable partPower.
type Ring struct {
	partPower int
	replicas  int
	devices   map[int]Device
	// part2dev[r][p] is the device ID holding replica r of partition p.
	part2dev [][]int
	// sortedIDs caches the sorted device IDs; rebuilt on add/remove so
	// DeviceIDs stops re-sorting the device map on every call.
	sortedIDs []int

	pmu sync.RWMutex
	//h2vet:guardedby pmu
	partMemo map[string]uint32 // bounded name→partition memo (MD5 results)
}

// partMemoLimit bounds the placement memo. When full the memo is reset
// wholesale — cheaper and more predictable than an eviction policy, and
// hot keys repopulate within one fan-out.
const partMemoLimit = 8192

// ErrNoDevices is returned when a ring is built with no usable devices.
var ErrNoDevices = errors.New("ring: no devices with positive weight")

// New builds a ring with 2^partPower partitions and the given replica count
// over the devices, and balances it. replicas is capped at the number of
// devices.
func New(partPower, replicas int, devices []Device) (*Ring, error) {
	if partPower < 1 || partPower > 24 {
		return nil, fmt.Errorf("ring: partPower %d out of range [1,24]", partPower)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("ring: replicas %d < 1", replicas)
	}
	r := &Ring{
		partPower: partPower,
		replicas:  replicas,
		devices:   make(map[int]Device, len(devices)),
	}
	for _, d := range devices {
		if d.Weight <= 0 {
			continue
		}
		if _, dup := r.devices[d.ID]; dup {
			return nil, fmt.Errorf("ring: duplicate device ID %d", d.ID)
		}
		r.devices[d.ID] = d
	}
	if len(r.devices) == 0 {
		return nil, ErrNoDevices
	}
	if replicas > len(r.devices) {
		r.replicas = len(r.devices)
	}
	r.rebuildSortedIDs()
	r.partMemo = make(map[string]uint32, 64)
	r.part2dev = make([][]int, r.replicas)
	parts := r.PartitionCount()
	for rep := range r.part2dev {
		row := make([]int, parts)
		for p := range row {
			row[p] = -1
		}
		r.part2dev[rep] = row
	}
	r.Rebalance()
	return r, nil
}

// PartitionCount reports the number of partitions (2^partPower).
func (r *Ring) PartitionCount() int { return 1 << r.partPower }

// ReplicaCount reports the number of replicas kept per partition.
func (r *Ring) ReplicaCount() int { return r.replicas }

// rebuildSortedIDs recomputes the cached sorted device-ID slice after a
// membership change.
func (r *Ring) rebuildSortedIDs() {
	ids := make([]int, 0, len(r.devices))
	for id := range r.devices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	r.sortedIDs = ids
}

// DeviceIDs returns the IDs of all devices in the ring, sorted. The slice
// is a copy of a cache computed at build/add/remove time, not re-sorted
// per call.
func (r *Ring) DeviceIDs() []int {
	return r.DeviceIDsAppend(make([]int, 0, len(r.sortedIDs)))
}

// DeviceIDsAppend appends the sorted device IDs to dst and returns the
// extended slice; the zero-alloc sibling of DeviceIDs.
func (r *Ring) DeviceIDsAppend(dst []int) []int {
	return append(dst, r.sortedIDs...)
}

// Partition returns the partition an object name hashes to. Results are
// memoized in a bounded cache so repeated placements of hot names skip
// the MD5.
func (r *Ring) Partition(name string) uint32 {
	if p, ok := r.partLookup(name); ok {
		return p
	}
	sum := md5.Sum([]byte(name))
	v := binary.BigEndian.Uint32(sum[:4])
	p := v >> (32 - uint(r.partPower))
	r.partStore(name, p)
	return p
}

// partLookup consults the placement memo under the read lock. Open-coded
// defers keep this allocation-free.
func (r *Ring) partLookup(name string) (uint32, bool) {
	r.pmu.RLock()
	defer r.pmu.RUnlock()
	p, ok := r.partMemo[name]
	return p, ok
}

// partStore records a computed partition, resetting the memo wholesale
// when it reaches the bound.
func (r *Ring) partStore(name string, p uint32) {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	if len(r.partMemo) >= partMemoLimit {
		clear(r.partMemo)
	}
	r.partMemo[name] = p
}

// Devices returns the replica device IDs responsible for an object name.
// The returned slice is freshly allocated.
func (r *Ring) Devices(name string) []int {
	return r.PartitionDevices(r.Partition(name))
}

// DevicesAppend appends the replica device IDs responsible for an object
// name to dst and returns the extended slice. Fan-out hot paths pass a
// stack-backed buffer to avoid the per-call allocation of Devices.
func (r *Ring) DevicesAppend(name string, dst []int) []int {
	return r.PartitionDevicesAppend(r.Partition(name), dst)
}

// PartitionDevices returns the replica device IDs for a partition.
func (r *Ring) PartitionDevices(part uint32) []int {
	return r.PartitionDevicesAppend(part, make([]int, 0, r.replicas))
}

// PartitionDevicesAppend appends the replica device IDs for a partition
// to dst and returns the extended slice.
func (r *Ring) PartitionDevicesAppend(part uint32, dst []int) []int {
	for rep := 0; rep < r.replicas; rep++ {
		dst = append(dst, r.part2dev[rep][part])
	}
	return dst
}

// devLoad tracks assignment progress for one device during a rebalance.
type devLoad struct {
	dev     Device
	want    float64 // desired replica-partitions
	have    int     // assigned replica-partitions
	pressed float64 // have - want, lower means more starved
}

// Rebalance (re)assigns partition replicas to devices proportionally to
// weight, keeping replicas of one partition on distinct devices and — when
// enough zones exist — in distinct zones. Assignment is incremental: only
// replicas that must move (unassigned, on a removed device, or on a device
// holding more than its fair share) are reassigned. It returns the number
// of replica-partitions that moved.
func (r *Ring) Rebalance() int {
	parts := r.PartitionCount()
	total := 0.0
	for _, d := range r.devices {
		total += d.Weight
	}
	loads := make(map[int]*devLoad, len(r.devices))
	for id, d := range r.devices {
		loads[id] = &devLoad{
			dev:  d,
			want: d.Weight / total * float64(parts*r.replicas),
		}
	}
	for rep := 0; rep < r.replicas; rep++ {
		for p := 0; p < parts; p++ {
			if l, ok := loads[r.part2dev[rep][p]]; ok {
				l.have++
			}
		}
	}
	// Pass 1: strip assignments that are invalid or exceed fair share.
	moved := 0
	type slot struct{ rep, part int }
	var open []slot
	for rep := 0; rep < r.replicas; rep++ {
		for p := 0; p < parts; p++ {
			id := r.part2dev[rep][p]
			l, ok := loads[id]
			switch {
			case !ok: // unassigned or device removed
				open = append(open, slot{rep, p})
			case float64(l.have) > math.Ceil(l.want):
				l.have--
				r.part2dev[rep][p] = -1
				open = append(open, slot{rep, p})
			}
		}
	}
	// Pass 2: hand open slots to the most starved device that keeps the
	// partition's replicas on distinct devices (and zones when possible).
	zones := make(map[int]bool)
	for _, d := range r.devices {
		zones[d.Zone] = true
	}
	distinctZones := len(zones) >= r.replicas
	// Build the candidate list in ascending device-id order: pickDevice
	// breaks starvation ties by list position, so map iteration order here
	// would make replica placement differ run to run.
	ids := make([]int, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	order := make([]*devLoad, 0, len(ids))
	for _, id := range ids {
		order = append(order, loads[id])
	}
	for _, s := range open {
		usedDev := make(map[int]bool, r.replicas)
		usedZone := make(map[int]bool, r.replicas)
		for rep := 0; rep < r.replicas; rep++ {
			if rep == s.rep {
				continue
			}
			id := r.part2dev[rep][s.part]
			if l, ok := loads[id]; ok {
				usedDev[id] = true
				usedZone[l.dev.Zone] = true
			}
		}
		best := r.pickDevice(order, usedDev, usedZone, distinctZones)
		if best == nil {
			// All devices carry a replica already; relax device uniqueness.
			best = r.pickDevice(order, nil, nil, false)
		}
		best.have++
		r.part2dev[s.rep][s.part] = best.dev.ID
		moved++
	}
	return moved
}

// pickDevice selects the device with the largest deficit (want - have)
// among those not excluded. Ties break on smaller device ID for
// determinism.
func (r *Ring) pickDevice(order []*devLoad, usedDev, usedZone map[int]bool, wantZone bool) *devLoad {
	var best *devLoad
	for _, l := range order {
		if usedDev[l.dev.ID] {
			continue
		}
		if wantZone && usedZone[l.dev.Zone] {
			continue
		}
		if best == nil {
			best = l
			continue
		}
		db, dl := best.want-float64(best.have), l.want-float64(l.have)
		if dl > db || (dl == db && l.dev.ID < best.dev.ID) {
			best = l
		}
	}
	if best == nil && wantZone {
		return r.pickDevice(order, usedDev, nil, false)
	}
	return best
}

// AddDevice inserts a device; call Rebalance afterwards to assign it load.
func (r *Ring) AddDevice(d Device) error {
	if d.Weight <= 0 {
		return fmt.Errorf("ring: device %d has non-positive weight", d.ID)
	}
	if _, dup := r.devices[d.ID]; dup {
		return fmt.Errorf("ring: duplicate device ID %d", d.ID)
	}
	r.devices[d.ID] = d
	r.rebuildSortedIDs()
	return nil
}

// RemoveDevice deletes a device; call Rebalance afterwards to reassign its
// partitions. Removing below the replica count reduces effective replicas
// on the affected partitions until devices are added back.
func (r *Ring) RemoveDevice(id int) error {
	if _, ok := r.devices[id]; !ok {
		return fmt.Errorf("ring: unknown device ID %d", id)
	}
	if len(r.devices) == 1 {
		return errors.New("ring: cannot remove the last device")
	}
	delete(r.devices, id)
	r.rebuildSortedIDs()
	return nil
}

// BalanceStats summarizes how evenly replica-partitions are spread.
type BalanceStats struct {
	MinLoad int     // fewest replica-partitions on any device
	MaxLoad int     // most replica-partitions on any device
	Mean    float64 // mean replica-partitions per device
	// MaxRatio is MaxLoad divided by the device's weighted fair share; 1.0
	// is perfect balance.
	MaxRatio float64
}

// Stats computes balance statistics for the current assignment.
func (r *Ring) Stats() BalanceStats {
	counts := make(map[int]int, len(r.devices))
	for id := range r.devices {
		counts[id] = 0
	}
	for rep := 0; rep < r.replicas; rep++ {
		for _, id := range r.part2dev[rep] {
			if _, ok := counts[id]; ok {
				counts[id]++
			}
		}
	}
	total := 0.0
	for _, d := range r.devices {
		total += d.Weight
	}
	parts := float64(r.PartitionCount() * r.replicas)
	st := BalanceStats{MinLoad: math.MaxInt32}
	sum := 0
	for id, c := range counts {
		sum += c
		if c < st.MinLoad {
			st.MinLoad = c
		}
		if c > st.MaxLoad {
			st.MaxLoad = c
		}
		fair := r.devices[id].Weight / total * parts
		if fair > 0 {
			if ratio := float64(c) / fair; ratio > st.MaxRatio {
				st.MaxRatio = ratio
			}
		}
	}
	st.Mean = float64(sum) / float64(len(counts))
	return st
}
