package ring

import (
	"fmt"
	"sync"
	"testing"
)

// TestPartitionMemoRaceStress hammers the pmu-guarded placement memo
// from concurrent readers while churning enough distinct names to blow
// past partMemoLimit, so the clear-under-Lock reset races against
// concurrent RLock lookups. Structural mutation (AddDevice/RemoveDevice
// + Rebalance) is caller-synchronized by contract, so it runs in
// barriered phases between reader rounds — the test exercises exactly
// the concurrency the ring documents as safe, under -race.
func TestPartitionMemoRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("race stress is not short")
	}
	devs := make([]Device, 8)
	for i := range devs {
		devs[i] = Device{ID: i, Weight: 1}
	}
	r, err := New(6, 3, devs)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers = 8
		rounds  = 4
		// Per reader per round: enough distinct names that the shared memo
		// crosses partMemoLimit several times per round and clears.
		namesPerReader = 2 * partMemoLimit / readers
	)
	parts := uint32(r.PartitionCount())
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]int, 0, 8)
				for i := 0; i < namesPerReader; i++ {
					// Half the names repeat across readers (memo hits under
					// RLock), half are unique (memo stores, eventually the
					// clear path under Lock).
					var name string
					if i%2 == 0 {
						name = fmt.Sprintf("shared/%d/obj%06d", round, i)
					} else {
						name = fmt.Sprintf("r%d/%d/obj%06d", w, round, i)
					}
					p := r.Partition(name)
					if p >= parts {
						t.Errorf("Partition(%q) = %d out of range [0,%d)", name, p, parts)
						return
					}
					if p2 := r.Partition(name); p2 != p {
						t.Errorf("Partition(%q) unstable: %d then %d", name, p, p2)
						return
					}
					if ds := r.DevicesAppend(name, buf[:0]); len(ds) == 0 {
						t.Errorf("DevicesAppend(%q) empty", name)
						return
					}
					if ids := r.DeviceIDs(); len(ids) == 0 {
						t.Error("DeviceIDs empty")
						return
					}
				}
			}()
		}
		wg.Wait()

		// Barriered structural churn: add a fresh device, drop an old one,
		// rebalance. Readers are quiesced, honoring the documented
		// caller-synchronized contract for mutation.
		if err := r.AddDevice(Device{ID: 100 + round, Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if err := r.RemoveDevice(round); err != nil {
			t.Fatal(err)
		}
		r.Rebalance()
	}

	// The memo stayed bounded through every clear cycle.
	n := func() int {
		r.pmu.RLock()
		defer r.pmu.RUnlock()
		return len(r.partMemo)
	}()
	if n > partMemoLimit {
		t.Fatalf("partMemo grew to %d entries, limit %d", n, partMemoLimit)
	}
}

// TestPartitionMemoClearKeepsPlacement pins the memo-reset invariant
// sequentially: a clear must never change placement, only forget it.
func TestPartitionMemoClearKeepsPlacement(t *testing.T) {
	devs := []Device{{ID: 0, Weight: 1}, {ID: 1, Weight: 1}, {ID: 2, Weight: 1}}
	r, err := New(4, 2, devs)
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]uint32{}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("pin/obj%d", i)
		before[name] = r.Partition(name)
	}
	// Overflow the memo so it clears, then re-resolve the pinned names.
	for i := 0; i < partMemoLimit+1; i++ {
		r.Partition(fmt.Sprintf("churn/obj%d", i))
	}
	for name, want := range before {
		if got := r.Partition(name); got != want {
			t.Fatalf("Partition(%q) changed across memo clear: %d -> %d", name, want, got)
		}
	}
}
