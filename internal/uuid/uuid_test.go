package uuid

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock(ms int64) func() time.Time {
	return func() time.Time { return time.UnixMilli(ms) }
}

func TestNextFormatMatchesPaperExample(t *testing.T) {
	// Paper §3.1: 6th directory created by node 1 at 1469346604539
	// gets UUID "06.01.1469346604539".
	g := NewGen(1, fixedClock(1469346604539))
	var id string
	for i := 0; i < 6; i++ {
		id = g.Next()
	}
	if id != "06.01.1469346604539" {
		t.Fatalf("6th UUID = %q, want 06.01.1469346604539", id)
	}
}

func TestNextUnique(t *testing.T) {
	g := NewGen(2, fixedClock(1000))
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate UUID %q", id)
		}
		seen[id] = true
	}
}

func TestNextConcurrentUnique(t *testing.T) {
	g := NewGen(3, fixedClock(1000))
	var mu sync.Mutex
	seen := map[string]bool{}
	record := func(id string) {
		mu.Lock()
		defer mu.Unlock()
		if seen[id] {
			t.Errorf("duplicate UUID %q", id)
		}
		seen[id] = true
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				record(g.Next())
			}
		}()
	}
	wg.Wait()
}

func TestParts(t *testing.T) {
	seq, node, ms, err := Parts("06.01.1469346604539")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 || node != 1 || ms != 1469346604539 {
		t.Fatalf("Parts = (%d, %d, %d)", seq, node, ms)
	}
}

func TestPartsErrors(t *testing.T) {
	for _, bad := range []string{"", "1.2", "a.b.c", "1.x.3", "1.2.z", "no-dots"} {
		if _, _, _, err := Parts(bad); err == nil {
			t.Errorf("Parts(%q) accepted", bad)
		}
		if Valid(bad) {
			t.Errorf("Valid(%q) = true", bad)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	g := NewGen(7, nil)
	id := g.Next()
	if !Valid(id) {
		t.Fatalf("generated UUID %q not valid", id)
	}
	if !strings.Contains(id, ".07.") {
		t.Fatalf("UUID %q missing node field", id)
	}
	_, node, _, err := Parts(id)
	if err != nil || node != 7 {
		t.Fatalf("Parts(%q) node = %d, err %v", id, node, err)
	}
}
