// Package uuid generates the identifiers H2 uses for namespaces and
// patches.
//
// Per paper §3.1, every directory receives a universally unique namespace
// identifier built from three fields: the per-node directory sequence
// number, the storage-node number that created it, and the creation UNIX
// timestamp. The paper's example: the 6th directory created by node 1 at
// timestamp 1469346604539 gets UUID "06.01.1469346604539".
package uuid

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Gen issues namespace UUIDs for one middleware node. It is safe for
// concurrent use.
type Gen struct {
	node  int
	seq   atomic.Uint64
	clock func() time.Time
}

// NewGen returns a generator for the given node number. clock defaults to
// time.Now.
func NewGen(node int, clock func() time.Time) *Gen {
	if clock == nil {
		clock = time.Now
	}
	return &Gen{node: node, clock: clock}
}

// Node returns the generator's node number.
func (g *Gen) Node() int { return g.node }

// Next issues a fresh namespace UUID of the form "seq.node.unixmillis".
func (g *Gen) Next() string {
	seq := g.seq.Add(1)
	return fmt.Sprintf("%02d.%02d.%d", seq, g.node, g.clock().UnixMilli())
}

// Derive returns the namespace UUID for the child directory `name`
// created under the directory whose namespace is parent. The sequence
// field is a 64-bit FNV-1a hash of (parent, name) and the timestamp is
// inherited from the parent UUID, so the result is a pure function of
// its inputs: a pipelined subtree copy that creates child namespaces
// from concurrent tasks mints identical identifiers on every run,
// whatever the goroutine schedule — Next, which draws from a shared
// counter and the wall clock, cannot promise that. Parent UUIDs are
// unique (Next-minted or themselves derived), so distinct (parent, name)
// pairs collide only with a 64-bit-hash probability.
func (g *Gen) Derive(parent, name string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(parent))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(name))
	ts := int64(0)
	if _, _, ms, err := Parts(parent); err == nil {
		ts = ms
	}
	return fmt.Sprintf("%d.%02d.%d", h.Sum64(), g.node, ts)
}

// Parts decomposes a namespace UUID into its sequence number, node number
// and timestamp.
func Parts(id string) (seq uint64, node int, unixMilli int64, err error) {
	fields := strings.SplitN(id, ".", 3)
	if len(fields) != 3 {
		return 0, 0, 0, fmt.Errorf("uuid: malformed %q", id)
	}
	seq, err = strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("uuid: bad sequence in %q: %w", id, err)
	}
	node64, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("uuid: bad node in %q: %w", id, err)
	}
	unixMilli, err = strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("uuid: bad timestamp in %q: %w", id, err)
	}
	return seq, int(node64), unixMilli, nil
}

// Valid reports whether id parses as a namespace UUID.
func Valid(id string) bool {
	_, _, _, err := Parts(id)
	return err == nil
}
