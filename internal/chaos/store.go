package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Op names one store primitive for targeted triggers and fault keying.
type Op string

// The store primitives an Engine can fault.
const (
	OpPut      Op = "put"
	OpGet      Op = "get"
	OpGetRange Op = "getrange"
	OpHead     Op = "head"
	OpDelete   Op = "delete"
	OpCopy     Op = "copy"
)

// ErrInjected marks a targeted (substring-triggered) fault. Unlike the
// plan's probabilistic errors it does not wrap objstore.ErrNodeDown, so
// retry layers treat it as permanent and tests see it surface intact.
var ErrInjected = errors.New("chaos: injected fault")

// Store wraps an objstore.Store with the engine's fault plan plus
// targeted substring triggers (the capability the former test-local
// faultyStore provided): FailOn(op, substr) makes every op whose object
// name contains substr fail with ErrInjected.
type Store struct {
	inner objstore.Store
	eng   *Engine

	mu       sync.Mutex
	triggers map[Op]string
}

var _ objstore.Store = (*Store)(nil)

// Store wraps inner with this engine's fault plan.
func (e *Engine) Store(inner objstore.Store) *Store {
	return &Store{inner: inner, eng: e, triggers: make(map[Op]string)}
}

// Inner returns the wrapped store.
func (s *Store) Inner() objstore.Store { return s.inner }

// FailOn arms (or, with substr == "", disarms) the targeted trigger for
// one primitive: operations whose object name contains substr fail with
// ErrInjected before reaching the wrapped store.
func (s *Store) FailOn(op Op, substr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if substr == "" {
		delete(s.triggers, op)
		return
	}
	s.triggers[op] = substr
}

// triggered reports whether a targeted trigger matches.
func (s *Store) triggered(op Op, name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	substr, ok := s.triggers[op]
	return ok && strings.Contains(name, substr)
}

// inject applies the fault plan to one primitive: the targeted trigger
// first (permanent ErrInjected), then a latency spike charged to the
// virtual clock, then the transient error roll. A nil error means the
// operation proceeds to the wrapped store.
func (s *Store) inject(ctx context.Context, op Op, name string) error {
	if s.triggered(op, name) {
		return fmt.Errorf("chaos: %s %q: %w", op, name, ErrInjected)
	}
	if d := s.eng.spikeFor(op, name); d > 0 {
		s.eng.spikes.Add(1)
		s.eng.reg.Inc("chaos.spikes", 1)
		//h2vet:ignore costcheck latency spikes model extra service time on top of the wrapped store's own charge
		vclock.Charge(ctx, d)
	}
	if s.eng.decide("err."+string(op), name, s.eng.liveErrRate()) {
		s.eng.faults.Add(1)
		s.eng.reg.Inc("chaos.faults", 1)
		return fmt.Errorf("chaos: %s %q: %w", op, name, objstore.ErrNodeDown)
	}
	return nil
}

// Put implements objstore.Store.
func (s *Store) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	if err := s.inject(ctx, OpPut, name); err != nil {
		return err
	}
	return s.inner.Put(ctx, name, data, meta)
}

// Get implements objstore.Store.
func (s *Store) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	if err := s.inject(ctx, OpGet, name); err != nil {
		return nil, objstore.ObjectInfo{}, err
	}
	return s.inner.Get(ctx, name)
}

// GetRange implements objstore.Store.
func (s *Store) GetRange(ctx context.Context, name string, offset, length int64) ([]byte, objstore.ObjectInfo, error) {
	if err := s.inject(ctx, OpGetRange, name); err != nil {
		return nil, objstore.ObjectInfo{}, err
	}
	return s.inner.GetRange(ctx, name, offset, length)
}

// Head implements objstore.Store.
func (s *Store) Head(ctx context.Context, name string) (objstore.ObjectInfo, error) {
	if err := s.inject(ctx, OpHead, name); err != nil {
		return objstore.ObjectInfo{}, err
	}
	return s.inner.Head(ctx, name)
}

// Delete implements objstore.Store.
func (s *Store) Delete(ctx context.Context, name string) error {
	if err := s.inject(ctx, OpDelete, name); err != nil {
		return err
	}
	return s.inner.Delete(ctx, name)
}

// Copy implements objstore.Store. Fault decisions key on the source name.
func (s *Store) Copy(ctx context.Context, src, dst string) error {
	if err := s.inject(ctx, OpCopy, src); err != nil {
		return err
	}
	return s.inner.Copy(ctx, src, dst)
}
