package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/storemw"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Op names one store primitive for targeted triggers and fault keying.
type Op string

// The store primitives an Engine can fault.
const (
	OpPut      Op = "put"
	OpGet      Op = "get"
	OpGetRange Op = "getrange"
	OpHead     Op = "head"
	OpDelete   Op = "delete"
	OpCopy     Op = "copy"
)

// ErrInjected marks a targeted (substring-triggered) fault. Unlike the
// plan's probabilistic errors it does not wrap objstore.ErrNodeDown, so
// retry layers treat it as permanent and tests see it surface intact.
var ErrInjected = errors.New("chaos: injected fault")

// Store wraps an objstore.Store with the engine's fault plan plus
// targeted substring triggers (the capability the former test-local
// faultyStore provided): FailOn(op, substr) makes every op whose object
// name contains substr fail with ErrInjected.
type Store struct {
	inner objstore.Store
	eng   *Engine

	mu       sync.Mutex
	triggers map[Op]string
}

var (
	_ storemw.Wrapper  = (*Store)(nil)
	_ objstore.Batcher = (*Store)(nil)
)

// Store wraps inner with this engine's fault plan.
func (e *Engine) Store(inner objstore.Store) *Store {
	return &Store{inner: inner, eng: e, triggers: make(map[Op]string)}
}

// Layer adapts the engine to the store middleware stack: a chaos ring
// assembled with storemw.Stack like any other.
func (e *Engine) Layer() storemw.Layer {
	return func(inner objstore.Store) objstore.Store { return e.Store(inner) }
}

// Inner returns the wrapped store.
func (s *Store) Inner() objstore.Store { return s.inner }

// Unwrap implements storemw.Wrapper.
func (s *Store) Unwrap() objstore.Store { return s.inner }

// FailOn arms (or, with substr == "", disarms) the targeted trigger for
// one primitive: operations whose object name contains substr fail with
// ErrInjected before reaching the wrapped store.
func (s *Store) FailOn(op Op, substr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if substr == "" {
		delete(s.triggers, op)
		return
	}
	s.triggers[op] = substr
}

// triggered reports whether a targeted trigger matches.
func (s *Store) triggered(op Op, name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	substr, ok := s.triggers[op]
	return ok && strings.Contains(name, substr)
}

// inject applies the fault plan to one primitive: the targeted trigger
// first (permanent ErrInjected), then a latency spike charged to the
// virtual clock, then the transient error roll. A nil error means the
// operation proceeds to the wrapped store.
func (s *Store) inject(ctx context.Context, op Op, name string) error {
	if s.triggered(op, name) {
		return fmt.Errorf("chaos: %s %q: %w", op, name, ErrInjected)
	}
	if d := s.eng.spikeFor(op, name); d > 0 {
		s.eng.spikes.Add(1)
		s.eng.reg.Inc("chaos.spikes", 1)
		//h2vet:ignore costcheck latency spikes model extra service time on top of the wrapped store's own charge
		vclock.Charge(ctx, d)
	}
	if s.eng.decide("err."+string(op), name, s.eng.liveErrRate()) {
		s.eng.faults.Add(1)
		s.eng.reg.Inc("chaos.faults", 1)
		return fmt.Errorf("chaos: %s %q: %w", op, name, objstore.ErrNodeDown)
	}
	return nil
}

// Put implements objstore.Store.
func (s *Store) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	if err := s.inject(ctx, OpPut, name); err != nil {
		return err
	}
	return s.inner.Put(ctx, name, data, meta)
}

// Get implements objstore.Store.
func (s *Store) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	if err := s.inject(ctx, OpGet, name); err != nil {
		return nil, objstore.ObjectInfo{}, err
	}
	return s.inner.Get(ctx, name)
}

// GetRange implements objstore.Store.
func (s *Store) GetRange(ctx context.Context, name string, offset, length int64) ([]byte, objstore.ObjectInfo, error) {
	if err := s.inject(ctx, OpGetRange, name); err != nil {
		return nil, objstore.ObjectInfo{}, err
	}
	return s.inner.GetRange(ctx, name, offset, length)
}

// Head implements objstore.Store.
func (s *Store) Head(ctx context.Context, name string) (objstore.ObjectInfo, error) {
	if err := s.inject(ctx, OpHead, name); err != nil {
		return objstore.ObjectInfo{}, err
	}
	return s.inner.Head(ctx, name)
}

// Delete implements objstore.Store.
func (s *Store) Delete(ctx context.Context, name string) error {
	if err := s.inject(ctx, OpDelete, name); err != nil {
		return err
	}
	return s.inner.Delete(ctx, name)
}

// Copy implements objstore.Store. Fault decisions key on the source name.
func (s *Store) Copy(ctx context.Context, src, dst string) error {
	if err := s.inject(ctx, OpCopy, src); err != nil {
		return err
	}
	return s.inner.Copy(ctx, src, dst)
}

// Batch forwarding: the fault plan applies per item — every decision
// keys on the object name exactly as the singular primitive would, so
// same-seed runs fault the same items whether callers batch or not —
// and the surviving subset is forwarded downward as one batch.

// MultiGet implements objstore.Batcher.
func (s *Store) MultiGet(ctx context.Context, names []string) []objstore.GetResult {
	out := make([]objstore.GetResult, len(names))
	fwd, slots := s.injectBatch(ctx, OpGet, names, func(i int, err error) { out[i].Err = err })
	for j, r := range objstore.MultiGet(ctx, s.inner, fwd) {
		out[slots[j]] = r
	}
	return out
}

// MultiHead implements objstore.Batcher.
func (s *Store) MultiHead(ctx context.Context, names []string) []objstore.HeadResult {
	out := make([]objstore.HeadResult, len(names))
	fwd, slots := s.injectBatch(ctx, OpHead, names, func(i int, err error) { out[i].Err = err })
	for j, r := range objstore.MultiHead(ctx, s.inner, fwd) {
		out[slots[j]] = r
	}
	return out
}

// MultiPut implements objstore.Batcher.
func (s *Store) MultiPut(ctx context.Context, reqs []objstore.PutReq) []error {
	out := make([]error, len(reqs))
	names := make([]string, len(reqs))
	for i, r := range reqs {
		names[i] = r.Name
	}
	_, slots := s.injectBatch(ctx, OpPut, names, func(i int, err error) { out[i] = err })
	sub := make([]objstore.PutReq, len(slots))
	for j, i := range slots {
		sub[j] = reqs[i]
	}
	for j, err := range objstore.MultiPut(ctx, s.inner, sub) {
		out[slots[j]] = err
	}
	return out
}

// MultiDelete implements objstore.Batcher.
func (s *Store) MultiDelete(ctx context.Context, names []string) []error {
	out := make([]error, len(names))
	fwd, slots := s.injectBatch(ctx, OpDelete, names, func(i int, err error) { out[i] = err })
	for j, err := range objstore.MultiDelete(ctx, s.inner, fwd) {
		out[slots[j]] = err
	}
	return out
}

// injectBatch rolls the fault plan for every item, reporting injected
// failures through setErr and returning the names (and their original
// slots) that survive to be forwarded.
func (s *Store) injectBatch(ctx context.Context, op Op, names []string, setErr func(int, error)) ([]string, []int) {
	fwd := make([]string, 0, len(names))
	slots := make([]int, 0, len(names))
	for i, name := range names {
		if err := s.inject(ctx, op, name); err != nil {
			setErr(i, err)
			continue
		}
		fwd = append(fwd, name)
		slots = append(slots, i)
	}
	return fwd, slots
}
