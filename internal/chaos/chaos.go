// Package chaos is the deterministic fault-injection engine behind the
// robustness evaluation: it wraps the object storage cloud, the cluster's
// nodes, and the gossip bus with declarative fault plans — transient
// per-operation error rates, latency spikes charged to the simulator's
// virtual clock, node crash/restart schedules, and gossip message
// drop/delay.
//
// Every decision is a pure function of (seed, fault kind, object name,
// per-name occurrence number), not of goroutine scheduling or global call
// order, so two runs of the same seeded experiment inject byte-identical
// fault sequences even when the middleware fans operations out
// concurrently. That is what lets the availability experiment
// (internal/bench) assert determinism and lets failing chaos tests be
// replayed from nothing but their seed.
package chaos

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/h2cloud/h2cloud/internal/metrics"
)

// Event is one entry of a crash/restart schedule: at step Step (as
// counted by Engine.Step) the node flips to Down.
type Event struct {
	Step int64
	Node int
	Down bool
}

// Plan declares the faults an Engine injects. The zero value injects
// nothing, which is what targeted-trigger tests use.
type Plan struct {
	// Seed drives every probabilistic decision. Two engines with equal
	// plans make identical decisions.
	Seed int64
	// ErrRate is the probability that a store primitive fails with a
	// transient error (wrapping objstore.ErrNodeDown, so callers'
	// typed-error retry logic engages).
	ErrRate float64
	// SpikeRate and Spike inject latency: with probability SpikeRate a
	// primitive charges an extra 0.5×–1.5× Spike to the virtual clock
	// before executing. Spikes never block wall time.
	SpikeRate float64
	Spike     time.Duration
	// DropRate and DelayRate act on gossip broadcasts: dropped messages
	// vanish; delayed ones are buffered until ReleaseDelayed.
	DropRate  float64
	DelayRate float64
	// Events is the node crash/restart schedule, applied by Step in
	// ascending step order against the bound NodeFailer.
	Events []Event
}

// NodeFailer is the slice of cluster.Cluster the crash schedule needs.
type NodeFailer interface {
	SetNodeDown(id int, down bool)
}

// Counters is a snapshot of the faults an engine has injected.
type Counters struct {
	Faults        int64 `json:"faults"`        // transient store errors injected
	Spikes        int64 `json:"spikes"`        // latency spikes charged
	GossipDropped int64 `json:"gossipDropped"` // broadcasts dropped
	GossipDelayed int64 `json:"gossipDelayed"` // broadcasts deferred
	Crashes       int64 `json:"crashes"`       // scheduled node downs applied
	Restarts      int64 `json:"restarts"`      // scheduled node ups applied
}

// Engine makes the fault decisions for one experiment or test. It is safe
// for concurrent use.
type Engine struct {
	plan Plan
	reg  *metrics.Registry // optional mirror of the counters; may be nil

	step    atomic.Int64
	events  []Event // sorted by step
	nextEv  atomic.Int64
	errRate atomic.Uint64 // math.Float64bits of the live error rate

	mu   sync.Mutex
	seqs map[string]int64 // per-(kind|name) occurrence counters

	faults, spikes, dropped, delayed, crashes, restarts atomic.Int64

	failerMu sync.Mutex
	failer   NodeFailer
}

// New builds an engine for the plan. reg, when non-nil, mirrors the
// engine's fault counters ("chaos.faults", "chaos.spikes", ...) so they
// surface alongside retry and degradation counters in one registry.
func New(plan Plan, reg *metrics.Registry) *Engine {
	events := make([]Event, len(plan.Events))
	copy(events, plan.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })
	e := &Engine{plan: plan, reg: reg, events: events, seqs: make(map[string]int64)}
	e.errRate.Store(math.Float64bits(plan.ErrRate))
	return e
}

// SetErrRate changes the live transient-error rate, closing (rate 0) or
// reopening the fault window. Experiments use it to stop injecting while
// they verify that everything acknowledged during the window survived.
// The hash streams are untouched, so decisions stay deterministic as long
// as the call itself happens at a deterministic point.
func (e *Engine) SetErrRate(rate float64) {
	e.errRate.Store(math.Float64bits(rate))
}

// liveErrRate reads the current transient-error rate.
func (e *Engine) liveErrRate() float64 {
	return math.Float64frombits(e.errRate.Load())
}

// Bind attaches the cluster (or any NodeFailer) the crash/restart
// schedule manipulates. Steps before Bind apply no events.
func (e *Engine) Bind(f NodeFailer) {
	e.failerMu.Lock()
	defer e.failerMu.Unlock()
	e.failer = f
}

// boundFailer reads the schedule target under its lock.
func (e *Engine) boundFailer() NodeFailer {
	e.failerMu.Lock()
	defer e.failerMu.Unlock()
	return e.failer
}

// Step advances the experiment's logical timeline by one operation and
// applies every scheduled crash/restart event that has come due. The
// driving experiment calls Step once per workload operation.
func (e *Engine) Step() {
	now := e.step.Add(1)
	f := e.boundFailer()
	for {
		i := e.nextEv.Load()
		if i >= int64(len(e.events)) || e.events[i].Step > now {
			return
		}
		if !e.nextEv.CompareAndSwap(i, i+1) {
			continue // another Step claimed this event
		}
		ev := e.events[i]
		if f != nil {
			f.SetNodeDown(ev.Node, ev.Down)
		}
		if ev.Down {
			e.crashes.Add(1)
			e.reg.Inc("chaos.crashes", 1)
		} else {
			e.restarts.Add(1)
			e.reg.Inc("chaos.restarts", 1)
		}
	}
}

// Counters snapshots the engine's injected-fault tallies.
func (e *Engine) Counters() Counters {
	return Counters{
		Faults:        e.faults.Load(),
		Spikes:        e.spikes.Load(),
		GossipDropped: e.dropped.Load(),
		GossipDelayed: e.delayed.Load(),
		Crashes:       e.crashes.Load(),
		Restarts:      e.restarts.Load(),
	}
}

// seq returns the n-th occurrence number of key, starting at 0. Distinct
// keys advance independently, so concurrent operations on different
// objects cannot perturb each other's fault decisions.
func (e *Engine) seq(key string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.seqs[key]
	e.seqs[key] = n + 1
	return n
}

// roll draws the deterministic pseudo-random fraction in [0, 1) for the
// n-th occurrence of (kind, name): an FNV-1a hash of the seed and the
// identifying strings, scaled to a float. It is the engine's only source
// of randomness — no global PRNG state, no call-order dependence.
func (e *Engine) roll(kind, name string, n int64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(strconv.FormatInt(e.plan.Seed, 10)))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(kind))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(strconv.FormatInt(n, 10)))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// decide rolls one fault decision: the n-th (kind, name) occurrence
// fails iff its hash fraction falls under rate.
func (e *Engine) decide(kind, name string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return e.roll(kind, name, e.seq(kind+"\x00"+name)) < rate
}

// spikeFor rolls a latency spike for one primitive: zero most of the
// time, otherwise 0.5×–1.5× the plan's Spike, the fraction drawn from
// the same deterministic hash stream.
func (e *Engine) spikeFor(op Op, name string) time.Duration {
	if e.plan.SpikeRate <= 0 || e.plan.Spike <= 0 {
		return 0
	}
	key := "spike." + string(op)
	n := e.seq(key + "\x00" + name)
	if e.roll(key, name, n) >= e.plan.SpikeRate {
		return 0
	}
	frac := 0.5 + e.roll(key+".mag", name, n)
	return time.Duration(frac * float64(e.plan.Spike))
}
