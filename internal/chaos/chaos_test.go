package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// memStore is a minimal single-node store for wrapping.
func memStore(t *testing.T) objstore.Store {
	t.Helper()
	return &nodeStore{n: objstore.NewNode(0)}
}

type nodeStore struct{ n *objstore.Node }

func (s *nodeStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	return s.n.Put(name, data, meta, time.Unix(0, 0))
}
func (s *nodeStore) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	return s.n.Get(name)
}
func (s *nodeStore) GetRange(ctx context.Context, name string, offset, length int64) ([]byte, objstore.ObjectInfo, error) {
	data, info, err := s.n.Get(name)
	if err != nil {
		return nil, info, err
	}
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	end := int64(len(data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	return data[offset:end], info, nil
}
func (s *nodeStore) Head(ctx context.Context, name string) (objstore.ObjectInfo, error) {
	return s.n.Head(name)
}
func (s *nodeStore) Delete(ctx context.Context, name string) error { return s.n.Delete(name) }
func (s *nodeStore) Copy(ctx context.Context, src, dst string) error {
	data, info, err := s.n.Get(src)
	if err != nil {
		return err
	}
	return s.n.Put(dst, data, info.Meta, time.Unix(0, 0))
}

// faultTrace runs a fixed op sequence and records which ops failed.
func faultTrace(t *testing.T, seed int64) []bool {
	t.Helper()
	eng := New(Plan{Seed: seed, ErrRate: 0.3}, nil)
	st := eng.Store(memStore(t))
	ctx := context.Background()
	var trace []bool
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("obj-%d", i%17)
		err := st.Put(ctx, name, []byte("x"), nil)
		trace = append(trace, err != nil)
		_, _, gerr := st.Get(ctx, name)
		trace = append(trace, gerr != nil)
	}
	return trace
}

func TestDecisionsDeterministicPerSeed(t *testing.T) {
	a := faultTrace(t, 42)
	b := faultTrace(t, 42)
	c := faultTrace(t, 43)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different fault traces")
	}
	if !diff {
		t.Fatal("different seeds produced identical fault traces (suspicious hash)")
	}
}

func TestErrRateApproximatelyHolds(t *testing.T) {
	eng := New(Plan{Seed: 7, ErrRate: 0.2}, nil)
	st := eng.Store(memStore(t))
	ctx := context.Background()
	fails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if err := st.Put(ctx, fmt.Sprintf("k%d", i), []byte("x"), nil); err != nil {
			if !objstore.Transient(err) {
				t.Fatalf("injected error %v is not transient", err)
			}
			fails++
		}
	}
	rate := float64(fails) / n
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("observed fault rate %.3f, want ~0.2", rate)
	}
	if got := eng.Counters().Faults; got != int64(fails) {
		t.Fatalf("Counters().Faults = %d, want %d", got, fails)
	}
}

func TestTargetedTriggerIsPermanentAndScoped(t *testing.T) {
	eng := New(Plan{}, nil)
	st := eng.Store(memStore(t))
	ctx := context.Background()
	st.FailOn(OpPut, "::doomed")
	if err := st.Put(ctx, "a::doomed::b", nil, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted Put = %v, want ErrInjected", err)
	}
	if objstore.Transient(fmt.Errorf("wrap: %w", ErrInjected)) {
		t.Fatal("targeted faults must not be classified transient")
	}
	if err := st.Put(ctx, "a::fine", []byte("x"), nil); err != nil {
		t.Fatalf("untargeted Put = %v", err)
	}
	st.FailOn(OpPut, "") // disarm
	if err := st.Put(ctx, "a::doomed::b", []byte("x"), nil); err != nil {
		t.Fatalf("disarmed Put = %v", err)
	}
}

func TestSpikesChargeVirtualClock(t *testing.T) {
	eng := New(Plan{Seed: 1, SpikeRate: 1.0, Spike: 100 * time.Millisecond}, nil)
	st := eng.Store(memStore(t))
	tr := vclock.NewTracker()
	ctx := vclock.With(context.Background(), tr)
	if err := st.Put(ctx, "k", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	got := tr.Elapsed()
	if got < 50*time.Millisecond || got > 150*time.Millisecond {
		t.Fatalf("spike charged %v, want within [0.5, 1.5] of 100ms", got)
	}
	if eng.Counters().Spikes != 1 {
		t.Fatalf("Spikes = %d, want 1", eng.Counters().Spikes)
	}
}

type fakeFailer struct{ downs map[int]bool }

func (f *fakeFailer) SetNodeDown(id int, down bool) { f.downs[id] = down }

func TestCrashScheduleAppliesInStepOrder(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	reg := metrics.NewRegistry()
	eng := New(Plan{Events: []Event{
		{Step: 2, Node: 3, Down: true},
		{Step: 5, Node: 3, Down: false},
		{Step: 5, Node: 1, Down: true},
	}}, reg)
	f := &fakeFailer{downs: map[int]bool{}}
	eng.Bind(f)
	eng.Step() // 1: nothing
	if len(f.downs) != 0 {
		t.Fatalf("events fired early: %v", f.downs)
	}
	eng.Step() // 2: node 3 down
	if !f.downs[3] {
		t.Fatal("node 3 not crashed at step 2")
	}
	eng.Step()
	eng.Step()
	eng.Step() // 5: node 3 up, node 1 down
	if f.downs[3] || !f.downs[1] {
		t.Fatalf("schedule at step 5 wrong: %v", f.downs)
	}
	c := eng.Counters()
	if c.Crashes != 2 || c.Restarts != 1 {
		t.Fatalf("Crashes=%d Restarts=%d, want 2/1", c.Crashes, c.Restarts)
	}
	if reg.Counter("chaos.crashes") != 2 || reg.Counter("chaos.restarts") != 1 {
		t.Fatalf("registry mirror wrong: %v", reg.Counters())
	}
}

func TestGossipDropAndDelay(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	inner := gossip.NewBus()
	var got []gossip.Message
	inner.Register(1, func(ctx context.Context, msg gossip.Message) { got = append(got, msg) })

	eng := New(Plan{Seed: 3, DropRate: 0.5}, nil)
	bus := eng.Gossip(inner)
	ctx := context.Background()
	const n = 200
	for i := 0; i < n; i++ {
		bus.Broadcast(2, gossip.Message{Account: "a", NS: "ns", Origin: 2, Version: int64(i)})
	}
	inner.Pump(ctx)
	dropped := eng.Counters().GossipDropped
	if dropped == 0 || int(dropped) == n {
		t.Fatalf("dropped %d of %d, want partial drop", dropped, n)
	}
	if len(got)+int(dropped) != n {
		t.Fatalf("delivered %d + dropped %d != %d", len(got), dropped, n)
	}

	// Delay: everything deferred until ReleaseDelayed.
	got = nil
	engD := New(Plan{Seed: 3, DelayRate: 1.0}, nil)
	busD := engD.Gossip(inner)
	busD.Broadcast(2, gossip.Message{Account: "a", NS: "ns", Origin: 2, Version: 1})
	inner.Pump(ctx)
	if len(got) != 0 {
		t.Fatal("delayed message delivered before release")
	}
	if busD.PendingDelayed() != 1 {
		t.Fatalf("PendingDelayed = %d, want 1", busD.PendingDelayed())
	}
	if n := busD.ReleaseDelayed(); n != 1 {
		t.Fatalf("ReleaseDelayed = %d, want 1", n)
	}
	inner.Pump(ctx)
	if len(got) != 1 {
		t.Fatalf("delivered %d after release, want 1", len(got))
	}
}
