package chaos

import (
	"fmt"
	"sync"

	"github.com/h2cloud/h2cloud/internal/gossip"
)

// Bus wraps a gossip.Broadcaster with the plan's message drop/delay
// faults. Dropped advertisements vanish (the receiving nodes reconverge
// only through a later advert, a flush read-back, or anti-entropy
// Repair); delayed ones are buffered until ReleaseDelayed, modelling a
// slow inter-middleware link.
type Bus struct {
	inner gossip.Broadcaster
	eng   *Engine

	mu      sync.Mutex
	delayed []delayedMsg
}

type delayedMsg struct {
	from int
	msg  gossip.Message
}

var _ gossip.Broadcaster = (*Bus)(nil)

// Gossip wraps inner with this engine's drop/delay plan.
func (e *Engine) Gossip(inner gossip.Broadcaster) *Bus {
	return &Bus{inner: inner, eng: e}
}

// Register forwards handler registration to the wrapped bus when it is a
// registrar itself (the usual case: a *gossip.Bus), so middlewares
// configured with a chaos Bus still receive peer adverts. Only the send
// side is faulted; delivery of accepted broadcasts stays reliable.
func (b *Bus) Register(node int, h gossip.Handler) {
	if reg, ok := b.inner.(gossip.Registrar); ok {
		reg.Register(node, h)
	}
}

// msgKey identifies a broadcast for fault keying.
func msgKey(from int, msg gossip.Message) string {
	return fmt.Sprintf("%d|%s|%s|%d|%d", from, msg.Account, msg.NS, msg.Origin, msg.Version)
}

// Broadcast implements gossip.Broadcaster, rolling drop before delay.
func (b *Bus) Broadcast(from int, msg gossip.Message) {
	key := msgKey(from, msg)
	if b.eng.decide("gossip.drop", key, b.eng.plan.DropRate) {
		b.eng.dropped.Add(1)
		b.eng.reg.Inc("chaos.gossipDropped", 1)
		return
	}
	if b.eng.decide("gossip.delay", key, b.eng.plan.DelayRate) {
		b.eng.delayed.Add(1)
		b.eng.reg.Inc("chaos.gossipDelayed", 1)
		b.bufferDelayed(delayedMsg{from: from, msg: msg})
		return
	}
	b.inner.Broadcast(from, msg)
}

// bufferDelayed appends under the buffer lock.
func (b *Bus) bufferDelayed(d delayedMsg) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.delayed = append(b.delayed, d)
}

// takeDelayed drains the buffer under the lock; forwarding happens
// outside it (Broadcast may re-enter the wrapped bus).
func (b *Bus) takeDelayed() []delayedMsg {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.delayed
	b.delayed = nil
	return out
}

// ReleaseDelayed forwards every buffered broadcast, in the order the
// faults deferred them, and reports how many it released. Experiments
// call it between rounds (and before asserting convergence) so delayed
// gossip arrives late rather than never.
func (b *Bus) ReleaseDelayed() int {
	msgs := b.takeDelayed()
	for _, d := range msgs {
		b.inner.Broadcast(d.from, d.msg)
	}
	return len(msgs)
}

// PendingDelayed reports how many broadcasts are currently buffered.
func (b *Bus) PendingDelayed() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.delayed)
}
