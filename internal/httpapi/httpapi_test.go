package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/h2fs"
)

func newStack(t testing.TB) (*Client, *h2fs.Middleware) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1, EagerGC: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mw))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), mw
}

// TestConformanceOverHTTP drives the full filesystem conformance suite
// through the web API: client -> HTTP -> middleware -> object cloud.
func TestConformanceOverHTTP(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		client, _ := newStack(t)
		if err := client.CreateAccount(context.Background(), "alice"); err != nil {
			t.Fatal(err)
		}
		return client.FS("alice")
	})
}

func TestAccountLifecycle(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	ok, err := client.AccountExists(ctx, "alice")
	if err != nil || ok {
		t.Fatalf("exists before create = %v, %v", ok, err)
	}
	if err := client.CreateAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := client.CreateAccount(ctx, "alice"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("duplicate create = %v", err)
	}
	ok, _ = client.AccountExists(ctx, "alice")
	if !ok {
		t.Fatal("account missing after create")
	}
	fs := client.FS("alice")
	if err := fs.WriteFile(ctx, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	ok, _ = client.AccountExists(ctx, "alice")
	if ok {
		t.Fatal("account present after delete")
	}
}

func TestErrorCodesRoundTrip(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	if err := client.CreateAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	fs := client.FS("alice")
	if _, err := fs.ReadFile(ctx, "/missing"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("missing read = %v", err)
	}
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/d"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("dup mkdir = %v", err)
	}
	if _, err := fs.ReadFile(ctx, "/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("read dir = %v", err)
	}
	if err := fs.WriteFile(ctx, "relative", nil); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("invalid path = %v", err)
	}
}

func TestRelativeAccessEndpoint(t *testing.T) {
	client, mw := newStack(t)
	ctx := context.Background()
	if err := client.CreateAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	fs := client.FS("alice")
	if err := fs.Mkdir(ctx, "/home"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/home/file1", []byte("via-rel")); err != nil {
		t.Fatal(err)
	}
	// Discover the namespace via the middleware's internals, then read
	// through the public quick-access endpoint.
	entries, err := mw.List(ctx, "alice", "/", false)
	if err != nil || len(entries) != 1 {
		t.Fatalf("list = %v, %v", entries, err)
	}
	// The only way to learn the namespace publicly would be an admin API;
	// reach through the middleware here.
	data, _, err := mw.AccessRelative(ctx, "alice", relOf(t, mw, "/home")+"::file1")
	if err != nil || string(data) != "via-rel" {
		t.Fatalf("middleware rel access = %q, %v", data, err)
	}
	rel := relOf(t, mw, "/home") + "::file1"
	got, err := client.ReadRelative(ctx, "alice", rel)
	if err != nil || string(got) != "via-rel" {
		t.Fatalf("client rel access = %q, %v", got, err)
	}
	if _, err := client.ReadRelative(ctx, "alice", "junk-no-separator"); err == nil {
		t.Fatal("malformed relative path accepted")
	}
}

// relOf resolves a directory path to its namespace through Stat-level
// internals exposed for tests.
func relOf(t *testing.T, mw *h2fs.Middleware, path string) string {
	t.Helper()
	ns, err := mw.ResolveNS(context.Background(), "alice", path)
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestSpecialCharactersInNames(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	if err := client.CreateAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	fs := client.FS("alice")
	name := "/weird name +%&#?.txt"
	if err := fs.WriteFile(ctx, name, []byte("odd")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(ctx, name)
	if err != nil || string(data) != "odd" {
		t.Fatalf("round trip = %q, %v", data, err)
	}
	entries, err := fs.List(ctx, "/", false)
	if err != nil || len(entries) != 1 || entries[0].Name != strings.TrimPrefix(name, "/") {
		t.Fatalf("List = %+v, %v", entries, err)
	}
}

func TestRawHTTPStatuses(t *testing.T) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mw))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stat/ghost/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stat on missing account = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/move/ghost?src=/a&dst=/b", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("move on missing account = %d", resp.StatusCode)
	}
}

// TestDifferentialOverHTTP replays random traces through the full HTTP
// stack against the oracle model.
func TestDifferentialOverHTTP(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		client, _ := newStack(t)
		if err := client.CreateAccount(context.Background(), "alice"); err != nil {
			t.Fatal(err)
		}
		return client.FS("alice")
	})
}
