package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// Client talks to an H2Cloud server. Account-scoped filesystem views
// implementing fsapi.FileSystem are obtained with FS.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8420"). httpClient defaults to http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimSuffix(base, "/"), hc: httpClient}
}

// decodeErr reconstructs a typed error from an error response body, so
// errors.Is works identically on both sides of the wire: filesystem
// sentinels map back to fsapi errors, transient cloud faults (503s) map
// back to the objstore sentinels callers' retry logic classifies.
func decodeErr(resp *http.Response) error {
	var ae apiError
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &ae); err != nil {
		return fmt.Errorf("httpapi: status %d: %s", resp.StatusCode, data)
	}
	var base error
	switch ae.Code {
	case "not_found":
		base = fsapi.ErrNotFound
	case "exists":
		base = fsapi.ErrExists
	case "not_dir":
		base = fsapi.ErrNotDir
	case "is_dir":
		base = fsapi.ErrIsDir
	case "invalid_path":
		base = fsapi.ErrInvalidPath
	case "cross_account":
		base = fsapi.ErrCrossAccount
	case "node_down":
		base = objstore.ErrNodeDown
	case "no_quorum":
		base = objstore.ErrNoQuorum
	default:
		return fmt.Errorf("httpapi: %s", ae.Error)
	}
	return fmt.Errorf("httpapi: %s: %w", ae.Error, base)
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, decodeErr(resp)
	}
	return resp, nil
}

// doDiscard performs a request whose successful body is irrelevant.
func (c *Client) doDiscard(ctx context.Context, method, path string, body []byte) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// CreateAccount provisions an account.
func (c *Client) CreateAccount(ctx context.Context, account string) error {
	return c.doDiscard(ctx, http.MethodPut, "/v1/accounts/"+url.PathEscape(account), nil)
}

// DeleteAccount removes an account and its filesystem.
func (c *Client) DeleteAccount(ctx context.Context, account string) error {
	return c.doDiscard(ctx, http.MethodDelete, "/v1/accounts/"+url.PathEscape(account), nil)
}

// AccountExists probes an account.
func (c *Client) AccountExists(ctx context.Context, account string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.base+"/v1/accounts/"+url.PathEscape(account), nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}

// ReadRelative performs the quick O(1) namespace-decorated access (§3.2).
func (c *Client) ReadRelative(ctx context.Context, account, rel string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/rel/"+url.PathEscape(account)+"/"+escapePath(rel), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// ResolveNS asks the server for a directory's namespace UUID, the key to
// subsequent quick relative accesses.
func (c *Client) ResolveNS(ctx context.Context, account, path string) (string, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return "", err
	}
	resp, err := c.do(ctx, http.MethodGet, "/v1/ns/"+url.PathEscape(account)+escapePath(p), nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("httpapi: decode ns: %w", err)
	}
	return out["ns"], nil
}

// Usage fetches an account's filesystem footprint.
func (c *Client) Usage(ctx context.Context, account string) (h2fs.Usage, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/usage/"+url.PathEscape(account), nil)
	if err != nil {
		return h2fs.Usage{}, err
	}
	defer resp.Body.Close()
	var u h2fs.Usage
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		return h2fs.Usage{}, fmt.Errorf("httpapi: decode usage: %w", err)
	}
	return u, nil
}

// Stats fetches the server's monitoring snapshot.
func (c *Client) Stats(ctx context.Context) (StatsPayload, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return StatsPayload{}, err
	}
	defer resp.Body.Close()
	var out StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return StatsPayload{}, fmt.Errorf("httpapi: decode stats: %w", err)
	}
	return out, nil
}

// FS returns the account-scoped filesystem view.
func (c *Client) FS(account string) *ClientFS {
	return &ClientFS{c: c, account: account}
}

// ClientFS is an account view over the HTTP API; it implements
// fsapi.FileSystem, so anything that drives a local filesystem — the
// conformance suite included — can drive a remote H2Cloud.
type ClientFS struct {
	c       *Client
	account string
}

var _ fsapi.FileSystem = (*ClientFS)(nil)

// escapePath escapes each path segment but keeps separators.
func escapePath(p string) string {
	segs := strings.Split(p, "/")
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return strings.Join(segs, "/")
}

// route builds "/v1/<verb>/<account><path>". Paths are validated and
// canonicalized client-side: URL normalization would otherwise rewrite
// sequences like "//" or "/../" before the server could reject them.
func (f *ClientFS) route(verb, path string) (string, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return "", err
	}
	return "/v1/" + verb + "/" + url.PathEscape(f.account) + escapePath(p), nil
}

// Mkdir implements fsapi.FileSystem.
func (f *ClientFS) Mkdir(ctx context.Context, path string) error {
	r, err := f.route("mkdir", path)
	if err != nil {
		return err
	}
	return f.c.doDiscard(ctx, http.MethodPost, r, nil)
}

// Rmdir implements fsapi.FileSystem.
func (f *ClientFS) Rmdir(ctx context.Context, path string) error {
	r, err := f.route("rmdir", path)
	if err != nil {
		return err
	}
	return f.c.doDiscard(ctx, http.MethodPost, r, nil)
}

// Move implements fsapi.FileSystem.
func (f *ClientFS) Move(ctx context.Context, src, dst string) error {
	q := url.Values{"src": {src}, "dst": {dst}}
	return f.c.doDiscard(ctx, http.MethodPost,
		"/v1/move/"+url.PathEscape(f.account)+"?"+q.Encode(), nil)
}

// Copy implements fsapi.FileSystem.
func (f *ClientFS) Copy(ctx context.Context, src, dst string) error {
	q := url.Values{"src": {src}, "dst": {dst}}
	return f.c.doDiscard(ctx, http.MethodPost,
		"/v1/copy/"+url.PathEscape(f.account)+"?"+q.Encode(), nil)
}

// List implements fsapi.FileSystem.
func (f *ClientFS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	r, err := f.route("list", path)
	if err != nil {
		return nil, err
	}
	if detail {
		r += "?detail=1"
	}
	resp, err := f.c.do(ctx, http.MethodGet, r, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var entries []Entry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, fmt.Errorf("httpapi: decode list: %w", err)
	}
	out := make([]fsapi.EntryInfo, len(entries))
	for i, e := range entries {
		out[i] = fsapi.EntryInfo{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}
	}
	return out, nil
}

// ListPage lists with Swift-style pagination: at most limit entries
// strictly after marker, plus the next marker ("" when exhausted).
func (f *ClientFS) ListPage(ctx context.Context, path string, detail bool, marker string, limit int) ([]fsapi.EntryInfo, string, error) {
	r, err := f.route("list", path)
	if err != nil {
		return nil, "", err
	}
	q := url.Values{}
	if detail {
		q.Set("detail", "1")
	}
	if marker != "" {
		q.Set("marker", marker)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if enc := q.Encode(); enc != "" {
		r += "?" + enc
	}
	resp, err := f.c.do(ctx, http.MethodGet, r, nil)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	var entries []Entry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, "", fmt.Errorf("httpapi: decode list: %w", err)
	}
	out := make([]fsapi.EntryInfo, len(entries))
	for i, e := range entries {
		out[i] = fsapi.EntryInfo{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}
	}
	return out, resp.Header.Get("X-Next-Marker"), nil
}

// WriteFile implements fsapi.FileSystem.
func (f *ClientFS) WriteFile(ctx context.Context, path string, data []byte) error {
	r, err := f.route("fs", path)
	if err != nil {
		return err
	}
	if data == nil {
		data = []byte{}
	}
	return f.c.doDiscard(ctx, http.MethodPut, r, data)
}

// ReadFile implements fsapi.FileSystem.
func (f *ClientFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	r, err := f.route("fs", path)
	if err != nil {
		return nil, err
	}
	resp, err := f.c.do(ctx, http.MethodGet, r, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// WriteFileChunked streams r into a chunked (large object) file: the
// server stores chunkSize-byte segment objects plus a manifest, so the
// upload never materializes in middleware memory and later ranged reads
// touch only the overlapped segments.
func (f *ClientFS) WriteFileChunked(ctx context.Context, path string, r io.Reader, chunkSize int) error {
	route, err := f.route("fs", path)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, f.c.base+route, r)
	if err != nil {
		return err
	}
	req.Header.Set("X-Chunk-Size", strconv.Itoa(chunkSize))
	resp, err := f.c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeErr(resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// ReadFileRange reads length bytes starting at offset (length < 0 means
// to the end) via an HTTP Range request.
func (f *ClientFS) ReadFileRange(ctx context.Context, path string, offset, length int64) ([]byte, error) {
	r, err := f.route("fs", path)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.c.base+r, nil)
	if err != nil {
		return nil, err
	}
	if length < 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", offset))
	} else {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", offset, offset+length-1))
	}
	resp, err := f.c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, decodeErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Stat implements fsapi.FileSystem.
func (f *ClientFS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	r, err := f.route("stat", path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	resp, err := f.c.do(ctx, http.MethodGet, r, nil)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	defer resp.Body.Close()
	var e Entry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		return fsapi.EntryInfo{}, fmt.Errorf("httpapi: decode stat: %w", err)
	}
	return fsapi.EntryInfo{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}, nil
}

// Remove implements fsapi.FileSystem.
func (f *ClientFS) Remove(ctx context.Context, path string) error {
	r, err := f.route("fs", path)
	if err != nil {
		return err
	}
	return f.c.doDiscard(ctx, http.MethodDelete, r, nil)
}
