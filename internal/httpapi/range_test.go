package httpapi

import (
	"context"
	"net/http"
	"testing"
)

func TestRangedReadsOverHTTP(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")
	mustOK(t, fs.WriteFile(ctx, "/video.bin", []byte("0123456789abcdef")))

	cases := []struct {
		offset, length int64
		want           string
	}{
		{0, 4, "0123"},
		{4, 4, "4567"},
		{10, -1, "abcdef"},
		{10, 100, "abcdef"}, // length past end clamps
		{100, 4, ""},        // offset past end is empty
	}
	for _, c := range cases {
		got, err := fs.ReadFileRange(ctx, "/video.bin", c.offset, c.length)
		mustOK(t, err)
		if string(got) != c.want {
			t.Fatalf("range(%d,%d) = %q, want %q", c.offset, c.length, got, c.want)
		}
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		in             string
		offset, length int64
		ok             bool
	}{
		{"bytes=0-3", 0, 4, true},
		{"bytes=10-", 10, -1, true},
		{"bytes=5-5", 5, 1, true},
		{"bytes=-5", 0, 0, false},      // suffix ranges unsupported
		{"bytes=3-1", 0, 0, false},     // inverted
		{"bytes=0-1,4-5", 0, 0, false}, // multi-range unsupported
		{"items=0-1", 0, 0, false},
		{"bytes=x-1", 0, 0, false},
		{"bytes=1-x", 0, 0, false},
	}
	for _, c := range cases {
		off, l, ok := parseRange(c.in)
		if ok != c.ok || (ok && (off != c.offset || l != c.length)) {
			t.Errorf("parseRange(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.in, off, l, ok, c.offset, c.length, c.ok)
		}
	}
}

func TestBadRangeHeaderStatus(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	mustOK(t, client.FS("alice").WriteFile(ctx, "/f", []byte("x")))
	req, err := clientRawRangeRequest(client, "/v1/fs/alice/f", "bytes=bogus")
	mustOK(t, err)
	if req != 416 {
		t.Fatalf("bad range status = %d, want 416", req)
	}
}

// clientRawRangeRequest issues a GET with a raw Range header and returns
// the status code.
func clientRawRangeRequest(c *Client, path, rng string) (int, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Range", rng)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}
