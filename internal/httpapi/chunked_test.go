package httpapi

import (
	"bytes"
	"context"
	"testing"
)

func TestChunkedUploadOverHTTP(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")

	content := make([]byte, 5*700+123)
	for i := range content {
		content[i] = byte(i)
	}
	mustOK(t, fs.WriteFileChunked(ctx, "/video.bin", bytes.NewReader(content), 700))

	// Whole read reassembles.
	got, err := fs.ReadFile(ctx, "/video.bin")
	mustOK(t, err)
	if !bytes.Equal(got, content) {
		t.Fatalf("chunked upload read back %d bytes, want %d", len(got), len(content))
	}
	// Stat reports the logical size.
	info, err := fs.Stat(ctx, "/video.bin")
	mustOK(t, err)
	if info.Size != int64(len(content)) {
		t.Fatalf("Size = %d", info.Size)
	}
	// Ranged read across a segment boundary.
	part, err := fs.ReadFileRange(ctx, "/video.bin", 690, 20)
	mustOK(t, err)
	if !bytes.Equal(part, content[690:710]) {
		t.Fatalf("ranged read = %v", part)
	}
	// Removal reclaims everything the account holds except the root pieces.
	mustOK(t, fs.Remove(ctx, "/video.bin"))
	u, err := client.Usage(ctx, "alice")
	mustOK(t, err)
	if u.Files != 0 || u.Bytes != 0 {
		t.Fatalf("usage after remove = %+v", u)
	}
}

func TestChunkedUploadBadHeader(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	err := client.FS("alice").WriteFileChunked(ctx, "/f", bytes.NewReader([]byte("x")), -5)
	if err == nil {
		t.Fatal("negative chunk size accepted")
	}
}
