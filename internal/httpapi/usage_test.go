package httpapi

import (
	"context"
	"errors"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

func TestUsageOverHTTP(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")
	mustOK(t, fs.Mkdir(ctx, "/a"))
	mustOK(t, fs.Mkdir(ctx, "/a/b"))
	mustOK(t, fs.WriteFile(ctx, "/a/x", []byte("12345")))
	mustOK(t, fs.WriteFile(ctx, "/a/b/y", []byte("123")))

	u, err := client.Usage(ctx, "alice")
	mustOK(t, err)
	if u.Dirs != 2 || u.Files != 2 || u.Bytes != 8 {
		t.Fatalf("usage = %+v", u)
	}
	if _, err := client.Usage(ctx, "ghost"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("usage of missing account = %v", err)
	}
}
