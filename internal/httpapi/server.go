// Package httpapi implements the Inbound API of an H2Middleware (paper
// §4.3): the web APIs through which PC/mobile clients and browsers reach
// H2Cloud.
//
// Three API families are exposed, as in the paper: Account APIs that
// create or delete a user's account, Directory APIs that traverse or
// modify directory structure (MKDIR, RMDIR, MOVE, COPY, LIST), and File
// Content APIs providing READ and WRITE access. A Go client wrapping the
// same routes lives in client.go; it implements fsapi.FileSystem so the
// whole stack can be driven end-to-end.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// Server serves the H2Cloud web APIs over one middleware.
type Server struct {
	mw  *h2fs.Middleware
	mux *http.ServeMux
	reg *metrics.Registry
	now func() time.Time
}

// NewServer builds the HTTP handler for a middleware, timing requests on
// the wall clock — the inbound web API is the daemon edge where real
// time is allowed to enter.
func NewServer(mw *h2fs.Middleware) *Server {
	return NewServerWithClock(mw, time.Now)
}

// NewServerWithClock builds the HTTP handler with an injected clock for
// request metrics, making handler-latency tests deterministic. A nil now
// falls back to the wall clock.
func NewServerWithClock(mw *h2fs.Middleware, now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	s := &Server{mw: mw, mux: http.NewServeMux(), reg: metrics.NewRegistryWithClock(now), now: now}
	s.mux.HandleFunc("PUT /v1/accounts/{account}", s.createAccount)
	s.mux.HandleFunc("DELETE /v1/accounts/{account}", s.deleteAccount)
	s.mux.HandleFunc("HEAD /v1/accounts/{account}", s.headAccount)
	s.mux.HandleFunc("GET /v1/fs/{account}/{path...}", s.readFile)
	s.mux.HandleFunc("PUT /v1/fs/{account}/{path...}", s.writeFile)
	s.mux.HandleFunc("DELETE /v1/fs/{account}/{path...}", s.removeFile)
	s.mux.HandleFunc("GET /v1/stat/{account}/{path...}", s.stat)
	s.mux.HandleFunc("GET /v1/list/{account}/{path...}", s.list)
	s.mux.HandleFunc("POST /v1/mkdir/{account}/{path...}", s.mkdir)
	s.mux.HandleFunc("POST /v1/rmdir/{account}/{path...}", s.rmdir)
	s.mux.HandleFunc("POST /v1/move/{account}", s.move)
	s.mux.HandleFunc("POST /v1/copy/{account}", s.copy)
	s.mux.HandleFunc("GET /v1/rel/{account}/{rel...}", s.readRelative)
	s.mux.HandleFunc("GET /v1/ns/{account}/{path...}", s.resolveNS)
	s.mux.HandleFunc("GET /v1/usage/{account}", s.usage)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	return s
}

// ServeHTTP implements http.Handler, recording per-route metrics for the
// monitoring module (§4.2).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	var err error
	if sw.status >= 500 {
		err = fmt.Errorf("status %d", sw.status)
	}
	s.reg.Observe(routeName(r), s.now().Sub(start), err)
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// routeName maps a request to its metrics bucket: the verb segment of the
// /v1/<verb>/... routes plus the method.
func routeName(r *http.Request) string {
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/")
	if !ok {
		return r.Method + " other"
	}
	verb := rest
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		verb = rest[:i]
	}
	return r.Method + " " + verb
}

// StatsPayload is the /v1/stats response body.
type StatsPayload struct {
	Node    int                  `json:"node"`
	Ops     []metrics.OpSnapshot `json:"ops"`
	Cluster *cluster.Stats       `json:"cluster,omitempty"`
	// Counters carries the robustness counters (retries, injected faults,
	// degraded reads) when the middleware has a registry configured.
	Counters []metrics.CounterSnapshot `json:"counters,omitempty"`
	// GCQueue carries reclamation-queue depth and lifetime counters when
	// the durable GC queue is configured.
	GCQueue *h2fs.GCQueueStats `json:"gcQueue,omitempty"`
}

// stats serves the monitoring snapshot: per-route operation metrics plus
// the storage cloud's primitive counters when the backing store exposes
// them.
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	payload := StatsPayload{Node: s.mw.Node(), Ops: s.reg.Snapshot()}
	if c, ok := s.mw.Store().(*cluster.Cluster); ok {
		st := c.Stats()
		payload.Cluster = &st
	}
	payload.Counters = s.mw.Metrics().Counters()
	if q, err := s.mw.GCQueueSnapshot(r.Context()); err == nil && q != nil {
		// A failed snapshot only drops the gauge from this response; the
		// rest of the monitoring payload is still worth serving.
		payload.GCQueue = q
	}
	writeJSON(w, payload)
}

// usage serves the account's filesystem footprint.
func (s *Server) usage(w http.ResponseWriter, r *http.Request) {
	u, err := s.mw.Usage(r.Context(), r.PathValue("account"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, u)
}

// resolveNS resolves a directory path to its namespace UUID so clients
// can use the quick O(1) relative-access method afterwards.
func (s *Server) resolveNS(w http.ResponseWriter, r *http.Request) {
	ns, err := s.mw.ResolveNS(r.Context(), r.PathValue("account"), fsPath(r))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, map[string]string{"ns": ns})
}

// Entry is the JSON form of fsapi.EntryInfo.
type Entry struct {
	Name    string    `json:"name"`
	IsDir   bool      `json:"isDir"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"modTime"`
}

func toEntry(e fsapi.EntryInfo) Entry {
	return Entry{Name: e.Name, IsDir: e.IsDir, Size: e.Size, ModTime: e.ModTime}
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeErr maps fsapi's and the store's typed errors onto HTTP statuses.
// Transient cloud faults become 503 + Retry-After so clients can tell
// "gone" (404, give up) from "unavailable" (503, retry) — the sentinel
// survives the wire round trip via the code field.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	code := "internal"
	switch {
	case errors.Is(err, objstore.ErrNodeDown):
		status, code = http.StatusServiceUnavailable, "node_down"
	case errors.Is(err, objstore.ErrNoQuorum):
		status, code = http.StatusServiceUnavailable, "no_quorum"
	case errors.Is(err, fsapi.ErrNotFound), errors.Is(err, objstore.ErrNotFound):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, fsapi.ErrExists):
		status, code = http.StatusConflict, "exists"
	case errors.Is(err, fsapi.ErrNotDir):
		status, code = http.StatusConflict, "not_dir"
	case errors.Is(err, fsapi.ErrIsDir):
		status, code = http.StatusConflict, "is_dir"
	case errors.Is(err, fsapi.ErrInvalidPath):
		status, code = http.StatusBadRequest, "invalid_path"
	case errors.Is(err, fsapi.ErrCrossAccount):
		status, code = http.StatusForbidden, "cross_account"
	}
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// fsPath reconstructs the absolute filesystem path from the wildcard.
func fsPath(r *http.Request) string {
	return "/" + r.PathValue("path")
}

func (s *Server) createAccount(w http.ResponseWriter, r *http.Request) {
	if err := s.mw.CreateAccount(r.Context(), r.PathValue("account")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) deleteAccount(w http.ResponseWriter, r *http.Request) {
	if err := s.mw.DeleteAccount(r.Context(), r.PathValue("account")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) headAccount(w http.ResponseWriter, r *http.Request) {
	if !s.mw.AccountExists(r.Context(), r.PathValue("account")) {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) readFile(w http.ResponseWriter, r *http.Request) {
	account, path := r.PathValue("account"), fsPath(r)
	if rng := r.Header.Get("Range"); rng != "" {
		offset, length, ok := parseRange(rng)
		if !ok {
			w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
			return
		}
		data, err := s.mw.ReadFileRange(r.Context(), account, path, offset, length)
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Range",
			fmt.Sprintf("bytes %d-%d/*", offset, offset+int64(len(data))-1))
		w.WriteHeader(http.StatusPartialContent)
		_, _ = w.Write(data)
		return
	}
	data, err := s.mw.ReadFile(r.Context(), account, path)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// parseRange understands the single-range form "bytes=start-end" (end
// optional and inclusive, as in RFC 9110).
func parseRange(h string) (offset, length int64, ok bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.ContainsRune(spec, ',') {
		return 0, 0, false
	}
	startStr, endStr, found := strings.Cut(spec, "-")
	if !found || startStr == "" {
		return 0, 0, false // suffix ranges ("-N") are not supported
	}
	start, err := strconv.ParseInt(startStr, 10, 64)
	if err != nil || start < 0 {
		return 0, 0, false
	}
	if endStr == "" {
		return start, -1, true
	}
	end, err := strconv.ParseInt(endStr, 10, 64)
	if err != nil || end < start {
		return 0, 0, false
	}
	return start, end - start + 1, true
}

func (s *Server) writeFile(w http.ResponseWriter, r *http.Request) {
	if cs := r.Header.Get("X-Chunk-Size"); cs != "" {
		// Chunked (large object) upload: stream the body into segment
		// objects plus a manifest without buffering the whole file.
		chunkSize, err := strconv.Atoi(cs)
		if err != nil || chunkSize <= 0 {
			writeErr(w, fmt.Errorf("bad X-Chunk-Size %q: %w", cs, fsapi.ErrInvalidPath))
			return
		}
		if err := s.mw.WriteFileChunked(r.Context(), r.PathValue("account"), fsPath(r), r.Body, chunkSize); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, fmt.Errorf("read body: %w", err))
		return
	}
	if err := s.mw.WriteFile(r.Context(), r.PathValue("account"), fsPath(r), data); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) removeFile(w http.ResponseWriter, r *http.Request) {
	if err := s.mw.Remove(r.Context(), r.PathValue("account"), fsPath(r)); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) stat(w http.ResponseWriter, r *http.Request) {
	info, err := s.mw.Stat(r.Context(), r.PathValue("account"), fsPath(r))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, toEntry(info))
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	detail := q.Get("detail") == "1"
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("bad limit %q: %w", ls, fsapi.ErrInvalidPath))
			return
		}
		limit = n
	}
	entries, next, err := s.mw.ListPage(r.Context(), r.PathValue("account"), fsPath(r), detail, q.Get("marker"), limit)
	if err != nil {
		writeErr(w, err)
		return
	}
	if next != "" {
		w.Header().Set("X-Next-Marker", next)
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = toEntry(e)
	}
	writeJSON(w, out)
}

func (s *Server) mkdir(w http.ResponseWriter, r *http.Request) {
	if err := s.mw.Mkdir(r.Context(), r.PathValue("account"), fsPath(r)); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) rmdir(w http.ResponseWriter, r *http.Request) {
	if err := s.mw.Rmdir(r.Context(), r.PathValue("account"), fsPath(r)); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) move(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if err := s.mw.Move(r.Context(), r.PathValue("account"), src, dst); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) copy(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if err := s.mw.Copy(r.Context(), r.PathValue("account"), src, dst); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) readRelative(w http.ResponseWriter, r *http.Request) {
	data, _, err := s.mw.AccessRelative(r.Context(), r.PathValue("account"), r.PathValue("rel"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}
