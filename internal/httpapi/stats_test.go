package httpapi

import (
	"context"
	"errors"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

func TestResolveNSAndQuickAccessOverHTTP(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")
	mustOK(t, fs.Mkdir(ctx, "/deep"))
	mustOK(t, fs.Mkdir(ctx, "/deep/er"))
	mustOK(t, fs.WriteFile(ctx, "/deep/er/file", []byte("payload")))

	ns, err := client.ResolveNS(ctx, "alice", "/deep/er")
	mustOK(t, err)
	if ns == "" {
		t.Fatal("empty namespace")
	}
	data, err := client.ReadRelative(ctx, "alice", ns+"::file")
	mustOK(t, err)
	if string(data) != "payload" {
		t.Fatalf("quick access = %q", data)
	}
	if _, err := client.ResolveNS(ctx, "alice", "/missing"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("ResolveNS(missing) = %v", err)
	}
	if _, err := client.ResolveNS(ctx, "alice", "/deep/er/file"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("ResolveNS(file) = %v", err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")
	mustOK(t, fs.Mkdir(ctx, "/d"))
	mustOK(t, fs.WriteFile(ctx, "/d/f", []byte("x")))
	if _, err := fs.ReadFile(ctx, "/nope"); err == nil {
		t.Fatal("expected miss")
	}

	stats, err := client.Stats(ctx)
	mustOK(t, err)
	if stats.Cluster == nil || stats.Cluster.Objects == 0 {
		t.Fatalf("cluster stats missing: %+v", stats)
	}
	byName := map[string]int64{}
	for _, op := range stats.Ops {
		byName[op.Name] = op.Count
	}
	if byName["POST mkdir"] != 1 {
		t.Fatalf("mkdir count = %d (%v)", byName["POST mkdir"], byName)
	}
	if byName["PUT fs"] != 1 || byName["GET fs"] != 1 {
		t.Fatalf("fs op counts wrong: %v", byName)
	}
	// A 404 is a client error, not a server error: no error counted.
	for _, op := range stats.Ops {
		if op.Errors != 0 {
			t.Fatalf("unexpected server errors: %+v", op)
		}
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
