package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// newFaultableStack builds a client/server pair whose cluster is exposed
// for failure injection, with the middleware's retry layer and counter
// registry configured.
func newFaultableStack(t *testing.T) (*Client, *cluster.Cluster, string) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := h2fs.New(h2fs.Config{
		Store: c, Node: 1, EagerGC: true,
		Retry: h2fs.DefaultRetryPolicy(), Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mw))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), c, ts.URL
}

// TestTransientErrorsSurviveTheWire checks the end-to-end typed-error
// contract: a transient cloud fault inside the middleware becomes a 503
// with Retry-After, and the client reconstructs the exact objstore
// sentinel so errors.Is-based retry logic works identically on both
// sides of the HTTP boundary.
func TestTransientErrorsSurviveTheWire(t *testing.T) {
	client, c, base := newFaultableStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")
	mustOK(t, fs.WriteFile(ctx, "/f", []byte("x")))
	if _, err := fs.ReadFile(ctx, "/f"); err != nil {
		t.Fatal(err)
	}

	// Every node down: reads hit a dead cloud, not a missing file.
	for _, id := range c.Ring().DeviceIDs() {
		c.SetNodeDown(id, true)
	}
	_, err := fs.ReadFile(ctx, "/f")
	if !errors.Is(err, objstore.ErrNodeDown) {
		t.Fatalf("ReadFile over dead cloud = %v, want ErrNodeDown", err)
	}
	if errors.Is(err, objstore.ErrNotFound) {
		t.Fatal("transient fault was conflated with not-found")
	}
	// Writes cannot reach quorum either.
	err = fs.WriteFile(ctx, "/g", []byte("y"))
	if !errors.Is(err, objstore.ErrNoQuorum) {
		t.Fatalf("WriteFile over dead cloud = %v, want ErrNoQuorum", err)
	}

	// The raw response is a 503 carrying Retry-After.
	resp, err := http.Get(base + "/v1/fs/alice/f")
	mustOK(t, err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}

	// A genuinely missing file keeps its 404 semantics after recovery.
	for _, id := range c.Ring().DeviceIDs() {
		c.SetNodeDown(id, false)
	}
	if _, err := fs.ReadFile(ctx, "/nope"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("ReadFile(missing) after recovery = %v, want ErrNotFound", err)
	}
}

// TestStatsExposeRobustnessCounters checks that the middleware's retry
// counters ride along in /v1/stats.
func TestStatsExposeRobustnessCounters(t *testing.T) {
	client, c, _ := newFaultableStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")
	mustOK(t, fs.WriteFile(ctx, "/f", []byte("x")))
	for _, id := range c.Ring().DeviceIDs() {
		c.SetNodeDown(id, true)
	}
	if _, err := fs.ReadFile(ctx, "/f"); err == nil {
		t.Fatal("read over dead cloud succeeded")
	}
	for _, id := range c.Ring().DeviceIDs() {
		c.SetNodeDown(id, false)
	}
	stats, err := client.Stats(ctx)
	mustOK(t, err)
	byName := map[string]int64{}
	for _, ctr := range stats.Counters {
		byName[ctr.Name] = ctr.Value
	}
	if byName["retry.attempts"] == 0 {
		t.Fatalf("retry.attempts missing from stats counters: %v", stats.Counters)
	}
}

// TestStatsExposeGCQueue checks that the reclamation-queue gauge rides
// along in /v1/stats when the durable queue is configured, and is simply
// absent when it is not.
func TestStatsExposeGCQueue(t *testing.T) {
	ctx := context.Background()
	client, _, _ := newFaultableStack(t)
	mustOK(t, client.CreateAccount(ctx, "alice"))
	stats, err := client.Stats(ctx)
	mustOK(t, err)
	if stats.GCQueue != nil {
		t.Fatalf("queue gauge present without GCQueue configured: %+v", stats.GCQueue)
	}

	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	mustOK(t, err)
	mw, err := h2fs.New(h2fs.Config{
		Store: c, Node: 1, GCQueue: true, Metrics: metrics.NewRegistry(),
	})
	mustOK(t, err)
	ts := httptest.NewServer(NewServer(mw))
	t.Cleanup(ts.Close)
	qc := NewClient(ts.URL, ts.Client())
	mustOK(t, qc.CreateAccount(ctx, "alice"))
	fs := qc.FS("alice")
	mustOK(t, fs.Mkdir(ctx, "/doomed"))
	mustOK(t, fs.WriteFile(ctx, "/doomed/f", []byte("x")))
	mustOK(t, fs.Rmdir(ctx, "/doomed"))

	stats, err = qc.Stats(ctx)
	mustOK(t, err)
	if stats.GCQueue == nil || stats.GCQueue.Pending != 1 || stats.GCQueue.Enqueued != 1 {
		t.Fatalf("queue gauge = %+v, want 1 pending / 1 enqueued", stats.GCQueue)
	}
	if _, err := mw.DrainGC(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err = qc.Stats(ctx)
	mustOK(t, err)
	if stats.GCQueue == nil || stats.GCQueue.Pending != 0 || stats.GCQueue.Reclaimed != 1 {
		t.Fatalf("queue gauge after drain = %+v, want 0 pending / 1 reclaimed", stats.GCQueue)
	}
}
