package httpapi

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

func TestListPageOverHTTP(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	fs := client.FS("alice")
	mustOK(t, fs.Mkdir(ctx, "/big"))
	const n = 25
	for i := 0; i < n; i++ {
		mustOK(t, fs.WriteFile(ctx, fmt.Sprintf("/big/f%03d", i), []byte("xy")))
	}
	seen := 0
	marker := ""
	for {
		entries, next, err := fs.ListPage(ctx, "/big", true, marker, 10)
		mustOK(t, err)
		for _, e := range entries {
			if e.Size != 2 {
				t.Fatalf("detail lost in pagination: %+v", e)
			}
		}
		seen += len(entries)
		if next == "" {
			break
		}
		marker = next
	}
	if seen != n {
		t.Fatalf("paginated %d entries, want %d", seen, n)
	}
}

func TestListPageBadLimit(t *testing.T) {
	client, _ := newStack(t)
	ctx := context.Background()
	mustOK(t, client.CreateAccount(ctx, "alice"))
	// Drive the raw endpoint with a bad limit.
	resp, err := client.hc.Get(client.base + "/v1/list/alice/?limit=notanumber")
	mustOK(t, err)
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad limit status = %d", resp.StatusCode)
	}
	_, _, err = client.FS("alice").ListPage(ctx, "bad-path", false, "", 1)
	if !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("ListPage(bad path) = %v", err)
	}
}
