package storemw

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// fakeStore is a scripted in-memory Store (no Batcher): per-name
// transient-failure countdowns, a per-op virtual cost, and an op log.
type fakeStore struct {
	mu       sync.Mutex
	objects  map[string][]byte
	failures map[string]int // remaining transient failures per name
	cost     time.Duration
	ops      []string
}

func newFakeStore(cost time.Duration) *fakeStore {
	return &fakeStore{objects: map[string][]byte{}, failures: map[string]int{}, cost: cost}
}

func (f *fakeStore) enter(ctx context.Context, op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = append(f.ops, op+" "+name)
	vclock.Charge(ctx, f.cost)
	if f.failures[name] > 0 {
		f.failures[name]--
		return fmt.Errorf("fake: %s %q: %w", op, name, objstore.ErrNodeDown)
	}
	return nil
}

func (f *fakeStore) opCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ops)
}

func (f *fakeStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	if err := f.enter(ctx, "put", name); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.objects[name] = append([]byte(nil), data...)
	return nil
}

func (f *fakeStore) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	if err := f.enter(ctx, "get", name); err != nil {
		return nil, objstore.ObjectInfo{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.objects[name]
	if !ok {
		return nil, objstore.ObjectInfo{}, objstore.ErrNotFound
	}
	return append([]byte(nil), data...), objstore.ObjectInfo{Name: name, Size: int64(len(data))}, nil
}

func (f *fakeStore) GetRange(ctx context.Context, name string, offset, length int64) ([]byte, objstore.ObjectInfo, error) {
	return f.Get(ctx, name)
}

func (f *fakeStore) Head(ctx context.Context, name string) (objstore.ObjectInfo, error) {
	_, info, err := f.Get(ctx, name)
	return info, err
}

func (f *fakeStore) Delete(ctx context.Context, name string) error {
	if err := f.enter(ctx, "delete", name); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.objects[name]; !ok {
		return objstore.ErrNotFound
	}
	delete(f.objects, name)
	return nil
}

func (f *fakeStore) Copy(ctx context.Context, src, dst string) error {
	if err := f.enter(ctx, "copy", src); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.objects[src]
	if !ok {
		return objstore.ErrNotFound
	}
	f.objects[dst] = append([]byte(nil), data...)
	return nil
}

func TestStackOrderAndBase(t *testing.T) {
	base := newFakeStore(0)
	reg := metrics.NewRegistry()
	s := Stack(base, Retry(DefaultRetryPolicy(), reg), Metrics(reg))
	// Last layer is outermost.
	if _, ok := s.(*metricsStore); !ok {
		t.Fatalf("outermost ring is %T, want *metricsStore", s)
	}
	w := s.(Wrapper)
	if _, ok := w.Unwrap().(*retryStore); !ok {
		t.Fatalf("middle ring is %T, want *retryStore", w.Unwrap())
	}
	if got := Base(s); got != objstore.Store(base) {
		t.Fatalf("Base = %T, want the fake base store", got)
	}
	if got := Stack(base); got != objstore.Store(base) {
		t.Fatal("empty Stack should return the base unchanged")
	}
	if got := Stack(base, nil, nil); got != objstore.Store(base) {
		t.Fatal("nil layers should be skipped")
	}
}

func TestRetrySingularRecoversAndCharges(t *testing.T) {
	base := newFakeStore(0)
	reg := metrics.NewRegistry()
	policy := RetryPolicy{MaxAttempts: 3, BaseBackoff: 4 * time.Millisecond, MaxBackoff: 32 * time.Millisecond, Seed: 7}
	s := Stack(base, Retry(policy, reg))

	base.failures["a"] = 2
	tr := vclock.NewTracker()
	ctx := vclock.With(context.Background(), tr)
	if err := s.Put(ctx, "a", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("retry.attempts"); got != 2 {
		t.Fatalf("retry.attempts = %d, want 2", got)
	}
	want := policy.Backoff("put", "a", 0) + policy.Backoff("put", "a", 1)
	if tr.Elapsed() != want {
		t.Fatalf("charged %v, want the two jittered backoffs %v", tr.Elapsed(), want)
	}
	if got := reg.Counter("retry.exhausted"); got != 0 {
		t.Fatalf("retry.exhausted = %d, want 0", got)
	}
}

func TestRetryExhaustion(t *testing.T) {
	base := newFakeStore(0)
	reg := metrics.NewRegistry()
	s := Stack(base, Retry(RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, Seed: 1}, reg))
	base.failures["gone"] = 10
	err := s.Put(context.Background(), "gone", nil, nil)
	if !errors.Is(err, objstore.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if got := reg.Counter("retry.exhausted"); got != 1 {
		t.Fatalf("retry.exhausted = %d, want 1", got)
	}
	// Permanent errors surface without retrying.
	before := base.opCount()
	if _, _, err := s.Get(context.Background(), "missing"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if base.opCount() != before+1 {
		t.Fatal("permanent error was retried")
	}
}

func TestRetryBatchRetriesOnlyTransientSlots(t *testing.T) {
	base := newFakeStore(0)
	reg := metrics.NewRegistry()
	policy := RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 16 * time.Millisecond, Seed: 3}
	s := Stack(base, Retry(policy, reg))
	ctx := context.Background()
	for _, name := range []string{"a", "b", "c"} {
		if err := base.Put(ctx, name, []byte(name), nil); err != nil {
			t.Fatal(err)
		}
	}
	base.failures["b"] = 1 // recovers on the first retry wave
	base.failures["c"] = 9 // exhausts

	tr := vclock.NewTracker()
	out := objstore.MultiGet(vclock.With(ctx, tr), s, []string{"a", "b", "c", "nope"})
	if out[0].Err != nil || string(out[0].Data) != "a" {
		t.Fatalf("slot 0 = (%q, %v), want clean read", out[0].Data, out[0].Err)
	}
	if out[1].Err != nil || string(out[1].Data) != "b" {
		t.Fatalf("slot 1 = (%q, %v), want recovery after one wave", out[1].Data, out[1].Err)
	}
	if !errors.Is(out[2].Err, objstore.ErrNodeDown) {
		t.Fatalf("slot 2 err = %v, want exhausted ErrNodeDown", out[2].Err)
	}
	if !errors.Is(out[3].Err, objstore.ErrNotFound) {
		t.Fatalf("slot 3 err = %v, want permanent ErrNotFound untouched", out[3].Err)
	}
	// Wave 0 retried {b, c}; wave 1 retried {c}: 3 attempt increments, one
	// exhausted slot, one shared backoff charge per wave.
	if got := reg.Counter("retry.attempts"); got != 3 {
		t.Fatalf("retry.attempts = %d, want 3", got)
	}
	if got := reg.Counter("retry.exhausted"); got != 1 {
		t.Fatalf("retry.exhausted = %d, want 1", got)
	}
	want := policy.Backoff("get", "b", 0) + policy.Backoff("get", "c", 1)
	if tr.Elapsed() != want {
		t.Fatalf("charged %v, want one shared backoff per wave = %v", tr.Elapsed(), want)
	}
}

func TestMetricsObservesWithoutDoubleCharging(t *testing.T) {
	base := newFakeStore(9 * time.Millisecond)
	reg := metrics.NewRegistry()
	s := Stack(base, Metrics(reg))
	tr := vclock.NewTracker()
	ctx := vclock.With(context.Background(), tr)
	if err := s.Put(ctx, "a", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if tr.Elapsed() != 18*time.Millisecond {
		t.Fatalf("request charged %v, want exactly the inner store's 18ms", tr.Elapsed())
	}
	var put, get bool
	for _, op := range reg.Snapshot() {
		switch op.Name {
		case "store.put":
			put = op.Count == 1
		case "store.get":
			get = op.Count == 1
		}
	}
	if !put || !get {
		t.Fatalf("missing per-op observations: put=%v get=%v", put, get)
	}
}

func TestMetricsBatchObservation(t *testing.T) {
	base := newFakeStore(5 * time.Millisecond)
	reg := metrics.NewRegistry()
	s := Stack(base, Metrics(reg))
	ctx := context.Background()
	for _, name := range []string{"a", "b"} {
		if err := base.Put(ctx, name, []byte(name), nil); err != nil {
			t.Fatal(err)
		}
	}
	tr := vclock.NewTracker()
	out := objstore.MultiGet(vclock.With(ctx, tr), s, []string{"a", "b"})
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
	}
	// The fake store has no Batcher, so the fallback issues two singular
	// Gets; the metrics ring re-charges their sum unchanged.
	if tr.Elapsed() != 10*time.Millisecond {
		t.Fatalf("request charged %v, want the inner 10ms", tr.Elapsed())
	}
	if got := reg.Counter("store.multiget.objects"); got != 2 {
		t.Fatalf("store.multiget.objects = %d, want 2", got)
	}
}

func TestStackedRetryAndMetrics(t *testing.T) {
	base := newFakeStore(3 * time.Millisecond)
	reg := metrics.NewRegistry()
	policy := RetryPolicy{MaxAttempts: 2, BaseBackoff: 8 * time.Millisecond, Seed: 2}
	s := Stack(base, Retry(policy, reg), Metrics(reg))
	base.failures["a"] = 1
	tr := vclock.NewTracker()
	if err := s.Put(vclock.With(context.Background(), tr), "a", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	// Two inner attempts plus one backoff, observed once and re-charged
	// exactly once.
	want := 6*time.Millisecond + policy.Backoff("put", "a", 0)
	if tr.Elapsed() != want {
		t.Fatalf("charged %v, want %v", tr.Elapsed(), want)
	}
}
