package storemw

import (
	"context"
	"hash/fnv"
	"strconv"
	"time"

	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// RetryPolicy controls the retry ring of the store stack. Transient
// store errors (objstore.Transient: node down, no quorum) are retried up
// to MaxAttempts total attempts with capped exponential backoff; the
// backoff is charged to the request's virtual clock — the simulator
// never sleeps — so retry-inflated service time shows up in measured
// figures exactly like extra round trips would. Permanent errors
// (ErrNotFound, injected test faults) surface immediately.
//
// The zero value disables retries, which keeps existing experiments'
// cost figures untouched; chaos experiments opt in via h2fs.Config.Retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per primitive, including
	// the first. Values below 2 disable retrying.
	MaxAttempts int
	// BaseBackoff is the pre-jitter wait before the first retry; each
	// further retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the deterministic jitter hash. Two middlewares with
	// equal policies charge identical backoff sequences.
	Seed int64
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// DefaultRetryPolicy is the tuning the availability experiment uses:
// four attempts, 5ms base backoff doubling to an 80ms cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 1}
}

// Backoff returns the jittered wait before retry number attempt (0-based)
// of one primitive: min(Base<<attempt, Max) scaled by a deterministic
// 0.5×–1.5× fraction hashed from (seed, op, name, attempt). Hash-derived
// jitter keeps same-seed runs byte-identical while still decorrelating
// concurrent retriers, which call-order PRNG draws would not.
func (p RetryPolicy) Backoff(op, name string, attempt int) time.Duration {
	d := p.BaseBackoff << attempt
	if p.MaxBackoff > 0 && (d > p.MaxBackoff || d <= 0) {
		d = p.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(strconv.FormatInt(p.Seed, 10)))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(op))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(strconv.Itoa(attempt)))
	frac := 0.5 + float64(h.Sum64()>>11)/float64(1<<53)
	return time.Duration(frac * float64(d))
}

// Retry returns the retry Layer: transient failures from the inner store
// are re-issued under policy, with backoff charged to the virtual clock
// and counters reported to reg (nil-safe).
func Retry(policy RetryPolicy, reg *metrics.Registry) Layer {
	return func(inner objstore.Store) objstore.Store {
		return &retryStore{inner: inner, policy: policy, reg: reg}
	}
}

// retryStore is the retry ring.
type retryStore struct {
	inner  objstore.Store
	policy RetryPolicy
	reg    *metrics.Registry // nil-safe counter sink
}

var (
	_ Wrapper          = (*retryStore)(nil)
	_ objstore.Batcher = (*retryStore)(nil)
)

// Unwrap implements Wrapper.
func (s *retryStore) Unwrap() objstore.Store { return s.inner }

// do runs fn under the retry loop, charging backoff between transient
// failures. It returns fn's last error.
func (s *retryStore) do(ctx context.Context, op, name string, fn func() error) error {
	var err error
	for attempt := 0; attempt < s.policy.MaxAttempts; attempt++ {
		err = fn()
		if err == nil || !objstore.Transient(err) {
			return err
		}
		if attempt == s.policy.MaxAttempts-1 || ctx.Err() != nil {
			break
		}
		s.reg.Inc("retry.attempts", 1)
		//h2vet:ignore costcheck backoff between attempts is real service time charged on top of the inner store's per-attempt cost
		vclock.Charge(ctx, s.policy.Backoff(op, name, attempt))
	}
	s.reg.Inc("retry.exhausted", 1)
	return err
}

// Put implements objstore.Store.
func (s *retryStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	return s.do(ctx, "put", name, func() error {
		return s.inner.Put(ctx, name, data, meta)
	})
}

// Get implements objstore.Store.
func (s *retryStore) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	var data []byte
	var info objstore.ObjectInfo
	err := s.do(ctx, "get", name, func() error {
		var err error
		data, info, err = s.inner.Get(ctx, name)
		return err
	})
	return data, info, err
}

// GetRange implements objstore.Store.
func (s *retryStore) GetRange(ctx context.Context, name string, offset, length int64) ([]byte, objstore.ObjectInfo, error) {
	var data []byte
	var info objstore.ObjectInfo
	err := s.do(ctx, "getrange", name, func() error {
		var err error
		data, info, err = s.inner.GetRange(ctx, name, offset, length)
		return err
	})
	return data, info, err
}

// Head implements objstore.Store.
func (s *retryStore) Head(ctx context.Context, name string) (objstore.ObjectInfo, error) {
	var info objstore.ObjectInfo
	err := s.do(ctx, "head", name, func() error {
		var err error
		info, err = s.inner.Head(ctx, name)
		return err
	})
	return info, err
}

// Delete implements objstore.Store.
func (s *retryStore) Delete(ctx context.Context, name string) error {
	return s.do(ctx, "delete", name, func() error {
		return s.inner.Delete(ctx, name)
	})
}

// Copy implements objstore.Store.
func (s *retryStore) Copy(ctx context.Context, src, dst string) error {
	return s.do(ctx, "copy", src, func() error {
		return s.inner.Copy(ctx, src, dst)
	})
}

// retryWave re-issues the transiently failed subset of a batch. The
// whole wave shares one backoff charge — the batch waits out a single
// jittered window before its retries go back out together, mirroring how
// the native Batcher charges the group one overlapped window. pending
// holds the retriable item indexes; redo re-issues exactly those items
// and reports which of them failed transiently again.
func (s *retryStore) retryWave(ctx context.Context, op string, itemName func(int) string, pending []int, redo func([]int) []int) []int {
	for attempt := 0; attempt < s.policy.MaxAttempts-1; attempt++ {
		if len(pending) == 0 || ctx.Err() != nil {
			return pending
		}
		s.reg.Inc("retry.attempts", int64(len(pending)))
		//h2vet:ignore costcheck batch backoff is real service time: the retried wave waits one jittered window on top of the inner store's charges
		vclock.Charge(ctx, s.policy.Backoff(op, itemName(pending[0]), attempt))
		pending = redo(pending)
	}
	return pending
}

// MultiGet implements objstore.Batcher, retrying the transient subset.
func (s *retryStore) MultiGet(ctx context.Context, names []string) []objstore.GetResult {
	out := objstore.MultiGet(ctx, s.inner, names)
	exhausted := s.retryWave(ctx, "get", func(i int) string { return names[i] },
		transientSlots(out, func(r objstore.GetResult) error { return r.Err }),
		func(pending []int) []int {
			sub := make([]string, len(pending))
			for j, i := range pending {
				sub[j] = names[i]
			}
			res := objstore.MultiGet(ctx, s.inner, sub)
			still := make([]int, 0, len(pending))
			for j, i := range pending {
				out[i] = res[j]
				if objstore.Transient(res[j].Err) {
					still = append(still, i)
				}
			}
			return still
		})
	if len(exhausted) > 0 {
		s.reg.Inc("retry.exhausted", int64(len(exhausted)))
	}
	return out
}

// MultiHead implements objstore.Batcher, retrying the transient subset.
func (s *retryStore) MultiHead(ctx context.Context, names []string) []objstore.HeadResult {
	out := objstore.MultiHead(ctx, s.inner, names)
	exhausted := s.retryWave(ctx, "head", func(i int) string { return names[i] },
		transientSlots(out, func(r objstore.HeadResult) error { return r.Err }),
		func(pending []int) []int {
			sub := make([]string, len(pending))
			for j, i := range pending {
				sub[j] = names[i]
			}
			res := objstore.MultiHead(ctx, s.inner, sub)
			still := make([]int, 0, len(pending))
			for j, i := range pending {
				out[i] = res[j]
				if objstore.Transient(res[j].Err) {
					still = append(still, i)
				}
			}
			return still
		})
	if len(exhausted) > 0 {
		s.reg.Inc("retry.exhausted", int64(len(exhausted)))
	}
	return out
}

// MultiPut implements objstore.Batcher, retrying the transient subset.
func (s *retryStore) MultiPut(ctx context.Context, reqs []objstore.PutReq) []error {
	out := objstore.MultiPut(ctx, s.inner, reqs)
	exhausted := s.retryWave(ctx, "put", func(i int) string { return reqs[i].Name },
		transientSlots(out, func(err error) error { return err }),
		func(pending []int) []int {
			sub := make([]objstore.PutReq, len(pending))
			for j, i := range pending {
				sub[j] = reqs[i]
			}
			res := objstore.MultiPut(ctx, s.inner, sub)
			still := make([]int, 0, len(pending))
			for j, i := range pending {
				out[i] = res[j]
				if objstore.Transient(res[j]) {
					still = append(still, i)
				}
			}
			return still
		})
	if len(exhausted) > 0 {
		s.reg.Inc("retry.exhausted", int64(len(exhausted)))
	}
	return out
}

// MultiDelete implements objstore.Batcher, retrying the transient subset.
func (s *retryStore) MultiDelete(ctx context.Context, names []string) []error {
	out := objstore.MultiDelete(ctx, s.inner, names)
	exhausted := s.retryWave(ctx, "delete", func(i int) string { return names[i] },
		transientSlots(out, func(err error) error { return err }),
		func(pending []int) []int {
			sub := make([]string, len(pending))
			for j, i := range pending {
				sub[j] = names[i]
			}
			res := objstore.MultiDelete(ctx, s.inner, sub)
			still := make([]int, 0, len(pending))
			for j, i := range pending {
				out[i] = res[j]
				if objstore.Transient(res[j]) {
					still = append(still, i)
				}
			}
			return still
		})
	if len(exhausted) > 0 {
		s.reg.Inc("retry.exhausted", int64(len(exhausted)))
	}
	return out
}

// transientSlots returns the indexes of results whose error is transient.
func transientSlots[T any](results []T, errOf func(T) error) []int {
	slots := make([]int, 0, len(results))
	for i, r := range results {
		if objstore.Transient(errOf(r)) {
			slots = append(slots, i)
		}
	}
	return slots
}
