package storemw

import (
	"context"
	"sync"

	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Metrics returns the op-tracing Layer: every primitive and batch that
// crosses it is counted and its simulated service time recorded in reg
// under "store.<op>". The ring intercepts the inner store's charges on a
// child tracker so the observation covers exactly the wrapped call —
// including retry backoff when stacked outside the retry ring — and then
// re-charges the parent, leaving the request's total unchanged.
func Metrics(reg *metrics.Registry) Layer {
	return func(inner objstore.Store) objstore.Store {
		return &metricsStore{inner: inner, reg: reg}
	}
}

// metricsStore is the op-tracing ring.
type metricsStore struct {
	inner objstore.Store
	reg   *metrics.Registry
}

var (
	_ Wrapper          = (*metricsStore)(nil)
	_ objstore.Batcher = (*metricsStore)(nil)
)

// Unwrap implements Wrapper.
func (s *metricsStore) Unwrap() objstore.Store { return s.inner }

// trackerPool recycles the child trackers observed interposes, so the
// metrics ring adds no per-op tracker allocation. A tracker is returned
// to the pool only after the wrapped call finished and its elapsed time
// was read, so no reference outlives the observation.
var trackerPool = sync.Pool{New: func() any { return vclock.NewTracker() }}

// observed runs fn with a pooled child tracker, records the intercepted
// virtual duration under op (a constant "store.<op>" label), and hands
// the cost back to the parent request.
func (s *metricsStore) observed(ctx context.Context, op string, fn func(context.Context) error) {
	child := trackerPool.Get().(*vclock.Tracker)
	child.Reset()
	err := fn(vclock.With(ctx, child))
	elapsed := child.Elapsed()
	trackerPool.Put(child)
	//h2vet:ignore costcheck op tracing intercepts the inner store's charges on a child tracker and re-charges the parent unchanged
	vclock.Charge(ctx, elapsed)
	s.reg.Observe(op, elapsed, err)
}

// Put implements objstore.Store.
func (s *metricsStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	var err error
	s.observed(ctx, "store.put", func(ctx context.Context) error {
		err = s.inner.Put(ctx, name, data, meta)
		return err
	})
	return err
}

// Get implements objstore.Store.
func (s *metricsStore) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	var data []byte
	var info objstore.ObjectInfo
	var err error
	s.observed(ctx, "store.get", func(ctx context.Context) error {
		data, info, err = s.inner.Get(ctx, name)
		return err
	})
	return data, info, err
}

// GetRange implements objstore.Store.
func (s *metricsStore) GetRange(ctx context.Context, name string, offset, length int64) ([]byte, objstore.ObjectInfo, error) {
	var data []byte
	var info objstore.ObjectInfo
	var err error
	s.observed(ctx, "store.getrange", func(ctx context.Context) error {
		data, info, err = s.inner.GetRange(ctx, name, offset, length)
		return err
	})
	return data, info, err
}

// Head implements objstore.Store.
func (s *metricsStore) Head(ctx context.Context, name string) (objstore.ObjectInfo, error) {
	var info objstore.ObjectInfo
	var err error
	s.observed(ctx, "store.head", func(ctx context.Context) error {
		info, err = s.inner.Head(ctx, name)
		return err
	})
	return info, err
}

// Delete implements objstore.Store.
func (s *metricsStore) Delete(ctx context.Context, name string) error {
	var err error
	s.observed(ctx, "store.delete", func(ctx context.Context) error {
		err = s.inner.Delete(ctx, name)
		return err
	})
	return err
}

// Copy implements objstore.Store.
func (s *metricsStore) Copy(ctx context.Context, src, dst string) error {
	var err error
	s.observed(ctx, "store.copy", func(ctx context.Context) error {
		err = s.inner.Copy(ctx, src, dst)
		return err
	})
	return err
}

// firstErr picks the representative error recorded for a batch
// observation: the first failed slot, in input order.
func firstErr[T any](results []T, errOf func(T) error) error {
	for _, r := range results {
		if err := errOf(r); err != nil {
			return err
		}
	}
	return nil
}

// MultiGet implements objstore.Batcher.
func (s *metricsStore) MultiGet(ctx context.Context, names []string) []objstore.GetResult {
	var out []objstore.GetResult
	s.observed(ctx, "store.multiget", func(ctx context.Context) error {
		out = objstore.MultiGet(ctx, s.inner, names)
		return firstErr(out, func(r objstore.GetResult) error { return r.Err })
	})
	s.reg.Inc("store.multiget.objects", int64(len(names)))
	return out
}

// MultiHead implements objstore.Batcher.
func (s *metricsStore) MultiHead(ctx context.Context, names []string) []objstore.HeadResult {
	var out []objstore.HeadResult
	s.observed(ctx, "store.multihead", func(ctx context.Context) error {
		out = objstore.MultiHead(ctx, s.inner, names)
		return firstErr(out, func(r objstore.HeadResult) error { return r.Err })
	})
	s.reg.Inc("store.multihead.objects", int64(len(names)))
	return out
}

// MultiPut implements objstore.Batcher.
func (s *metricsStore) MultiPut(ctx context.Context, reqs []objstore.PutReq) []error {
	var out []error
	s.observed(ctx, "store.multiput", func(ctx context.Context) error {
		out = objstore.MultiPut(ctx, s.inner, reqs)
		return firstErr(out, func(err error) error { return err })
	})
	s.reg.Inc("store.multiput.objects", int64(len(reqs)))
	return out
}

// MultiDelete implements objstore.Batcher.
func (s *metricsStore) MultiDelete(ctx context.Context, names []string) []error {
	var out []error
	s.observed(ctx, "store.multidelete", func(ctx context.Context) error {
		out = objstore.MultiDelete(ctx, s.inner, names)
		return firstErr(out, func(err error) error { return err })
	})
	s.reg.Inc("store.multidelete.objects", int64(len(names)))
	return out
}
