// Package storemw turns the wrappers around the object storage cloud
// into a composable middleware stack.
//
// Before this package, each behaviour bolted onto the store lived in a
// different place: the retry loop was private to h2fs, fault injection
// was special-cased in internal/chaos, and metrics were sprinkled through
// the middleware. Every one of them is really the same shape — an
// objstore.Store wrapping another objstore.Store — so they are expressed
// here as uniform Layers assembled with Stack. Each ring forwards both
// the singular primitives and the batch API (objstore.Batcher), applying
// its own behaviour per item without re-charging the inner store's
// virtual cost; future rings (read-through caches, sharding) plug into
// the same seam.
package storemw

import "github.com/h2cloud/h2cloud/internal/objstore"

// Layer wraps a Store with one ring of behaviour.
type Layer func(objstore.Store) objstore.Store

// Stack applies layers to base in order: the first layer becomes the
// innermost ring (closest to the cloud), the last the outermost. Nil
// layers are skipped.
func Stack(base objstore.Store, layers ...Layer) objstore.Store {
	s := base
	for _, l := range layers {
		if l != nil {
			s = l(s)
		}
	}
	return s
}

// Wrapper is the common contract of every middleware ring: a Store that
// exposes the Store it wraps.
type Wrapper interface {
	objstore.Store
	Unwrap() objstore.Store
}

// Base follows Unwrap to the innermost Store of a stack.
func Base(s objstore.Store) objstore.Store {
	for {
		w, ok := s.(Wrapper)
		if !ok {
			return s
		}
		s = w.Unwrap()
	}
}
