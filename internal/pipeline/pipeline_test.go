package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/vclock"
)

// charged runs fn under a fresh tracker and returns the virtual time it
// accumulated.
func charged(fn func(ctx context.Context)) time.Duration {
	tr := vclock.NewTracker()
	fn(vclock.With(context.Background(), tr))
	return tr.Elapsed()
}

func TestWaitChargesMakespan(t *testing.T) {
	// 8 equal tasks on 4 workers: two rounds, not an 8-task sum.
	got := charged(func(ctx context.Context) {
		eng := New(ctx, 4)
		for i := 0; i < 8; i++ {
			i := i
			eng.Go(fmt.Sprintf("t%d", i), func(ctx context.Context) error {
				vclock.Charge(ctx, 10*time.Millisecond)
				return nil
			})
		}
		if err := eng.Wait(); err != nil {
			t.Fatal(err)
		}
	})
	if got != 20*time.Millisecond {
		t.Fatalf("4-worker makespan = %v, want 20ms", got)
	}
}

func TestSequentialEngineChargesSum(t *testing.T) {
	got := charged(func(ctx context.Context) {
		eng := New(ctx, 1)
		for i := 0; i < 8; i++ {
			i := i
			eng.Go(fmt.Sprintf("t%d", i), func(ctx context.Context) error {
				vclock.Charge(ctx, 10*time.Millisecond)
				return nil
			})
		}
		if err := eng.Wait(); err != nil {
			t.Fatal(err)
		}
	})
	if got != 80*time.Millisecond {
		t.Fatalf("sequential charge = %v, want the 80ms sum", got)
	}
}

func TestTasksMaySpawnTasks(t *testing.T) {
	var ran atomic.Int64
	eng := New(context.Background(), 3)
	for i := 0; i < 4; i++ {
		i := i
		eng.Go(fmt.Sprintf("outer%d", i), func(context.Context) error {
			ran.Add(1)
			for j := 0; j < 4; j++ {
				j := j
				eng.Go(fmt.Sprintf("inner%d.%d", i, j), func(context.Context) error {
					ran.Add(1)
					return nil
				})
			}
			return nil
		})
	}
	if err := eng.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d tasks, want 20", ran.Load())
	}
}

func TestWaitReportsSmallestLabelDeterministically(t *testing.T) {
	errB := errors.New("b failed")
	errD := errors.New("d failed")
	for run := 0; run < 25; run++ {
		eng := New(context.Background(), 8)
		for _, lbl := range []string{"a", "b", "c", "d"} {
			lbl := lbl
			eng.Go(lbl, func(context.Context) error {
				switch lbl {
				case "b":
					return errB
				case "d":
					return errD
				}
				return nil
			})
		}
		if err := eng.Wait(); !errors.Is(err, errB) {
			t.Fatalf("run %d: Wait = %v, want the smallest-label failure %v", run, err, errB)
		}
	}
}

func TestGroupFinalizerRunsAfterMembers(t *testing.T) {
	var members atomic.Int64
	var sawAtFin int64 = -1
	eng := New(context.Background(), 2)
	g := eng.NewGroup(nil, "g", func(context.Context) error {
		sawAtFin = members.Load()
		return nil
	})
	g.Go("seed", func(context.Context) error {
		defer g.Close()
		for i := 0; i < 6; i++ {
			g.Go(fmt.Sprintf("m%d", i), func(context.Context) error {
				members.Add(1)
				return nil
			})
		}
		return nil
	})
	if err := eng.Wait(); err != nil {
		t.Fatal(err)
	}
	if sawAtFin != 6 {
		t.Fatalf("finalizer saw %d finished members, want 6", sawAtFin)
	}
}

func TestMemberFailureSkipsFinalizersUpTheChain(t *testing.T) {
	boom := errors.New("boom")
	var finRan atomic.Int64
	eng := New(context.Background(), 2)
	outer := eng.NewGroup(nil, "outer", func(context.Context) error {
		finRan.Add(1)
		return nil
	})
	outer.Go("seed", func(context.Context) error {
		defer outer.Close()
		inner := eng.NewGroup(outer, "outer/inner", func(context.Context) error {
			finRan.Add(1)
			return nil
		})
		inner.Go("seed", func(context.Context) error {
			defer inner.Close()
			inner.Go("outer/inner/bad", func(context.Context) error { return boom })
			return nil
		})
		return nil
	})
	if err := eng.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if finRan.Load() != 0 {
		t.Fatalf("%d finalizers ran despite a nested failure", finRan.Load())
	}
}

func TestSiblingGroupUnaffectedByFailure(t *testing.T) {
	boom := errors.New("boom")
	var goodFin atomic.Int64
	eng := New(context.Background(), 2)
	bad := eng.NewGroup(nil, "bad", func(context.Context) error {
		t.Error("failed group's finalizer ran")
		return nil
	})
	bad.Go("bad/task", func(context.Context) error {
		defer bad.Close()
		return boom
	})
	good := eng.NewGroup(nil, "good", func(context.Context) error {
		goodFin.Add(1)
		return nil
	})
	good.Go("good/task", func(context.Context) error {
		defer good.Close()
		return nil
	})
	if err := eng.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if goodFin.Load() != 1 {
		t.Fatal("sibling group's finalizer did not run")
	}
}

func TestFinalizerFailurePropagates(t *testing.T) {
	finErr := errors.New("finalizer failed")
	eng := New(context.Background(), 1)
	outer := eng.NewGroup(nil, "outer", func(context.Context) error {
		t.Error("outer finalizer ran despite inner finalizer failure")
		return nil
	})
	outer.Go("seed", func(context.Context) error {
		defer outer.Close()
		inner := eng.NewGroup(outer, "outer/inner", func(context.Context) error { return finErr })
		inner.Go("outer/inner/task", func(context.Context) error {
			defer inner.Close()
			return nil
		})
		return nil
	})
	if err := eng.Wait(); !errors.Is(err, finErr) {
		t.Fatalf("Wait = %v, want %v", err, finErr)
	}
}

func TestFinalizerCostIsCharged(t *testing.T) {
	got := charged(func(ctx context.Context) {
		eng := New(ctx, 1)
		g := eng.NewGroup(nil, "g", func(ctx context.Context) error {
			vclock.Charge(ctx, 7*time.Millisecond)
			return nil
		})
		g.Go("m", func(ctx context.Context) error {
			defer g.Close()
			vclock.Charge(ctx, 5*time.Millisecond)
			return nil
		})
		if err := eng.Wait(); err != nil {
			t.Fatal(err)
		}
	})
	if got != 12*time.Millisecond {
		t.Fatalf("charged %v, want 12ms (member + finalizer)", got)
	}
}
