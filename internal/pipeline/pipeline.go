// Package pipeline runs a dynamically discovered set of storage tasks on
// a bounded worker pool and charges their overlapped virtual cost as one
// window.
//
// The maintenance operations over a subtree (COPY, GC, anti-entropy
// repair) cannot enumerate their work up front: expanding one NameRing
// discovers more directories to expand, and the paper's whole design is
// that those expansions are independent object reads that an object cloud
// absorbs concurrently. vclock.Fanout needs the full task slice before it
// starts, so this package provides the dynamic counterpart: tasks may
// spawn further tasks while running, every task's simulated service time
// is captured on a child tracker, and Wait charges the LPT makespan of
// all captured durations to the parent request — the same bounded-worker
// schedule model vclock.Makespan applies to static fan-out.
//
// Determinism: the result of a run never depends on goroutine
// scheduling. Charges are collected per task and folded through the
// order-insensitive Makespan, and Wait reports the failed task with the
// lexicographically smallest label, so concurrent failures resolve
// identically on every run.
package pipeline

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Engine is one bounded-fanout task pool. Create with New, submit tasks
// with Go or through Groups, then call Wait exactly once; the Engine is
// not reusable afterwards.
type Engine struct {
	ctx     context.Context
	workers int
	sem     chan struct{}
	wg      sync.WaitGroup

	mu    sync.Mutex
	costs []time.Duration
	fails []taskFailure
}

type taskFailure struct {
	label string
	err   error
}

// New returns an engine that runs at most workers tasks concurrently.
// Values below 1 mean sequential execution (and a sequential, summed
// charge — identical to the unpipelined code path it replaces).
func New(ctx context.Context, workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{ctx: ctx, workers: workers, sem: make(chan struct{}, workers)}
}

// Go submits a top-level task. The label identifies the task in error
// reports and must be unique and schedule-independent for determinism.
// Tasks may themselves call Go, NewGroup, or Group.Go.
func (e *Engine) Go(label string, task func(context.Context) error) {
	e.spawn(nil, label, task)
}

// record appends one finished task's captured cost and failure under the
// engine lock.
func (e *Engine) record(cost time.Duration, label string, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.costs = append(e.costs, cost)
	if err != nil {
		e.fails = append(e.fails, taskFailure{label: label, err: err})
	}
}

// spawn starts one task goroutine. Each task runs with a fresh child
// vclock tracker; the worker slot is released before group bookkeeping so
// a finalizer spawned by the last member can always acquire a slot.
func (e *Engine) spawn(g *Group, label string, task func(context.Context) error) {
	if g != nil {
		g.pending.Add(1)
	}
	e.wg.Add(1)
	go func() {
		e.sem <- struct{}{}
		child := vclock.NewTracker()
		err := task(vclock.With(e.ctx, child))
		<-e.sem
		e.record(child.Elapsed(), label, err)
		if g != nil {
			if err != nil {
				g.fail()
			}
			g.done()
		}
		e.wg.Done()
	}()
}

// Wait blocks until every submitted task (and group finalizer) has
// finished, charges the LPT makespan of all task costs to the tracker
// carried by the engine's context, and returns the error of the failed
// task with the smallest label (nil if every task succeeded).
func (e *Engine) Wait() error {
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	vclock.Charge(e.ctx, vclock.Makespan(e.costs, e.workers))
	if len(e.fails) == 0 {
		return nil
	}
	sort.Slice(e.fails, func(i, j int) bool { return e.fails[i].label < e.fails[j].label })
	return e.fails[0].err
}

// Group ties a set of tasks (and nested subgroups) to a finalizer that
// runs only after all of them succeeded — the mechanism behind "write the
// destination NameRing once every child object landed" and "delete the
// ring last". A failure anywhere in the group, or in any nested subgroup,
// marks the whole ancestor chain failed and skips their finalizers.
type Group struct {
	eng    *Engine
	parent *Group
	label  string
	fin    func(context.Context) error

	// pending counts the open handle returned by NewGroup plus every
	// unfinished member task and subgroup; the group drains at zero.
	pending atomic.Int64
	failed  atomic.Bool
}

// NewGroup creates a group under parent (nil for a top-level group). The
// finalizer fin (may be nil) is submitted as a task once the group drains
// without failure. The returned handle holds the group open: spawn the
// group's members, then call Close — typically via defer inside the
// first member.
func (e *Engine) NewGroup(parent *Group, label string, fin func(context.Context) error) *Group {
	g := &Group{eng: e, parent: parent, label: label, fin: fin}
	g.pending.Store(1)
	if parent != nil {
		parent.pending.Add(1)
	}
	return g
}

// Go submits a member task.
func (g *Group) Go(label string, task func(context.Context) error) {
	g.eng.spawn(g, label, task)
}

// Close releases the open handle; after the last member finishes the
// group drains. No members may be added after Close unless submitted by
// a still-running member.
func (g *Group) Close() { g.done() }

// fail marks this group and every ancestor failed, so their finalizers
// are skipped.
func (g *Group) fail() {
	for p := g; p != nil; p = p.parent {
		p.failed.Store(true)
	}
}

// done consumes one pending reference; draining to zero triggers the
// finalizer (on success) and then releases the parent's reference.
func (g *Group) done() {
	if g.pending.Add(-1) != 0 {
		return
	}
	fin := g.fin
	g.fin = nil
	if fin == nil || g.failed.Load() {
		g.finish()
		return
	}
	g.eng.spawn(nil, g.label+"\x00fin", func(ctx context.Context) error {
		err := fin(ctx)
		if err != nil {
			g.fail()
		}
		g.finish()
		return err
	})
}

// finish releases the parent's reference once this group — including its
// finalizer — is fully complete.
func (g *Group) finish() {
	if g.parent != nil {
		g.parent.done()
	}
}
