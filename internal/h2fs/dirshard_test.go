package h2fs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// withShardThreshold arms directory sharding for a test middleware.
func withShardThreshold(n int) func(*Config) {
	return func(cfg *Config) { cfg.Profile.DirShardThreshold = n }
}

// bigDirNS resolves the namespace UUID of /big for assertions against the
// raw store layout.
func bigDirNS(t *testing.T, m *Middleware) string {
	t.Helper()
	ctx := context.Background()
	root, err := m.rootNS(ctx, "alice")
	mustNoErr(t, err)
	tup, ok, err := m.lookupChild(ctx, "alice", root, "big")
	mustNoErr(t, err)
	if !ok || tup.NS == "" {
		t.Fatalf("/big not found in root ring")
	}
	return tup.NS
}

// populateBig creates /big with n files named child0000..; returns the
// sorted child names.
func populateBig(t *testing.T, m *Middleware, n int) []string {
	t.Helper()
	ctx := context.Background()
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/big"))
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("child%04d", i)
		mustNoErr(t, fs.WriteFile(ctx, "/big/"+names[i], []byte("x")))
	}
	return names
}

func listNames(t *testing.T, m *Middleware, path string) []string {
	t.Helper()
	entries, err := m.FS("alice").List(context.Background(), path, false)
	mustNoErr(t, err)
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// TestDirShardSplitAndReadback: crossing the threshold converts the ring
// object into an H2DRX manifest plus extents, and both the splitting
// middleware and a cold peer read the directory back in full.
func TestDirShardSplitAndReadback(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, withShardThreshold(8))
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	names := populateBig(t, m, 40)
	mustNoErr(t, m.FlushAll(ctx))

	ns := bigDirNS(t, m)
	data, _, err := c.Get(ctx, core.RingKey("alice", ns))
	mustNoErr(t, err)
	if !core.IsShardManifest(data) {
		t.Fatalf("ring object did not become a manifest: %q", data[:min(len(data), 40)])
	}
	man, err := core.DecodeShardManifest(data)
	mustNoErr(t, err)
	if man.Shards != 8 {
		t.Fatalf("shards = %d, want 8 (40 live / threshold 8)", man.Shards)
	}
	total := 0
	for _, ek := range core.ExtentKeys("alice", ns, man.Shards) {
		edata, _, err := c.Get(ctx, ek)
		mustNoErr(t, err)
		ext, err := core.DecodeNameRing(edata)
		mustNoErr(t, err)
		total += ext.TotalLen()
	}
	if total != 40 {
		t.Fatalf("extents hold %d tuples, want 40", total)
	}

	// The splitting middleware still serves the directory.
	if got := listNames(t, m, "/big"); len(got) != 40 {
		t.Fatalf("List after split = %d entries", len(got))
	}
	// A cold peer loads via the manifest fan-out and sees everything.
	m2 := newMW(t, c, 2, withShardThreshold(8))
	got := listNames(t, m2, "/big")
	if len(got) != len(names) {
		t.Fatalf("peer List = %d entries, want %d", len(got), len(names))
	}
	for i := range got {
		if got[i] != names[i] {
			t.Fatalf("peer List[%d] = %q, want %q", i, got[i], names[i])
		}
	}
	// The peer can patch the sharded directory and flush through the
	// steady sharded path.
	mustNoErr(t, m2.FS("alice").WriteFile(ctx, "/big/extra", []byte("y")))
	mustNoErr(t, m2.FlushAll(ctx))
	m3 := newMW(t, c, 3, withShardThreshold(8))
	if got := listNames(t, m3, "/big"); len(got) != 41 {
		t.Fatalf("after peer write, cold List = %d entries, want 41", len(got))
	}
}

// ringBytesStore counts the bytes put to ring-layer objects (rings,
// manifests, extents — not patches), the write-amplification metric the
// sharding exists to cut.
type ringBytesStore struct {
	objstore.Store
	mu    sync.Mutex
	bytes int64
}

func (s *ringBytesStore) note(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytes += int64(n)
}

func (s *ringBytesStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	if strings.HasSuffix(name, "::/NameRing/") || core.IsExtentKey(name) {
		s.note(len(data))
	}
	return s.Store.Put(ctx, name, data, meta)
}

func (s *ringBytesStore) take() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bytes
	s.bytes = 0
	return b
}

// TestDirShardSteadyFlushWriteAmplification: once sharded, a one-child
// patch flush rewrites O(m/shards) ring bytes, not O(m). The monolithic
// control run pins the baseline the sharded run must beat by >= 4x.
func TestDirShardSteadyFlushWriteAmplification(t *testing.T) {
	ctx := context.Background()
	perPatchRingBytes := func(threshold int) int64 {
		c := newCluster(t)
		rbs := &ringBytesStore{Store: c}
		cfg := Config{Store: rbs, Node: 1, Profile: c.Profile(), EagerGC: true}
		cfg.Profile.DirShardThreshold = threshold
		m, err := New(cfg)
		mustNoErr(t, err)
		mustNoErr(t, m.CreateAccount(ctx, "alice"))
		populateBig(t, m, 256)
		mustNoErr(t, m.FlushAll(ctx))
		rbs.take() // discard population and split cost
		mustNoErr(t, m.FS("alice").WriteFile(ctx, "/big/onemore", []byte("x")))
		mustNoErr(t, m.FlushAll(ctx))
		return rbs.take()
	}
	mono := perPatchRingBytes(0)
	sharded := perPatchRingBytes(16) // 256/16 = 16 shards
	if sharded*4 > mono {
		t.Fatalf("sharded per-patch ring bytes %d not >=4x below monolithic %d", sharded, mono)
	}
}

// TestDirShardMergeBackToMonolithic: shrinking far below the threshold
// flips the directory back to one ring object and deletes the extents.
func TestDirShardMergeBackToMonolithic(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, withShardThreshold(8), func(cfg *Config) { cfg.Metrics = reg })
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	names := populateBig(t, m, 40)
	mustNoErr(t, m.FlushAll(ctx))
	ns := bigDirNS(t, m)

	fs := m.FS("alice")
	for _, name := range names[2:] {
		mustNoErr(t, fs.Remove(ctx, "/big/"+name))
	}
	mustNoErr(t, m.FlushAll(ctx))

	data, _, err := c.Get(ctx, core.RingKey("alice", ns))
	mustNoErr(t, err)
	if core.IsShardManifest(data) {
		t.Fatal("directory did not merge back to a monolithic ring")
	}
	ring, err := core.DecodeNameRing(data)
	mustNoErr(t, err)
	if ring.Len() != 2 {
		t.Fatalf("monolithic ring has %d live, want 2", ring.Len())
	}
	for _, ek := range core.ExtentKeys("alice", ns, 8) {
		if _, _, err := c.Get(ctx, ek); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("old extent %s survived the merge (err=%v)", ek, err)
		}
	}
	if got := reg.Counter("dirShard.splits"); got != 1 {
		t.Errorf("dirShard.splits = %d, want 1", got)
	}
	if got := reg.Counter("dirShard.merges"); got != 1 {
		t.Errorf("dirShard.merges = %d, want 1", got)
	}
	if got := reg.Counter("dirShard.extents"); got != 0 {
		t.Errorf("dirShard.extents = %d, want 0 after merge-back", got)
	}
}

// TestDirShardPaginationAcrossExtents: ListPage tokens are child names,
// so every token — including ones landing exactly on an extent boundary —
// resumes correctly over a sharded directory. Paging with limit 1 forces
// a token at every possible boundary.
func TestDirShardPaginationAcrossExtents(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, withShardThreshold(8))
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	names := populateBig(t, m, 50)
	mustNoErr(t, m.FlushAll(ctx))

	// A cold peer pages through the sharded representation.
	m2 := newMW(t, c, 2, withShardThreshold(8))
	var got []string
	marker := ""
	for {
		entries, next, err := m2.ListPage(ctx, "alice", "/big", false, marker, 1)
		mustNoErr(t, err)
		for _, e := range entries {
			got = append(got, e.Name)
		}
		if next == "" {
			break
		}
		marker = next
	}
	if len(got) != len(names) {
		t.Fatalf("paged %d entries, want %d", len(got), len(names))
	}
	for i := range got {
		if got[i] != names[i] {
			t.Fatalf("page order broke at %d: %q != %q", i, got[i], names[i])
		}
	}
}

// TestDirShardSplitMidList: a client holding a pagination token across
// the directory's split still sees every surviving original child
// exactly once.
func TestDirShardSplitMidList(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, withShardThreshold(8))
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	names := populateBig(t, m, 30)

	entries, marker, err := m.ListPage(ctx, "alice", "/big", false, "", 10)
	mustNoErr(t, err)
	seen := map[string]int{}
	for _, e := range entries {
		seen[e.Name]++
	}
	if marker == "" {
		t.Fatal("expected a continuation token")
	}

	// The directory splits while the client holds the token.
	mustNoErr(t, m.FlushAll(ctx))
	ns := bigDirNS(t, m)
	if data, _, err := c.Get(ctx, core.RingKey("alice", ns)); err != nil || !core.IsShardManifest(data) {
		t.Fatalf("directory did not split mid-list (err=%v)", err)
	}

	for marker != "" {
		var page []struct{}
		_ = page
		entries, next, err := m.ListPage(ctx, "alice", "/big", false, marker, 7)
		mustNoErr(t, err)
		for _, e := range entries {
			seen[e.Name]++
		}
		marker = next
	}
	for _, name := range names {
		if seen[name] != 1 {
			t.Fatalf("child %q seen %d times across the split", name, seen[name])
		}
	}
}

// flipFailStore injects a crash exactly between the extent writes and the
// manifest flip: every manifest put fails while armed.
type flipFailStore struct {
	objstore.Store
	mu    sync.Mutex
	armed bool
	hits  int
}

func (s *flipFailStore) arm(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = on
}

func (s *flipFailStore) shouldFail(data []byte) bool {
	if !core.IsShardManifest(data) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.armed {
		s.hits++
	}
	return s.armed
}

func (s *flipFailStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	if s.shouldFail(data) {
		return fmt.Errorf("flip injected: %w", objstore.ErrNodeDown)
	}
	return s.Store.Put(ctx, name, data, meta)
}

// TestDirShardCrashMidSplitConverges: a crash after the new extents are
// written but before the manifest flip leaves the monolithic ring intact
// and the half-split extents unreferenced. Replay converges (the patch
// chain still holds every update), Scrub reclaims the abandoned extents,
// and the retried flush completes the split with zero orphans.
func TestDirShardCrashMidSplitConverges(t *testing.T) {
	c := newCluster(t)
	ffs := &flipFailStore{Store: c}
	cfg := Config{Store: ffs, Node: 1, Profile: c.Profile(), EagerGC: true}
	cfg.Profile.DirShardThreshold = 8
	m, err := New(cfg)
	mustNoErr(t, err)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	populateBig(t, m, 40)

	ffs.arm(true)
	if err := m.FlushAll(ctx); err == nil {
		t.Fatal("flush during flip failure succeeded")
	}
	ffs.arm(false)
	if ffs.hits == 0 {
		t.Fatal("flip fault never fired")
	}

	// Crash and restart: the patch chain replays into a converged view.
	m.Recover()
	if got := listNames(t, m, "/big"); len(got) != 40 {
		t.Fatalf("List after crash = %d entries, want 40", len(got))
	}

	// The half-written extents are unreferenced; Scrub reclaims exactly
	// them and nothing else.
	ns := bigDirNS(t, m)
	rep, err := m.Scrub(ctx, clusterNames(c), true)
	mustNoErr(t, err)
	if rep.Reclaimed != 8 {
		t.Fatalf("scrub reclaimed %d objects, want the 8 abandoned extents: %+v", rep.Reclaimed, rep)
	}
	for _, o := range rep.Orphans {
		if !core.IsExtentKey(o) {
			t.Fatalf("scrub reclaimed non-extent %q", o)
		}
	}

	// The retried flush completes the split; a second scrub is clean.
	mustNoErr(t, m.FlushAll(ctx))
	if data, _, err := c.Get(ctx, core.RingKey("alice", ns)); err != nil || !core.IsShardManifest(data) {
		t.Fatalf("split never completed after retry (err=%v)", err)
	}
	rep, err = m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after recovered split: %v", rep.Orphans)
	}
	if got := listNames(t, m, "/big"); len(got) != 40 {
		t.Fatalf("List after recovered split = %d entries, want 40", len(got))
	}
}

// TestDirShardGCReclaimsExtents: removing a sharded directory reclaims
// its manifest and every extent — nothing survives for fsck to flag.
func TestDirShardGCReclaimsExtents(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, withShardThreshold(8))
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	names := populateBig(t, m, 40)
	mustNoErr(t, m.FlushAll(ctx))
	ns := bigDirNS(t, m)

	fs := m.FS("alice")
	for _, name := range names {
		mustNoErr(t, fs.Remove(ctx, "/big/"+name))
	}
	mustNoErr(t, fs.Rmdir(ctx, "/big"))
	for _, ek := range core.ExtentKeys("alice", ns, 8) {
		if _, _, err := c.Get(ctx, ek); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("extent %s survived rmdir GC (err=%v)", ek, err)
		}
	}
	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after sharded rmdir: %v", rep.Orphans)
	}
}

// TestDescCacheEviction: with a cache cap, cold clean descriptors are
// evicted (and counted), while every directory remains fully usable —
// eviction is invisible except for the reload.
func TestDescCacheEviction(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.DescCacheLimit = descStripes // one descriptor per stripe
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	const dirs = 120
	// Two waves: eviction runs on insert and only claims clean
	// descriptors, so the first wave is flushed clean before the second
	// wave's inserts push stripes past their budget.
	for i := 0; i < dirs/2; i++ {
		dir := fmt.Sprintf("/d%03d", i)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		mustNoErr(t, fs.WriteFile(ctx, dir+"/f", []byte("x")))
	}
	mustNoErr(t, m.FlushAll(ctx))
	for i := dirs / 2; i < dirs; i++ {
		dir := fmt.Sprintf("/d%03d", i)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		mustNoErr(t, fs.WriteFile(ctx, dir+"/f", []byte("x")))
	}
	mustNoErr(t, m.FlushAll(ctx))
	// Every directory — including evicted ones — still resolves; the
	// reload is the only observable cost.
	for i := 0; i < dirs; i++ {
		if _, err := fs.Stat(ctx, fmt.Sprintf("/d%03d/f", i)); err != nil {
			t.Fatalf("Stat d%03d/f after eviction churn: %v", i, err)
		}
	}
	if got := reg.Counter("descCache.evicted"); got == 0 {
		t.Fatal("no descriptors were evicted under a tight cap")
	}
	size := reg.Counter("descCache.size")
	if size <= 0 || size > 2*descStripes {
		t.Fatalf("descCache.size = %d, want within ~cap %d", size, descStripes)
	}
	// Everything still lists correctly through reloads.
	entries, err := fs.List(ctx, "/", false)
	mustNoErr(t, err)
	if len(entries) != dirs {
		t.Fatalf("root List = %d entries, want %d", len(entries), dirs)
	}
}

// TestDirShardThresholdZeroWritesNoManifests: the compatibility contract —
// with the default threshold nothing ever becomes a manifest or extent,
// whatever the directory size.
func TestDirShardThresholdZeroWritesNoManifests(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	populateBig(t, m, 60)
	mustNoErr(t, m.FlushAll(ctx))
	for _, name := range clusterNames(c) {
		if core.IsExtentKey(name) {
			t.Fatalf("extent %q written with sharding disabled", name)
		}
		if strings.HasSuffix(name, "::/NameRing/") {
			data, _, err := c.Get(ctx, name)
			mustNoErr(t, err)
			if core.IsShardManifest(data) {
				t.Fatalf("manifest at %q with sharding disabled", name)
			}
		}
	}
}
