package h2fs

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/chaos"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/metrics"
)

// clusterNames unions object names across every device — the key
// universe a scrub pass cross-checks.
func clusterNames(c *cluster.Cluster) []string {
	seen := make(map[string]bool)
	var names []string
	for _, id := range c.Ring().DeviceIDs() {
		for _, name := range c.Node(id).Names() {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// buildVictim populates dir with a nested subtree: plain files, a
// subdirectory with more files, and a chunked file.
func buildVictim(t *testing.T, m *Middleware, dir string) {
	t.Helper()
	ctx := context.Background()
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, dir))
	for i := 0; i < 4; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("%s/f%d", dir, i), []byte("data")))
	}
	mustNoErr(t, fs.Mkdir(ctx, dir+"/sub"))
	mustNoErr(t, fs.WriteFile(ctx, dir+"/sub/deep", []byte("deep")))
	mustNoErr(t, m.WriteFileChunked(ctx, "alice", dir+"/big",
		bytes.NewReader(bytes.Repeat([]byte("v"), 50)), 10))
}

// assertKeepIntact verifies the surviving subtree byte-for-byte — the
// no-double-free oracle: reclamation and scrubbing must never touch it.
func assertKeepIntact(t *testing.T, m *Middleware) {
	t.Helper()
	ctx := context.Background()
	fs := m.FS("alice")
	for i := 0; i < 3; i++ {
		data, err := fs.ReadFile(ctx, fmt.Sprintf("/keep/k%d", i))
		mustNoErr(t, err)
		if string(data) != fmt.Sprintf("keep %d", i) {
			t.Fatalf("/keep/k%d content = %q", i, data)
		}
	}
}

func setupKeep(t *testing.T, m *Middleware) {
	t.Helper()
	ctx := context.Background()
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/keep"))
	for i := 0; i < 3; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/keep/k%d", i), []byte(fmt.Sprintf("keep %d", i))))
	}
}

// TestGCQueueAsyncRmdir is the acceptance scenario: with EagerGC off and
// the queue on, RMDIR returns after the intent and tombstone (O(1) ring
// work), the subtree survives physically until the drain reclaims it,
// and a second drain is a no-op.
func TestGCQueueAsyncRmdir(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	populated := c.Stats().Objects

	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))
	// Unreachable immediately, but nothing reclaimed yet: the only new
	// objects are the tombstone patch, the queue entry, and the index.
	if _, err := m.FS("alice").Stat(ctx, "/zap/f0"); err == nil {
		t.Fatal("/zap reachable after rmdir")
	}
	if got := c.Stats().Objects; got != populated+3 {
		t.Fatalf("objects after queued rmdir = %d, want %d (+tombstone patch, +entry, +index)", got, populated+3)
	}
	snap, err := m.GCQueueSnapshot(ctx)
	mustNoErr(t, err)
	if snap == nil || snap.Pending != 1 || snap.Enqueued != 1 {
		t.Fatalf("snapshot = %+v, want 1 pending / 1 enqueued", snap)
	}

	drained, err := m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 1 {
		t.Fatalf("DrainGC = %d entries, want 1", drained)
	}
	mustNoErr(t, m.FlushAll(ctx))
	if reg.Counter("gcqueue.reclaimed") != 1 {
		t.Fatalf("reclaimed counter = %d", reg.Counter("gcqueue.reclaimed"))
	}
	assertKeepIntact(t, m)
	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after drain: %v", rep.Orphans)
	}
	// Replay is a no-op.
	drained, err = m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 0 {
		t.Fatalf("second DrainGC = %d entries, want 0", drained)
	}
	snap, err = m.GCQueueSnapshot(ctx)
	mustNoErr(t, err)
	if snap.Pending != 0 {
		t.Fatalf("pending after drain = %d", snap.Pending)
	}
}

// TestGCQueueCrashMidDrainConverges is the tentpole's chaos proof: a
// step-indexed crash schedule takes two storage nodes down mid-drain
// (quorum lost partway through the walk), the middleware itself crashes
// and restarts (Recover), the schedule restores the nodes, and replay
// converges — /keep intact (no double-free), scrubber-verified zero
// orphans, every assertion oracle-checked against the pre-rmdir state.
func TestGCQueueCrashMidDrainConverges(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile(), Clock: clock})
	mustNoErr(t, err)
	devs := c.Ring().DeviceIDs()
	reg := metrics.NewRegistry()
	eng := chaos.New(chaos.Plan{
		Seed: 41,
		Events: []chaos.Event{
			{Step: 1, Node: devs[0], Down: true},
			{Step: 1, Node: devs[1], Down: true},
			{Step: 2, Node: devs[0], Down: false},
			{Step: 2, Node: devs[1], Down: false},
		},
	}, reg)
	eng.Bind(c)
	cs := eng.Store(c)
	m, err := New(Config{
		Store: cs, Node: 1, Clock: clock,
		GCQueue: true, Retry: DefaultRetryPolicy(), Metrics: reg,
	})
	mustNoErr(t, err)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	baseline := len(clusterNames(c)) // oracle: post-reclamation key count, minus the doomed subtree

	subRes, _, err := m.resolve(ctx, "alice", "/zap/sub")
	mustNoErr(t, err)
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))

	// Step 1: two devices go dark mid-drain (their replicas go stale) and
	// a hard fault kills the walk inside /zap/sub — the process dies with
	// the subtree half reclaimed.
	eng.Step()
	cs.FailOn(chaos.OpDelete, subRes.tuple.NS)
	if _, err := m.DrainGC(ctx); err == nil {
		t.Fatal("drain succeeded despite injected crash; chaos exercised nothing")
	}
	if reg.Counter("gcqueue.reclaimed") != 0 {
		t.Fatal("entry dequeued despite failed drain")
	}

	// The middleware restarts; step 2 restores the nodes; anti-entropy
	// resurrects whatever replicas the outage left stale — including
	// copies of objects the interrupted walk already deleted. Recover
	// drops the span mirror, so the drain below re-reads the durable
	// index: the resumed-reclamation path.
	m.Recover()
	cs.FailOn(chaos.OpDelete, "")
	eng.Step()
	for round := 0; round < 3; round++ {
		c.Repair(ctx)
	}

	drained, err := m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 1 {
		t.Fatalf("replay drained %d entries, want 1", drained)
	}
	mustNoErr(t, m.FlushAll(ctx))
	for round := 0; round < 3; round++ {
		c.Repair(ctx)
	}
	// Replicas deleted while their nodes were down can come back through
	// anti-entropy after the entry is gone; the scrubber is the backstop
	// that reclaims such remnants, after which a clean pass must report
	// zero orphans.
	if _, err := m.Scrub(ctx, clusterNames(c), true); err != nil {
		t.Fatal(err)
	}
	final, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(final.Orphans) != 0 {
		t.Fatalf("orphans after converged replay: %v", final.Orphans)
	}
	assertKeepIntact(t, m)
	// Oracle count: everything from before the rmdir except the doomed
	// subtree, plus the durable queue index.
	zapObjects := 1 /*dir entry*/ + 1 /*ring*/ + 4 /*files*/ +
		1 /*sub entry*/ + 1 /*sub ring*/ + 1 /*deep*/ + 1 /*manifest*/ + 5 /*segments*/
	want := baseline - zapObjects + 1 // + queue index object
	if got := len(clusterNames(c)); got != want {
		t.Fatalf("converged key count = %d, want %d", got, want)
	}
	if _, err := m.FS("alice").Stat(ctx, "/zap"); err == nil {
		t.Fatal("/zap still visible after replay")
	}
}

// TestGCQueueStaleIntentDropped models a crash between enqueue and
// tombstone: the intent exists but the RMDIR was never acknowledged.
// The drain must drop the intent without touching the live subtree.
func TestGCQueueStaleIntentDropped(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))

	// Enqueue the intent by hand — the crash leaves exactly this state —
	// for both the directory and the whole account.
	res, _, err := m.resolve(ctx, "alice", "/zap")
	mustNoErr(t, err)
	_, err = m.enqueueGC(ctx, "alice", res.tuple.NS, res.parentNS, res.tuple.Name, false)
	mustNoErr(t, err)
	rootNS, err := m.rootNS(ctx, "alice")
	mustNoErr(t, err)
	_, err = m.enqueueGC(ctx, "alice", rootNS, "", "", true)
	mustNoErr(t, err)
	// The crash kills the operations mid-window: the restarted process has
	// no in-flight state, so the drain below validates both intents.
	m.Recover()

	drained, err := m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 2 {
		t.Fatalf("drained = %d, want 2", drained)
	}
	if got := reg.Counter("gcqueue.stale"); got != 2 {
		t.Fatalf("stale counter = %d, want 2", got)
	}
	if got := reg.Counter("gcqueue.reclaimed"); got != 0 {
		t.Fatalf("reclaimed counter = %d, want 0", got)
	}
	// The subtree must be fully alive.
	data, err := m.FS("alice").ReadFile(ctx, "/zap/sub/deep")
	mustNoErr(t, err)
	if string(data) != "deep" {
		t.Fatalf("live file content = %q", data)
	}
	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans: %v", rep.Orphans)
	}
}

// TestGCQueueDrainDefersInflightIntent pins the enqueue-to-ack window:
// a drain that observes an intent whose RMDIR has not yet landed its
// tombstone must defer it — the still-live parent tuple is not evidence
// of staleness — and reclaim it normally once the operation settles.
// Before the in-flight window existed, the drain here deleted the
// intent as stale and the subsequent tombstone stranded the subtree.
func TestGCQueueDrainDefersInflightIntent(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))

	// Open the window exactly as Rmdir does: intent recorded, tombstone
	// not yet submitted.
	res, _, err := m.resolve(ctx, "alice", "/zap")
	mustNoErr(t, err)
	seq, err := m.enqueueGC(ctx, "alice", res.tuple.NS, res.parentNS, res.tuple.Name, false)
	mustNoErr(t, err)

	drained, err := m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 0 {
		t.Fatalf("drain inside the window drained %d entries, want 0", drained)
	}
	if got := reg.Counter("gcqueue.stale"); got != 0 {
		t.Fatalf("in-flight intent dropped as stale (counter = %d)", got)
	}
	if reg.Counter("gcqueue.deferred") == 0 {
		t.Fatal("drain did not record the deferred probe")
	}
	if data, err := m.FS("alice").ReadFile(ctx, "/zap/sub/deep"); err != nil || string(data) != "deep" {
		t.Fatalf("subtree touched inside the window: %q, %v", data, err)
	}

	// The rmdir acknowledges: tombstone lands, window closes. The intent
	// must now be reclaimed, not dropped.
	mustNoErr(t, m.submitPatch(ctx, "alice", res.parentNS, core.Tuple{
		Name: res.tuple.Name, Time: m.now(), Deleted: true, Dir: true, NS: res.tuple.NS,
	}))
	m.gcSettle("alice", seq)
	drained, err = m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 1 || reg.Counter("gcqueue.reclaimed") != 1 {
		t.Fatalf("post-ack drain = %d entries, reclaimed = %d, want 1 and 1",
			drained, reg.Counter("gcqueue.reclaimed"))
	}
	mustNoErr(t, m.FlushAll(ctx))
	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after post-ack drain: %v", rep.Orphans)
	}
}

// TestGCQueueConcurrentRmdirDrain races rmdirs against a drain loop —
// the maintenance schedule the in-flight window exists for. Invariants:
// no intent is misclassified stale, every subtree is reclaimed, and the
// surviving tree is untouched.
func TestGCQueueConcurrentRmdirDrain(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	const dirs = 6
	fs := m.FS("alice")
	for i := 0; i < dirs; i++ {
		dir := fmt.Sprintf("/d%d", i)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		mustNoErr(t, fs.WriteFile(ctx, dir+"/f", []byte("x")))
	}
	mustNoErr(t, m.FlushAll(ctx))

	stop := make(chan struct{})
	var drains sync.WaitGroup
	drains.Add(1)
	go func() {
		defer drains.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := m.DrainGC(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var ops sync.WaitGroup
	for i := 0; i < dirs; i++ {
		ops.Add(1)
		go func(dir string) {
			defer ops.Done()
			if err := fs.Rmdir(ctx, dir); err != nil {
				t.Error(err)
			}
		}(fmt.Sprintf("/d%d", i))
	}
	ops.Wait()
	close(stop)
	drains.Wait()

	// Deferred probes leave entries behind; once every window is settled a
	// few passes must reclaim them all, with none dropped as stale.
	for i := 0; i < dirs && reg.Counter("gcqueue.reclaimed") < dirs; i++ {
		_, err := m.DrainGC(ctx)
		mustNoErr(t, err)
	}
	if got := reg.Counter("gcqueue.stale"); got != 0 {
		t.Fatalf("%d in-flight intents misclassified stale", got)
	}
	if got := reg.Counter("gcqueue.reclaimed"); got != dirs {
		t.Fatalf("reclaimed = %d, want %d", got, dirs)
	}
	mustNoErr(t, m.FlushAll(ctx))
	assertKeepIntact(t, m)
	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("stranded objects after converged drains: %v", rep.Orphans)
	}
	snap, err := m.GCQueueSnapshot(ctx)
	mustNoErr(t, err)
	if snap.Pending != 0 {
		t.Fatalf("pending = %d after convergence", snap.Pending)
	}
}

// TestGCQueueRestartResumesPending simulates a full process loss: the
// rmdir lands, the process dies before any drain, and a brand-new
// middleware (same node number, empty caches) picks the queue up from
// the durable index alone.
func TestGCQueueRestartResumesPending(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))

	reg := metrics.NewRegistry()
	m2 := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	drained, err := m2.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 1 {
		t.Fatalf("restarted node drained %d, want 1", drained)
	}
	mustNoErr(t, m2.FlushAll(ctx))
	assertKeepIntact(t, m2)
	rep, err := m2.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans: %v", rep.Orphans)
	}
}

// TestGCQueueBracketsEagerGC covers EagerGC+GCQueue: the intent is
// enqueued before the eager walk, so a walk that dies partway (targeted
// fault on the subtree's deletes) leaves a queued entry that the next
// drain finishes — the detached-context audit of ops.go made durable.
func TestGCQueueBracketsEagerGC(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	eng := chaos.New(chaos.Plan{Seed: 7}, reg)
	eng.Bind(c)
	cs := eng.Store(c)
	m, err := New(Config{Store: cs, Node: 1, EagerGC: true, GCQueue: true, Metrics: reg})
	mustNoErr(t, err)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))

	// Kill the eager walk partway: deletes inside the doomed subtree fail.
	res, _, err := m.resolve(ctx, "alice", "/zap/sub")
	mustNoErr(t, err)
	cs.FailOn(chaos.OpDelete, res.tuple.NS)
	if err := m.FS("alice").Rmdir(ctx, "/zap"); err == nil {
		t.Fatal("rmdir succeeded despite injected walk failure")
	}
	if reg.Counter("gcqueue.enqueued") != 1 {
		t.Fatal("eager rmdir did not enqueue its intent first")
	}
	if reg.Counter("gcqueue.reclaimed") != 0 {
		t.Fatal("failed walk must not dequeue")
	}
	// Process restarts, fault heals, the drain finishes the job.
	cs.FailOn(chaos.OpDelete, "")
	m.Recover()
	drained, err := m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 1 {
		t.Fatalf("drained = %d, want 1", drained)
	}
	mustNoErr(t, m.FlushAll(ctx))
	assertKeepIntact(t, m)
	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans: %v", rep.Orphans)
	}
}

// TestGCQueueDeleteAccountAsync: account deletion with the queue records
// the intent, deletes the root record (the acknowledgment), and leaves
// the tree for the drain.
func TestGCQueueDeleteAccountAsync(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))

	mustNoErr(t, m.DeleteAccount(ctx, "alice"))
	if m.AccountExists(ctx, "alice") {
		t.Fatal("account visible after queued deletion")
	}
	drained, err := m.DrainGC(ctx)
	mustNoErr(t, err)
	if drained != 1 {
		t.Fatalf("drained = %d, want 1", drained)
	}
	// Everything gone but the queue index object.
	if got := clusterNames(c); len(got) != 1 || got[0][0] != '#' {
		t.Fatalf("leftover objects: %v", got)
	}
}
