package h2fs

import (
	"context"
	"fmt"
	"testing"
)

func TestListPagePagination(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/big"))
	const n = 57
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%03d", i)
		mustNoErr(t, fs.WriteFile(ctx, "/big/"+name, []byte("x")))
		want[name] = true
	}

	got := map[string]bool{}
	marker := ""
	pages := 0
	for {
		entries, next, err := m.ListPage(ctx, "alice", "/big", false, marker, 10)
		mustNoErr(t, err)
		if len(entries) > 10 {
			t.Fatalf("page has %d entries, limit 10", len(entries))
		}
		for _, e := range entries {
			if got[e.Name] {
				t.Fatalf("entry %s returned twice", e.Name)
			}
			got[e.Name] = true
		}
		pages++
		if next == "" {
			break
		}
		marker = next
	}
	if len(got) != n {
		t.Fatalf("pagination returned %d entries, want %d", len(got), n)
	}
	if pages != 6 { // 5 full pages of 10 + one of 7
		t.Fatalf("pages = %d, want 6", pages)
	}
}

func TestListPageMarkerSkips(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	for _, name := range []string{"a", "b", "c", "d"} {
		mustNoErr(t, fs.WriteFile(ctx, "/d/"+name, []byte("x")))
	}
	entries, next, err := m.ListPage(ctx, "alice", "/d", false, "b", 0)
	mustNoErr(t, err)
	if next != "" {
		t.Fatalf("next = %q without limit", next)
	}
	if len(entries) != 2 || entries[0].Name != "c" || entries[1].Name != "d" {
		t.Fatalf("entries after marker b = %+v", entries)
	}
	// Marker between names: still strictly-greater semantics.
	entries, _, err = m.ListPage(ctx, "alice", "/d", false, "bb", 0)
	mustNoErr(t, err)
	if len(entries) != 2 || entries[0].Name != "c" {
		t.Fatalf("entries after marker bb = %+v", entries)
	}
	// Marker past the end.
	entries, _, err = m.ListPage(ctx, "alice", "/d", false, "zzz", 0)
	mustNoErr(t, err)
	if len(entries) != 0 {
		t.Fatalf("entries after marker zzz = %+v", entries)
	}
}

func TestListPageLimitExact(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	for i := 0; i < 10; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/d/f%d", i), []byte("x")))
	}
	// limit == len: no next marker.
	entries, next, err := m.ListPage(ctx, "alice", "/d", false, "", 10)
	mustNoErr(t, err)
	if len(entries) != 10 || next != "" {
		t.Fatalf("exact limit: %d entries, next %q", len(entries), next)
	}
}
