package h2fs

import (
	"context"
	"testing"
	"time"
)

func TestStartMaintenanceFlushesPeriodically(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx, cancel := context.WithCancel(context.Background())
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("x"))) // leaves one patch object

	before := c.Stats().Objects // file + patch
	done := m.StartMaintenance(ctx, 10*time.Millisecond)

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Objects == before-1 { // patch folded and deleted
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Stats().Objects; got != before-1 {
		t.Fatalf("maintenance did not fold the patch: %d objects, want %d", got, before-1)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("maintenance loop did not exit on cancel")
	}
}

func TestStartMaintenanceFinalFlushOnShutdown(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx, cancel := context.WithCancel(context.Background())
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	done := m.StartMaintenance(ctx, time.Hour) // never ticks
	mustNoErr(t, m.FS("alice").WriteFile(ctx, "/f", []byte("x")))
	before := c.Stats().Objects
	cancel() // shutdown triggers the final flush
	<-done
	if got := c.Stats().Objects; got != before-1 {
		t.Fatalf("final flush missing: %d objects, want %d", got, before-1)
	}
}
