package h2fs

import (
	"context"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/chaos"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/metrics"
)

func TestStartMaintenanceFlushesPeriodically(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx, cancel := context.WithCancel(context.Background())
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("x"))) // leaves one patch object

	before := c.Stats().Objects // file + patch
	done := m.StartMaintenance(ctx, 10*time.Millisecond)

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Objects == before-1 { // patch folded and deleted
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Stats().Objects; got != before-1 {
		t.Fatalf("maintenance did not fold the patch: %d objects, want %d", got, before-1)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("maintenance loop did not exit on cancel")
	}
}

func TestStartMaintenanceFinalFlushOnShutdown(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx, cancel := context.WithCancel(context.Background())
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	done := m.StartMaintenance(ctx, time.Hour) // never ticks
	mustNoErr(t, m.FS("alice").WriteFile(ctx, "/f", []byte("x")))
	before := c.Stats().Objects
	cancel() // shutdown triggers the final flush
	<-done
	if got := c.Stats().Objects; got != before-1 {
		t.Fatalf("final flush missing: %d objects, want %d", got, before-1)
	}
}

// TestStartMaintenanceTicksDrainsQueue drives the loop through the
// injected tick source: no wall-clock polling, one deterministic pass
// per tick. The unbuffered channel makes completion observable — the
// second send is only received once the first pass has finished.
func TestStartMaintenanceTicksDrainsQueue(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	ctx, cancel := context.WithCancel(context.Background())
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))

	ticks := make(chan time.Time)
	done := m.StartMaintenanceTicks(ctx, ticks)
	ticks <- time.Time{} // first pass: flush the tombstone patch, drain the queue
	ticks <- time.Time{} // received only after the first pass completed
	if got := reg.Counter("gcqueue.reclaimed"); got != 1 {
		t.Fatalf("reclaimed after tick = %d, want 1", got)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("maintenance loop did not exit on cancel")
	}
	rep, err := m.Scrub(context.Background(), clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after ticked maintenance: %v", rep.Orphans)
	}
}

// TestMaintainOnceCountsErrors: flush and drain failures surface as
// metrics counters (visible on /v1/stats) instead of vanishing into the
// loop's log, and a flush failure does not suppress the drain attempt.
func TestMaintainOnceCountsErrors(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	eng := chaos.New(chaos.Plan{Seed: 3}, reg)
	eng.Bind(c)
	cs := eng.Store(c)
	m, err := New(Config{Store: cs, Node: 1, GCQueue: true, Metrics: reg})
	mustNoErr(t, err)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap")) // leaves a dirty ring + a queued entry

	cs.FailOn(chaos.OpPut, "/NameRing/") // ring folds fail -> flush errors
	cs.FailOn(chaos.OpGet, "|/gcq/Node") // entry probes fail -> drain errors
	m.MaintainOnce(ctx)
	if got := reg.Counter("maintenance.flush.errors"); got != 1 {
		t.Fatalf("flush error counter = %d, want 1", got)
	}
	if got := reg.Counter("maintenance.drain.errors"); got != 1 {
		t.Fatalf("drain error counter = %d, want 1", got)
	}

	// Heal; the next pass retries both halves cleanly.
	cs.FailOn(chaos.OpPut, "")
	cs.FailOn(chaos.OpGet, "")
	m.MaintainOnce(ctx)
	if got := reg.Counter("maintenance.flush.errors"); got != 1 {
		t.Fatalf("flush errors after heal = %d, want still 1", got)
	}
	if got := reg.Counter("gcqueue.reclaimed"); got != 1 {
		t.Fatalf("reclaimed after heal = %d, want 1", got)
	}
}
