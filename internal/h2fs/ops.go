package h2fs

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

const (
	metaType = "h2type"
	typeFile = "file"
	typeDir  = "dir"
)

// Mkdir creates an empty directory: a fresh namespace UUID, its directory
// object, an empty NameRing object, and a creation patch to the parent's
// NameRing. All pieces are ordinary objects on the single consistent
// hashing ring (§3.1).
func (m *Middleware) Mkdir(ctx context.Context, account, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("h2fs: /: %w", fsapi.ErrExists)
	}
	dir, name, err := fsapi.Split(p)
	if err != nil {
		return err
	}
	parentNS, err := m.resolveDir(ctx, account, dir)
	if err != nil {
		return err
	}
	if t, ok, err := m.lookupChild(ctx, account, parentNS, name); err != nil {
		return err
	} else if ok && !t.Deleted {
		return fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrExists)
	}
	now := m.now()
	ns := m.gen.Next()
	dirObj := core.EncodeDir(core.DirObject{NS: ns, Name: name, Created: now})
	if err := m.store.Put(ctx, core.ChildKey(account, parentNS, name), dirObj,
		map[string]string{metaType: typeDir, "ns": ns}); err != nil {
		return fmt.Errorf("h2fs: mkdir %s: %w", p, err)
	}
	if err := m.store.Put(ctx, core.RingKey(account, ns),
		core.EncodeNameRing(core.NewNameRing()), nil); err != nil {
		return fmt.Errorf("h2fs: mkdir %s ring: %w", p, err)
	}
	return m.submitPatch(ctx, account, parentNS,
		core.Tuple{Name: name, Time: now, Dir: true, NS: ns})
}

// WriteFile creates or replaces a file: the content object is put at the
// namespace-decorated key, then a patch records the child in the parent's
// NameRing. Per the blocking rule of §3.3.3, patch submission happens only
// after the content write completes.
func (m *Middleware) WriteFile(ctx context.Context, account, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("h2fs: /: %w", fsapi.ErrIsDir)
	}
	dir, name, err := fsapi.Split(p)
	if err != nil {
		return err
	}
	parentNS, err := m.resolveDir(ctx, account, dir)
	if err != nil {
		return err
	}
	if t, ok, err := m.lookupChild(ctx, account, parentNS, name); err != nil {
		return err
	} else if ok && !t.Deleted {
		if t.Dir {
			return fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrIsDir)
		}
		// Overwriting a chunked file must reclaim its segments, or they
		// leak once the manifest is replaced.
		if t.Chunked {
			if err := m.deleteFileObject(ctx, account, parentNS, name, true); err != nil &&
				!errors.Is(err, objstore.ErrNotFound) {
				return err
			}
		}
	}
	if err := m.store.Put(ctx, core.ChildKey(account, parentNS, name), data,
		map[string]string{metaType: typeFile}); err != nil {
		return fmt.Errorf("h2fs: write %s: %w", p, err)
	}
	return m.submitPatch(ctx, account, parentNS, core.Tuple{Name: name, Time: m.now()})
}

// ReadFile returns a file's content via the regular O(d) access method.
func (m *Middleware) ReadFile(ctx context.Context, account, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("h2fs: /: %w", fsapi.ErrIsDir)
	}
	res, _, err := m.resolve(ctx, account, p)
	if err != nil {
		return nil, err
	}
	if res.tuple.Dir {
		return nil, fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrIsDir)
	}
	data, info, err := m.store.Get(ctx, core.ChildKey(account, res.parentNS, res.tuple.Name))
	if err != nil {
		return nil, readErr(p, err)
	}
	if res.tuple.Chunked {
		if chunks, size, ok := manifestInfo(info); ok {
			return m.assembleChunked(ctx, account, res.parentNS, res.tuple.Name, chunks, size)
		}
	}
	return data, nil
}

// ReadFileRange returns length bytes of a file starting at offset
// (length < 0 means to the end). Only the requested bytes travel from
// the cloud — how clients stream the paper's gigabyte videos without
// whole-object reads.
func (m *Middleware) ReadFileRange(ctx context.Context, account, path string, offset, length int64) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("h2fs: /: %w", fsapi.ErrIsDir)
	}
	if offset < 0 {
		return nil, fmt.Errorf("h2fs: negative offset: %w", fsapi.ErrInvalidPath)
	}
	res, _, err := m.resolve(ctx, account, p)
	if err != nil {
		return nil, err
	}
	if res.tuple.Dir {
		return nil, fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrIsDir)
	}
	key := core.ChildKey(account, res.parentNS, res.tuple.Name)
	if res.tuple.Chunked {
		info, err := m.store.Head(ctx, key)
		if err != nil {
			return nil, readErr(p, err)
		}
		if _, size, ok := manifestInfo(info); ok {
			chunkSize, _ := strconv.ParseInt(info.Meta["chunk"], 10, 64)
			return m.readChunkedRange(ctx, account, res.parentNS, res.tuple.Name, chunkSize, size, offset, length)
		}
	}
	data, _, err := m.store.GetRange(ctx, key, offset, length)
	if err != nil {
		return nil, readErr(p, err)
	}
	return data, nil
}

// readErr maps a store read failure to the caller-visible error: a
// missing object means the file is gone (fsapi.ErrNotFound), but
// transient cloud faults keep their identity so HTTP layers and clients
// can distinguish "gone" from "retry later".
func readErr(p string, err error) error {
	if objstore.Transient(err) {
		return fmt.Errorf("h2fs: read %s: %w", p, err)
	}
	return fmt.Errorf("h2fs: read %s: %w", p, fsapi.ErrNotFound)
}

// Stat resolves a path to its metadata — the paper's "file access"
// operation (lookup only; Figure 13 measures exactly this walk).
func (m *Middleware) Stat(ctx context.Context, account, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	if p == "/" {
		if !m.AccountExists(ctx, account) {
			return fsapi.EntryInfo{}, fmt.Errorf("h2fs: account %q: %w", account, fsapi.ErrNotFound)
		}
		return fsapi.EntryInfo{Name: "/", IsDir: true}, nil
	}
	res, _, err := m.resolve(ctx, account, p)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	info := fsapi.EntryInfo{
		Name:    res.tuple.Name,
		IsDir:   res.tuple.Dir,
		ModTime: time.Unix(0, res.tuple.Time),
	}
	if !res.tuple.Dir {
		if oi, err := m.store.Head(ctx, core.ChildKey(account, res.parentNS, res.tuple.Name)); err == nil {
			info.Size = oi.Size
			if _, size, ok := manifestInfo(oi); ok {
				info.Size = size // logical size of a chunked file
			}
		}
	}
	return info, nil
}

// Remove deletes a single file: the content object is removed and a
// fake-deletion tombstone is patched into the parent's NameRing (§3.3.3).
func (m *Middleware) Remove(ctx context.Context, account, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("h2fs: /: %w", fsapi.ErrIsDir)
	}
	res, _, err := m.resolve(ctx, account, p)
	if err != nil {
		return err
	}
	if res.tuple.Dir {
		return fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrIsDir)
	}
	if err := m.deleteFileObject(ctx, account, res.parentNS, res.tuple.Name, res.tuple.Chunked); err != nil &&
		!errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	return m.submitPatch(ctx, account, res.parentNS,
		core.Tuple{Name: res.tuple.Name, Time: m.now(), Deleted: true})
}

// Rmdir removes a directory subtree in O(1) NameRing work: one fake-
// deletion tombstone in the parent's ring makes the whole subtree
// unreachable (Figure 8's flat curve). The objects underneath are
// reclaimed out-of-band — synchronously here when EagerGC is set, charged
// to a garbage-collection context rather than the caller's operation.
func (m *Middleware) Rmdir(ctx context.Context, account, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("h2fs: cannot remove /: %w", fsapi.ErrInvalidPath)
	}
	res, _, err := m.resolve(ctx, account, p)
	if err != nil {
		return err
	}
	if !res.tuple.Dir {
		return fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrNotDir)
	}
	// With the GC queue, a durable reclamation intent precedes the
	// tombstone. The order matters for crash safety: an intent without a
	// tombstone is validated against the still-live parent tuple at drain
	// time and dropped, while a tombstone without an intent would strand
	// the subtree forever. The enqueue context drops the caller's
	// cancellation (but keeps its virtual clock): once we commit to the
	// tombstone, the intent must land regardless of what the caller does.
	var seq int
	if m.gcq {
		//h2vet:durable GC intent enqueue: the tombstone commits, so the intent must land
		qctx := context.WithoutCancel(ctx)
		var qerr error
		seq, qerr = m.enqueueGC(qctx, account, res.tuple.NS, res.parentNS, res.tuple.Name, false)
		if qerr != nil {
			return fmt.Errorf("h2fs: rmdir %s: %w", p, qerr)
		}
		// Until this operation returns, the intent sits in its in-flight
		// window: a concurrent drain must not validate it against a parent
		// tuple the tombstone below has not yet replaced.
		defer m.gcSettle(account, seq)
	}
	if err := m.submitPatch(ctx, account, res.parentNS, core.Tuple{
		Name: res.tuple.Name, Time: m.now(), Deleted: true, Dir: true, NS: res.tuple.NS,
	}); err != nil {
		return err
	}
	if m.eagerGC {
		//h2vet:durable eager GC bracket: reclamation after a committed tombstone must finish
		gcCtx := context.WithoutCancel(ctx)
		gcCtx = vclock.With(gcCtx, nil) // do not bill GC to the caller
		if err := m.gcNamespaceEntry(gcCtx, account, res.tuple.NS,
			core.ChildKey(account, res.parentNS, res.tuple.Name)); err != nil {
			// The queued intent (if any) survives; the maintenance drain
			// resumes the walk where this one failed.
			return err
		}
		if m.gcq {
			m.dequeueGC(gcCtx, account, seq)
		}
	}
	return nil
}

// Move relocates a file or directory subtree. For directories this is the
// paper's O(1) headline (Figure 7): the subtree's objects are keyed by the
// directory's own namespace, which does not change, so only the entry
// object and two parent NameRings are touched no matter how many files the
// directory holds. RENAME is the same operation within one parent.
func (m *Middleware) Move(ctx context.Context, account, src, dst string) error {
	srcP, dstP, err := cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	res, _, err := m.resolve(ctx, account, srcP)
	if err != nil {
		return err
	}
	dstDir, dstName, err := fsapi.Split(dstP)
	if err != nil {
		return err
	}
	dstParentNS, err := m.resolveDir(ctx, account, dstDir)
	if err != nil {
		return err
	}
	if t, ok, err := m.lookupChild(ctx, account, dstParentNS, dstName); err != nil {
		return err
	} else if ok && !t.Deleted {
		return fmt.Errorf("h2fs: %s: %w", dstP, fsapi.ErrExists)
	}
	now := m.now()
	oldKey := core.ChildKey(account, res.parentNS, res.tuple.Name)
	newKey := core.ChildKey(account, dstParentNS, dstName)
	if res.tuple.Dir {
		// Rewrite the directory object under its new name; the namespace —
		// and with it every object inside the subtree — stays put.
		dirObj := core.EncodeDir(core.DirObject{NS: res.tuple.NS, Name: dstName, Created: now})
		if err := m.store.Put(ctx, newKey, dirObj,
			map[string]string{metaType: typeDir, "ns": res.tuple.NS}); err != nil {
			return err
		}
		if err := m.store.Delete(ctx, oldKey); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
	} else {
		if err := m.copyFileObject(ctx, account, res.parentNS, res.tuple.Name, dstParentNS, dstName, res.tuple.Chunked); err != nil {
			return err
		}
		if err := m.deleteFileObject(ctx, account, res.parentNS, res.tuple.Name, res.tuple.Chunked); err != nil &&
			!errors.Is(err, objstore.ErrNotFound) {
			return err
		}
	}
	if err := m.submitPatch(ctx, account, dstParentNS, core.Tuple{
		Name: dstName, Time: now, Dir: res.tuple.Dir, Chunked: res.tuple.Chunked, NS: res.tuple.NS,
	}); err != nil {
		return err
	}
	return m.submitPatch(ctx, account, res.parentNS, core.Tuple{
		Name: res.tuple.Name, Time: now, Deleted: true, Dir: res.tuple.Dir, NS: res.tuple.NS,
	})
}

// Copy duplicates a file or directory subtree. Unlike MOVE, every file's
// content must be duplicated under the destination's namespaces, so COPY
// is O(n) (Figure 11); the copies are made with the cloud's server-side
// copy primitive so no content flows through the middleware.
func (m *Middleware) Copy(ctx context.Context, account, src, dst string) error {
	srcP, dstP, err := cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	res, _, err := m.resolve(ctx, account, srcP)
	if err != nil {
		return err
	}
	dstDir, dstName, err := fsapi.Split(dstP)
	if err != nil {
		return err
	}
	dstParentNS, err := m.resolveDir(ctx, account, dstDir)
	if err != nil {
		return err
	}
	if t, ok, err := m.lookupChild(ctx, account, dstParentNS, dstName); err != nil {
		return err
	} else if ok && !t.Deleted {
		return fmt.Errorf("h2fs: %s: %w", dstP, fsapi.ErrExists)
	}
	now := m.now()
	if !res.tuple.Dir {
		if err := m.copyFileObject(ctx, account, res.parentNS, res.tuple.Name, dstParentNS, dstName, res.tuple.Chunked); err != nil {
			return err
		}
		return m.submitPatch(ctx, account, dstParentNS, core.Tuple{Name: dstName, Time: now, Chunked: res.tuple.Chunked})
	}
	newNS := m.gen.Next()
	dirObj := core.EncodeDir(core.DirObject{NS: newNS, Name: dstName, Created: now})
	if err := m.store.Put(ctx, core.ChildKey(account, dstParentNS, dstName), dirObj,
		map[string]string{metaType: typeDir, "ns": newNS}); err != nil {
		return err
	}
	if err := m.copyTree(ctx, account, res.tuple.NS, newNS); err != nil {
		return err
	}
	return m.submitPatch(ctx, account, dstParentNS, core.Tuple{
		Name: dstName, Time: now, Dir: true, NS: newNS,
	})
}

// List returns a directory's direct children. The name-only form costs a
// single NameRing consult — the O(1) LIST of Table 1; the detailed form
// additionally touches each child object (O(m)), fanned out over the
// middleware's outbound concurrency.
func (m *Middleware) List(ctx context.Context, account, path string, detail bool) ([]fsapi.EntryInfo, error) {
	entries, _, err := m.ListPage(ctx, account, path, detail, "", 0)
	return entries, err
}

// ListPage is List with Swift-style pagination: entries strictly after
// marker (by name), at most limit of them (0 means unlimited). The
// returned next marker is non-empty when more entries follow; pass it to
// the next call. Huge directories — the paper's workloads reach half a
// million files in one (§5.1) — are listed in bounded chunks this way.
func (m *Middleware) ListPage(ctx context.Context, account, path string, detail bool, marker string, limit int) ([]fsapi.EntryInfo, string, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, "", err
	}
	var ns string
	if p == "/" {
		if ns, err = m.rootNS(ctx, account); err != nil {
			return nil, "", err
		}
	} else {
		res, _, rerr := m.resolve(ctx, account, p)
		if rerr != nil {
			return nil, "", rerr
		}
		if !res.tuple.Dir {
			return nil, "", fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrNotDir)
		}
		ns = res.tuple.NS
	}
	children, err := m.liveChildren(ctx, account, ns)
	if err != nil {
		return nil, "", err
	}
	if marker != "" {
		// children are sorted; skip everything at or before the marker.
		lo, hi := 0, len(children)
		for lo < hi {
			mid := (lo + hi) / 2
			if children[mid].Name <= marker {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		children = children[lo:]
	}
	next := ""
	if limit > 0 && len(children) > limit {
		children = children[:limit]
		next = children[len(children)-1].Name
	}
	entries := make([]fsapi.EntryInfo, len(children))
	for i, t := range children {
		entries[i] = fsapi.EntryInfo{Name: t.Name, IsDir: t.Dir, ModTime: time.Unix(0, t.Time)}
	}
	if !detail {
		return entries, next, nil
	}
	keys := make([]string, len(children))
	for i, t := range children {
		keys[i] = core.ChildKey(account, ns, t.Name)
	}
	// One multi-Head covers the whole page: a native Batcher charges the
	// overlapped fanout window, exactly what the per-child vclock.Fanout
	// used to cost. A child deleted mid-list is simply reported sizeless.
	for i, r := range objstore.MultiHead(ctx, m.store, keys) {
		if r.Err != nil || children[i].Dir {
			continue
		}
		entries[i].Size = r.Info.Size
		if _, size, ok := manifestInfo(r.Info); ok {
			entries[i].Size = size
		}
	}
	return entries, next, nil
}

// cleanSrcDst validates a src/dst pair shared by Move and Copy.
func cleanSrcDst(src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fmt.Errorf("h2fs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fmt.Errorf("h2fs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	return srcP, dstP, nil
}
