package h2fs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// Orphan scrubber. The filesystem's reachability roots are small: one
// root record per account, one NameRing (plus unmerged patch chains) per
// namespace, queue entries naming doomed-but-unreclaimed namespaces.
// Scrub replays that structure against the complete set of stored object
// keys and classifies every object as live (reachable from a root
// record), queued (under a namespace a pending GC intent will reclaim),
// infra (queue entries and indexes themselves), or orphan — unreachable,
// unclaimed garbage, the failure mode the durable queue exists to
// prevent.
//
// Classification is relative to a point-in-time key universe, and every
// create writes its data object before linking it (WriteFile puts the
// content object before submitting the parent ring patch; chunked writes
// put segments before the manifest; Mkdir puts the child ring before the
// parent patch). On a live system a listing taken inside one of those
// windows therefore reports a just-created object as an orphan — a
// transient false positive in check mode, but fatal if reclaimed.
// Reclaim mode defends in two layers: deletion is restricted to keys in
// none of the first three classes, and each surviving candidate is
// re-verified against the live ring state (through the descriptor
// machinery, which sees patches submitted after the listing) immediately
// before deletion, sparing anything that has since become reachable.
// The re-check cannot see a mutation still in flight at that instant,
// so reclaim mode is guaranteed lossless only on a quiescent store —
// the offline-fsck contract h2inspect documents. Re-deleting an
// already-scrubbed object is the usual tolerated not-found.

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Objects   int      `json:"objects"`           // keys examined
	Live      int      `json:"live"`              // reachable from account root records
	Queued    int      `json:"queued"`            // awaiting a pending GC intent
	Infra     int      `json:"infra"`             // GC queue entries and indexes
	Orphans   []string `json:"orphans,omitempty"` // unreachable and unclaimed
	Reclaimed int      `json:"reclaimed"`         // orphans deleted (reclaim mode)
}

// classification marks; live beats queued so a scrub never over-claims.
const (
	classLive   = 'l'
	classQueued = 'q'
	classInfra  = 'i'
)

// scrubber carries one pass's working state.
type scrubber struct {
	m       *Middleware
	present map[string]bool
	class   map[string]byte
	patches map[string][]string       // RingKey -> patch object keys, sorted
	rings   map[string]*core.NameRing // merged-ring cache by RingKey
	extents map[string][]string       // RingKey -> manifest-referenced extent keys
	visited map[string]bool           // RingKey -> walked already
}

// Scrub cross-checks every stored object key in names against the live
// filesystem structure and pending GC intents, reporting orphans and —
// when reclaim is set — deleting them. Callers supply the key universe
// (h2inspect unions Names() across cluster devices; a real deployment
// would feed a container listing). Check mode is always safe but may
// transiently report an object created after the listing as an orphan;
// reclaim mode re-verifies each candidate against the live ring state
// before deleting (reclassifying ones that became reachable as live)
// and should run against a quiescent store, since a mutation still in
// flight during the re-check can slip past it — see the package comment
// above.
func (m *Middleware) Scrub(ctx context.Context, names []string, reclaim bool) (ScrubReport, error) {
	sorted := make([]string, len(names))
	copy(sorted, names)
	sort.Strings(sorted)

	s := &scrubber{
		m:       m,
		present: make(map[string]bool, len(sorted)),
		class:   make(map[string]byte, len(sorted)),
		patches: make(map[string][]string),
		rings:   make(map[string]*core.NameRing),
		extents: make(map[string][]string),
		visited: make(map[string]bool),
	}
	for _, n := range sorted {
		s.present[n] = true
	}

	// Pass 1: infrastructure keys and the patch inventory. Patch keys are
	// grouped under their ring key so merged-ring reconstruction can fold
	// unmerged chains in; sorted input keeps the groups deterministic.
	var entries []core.GCEntry
	for _, n := range sorted {
		switch {
		case core.IsGCIndexKey(n):
			s.class[n] = classInfra
		case core.IsGCQueueKey(n):
			s.class[n] = classInfra
			data, _, err := m.store.Get(ctx, n)
			if err != nil {
				if errors.Is(err, objstore.ErrNotFound) {
					continue // dequeued mid-scrub
				}
				return ScrubReport{}, fmt.Errorf("h2fs: scrub read %s: %w", n, err)
			}
			e, derr := core.DecodeGCEntry(data)
			if derr != nil {
				continue // corrupt entry claims nothing; its subtree surfaces as orphans
			}
			entries = append(entries, e)
		case strings.Contains(n, "::/NameRing/.Node"):
			rk := n[:strings.Index(n, ".Node")]
			s.patches[rk] = append(s.patches[rk], n)
		}
	}

	// Pass 2: live reachability from every account root record.
	for _, n := range sorted {
		account, ok := rootRecordAccount(n)
		if !ok {
			continue
		}
		s.class[n] = classLive
		data, _, err := m.store.Get(ctx, n)
		if err != nil {
			if errors.Is(err, objstore.ErrNotFound) {
				continue // account deleted mid-scrub
			}
			return ScrubReport{}, fmt.Errorf("h2fs: scrub read %s: %w", n, err)
		}
		if err := s.walk(ctx, account, string(data), classLive, false); err != nil {
			return ScrubReport{}, err
		}
	}

	// Pass 3: queued closures. A pending intent claims its whole doomed
	// subtree — every object under it, tombstoned or not, is garbage in
	// flight, not an orphan. Stale intents (the delete they record never
	// landed, so the live walk above already claimed the subtree) claim
	// nothing extra: marks never downgrade live to queued.
	for _, e := range entries {
		if e.Root {
			if s.rootAlive(ctx, e.Account, e.NS) {
				continue // stale intent: the deletion was never acknowledged
			}
		} else if t, ok := s.mergedTuple(ctx, e.Account, e.ParentNS, e.Name); ok && !t.Deleted && t.NS == e.NS {
			continue // stale intent over a live subtree
		} else if !ok || t.Deleted {
			s.mark(e.EntryKey(), classQueued)
		}
		if err := s.walk(ctx, e.Account, e.NS, classQueued, true); err != nil {
			return ScrubReport{}, err
		}
	}

	// Classify and (optionally) reclaim.
	rep := ScrubReport{Objects: len(sorted)}
	var orphans []string
	for _, n := range sorted {
		switch s.class[n] {
		case classLive:
			rep.Live++
		case classQueued:
			rep.Queued++
		case classInfra:
			rep.Infra++
		default:
			orphans = append(orphans, n)
		}
	}
	rep.Orphans = orphans
	if reclaim && len(orphans) > 0 {
		victims := make([]string, 0, len(orphans))
		for _, key := range orphans {
			live, err := s.becameReachable(ctx, key)
			if err != nil {
				return rep, err
			}
			if live {
				rep.Live++ // linked since the listing; not an orphan after all
				continue
			}
			victims = append(victims, key)
		}
		rep.Orphans = victims
		for _, err := range objstore.MultiDelete(ctx, m.store, victims) {
			if err != nil && !errors.Is(err, objstore.ErrNotFound) {
				return rep, fmt.Errorf("h2fs: scrub reclaim: %w", err)
			}
		}
		rep.Reclaimed = len(victims)
	}
	return rep, nil
}

// becameReachable re-checks one orphan candidate immediately before
// deletion. A data object (plain child or chunked segment) whose parent
// ring the scrub classified live is looked up again through the
// descriptor machinery, which sees ring patches submitted after the key
// universe was listed — the window where WriteFile's content object (or
// a chunked write's segments) lands before its linking patch. A live
// tuple means the object now belongs to the tree (or to a successor
// reusing the name) and must be spared. A candidate whose parent ring is
// itself unreachable stays an orphan: a tuple inside an unreachable ring
// links nothing. Ring and patch objects have no such cheap second check;
// the quiescent-store contract covers them.
func (s *scrubber) becameReachable(ctx context.Context, key string) (bool, error) {
	account, ns, name, ok := parseDataKey(key)
	if !ok {
		return false, nil
	}
	if s.class[core.RingKey(account, ns)] != classLive {
		return false, nil
	}
	t, found, err := s.m.lookupChild(ctx, account, ns, name)
	if err != nil {
		return false, fmt.Errorf("h2fs: scrub re-verify %s: %w", key, err)
	}
	return found && !t.Deleted, nil
}

// parseDataKey splits a key of ChildKey or chunked-segment shape into
// its account, namespace, and child name; ok is false for every other
// shape (ring, patch, root record, GC queue infrastructure).
func parseDataKey(key string) (account, ns, name string, ok bool) {
	account, rest, found := strings.Cut(key, "|")
	if !found {
		return "", "", "", false
	}
	ns, rest, found = strings.Cut(rest, "::")
	if !found || ns == "" {
		return "", "", "", false
	}
	if seg, isSeg := strings.CutPrefix(rest, "/slo/"); isSeg {
		i := strings.LastIndex(seg, "/")
		if i <= 0 {
			return "", "", "", false
		}
		return account, ns, seg[:i], true
	}
	if rest == "" || strings.Contains(rest, "/") {
		return "", "", "", false // ring, patch, and other reserved names
	}
	return account, ns, rest, true
}

// rootAlive reports whether account's root record still points at ns —
// the sign that a queued account deletion was never acknowledged.
func (s *scrubber) rootAlive(ctx context.Context, account, ns string) bool {
	data, _, err := s.m.store.Get(ctx, core.RootKey(account))
	return err == nil && string(data) == ns
}

// rootRecordAccount extracts the account from a root-record key.
func rootRecordAccount(key string) (string, bool) {
	account, rest, ok := strings.Cut(key, "|")
	if !ok || rest != "/root" {
		return "", false
	}
	return account, true
}

// mark classifies a key, if it exists and was not already claimed:
// first-claim-wins, and the pass order (infra, live, queued) encodes the
// precedence.
func (s *scrubber) mark(key string, c byte) {
	if key == "" || !s.present[key] {
		return
	}
	if s.class[key] == 0 {
		s.class[key] = c
	}
}

// mergedRing reconstructs a namespace's NameRing as the store sees it:
// the ring object (or, for a sharded directory, the extents its H2DRX
// manifest references) merged with every unmerged patch object present
// in the key universe, cached per ring key. The manifest-referenced
// extent keys are remembered so the walk can claim them with the ring's
// class; extents no manifest references — the leavings of a crashed
// split — are claimed by nothing and surface as reclaimable orphans.
func (s *scrubber) mergedRing(ctx context.Context, account, ns string) (*core.NameRing, error) {
	rk := core.RingKey(account, ns)
	if r, ok := s.rings[rk]; ok {
		return r, nil
	}
	ring := core.NewNameRing()
	data, _, err := s.m.store.Get(ctx, rk)
	switch {
	case err == nil && core.IsShardManifest(data):
		if man, derr := core.DecodeShardManifest(data); derr == nil {
			keys := core.ExtentKeys(account, ns, man.Shards)
			s.extents[rk] = keys
			for _, res := range objstore.MultiGet(ctx, s.m.store, keys) {
				if res.Err != nil {
					if errors.Is(res.Err, objstore.ErrNotFound) {
						continue // torn extent; patches below re-converge
					}
					return nil, fmt.Errorf("h2fs: scrub read extent of %s: %w", rk, res.Err)
				}
				if r, derr := core.DecodeNameRing(res.Data); derr == nil {
					ring.Merge(r)
				}
			}
		}
	case err == nil:
		if r, derr := core.DecodeNameRing(data); derr == nil {
			ring.Merge(r)
		}
	case !errors.Is(err, objstore.ErrNotFound):
		return nil, fmt.Errorf("h2fs: scrub read %s: %w", rk, err)
	}
	for _, pk := range s.patches[rk] {
		pdata, _, err := s.m.store.Get(ctx, pk)
		if err != nil {
			if errors.Is(err, objstore.ErrNotFound) {
				continue
			}
			return nil, fmt.Errorf("h2fs: scrub read %s: %w", pk, err)
		}
		if p, derr := core.DecodePatch(pk, pdata); derr == nil {
			ring.Merge(p.Ring)
		}
	}
	s.rings[rk] = ring
	return ring, nil
}

// mergedTuple looks one name up in a merged ring, swallowing transient
// errors as "unknown" (the caller treats unknown as reclaimable, which
// only widens the queued class, never deletes anything).
func (s *scrubber) mergedTuple(ctx context.Context, account, ns, name string) (core.Tuple, bool) {
	ring, err := s.mergedRing(ctx, account, ns)
	if err != nil {
		return core.Tuple{}, false
	}
	return ring.Get(name)
}

// walk claims one namespace subtree for class c. The live walk recurses
// only through live directory tuples; the queued walk (all set) claims
// everything — the subtree is doomed wholesale, tombstones included.
func (s *scrubber) walk(ctx context.Context, account, ns string, c byte, all bool) error {
	rk := core.RingKey(account, ns)
	vk := string(c) + rk
	if s.visited[vk] {
		return nil
	}
	s.visited[vk] = true
	s.mark(rk, c)
	for _, pk := range s.patches[rk] {
		s.mark(pk, c)
	}
	ring, err := s.mergedRing(ctx, account, ns)
	if err != nil {
		return err
	}
	// A sharded ring's manifest-referenced extents share the ring's fate.
	for _, ek := range s.extents[rk] {
		s.mark(ek, c)
	}
	for _, t := range ring.All() {
		if t.Deleted && !all {
			continue // live walk: a tombstoned subtree belongs to queue or scrub
		}
		key := core.ChildKey(account, ns, t.Name)
		s.mark(key, c)
		if t.Chunked {
			if err := s.markSegments(ctx, account, ns, t.Name, c); err != nil {
				return err
			}
		}
		if t.Dir && t.NS != "" {
			if err := s.walk(ctx, account, t.NS, c, all); err != nil {
				return err
			}
		}
	}
	return nil
}

// markSegments claims a chunked file's segment objects via its manifest
// metadata. A missing or plain manifest claims nothing: segments with no
// manifest are exactly the orphan case the scrubber reports.
func (s *scrubber) markSegments(ctx context.Context, account, ns, name string, c byte) error {
	info, err := s.m.store.Head(ctx, core.ChildKey(account, ns, name))
	if err != nil {
		if errors.Is(err, objstore.ErrNotFound) {
			return nil
		}
		return fmt.Errorf("h2fs: scrub head %s: %w", core.ChildKey(account, ns, name), err)
	}
	chunks, _, ok := manifestInfo(info)
	if !ok {
		return nil
	}
	for i := 0; i < chunks; i++ {
		s.mark(sloSegKey(account, ns, name, i), c)
	}
	return nil
}
