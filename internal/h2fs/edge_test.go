package h2fs

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// TestRecreateAfterRmdir: creating a directory with the same name as a
// tombstoned one must yield a fresh, empty namespace — the old children
// must not resurrect.
func TestRecreateAfterRmdir(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	mustNoErr(t, fs.WriteFile(ctx, "/d/old-child", []byte("old")))
	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	entries, err := fs.List(ctx, "/d", false)
	mustNoErr(t, err)
	if len(entries) != 0 {
		t.Fatalf("recreated directory inherited children: %+v", entries)
	}
	if _, err := fs.Stat(ctx, "/d/old-child"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("old child visible: %v", err)
	}
	mustNoErr(t, fs.WriteFile(ctx, "/d/new-child", []byte("new")))
	data, err := fs.ReadFile(ctx, "/d/new-child")
	mustNoErr(t, err)
	if string(data) != "new" {
		t.Fatalf("new child = %q", data)
	}
}

// TestRecreateFileAfterRemove: a removed file name can be reused.
func TestRecreateFileAfterRemove(t *testing.T) {
	fs := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("v1")))
	mustNoErr(t, fs.Remove(ctx, "/f"))
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("v2")))
	data, err := fs.ReadFile(ctx, "/f")
	mustNoErr(t, err)
	if string(data) != "v2" {
		t.Fatalf("recreated file = %q", data)
	}
}

// TestMoveChainPreservesContent: repeated moves of nested structures keep
// every file reachable and intact.
func TestMoveChainPreservesContent(t *testing.T) {
	fs := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/a"))
	mustNoErr(t, fs.Mkdir(ctx, "/a/b"))
	mustNoErr(t, fs.WriteFile(ctx, "/a/b/f", []byte("cargo")))
	path := "/a"
	for i := 0; i < 5; i++ {
		next := fmt.Sprintf("/hop%d", i)
		mustNoErr(t, fs.Move(ctx, path, next))
		path = next
	}
	data, err := fs.ReadFile(ctx, path+"/b/f")
	mustNoErr(t, err)
	if string(data) != "cargo" {
		t.Fatalf("after move chain = %q", data)
	}
}

// TestCopyThenDivergence: after COPY, source and copy evolve separately
// at every level.
func TestCopyThenDivergence(t *testing.T) {
	fs := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/src"))
	mustNoErr(t, fs.Mkdir(ctx, "/src/sub"))
	mustNoErr(t, fs.WriteFile(ctx, "/src/sub/f", []byte("base")))
	mustNoErr(t, fs.Copy(ctx, "/src", "/dst"))

	mustNoErr(t, fs.WriteFile(ctx, "/dst/sub/f", []byte("changed")))
	mustNoErr(t, fs.WriteFile(ctx, "/dst/sub/extra", []byte("x")))
	mustNoErr(t, fs.Remove(ctx, "/src/sub/f"))

	if _, err := fs.Stat(ctx, "/dst/sub/f"); err != nil {
		t.Fatalf("copy's file affected by source removal: %v", err)
	}
	entries, err := fs.List(ctx, "/src/sub", false)
	mustNoErr(t, err)
	if len(entries) != 0 {
		t.Fatalf("source gained entries from copy: %+v", entries)
	}
}

// TestWriteFileUpdatesModTime: overwrites refresh the tuple timestamp.
func TestWriteFileUpdatesModTime(t *testing.T) {
	fs := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("1")))
	first, err := fs.Stat(ctx, "/f")
	mustNoErr(t, err)
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("22")))
	second, err := fs.Stat(ctx, "/f")
	mustNoErr(t, err)
	if !second.ModTime.After(first.ModTime) {
		t.Fatalf("mtime not refreshed: %v -> %v", first.ModTime, second.ModTime)
	}
	if second.Size != 2 {
		t.Fatalf("size = %d", second.Size)
	}
}

// TestRangedReadThroughMiddleware: the O(d) resolve plus a ranged GET.
func TestRangedReadThroughMiddleware(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/v"))
	mustNoErr(t, fs.WriteFile(ctx, "/v/movie", []byte("0123456789")))
	part, err := m.ReadFileRange(ctx, "alice", "/v/movie", 3, 4)
	mustNoErr(t, err)
	if string(part) != "3456" {
		t.Fatalf("range = %q", part)
	}
	if _, err := m.ReadFileRange(ctx, "alice", "/v", 0, 1); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("range on dir = %v", err)
	}
	if _, err := m.ReadFileRange(ctx, "alice", "/v/movie", -1, 1); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("negative offset = %v", err)
	}
}

// TestUsage accounts files and directories correctly after mutations.
func TestUsage(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/a"))
	mustNoErr(t, fs.WriteFile(ctx, "/a/f1", []byte("1234")))
	mustNoErr(t, fs.WriteFile(ctx, "/f2", []byte("56")))
	u, err := m.Usage(ctx, "alice")
	mustNoErr(t, err)
	if u.Dirs != 1 || u.Files != 2 || u.Bytes != 6 {
		t.Fatalf("usage = %+v", u)
	}
	mustNoErr(t, fs.Rmdir(ctx, "/a"))
	u, err = m.Usage(ctx, "alice")
	mustNoErr(t, err)
	if u.Dirs != 0 || u.Files != 1 || u.Bytes != 2 {
		t.Fatalf("usage after rmdir = %+v", u)
	}
}
