package h2fs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// descriptor is one NameRing's File Descriptor (§4.5): it serializes
// access to the ring, tracks the node's local version, its unflushed patch
// chain, and the merge watermarks used to garbage-collect merged patches.
type descriptor struct {
	mu      sync.Mutex
	account string
	ns      string

	local *core.NameRing // this node's local version (§3.3.2 step 1)
	// watermarks[node] is the highest patch sequence of that node already
	// folded into the flushed ring object.
	watermarks     map[int]int
	loaded         bool
	dirty          bool // local holds tuples not yet flushed to the store
	nextSeq        int  // next patch sequence this node will submit
	firstUnflushed int
	// lastGossip is the newest advertisement timestamp already processed
	// for this ring; older or equal adverts are not forwarded (the
	// loop-back avoidance of §3.3.2). Content timestamps cannot serve
	// here: a node whose own write is globally newest would wrongly
	// conclude it has seen everything.
	lastGossip int64
}

// desc returns (creating if needed) the cached descriptor for a ring.
func (m *Middleware) desc(account, ns string) *descriptor {
	key := core.RingKey(account, ns)
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.descs[key]
	if !ok {
		d = &descriptor{account: account, ns: ns, local: core.NewNameRing(), watermarks: map[int]int{}}
		m.descs[key] = d
	}
	return d
}

// dropDesc evicts a descriptor (after its ring is garbage collected).
func (m *Middleware) dropDesc(account, ns string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.descs, core.RingKey(account, ns))
}

// parseWatermarks extracts per-node merge watermarks from ring object
// metadata ("wm.<node>" -> seq).
func parseWatermarks(meta map[string]string) map[int]int {
	wm := map[int]int{}
	for k, v := range meta {
		rest, ok := strings.CutPrefix(k, "wm.")
		if !ok {
			continue
		}
		node, err1 := strconv.Atoi(rest)
		seq, err2 := strconv.Atoi(v)
		if err1 == nil && err2 == nil {
			wm[node] = seq
		}
	}
	return wm
}

func encodeWatermarks(wm map[int]int) map[string]string {
	meta := make(map[string]string, len(wm))
	for node, seq := range wm {
		meta["wm."+strconv.Itoa(node)] = strconv.Itoa(seq)
	}
	return meta
}

// load populates a descriptor from the store: the ring object plus this
// node's own unmerged patch chain (crash recovery — patches that were
// submitted but never folded into the ring object are replayed, and the
// sequence counter resumes past them). d must be locked via the
// middleware's per-descriptor discipline; load is only called with the
// descriptor's monitor held.
func (m *Middleware) load(ctx context.Context, d *descriptor) error {
	if d.loaded {
		return nil
	}
	data, info, err := m.store.Get(ctx, core.RingKey(d.account, d.ns))
	switch {
	case err == nil:
		ring, derr := core.DecodeNameRing(data)
		if derr != nil {
			return fmt.Errorf("h2fs: ring %s/%s corrupt: %w", d.account, d.ns, derr)
		}
		d.local.Merge(ring)
		d.watermarks = parseWatermarks(info.Meta)
	case errors.Is(err, objstore.ErrNotFound):
		// Ring object not created yet; start empty.
	default:
		return err
	}
	// Replay this node's orphaned patches (crash recovery).
	seq := d.watermarks[m.node] + 1
	for {
		pdata, _, err := m.store.Get(ctx, core.PatchKey(d.account, d.ns, m.node, seq))
		if errors.Is(err, objstore.ErrNotFound) {
			break
		}
		if err != nil {
			return err
		}
		p, derr := core.DecodePatch(core.PatchKey(d.account, d.ns, m.node, seq), pdata)
		if derr != nil {
			return derr
		}
		if d.local.Merge(p.Ring) > 0 {
			d.dirty = true
		}
		seq++
	}
	d.nextSeq = seq
	d.firstUnflushed = d.watermarks[m.node] + 1
	// Replay peers' unmerged patch chains too, in sorted node order for
	// determinism: after a restart the flushed ring object may trail
	// patches peers have already acknowledged to their clients, and a
	// reloading middleware must not serve a view missing those updates.
	// Peers unknown to the watermarks (never flushed) reconverge through
	// gossip instead.
	peers := make([]int, 0, len(d.watermarks))
	for node := range d.watermarks {
		if node != m.node {
			peers = append(peers, node)
		}
	}
	sort.Ints(peers)
	for _, node := range peers {
		for pseq := d.watermarks[node] + 1; ; pseq++ {
			key := core.PatchKey(d.account, d.ns, node, pseq)
			pdata, _, err := m.store.Get(ctx, key)
			if errors.Is(err, objstore.ErrNotFound) {
				break
			}
			if err != nil {
				return err
			}
			p, derr := core.DecodePatch(key, pdata)
			if derr != nil {
				return derr
			}
			if d.local.Merge(p.Ring) > 0 {
				d.dirty = true
			}
		}
	}
	d.loaded = true
	return nil
}

// withRing runs fn on the ring's local version under the descriptor
// monitor. One ring-consult charge is applied (either the load's real
// store GET or the cache-consult charge). fn must not consult other rings.
func (m *Middleware) withRing(ctx context.Context, account, ns string, fn func(*core.NameRing) error) error {
	d := m.desc(account, ns)
	m.lockDesc(d)
	defer m.unlockDesc(d)
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			return err
		}
	} else {
		m.chargeRingConsult(ctx)
	}
	return fn(d.local)
}

// lookupChild returns the tuple for one child of a directory, counting a
// single ring consult.
func (m *Middleware) lookupChild(ctx context.Context, account, ns, name string) (core.Tuple, bool, error) {
	var t core.Tuple
	var ok bool
	err := m.withRing(ctx, account, ns, func(r *core.NameRing) error {
		t, ok = r.Get(name)
		return nil
	})
	return t, ok, err
}

// liveChildren snapshots the live (non-tombstoned) tuples of a directory.
func (m *Middleware) liveChildren(ctx context.Context, account, ns string) ([]core.Tuple, error) {
	var out []core.Tuple
	err := m.withRing(ctx, account, ns, func(r *core.NameRing) error {
		out = r.Live()
		return nil
	})
	return out, err
}

// submitPatch implements §3.3.2 phase 1: the tuples are packed as a patch
// (same format as a NameRing), assigned the node/sequence-decorated key,
// put to the object storage cloud, and applied to the local version. The
// Background Merger later folds the patch chain into the ring object.
func (m *Middleware) submitPatch(ctx context.Context, account, ns string, tuples ...core.Tuple) error {
	d := m.desc(account, ns)
	m.lockDesc(d)
	defer m.unlockDesc(d)
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			return err
		}
	}
	ring := core.NewNameRing()
	for _, t := range tuples {
		ring.Set(t)
	}
	if m.syncProto {
		// Strawman synchronous protocol (§3.3.1): the update is applied
		// to the NameRing object in the cloud before the operation
		// returns, serialized by the ring's descriptor monitor. Stronger
		// consistency, but every mutation pays a read-modify-write and
		// hot directories bottleneck on the lock — the drawbacks that
		// motivate the asynchronous patch protocol.
		if d.local.Merge(ring) > 0 {
			d.dirty = true
		}
		return m.flushLocked(ctx, d)
	}
	p := &core.Patch{Account: account, NS: ns, Node: m.node, Seq: d.nextSeq, Ring: ring}
	if err := m.store.Put(ctx, p.Key(), p.Encode(), nil); err != nil {
		return fmt.Errorf("h2fs: submit patch: %w", err)
	}
	d.nextSeq++
	if d.local.Merge(ring) > 0 {
		d.dirty = true
	}
	return nil
}

// lockDesc/unlockDesc guard one descriptor; operations lock at most one
// descriptor at a time (multi-ring operations such as MOVE acquire them
// sequentially), so no lock ordering is needed. The acquire half is a
// deliberate cross-function pair — callers always defer unlockDesc.
//
//h2vet:ignore lockcheck lockDesc is the acquire half of a lock/defer-unlock pair
func (m *Middleware) lockDesc(d *descriptor)   { d.mu.Lock() }
func (m *Middleware) unlockDesc(d *descriptor) { d.mu.Unlock() }

// Flush runs the Background Merger (§4.5) for one ring: the store copy is
// read, merged with the local version (and with any watermark advances
// from peers), tombstones past the TTL are compacted, the result is put
// back, and this node's folded patch objects are deleted. If a gossip
// broadcaster is configured, the update is advertised. Flush is the
// "intra-node merging" step made durable.
func (m *Middleware) Flush(ctx context.Context, account, ns string) error {
	d := m.desc(account, ns)
	m.lockDesc(d)
	defer m.unlockDesc(d)
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			return err
		}
	}
	return m.flushLocked(ctx, d)
}

// flushLocked is Flush's body; the caller holds the descriptor monitor.
func (m *Middleware) flushLocked(ctx context.Context, d *descriptor) error {
	if !d.dirty && d.firstUnflushed >= d.nextSeq {
		return nil
	}
	// Read-merge-write against the store copy.
	data, info, err := m.store.Get(ctx, core.RingKey(d.account, d.ns))
	if err == nil {
		if ring, derr := core.DecodeNameRing(data); derr == nil {
			d.local.Merge(ring)
		}
		for node, seq := range parseWatermarks(info.Meta) {
			if seq > d.watermarks[node] {
				d.watermarks[node] = seq
			}
		}
	} else if !errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	if m.tombTTL > 0 {
		d.local.Compact(m.now() - m.tombTTL.Nanoseconds())
	}
	d.watermarks[m.node] = d.nextSeq - 1
	if err := m.store.Put(ctx, core.RingKey(d.account, d.ns),
		core.EncodeNameRing(d.local), encodeWatermarks(d.watermarks)); err != nil {
		return fmt.Errorf("h2fs: flush ring: %w", err)
	}
	for seq := d.firstUnflushed; seq < d.nextSeq; seq++ {
		// A missing patch object was already collected by a peer's merge.
		err := m.store.Delete(ctx, core.PatchKey(d.account, d.ns, m.node, seq))
		if err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return fmt.Errorf("h2fs: collect patch %d: %w", seq, err)
		}
	}
	d.firstUnflushed = d.nextSeq
	d.dirty = false
	if m.bus != nil {
		m.bus.Broadcast(m.node, gossip.Message{
			Account: d.account, NS: d.ns, Origin: m.node, Version: m.now(),
		})
	}
	return nil
}

// FlushAll flushes every dirty descriptor in the cache.
func (m *Middleware) FlushAll(ctx context.Context) error {
	for _, d := range m.cachedDescs() {
		if err := m.Flush(ctx, d.account, d.ns); err != nil {
			return err
		}
	}
	return nil
}

// cachedDescs snapshots the descriptor cache in sorted ring-key order
// under the cache lock, so FlushAll's flush sequence is deterministic.
func (m *Middleware) cachedDescs() []*descriptor {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.descs))
	for k := range m.descs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	descs := make([]*descriptor, 0, len(keys))
	for _, k := range keys {
		descs = append(descs, m.descs[k])
	}
	return descs
}

// handleGossip implements §3.3.2 phase 2 step 2: on receiving (N_i, H_j,
// t_k), the node aborts forwarding when its local timestamp already covers
// t_k (loop-back avoidance); otherwise it fetches the updated version from
// the cloud, merges it into its local version, and puts the gossip
// forward. If the store copy turns out to lack local tuples (a lost
// read-modify-write race), the descriptor is re-marked dirty so the next
// flush repairs the ring object.
func (m *Middleware) handleGossip(ctx context.Context, msg gossip.Message) {
	d := m.desc(msg.Account, msg.NS)
	m.lockDesc(d)
	if msg.Version <= d.lastGossip {
		m.unlockDesc(d)
		return
	}
	d.lastGossip = msg.Version
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			m.unlockDesc(d)
			return
		}
	} else if data, info, err := m.store.Get(ctx, core.RingKey(d.account, d.ns)); err == nil {
		if ring, derr := core.DecodeNameRing(data); derr == nil {
			// Detect tuples the store copy is missing before merging.
			if ring.Clone().Merge(d.local) > 0 {
				d.dirty = true
			}
			d.local.Merge(ring)
		}
		for node, seq := range parseWatermarks(info.Meta) {
			if seq > d.watermarks[node] {
				d.watermarks[node] = seq
			}
		}
	}
	m.unlockDesc(d)
	if m.bus != nil {
		m.bus.Broadcast(m.node, msg) // put it forward
	}
}
