package h2fs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// descriptor is one NameRing's File Descriptor (§4.5): it serializes
// access to the ring, tracks the node's local version, its unflushed patch
// chain, and the merge watermarks used to garbage-collect merged patches.
type descriptor struct {
	mu      sync.Mutex
	account string
	ns      string

	local *core.NameRing // this node's local version (§3.3.2 step 1)
	// watermarks[node] is the highest patch sequence of that node already
	// folded into the flushed ring object.
	watermarks     map[int]int
	loaded         bool
	nextSeq        int // next patch sequence this node will submit
	firstUnflushed int
	// dirtyNames records the children whose tuples changed locally since
	// the last flush. Non-empty means the descriptor is dirty; for a
	// sharded ring the set also tells the flush which extents to rewrite
	// (names, not extent indices, so the set survives layout changes).
	dirtyNames map[string]struct{}
	// shards/gen mirror the directory's store layout: 1 = one monolithic
	// ring object at RingKey, >1 = an H2DRX manifest there plus that many
	// sub-ring extents. gen is the manifest generation last observed.
	shards int
	gen    int64
	// evicted marks a descriptor removed from the cache while a caller
	// still held its pointer; lockedDesc retries on seeing it. Guarded by
	// mu.
	evicted bool
	// used is the stripe-clock stamp of the last cache lookup; the
	// cold-descriptor evictor removes the smallest. Guarded by the owning
	// stripe's lock, not mu.
	used int64
	// lastGossip is the newest advertisement timestamp already processed
	// for this ring; older or equal adverts are not forwarded (the
	// loop-back avoidance of §3.3.2). Content timestamps cannot serve
	// here: a node whose own write is globally newest would wrongly
	// conclude it has seen everything.
	lastGossip int64
}

func newDescriptor(account, ns string) *descriptor {
	return &descriptor{
		account:    account,
		ns:         ns,
		local:      core.NewNameRing(),
		watermarks: map[int]int{},
		dirtyNames: map[string]struct{}{},
		shards:     1,
	}
}

// noteChanged records one changed child; it is the MergeFunc/CompactFunc
// callback every local mutation routes through, and what lets a sharded
// flush rewrite only the extents that actually changed.
func (d *descriptor) noteChanged(t core.Tuple) {
	d.dirtyNames[t.Name] = struct{}{}
}

// isDirty reports whether local holds tuples not yet flushed to the store.
func (d *descriptor) isDirty() bool { return len(d.dirtyNames) > 0 }

// clean reports whether the descriptor can be evicted and rebuilt from
// the store alone: nothing unflushed, and no patch sequence numbers that
// a reload would not reconstruct from the flushed watermarks.
func (d *descriptor) clean() bool {
	return !d.isDirty() && d.firstUnflushed >= d.nextSeq
}

// dirtyShardSet maps the dirty child names onto the current layout's
// extent indices, sorted for deterministic write order.
func (d *descriptor) dirtyShardSet() []int {
	set := make(map[int]struct{}, len(d.dirtyNames))
	for name := range d.dirtyNames {
		set[core.ShardOf(name, d.shards)] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// parseWatermarks extracts per-node merge watermarks from ring object
// metadata ("wm.<node>" -> seq).
func parseWatermarks(meta map[string]string) map[int]int {
	wm := map[int]int{}
	for k, v := range meta {
		rest, ok := strings.CutPrefix(k, "wm.")
		if !ok {
			continue
		}
		node, err1 := strconv.Atoi(rest)
		seq, err2 := strconv.Atoi(v)
		if err1 == nil && err2 == nil {
			wm[node] = seq
		}
	}
	return wm
}

func encodeWatermarks(wm map[int]int) map[string]string {
	meta := make(map[string]string, len(wm))
	for node, seq := range wm {
		meta["wm."+strconv.Itoa(node)] = strconv.Itoa(seq)
	}
	return meta
}

// storedRing is the decoded store representation of one directory ring:
// the merged tuple view, the flush watermarks, and the layout it was
// stored under.
type storedRing struct {
	ring   *core.NameRing
	wm     map[int]int
	shards int   // 1 = monolithic ring object
	gen    int64 // manifest generation (0 when monolithic)
	found  bool
}

// readStoredRing fetches a directory's store representation. The object
// at RingKey is either a monolithic NameRing or an H2DRX manifest; in the
// sharded case all extents are fetched in one batched window
// (objstore.MultiGet — the cluster charges it as one overlapped LPT
// fan-out) and merged. A referenced-but-missing extent is tolerated as
// empty: patch replay and gossip re-converge the tuples it held.
func (m *Middleware) readStoredRing(ctx context.Context, account, ns string) (storedRing, error) {
	data, info, err := m.store.Get(ctx, core.RingKey(account, ns))
	switch {
	case errors.Is(err, objstore.ErrNotFound):
		return storedRing{shards: 1}, nil
	case err != nil:
		return storedRing{}, err
	}
	if !core.IsShardManifest(data) {
		ring, derr := core.DecodeNameRing(data)
		if derr != nil {
			return storedRing{}, fmt.Errorf("h2fs: ring %s/%s corrupt: %w", account, ns, derr)
		}
		return storedRing{ring: ring, wm: parseWatermarks(info.Meta), shards: 1, found: true}, nil
	}
	man, derr := core.DecodeShardManifest(data)
	if derr != nil {
		return storedRing{}, fmt.Errorf("h2fs: shard manifest %s/%s corrupt: %w", account, ns, derr)
	}
	extents := make([]*core.NameRing, man.Shards)
	for i, res := range objstore.MultiGet(ctx, m.store, core.ExtentKeys(account, ns, man.Shards)) {
		if errors.Is(res.Err, objstore.ErrNotFound) {
			continue
		}
		if res.Err != nil {
			return storedRing{}, res.Err
		}
		ext, derr := core.DecodeNameRing(res.Data)
		if derr != nil {
			return storedRing{}, fmt.Errorf("h2fs: extent %d of %s/%s corrupt: %w", i, account, ns, derr)
		}
		extents[i] = ext
	}
	return storedRing{
		ring: core.MergedExtents(extents), wm: parseWatermarks(info.Meta),
		shards: man.Shards, gen: man.Gen, found: true,
	}, nil
}

// load populates a descriptor from the store: the ring representation
// (monolithic or sharded) plus this node's own unmerged patch chain
// (crash recovery — patches that were submitted but never folded into the
// ring object are replayed, and the sequence counter resumes past them).
// load is only called with the descriptor's monitor held.
func (m *Middleware) load(ctx context.Context, d *descriptor) error {
	if d.loaded {
		return nil
	}
	sr, err := m.readStoredRing(ctx, d.account, d.ns)
	if err != nil {
		return err
	}
	if sr.found {
		d.local.Merge(sr.ring)
		d.watermarks = sr.wm
	}
	d.shards, d.gen = sr.shards, sr.gen
	// Replay this node's orphaned patches (crash recovery).
	seq := d.watermarks[m.node] + 1
	for {
		pdata, _, err := m.store.Get(ctx, core.PatchKey(d.account, d.ns, m.node, seq))
		if errors.Is(err, objstore.ErrNotFound) {
			break
		}
		if err != nil {
			return err
		}
		p, derr := core.DecodePatch(core.PatchKey(d.account, d.ns, m.node, seq), pdata)
		if derr != nil {
			return derr
		}
		d.local.MergeFunc(p.Ring, d.noteChanged)
		seq++
	}
	d.nextSeq = seq
	d.firstUnflushed = d.watermarks[m.node] + 1
	// Replay peers' unmerged patch chains too, in sorted node order for
	// determinism: after a restart the flushed ring object may trail
	// patches peers have already acknowledged to their clients, and a
	// reloading middleware must not serve a view missing those updates.
	// Peers unknown to the watermarks (never flushed) reconverge through
	// gossip instead.
	peers := make([]int, 0, len(d.watermarks))
	for node := range d.watermarks {
		if node != m.node {
			peers = append(peers, node)
		}
	}
	sort.Ints(peers)
	for _, node := range peers {
		for pseq := d.watermarks[node] + 1; ; pseq++ {
			key := core.PatchKey(d.account, d.ns, node, pseq)
			pdata, _, err := m.store.Get(ctx, key)
			if errors.Is(err, objstore.ErrNotFound) {
				break
			}
			if err != nil {
				return err
			}
			p, derr := core.DecodePatch(key, pdata)
			if derr != nil {
				return derr
			}
			d.local.MergeFunc(p.Ring, d.noteChanged)
		}
	}
	d.loaded = true
	return nil
}

// withRing runs fn on the ring's local version under the descriptor
// monitor. One ring-consult charge is applied (either the load's real
// store GET or the cache-consult charge). fn must not consult other rings.
func (m *Middleware) withRing(ctx context.Context, account, ns string, fn func(*core.NameRing) error) error {
	d := m.lockedDesc(account, ns)
	defer m.unlockDesc(d)
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			return err
		}
	} else {
		m.chargeRingConsult(ctx)
	}
	return fn(d.local)
}

// lookupChild returns the tuple for one child of a directory, counting a
// single ring consult.
func (m *Middleware) lookupChild(ctx context.Context, account, ns, name string) (core.Tuple, bool, error) {
	var t core.Tuple
	var ok bool
	err := m.withRing(ctx, account, ns, func(r *core.NameRing) error {
		t, ok = r.Get(name)
		return nil
	})
	return t, ok, err
}

// liveChildren snapshots the live (non-tombstoned) tuples of a directory.
func (m *Middleware) liveChildren(ctx context.Context, account, ns string) ([]core.Tuple, error) {
	var out []core.Tuple
	err := m.withRing(ctx, account, ns, func(r *core.NameRing) error {
		out = r.Live()
		return nil
	})
	return out, err
}

// submitPatch implements §3.3.2 phase 1: the tuples are packed as a patch
// (same format as a NameRing), assigned the node/sequence-decorated key,
// put to the object storage cloud, and applied to the local version. The
// Background Merger later folds the patch chain into the ring object.
func (m *Middleware) submitPatch(ctx context.Context, account, ns string, tuples ...core.Tuple) error {
	d := m.lockedDesc(account, ns)
	defer m.unlockDesc(d)
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			return err
		}
	}
	ring := core.NewNameRing()
	for _, t := range tuples {
		ring.Set(t)
	}
	if m.syncProto {
		// Strawman synchronous protocol (§3.3.1): the update is applied
		// to the NameRing object in the cloud before the operation
		// returns, serialized by the ring's descriptor monitor. Stronger
		// consistency, but every mutation pays a read-modify-write and
		// hot directories bottleneck on the lock — the drawbacks that
		// motivate the asynchronous patch protocol.
		d.local.MergeFunc(ring, d.noteChanged)
		return m.flushLocked(ctx, d)
	}
	p := &core.Patch{Account: account, NS: ns, Node: m.node, Seq: d.nextSeq, Ring: ring}
	if err := m.store.Put(ctx, p.Key(), p.Encode(), nil); err != nil {
		return fmt.Errorf("h2fs: submit patch: %w", err)
	}
	d.nextSeq++
	d.local.MergeFunc(ring, d.noteChanged)
	return nil
}

// lockDesc/unlockDesc guard one descriptor; operations lock at most one
// descriptor at a time (multi-ring operations such as MOVE acquire them
// sequentially), so no lock ordering is needed. The acquire half is a
// deliberate cross-function pair — callers always defer unlockDesc.
//
//h2vet:ignore lockcheck lockDesc is the acquire half of a lock/defer-unlock pair
func (m *Middleware) lockDesc(d *descriptor)   { d.mu.Lock() }
func (m *Middleware) unlockDesc(d *descriptor) { d.mu.Unlock() }

// lockedDesc returns the ring's descriptor with its monitor held. The
// cache may evict a clean descriptor between the lookup and the lock, so
// acquisition re-checks the evicted flag and retries against the cache —
// a fresh descriptor (reloaded from the flushed store state) replaces the
// one that was dropped.
func (m *Middleware) lockedDesc(account, ns string) *descriptor {
	for {
		d := m.desc(account, ns)
		m.lockDesc(d)
		if !d.evicted {
			return d
		}
		m.unlockDesc(d)
	}
}

// Flush runs the Background Merger (§4.5) for one ring: the store copy is
// read, merged with the local version (and with any watermark advances
// from peers), tombstones past the TTL are compacted, the result is put
// back, and this node's folded patch objects are deleted. If a gossip
// broadcaster is configured, the update is advertised. Flush is the
// "intra-node merging" step made durable.
func (m *Middleware) Flush(ctx context.Context, account, ns string) error {
	d := m.lockedDesc(account, ns)
	defer m.unlockDesc(d)
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			return err
		}
	}
	return m.flushLocked(ctx, d)
}

// flushLocked is Flush's body; the caller holds the descriptor monitor.
//
// The write half depends on the directory's layout. A monolithic ring
// under the DirShardThreshold keeps the original single-object
// read-merge-write, byte for byte. A sharded ring in steady state
// rewrites only the extents holding dirty names plus the manifest
// (O(m/shards) bytes per flush instead of O(m)). A layout transition —
// split, re-split, or merge back to monolithic — is write-new-then-flip:
// the new representation lands on fresh keys first, the manifest (or
// ring) put at RingKey is the atomic flip, and the old representation is
// deleted last, so a crash at any point leaves either the old state plus
// unreferenced garbage (Scrub reclaims it) or the new state complete.
func (m *Middleware) flushLocked(ctx context.Context, d *descriptor) error {
	if !d.isDirty() && d.firstUnflushed >= d.nextSeq {
		return nil
	}
	// Read-merge-write against the store copy. Tuples the store wins come
	// from already-flushed state, so they never dirty an extent.
	sr, err := m.readStoredRing(ctx, d.account, d.ns)
	if err != nil {
		return err
	}
	if sr.found {
		d.local.Merge(sr.ring)
		for node, seq := range sr.wm {
			if seq > d.watermarks[node] {
				d.watermarks[node] = seq
			}
		}
		if sr.shards != d.shards || sr.gen != d.gen {
			// A peer transitioned the layout; adopt it. dirtyNames are
			// names, not indices, so pending dirt remaps automatically.
			d.shards, d.gen = sr.shards, sr.gen
		}
	}
	if m.tombTTL > 0 {
		// Dropped tombstones dirty their extent so the store copy is
		// rewritten without them.
		d.local.CompactFunc(m.now()-m.tombTTL.Nanoseconds(), d.noteChanged)
	}
	d.watermarks[m.node] = d.nextSeq - 1
	want := m.desiredShards(d.local.Len(), d.shards)
	switch {
	case d.shards == 1 && want == 1:
		// Monolithic steady state — the original flush path.
		if err := m.store.Put(ctx, core.RingKey(d.account, d.ns),
			core.EncodeNameRing(d.local), encodeWatermarks(d.watermarks)); err != nil {
			return fmt.Errorf("h2fs: flush ring: %w", err)
		}
	case want == d.shards:
		if err := m.flushShardedSteady(ctx, d); err != nil {
			return err
		}
	default:
		if err := m.transitionShards(ctx, d, want); err != nil {
			return err
		}
	}
	for seq := d.firstUnflushed; seq < d.nextSeq; seq++ {
		// A missing patch object was already collected by a peer's merge.
		err := m.store.Delete(ctx, core.PatchKey(d.account, d.ns, m.node, seq))
		if err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return fmt.Errorf("h2fs: collect patch %d: %w", seq, err)
		}
	}
	d.firstUnflushed = d.nextSeq
	clear(d.dirtyNames)
	if m.bus != nil {
		m.bus.Broadcast(m.node, gossip.Message{
			Account: d.account, NS: d.ns, Origin: m.node, Version: m.now(),
		})
	}
	return nil
}

// flushShardedSteady writes a sharded directory whose layout is not
// changing: one batched put covers the dirty extents, then the manifest
// is rewritten to publish the watermark advance. Extents go first — if
// the manifest put never lands, the extents are still consistent (they
// hold a superset the patch chain re-converges) and the un-advanced
// watermarks just replay the patches.
func (m *Middleware) flushShardedSteady(ctx context.Context, d *descriptor) error {
	dirty := d.dirtyShardSet()
	reqs := make([]objstore.PutReq, 0, len(dirty))
	for _, s := range dirty {
		reqs = append(reqs, objstore.PutReq{
			Name: core.ExtentKey(d.account, d.ns, s, d.shards),
			Data: core.EncodeNameRingExtent(d.local, s, d.shards),
		})
	}
	for _, err := range objstore.MultiPut(ctx, m.store, reqs) {
		if err != nil {
			return fmt.Errorf("h2fs: flush extent: %w", err)
		}
	}
	if err := m.store.Put(ctx, core.RingKey(d.account, d.ns),
		core.EncodeShardManifest(core.ShardManifest{Shards: d.shards, Gen: d.gen}),
		encodeWatermarks(d.watermarks)); err != nil {
		return fmt.Errorf("h2fs: flush manifest: %w", err)
	}
	return nil
}

// transitionShards changes a directory's layout (split, re-split, or
// merge back to monolithic) with the write-new-then-flip protocol. The
// shard count is part of every extent key, so the new representation
// never collides with the old one; the single put at RingKey is the
// atomic flip between them.
func (m *Middleware) transitionShards(ctx context.Context, d *descriptor, want int) error {
	oldShards := d.shards
	newGen := d.gen + 1
	if want > 1 {
		reqs := make([]objstore.PutReq, want)
		for s := 0; s < want; s++ {
			reqs[s] = objstore.PutReq{
				Name: core.ExtentKey(d.account, d.ns, s, want),
				Data: core.EncodeNameRingExtent(d.local, s, want),
			}
		}
		for _, err := range objstore.MultiPut(ctx, m.store, reqs) {
			if err != nil {
				return fmt.Errorf("h2fs: write split extent: %w", err)
			}
		}
		if err := m.store.Put(ctx, core.RingKey(d.account, d.ns),
			core.EncodeShardManifest(core.ShardManifest{Shards: want, Gen: newGen}),
			encodeWatermarks(d.watermarks)); err != nil {
			return fmt.Errorf("h2fs: flip manifest: %w", err)
		}
	} else {
		// Merging back to monolithic: the ring object put at RingKey
		// overwrites the manifest and is itself the flip.
		if err := m.store.Put(ctx, core.RingKey(d.account, d.ns),
			core.EncodeNameRing(d.local), encodeWatermarks(d.watermarks)); err != nil {
			return fmt.Errorf("h2fs: flip ring: %w", err)
		}
	}
	d.shards, d.gen = want, newGen
	if oldShards > 1 {
		// Old extents are unreferenced after the flip; a failure here
		// leaves garbage for Scrub, never an inconsistent directory.
		for _, err := range objstore.MultiDelete(ctx, m.store, core.ExtentKeys(d.account, d.ns, oldShards)) {
			if err != nil && !errors.Is(err, objstore.ErrNotFound) {
				return fmt.Errorf("h2fs: collect old extent: %w", err)
			}
		}
	}
	if m.reg != nil {
		if want > oldShards {
			m.reg.Inc("dirShard.splits", 1)
		} else {
			m.reg.Inc("dirShard.merges", 1)
		}
		oldN, newN := oldShards, want
		if oldN == 1 {
			oldN = 0
		}
		if newN == 1 {
			newN = 0
		}
		m.reg.Inc("dirShard.extents", int64(newN-oldN))
	}
	return nil
}

// desiredShards applies the split/merge policy: shard once the live-child
// count crosses the threshold (to the smallest power of two holding each
// extent at or under the threshold), grow only after the directory
// doubles past the current layout's capacity, and merge back to
// monolithic only after it shrinks below half the threshold. The wide
// hysteresis band keeps a directory hovering near a boundary from
// flapping between layouts. A zero (or negative) threshold — the default
// — performs no transitions at all, so existing deployments and the
// paper-figure benchmarks never see a manifest.
func (m *Middleware) desiredShards(live, cur int) int {
	t := m.profile.DirShardThreshold
	if t <= 0 {
		return cur
	}
	if cur <= 1 {
		if live <= t {
			return 1
		}
		return shardCountFor(live, t)
	}
	if live > 2*t*cur {
		return shardCountFor(live, t)
	}
	if live < t/2 {
		return 1
	}
	return cur
}

// shardCountFor picks the smallest power-of-two shard count that brings
// the per-extent live count at or under the threshold, capped at
// core.MaxDirShards.
func shardCountFor(live, threshold int) int {
	s := 2
	for s < core.MaxDirShards && live > threshold*s {
		s *= 2
	}
	return s
}

// FlushAll flushes every dirty descriptor in the cache.
func (m *Middleware) FlushAll(ctx context.Context) error {
	for _, d := range m.cachedDescs() {
		if err := m.Flush(ctx, d.account, d.ns); err != nil {
			return err
		}
	}
	return nil
}

// handleGossip implements §3.3.2 phase 2 step 2: on receiving (N_i, H_j,
// t_k), the node aborts forwarding when its local timestamp already covers
// t_k (loop-back avoidance); otherwise it fetches the updated version from
// the cloud, merges it into its local version, and puts the gossip
// forward. If the store copy turns out to lack local tuples (a lost
// read-modify-write race), the missing children are re-marked dirty so the
// next flush repairs the ring object.
func (m *Middleware) handleGossip(ctx context.Context, msg gossip.Message) {
	d := m.lockedDesc(msg.Account, msg.NS)
	if msg.Version <= d.lastGossip {
		m.unlockDesc(d)
		return
	}
	d.lastGossip = msg.Version
	if !d.loaded {
		if err := m.load(ctx, d); err != nil {
			m.unlockDesc(d)
			return
		}
	} else if sr, err := m.readStoredRing(ctx, d.account, d.ns); err == nil && sr.found {
		// Detect tuples the store copy is missing before merging.
		sr.ring.Clone().MergeFunc(d.local, d.noteChanged)
		d.local.Merge(sr.ring)
		for node, seq := range sr.wm {
			if seq > d.watermarks[node] {
				d.watermarks[node] = seq
			}
		}
		if sr.shards != d.shards || sr.gen != d.gen {
			d.shards, d.gen = sr.shards, sr.gen
		}
	}
	m.unlockDesc(d)
	if m.bus != nil {
		m.bus.Broadcast(m.node, msg) // put it forward
	}
}
