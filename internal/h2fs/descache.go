package h2fs

import (
	"sort"
	"sync"

	"github.com/h2cloud/h2cloud/internal/core"
)

// The File Descriptor Cache, hash-sharded. A single mutex-protected map
// made every operation — walks over disjoint namespaces included —
// serialize on one lock just to look a descriptor up. The cache is now
// descStripes independent stripes keyed by RingKey hash: lookups on
// different namespaces proceed in parallel, and the per-stripe lock is
// held only for map access, never across I/O.
//
// Each stripe also enforces its slice of the cold-descriptor eviction
// cap (Config.DescCacheLimit): on insert past the budget, the
// least-recently-used *clean* descriptors are dropped. Clean means
// nothing unflushed and no live patch chain (descriptor.clean), so a
// reload rebuilds the exact same state from the store — eviction is
// invisible except for the reload cost. Evicted descriptors are flagged
// so a caller that raced the eviction (held the pointer, then took the
// monitor) retries the lookup via lockedDesc instead of mutating an
// orphan.
const descStripes = 32

type descStripe struct {
	mu    sync.Mutex
	descs map[string]*descriptor
	clock int64 // monotone lookup counter; stamps descriptor.used
}

// stripeOf routes a ring key to its stripe with the same FNV-1a hash the
// extent router uses.
func stripeOf(key string) int {
	return core.ShardOf(key, descStripes)
}

// desc returns (creating if needed) the cached descriptor for a ring.
// Callers that will lock the descriptor must go through lockedDesc so a
// concurrent eviction is retried, not ignored.
func (m *Middleware) desc(account, ns string) *descriptor {
	key := core.RingKey(account, ns)
	st := &m.stripes[stripeOf(key)]
	st.mu.Lock()
	defer st.mu.Unlock()
	d, ok := st.descs[key]
	if !ok {
		d = newDescriptor(account, ns)
		if st.descs == nil {
			st.descs = make(map[string]*descriptor)
		}
		st.descs[key] = d
		if m.reg != nil {
			m.reg.Inc("descCache.size", 1)
		}
		m.evictColdLocked(st, d)
	}
	st.clock++
	d.used = st.clock
	return d
}

// evictColdLocked enforces the stripe's share of the descriptor cap,
// called with the stripe lock held after an insert. Candidates are
// scanned coldest-first; each is TryLocked (a busy descriptor is hot by
// definition) and dropped only if clean. keep — the descriptor being
// inserted — is never a candidate.
func (m *Middleware) evictColdLocked(st *descStripe, keep *descriptor) {
	budget := m.descStripeCap
	if budget <= 0 || len(st.descs) <= budget {
		return
	}
	type cand struct {
		key string
		d   *descriptor
	}
	cands := make([]cand, 0, len(st.descs)-1)
	for k, d := range st.descs {
		if d != keep {
			cands = append(cands, cand{k, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d.used < cands[j].d.used })
	for _, c := range cands {
		if len(st.descs) <= budget {
			return
		}
		if !c.d.mu.TryLock() {
			continue
		}
		ok := c.d.clean()
		if ok {
			c.d.evicted = true
			delete(st.descs, c.key)
		}
		c.d.mu.Unlock()
		if ok && m.reg != nil {
			m.reg.Inc("descCache.size", -1)
			m.reg.Inc("descCache.evicted", 1)
		}
	}
}

// dropDesc removes a descriptor (after its ring is garbage collected).
func (m *Middleware) dropDesc(account, ns string) {
	key := core.RingKey(account, ns)
	st := &m.stripes[stripeOf(key)]
	st.mu.Lock()
	defer st.mu.Unlock()
	d, ok := st.descs[key]
	if !ok {
		return
	}
	markEvicted(d)
	delete(st.descs, key)
	if m.reg != nil {
		m.reg.Inc("descCache.size", -1)
	}
}

// descEntry is one cache snapshot row: a descriptor with its ring key.
type descEntry struct {
	key string
	d   *descriptor
}

// snapshotStripe copies one stripe's descriptors out under its lock, in
// sorted ring-key order.
func snapshotStripe(st *descStripe) []descEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]descEntry, 0, len(st.descs))
	for k, d := range st.descs {
		out = append(out, descEntry{k, d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// cachedDescs snapshots the descriptor cache in sorted ring-key order
// across all stripes, so FlushAll's flush sequence is deterministic.
func (m *Middleware) cachedDescs() []*descriptor {
	var all []descEntry
	for i := range m.stripes {
		all = append(all, snapshotStripe(&m.stripes[i])...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	descs := make([]*descriptor, len(all))
	for i, e := range all {
		descs[i] = e.d
	}
	return descs
}

// dropDescriptors empties the cache (simulated process restart). Every
// descriptor is flagged evicted under its monitor so an operation that
// raced the restart re-fetches a fresh descriptor instead of writing
// into a dropped one.
func (m *Middleware) dropDescriptors() {
	dropped := 0
	drain := func(st *descStripe) {
		st.mu.Lock()
		defer st.mu.Unlock()
		for _, d := range st.descs {
			markEvicted(d)
			dropped++
		}
		st.descs = nil
	}
	for i := range m.stripes {
		drain(&m.stripes[i])
	}
	if m.reg != nil && dropped > 0 {
		m.reg.Inc("descCache.size", int64(-dropped))
	}
	m.rootsMu.Lock()
	defer m.rootsMu.Unlock()
	m.roots = make(map[string]string)
}

// markEvicted flags a descriptor under its monitor so a caller that
// raced the drop retries its lookup instead of mutating an orphan.
func markEvicted(d *descriptor) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evicted = true
}
