// Package h2fs implements the H2Middleware (paper §4.2): the component
// that maps POSIX-like filesystem operations onto the flat PUT/GET/DELETE
// primitives of an object storage cloud using the Hierarchical Hash data
// structure.
//
// One Middleware corresponds to one "H2Middleware wrapping a Swift proxy
// server"; several can be deployed over the same cloud for load balancing,
// coordinating their NameRing replicas through patches and gossip
// (§3.3.2). Per-account filesystem views implementing fsapi.FileSystem
// are obtained with FS.
package h2fs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/storemw"
	"github.com/h2cloud/h2cloud/internal/uuid"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Config describes one H2Middleware instance.
type Config struct {
	// Store is the underlying object storage cloud (Outbound API target).
	Store objstore.Store
	// Node is this middleware's node number, used in namespace UUIDs and
	// patch keys.
	Node int
	// Profile prices ring consultations served from the File Descriptor
	// Cache so that virtual operation time matches a store fetch; store
	// primitives charge themselves. Fanout bounds concurrent outbound
	// requests. A zero profile charges nothing.
	Profile cluster.CostProfile
	// Clock supplies tuple timestamps; defaults to time.Now.
	Clock func() time.Time
	// Gossip, when set, spreads NameRing update advertisements to peer
	// middlewares after flushes.
	Gossip gossip.Broadcaster
	// EagerGC makes RMDIR and account deletion reclaim subtree objects
	// synchronously (outside the measured operation cost). Without it,
	// reclamation is left to an explicit GC pass, matching the paper's
	// fake-deletion design.
	EagerGC bool
	// GCQueue enables the durable async reclamation queue: RMDIR and
	// account deletion record a crash-safe GC intent (two O(1) puts)
	// before the tombstone, and the maintenance loop drains the queue
	// through the pipelined walker (DrainGC). With EagerGC also set the
	// intent brackets the synchronous walk, so a crash mid-reclamation
	// is resumed instead of leaking the remainder.
	GCQueue bool
	// TombstoneTTL controls compaction of fake-deletion tombstones during
	// flushes: tombstones older than the TTL are really removed. Zero
	// keeps tombstones forever.
	TombstoneTTL time.Duration
	// Retry, when enabled (MaxAttempts > 1), installs the typed-error
	// retry loop between the middleware and the store: transient cloud
	// errors are retried with capped exponential backoff charged to the
	// virtual clock. The zero value performs no retries.
	Retry RetryPolicy
	// Metrics, when set, receives the middleware's robustness counters
	// (retry.attempts, retry.exhausted), the descriptor-cache gauges
	// (descCache.size, descCache.evicted), and the directory-sharding
	// counters (dirShard.splits, dirShard.merges, dirShard.extents); it is
	// exposed via Metrics().
	Metrics *metrics.Registry
	// DescCacheLimit caps the File Descriptor Cache: past it, the
	// least-recently-used clean descriptors are evicted (a clean
	// descriptor reloads from the store byte-identically, so eviction only
	// costs the reload). Zero keeps every descriptor forever, the original
	// behavior.
	DescCacheLimit int
	// SyncProtocol enables the strawman synchronous NameRing maintenance
	// of §3.3.1: every mutation read-modify-writes the ring object before
	// returning, instead of submitting a patch for the Background Merger.
	// Kept for the ablation benchmark; the paper rejects it for the
	// availability and serialization costs it imposes.
	SyncProtocol bool
}

// Middleware is one H2Middleware instance.
type Middleware struct {
	store     objstore.Store
	node      int
	profile   cluster.CostProfile
	clock     func() time.Time
	bus       gossip.Broadcaster
	eagerGC   bool
	tombTTL   time.Duration
	syncProto bool
	gen       *uuid.Gen
	reg       *metrics.Registry

	// The File Descriptor Cache, hash-sharded into independent stripes
	// (see descache.go). descStripeCap is each stripe's share of
	// Config.DescCacheLimit (0 = unlimited).
	stripes       [descStripes]descStripe
	descStripeCap int

	rootsMu sync.Mutex
	roots   map[string]string // account -> root namespace UUID

	gcq        bool
	gcmu       sync.Mutex
	gcstates   map[string]*gcState     // account -> pending span mirror
	gcinflight map[string]map[int]bool // account -> seqs in the enqueue-to-ack window
	gcloaded   bool                    // gcstates primed from the durable index
	gcdraining atomic.Bool
	// gcidxmu serializes writes of the durable queue index so coverage is
	// monotone; gcidxheads records, per account, the highest sequence a
	// persisted snapshot covered (lock order: gcidxmu, then gcmu).
	gcidxmu    sync.Mutex
	gcidxheads map[string]int
}

// New builds a middleware. If cfg.Gossip is a *gossip.Bus, the middleware
// registers itself as node cfg.Node.
func New(cfg Config) (*Middleware, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("h2fs: Config.Store is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Profile.Fanout <= 0 {
		cfg.Profile.Fanout = 16
	}
	// Assemble the store middleware stack: retry innermost (each attempt
	// goes straight to the cloud), op-tracing metrics outermost so its
	// observations include retry-inflated service time.
	var layers []storemw.Layer
	if cfg.Retry.Enabled() {
		layers = append(layers, storemw.Retry(cfg.Retry, cfg.Metrics))
	}
	if cfg.Metrics != nil {
		layers = append(layers, storemw.Metrics(cfg.Metrics))
	}
	store := storemw.Stack(cfg.Store, layers...)
	m := &Middleware{
		store:      store,
		node:       cfg.Node,
		profile:    cfg.Profile,
		clock:      cfg.Clock,
		bus:        cfg.Gossip,
		eagerGC:    cfg.EagerGC,
		tombTTL:    cfg.TombstoneTTL,
		syncProto:  cfg.SyncProtocol,
		gen:        uuid.NewGen(cfg.Node, func() time.Time { return cfg.Clock() }),
		reg:        cfg.Metrics,
		roots:      make(map[string]string),
		gcq:        cfg.GCQueue,
		gcstates:   make(map[string]*gcState),
		gcinflight: make(map[string]map[int]bool),
		gcidxheads: make(map[string]int),
	}
	if cfg.DescCacheLimit > 0 {
		m.descStripeCap = (cfg.DescCacheLimit + descStripes - 1) / descStripes
	}
	if bus, ok := cfg.Gossip.(*gossip.Bus); ok && bus != nil {
		bus.Register(cfg.Node, m.handleGossip)
	} else if reg, ok := cfg.Gossip.(gossip.Registrar); ok {
		reg.Register(cfg.Node, m.handleGossip)
	}
	return m, nil
}

// Node returns the middleware's node number.
func (m *Middleware) Node() int { return m.node }

// Store returns the underlying object storage cloud (the Outbound API
// target), including the retry layer when one is configured.
func (m *Middleware) Store() objstore.Store { return m.store }

// Metrics returns the middleware's counter registry (nil when none was
// configured).
func (m *Middleware) Metrics() *metrics.Registry { return m.reg }

// Recover simulates a middleware process restart: every cached File
// Descriptor and root record is dropped, so subsequent operations reload
// NameRings from the store and replay any unmerged patch chains — the
// crash-recovery path the chaos experiments exercise. The GC-queue span
// mirror is dropped too, so the next DrainGC re-reads the durable index
// and resumes any reclamation the crash interrupted.
func (m *Middleware) Recover() {
	m.dropDescriptors()
	m.dropGCMirror()
}

func (m *Middleware) dropGCMirror() {
	m.dropGCSpans()
	m.dropGCIndexHeads()
}

func (m *Middleware) dropGCSpans() {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	m.gcstates = make(map[string]*gcState)
	// In-flight windows die with the process being simulated away: any
	// intent whose operation never acknowledged is validated against its
	// still-live parent tuple at the next drain and dropped as stale.
	m.gcinflight = make(map[string]map[int]bool)
	m.gcloaded = false
}

func (m *Middleware) dropGCIndexHeads() {
	m.gcidxmu.Lock()
	defer m.gcidxmu.Unlock()
	m.gcidxheads = make(map[string]int)
}

// now returns the current tuple timestamp in nanoseconds.
func (m *Middleware) now() int64 { return m.clock().UnixNano() }

// subtreeFanout is the worker bound of the pipelined subtree engine;
// profiles that leave CostProfile.SubtreeFanout unset keep maintenance
// walks sequential (and their charges identical to the unpipelined
// code).
func (m *Middleware) subtreeFanout() int {
	if m.profile.SubtreeFanout > 1 {
		return m.profile.SubtreeFanout
	}
	return 1
}

// chargeRingConsult prices one NameRing consultation served from the File
// Descriptor Cache. The cache keeps merge state in memory, but a consult
// still costs one object GET in the deployed system (the paper's measured
// O(d) file access, §5.3), so the virtual clock is charged either way.
func (m *Middleware) chargeRingConsult(ctx context.Context) {
	vclock.Charge(ctx, m.profile.Get)
}

// CreateAccount provisions a user: a root namespace, its empty NameRing
// object, and the account root record pointing at the namespace.
func (m *Middleware) CreateAccount(ctx context.Context, account string) error {
	if !core.ValidAccount(account) {
		return fmt.Errorf("h2fs: invalid account %q: %w", account, fsapi.ErrInvalidPath)
	}
	if _, err := m.store.Head(ctx, core.RootKey(account)); err == nil {
		return fmt.Errorf("h2fs: account %q: %w", account, fsapi.ErrExists)
	}
	ns := m.gen.Next()
	if err := m.store.Put(ctx, core.RingKey(account, ns), core.EncodeNameRing(core.NewNameRing()), nil); err != nil {
		return fmt.Errorf("h2fs: create root ring: %w", err)
	}
	if err := m.store.Put(ctx, core.RootKey(account), []byte(ns), map[string]string{"h2type": "root"}); err != nil {
		return fmt.Errorf("h2fs: create root record: %w", err)
	}
	return nil
}

// DeleteAccount removes a user's filesystem. Without the GC queue the
// walk is synchronous: every object under the root namespace, then the
// root record. With the queue a durable intent is recorded first and the
// root record delete is the acknowledgment point — the subtree is then
// reclaimed by the maintenance drain (or eagerly, bracketed by the
// intent, when EagerGC is also set), so a crash anywhere resumes instead
// of leaking.
func (m *Middleware) DeleteAccount(ctx context.Context, account string) error {
	ns, err := m.rootNS(ctx, account)
	if err != nil {
		return err
	}
	if !m.gcq {
		if err := m.gcNamespace(ctx, account, ns); err != nil {
			return err
		}
		m.dropRoot(account)
		if err := m.store.Delete(ctx, core.RootKey(account)); err != nil {
			return fmt.Errorf("h2fs: delete root record: %w", err)
		}
		return nil
	}
	// Intent before acknowledgment: enqueue survives caller cancellation
	// (the drain drops it as stale if the root delete below never lands).
	//h2vet:durable GC intent enqueue: must land regardless of caller cancellation
	qctx := context.WithoutCancel(ctx)
	seq, err := m.enqueueGC(qctx, account, ns, "", "", true)
	if err != nil {
		return err
	}
	// The intent stays in its in-flight window — invisible to drains, which
	// would otherwise misread the still-present root record as proof the
	// deletion never happened — until this operation returns.
	defer m.gcSettle(account, seq)
	m.dropRoot(account)
	if err := m.store.Delete(ctx, core.RootKey(account)); err != nil {
		return fmt.Errorf("h2fs: delete root record: %w", err)
	}
	if m.eagerGC {
		gcCtx := vclock.With(qctx, nil) // do not bill GC to the caller
		if err := m.gcNamespace(gcCtx, account, ns); err != nil {
			return err // intent stays queued; the drain finishes the walk
		}
		m.dequeueGC(gcCtx, account, seq)
	}
	return nil
}

// AccountExists reports whether the account has been created.
func (m *Middleware) AccountExists(ctx context.Context, account string) bool {
	_, err := m.store.Head(ctx, core.RootKey(account))
	return err == nil
}

// rootNS resolves (and caches) the account's root namespace UUID.
func (m *Middleware) rootNS(ctx context.Context, account string) (string, error) {
	if ns, ok := m.cachedRoot(account); ok {
		return ns, nil
	}
	data, _, err := m.store.Get(ctx, core.RootKey(account))
	if err != nil {
		return "", fmt.Errorf("h2fs: account %q: %w", account, fsapi.ErrNotFound)
	}
	ns := string(data)
	m.setRoot(account, ns)
	return ns, nil
}

// cachedRoot, setRoot, and dropRoot are the defer-scoped critical
// sections for the root-namespace cache.
func (m *Middleware) cachedRoot(account string) (string, bool) {
	m.rootsMu.Lock()
	defer m.rootsMu.Unlock()
	ns, ok := m.roots[account]
	return ns, ok
}

func (m *Middleware) setRoot(account, ns string) {
	m.rootsMu.Lock()
	defer m.rootsMu.Unlock()
	m.roots[account] = ns
}

func (m *Middleware) dropRoot(account string) {
	m.rootsMu.Lock()
	defer m.rootsMu.Unlock()
	delete(m.roots, account)
}

// FS returns the account-scoped filesystem view.
func (m *Middleware) FS(account string) *AccountFS {
	return &AccountFS{mw: m, account: account}
}

// Usage summarizes one account's filesystem footprint.
type Usage struct {
	Dirs  int   `json:"dirs"`
	Files int   `json:"files"`
	Bytes int64 `json:"bytes"`
}

// Usage walks the account's tree and reports directory/file counts and
// total content bytes — the accounting behind per-user quota reports.
func (m *Middleware) Usage(ctx context.Context, account string) (Usage, error) {
	var u Usage
	err := fsapi.Walk(ctx, m.FS(account), "/", func(_ string, info fsapi.EntryInfo) error {
		if info.IsDir {
			u.Dirs++
		} else {
			u.Files++
			u.Bytes += info.Size
		}
		return nil
	})
	if err != nil {
		return Usage{}, err
	}
	return u, nil
}
