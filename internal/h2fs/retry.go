package h2fs

import "github.com/h2cloud/h2cloud/internal/storemw"

// The retry loop moved into the composable store middleware stack
// (internal/storemw), where it is one ring among chaos and metrics
// rather than h2fs-private glue. The aliases below keep Config.Retry and
// its callers source-compatible.

// RetryPolicy is storemw.RetryPolicy; see that type for semantics.
type RetryPolicy = storemw.RetryPolicy

// DefaultRetryPolicy is the tuning the availability experiment uses:
// four attempts, 5ms base backoff doubling to an 80ms cap.
func DefaultRetryPolicy() RetryPolicy { return storemw.DefaultRetryPolicy() }
