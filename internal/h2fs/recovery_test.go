package h2fs

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/chaos"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/metrics"
)

// TestCrashRestartReconvergesAgainstOracle drives two middlewares through
// a seeded chaos schedule — transient store errors, node crashes and
// restarts, dropped and delayed gossip — while mirroring every
// acknowledged operation into the fstest oracle model. After the cluster
// heals (nodes restarted, anti-entropy Repair, flushes, gossip drained)
// and both middlewares restart (Recover), every NameRing must have
// reconverged: both views must equal the oracle's tree, file contents
// included. Operations the chaos made fail are simply not acknowledged;
// nothing acknowledged may be lost.
func TestCrashRestartReconvergesAgainstOracle(t *testing.T) {
	now := time.Unix(1_600_000_000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile(), Clock: clock})
	mustNoErr(t, err)
	devs := c.Ring().DeviceIDs()

	reg := metrics.NewRegistry()
	eng := chaos.New(chaos.Plan{
		Seed:      97,
		ErrRate:   0.10,
		DropRate:  0.25,
		DelayRate: 0.25,
		Events: []chaos.Event{
			{Step: 40, Node: devs[0], Down: true},
			{Step: 80, Node: devs[1], Down: true},
			{Step: 120, Node: devs[0], Down: false},
			{Step: 170, Node: devs[1], Down: false},
		},
	}, reg)
	eng.Bind(c)
	cs := eng.Store(c)
	inner := gossip.NewBus()
	bus := eng.Gossip(inner)

	mws := make([]*Middleware, 2)
	for i := range mws {
		m, err := New(Config{
			Store: cs, Node: i + 1, Gossip: bus, Clock: clock,
			EagerGC: true, Retry: DefaultRetryPolicy(), Metrics: reg,
		})
		mustNoErr(t, err)
		mws[i] = m
	}
	ctx := context.Background()
	mustNoErr(t, mws[0].CreateAccount(ctx, "alice"))

	oracle := fstest.NewModel()
	content := func(p string) []byte { return []byte("content of " + p) }

	// Seeded workload: unique-path mkdirs and writes, alternating between
	// the middlewares, with the chaos schedule stepping once per op. Every
	// path is written at most once, so a failed (unacknowledged) operation
	// leaves the tree untouched and the oracle simply skips it.
	var ackedDirs []string
	acked, failed := 0, 0
	for i := 0; i < 200; i++ {
		eng.Step()
		m := mws[i%len(mws)]
		if i%8 == 0 {
			p := fmt.Sprintf("/d%02d", i)
			if err := m.FS("alice").Mkdir(ctx, p); err == nil {
				mustNoErr(t, oracle.Mkdir(ctx, p))
				ackedDirs = append(ackedDirs, p)
				acked++
			} else {
				failed++
			}
			continue
		}
		dir := "/"
		if len(ackedDirs) > 0 {
			dir = ackedDirs[i%len(ackedDirs)]
		}
		p := fmt.Sprintf("%s/f%03d", dir, i)
		if dir == "/" {
			p = fmt.Sprintf("/f%03d", i)
		}
		if err := m.FS("alice").WriteFile(ctx, p, content(p)); err == nil {
			mustNoErr(t, oracle.WriteFile(ctx, p, content(p)))
			acked++
		} else {
			failed++
		}
		if i%10 == 9 {
			inner.Pump(ctx)
		}
	}
	if failed == 0 {
		t.Fatal("chaos schedule injected no failures; test exercises nothing")
	}
	if acked == 0 {
		t.Fatal("no operation was acknowledged")
	}
	if reg.Counter("retry.attempts") == 0 {
		t.Fatal("retry layer never engaged under 10% error rate")
	}
	cc := eng.Counters()
	if cc.Crashes != 2 || cc.Restarts != 2 {
		t.Fatalf("schedule applied %d crashes / %d restarts, want 2/2", cc.Crashes, cc.Restarts)
	}

	// Heal: fault window closes, all nodes back up, anti-entropy, flushes,
	// gossip drained.
	eng.SetErrRate(0)
	for _, id := range devs {
		c.SetNodeDown(id, false)
	}
	for round := 0; round < 4; round++ {
		c.Repair(context.Background())
		for _, m := range mws {
			mustNoErr(t, m.FlushAll(ctx))
		}
		bus.ReleaseDelayed()
		inner.Pump(ctx)
	}

	// Both middlewares restart: caches drop, rings reload from the store
	// with peer patch replay. Their trees must now equal the oracle's.
	want, err := fsapi.Tree(ctx, oracle, "/")
	mustNoErr(t, err)
	for i, m := range mws {
		m.Recover()
		got, err := fsapi.Tree(ctx, m.FS("alice"), "/")
		mustNoErr(t, err)
		for p, w := range want {
			g, ok := got[p]
			if !ok {
				t.Fatalf("mw%d lost acknowledged entry %s", i+1, p)
			}
			if g.IsDir != w.IsDir {
				t.Fatalf("mw%d %s: IsDir=%v, oracle %v", i+1, p, g.IsDir, w.IsDir)
			}
			if !w.IsDir {
				data, err := m.FS("alice").ReadFile(ctx, p)
				mustNoErr(t, err)
				if !bytes.Equal(data, content(p)) {
					t.Fatalf("mw%d %s content = %q", i+1, p, data)
				}
			}
		}
		for p := range got {
			if _, ok := want[p]; !ok {
				t.Fatalf("mw%d has entry %s the oracle never acknowledged", i+1, p)
			}
		}
	}
}
