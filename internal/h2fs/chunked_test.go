package h2fs

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
)

func chunkedFixture(t *testing.T) (*Middleware, *cluster.Cluster, *AccountFS, []byte) {
	t.Helper()
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/media"))
	content := make([]byte, 10*1000+37) // deliberately not chunk-aligned
	for i := range content {
		content[i] = byte(i % 251)
	}
	mustNoErr(t, m.WriteFileChunked(ctx, "alice", "/media/video.bin",
		bytes.NewReader(content), 1000))
	return m, c, fs, content
}

func TestChunkedWriteReadRoundTrip(t *testing.T) {
	_, c, fs, content := chunkedFixture(t)
	ctx := context.Background()
	got, err := fs.ReadFile(ctx, "/media/video.bin")
	mustNoErr(t, err)
	if !bytes.Equal(got, content) {
		t.Fatalf("assembled read differs: %d vs %d bytes", len(got), len(content))
	}
	// 11 segments + manifest + directory pieces live in the cloud.
	if st := c.Stats(); st.Objects < 12 {
		t.Fatalf("objects = %d, want >= 12", st.Objects)
	}
	info, err := fs.Stat(ctx, "/media/video.bin")
	mustNoErr(t, err)
	if info.Size != int64(len(content)) {
		t.Fatalf("Stat.Size = %d, want logical %d", info.Size, len(content))
	}
	entries, err := fs.List(ctx, "/media", true)
	mustNoErr(t, err)
	if len(entries) != 1 || entries[0].Size != int64(len(content)) {
		t.Fatalf("List detail = %+v", entries)
	}
}

func TestChunkedRangedRead(t *testing.T) {
	m, _, _, content := chunkedFixture(t)
	ctx := context.Background()
	cases := []struct{ off, length int64 }{
		{0, 10},      // inside first chunk
		{995, 10},    // spans a chunk boundary
		{1000, 1000}, // exactly one chunk
		{9990, 100},  // into the final partial chunk
		{10020, -1},  // tail
		{99999, 10},  // past the end
		{0, -1},      // whole file
		{2500, 5000}, // spans many chunks
	}
	for _, cse := range cases {
		got, err := m.ReadFileRange(ctx, "alice", "/media/video.bin", cse.off, cse.length)
		mustNoErr(t, err)
		start := cse.off
		if start > int64(len(content)) {
			start = int64(len(content))
		}
		end := int64(len(content))
		if cse.length >= 0 && start+cse.length < end {
			end = start + cse.length
		}
		if !bytes.Equal(got, content[start:end]) {
			t.Fatalf("range(%d,%d): %d bytes, want %d", cse.off, cse.length, len(got), end-start)
		}
	}
}

func TestChunkedLifecycleReclaimsSegments(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	baseline := c.Stats().Objects

	content := bytes.Repeat([]byte("x"), 4096)
	mustNoErr(t, m.WriteFileChunked(ctx, "alice", "/big.bin", bytes.NewReader(content), 1024))
	mustNoErr(t, m.FlushAll(ctx))
	// 4 segments + manifest.
	if got := c.Stats().Objects - baseline; got != 5 {
		t.Fatalf("chunked write left %d objects, want 5", got)
	}
	// Remove reclaims everything.
	mustNoErr(t, fs.Remove(ctx, "/big.bin"))
	mustNoErr(t, m.FlushAll(ctx))
	if got := c.Stats().Objects - baseline; got != 0 {
		t.Fatalf("remove left %d objects", got)
	}
}

func TestChunkedOverwriteByPlainWrite(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	baseline := c.Stats().Objects
	mustNoErr(t, m.WriteFileChunked(ctx, "alice", "/f", bytes.NewReader(bytes.Repeat([]byte("y"), 3000)), 1000))
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("tiny now")))
	mustNoErr(t, m.FlushAll(ctx))
	// Only the plain object remains: segments were reclaimed.
	if got := c.Stats().Objects - baseline; got != 1 {
		t.Fatalf("overwrite left %d objects, want 1", got)
	}
	data, err := fs.ReadFile(ctx, "/f")
	mustNoErr(t, err)
	if string(data) != "tiny now" {
		t.Fatalf("read = %q", data)
	}
}

func TestChunkedMoveAndCopy(t *testing.T) {
	_, c, fs, content := chunkedFixture(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/backup"))
	mustNoErr(t, fs.Copy(ctx, "/media/video.bin", "/backup/copy.bin"))
	mustNoErr(t, fs.Move(ctx, "/media/video.bin", "/backup/moved.bin"))
	for _, p := range []string{"/backup/copy.bin", "/backup/moved.bin"} {
		data, err := fs.ReadFile(ctx, p)
		mustNoErr(t, err)
		if !bytes.Equal(data, content) {
			t.Fatalf("%s differs after copy/move", p)
		}
	}
	if _, err := fs.Stat(ctx, "/media/video.bin"); err == nil {
		t.Fatal("source survived move")
	}
	// Moving the PARENT DIRECTORY is still O(1): segments are keyed by the
	// directory's namespace, which does not change.
	before := c.Stats().Copies
	mustNoErr(t, fs.Move(ctx, "/backup", "/archive"))
	if got := c.Stats().Copies - before; got != 0 {
		t.Fatalf("directory move copied %d objects", got)
	}
	data, err := fs.ReadFile(ctx, "/archive/moved.bin")
	mustNoErr(t, err)
	if !bytes.Equal(data, content) {
		t.Fatal("chunked file unreadable after directory move")
	}
}

func TestChunkedRmdirGC(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	baseline := c.Stats().Objects
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	for i := 0; i < 3; i++ {
		mustNoErr(t, m.WriteFileChunked(ctx, "alice",
			fmt.Sprintf("/d/f%d", i), bytes.NewReader(bytes.Repeat([]byte("z"), 2500)), 1000))
	}
	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	mustNoErr(t, m.FlushAll(ctx))
	if got := c.Stats().Objects - baseline; got != 0 {
		t.Fatalf("rmdir left %d objects (segments leaked)", got)
	}
}

func TestChunkedEmptyFile(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	mustNoErr(t, m.WriteFileChunked(ctx, "alice", "/empty", bytes.NewReader(nil), 1000))
	data, err := m.FS("alice").ReadFile(ctx, "/empty")
	mustNoErr(t, err)
	if len(data) != 0 {
		t.Fatalf("empty chunked read = %q", data)
	}
	info, err := m.FS("alice").Stat(ctx, "/empty")
	mustNoErr(t, err)
	if info.Size != 0 {
		t.Fatalf("Size = %d", info.Size)
	}
}
