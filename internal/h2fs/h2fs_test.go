package h2fs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// newCluster returns a zero-cost test cluster.
func newCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newMW(t testing.TB, c *cluster.Cluster, node int, opts ...func(*Config)) *Middleware {
	t.Helper()
	cfg := Config{Store: c, Node: node, Profile: c.Profile(), EagerGC: true}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newFS(t testing.TB) *AccountFS {
	t.Helper()
	m := newMW(t, newCluster(t), 1)
	if err := m.CreateAccount(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}
	return m.FS("alice")
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem { return newFS(t) })
}

func TestNewRequiresStore(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without store succeeded")
	}
}

func TestCreateAccountValidation(t *testing.T) {
	m := newMW(t, newCluster(t), 1)
	ctx := context.Background()
	if err := m.CreateAccount(ctx, "bad|name"); err == nil {
		t.Fatal("invalid account accepted")
	}
	if err := m.CreateAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateAccount(ctx, "alice"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("duplicate account = %v, want ErrExists", err)
	}
	if !m.AccountExists(ctx, "alice") || m.AccountExists(ctx, "bob") {
		t.Fatal("AccountExists wrong")
	}
}

func TestOpsOnMissingAccount(t *testing.T) {
	m := newMW(t, newCluster(t), 1)
	fs := m.FS("ghost")
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/x"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Mkdir on missing account = %v", err)
	}
	if _, err := fs.Stat(ctx, "/"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Stat(/) on missing account = %v", err)
	}
}

func TestDeleteAccountReclaimsEverything(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	if err := m.CreateAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/docs"))
	mustNoErr(t, fs.Mkdir(ctx, "/docs/sub"))
	mustNoErr(t, fs.WriteFile(ctx, "/docs/a", []byte("1")))
	mustNoErr(t, fs.WriteFile(ctx, "/docs/sub/b", []byte("2")))
	mustNoErr(t, m.FlushAll(ctx))
	if err := m.DeleteAccount(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Objects != 0 {
		t.Fatalf("%d objects left after account deletion", st.Objects)
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelativeAccessQuickMethod(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/home"))
	mustNoErr(t, fs.WriteFile(ctx, "/home/file1", []byte("quick")))
	// Learn the namespace through resolution, then access relatively.
	res, _, err := m.resolve(ctx, "alice", "/home/file1")
	mustNoErr(t, err)
	data, _, err := m.AccessRelative(ctx, "alice", res.parentNS+"::file1")
	mustNoErr(t, err)
	if string(data) != "quick" {
		t.Fatalf("relative access = %q", data)
	}
	if _, _, err := m.AccessRelative(ctx, "alice", "malformed"); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("malformed relative path = %v", err)
	}
}

func TestRelativeAccessIsO1(t *testing.T) {
	c, err := cluster.New(cluster.Config{Profile: cluster.SwiftProfile()})
	mustNoErr(t, err)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	path := ""
	for i := 0; i < 10; i++ {
		path += fmt.Sprintf("/d%d", i)
		mustNoErr(t, fs.Mkdir(ctx, path))
	}
	mustNoErr(t, fs.WriteFile(ctx, path+"/deep", []byte("x")))
	res, _, err := m.resolve(ctx, "alice", path+"/deep")
	mustNoErr(t, err)

	tr := vclock.NewTracker()
	_, _, err = m.AccessRelative(vclock.With(ctx, tr), "alice", res.parentNS+"::deep")
	mustNoErr(t, err)
	// One GET regardless of depth.
	if got, want := tr.Elapsed(), c.Profile().Get+2*time.Microsecond; got > want {
		t.Fatalf("relative access charged %v, want <= %v (one GET)", got, want)
	}
}

func TestFileAccessCostLinearInDepth(t *testing.T) {
	// Figure 13: H2's full-path access time is proportional to d.
	c, err := cluster.New(cluster.Config{Profile: cluster.SwiftProfile()})
	mustNoErr(t, err)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	path := ""
	costs := map[int]time.Duration{}
	for d := 1; d <= 12; d++ {
		if d < 12 {
			path += fmt.Sprintf("/d%d", d)
			mustNoErr(t, fs.Mkdir(ctx, path))
		} else {
			mustNoErr(t, fs.WriteFile(ctx, path+"/leaf", []byte("x")))
			path += "/leaf"
		}
		tr := vclock.NewTracker()
		if _, err := fs.Stat(vclock.With(ctx, tr), path); err != nil {
			t.Fatal(err)
		}
		costs[d] = tr.Elapsed()
	}
	get := c.Profile().Get
	for d := 2; d <= 12; d++ {
		delta := costs[d] - costs[d-1]
		// Each extra level adds roughly one ring consult.
		if delta < get/2 || delta > 2*get+c.Profile().Head {
			t.Fatalf("depth %d -> %d added %v, want ~%v", d-1, d, delta, get)
		}
	}
}

func TestMoveCostIndependentOfDirectorySize(t *testing.T) {
	// Figure 7: H2 MOVE is O(1) in the number of files in the directory.
	c, err := cluster.New(cluster.Config{Profile: cluster.SwiftProfile()})
	mustNoErr(t, err)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/dst"))

	moveCost := func(n int) time.Duration {
		dir := fmt.Sprintf("/dir%d", n)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		for i := 0; i < n; i++ {
			mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("%s/f%d", dir, i), []byte("x")))
		}
		tr := vclock.NewTracker()
		mustNoErr(t, fs.Move(vclock.With(ctx, tr), dir, fmt.Sprintf("/dst/dir%d", n)))
		return tr.Elapsed()
	}
	small, large := moveCost(5), moveCost(500)
	if large > small*2 {
		t.Fatalf("MOVE cost grew with n: %v (n=5) vs %v (n=500)", small, large)
	}
}

func TestRmdirCostIndependentOfDirectorySize(t *testing.T) {
	// Figure 8: H2 RMDIR is O(1); GC runs out-of-band.
	c, err := cluster.New(cluster.Config{Profile: cluster.SwiftProfile()})
	mustNoErr(t, err)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	cost := func(n int) time.Duration {
		dir := fmt.Sprintf("/dir%d", n)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		for i := 0; i < n; i++ {
			mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("%s/f%d", dir, i), []byte("x")))
		}
		tr := vclock.NewTracker()
		mustNoErr(t, fs.Rmdir(vclock.With(ctx, tr), dir))
		return tr.Elapsed()
	}
	small, large := cost(5), cost(500)
	if large > small*2 {
		t.Fatalf("RMDIR cost grew with n: %v vs %v", small, large)
	}
}

func TestPatchLifecycle(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	before := c.Stats().Objects
	mustNoErr(t, fs.WriteFile(ctx, "/a", []byte("1")))
	// A write adds the file object plus one patch object.
	if got := c.Stats().Objects - before; got != 2 {
		t.Fatalf("write created %d objects, want 2 (file + patch)", got)
	}
	mustNoErr(t, m.FlushAll(ctx))
	// Flush folds the patch into the ring object and deletes it.
	if got := c.Stats().Objects - before; got != 1 {
		t.Fatalf("after flush %d extra objects, want 1 (file only)", got)
	}
	// Flushing again is a no-op.
	st := c.Stats()
	mustNoErr(t, m.FlushAll(ctx))
	if c.Stats().Puts != st.Puts {
		t.Fatal("idempotent flush performed writes")
	}
}

func TestCrashRecoveryReplaysPatches(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	m1 := newMW(t, c, 1)
	mustNoErr(t, m1.CreateAccount(ctx, "alice"))
	fs1 := m1.FS("alice")
	mustNoErr(t, fs1.Mkdir(ctx, "/docs"))
	mustNoErr(t, fs1.WriteFile(ctx, "/docs/f", []byte("x")))
	// m1 "crashes" before flushing: its patches are in the store but the
	// ring objects are stale. A fresh middleware (same node number) must
	// recover the patch chains and serve the writes.
	m2 := newMW(t, c, 1)
	fs2 := m2.FS("alice")
	data, err := fs2.ReadFile(ctx, "/docs/f")
	mustNoErr(t, err)
	if string(data) != "x" {
		t.Fatalf("recovered read = %q", data)
	}
	// The recovered node must not reuse patch sequence numbers: another
	// write then flush must fold everything.
	mustNoErr(t, fs2.WriteFile(ctx, "/docs/g", []byte("y")))
	mustNoErr(t, m2.FlushAll(ctx))
	m3 := newMW(t, c, 2)
	entries, err := m3.FS("alice").List(ctx, "/docs", false)
	mustNoErr(t, err)
	if len(entries) != 2 {
		t.Fatalf("after recovery List = %+v", entries)
	}
}

func TestTwoMiddlewaresConvergeViaGossip(t *testing.T) {
	c := newCluster(t)
	bus := gossip.NewBus()
	ctx := context.Background()
	m1 := newMW(t, c, 1, func(cfg *Config) { cfg.Gossip = bus })
	m2 := newMW(t, c, 2, func(cfg *Config) { cfg.Gossip = bus })
	mustNoErr(t, m1.CreateAccount(ctx, "alice"))
	fs1, fs2 := m1.FS("alice"), m2.FS("alice")

	mustNoErr(t, fs1.Mkdir(ctx, "/shared"))
	mustNoErr(t, m1.FlushAll(ctx))
	bus.Pump(ctx)

	// Node 2 sees node 1's directory and adds to it.
	mustNoErr(t, fs2.WriteFile(ctx, "/shared/from2", []byte("2")))
	mustNoErr(t, m2.FlushAll(ctx))
	bus.Pump(ctx)

	mustNoErr(t, fs1.WriteFile(ctx, "/shared/from1", []byte("1")))
	mustNoErr(t, m1.FlushAll(ctx))
	bus.Pump(ctx)

	for _, fs := range []*AccountFS{fs1, fs2} {
		entries, err := fs.List(ctx, "/shared", false)
		mustNoErr(t, err)
		if len(entries) != 2 {
			t.Fatalf("node %d sees %d entries, want 2", fs.Middleware().Node(), len(entries))
		}
	}
}

func TestGossipConcurrentUpdatesSameDirectory(t *testing.T) {
	c := newCluster(t)
	bus := gossip.NewBus()
	ctx := context.Background()
	m1 := newMW(t, c, 1, func(cfg *Config) { cfg.Gossip = bus })
	m2 := newMW(t, c, 2, func(cfg *Config) { cfg.Gossip = bus })
	m3 := newMW(t, c, 3, func(cfg *Config) { cfg.Gossip = bus })
	mustNoErr(t, m1.CreateAccount(ctx, "alice"))
	mustNoErr(t, m1.FS("alice").Mkdir(ctx, "/d"))
	mustNoErr(t, m1.FlushAll(ctx))
	bus.Pump(ctx)

	// Concurrent writes to the same directory from all three nodes,
	// flushed in interleaved order.
	mws := []*Middleware{m1, m2, m3}
	for i, m := range mws {
		mustNoErr(t, m.FS("alice").WriteFile(ctx, fmt.Sprintf("/d/f%d", i), []byte("x")))
	}
	for _, m := range mws {
		mustNoErr(t, m.FlushAll(ctx))
	}
	bus.Pump(ctx)
	// One more flush round repairs any lost read-modify-write races
	// detected during gossip merge.
	for _, m := range mws {
		mustNoErr(t, m.FlushAll(ctx))
	}
	bus.Pump(ctx)

	for _, m := range mws {
		entries, err := m.FS("alice").List(ctx, "/d", false)
		mustNoErr(t, err)
		if len(entries) != 3 {
			t.Fatalf("node %d sees %d entries, want 3", m.Node(), len(entries))
		}
	}
}

func TestTombstoneCompaction(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, func(cfg *Config) { cfg.TombstoneTTL = time.Nanosecond })
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("x")))
	mustNoErr(t, fs.Remove(ctx, "/f"))
	d := m.desc("alice", mustRootNS(t, m, "alice"))
	m.lockDesc(d)
	tombs := d.local.TotalLen() - d.local.Len()
	m.unlockDesc(d)
	if tombs != 1 {
		t.Fatalf("tombstones before flush = %d, want 1", tombs)
	}
	time.Sleep(time.Millisecond) // let the TTL pass
	mustNoErr(t, m.FlushAll(ctx))
	m.lockDesc(d)
	total := d.local.TotalLen()
	m.unlockDesc(d)
	if total != 0 {
		t.Fatalf("ring holds %d tuples after compaction, want 0", total)
	}
}

func mustRootNS(t *testing.T, m *Middleware, account string) string {
	t.Helper()
	ns, err := m.rootNS(context.Background(), account)
	mustNoErr(t, err)
	return ns
}

func TestStorageAccountingAfterRmdirGC(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	baseline := c.Stats().Objects
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	mustNoErr(t, fs.Mkdir(ctx, "/d/sub"))
	for i := 0; i < 10; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/d/f%d", i), []byte("x")))
	}
	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	mustNoErr(t, m.FlushAll(ctx))
	// Everything under /d must be reclaimed; only the root ring delta
	// (tombstone) remains inside the root ring object.
	if got := c.Stats().Objects; got != baseline {
		t.Fatalf("objects after rmdir+flush = %d, want %d", got, baseline)
	}
}

func TestListNamesOnlySingleConsult(t *testing.T) {
	c, err := cluster.New(cluster.Config{Profile: cluster.SwiftProfile()})
	mustNoErr(t, err)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	for i := 0; i < 50; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/d/f%02d", i), []byte("x")))
	}
	tr := vclock.NewTracker()
	_, err = fs.List(vclock.With(ctx, tr), "/d", false)
	mustNoErr(t, err)
	// Resolve (1 consult for /d) + ring read (1 consult): name-only LIST
	// must not touch the 50 children.
	if got, max := tr.Elapsed(), 3*c.Profile().Get; got > max {
		t.Fatalf("name-only LIST charged %v, want <= %v", got, max)
	}
	tr.Reset()
	_, err = fs.List(vclock.With(ctx, tr), "/d", true)
	mustNoErr(t, err)
	if got, min := tr.Elapsed(), 3*c.Profile().Head; got < min {
		t.Fatalf("detailed LIST charged only %v; expected per-child HEADs", got)
	}
}

func TestMoveDirectoryKeepsRelativeKeys(t *testing.T) {
	// The headline O(1) property: after moving a directory, the files
	// inside are still served from the same namespace-decorated keys.
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/old"))
	mustNoErr(t, fs.WriteFile(ctx, "/old/f", []byte("stay")))
	res, _, err := m.resolve(ctx, "alice", "/old")
	mustNoErr(t, err)
	nsBefore := res.tuple.NS
	puts := c.Stats().Puts
	mustNoErr(t, fs.Move(ctx, "/old", "/new"))
	// The move touches a bounded number of objects (entry + 2 patches),
	// never the n children.
	if got := c.Stats().Puts - puts; got > 4 {
		t.Fatalf("directory move performed %d puts, want <= 4", got)
	}
	res, _, err = m.resolve(ctx, "alice", "/new")
	mustNoErr(t, err)
	if res.tuple.NS != nsBefore {
		t.Fatal("move changed the directory namespace")
	}
	data, _, err := m.AccessRelative(ctx, "alice", nsBefore+"::f")
	mustNoErr(t, err)
	if string(data) != "stay" {
		t.Fatalf("relative access after move = %q", data)
	}
}

// TestDifferentialSuite runs the shared random-trace differential suite
// (in addition to the sidxfs-oracle test in differential_test.go).
func TestDifferentialSuite(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem { return newFS(t) })
}
