package h2fs

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/h2cloud/h2cloud/internal/gossip"
)

// TestProtocolConvergenceRandomSchedules is the protocol-level property
// test: N middlewares apply random filesystem updates to shared
// directories, flush and gossip in random interleavings, and must all
// converge to identical directory listings. This is the eventual-
// consistency guarantee §3.3.2's asynchronous design rests on.
func TestProtocolConvergenceRandomSchedules(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			c := newCluster(t)
			bus := gossip.NewBus()
			ctx := context.Background()
			const nodes = 3
			mws := make([]*Middleware, nodes)
			for i := range mws {
				mws[i] = newMW(t, c, i+1, func(cfg *Config) { cfg.Gossip = bus })
			}
			mustNoErr(t, mws[0].CreateAccount(ctx, "acct"))
			dirs := []string{"/d0", "/d1", "/d2"}
			for _, d := range dirs {
				mustNoErr(t, mws[0].FS("acct").Mkdir(ctx, d))
			}
			mustNoErr(t, mws[0].FlushAll(ctx))
			bus.Pump(ctx)

			// Random interleaving of writes, removes, flushes, pumps.
			live := map[string]bool{}
			seq := 0
			for step := 0; step < 60; step++ {
				mw := mws[rng.Intn(nodes)]
				fs := mw.FS("acct")
				switch rng.Intn(5) {
				case 0, 1: // create a file
					seq++
					p := fmt.Sprintf("%s/f%03d", dirs[rng.Intn(len(dirs))], seq)
					mustNoErr(t, fs.WriteFile(ctx, p, []byte("x")))
					live[p] = true
				case 2: // remove an existing file through any node
					for p := range live {
						// Only remove files this node can already see.
						if _, err := fs.Stat(ctx, p); err == nil {
							mustNoErr(t, fs.Remove(ctx, p))
							delete(live, p)
						}
						break
					}
				case 3:
					mustNoErr(t, mw.FlushAll(ctx))
				case 4:
					bus.Pump(ctx)
				}
			}
			// Quiesce: repeated flush+pump rounds until nothing moves.
			for round := 0; round < 6; round++ {
				for _, mw := range mws {
					mustNoErr(t, mw.FlushAll(ctx))
				}
				if bus.Pump(ctx) == 0 && round > 0 {
					break
				}
			}
			// All nodes must agree with each other and with the model.
			for _, d := range dirs {
				var want []string
				ref, err := mws[0].FS("acct").List(ctx, d, false)
				mustNoErr(t, err)
				for _, e := range ref {
					want = append(want, e.Name)
				}
				for _, mw := range mws[1:] {
					got, err := mw.FS("acct").List(ctx, d, false)
					mustNoErr(t, err)
					if len(got) != len(want) {
						t.Fatalf("node %d sees %d entries in %s, node 1 sees %d",
							mw.Node(), len(got), d, len(want))
					}
					for i := range got {
						if got[i].Name != want[i] {
							t.Fatalf("node %d disagrees at %s[%d]: %s vs %s",
								mw.Node(), d, i, got[i].Name, want[i])
						}
					}
				}
			}
			// And the union must match the model's live set.
			total := 0
			for _, d := range dirs {
				entries, err := mws[0].FS("acct").List(ctx, d, false)
				mustNoErr(t, err)
				total += len(entries)
			}
			if total != len(live) {
				t.Fatalf("converged to %d files, model has %d", total, len(live))
			}
		})
	}
}

// TestOperationsSurviveReplicaFailure: with one replica of every object
// down, quorum writes and fall-through reads keep the filesystem fully
// functional — the availability the single-cloud design inherits from
// the object store.
func TestOperationsSurviveReplicaFailure(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "acct"))
	fs := m.FS("acct")
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	mustNoErr(t, fs.WriteFile(ctx, "/d/before", []byte("pre-failure")))
	mustNoErr(t, m.FlushAll(ctx))

	// Take down one storage node (of 8, 3 replicas -> quorum holds).
	c.SetNodeDown(0, true)

	data, err := fs.ReadFile(ctx, "/d/before")
	mustNoErr(t, err)
	if string(data) != "pre-failure" {
		t.Fatalf("read with node down = %q", data)
	}
	mustNoErr(t, fs.WriteFile(ctx, "/d/during", []byte("written-degraded")))
	mustNoErr(t, fs.Mkdir(ctx, "/d/sub"))
	entries, err := fs.List(ctx, "/d", false)
	mustNoErr(t, err)
	if len(entries) != 3 {
		t.Fatalf("List during failure = %d entries, want 3", len(entries))
	}
	mustNoErr(t, m.FlushAll(ctx))

	// Recover the node; anti-entropy repair restores its replicas.
	c.SetNodeDown(0, false)
	if n := c.Repair(context.Background()); n == 0 {
		t.Log("repair found nothing to do (node 0 held no affected replicas)")
	}
	data, err = fs.ReadFile(ctx, "/d/during")
	mustNoErr(t, err)
	if string(data) != "written-degraded" {
		t.Fatalf("read after recovery = %q", data)
	}
}

// TestReadRepairAfterStaleReplica: a replica that missed an overwrite is
// brought back by Repair choosing the newest copy.
func TestReadRepairAfterStaleReplica(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "acct"))
	fs := m.FS("acct")
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("v1")))

	// Fail one replica of the file object, then overwrite.
	res, _, err := m.resolve(ctx, "acct", "/f")
	mustNoErr(t, err)
	key := childKeyForTest("acct", res.parentNS, "f")
	devs := c.Ring().Devices(key)
	c.SetNodeDown(devs[0], true)
	mustNoErr(t, fs.WriteFile(ctx, "/f", []byte("v2")))
	c.SetNodeDown(devs[0], false)

	c.Repair(context.Background())
	stale, _, err := c.Node(devs[0]).Get(key)
	mustNoErr(t, err)
	if string(stale) != "v2" {
		t.Fatalf("replica holds %q after repair, want v2", stale)
	}
}

// childKeyForTest mirrors core.ChildKey without exporting it here.
func childKeyForTest(account, ns, name string) string {
	return account + "|" + ns + "::" + name
}

// TestManyAccountsIsolated: operations on one account never leak into
// another sharing the same cloud and middleware.
func TestManyAccountsIsolated(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	const users = 5
	for u := 0; u < users; u++ {
		acct := fmt.Sprintf("user%d", u)
		mustNoErr(t, m.CreateAccount(ctx, acct))
		fs := m.FS(acct)
		mustNoErr(t, fs.Mkdir(ctx, "/home"))
		mustNoErr(t, fs.WriteFile(ctx, "/home/mine", []byte(acct)))
	}
	for u := 0; u < users; u++ {
		fs := m.FS(fmt.Sprintf("user%d", u))
		data, err := fs.ReadFile(ctx, "/home/mine")
		mustNoErr(t, err)
		if string(data) != fmt.Sprintf("user%d", u) {
			t.Fatalf("user%d reads %q", u, data)
		}
		entries, err := fs.List(ctx, "/", false)
		mustNoErr(t, err)
		if len(entries) != 1 {
			t.Fatalf("user%d sees %d root entries", u, len(entries))
		}
	}
	// Deleting one account leaves the others intact.
	mustNoErr(t, m.DeleteAccount(ctx, "user0"))
	if _, err := m.FS("user1").ReadFile(ctx, "/home/mine"); err != nil {
		t.Fatalf("user1 damaged by user0 deletion: %v", err)
	}
}
