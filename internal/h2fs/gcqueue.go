package h2fs

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// Durable async GC queue. Fake deletion (§3.3.3) makes RMDIR O(1) by
// leaving the subtree's objects behind; this queue makes the out-of-band
// reclamation crash-safe instead of best-effort. The protocol:
//
//  1. Enqueue intent. Before the tombstone patch is submitted, the
//     middleware durably records {cursor, head} spans in its per-node
//     index object and writes a core.GCEntry object for the doomed
//     namespace. Both writes ride the caller's virtual clock — two O(1)
//     puts, so the delete still completes at ring-patch cost.
//  2. Tombstone. The fake-deletion patch lands; the operation is
//     acknowledged.
//  3. Drain. The maintenance loop probes each recorded span, validates
//     every intent against the parent ring (a tombstone-less tuple means
//     the RMDIR of step 2 never happened — the intent is stale and
//     dropped, never reclaimed), walks the subtree through the pipelined
//     walker, and only then deletes the entry object.
//
// A crash at any point replays safely: before step 2 the intent is stale
// (live tuple) and dropped; mid-drain the entry object survives, the
// restarted node re-probes the span from the durable index, and the
// re-walk tolerates already-deleted objects (ErrNotFound everywhere), so
// replay is idempotent — no orphan, no double-free. The index is written
// before the entry (intent-first): a crash between the two leaves a
// covered-but-missing sequence, which the probe skips as not-found,
// never an entry the index cannot find.
//
// Stale-validation only works on settled intents. Between enqueue (step
// 1) and acknowledgment (step 2) the parent tuple is still live, so a
// concurrent drain reading it would wrongly conclude the delete never
// happened and drop an intent whose tombstone is about to land —
// stranding the subtree, the exact leak the queue prevents. Each
// operation therefore keeps its sequence in an in-flight window
// (gcinflight, under gcmu) from reservation until it returns; DrainGC
// defers at the first in-flight sequence of a span and revisits on a
// later pass. The window is process-local on purpose: after a real
// crash the operation is dead, its tombstone either landed (the intent
// validates and reclaims) or did not (the intent is genuinely stale).

// gcState is one account's in-memory mirror of its index span.
type gcState struct {
	cursor int // lowest possibly-pending sequence
	head   int // highest sequence ever enqueued
}

// GCQueueStats is the queue gauge exposed on /v1/stats.
type GCQueueStats struct {
	Pending   int   `json:"pending"`   // entries possibly awaiting reclamation (span width; may overcount until the next drain prunes)
	Enqueued  int64 `json:"enqueued"`  // intents durably recorded
	Reclaimed int64 `json:"reclaimed"` // entries fully reclaimed and dequeued
	Stale     int64 `json:"stale"`     // intents dropped because the delete was never acknowledged
	Deferred  int64 `json:"deferred"`  // drain probes postponed because the enqueuing operation had not settled
	LagNanos  int64 `json:"lagNanos"`  // cumulative enqueue-to-reclaim lag across reclaimed entries
}

// loadGCLocked populates the in-memory span mirror from the node's
// durable index object. Callers hold gcmu.
func (m *Middleware) loadGCLocked(ctx context.Context) error {
	if m.gcloaded {
		return nil
	}
	data, _, err := m.store.Get(ctx, core.GCIndexKey(m.node))
	if err != nil {
		if !errors.Is(err, objstore.ErrNotFound) {
			return fmt.Errorf("h2fs: load gc index: %w", err)
		}
		m.gcloaded = true
		return nil
	}
	entries, err := core.DecodeGCIndex(data)
	if err != nil {
		return fmt.Errorf("h2fs: load gc index: %w", err)
	}
	for _, e := range entries {
		m.gcstates[e.Account] = &gcState{cursor: e.Cursor, head: e.Head}
	}
	m.gcloaded = true
	return nil
}

// gcAccountsLocked returns the mirrored account names in sorted order,
// so no queue decision depends on map iteration order. Callers hold gcmu.
func (m *Middleware) gcAccountsLocked() []string {
	accounts := make([]string, 0, len(m.gcstates))
	for account := range m.gcstates {
		accounts = append(accounts, account)
	}
	sort.Strings(accounts)
	return accounts
}

// gcWriteIndex persists the span mirror, pruning accounts whose spans
// are empty. All index writes funnel through gcidxmu, and each encodes
// a fresh snapshot at write time, so serialized writes never regress
// coverage — a later write always covers at least what an earlier one
// did.
func (m *Middleware) gcWriteIndex(ctx context.Context) error {
	m.gcidxmu.Lock()
	defer m.gcidxmu.Unlock()
	return m.gcWriteIndexLocked(ctx)
}

// gcWriteIndexLocked is gcWriteIndex's body; the caller holds gcidxmu
// and must not hold gcmu (lock order is gcidxmu, then gcmu).
func (m *Middleware) gcWriteIndexLocked(ctx context.Context) error {
	entries, heads := m.gcSnapshotIndex()
	if err := m.store.Put(ctx, core.GCIndexKey(m.node), core.EncodeGCIndex(entries), nil); err != nil {
		return fmt.Errorf("h2fs: save gc index: %w", err)
	}
	m.gcidxheads = heads
	return nil
}

// gcSnapshotIndex encodes the current span mirror (pruning empty spans)
// together with the per-account heads the snapshot covers.
func (m *Middleware) gcSnapshotIndex() ([]core.GCIndexEntry, map[string]int) {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	entries := make([]core.GCIndexEntry, 0, len(m.gcstates))
	heads := make(map[string]int, len(m.gcstates))
	for _, account := range m.gcAccountsLocked() {
		st := m.gcstates[account]
		if st.head < st.cursor {
			continue
		}
		entries = append(entries, core.GCIndexEntry{Account: account, Cursor: st.cursor, Head: st.head})
		heads[account] = st.head
	}
	return entries, heads
}

// gcCoverIndex makes the durable index cover account's span through at
// least seq. An enqueue whose sequence a concurrent writer's fresher
// snapshot already persisted skips the store round-trip entirely, so
// concurrent deletes batch their index writes instead of queueing one
// Put each.
func (m *Middleware) gcCoverIndex(ctx context.Context, account string, seq int) error {
	m.gcidxmu.Lock()
	defer m.gcidxmu.Unlock()
	if m.gcidxheads[account] >= seq {
		return nil
	}
	return m.gcWriteIndexLocked(ctx)
}

// enqueueGC durably records the intent to reclaim namespace ns and
// returns the entry's sequence number. The sequence is reserved (and its
// in-flight window opened) under gcmu with no store I/O beyond the
// one-time index load; both persistence writes happen outside the lock,
// index before entry, so concurrent deletes do not serialize on each
// other's round-trips and a crash between the writes leaves a skippable
// gap rather than an unfindable entry. A failed write likewise leaves
// only a hole in the span — the drain probes it as not-found and moves
// on — so no rollback is needed (nor possible once later sequences have
// been reserved).
func (m *Middleware) enqueueGC(ctx context.Context, account, ns, parentNS, name string, root bool) (int, error) {
	seq, err := m.gcReserve(ctx, account)
	if err != nil {
		return 0, err
	}
	if err := m.gcCoverIndex(ctx, account, seq); err != nil {
		m.gcSettle(account, seq)
		return 0, err
	}
	entry := core.GCEntry{Account: account, NS: ns, ParentNS: parentNS, Name: name, Root: root, Enqueued: m.now()}
	if err := m.store.Put(ctx, core.GCQueueKey(account, m.node, seq),
		core.EncodeGCEntry(entry), map[string]string{metaType: "gcq"}); err != nil {
		m.gcSettle(account, seq)
		return 0, fmt.Errorf("h2fs: enqueue gc intent: %w", err)
	}
	m.reg.Inc("gcqueue.enqueued", 1)
	return seq, nil
}

// gcReserve allocates account's next sequence number and opens its
// in-flight window; no store I/O happens under the mirror lock beyond
// the one-time index load.
func (m *Middleware) gcReserve(ctx context.Context, account string) (int, error) {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	if err := m.loadGCLocked(ctx); err != nil {
		return 0, err
	}
	st := m.gcstates[account]
	if st == nil {
		st = &gcState{cursor: 1}
		m.gcstates[account] = st
	}
	st.head++
	seq := st.head
	if st.cursor > seq {
		st.cursor = seq
	}
	if m.gcinflight[account] == nil {
		m.gcinflight[account] = make(map[int]bool)
	}
	m.gcinflight[account][seq] = true
	return seq, nil
}

// gcSettle closes an intent's in-flight window: the enqueuing operation
// has returned (tombstone landed, or the operation failed), so drains
// may now validate the intent against the parent ring. Settling an
// already-settled or unknown sequence is a no-op.
func (m *Middleware) gcSettle(account string, seq int) {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	if s := m.gcinflight[account]; s != nil {
		delete(s, seq)
		if len(s) == 0 {
			delete(m.gcinflight, account)
		}
	}
}

// gcInflight reports whether an intent is still inside its
// enqueue-to-ack window.
func (m *Middleware) gcInflight(account string, seq int) bool {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	return m.gcinflight[account][seq]
}

// dequeueGC removes an entry whose subtree was reclaimed eagerly, inside
// the same operation that enqueued it. A failed delete is harmless — the
// entry stays queued and the next drain revalidates and re-reclaims it
// (a no-op walk) — so the error is only counted, never surfaced.
func (m *Middleware) dequeueGC(ctx context.Context, account string, seq int) {
	if err := m.store.Delete(ctx, core.GCQueueKey(account, m.node, seq)); err != nil &&
		!errors.Is(err, objstore.ErrNotFound) {
		m.reg.Inc("gcqueue.dequeue.errors", 1)
		return
	}
	m.reg.Inc("gcqueue.reclaimed", 1)
	m.gcBumpCursor(account, seq)
}

// gcBumpCursor advances account's cursor past seq if it sits exactly
// there (the common in-order eager dequeue).
func (m *Middleware) gcBumpCursor(account string, seq int) {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	if st := m.gcstates[account]; st != nil && st.cursor == seq {
		st.cursor = seq + 1
	}
}

// DrainGC processes every pending reclamation intent this node has
// enqueued: probe each account's recorded span in order, validate, walk,
// dequeue. Returns how many entries were drained (reclaimed or dropped
// as stale). Sequences still inside their enqueue-to-ack window are
// deferred — the account's cursor stops in front of them and a later
// drain retries — never validated, since their parent tuples have not
// been tombstoned yet. On error the cursor likewise stops at the failing
// entry — the entry object survives, so the next drain (or a restarted
// node, via Recover) resumes exactly there; store-level transients are
// already retried with backoff by the configured retry layer. Concurrent
// calls coalesce: a drain already in flight makes later calls return
// immediately.
func (m *Middleware) DrainGC(ctx context.Context) (int, error) {
	if !m.gcq {
		return 0, nil
	}
	if !m.gcdraining.CompareAndSwap(false, true) {
		return 0, nil
	}
	defer m.gcdraining.Store(false)

	spans, err := m.gcSnapshotSpans(ctx)
	if err != nil {
		return 0, err
	}

	drained := 0
	var firstErr error
	for _, sp := range spans {
		cursor := sp.cursor
		for seq := sp.cursor; seq <= sp.head; seq++ {
			if m.gcInflight(sp.account, seq) {
				// The enqueuing operation is still between its intent write
				// and its acknowledgment: the parent tuple it will tombstone
				// is live right now, so validating would misclassify the
				// intent as stale and drop it — stranding a subtree whose
				// delete is about to be acknowledged. Leave the cursor here;
				// a later drain revisits once the operation settles.
				m.reg.Inc("gcqueue.deferred", 1)
				break
			}
			key := core.GCQueueKey(sp.account, m.node, seq)
			data, _, err := m.store.Get(ctx, key)
			if errors.Is(err, objstore.ErrNotFound) {
				cursor = seq + 1 // already reclaimed (crash replay or eager dequeue)
				continue
			}
			if err != nil {
				firstErr = fmt.Errorf("h2fs: gc drain probe %s: %w", key, err)
				break
			}
			entry, derr := core.DecodeGCEntry(data)
			if derr != nil {
				// A corrupt intent names nothing reclaimable; drop it and
				// let the scrubber find whatever it was protecting.
				m.reg.Inc("gcqueue.corrupt", 1)
				if err := m.store.Delete(ctx, key); err != nil && !errors.Is(err, objstore.ErrNotFound) {
					firstErr = fmt.Errorf("h2fs: gc drain drop %s: %w", key, err)
					break
				}
				cursor = seq + 1
				drained++
				continue
			}
			reclaimed, err := m.reclaimEntry(ctx, entry)
			if err != nil {
				firstErr = fmt.Errorf("h2fs: gc drain reclaim %s: %w", key, err)
				break
			}
			if err := m.store.Delete(ctx, key); err != nil && !errors.Is(err, objstore.ErrNotFound) {
				firstErr = fmt.Errorf("h2fs: gc drain dequeue %s: %w", key, err)
				break
			}
			if reclaimed {
				m.reg.Inc("gcqueue.reclaimed", 1)
				if lag := m.now() - entry.Enqueued; lag > 0 {
					m.reg.Inc("gcqueue.lag_ns", lag) // reclamation lag, summed across entries
				}
			} else {
				m.reg.Inc("gcqueue.stale", 1)
			}
			cursor = seq + 1
			drained++
		}
		m.gcMergeCursor(sp.account, cursor)
		if firstErr != nil {
			break
		}
	}
	serr := m.gcWriteIndex(ctx)
	if firstErr == nil {
		// A failed index save only delays span pruning (the replay probes
		// answer not-found), but the maintenance loop should still see it.
		firstErr = serr
	}
	return drained, firstErr
}

// gcSpan is one account's pending-sequence window, snapshotted at the
// start of a drain.
type gcSpan struct {
	account      string
	cursor, head int
}

// gcSnapshotSpans loads the durable index (if not mirrored yet) and
// returns every account's span in sorted account order.
func (m *Middleware) gcSnapshotSpans(ctx context.Context) ([]gcSpan, error) {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	if err := m.loadGCLocked(ctx); err != nil {
		return nil, err
	}
	spans := make([]gcSpan, 0, len(m.gcstates))
	for _, account := range m.gcAccountsLocked() {
		st := m.gcstates[account]
		spans = append(spans, gcSpan{account, st.cursor, st.head})
	}
	return spans, nil
}

// gcMergeCursor folds a drain's progress back into the mirror; a
// concurrent eager dequeue may have advanced it further, so the cursor
// only ever moves forward.
func (m *Middleware) gcMergeCursor(account string, cursor int) {
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	if st := m.gcstates[account]; st != nil && cursor > st.cursor {
		st.cursor = cursor
	}
}

// reclaimEntry validates one intent and, if the delete it records was
// acknowledged, reclaims the namespace through the pipelined walker.
// Returns false when the intent is stale — the tombstone (or root-record
// delete) never landed, so the subtree is live and must not be touched.
func (m *Middleware) reclaimEntry(ctx context.Context, e core.GCEntry) (bool, error) {
	entryKey := ""
	if e.Root {
		data, _, err := m.store.Get(ctx, core.RootKey(e.Account))
		if err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return false, err
		}
		if err == nil && string(data) == e.NS {
			return false, nil // account deletion never acknowledged; still live
		}
	} else {
		t, ok, err := m.lookupChild(ctx, e.Account, e.ParentNS, e.Name)
		if err != nil {
			return false, err
		}
		if ok && !t.Deleted && t.NS == e.NS {
			return false, nil // rmdir never acknowledged; subtree still live
		}
		// The entry's child object is ours to delete unless the name was
		// reused by a live successor (same key, new namespace): then the
		// object at EntryKey belongs to the successor and must survive.
		if !ok || t.Deleted {
			entryKey = e.EntryKey()
		}
	}
	return true, m.gcNamespaceEntry(ctx, e.Account, e.NS, entryKey)
}

// GCQueueSnapshot reports queue depth and lifetime counters; nil when
// the queue is disabled. Pending is the recorded span width, which may
// overcount briefly after eager dequeues until a drain prunes the spans.
func (m *Middleware) GCQueueSnapshot(ctx context.Context) (*GCQueueStats, error) {
	if !m.gcq {
		return nil, nil
	}
	m.gcmu.Lock()
	defer m.gcmu.Unlock()
	if err := m.loadGCLocked(ctx); err != nil {
		return nil, err
	}
	pending := 0
	for _, account := range m.gcAccountsLocked() {
		if st := m.gcstates[account]; st.head >= st.cursor {
			pending += st.head - st.cursor + 1
		}
	}
	return &GCQueueStats{
		Pending:   pending,
		Enqueued:  m.reg.Counter("gcqueue.enqueued"),
		Reclaimed: m.reg.Counter("gcqueue.reclaimed"),
		Stale:     m.reg.Counter("gcqueue.stale"),
		Deferred:  m.reg.Counter("gcqueue.deferred"),
		LagNanos:  m.reg.Counter("gcqueue.lag_ns"),
	}, nil
}
