package h2fs

import (
	"context"
	"log"
	"time"
)

// StartMaintenance runs the Background Merger on a fixed interval until
// ctx is cancelled: every dirty NameRing descriptor is flushed (folding
// patch chains into ring objects, compacting expired tombstones, and
// advertising updates over gossip), then the durable GC queue is drained
// when one is configured. Deployments call this once per middleware;
// tests drive the loop through StartMaintenanceTicks (or MaintainOnce
// directly) for determinism. The returned channel closes when the loop
// exits.
func (m *Middleware) StartMaintenance(ctx context.Context, interval time.Duration) <-chan struct{} {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	return m.maintenanceLoop(ctx, ticker.C, ticker.Stop)
}

// StartMaintenanceTicks is StartMaintenance with an injected tick
// source: one maintenance pass runs per value received. Tests own the
// schedule instead of racing a real ticker.
func (m *Middleware) StartMaintenanceTicks(ctx context.Context, ticks <-chan time.Time) <-chan struct{} {
	return m.maintenanceLoop(ctx, ticks, nil)
}

func (m *Middleware) maintenanceLoop(ctx context.Context, ticks <-chan time.Time, stop func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		if stop != nil {
			defer stop()
		}
		for {
			select {
			case <-ctx.Done():
				// Final flush so a clean shutdown persists local state. The
				// queue needs no parting drain: its entries are durable and
				// the next start (or any peer of a dead node) resumes them.
				//h2vet:durable shutdown flush: local state must persist even though ctx is already cancelled
				if err := m.FlushAll(context.WithoutCancel(ctx)); err != nil {
					m.reg.Inc("maintenance.flush.errors", 1)
					log.Printf("h2fs: final flush: %v", err)
				}
				return
			case <-ticks:
				m.MaintainOnce(ctx)
			}
		}
	}()
	return done
}

// MaintainOnce runs a single maintenance pass: flush all dirty
// descriptors, then drain the GC queue. Failures are counted
// (maintenance.flush.errors, maintenance.drain.errors — visible on
// /v1/stats) as well as logged, and never stop the loop: both halves
// are idempotent, so the next tick simply retries.
func (m *Middleware) MaintainOnce(ctx context.Context) {
	if err := m.FlushAll(ctx); err != nil {
		m.reg.Inc("maintenance.flush.errors", 1)
		log.Printf("h2fs: maintenance flush: %v", err)
	}
	if m.gcq {
		if _, err := m.DrainGC(ctx); err != nil {
			m.reg.Inc("maintenance.drain.errors", 1)
			log.Printf("h2fs: maintenance gc drain: %v", err)
		}
	}
}
