package h2fs

import (
	"context"
	"log"
	"time"
)

// StartMaintenance runs the Background Merger on a fixed interval until
// ctx is cancelled: every dirty NameRing descriptor is flushed (folding
// patch chains into ring objects, compacting expired tombstones, and
// advertising updates over gossip). Deployments call this once per
// middleware; tests drive FlushAll directly for determinism. The
// returned channel closes when the loop exits.
func (m *Middleware) StartMaintenance(ctx context.Context, interval time.Duration) <-chan struct{} {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				// Final flush so a clean shutdown persists local state.
				if err := m.FlushAll(context.WithoutCancel(ctx)); err != nil {
					log.Printf("h2fs: final flush: %v", err)
				}
				return
			case <-ticker.C:
				if err := m.FlushAll(ctx); err != nil {
					log.Printf("h2fs: maintenance flush: %v", err)
				}
			}
		}
	}()
	return done
}
