package h2fs

import (
	"context"
	"errors"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// gcNamespace reclaims every object under a namespace: child files and
// directory objects, subtree rings (recursively), the namespace's own
// NameRing object and its patch chains. This is the "really removing"
// half of fake deletion (§3.3.2) — it never runs inside a measured
// filesystem operation.
func (m *Middleware) gcNamespace(ctx context.Context, account, ns string) error {
	d := m.desc(account, ns)
	m.lockDesc(d)
	if err := m.load(ctx, d); err != nil {
		m.unlockDesc(d)
		return err
	}
	tuples := d.local.All()
	watermarks := make(map[int]int, len(d.watermarks)+1)
	for node, seq := range d.watermarks {
		watermarks[node] = seq
	}
	if _, ok := watermarks[m.node]; !ok {
		watermarks[m.node] = 0
	}
	m.unlockDesc(d)

	for _, t := range tuples {
		if t.Dir && t.NS != "" {
			if err := m.gcNamespace(ctx, account, t.NS); err != nil {
				return err
			}
			if err := m.store.Delete(ctx, core.ChildKey(account, ns, t.Name)); err != nil &&
				!errors.Is(err, objstore.ErrNotFound) {
				return err
			}
			continue
		}
		// Files: reclaim the object and, for chunked files, the segments.
		if err := m.deleteFileObject(ctx, account, ns, t.Name, t.Chunked); err != nil &&
			!errors.Is(err, objstore.ErrNotFound) {
			return err
		}
	}
	// Collect patch chains: probe upward from each node's merge watermark
	// until the chain ends.
	for node, wm := range watermarks {
		for seq := wm + 1; ; seq++ {
			err := m.store.Delete(ctx, core.PatchKey(account, ns, node, seq))
			if errors.Is(err, objstore.ErrNotFound) {
				break
			}
			if err != nil {
				return err
			}
		}
	}
	if err := m.store.Delete(ctx, core.RingKey(account, ns)); err != nil &&
		!errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	m.dropDesc(account, ns)
	return nil
}

// GC reclaims the subtree objects of an already-tombstoned directory
// namespace; Rmdir invokes it automatically when EagerGC is configured,
// and deployments without EagerGC run it from a maintenance loop.
func (m *Middleware) GC(ctx context.Context, account, ns string) error {
	return m.gcNamespace(ctx, account, ns)
}
