package h2fs

import "context"

// GC reclaims the subtree objects of an already-tombstoned directory
// namespace; Rmdir invokes it automatically when EagerGC is configured,
// and deployments without EagerGC either run it from a maintenance loop
// or — with Config.GCQueue — let the durable reclamation queue drive it
// crash-safely (see gcqueue.go). The walk itself — pipelined ring
// expansion, batched child deletion, windowed patch-chain probing —
// lives in walker.go.
func (m *Middleware) GC(ctx context.Context, account, ns string) error {
	return m.gcNamespace(ctx, account, ns)
}
