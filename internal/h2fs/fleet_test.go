package h2fs

import (
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/workload"
)

// TestUserFleet reproduces the paper's methodology (§5.1) at laptop
// scale: a population of users — most "light" (shallow directories,
// hundreds of files), some "heavy" (deep trees, many files) — host their
// filesystems on one cloud through multiple middlewares, then replay
// mixed POSIX-like operation traces. Every user's tree must come through
// intact and isolated.
func TestUserFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test populates many filesystems")
	}
	c := newCluster(t)
	bus := gossip.NewBus()
	ctx := context.Background()
	mws := []*Middleware{
		newMW(t, c, 1, func(cfg *Config) { cfg.Gossip = bus }),
		newMW(t, c, 2, func(cfg *Config) { cfg.Gossip = bus }),
		newMW(t, c, 3, func(cfg *Config) { cfg.Gossip = bus }),
	}

	type user struct {
		account string
		mw      *Middleware
		tree    *workload.Filesystem
	}
	var users []user
	for i := 0; i < 12; i++ {
		spec := workload.LightUser(int64(i))
		if i%4 == 0 {
			// Scaled-down heavy user: deep and wide, but laptop-sized.
			spec = workload.Spec{
				Seed: int64(i), Dirs: 150, Files: 900, MaxDepth: 21,
				DirSkew: 1.2, MeanFileSize: 4096, MaxFileSize: 1 << 20,
			}
		}
		u := user{
			account: fmt.Sprintf("user%02d", i),
			mw:      mws[i%len(mws)], // account affinity across middlewares
			tree:    workload.Generate(spec),
		}
		mustNoErr(t, u.mw.CreateAccount(ctx, u.account))
		mustNoErr(t, u.tree.Populate(ctx, u.mw.FS(u.account), 128))
		users = append(users, u)
	}

	// Mixed operation replay per user.
	for i, u := range users {
		ops := workload.GenerateOps(u.tree, 150, int64(i)*7+1, nil)
		mustNoErr(t, workload.Replay(ctx, u.mw.FS(u.account), ops))
	}

	// Maintenance: background merge + gossip to quiescence.
	for round := 0; round < 3; round++ {
		for _, mw := range mws {
			mustNoErr(t, mw.FlushAll(ctx))
		}
		bus.Pump(ctx)
	}

	// Every user's filesystem is intact, isolated, and visible from every
	// middleware (post-gossip).
	for _, u := range users {
		own, err := fsapi.Tree(ctx, u.mw.FS(u.account), "/")
		mustNoErr(t, err)
		if len(own) == 0 {
			t.Fatalf("%s: empty tree", u.account)
		}
		other := mws[(u.mw.Node())%len(mws)] // a different middleware
		remote, err := fsapi.Tree(ctx, other.FS(u.account), "/")
		mustNoErr(t, err)
		if len(remote) != len(own) {
			t.Fatalf("%s: tree size %d via node %d, %d via node %d",
				u.account, len(own), u.mw.Node(), len(remote), other.Node())
		}
	}

	// Workload statistics should exhibit the paper's stated heterogeneity.
	var maxDepth, maxPerDir int
	for _, u := range users {
		st := u.tree.Stats()
		if st.MaxDepth > maxDepth {
			maxDepth = st.MaxDepth
		}
		if st.MaxPerDir > maxPerDir {
			maxPerDir = st.MaxPerDir
		}
	}
	if maxDepth < 15 {
		t.Fatalf("fleet max depth %d; expected deep heavy users (>20 in the paper)", maxDepth)
	}
	if maxPerDir < 100 {
		t.Fatalf("fleet max files/dir %d; expected skewed heavy directories", maxPerDir)
	}
}
