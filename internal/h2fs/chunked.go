package h2fs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// Large-object support. The paper's workloads include gigabyte videos
// (§5.1); storing such a file as one object makes every overwrite and
// replica transfer monolithic. Following Swift's Static Large Objects, a
// chunked file is stored as N segment objects plus a small manifest at
// the file's namespace-decorated key. The manifest carries the chunk
// count and logical size in object metadata, so STAT, MOVE, COPY and
// DELETE handle chunked files without reading any content, and ranged
// reads touch only the segments they overlap.

const (
	metaChunks = "h2slo"     // chunk count, set on manifest objects
	metaSize   = "h2size"    // logical file size, set on manifest objects
	sloMagic   = "H2SLO/1\n" // manifest body, for human inspection
)

// sloSegKey names one segment of a chunked file. The "/slo/" infix
// contains '/', which no child name may, so segments can never collide
// with sibling files.
func sloSegKey(account, ns, name string, i int) string {
	return account + "|" + ns + "::/slo/" + name + "/" + fmt.Sprintf("%06d", i)
}

// manifestInfo extracts chunked-file metadata from object info; ok is
// false for plain objects.
func manifestInfo(info objstore.ObjectInfo) (chunks int, size int64, ok bool) {
	cs, have := info.Meta[metaChunks]
	if !have {
		return 0, 0, false
	}
	chunks, err1 := strconv.Atoi(cs)
	size, err2 := strconv.ParseInt(info.Meta[metaSize], 10, 64)
	if err1 != nil || err2 != nil || chunks < 0 {
		return 0, 0, false
	}
	return chunks, size, true
}

// WriteFileChunked streams r into chunkSize-byte segment objects plus a
// manifest. Per the blocking rule of §3.3.3, the parent NameRing patch is
// submitted only after the last byte is durably stored.
func (m *Middleware) WriteFileChunked(ctx context.Context, account, path string, r io.Reader, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 4 << 20
	}
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("h2fs: /: %w", fsapi.ErrIsDir)
	}
	dir, name, err := fsapi.Split(p)
	if err != nil {
		return err
	}
	parentNS, err := m.resolveDir(ctx, account, dir)
	if err != nil {
		return err
	}
	if t, ok, err := m.lookupChild(ctx, account, parentNS, name); err != nil {
		return err
	} else if ok && !t.Deleted {
		if t.Dir {
			return fmt.Errorf("h2fs: %s: %w", p, fsapi.ErrIsDir)
		}
		// Overwriting: reclaim the previous incarnation's segments first.
		if err := m.deleteFileObject(ctx, account, parentNS, name, t.Chunked); err != nil &&
			!errors.Is(err, objstore.ErrNotFound) {
			return err
		}
	}
	buf := make([]byte, chunkSize)
	chunks := 0
	var total int64
	for {
		n, rerr := io.ReadFull(r, buf)
		if n > 0 {
			key := sloSegKey(account, parentNS, name, chunks)
			if err := m.store.Put(ctx, key, buf[:n], nil); err != nil {
				return fmt.Errorf("h2fs: chunk %d: %w", chunks, err)
			}
			chunks++
			total += int64(n)
		}
		if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
			break
		}
		if rerr != nil {
			return rerr
		}
	}
	meta := map[string]string{
		metaType:   typeFile,
		metaChunks: strconv.Itoa(chunks),
		metaSize:   strconv.FormatInt(total, 10),
		"chunk":    strconv.Itoa(chunkSize),
	}
	body := []byte(fmt.Sprintf("%schunks=%d\nchunkSize=%d\nsize=%d\n", sloMagic, chunks, chunkSize, total))
	if err := m.store.Put(ctx, core.ChildKey(account, parentNS, name), body, meta); err != nil {
		return fmt.Errorf("h2fs: manifest: %w", err)
	}
	return m.submitPatch(ctx, account, parentNS,
		core.Tuple{Name: name, Time: m.now(), Chunked: true})
}

// assembleChunked reads every segment of a chunked file with one
// multi-Get, charged as a single overlapped fanout window by batch-aware
// stores.
func (m *Middleware) assembleChunked(ctx context.Context, account, ns, name string, chunks int, size int64) ([]byte, error) {
	if chunks == 0 {
		return []byte{}, nil
	}
	names := make([]string, chunks)
	for i := range names {
		names[i] = sloSegKey(account, ns, name, i)
	}
	results := objstore.MultiGet(ctx, m.store, names)
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("h2fs: chunk %d: %w", i, r.Err)
		}
	}
	out := make([]byte, 0, size)
	for _, r := range results {
		out = append(out, r.Data...)
	}
	return out, nil
}

// readChunkedRange serves a byte range touching only the overlapped
// segments.
func (m *Middleware) readChunkedRange(ctx context.Context, account, ns, name string, chunkSize int64, size int64, offset, length int64) ([]byte, error) {
	if offset > size {
		offset = size
	}
	end := size
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	if chunkSize <= 0 || offset >= end {
		return []byte{}, nil
	}
	first := offset / chunkSize
	last := (end - 1) / chunkSize
	out := make([]byte, 0, end-offset)
	for i := first; i <= last; i++ {
		segStart := i * chunkSize
		from := max64(offset-segStart, 0)
		to := min64(end-segStart, chunkSize)
		data, _, err := m.store.GetRange(ctx, sloSegKey(account, ns, name, int(i)), from, to-from)
		if err != nil {
			return nil, fmt.Errorf("h2fs: chunk %d: %w", i, err)
		}
		out = append(out, data...)
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// deleteFileObject removes a file's object — and, when the NameRing tuple
// marked it chunked, every segment its manifest references. The chunked
// bit rides in the tuple so plain files pay no probing.
func (m *Middleware) deleteFileObject(ctx context.Context, account, ns, name string, chunked bool) error {
	key := core.ChildKey(account, ns, name)
	if chunked {
		info, err := m.store.Head(ctx, key)
		if err != nil {
			return err
		}
		if chunks, _, ok := manifestInfo(info); ok {
			segs := make([]string, chunks)
			for i := range segs {
				segs[i] = sloSegKey(account, ns, name, i)
			}
			for _, derr := range objstore.MultiDelete(ctx, m.store, segs) {
				if derr != nil && !errors.Is(derr, objstore.ErrNotFound) {
					return derr
				}
			}
		}
	}
	return m.store.Delete(ctx, key)
}

// copyFileObject duplicates a file object under a new namespace/name,
// segment by segment for chunked files, using server-side copies.
func (m *Middleware) copyFileObject(ctx context.Context, account, srcNS, srcName, dstNS, dstName string, chunked bool) error {
	srcKey := core.ChildKey(account, srcNS, srcName)
	if chunked {
		info, err := m.store.Head(ctx, srcKey)
		if err != nil {
			return err
		}
		if chunks, _, ok := manifestInfo(info); ok {
			for i := 0; i < chunks; i++ {
				if err := m.store.Copy(ctx,
					sloSegKey(account, srcNS, srcName, i),
					sloSegKey(account, dstNS, dstName, i)); err != nil {
					return err
				}
			}
		}
	}
	return m.store.Copy(ctx, srcKey, core.ChildKey(account, dstNS, dstName))
}
