package h2fs

import (
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/baselines/sidxfs"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/workload"
)

// TestDifferentialAgainstOracle replays long random operation traces on
// H2Cloud and on a simple in-memory namenode (the Single Index Server
// baseline) and requires the resulting trees to be identical. The oracle
// has none of H2's machinery — no NameRings, patches or namespaces — so
// agreement on thousands of random operations is strong evidence the H2
// mapping is faithful.
func TestDifferentialAgainstOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ctx := context.Background()
			h2 := newFS(t)
			oc, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
			mustNoErr(t, err)
			oracle := sidxfs.New(oc, cluster.ZeroProfile(), "oracle", nil)

			base := workload.Generate(workload.Spec{
				Seed: seed, Dirs: 40, Files: 150, MaxDepth: 6,
				DirSkew: 0.7, MeanFileSize: 128, MaxFileSize: 1024,
			})
			mustNoErr(t, base.Populate(ctx, h2, 64))
			mustNoErr(t, base.Populate(ctx, oracle, 64))

			ops := workload.GenerateOps(base, 800, seed*31, nil)
			mustNoErr(t, workload.Replay(ctx, h2, ops))
			mustNoErr(t, workload.Replay(ctx, oracle, ops))

			h2Tree, err := fsapi.Tree(ctx, h2, "/")
			mustNoErr(t, err)
			oracleTree, err := fsapi.Tree(ctx, oracle, "/")
			mustNoErr(t, err)
			if len(h2Tree) != len(oracleTree) {
				t.Fatalf("tree sizes differ: h2=%d oracle=%d", len(h2Tree), len(oracleTree))
			}
			for path, want := range oracleTree {
				got, ok := h2Tree[path]
				if !ok {
					t.Fatalf("h2 missing %s", path)
				}
				if got.IsDir != want.IsDir {
					t.Fatalf("%s: IsDir %v vs %v", path, got.IsDir, want.IsDir)
				}
				if !got.IsDir && got.Size != want.Size {
					t.Fatalf("%s: size %d vs %d", path, got.Size, want.Size)
				}
			}
			// Content spot check on every file that survived.
			checked := 0
			for path, info := range oracleTree {
				if info.IsDir || checked >= 25 {
					continue
				}
				want, err := oracle.ReadFile(ctx, path)
				mustNoErr(t, err)
				got, err := h2.ReadFile(ctx, path)
				mustNoErr(t, err)
				if string(got) != string(want) {
					t.Fatalf("%s content differs", path)
				}
				checked++
			}
		})
	}
}
