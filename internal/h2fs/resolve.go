package h2fs

import (
	"context"
	"fmt"
	"strings"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// resolved is the outcome of the regular (full-path) file access algorithm
// of §3.2: the entry's tuple in its parent's NameRing plus the parent's
// namespace. The root directory resolves with isRoot set and the root
// namespace in ns.
type resolved struct {
	isRoot   bool
	parentNS string     // namespace holding the entry's tuple
	tuple    core.Tuple // the entry's NameRing tuple
}

// ns returns the namespace of the resolved entry itself (directories
// only).
func (r resolved) ns(rootNS string) string {
	if r.isRoot {
		return rootNS
	}
	return r.tuple.NS
}

// resolve walks the path "level by level along d NameRings" (§3.2): each
// component is looked up in the NameRing located by the namespace learned
// from the previous level, costing one ring consult per level — the O(d)
// regular access method. path must already be cleaned.
func (m *Middleware) resolve(ctx context.Context, account, path string) (resolved, string, error) {
	rootNS, err := m.rootNS(ctx, account)
	if err != nil {
		return resolved{}, "", err
	}
	if path == "/" {
		return resolved{isRoot: true}, rootNS, nil
	}
	comps := strings.Split(path[1:], "/")
	ns := rootNS
	for i, comp := range comps {
		t, ok, err := m.lookupChild(ctx, account, ns, comp)
		if err != nil {
			return resolved{}, "", err
		}
		if !ok || t.Deleted {
			return resolved{}, "", fmt.Errorf("h2fs: %s: %w", path, fsapi.ErrNotFound)
		}
		if i == len(comps)-1 {
			return resolved{parentNS: ns, tuple: t}, rootNS, nil
		}
		if !t.Dir {
			return resolved{}, "", fmt.Errorf("h2fs: %s: %w", path, fsapi.ErrNotDir)
		}
		ns = t.NS
	}
	// Unreachable: the loop always returns on the last component.
	return resolved{}, "", fmt.Errorf("h2fs: %s: %w", path, fsapi.ErrNotFound)
}

// resolveDir resolves a cleaned path that must name a directory and
// returns its namespace.
func (m *Middleware) resolveDir(ctx context.Context, account, path string) (string, error) {
	res, rootNS, err := m.resolve(ctx, account, path)
	if err != nil {
		return "", err
	}
	if !res.isRoot && !res.tuple.Dir {
		return "", fmt.Errorf("h2fs: %s: %w", path, fsapi.ErrNotDir)
	}
	return res.ns(rootNS), nil
}

// ResolveNS resolves a directory path to its namespace UUID. Internal
// components (and power clients) use it once, then address the
// directory's children with O(1) relative accesses.
func (m *Middleware) ResolveNS(ctx context.Context, account, path string) (string, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return "", err
	}
	return m.resolveDir(ctx, account, p)
}

// AccessRelative is the quick file access method of §3.2: a namespace-
// decorated relative path like "N02::file1" hashes straight to the object
// in O(1), bypassing the level-by-level walk. It is intended for the
// system's internal operations.
func (m *Middleware) AccessRelative(ctx context.Context, account, rel string) ([]byte, objstore.ObjectInfo, error) {
	ns, name, ok := strings.Cut(rel, "::")
	if !ok || ns == "" || !core.ValidChildName(name) {
		return nil, objstore.ObjectInfo{}, fmt.Errorf("h2fs: relative path %q: %w", rel, fsapi.ErrInvalidPath)
	}
	return m.store.Get(ctx, core.ChildKey(account, ns, name))
}
