package h2fs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/h2cloud/h2cloud/internal/chaos"
)

// newChaosMW builds a middleware over a zero-plan chaos store wrapping a
// fresh cluster; tests arm targeted triggers with FailOn to exercise the
// middleware's error paths.
func newChaosMW(t *testing.T) (*Middleware, *chaos.Store) {
	t.Helper()
	cs := chaos.New(chaos.Plan{}, nil).Store(newCluster(t))
	m, err := New(Config{Store: cs, Node: 1, EagerGC: true})
	if err != nil {
		t.Fatal(err)
	}
	return m, cs
}

func TestMkdirFailsWhenDirObjectPutFails(t *testing.T) {
	m, cs := newChaosMW(t)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	cs.FailOn(chaos.OpPut, "::doomed")
	err := m.FS("alice").Mkdir(ctx, "/doomed")
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Mkdir = %v, want injected fault", err)
	}
	// The namespace must not have been recorded: the name stays free.
	cs.FailOn(chaos.OpPut, "")
	mustNoErr(t, m.FS("alice").Mkdir(ctx, "/doomed"))
}

func TestWriteFileFailsWhenContentPutFails(t *testing.T) {
	m, cs := newChaosMW(t)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	cs.FailOn(chaos.OpPut, "::payload")
	err := m.FS("alice").WriteFile(ctx, "/payload", []byte("x"))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("WriteFile = %v", err)
	}
	// Blocking rule (§3.3.3): no patch was submitted, so the file must
	// not appear in the parent NameRing.
	entries, err := m.FS("alice").List(ctx, "/", false)
	mustNoErr(t, err)
	if len(entries) != 0 {
		t.Fatalf("failed write left ring entry: %+v", entries)
	}
}

func TestPatchSubmitFailureSurfaces(t *testing.T) {
	m, cs := newChaosMW(t)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	cs.FailOn(chaos.OpPut, ".Patch")
	err := m.FS("alice").WriteFile(ctx, "/f", []byte("x"))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("WriteFile with patch failure = %v", err)
	}
}

func TestFlushFailureSurfacesAndRetries(t *testing.T) {
	m, cs := newChaosMW(t)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	mustNoErr(t, m.FS("alice").WriteFile(ctx, "/f", []byte("x")))
	cs.FailOn(chaos.OpPut, "/NameRing/")
	if err := m.FlushAll(ctx); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("FlushAll = %v, want injected fault", err)
	}
	// The patch stays pending; a later flush succeeds and folds it.
	cs.FailOn(chaos.OpPut, "")
	mustNoErr(t, m.FlushAll(ctx))
	m2, err := New(Config{Store: cs, Node: 2}) // fresh view, no local state
	mustNoErr(t, err)
	entries, err := m2.FS("alice").List(ctx, "/", false)
	mustNoErr(t, err)
	if len(entries) != 1 {
		t.Fatalf("entries after recovery flush = %+v", entries)
	}
}

func TestCopyTreeFailurePropagates(t *testing.T) {
	m, cs := newChaosMW(t)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	afs := m.FS("alice")
	mustNoErr(t, afs.Mkdir(ctx, "/src"))
	for i := 0; i < 3; i++ {
		mustNoErr(t, afs.WriteFile(ctx, fmt.Sprintf("/src/f%d", i), []byte("x")))
	}
	// Fail the destination ring write: the deep copy must error out.
	cs.FailOn(chaos.OpPut, "/NameRing/")
	// (flushes would also fail; Copy writes the fresh dst ring directly.)
	err := afs.Copy(ctx, "/src", "/dst")
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Copy = %v, want injected fault", err)
	}
}

func TestGCDeleteFailurePropagates(t *testing.T) {
	m, cs := newChaosMW(t)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	afs := m.FS("alice")
	mustNoErr(t, afs.Mkdir(ctx, "/d"))
	mustNoErr(t, afs.WriteFile(ctx, "/d/f", []byte("x")))
	cs.FailOn(chaos.OpDelete, "::f")
	if err := afs.Rmdir(ctx, "/d"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Rmdir with failing GC = %v", err)
	}
}

func TestCorruptRingObjectDetected(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	mustNoErr(t, m.FS("alice").Mkdir(ctx, "/d"))
	mustNoErr(t, m.FlushAll(ctx))
	// Corrupt the root ring object in the store.
	root, err := m.rootNS(ctx, "alice")
	mustNoErr(t, err)
	mustNoErr(t, c.Put(ctx, "alice|"+root+"::/NameRing/", []byte("garbage"), nil))
	// A fresh middleware must refuse to load the corrupt ring.
	m2 := newMW(t, c, 2)
	if _, err := m2.FS("alice").List(ctx, "/", false); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt ring load = %v, want corruption error", err)
	}
}
