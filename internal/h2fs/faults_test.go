package h2fs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

// faultyStore wraps a Store and fails operations whose object key contains
// a trigger substring — targeted fault injection for the middleware's
// error paths.
type faultyStore struct {
	objstore.Store
	failPutSubstr    string
	failGetSubstr    string
	failDeleteSubstr string
}

var errInjected = errors.New("injected fault")

func (f *faultyStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	if f.failPutSubstr != "" && strings.Contains(name, f.failPutSubstr) {
		return errInjected
	}
	return f.Store.Put(ctx, name, data, meta)
}

func (f *faultyStore) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	if f.failGetSubstr != "" && strings.Contains(name, f.failGetSubstr) {
		return nil, objstore.ObjectInfo{}, errInjected
	}
	return f.Store.Get(ctx, name)
}

func (f *faultyStore) Delete(ctx context.Context, name string) error {
	if f.failDeleteSubstr != "" && strings.Contains(name, f.failDeleteSubstr) {
		return errInjected
	}
	return f.Store.Delete(ctx, name)
}

func newFaultyMW(t *testing.T, fs *faultyStore) *Middleware {
	t.Helper()
	m, err := New(Config{Store: fs, Node: 1, EagerGC: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMkdirFailsWhenDirObjectPutFails(t *testing.T) {
	fs := &faultyStore{Store: newCluster(t)}
	m := newFaultyMW(t, fs)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs.failPutSubstr = "::doomed"
	err := m.FS("alice").Mkdir(ctx, "/doomed")
	if !errors.Is(err, errInjected) {
		t.Fatalf("Mkdir = %v, want injected fault", err)
	}
	// The namespace must not have been recorded: the name stays free.
	fs.failPutSubstr = ""
	mustNoErr(t, m.FS("alice").Mkdir(ctx, "/doomed"))
}

func TestWriteFileFailsWhenContentPutFails(t *testing.T) {
	fs := &faultyStore{Store: newCluster(t)}
	m := newFaultyMW(t, fs)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs.failPutSubstr = "::payload"
	err := m.FS("alice").WriteFile(ctx, "/payload", []byte("x"))
	if !errors.Is(err, errInjected) {
		t.Fatalf("WriteFile = %v", err)
	}
	// Blocking rule (§3.3.3): no patch was submitted, so the file must
	// not appear in the parent NameRing.
	entries, err := m.FS("alice").List(ctx, "/", false)
	mustNoErr(t, err)
	if len(entries) != 0 {
		t.Fatalf("failed write left ring entry: %+v", entries)
	}
}

func TestPatchSubmitFailureSurfaces(t *testing.T) {
	fs := &faultyStore{Store: newCluster(t)}
	m := newFaultyMW(t, fs)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs.failPutSubstr = ".Patch"
	err := m.FS("alice").WriteFile(ctx, "/f", []byte("x"))
	if !errors.Is(err, errInjected) {
		t.Fatalf("WriteFile with patch failure = %v", err)
	}
}

func TestFlushFailureSurfacesAndRetries(t *testing.T) {
	fs := &faultyStore{Store: newCluster(t)}
	m := newFaultyMW(t, fs)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	mustNoErr(t, m.FS("alice").WriteFile(ctx, "/f", []byte("x")))
	fs.failPutSubstr = "/NameRing/"
	if err := m.FlushAll(ctx); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll = %v, want injected fault", err)
	}
	// The patch stays pending; a later flush succeeds and folds it.
	fs.failPutSubstr = ""
	mustNoErr(t, m.FlushAll(ctx))
	m2, err := New(Config{Store: fs, Node: 2}) // fresh view, no local state
	mustNoErr(t, err)
	entries, err := m2.FS("alice").List(ctx, "/", false)
	mustNoErr(t, err)
	if len(entries) != 1 {
		t.Fatalf("entries after recovery flush = %+v", entries)
	}
}

func TestCopyTreeFailurePropagates(t *testing.T) {
	fs := &faultyStore{Store: newCluster(t)}
	m := newFaultyMW(t, fs)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	afs := m.FS("alice")
	mustNoErr(t, afs.Mkdir(ctx, "/src"))
	for i := 0; i < 3; i++ {
		mustNoErr(t, afs.WriteFile(ctx, fmt.Sprintf("/src/f%d", i), []byte("x")))
	}
	// Fail the destination ring write: the deep copy must error out.
	fs.failPutSubstr = "/NameRing/"
	// (flushes would also fail; Copy writes the fresh dst ring directly.)
	err := afs.Copy(ctx, "/src", "/dst")
	if !errors.Is(err, errInjected) {
		t.Fatalf("Copy = %v, want injected fault", err)
	}
}

func TestGCDeleteFailurePropagates(t *testing.T) {
	fs := &faultyStore{Store: newCluster(t)}
	m := newFaultyMW(t, fs)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	afs := m.FS("alice")
	mustNoErr(t, afs.Mkdir(ctx, "/d"))
	mustNoErr(t, afs.WriteFile(ctx, "/d/f", []byte("x")))
	fs.failDeleteSubstr = "::f"
	if err := afs.Rmdir(ctx, "/d"); !errors.Is(err, errInjected) {
		t.Fatalf("Rmdir with failing GC = %v", err)
	}
}

func TestCorruptRingObjectDetected(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	mustNoErr(t, m.FS("alice").Mkdir(ctx, "/d"))
	mustNoErr(t, m.FlushAll(ctx))
	// Corrupt the root ring object in the store.
	root, err := m.rootNS(ctx, "alice")
	mustNoErr(t, err)
	mustNoErr(t, c.Put(ctx, "alice|"+root+"::/NameRing/", []byte("garbage"), nil))
	// A fresh middleware must refuse to load the corrupt ring.
	m2 := newMW(t, c, 2)
	if _, err := m2.FS("alice").List(ctx, "/", false); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt ring load = %v, want corruption error", err)
	}
}
