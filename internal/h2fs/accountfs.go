package h2fs

import (
	"context"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// AccountFS is one account's filesystem view over a Middleware; it
// implements fsapi.FileSystem.
type AccountFS struct {
	mw      *Middleware
	account string
}

var _ fsapi.FileSystem = (*AccountFS)(nil)

// Account returns the account this view is scoped to.
func (a *AccountFS) Account() string { return a.account }

// Middleware returns the underlying middleware.
func (a *AccountFS) Middleware() *Middleware { return a.mw }

// Mkdir implements fsapi.FileSystem.
func (a *AccountFS) Mkdir(ctx context.Context, path string) error {
	return a.mw.Mkdir(ctx, a.account, path)
}

// Rmdir implements fsapi.FileSystem.
func (a *AccountFS) Rmdir(ctx context.Context, path string) error {
	return a.mw.Rmdir(ctx, a.account, path)
}

// Move implements fsapi.FileSystem.
func (a *AccountFS) Move(ctx context.Context, src, dst string) error {
	return a.mw.Move(ctx, a.account, src, dst)
}

// Copy implements fsapi.FileSystem.
func (a *AccountFS) Copy(ctx context.Context, src, dst string) error {
	return a.mw.Copy(ctx, a.account, src, dst)
}

// List implements fsapi.FileSystem.
func (a *AccountFS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	return a.mw.List(ctx, a.account, path, detail)
}

// WriteFile implements fsapi.FileSystem.
func (a *AccountFS) WriteFile(ctx context.Context, path string, data []byte) error {
	return a.mw.WriteFile(ctx, a.account, path, data)
}

// ReadFile implements fsapi.FileSystem.
func (a *AccountFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	return a.mw.ReadFile(ctx, a.account, path)
}

// Stat implements fsapi.FileSystem.
func (a *AccountFS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	return a.mw.Stat(ctx, a.account, path)
}

// Remove implements fsapi.FileSystem.
func (a *AccountFS) Remove(ctx context.Context, path string) error {
	return a.mw.Remove(ctx, a.account, path)
}
