package h2fs

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/pipeline"
)

// Pipelined subtree walking. COPY of a directory tree and GC of a
// namespace share the same access pattern: expand a NameRing, touch each
// child object, recurse into child namespaces — a BFS whose steps are
// all independent object primitives. The sequential recursion issued
// them one at a time; here every expansion and every child-object step
// is a task on one bounded-fanout pipeline.Engine, so ring expansion at
// one level overlaps child object I/O at another, and the request is
// charged the schedule's makespan instead of the sum.
//
// Ordering is preserved where it matters, not globally: a pipeline.Group
// per namespace runs the "after my whole subtree" step (write the
// destination ring; delete the source ring) as a finalizer once every
// task under it has succeeded. Determinism: task labels are derived from
// tree paths, child namespaces are minted with uuid.Derive (a pure
// function of parent namespace and name), and all tuple timestamps in a
// copy share the operation's start time — so a pipelined walk produces
// byte-identical store state on every run, whatever the schedule.

// ringBuilder accumulates the destination NameRing tuples that
// concurrent copy tasks contribute.
type ringBuilder struct {
	mu   sync.Mutex
	ring *core.NameRing
}

func newRingBuilder() *ringBuilder { return &ringBuilder{ring: core.NewNameRing()} }

func (b *ringBuilder) set(t core.Tuple) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring.Set(t)
}

func (b *ringBuilder) encode() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return core.EncodeNameRing(b.ring)
}

// copyTree deep-copies the contents of namespace srcNS into the freshly
// created namespace dstNS. Destination NameRings are written directly
// (no patches): the namespaces are new, so no other node can be updating
// them. Every destination ring is written by its group's finalizer, only
// after all child objects under it landed — the same blocking rule the
// sequential walk enforced by ordering.
func (m *Middleware) copyTree(ctx context.Context, account, srcNS, dstNS string) error {
	eng := pipeline.New(ctx, m.subtreeFanout())
	m.copySubtree(eng, nil, "", account, srcNS, dstNS, m.now())
	return eng.Wait()
}

// copySubtree schedules the copy of one namespace's children onto the
// engine. The group's finalizer writes the destination ring; a failure
// anywhere below skips it, so a partial copy never becomes listable.
func (m *Middleware) copySubtree(eng *pipeline.Engine, parent *pipeline.Group, lbl, account, srcNS, dstNS string, now int64) {
	rb := newRingBuilder()
	g := eng.NewGroup(parent, lbl, func(ctx context.Context) error {
		return m.store.Put(ctx, core.RingKey(account, dstNS), rb.encode(), nil)
	})
	g.Go(lbl+"\x00expand", func(ctx context.Context) error {
		defer g.Close()
		children, err := m.liveChildren(ctx, account, srcNS)
		if err != nil {
			return err
		}
		for _, child := range children {
			child := child
			if !child.Dir {
				g.Go(lbl+"/"+child.Name, func(ctx context.Context) error {
					if err := m.copyFileObject(ctx, account, srcNS, child.Name, dstNS, child.Name, child.Chunked); err != nil {
						if errors.Is(err, objstore.ErrNotFound) {
							return nil // child vanished mid-copy; skip
						}
						return err
					}
					rb.set(core.Tuple{Name: child.Name, Time: now, Chunked: child.Chunked})
					return nil
				})
				continue
			}
			childNS := m.gen.Derive(dstNS, child.Name)
			g.Go(lbl+"/"+child.Name+"\x00dir", func(ctx context.Context) error {
				dirObj := core.EncodeDir(core.DirObject{NS: childNS, Name: child.Name, Created: now})
				return m.store.Put(ctx, core.ChildKey(account, dstNS, child.Name), dirObj,
					map[string]string{metaType: typeDir, "ns": childNS})
			})
			m.copySubtree(eng, g, lbl+"/"+child.Name, account, child.NS, childNS, now)
			rb.set(core.Tuple{Name: child.Name, Time: now, Dir: true, NS: childNS})
		}
		return nil
	})
}

// gcNamespace reclaims every object under a namespace: child files and
// directory objects, subtree rings (recursively), the namespace's own
// NameRing object and its patch chains. This is the "really removing"
// half of fake deletion (§3.3.2) — it never runs inside a measured
// filesystem operation. Plain child files are reclaimed with one
// MultiDelete batch per namespace and patch chains are probed in batched
// windows, so even the sequential (SubtreeFanout <= 1) walk benefits
// from overlapped-window charging.
func (m *Middleware) gcNamespace(ctx context.Context, account, ns string) error {
	return m.gcNamespaceEntry(ctx, account, ns, "")
}

// gcNamespaceEntry is gcNamespace with the root group's entryKey set:
// the directory child object that pointed at ns is deleted by the
// finalizer after the subtree is gone. The queue drain passes the
// tombstoned entry's key here; a bare GC passes "".
func (m *Middleware) gcNamespaceEntry(ctx context.Context, account, ns, entryKey string) error {
	eng := pipeline.New(ctx, m.subtreeFanout())
	m.gcSubtree(eng, nil, "", account, ns, entryKey)
	return eng.Wait()
}

// gcSubtree schedules the reclamation of one namespace. entryKey, when
// non-empty, is the directory child object that pointed at this
// namespace; the group's finalizer deletes it after the subtree is gone
// (the order the sequential walk enforced), then the ring, then drops
// the cached descriptor.
func (m *Middleware) gcSubtree(eng *pipeline.Engine, parent *pipeline.Group, lbl, account, ns, entryKey string) {
	var extentKeys []string // filled by the expand task before the finalizer runs
	g := eng.NewGroup(parent, lbl, func(ctx context.Context) error {
		if entryKey != "" {
			if err := m.store.Delete(ctx, entryKey); err != nil && !errors.Is(err, objstore.ErrNotFound) {
				return err
			}
		}
		// Sub-ring extents go before the manifest at RingKey, so a crash in
		// between leaves a referenced-but-empty layout (readers tolerate
		// it) rather than unreferenced garbage.
		for _, err := range objstore.MultiDelete(ctx, m.store, extentKeys) {
			if err != nil && !errors.Is(err, objstore.ErrNotFound) {
				return err
			}
		}
		if err := m.store.Delete(ctx, core.RingKey(account, ns)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
		m.dropDesc(account, ns)
		return nil
	})
	g.Go(lbl+"\x00expand", func(ctx context.Context) error {
		defer g.Close()
		tuples, watermarks, shards, err := m.gcSnapshot(ctx, account, ns)
		if err != nil {
			return err
		}
		if shards > 1 {
			extentKeys = core.ExtentKeys(account, ns, shards)
		}
		var plain []string
		for _, t := range tuples {
			t := t
			switch {
			case t.Dir && t.NS != "":
				m.gcSubtree(eng, g, lbl+"/"+t.Name, account, t.NS, core.ChildKey(account, ns, t.Name))
			case t.Chunked:
				g.Go(lbl+"/"+t.Name, func(ctx context.Context) error {
					if err := m.deleteFileObject(ctx, account, ns, t.Name, true); err != nil &&
						!errors.Is(err, objstore.ErrNotFound) {
						return err
					}
					return nil
				})
			default:
				plain = append(plain, core.ChildKey(account, ns, t.Name))
			}
		}
		if len(plain) > 0 {
			g.Go(lbl+"\x00files", func(ctx context.Context) error {
				for _, err := range objstore.MultiDelete(ctx, m.store, plain) {
					if err != nil && !errors.Is(err, objstore.ErrNotFound) {
						return err
					}
				}
				return nil
			})
		}
		// Collect patch chains: probe upward from each node's merge
		// watermark until the chain ends.
		for _, node := range sortedNodeIDs(watermarks) {
			node, wm := node, watermarks[node]
			g.Go(lbl+"\x00patch."+strconv.Itoa(node), func(ctx context.Context) error {
				return m.collectPatchChain(ctx, account, ns, node, wm)
			})
		}
		return nil
	})
}

// gcSnapshot captures a namespace's tuples, per-node patch watermarks,
// and store shard layout under the descriptor lock.
func (m *Middleware) gcSnapshot(ctx context.Context, account, ns string) ([]core.Tuple, map[int]int, int, error) {
	d := m.lockedDesc(account, ns)
	defer m.unlockDesc(d)
	if err := m.load(ctx, d); err != nil {
		return nil, nil, 0, err
	}
	tuples := d.local.All()
	watermarks := make(map[int]int, len(d.watermarks)+1)
	for node, seq := range d.watermarks {
		watermarks[node] = seq
	}
	if _, ok := watermarks[m.node]; !ok {
		watermarks[m.node] = 0
	}
	return tuples, watermarks, d.shards, nil
}

// patchProbeWindow is how many consecutive patch sequence numbers one
// MultiDelete probes at a time during chain collection.
const patchProbeWindow = 8

// collectPatchChain deletes one node's patch objects from seq wm+1 until
// the chain ends. Probing happens in batched windows: one MultiDelete
// covers patchProbeWindow consecutive sequence numbers, so a long chain
// costs ceil(len/window) overlapped windows instead of len sequential
// round trips, and the ErrNotFound that ends the chain rides in the last
// window instead of costing its own probe.
func (m *Middleware) collectPatchChain(ctx context.Context, account, ns string, node, wm int) error {
	for seq := wm + 1; ; seq += patchProbeWindow {
		keys := make([]string, patchProbeWindow)
		for i := range keys {
			keys[i] = core.PatchKey(account, ns, node, seq+i)
		}
		for _, err := range objstore.MultiDelete(ctx, m.store, keys) {
			if err == nil {
				continue
			}
			if errors.Is(err, objstore.ErrNotFound) {
				return nil // chain end reached inside this window
			}
			return err
		}
	}
}

// sortedNodeIDs returns the map's keys in ascending order, so task
// scheduling never depends on map iteration order.
func sortedNodeIDs(watermarks map[int]int) []int {
	ids := make([]int, 0, len(watermarks))
	for id := range watermarks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
