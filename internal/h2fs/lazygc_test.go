package h2fs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// TestLazyGC exercises the paper's actual deployment mode: RMDIR is pure
// fake deletion (no EagerGC), the subtree stays unreachable but physically
// present, and a later maintenance GC pass reclaims it.
func TestLazyGC(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, func(cfg *Config) { cfg.EagerGC = false })
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	for i := 0; i < 5; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/d/f%d", i), []byte("x")))
	}
	res, _, err := m.resolve(ctx, "alice", "/d")
	mustNoErr(t, err)
	ns := res.tuple.NS
	mustNoErr(t, m.FlushAll(ctx))
	populated := c.Stats().Objects

	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	mustNoErr(t, m.FlushAll(ctx))
	// Fake deletion: unreachable through the API ...
	if _, err := fs.Stat(ctx, "/d/f0"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("child reachable after rmdir: %v", err)
	}
	// ... but the objects are still in the cloud (only the dir-entry
	// tombstone was written).
	if got := c.Stats().Objects; got < populated-1 {
		t.Fatalf("objects already reclaimed without GC: %d < %d", got, populated-1)
	}
	// Maintenance GC reclaims the subtree plus the entry object.
	mustNoErr(t, m.GC(ctx, "alice", ns))
	mustNoErr(t, c.Delete(ctx, childKeyForTest("alice", res.parentNS, "d")))
	mustNoErr(t, m.FlushAll(ctx))
	if got := c.Stats().Objects; got != 2 { // root record + root ring
		t.Fatalf("objects after GC = %d, want 2", got)
	}
}

func TestAccountFSAccessors(t *testing.T) {
	fs := newFS(t)
	if fs.Account() != "alice" {
		t.Fatalf("Account = %q", fs.Account())
	}
	if fs.Middleware() == nil {
		t.Fatal("Middleware() = nil")
	}
	if fs.Middleware().Store() == nil {
		t.Fatal("Store() = nil")
	}
}

func TestResolveNSErrors(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	if _, err := m.ResolveNS(ctx, "alice", "bad"); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("ResolveNS(bad) = %v", err)
	}
	ns, err := m.ResolveNS(ctx, "alice", "/")
	mustNoErr(t, err)
	if ns == "" {
		t.Fatal("root namespace empty")
	}
}

func TestWriteFileChunkedErrors(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	fs := m.FS("alice")
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	if err := m.WriteFileChunked(ctx, "alice", "/d", bytes.NewReader([]byte("x")), 10); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("chunked write over dir = %v", err)
	}
	if err := m.WriteFileChunked(ctx, "alice", "/", bytes.NewReader(nil), 10); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("chunked write to / = %v", err)
	}
	if err := m.WriteFileChunked(ctx, "alice", "rel", bytes.NewReader(nil), 10); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("chunked write rel = %v", err)
	}
	if err := m.WriteFileChunked(ctx, "alice", "/missing/f", bytes.NewReader(nil), 10); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("chunked write without parent = %v", err)
	}
	// Overwriting a chunked file with a chunked file reclaims the old
	// segments (more old chunks than new).
	mustNoErr(t, m.WriteFileChunked(ctx, "alice", "/d/f", bytes.NewReader(bytes.Repeat([]byte("a"), 50)), 10))
	baseline := c.Stats().Objects
	mustNoErr(t, m.WriteFileChunked(ctx, "alice", "/d/f", bytes.NewReader([]byte("tiny")), 10))
	mustNoErr(t, m.FlushAll(ctx))
	// 5 segments + manifest replaced by 1 segment + manifest.
	if got := baseline - c.Stats().Objects; got < 3 {
		t.Fatalf("old segments not reclaimed: shrank by %d", got)
	}
	data, err := fs.ReadFile(ctx, "/d/f")
	mustNoErr(t, err)
	if string(data) != "tiny" {
		t.Fatalf("read = %q", data)
	}
}
