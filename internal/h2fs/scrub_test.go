package h2fs

import (
	"context"
	"testing"

	"github.com/h2cloud/h2cloud/internal/metrics"
)

// TestScrubCleanTreeAllLive: a healthy filesystem scrubs clean — every
// object classified live, nothing queued, nothing orphaned.
func TestScrubCleanTreeAllLive(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")

	names := clusterNames(c)
	rep, err := m.Scrub(ctx, names, false)
	mustNoErr(t, err)
	if rep.Objects != len(names) || rep.Live != len(names) {
		t.Fatalf("report = %+v, want all %d objects live", rep, len(names))
	}
	if len(rep.Orphans) != 0 || rep.Queued != 0 || rep.Infra != 0 {
		t.Fatalf("clean tree misclassified: %+v", rep)
	}
}

// TestScrubReportsAndReclaimsOrphans: stray objects — an unknown
// namespace's child, a manifest-less segment — are reported as orphans
// and deleted only in reclaim mode, while the live tree is untouched.
func TestScrubReportsAndReclaimsOrphans(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)

	strays := []string{
		"alice|N9999::ghost",
		sloSegKey("alice", "N9999", "gone", 0),
	}
	for _, key := range strays {
		mustNoErr(t, c.Put(ctx, key, []byte("junk"), nil))
	}

	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != len(strays) || rep.Reclaimed != 0 {
		t.Fatalf("dry run report = %+v, want %d orphans and no reclaim", rep, len(strays))
	}

	rep, err = m.Scrub(ctx, clusterNames(c), true)
	mustNoErr(t, err)
	if rep.Reclaimed != len(strays) {
		t.Fatalf("reclaim run = %+v, want %d reclaimed", rep, len(strays))
	}
	assertKeepIntact(t, m)
	rep, err = m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after reclaim: %v", rep.Orphans)
	}
}

// TestScrubSparesQueuedSubtree: a subtree awaiting its queued
// reclamation is garbage in flight, not an orphan — the scrubber must
// leave it to the drain, then agree the queue emptied.
func TestScrubSparesQueuedSubtree(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))

	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("queued subtree misreported as orphans: %v", rep.Orphans)
	}
	// The doomed subtree: dir entry, ring, 4 files, sub entry, sub ring,
	// deep file, chunked manifest + 5 segments. Entry + index are infra.
	if rep.Queued != 15 || rep.Infra != 2 {
		t.Fatalf("report = %+v, want 15 queued / 2 infra", rep)
	}

	_, err = m.DrainGC(ctx)
	mustNoErr(t, err)
	mustNoErr(t, m.FlushAll(ctx))
	rep, err = m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if rep.Queued != 0 || len(rep.Orphans) != 0 {
		t.Fatalf("post-drain report = %+v, want nothing queued, no orphans", rep)
	}
	assertKeepIntact(t, m)
}

// TestScrubReclaimsLazyGCGarbage: without the queue (legacy lazy GC), a
// tombstoned subtree is unreachable and unclaimed — exactly the orphan
// class — and scrub-with-reclaim is the fallback collector for it.
func TestScrubReclaimsLazyGCGarbage(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))
	mustNoErr(t, m.FlushAll(ctx))

	rep, err := m.Scrub(ctx, clusterNames(c), true)
	mustNoErr(t, err)
	if rep.Reclaimed != 15 {
		t.Fatalf("report = %+v, want the 15 tombstoned objects reclaimed", rep)
	}
	assertKeepIntact(t, m)
	rep, err = m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after fallback reclaim: %v", rep.Orphans)
	}
}
