package h2fs

import (
	"context"
	"testing"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/metrics"
)

// TestScrubCleanTreeAllLive: a healthy filesystem scrubs clean — every
// object classified live, nothing queued, nothing orphaned.
func TestScrubCleanTreeAllLive(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")

	names := clusterNames(c)
	rep, err := m.Scrub(ctx, names, false)
	mustNoErr(t, err)
	if rep.Objects != len(names) || rep.Live != len(names) {
		t.Fatalf("report = %+v, want all %d objects live", rep, len(names))
	}
	if len(rep.Orphans) != 0 || rep.Queued != 0 || rep.Infra != 0 {
		t.Fatalf("clean tree misclassified: %+v", rep)
	}
}

// TestScrubReportsAndReclaimsOrphans: stray objects — an unknown
// namespace's child, a manifest-less segment — are reported as orphans
// and deleted only in reclaim mode, while the live tree is untouched.
func TestScrubReportsAndReclaimsOrphans(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)

	strays := []string{
		"alice|N9999::ghost",
		sloSegKey("alice", "N9999", "gone", 0),
	}
	for _, key := range strays {
		mustNoErr(t, c.Put(ctx, key, []byte("junk"), nil))
	}

	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != len(strays) || rep.Reclaimed != 0 {
		t.Fatalf("dry run report = %+v, want %d orphans and no reclaim", rep, len(strays))
	}

	rep, err = m.Scrub(ctx, clusterNames(c), true)
	mustNoErr(t, err)
	if rep.Reclaimed != len(strays) {
		t.Fatalf("reclaim run = %+v, want %d reclaimed", rep, len(strays))
	}
	assertKeepIntact(t, m)
	rep, err = m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after reclaim: %v", rep.Orphans)
	}
}

// TestScrubReclaimSparesJustLinkedFile models WriteFile's create window
// racing a reclaim scrub: the key universe is listed after the content
// object lands but before its ring patch. By deletion time the patch
// has landed, so the re-verify pass must reclassify the file as live and
// spare it — the "can never free live data" regression a point-in-time
// listing alone cannot prevent. A stray under an unreachable namespace
// in the same pass must still be reclaimed.
func TestScrubReclaimSparesJustLinkedFile(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1)
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	mustNoErr(t, m.FlushAll(ctx))

	// The in-flight create: content object written, patch not yet
	// submitted — and the listing happens exactly now.
	rootNS, err := m.rootNS(ctx, "alice")
	mustNoErr(t, err)
	lateKey := core.ChildKey("alice", rootNS, "late")
	mustNoErr(t, c.Put(ctx, lateKey, []byte("late data"), nil))
	stray := "alice|N9999::ghost"
	mustNoErr(t, c.Put(ctx, stray, []byte("junk"), nil))
	names := clusterNames(c)

	// The patch lands before the scrub's reclaim step runs.
	mustNoErr(t, m.submitPatch(ctx, "alice", rootNS, core.Tuple{Name: "late", Time: m.now()}))

	rep, err := m.Scrub(ctx, names, true)
	mustNoErr(t, err)
	if rep.Reclaimed != 1 || len(rep.Orphans) != 1 || rep.Orphans[0] != stray {
		t.Fatalf("report = %+v, want only the stray reclaimed", rep)
	}
	data, err := m.FS("alice").ReadFile(ctx, "/late")
	mustNoErr(t, err)
	if string(data) != "late data" {
		t.Fatalf("just-linked file content = %q", data)
	}
}

// TestScrubSparesQueuedSubtree: a subtree awaiting its queued
// reclamation is garbage in flight, not an orphan — the scrubber must
// leave it to the drain, then agree the queue emptied.
func TestScrubSparesQueuedSubtree(t *testing.T) {
	c := newCluster(t)
	reg := metrics.NewRegistry()
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
		cfg.GCQueue = true
		cfg.Metrics = reg
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))

	rep, err := m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("queued subtree misreported as orphans: %v", rep.Orphans)
	}
	// The doomed subtree: dir entry, ring, 4 files, sub entry, sub ring,
	// deep file, chunked manifest + 5 segments. Entry + index are infra.
	if rep.Queued != 15 || rep.Infra != 2 {
		t.Fatalf("report = %+v, want 15 queued / 2 infra", rep)
	}

	_, err = m.DrainGC(ctx)
	mustNoErr(t, err)
	mustNoErr(t, m.FlushAll(ctx))
	rep, err = m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if rep.Queued != 0 || len(rep.Orphans) != 0 {
		t.Fatalf("post-drain report = %+v, want nothing queued, no orphans", rep)
	}
	assertKeepIntact(t, m)
}

// TestScrubReclaimsLazyGCGarbage: without the queue (legacy lazy GC), a
// tombstoned subtree is unreachable and unclaimed — exactly the orphan
// class — and scrub-with-reclaim is the fallback collector for it.
func TestScrubReclaimsLazyGCGarbage(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, func(cfg *Config) {
		cfg.EagerGC = false
	})
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	setupKeep(t, m)
	buildVictim(t, m, "/zap")
	mustNoErr(t, m.FlushAll(ctx))
	mustNoErr(t, m.FS("alice").Rmdir(ctx, "/zap"))
	mustNoErr(t, m.FlushAll(ctx))

	rep, err := m.Scrub(ctx, clusterNames(c), true)
	mustNoErr(t, err)
	if rep.Reclaimed != 15 {
		t.Fatalf("report = %+v, want the 15 tombstoned objects reclaimed", rep)
	}
	assertKeepIntact(t, m)
	rep, err = m.Scrub(ctx, clusterNames(c), false)
	mustNoErr(t, err)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after fallback reclaim: %v", rep.Orphans)
	}
}
