package h2fs

import (
	"context"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// The strawman synchronous protocol (§3.3.1) must be functionally
// equivalent — only slower and lock-bound.
func TestSyncProtocolConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		m := newMW(t, newCluster(t), 1, func(cfg *Config) { cfg.SyncProtocol = true })
		if err := m.CreateAccount(context.Background(), "alice"); err != nil {
			t.Fatal(err)
		}
		return m.FS("alice")
	})
}

func TestSyncProtocolWritesRingInline(t *testing.T) {
	c := newCluster(t)
	m := newMW(t, c, 1, func(cfg *Config) { cfg.SyncProtocol = true })
	ctx := context.Background()
	mustNoErr(t, m.CreateAccount(ctx, "alice"))
	before := c.Stats().Objects
	mustNoErr(t, m.FS("alice").WriteFile(ctx, "/f", []byte("x")))
	// Synchronous mode: the file object only — no patch objects linger,
	// the ring object was updated in place.
	if got := c.Stats().Objects - before; got != 1 {
		t.Fatalf("sync write created %d extra objects, want 1", got)
	}
	// A second middleware sees the write without any flush or gossip.
	m2 := newMW(t, c, 2)
	data, err := m2.FS("alice").ReadFile(ctx, "/f")
	mustNoErr(t, err)
	if string(data) != "x" {
		t.Fatalf("peer read = %q", data)
	}
	// FlushAll on the sync middleware has nothing left to do.
	st := c.Stats()
	mustNoErr(t, m.FlushAll(ctx))
	if c.Stats().Puts != st.Puts {
		t.Fatal("sync-mode flush performed writes")
	}
}

func TestSyncProtocolCostsMoreThanAsync(t *testing.T) {
	perWrite := func(sync bool) time.Duration {
		c, err := cluster.New(cluster.Config{Profile: cluster.SwiftProfile()})
		mustNoErr(t, err)
		m := newMW(t, c, 1, func(cfg *Config) {
			cfg.Profile = c.Profile()
			cfg.SyncProtocol = sync
		})
		ctx := context.Background()
		mustNoErr(t, m.CreateAccount(ctx, "alice"))
		fs := m.FS("alice")
		mustNoErr(t, fs.Mkdir(ctx, "/d"))
		tr := vclock.NewTracker()
		mustNoErr(t, fs.WriteFile(vclock.With(ctx, tr), "/d/f", []byte("x")))
		return tr.Elapsed()
	}
	async, sync := perWrite(false), perWrite(true)
	if sync <= async {
		t.Fatalf("synchronous write (%v) not costlier than asynchronous (%v)", sync, async)
	}
}
