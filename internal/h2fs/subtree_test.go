package h2fs

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/chaos"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/storemw"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// constClock pins every timestamp, so two runs of the same scenario mint
// byte-identical tuples and rings regardless of wall time or schedule.
func constClock() time.Time { return time.Unix(1469346604, 539000000) }

// dumpCluster renders the full replicated object state canonically:
// node by node (ascending id), name-sorted, with content hash, size and
// sorted user metadata.
func dumpCluster(c *cluster.Cluster) string {
	var b strings.Builder
	for id := 0; ; id++ {
		n := c.Node(id)
		if n == nil {
			break
		}
		names := n.Names()
		sort.Strings(names)
		fmt.Fprintf(&b, "node %d (%d objects)\n", id, len(names))
		for _, name := range names {
			info, err := n.Head(name)
			if err != nil {
				fmt.Fprintf(&b, "  %s ERR %v\n", name, err)
				continue
			}
			metaKeys := make([]string, 0, len(info.Meta))
			for k := range info.Meta {
				metaKeys = append(metaKeys, k)
			}
			sort.Strings(metaKeys)
			fmt.Fprintf(&b, "  %s etag=%s size=%d mod=%d", name, info.ETag, info.Size, info.LastModified.UnixNano())
			for _, k := range metaKeys {
				fmt.Fprintf(&b, " %s=%s", k, info.Meta[k])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// buildSubtreeFixture creates the shared test tree under /src: depth-2
// directories, plain files, and one chunked file.
func buildSubtreeFixture(t testing.TB, m *Middleware, account string) {
	t.Helper()
	ctx := context.Background()
	if err := m.CreateAccount(ctx, account); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir(ctx, account, "/src"); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		dir := fmt.Sprintf("/src/d%d", d)
		if err := m.Mkdir(ctx, account, dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			p := fmt.Sprintf("%s/f%d", dir, f)
			if err := m.WriteFile(ctx, account, p, []byte(strings.Repeat(p, 3))); err != nil {
				t.Fatal(err)
			}
		}
		sub := dir + "/sub"
		if err := m.Mkdir(ctx, account, sub); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteFile(ctx, account, sub+"/leaf", []byte("leaf:"+sub)); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("chunky"), 700) // 4200 bytes -> 5 segments
	if err := m.WriteFileChunked(ctx, account, "/src/big", bytes.NewReader(big), 1024); err != nil {
		t.Fatal(err)
	}
}

// newSubtreeSystem builds a paper-profile system with the given subtree
// fanout and a pinned clock.
func newSubtreeSystem(t testing.TB, fanout int) (*cluster.Cluster, *Middleware) {
	t.Helper()
	profile := cluster.SwiftProfile()
	profile.SubtreeFanout = fanout
	c, err := cluster.New(cluster.Config{Profile: profile, Clock: constClock})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Store: c, Node: 1, Profile: profile, Clock: constClock, EagerGC: true})
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

// TestCopyPipelinedMatchesSequential is the core equivalence claim of the
// pipelined walker: cranking SubtreeFanout changes only the virtual cost
// of a subtree COPY, never the bytes it leaves in the cloud.
func TestCopyPipelinedMatchesSequential(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	ctx := context.Background()
	run := func(fanout int) (string, time.Duration) {
		c, m := newSubtreeSystem(t, fanout)
		buildSubtreeFixture(t, m, "alice")
		tr := vclock.NewTracker()
		if err := m.Copy(vclock.With(ctx, tr), "alice", "/src", "/dst"); err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		// Flush pending ring state so the dump covers identical flush
		// points in both runs.
		if err := m.FlushAll(ctx); err != nil {
			t.Fatalf("fanout %d: flush: %v", fanout, err)
		}
		return dumpCluster(c), tr.Elapsed()
	}
	seqDump, seqCost := run(1)
	pipeDump, pipeCost := run(16)
	if seqDump != pipeDump {
		t.Fatalf("pipelined copy left different cloud state than sequential copy:\n--- sequential ---\n%s\n--- pipelined ---\n%s", seqDump, pipeDump)
	}
	if pipeCost >= seqCost {
		t.Fatalf("pipelined copy cost %v, not cheaper than sequential %v", pipeCost, seqCost)
	}
	t.Logf("copy: sequential %v, pipelined %v (%.1fx)", seqCost, pipeCost, float64(seqCost)/float64(pipeCost))
}

// TestGCPipelinedMatchesSequential: same claim for namespace GC through
// RMDIR with eager reclamation.
func TestGCPipelinedMatchesSequential(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	ctx := context.Background()
	run := func(fanout int) string {
		c, m := newSubtreeSystem(t, fanout)
		buildSubtreeFixture(t, m, "alice")
		if err := m.Rmdir(ctx, "alice", "/src"); err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if err := m.FlushAll(ctx); err != nil {
			t.Fatalf("fanout %d: flush: %v", fanout, err)
		}
		return dumpCluster(c)
	}
	if seq, pipe := run(1), run(16); seq != pipe {
		t.Fatalf("pipelined GC left different cloud state than sequential GC:\n--- sequential ---\n%s\n--- pipelined ---\n%s", seq, pipe)
	}
}

// TestCopyIsDeterministicAcrossSchedules re-runs the same pipelined copy
// and demands byte-identical cloud state every time — the walker's
// determinism invariant (derived UUIDs, one shared timestamp, label-keyed
// error selection) under real goroutine scheduling.
func TestCopyIsDeterministicAcrossSchedules(t *testing.T) {
	ctx := context.Background()
	var want string
	for run := 0; run < 5; run++ {
		c, m := newSubtreeSystem(t, 16)
		buildSubtreeFixture(t, m, "alice")
		if err := m.Copy(ctx, "alice", "/src", "/dst"); err != nil {
			t.Fatal(err)
		}
		if err := m.FlushAll(ctx); err != nil {
			t.Fatal(err)
		}
		got := dumpCluster(c)
		if run == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d produced different cloud state", run)
		}
	}
}

// TestConcurrentSubtreeOps hammers COPY, GC and detailed LIST over one
// shared tree from concurrent goroutines with the pipelined engine
// enabled — the -race stress for the walker, the batch paths and the
// descriptor cache together.
func TestConcurrentSubtreeOps(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	profile := cluster.SwiftProfile()
	profile.SubtreeFanout = 8
	c, err := cluster.New(cluster.Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Store: c, Node: 1, Profile: profile, EagerGC: true})
	if err != nil {
		t.Fatal(err)
	}
	buildSubtreeFixture(t, m, "alice")
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := fmt.Sprintf("/copy%d", i)
			if err := m.Copy(ctx, "alice", "/src", dst); err != nil {
				errs <- fmt.Errorf("copy %s: %w", dst, err)
				return
			}
			if err := m.Rmdir(ctx, "alice", dst); err != nil {
				errs <- fmt.Errorf("rmdir %s: %w", dst, err)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, _, err := m.ListPage(ctx, "alice", "/src", true, "", 0); err != nil {
					errs <- fmt.Errorf("list: %w", err)
					return
				}
				if _, err := m.ReadFile(ctx, "alice", "/src/big"); err != nil {
					errs <- fmt.Errorf("read big: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The shared source must have survived intact.
	entries, _, err := m.ListPage(ctx, "alice", "/src", true, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // d0 d1 d2 big
		t.Fatalf("/src has %d entries after the stress, want 4", len(entries))
	}
}

// TestChaosSeededBatchDeterminism runs a chaos-faulted workload over the
// batched and pipelined paths twice from identical seeds and demands the
// two runs agree on everything observable: per-phase virtual times,
// fault/retry counters, and the byte-exact cloud state. Fault decisions
// key on object names (never on schedule), timestamps are pinned, and
// batch windows fold through the order-insensitive makespan — this test
// is what holds all three properties together.
func TestChaosSeededBatchDeterminism(t *testing.T) {
	fstest.AssertNoGoroutineLeak(t)
	scenario := func() string {
		profile := cluster.SwiftProfile()
		profile.SubtreeFanout = 16
		c, err := cluster.New(cluster.Config{Profile: profile, Clock: constClock})
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		// Faults stay off while the fixture is built; the measured phases
		// below run with the error rate switched on.
		eng := chaos.New(chaos.Plan{
			Seed:      42,
			SpikeRate: 0.10,
			Spike:     20 * time.Millisecond,
		}, reg)
		m, err := New(Config{
			Store:   storemw.Stack(c, eng.Layer()),
			Node:    1,
			Profile: profile,
			Clock:   constClock,
			EagerGC: true,
			Retry:   DefaultRetryPolicy(),
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		buildSubtreeFixture(t, m, "alice")
		eng.SetErrRate(0.04)

		var b strings.Builder
		phase := func(name string, fn func(ctx context.Context) error) {
			tr := vclock.NewTracker()
			err := fn(vclock.With(context.Background(), tr))
			fmt.Fprintf(&b, "phase %s: vtime=%v err=%v\n", name, tr.Elapsed(), err)
		}
		phase("copy", func(ctx context.Context) error {
			return m.Copy(ctx, "alice", "/src", "/dst")
		})
		phase("list-detail", func(ctx context.Context) error {
			_, _, err := m.ListPage(ctx, "alice", "/src", true, "", 0)
			return err
		})
		phase("read-chunked", func(ctx context.Context) error {
			_, err := m.ReadFile(ctx, "alice", "/src/big")
			return err
		})
		phase("gc", func(ctx context.Context) error {
			return m.Rmdir(ctx, "alice", "/src")
		})
		phase("flush", m.FlushAll)

		for _, cs := range reg.Counters() {
			fmt.Fprintf(&b, "counter %s=%d\n", cs.Name, cs.Value)
		}
		b.WriteString(dumpCluster(c))
		return b.String()
	}
	first := scenario()
	second := scenario()
	if first != second {
		t.Fatalf("same-seed chaos runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
	}
	if !strings.Contains(first, "chaos.faults") && !strings.Contains(first, "chaos.spikes") {
		t.Fatalf("scenario injected no faults or spikes; digest:\n%s", first)
	}
}
