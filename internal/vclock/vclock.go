// Package vclock provides a virtual clock for simulated service time.
//
// The H2Cloud evaluation (paper §5.2) measures "operation time": how long
// the storage system needs to process a filesystem operation, excluding
// wide-area RTT. In this reproduction the object storage cloud is an
// in-process simulator, so instead of measuring wall time of in-memory map
// lookups we charge each storage primitive a calibrated service time on a
// virtual clock carried through context.Context. Parallel fan-out (an
// H2Middleware issuing many outbound requests at once) is modeled as a
// bounded-worker schedule whose makespan is charged to the parent request.
//
// When no Tracker is attached to the context every charge is a no-op, so
// the same code paths can be benchmarked for real wall-clock cost.
package vclock

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracker accumulates the simulated service time of one request.
// It is safe for concurrent use.
type Tracker struct {
	nanos atomic.Int64
}

// NewTracker returns a Tracker with zero elapsed virtual time.
func NewTracker() *Tracker { return &Tracker{} }

// Charge adds d to the tracker's elapsed virtual time.
// Negative durations are ignored.
func (t *Tracker) Charge(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.nanos.Add(int64(d))
}

// Elapsed reports the total virtual time charged so far.
func (t *Tracker) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos.Load())
}

// Reset sets the elapsed virtual time back to zero.
func (t *Tracker) Reset() {
	if t != nil {
		t.nanos.Store(0)
	}
}

type ctxKey struct{}

// With returns a context carrying t.
func With(ctx context.Context, t *Tracker) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// From returns the Tracker carried by ctx, or nil if none is attached.
func From(ctx context.Context) *Tracker {
	t, _ := ctx.Value(ctxKey{}).(*Tracker)
	return t
}

// Charge adds d to the tracker attached to ctx, if any.
func Charge(ctx context.Context, d time.Duration) {
	From(ctx).Charge(d)
}

// Makespan computes the completion time of scheduling the given task
// durations on `workers` parallel workers using longest-processing-time
// (LPT) list scheduling. With workers <= 1 it degenerates to the sum.
func Makespan(durs []time.Duration, workers int) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	if workers <= 1 || len(durs) == 1 {
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		return sum
	}
	if workers > len(durs) {
		workers = len(durs)
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, workers)
	for _, d := range sorted {
		// Assign to the least-loaded worker.
		min := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += d
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Fanout runs the tasks concurrently with at most `workers` goroutines.
// Each task receives a context carrying a fresh child Tracker; after all
// tasks finish, the LPT makespan of the children's virtual durations is
// charged to the Tracker attached to ctx (if any). The first non-nil task
// error is returned; all tasks always run to completion.
func Fanout(ctx context.Context, workers int, tasks []func(context.Context) error) error {
	if len(tasks) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = 1
	}
	durs := make([]time.Duration, len(tasks))
	errs := make([]error, len(tasks))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, task := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, task func(context.Context) error) {
			defer wg.Done()
			defer func() { <-sem }()
			child := NewTracker()
			errs[i] = task(With(ctx, child))
			durs[i] = child.Elapsed()
		}(i, task)
	}
	wg.Wait()
	From(ctx).Charge(Makespan(durs, workers))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
