package vclock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTrackerChargeAccumulates(t *testing.T) {
	tr := NewTracker()
	tr.Charge(10 * time.Millisecond)
	tr.Charge(5 * time.Millisecond)
	if got, want := tr.Elapsed(), 15*time.Millisecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestTrackerIgnoresNonPositive(t *testing.T) {
	tr := NewTracker()
	tr.Charge(0)
	tr.Charge(-time.Second)
	if got := tr.Elapsed(); got != 0 {
		t.Fatalf("Elapsed = %v, want 0", got)
	}
}

func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.Charge(time.Second) // must not panic
	if got := tr.Elapsed(); got != 0 {
		t.Fatalf("nil Elapsed = %v, want 0", got)
	}
	tr.Reset()
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	tr.Charge(time.Second)
	tr.Reset()
	if got := tr.Elapsed(); got != 0 {
		t.Fatalf("Elapsed after Reset = %v, want 0", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTracker()
	ctx := With(context.Background(), tr)
	if From(ctx) != tr {
		t.Fatal("From did not return the attached tracker")
	}
	Charge(ctx, 7*time.Millisecond)
	if got, want := tr.Elapsed(), 7*time.Millisecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestChargeWithoutTrackerIsNoop(t *testing.T) {
	Charge(context.Background(), time.Second) // must not panic
	if From(context.Background()) != nil {
		t.Fatal("From(empty ctx) != nil")
	}
}

func TestTrackerConcurrentCharges(t *testing.T) {
	tr := NewTracker()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Charge(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := tr.Elapsed(), goroutines*per*time.Microsecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if got := Makespan(nil, 4); got != 0 {
		t.Fatalf("Makespan(nil) = %v, want 0", got)
	}
}

func TestMakespanSingleWorkerIsSum(t *testing.T) {
	durs := []time.Duration{3, 1, 2}
	if got := Makespan(durs, 1); got != 6 {
		t.Fatalf("Makespan = %v, want 6", got)
	}
	if got := Makespan(durs, 0); got != 6 {
		t.Fatalf("Makespan(workers=0) = %v, want 6", got)
	}
}

func TestMakespanPerfectSplit(t *testing.T) {
	durs := []time.Duration{4, 4, 4, 4}
	if got := Makespan(durs, 4); got != 4 {
		t.Fatalf("Makespan = %v, want 4", got)
	}
	if got := Makespan(durs, 2); got != 8 {
		t.Fatalf("Makespan(2 workers) = %v, want 8", got)
	}
}

func TestMakespanLPT(t *testing.T) {
	// LPT on {5,4,3,3,3} with 2 workers: 5+3 / 4+3+3 -> makespan 10.
	durs := []time.Duration{3, 5, 3, 4, 3}
	if got := Makespan(durs, 2); got != 10 {
		t.Fatalf("Makespan = %v, want 10", got)
	}
}

func TestMakespanMoreWorkersThanTasks(t *testing.T) {
	durs := []time.Duration{7, 2}
	if got := Makespan(durs, 100); got != 7 {
		t.Fatalf("Makespan = %v, want 7 (the longest task)", got)
	}
}

// Property: makespan is bounded below by max(durs) and mean load, and
// bounded above by the sequential sum; more workers never hurts vs 1.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(raw []uint16, w uint8) bool {
		if len(raw) == 0 {
			return true
		}
		workers := int(w%8) + 1
		durs := make([]time.Duration, len(raw))
		var sum, max time.Duration
		for i, r := range raw {
			durs[i] = time.Duration(r)
			sum += durs[i]
			if durs[i] > max {
				max = durs[i]
			}
		}
		got := Makespan(durs, workers)
		lower := sum / time.Duration(workers)
		if max > lower {
			lower = max
		}
		return got >= lower && got <= sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutChargesMakespan(t *testing.T) {
	tr := NewTracker()
	ctx := With(context.Background(), tr)
	tasks := make([]func(context.Context) error, 4)
	for i := range tasks {
		tasks[i] = func(ctx context.Context) error {
			Charge(ctx, 10*time.Millisecond)
			return nil
		}
	}
	if err := Fanout(ctx, 2, tasks); err != nil {
		t.Fatal(err)
	}
	// 4 tasks of 10ms on 2 workers => 20ms.
	if got, want := tr.Elapsed(), 20*time.Millisecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestFanoutPropagatesError(t *testing.T) {
	wantErr := errors.New("boom")
	tasks := []func(context.Context) error{
		func(context.Context) error { return nil },
		func(context.Context) error { return wantErr },
		func(context.Context) error { return nil },
	}
	if err := Fanout(context.Background(), 3, tasks); !errors.Is(err, wantErr) {
		t.Fatalf("Fanout error = %v, want %v", err, wantErr)
	}
}

func TestFanoutEmptyTasks(t *testing.T) {
	if err := Fanout(context.Background(), 4, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutWithoutParentTracker(t *testing.T) {
	ran := false
	err := Fanout(context.Background(), 1, []func(context.Context) error{
		func(ctx context.Context) error {
			Charge(ctx, time.Millisecond) // child tracker exists even without parent
			ran = true
			return nil
		},
	})
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestFanoutBoundsConcurrency(t *testing.T) {
	var mu sync.Mutex
	cur, peak := 0, 0
	enter := func() {
		mu.Lock()
		defer mu.Unlock()
		cur++
		if cur > peak {
			peak = cur
		}
	}
	exit := func() {
		mu.Lock()
		defer mu.Unlock()
		cur--
	}
	tasks := make([]func(context.Context) error, 32)
	for i := range tasks {
		tasks[i] = func(context.Context) error {
			enter()
			time.Sleep(time.Millisecond)
			exit()
			return nil
		}
	}
	if err := Fanout(context.Background(), 4, tasks); err != nil {
		t.Fatal(err)
	}
	if peak > 4 {
		t.Fatalf("peak concurrency %d > 4", peak)
	}
}
