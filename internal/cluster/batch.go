package cluster

import (
	"context"
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Native batch execution (objstore.Batcher). A middleware that issues a
// group of independent primitives does not pay for them one round trip
// at a time: the cloud absorbs the group concurrently, bounded by the
// profile's Fanout width. Each item executes against the in-memory nodes
// through the same uncharged cores the singular primitives use — so
// counters, read-repair and quorum behaviour are identical — and the
// whole group is charged as ONE overlapped window: the LPT makespan of
// the per-item service times over Fanout workers. With Fanout <= 1 the
// makespan degenerates to the per-item sum, i.e. exactly what issuing
// the singular primitives sequentially would have charged.

var _ objstore.Batcher = (*Cluster)(nil)

// batchWorkers is the overlapped window width for batched primitives.
func (c *Cluster) batchWorkers() int {
	if c.profile.Fanout > 1 {
		return c.profile.Fanout
	}
	return 1
}

// MultiGet implements objstore.Batcher.
func (c *Cluster) MultiGet(ctx context.Context, names []string) []objstore.GetResult {
	out := make([]objstore.GetResult, len(names))
	durs := make([]time.Duration, len(names))
	for i, name := range names {
		out[i].Data, out[i].Info, durs[i], out[i].Err = c.getCore(name)
	}
	vclock.Charge(ctx, vclock.Makespan(durs, c.batchWorkers()))
	return out
}

// MultiHead implements objstore.Batcher.
func (c *Cluster) MultiHead(ctx context.Context, names []string) []objstore.HeadResult {
	out := make([]objstore.HeadResult, len(names))
	durs := make([]time.Duration, len(names))
	for i, name := range names {
		out[i].Info, durs[i], out[i].Err = c.headCore(name)
	}
	vclock.Charge(ctx, vclock.Makespan(durs, c.batchWorkers()))
	return out
}

// MultiPut implements objstore.Batcher.
func (c *Cluster) MultiPut(ctx context.Context, reqs []objstore.PutReq) []error {
	out := make([]error, len(reqs))
	durs := make([]time.Duration, len(reqs))
	for i, r := range reqs {
		durs[i], out[i] = c.putCore(r.Name, r.Data, r.Meta)
	}
	vclock.Charge(ctx, vclock.Makespan(durs, c.batchWorkers()))
	return out
}

// MultiDelete implements objstore.Batcher.
func (c *Cluster) MultiDelete(ctx context.Context, names []string) []error {
	out := make([]error, len(names))
	durs := make([]time.Duration, len(names))
	for i, name := range names {
		durs[i], out[i] = c.deleteCore(name)
	}
	vclock.Charge(ctx, vclock.Makespan(durs, c.batchWorkers()))
	return out
}
