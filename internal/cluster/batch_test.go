package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

func newTestCluster(t *testing.T, profile CostProfile) *Cluster {
	t.Helper()
	c, err := New(Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// charge runs fn under a fresh tracker and returns the virtual time.
func charge(fn func(ctx context.Context)) time.Duration {
	tr := vclock.NewTracker()
	fn(vclock.With(context.Background(), tr))
	return tr.Elapsed()
}

func TestMultiPutChargesOneWindow(t *testing.T) {
	profile := SwiftProfile()
	c := newTestCluster(t, profile)
	const n = 32
	reqs := make([]objstore.PutReq, n)
	for i := range reqs {
		reqs[i] = objstore.PutReq{Name: fmt.Sprintf("obj-%03d", i), Data: []byte("x")}
	}
	got := charge(func(ctx context.Context) {
		for i, err := range c.MultiPut(ctx, reqs) {
			if err != nil {
				t.Fatalf("slot %d: %v", i, err)
			}
		}
	})
	// 32 equal puts over a 16-wide window: two rounds, not a 32-put sum.
	per := profile.Put + transferCost(profile.PerKB, 1)
	if want := 2 * per; got != want {
		t.Fatalf("MultiPut charged %v, want the overlapped window %v", got, want)
	}

	// The same batch issued singularly costs the full sum.
	single := charge(func(ctx context.Context) {
		for _, r := range reqs {
			if err := c.Put(ctx, r.Name, r.Data, r.Meta); err != nil {
				t.Fatal(err)
			}
		}
	})
	if want := n * per; single != want {
		t.Fatalf("singular puts charged %v, want %v", single, want)
	}
}

func TestBatchSequentialFanoutEqualsSingularSum(t *testing.T) {
	profile := SwiftProfile()
	profile.Fanout = 1
	c := newTestCluster(t, profile)
	names := make([]string, 10)
	for i := range names {
		names[i] = fmt.Sprintf("obj-%02d", i)
		if err := c.Put(context.Background(), names[i], []byte("y"), nil); err != nil {
			t.Fatal(err)
		}
	}
	batch := charge(func(ctx context.Context) {
		for i, r := range c.MultiHead(ctx, names) {
			if r.Err != nil {
				t.Fatalf("slot %d: %v", i, r.Err)
			}
		}
	})
	sum := charge(func(ctx context.Context) {
		for _, name := range names {
			if _, err := c.Head(ctx, name); err != nil {
				t.Fatal(err)
			}
		}
	})
	if batch != sum {
		t.Fatalf("Fanout=1 batch charged %v, want the singular sum %v", batch, sum)
	}
}

func TestBatchResultsMatchSingular(t *testing.T) {
	c := newTestCluster(t, SwiftProfile())
	ctx := context.Background()
	if err := c.Put(ctx, "present", []byte("data"), map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	got := c.MultiGet(ctx, []string{"present", "absent"})
	if got[0].Err != nil || string(got[0].Data) != "data" || got[0].Info.Meta["k"] != "v" {
		t.Fatalf("slot 0 = %+v, want the stored object", got[0])
	}
	if !errors.Is(got[1].Err, objstore.ErrNotFound) {
		t.Fatalf("slot 1 err = %v, want ErrNotFound", got[1].Err)
	}
	dels := c.MultiDelete(ctx, []string{"present", "absent"})
	if dels[0] != nil {
		t.Fatalf("delete slot 0 = %v", dels[0])
	}
	if !errors.Is(dels[1], objstore.ErrNotFound) {
		t.Fatalf("delete slot 1 = %v, want ErrNotFound", dels[1])
	}
}

func TestRepairProbesWithHeadOnly(t *testing.T) {
	profile := SwiftProfile()
	profile.SubtreeFanout = 8
	c := newTestCluster(t, profile)
	ctx := context.Background()
	const n = 20
	for i := 0; i < n; i++ {
		if err := c.Put(ctx, fmt.Sprintf("obj-%02d", i), []byte("abc"), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Healthy cluster: a pass must move no content — no replica Get, no
	// Put, and zero repairs.
	got := charge(func(ctx context.Context) {
		if r := c.Repair(ctx); r != 0 {
			t.Fatalf("healthy repair pass repaired %d copies", r)
		}
	})
	// Every charge in a healthy pass is a Head probe; Get would add 10ms
	// per object and Put 25ms, so a content fetch is easily visible.
	if got == 0 {
		t.Fatal("healthy repair pass charged nothing; Head probes should be billed")
	}
	if got%profile.Head != 0 {
		t.Fatalf("healthy repair charged %v, not a multiple of the Head cost %v (content was fetched)", got, profile.Head)
	}

	// Knock a node out, overwrite an object so the downed node goes stale,
	// bring it back: repair must fetch the stale object's bytes once and
	// push them to the stale replica only.
	c.SetNodeDown(0, true)
	if err := c.Put(ctx, "obj-00", []byte("new content"), nil); err != nil {
		t.Fatal(err)
	}
	c.SetNodeDown(0, false)
	repaired := 0
	cost := charge(func(ctx context.Context) { repaired = c.Repair(ctx) })
	if repaired == 0 {
		t.Fatal("stale replica was not repaired")
	}
	if cost <= 0 {
		t.Fatal("repair pass charged nothing")
	}
	// Verify the heal: every up replica of obj-00 should now serve the new
	// bytes through the normal read path.
	data, _, err := c.Get(ctx, "obj-00")
	if err != nil || string(data) != "new content" {
		t.Fatalf("after repair Get = (%q, %v)", data, err)
	}
	if r := c.Repair(ctx); r != 0 {
		t.Fatalf("second pass repaired %d copies, want 0 (converged)", r)
	}
}

func TestRepairChargesWindowUnderSubtreeFanout(t *testing.T) {
	ctx := context.Background()
	seqProfile := SwiftProfile()
	seqProfile.SubtreeFanout = 1
	pipeProfile := SwiftProfile()
	pipeProfile.SubtreeFanout = 16

	build := func(p CostProfile) *Cluster {
		c := newTestCluster(t, p)
		for i := 0; i < 64; i++ {
			if err := c.Put(ctx, fmt.Sprintf("obj-%02d", i), []byte("z"), nil); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	seq := charge(func(ctx context.Context) { build(seqProfile).Repair(ctx) })
	pipe := charge(func(ctx context.Context) { build(pipeProfile).Repair(ctx) })
	if seq == 0 || pipe == 0 {
		t.Fatalf("repair charges: seq=%v pipe=%v", seq, pipe)
	}
	if pipe*2 > seq {
		t.Fatalf("pipelined repair (%v) is not at least 2x cheaper than sequential (%v)", pipe, seq)
	}
}
