package cluster

import (
	"context"
	"testing"

	"github.com/h2cloud/h2cloud/internal/vclock"
)

func TestGetRangeSemantics(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	if err := c.Put(ctx, "obj", []byte("0123456789"), nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off, length int64
		want        string
	}{
		{0, 4, "0123"},
		{6, -1, "6789"},
		{6, 100, "6789"},
		{10, 5, ""},
		{999, -1, ""},
	}
	for _, cse := range cases {
		got, info, err := c.GetRange(ctx, "obj", cse.off, cse.length)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", cse.off, cse.length, err)
		}
		if string(got) != cse.want {
			t.Fatalf("GetRange(%d,%d) = %q, want %q", cse.off, cse.length, got, cse.want)
		}
		if info.Size != 10 {
			t.Fatalf("info.Size = %d", info.Size)
		}
	}
	if _, _, err := c.GetRange(ctx, "obj", -1, 4); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, _, err := c.GetRange(ctx, "missing", 0, 4); err == nil {
		t.Fatal("missing object range read succeeded")
	}
}

func TestGetRangeChargesOnlyReturnedBytes(t *testing.T) {
	c, err := New(Config{Profile: SwiftProfile()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	big := make([]byte, 1<<20) // 1 MiB object
	if err := c.Put(ctx, "big", big, nil); err != nil {
		t.Fatal(err)
	}
	p := SwiftProfile()
	tr := vclock.NewTracker()
	if _, _, err := c.GetRange(vclock.With(ctx, tr), "big", 0, 1024); err != nil {
		t.Fatal(err)
	}
	want := p.Get + 1*p.PerKB // one KiB of transfer, not 1024
	if got := tr.Elapsed(); got != want {
		t.Fatalf("ranged read charged %v, want %v", got, want)
	}
	tr.Reset()
	if _, _, err := c.Get(vclock.With(ctx, tr), "big"); err != nil {
		t.Fatal(err)
	}
	full := p.Get + 1024*p.PerKB
	if got := tr.Elapsed(); got != full {
		t.Fatalf("full read charged %v, want %v", got, full)
	}
}
