// Package cluster assembles storage nodes, a consistent-hashing ring and a
// service-time cost profile into an in-process object storage cloud.
//
// It stands in for the paper's rack-scale OpenStack Swift deployment (§5.1:
// nine servers, three replicas per object). Requests execute the real
// replication and placement logic against in-memory nodes while charging
// calibrated per-primitive service times to the vclock tracker carried in
// the request context, so evaluation code observes the same operation-time
// behaviour the paper measures, without the hardware.
package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/pipeline"
	"github.com/h2cloud/h2cloud/internal/ring"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// CostProfile holds the simulated service time of each storage primitive.
// The zero value charges nothing, which is what wall-clock benchmarks use.
type CostProfile struct {
	Get    time.Duration // base service time of an object GET
	Put    time.Duration // base service time of an object PUT
	Delete time.Duration // base service time of an object DELETE
	Head   time.Duration // base service time of an object HEAD
	Copy   time.Duration // base service time of a server-side COPY
	PerKB  time.Duration // added per KiB of payload transferred

	// DBProbe, DBScan and DBWrite price the per-account file-path database
	// OpenStack Swift keeps to boost LIST and COPY (§2): one binary-search
	// probe, one record visited during a scan, one record insert/delete.
	DBProbe time.Duration
	DBScan  time.Duration
	DBWrite time.Duration

	// IndexRead, IndexCommit and IndexRecord price the separate index
	// cloud kept by two-cloud baselines (Dynamic Partition / Dropbox,
	// Single Index Server): one index RPC read, one durably committed
	// index mutation, and one metadata record materialized in a listing.
	IndexRead   time.Duration
	IndexCommit time.Duration
	IndexRecord time.Duration

	// Fanout is the number of concurrent outbound requests a middleware
	// issues when an operation touches many objects. It is also the width
	// of the overlapped window a batched primitive (objstore.Batcher) is
	// charged as.
	Fanout int

	// SubtreeFanout bounds the pipelined subtree engine: how many
	// expansion and object tasks a maintenance walk (COPY of a tree, GC
	// of a namespace, anti-entropy Repair) keeps in flight. Zero or one
	// keeps those walks sequential — the charge degenerates to the exact
	// per-item sum, preserving the paper's Table 1 / Figure 11 cost
	// figures — so pipelining is an explicit opt-in for benchmarks and
	// deployments that want maintenance to run at cloud concurrency.
	SubtreeFanout int

	// DirShardThreshold enables sharded directory rings: once a
	// directory's live-child count exceeds the threshold, its NameRing is
	// split into hash-partitioned sub-ring extents behind an H2DRX
	// manifest, dropping per-patch write amplification from O(m) to
	// O(m/shards). Zero (the default) disables sharding entirely, keeping
	// every ring monolithic and the paper's Table 1 figures byte-identical.
	DirShardThreshold int
}

// SwiftProfile returns service times calibrated against the paper's
// absolute numbers (§5.3: H2 LIST of 1000 ≈ 0.35 s, COPY of 1000 ≈ 10 s,
// MKDIR ≈ 150–200 ms, H2 file access ≈ 15 ms per directory level, Swift
// full-path access ≈ 10 ms).
func SwiftProfile() CostProfile {
	return CostProfile{
		Get:         10 * time.Millisecond,
		Put:         25 * time.Millisecond,
		Delete:      10 * time.Millisecond,
		Head:        5 * time.Millisecond,
		Copy:        10 * time.Millisecond,
		PerKB:       2 * time.Microsecond,
		DBProbe:     250 * time.Microsecond,
		DBScan:      50 * time.Microsecond,
		DBWrite:     1200 * time.Microsecond,
		IndexRead:   90 * time.Millisecond,
		IndexCommit: 150 * time.Millisecond,
		IndexRecord: 250 * time.Microsecond,
		Fanout:      16,
	}
}

// ZeroProfile returns a profile that charges no virtual time; wall-clock
// benchmarks use it so testing.B measures only real data-structure work.
func ZeroProfile() CostProfile { return CostProfile{Fanout: 48} }

// Stats counts primitive operations and current storage usage.
type Stats struct {
	Gets    int64
	Puts    int64
	Deletes int64
	Heads   int64
	Copies  int64
	// Objects and Bytes are the logical (deduplicated across replicas)
	// object count and size.
	Objects int64
	Bytes   int64
	// DegradedGets counts reads served only after at least one replica
	// failed or missed — the availability-over-consistency fallback in
	// action. ReadRepairs counts replica copies written back by those
	// degraded reads.
	DegradedGets int64
	ReadRepairs  int64
}

// Cluster is a replicated object storage cloud: the paper's "single object
// storage cloud" hosting files, directories and NameRings alike.
type Cluster struct {
	ring    *ring.Ring
	profile CostProfile
	clock   func() time.Time

	mu    sync.RWMutex
	nodes map[int]objstore.NodeStore

	gets, puts, deletes, heads, copies atomic.Int64
	objects, bytes                     atomic.Int64
	degradedGets, readRepairs          atomic.Int64
}

// Config describes a cluster to build.
type Config struct {
	Nodes     int // number of storage nodes (devices)
	Zones     int // failure zones the nodes are spread across
	Replicas  int // replicas kept per object (paper uses 3)
	PartPower int // ring has 2^PartPower partitions
	Profile   CostProfile
	Clock     func() time.Time // defaults to time.Now
	// DataDir, when set, makes every storage node persistent: node i
	// stores its objects under DataDir/node-i and survives restarts.
	// Empty means in-memory nodes.
	DataDir string
}

// New builds a cluster. Defaults mirror the paper's deployment: 8 storage
// nodes in 4 zones, 3 replicas, 2^10 partitions.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.Zones <= 0 {
		cfg.Zones = 4
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.PartPower <= 0 {
		cfg.PartPower = 10
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	devs := make([]ring.Device, cfg.Nodes)
	nodes := make(map[int]objstore.NodeStore, cfg.Nodes)
	for i := range devs {
		devs[i] = ring.Device{ID: i, Zone: i % cfg.Zones, Weight: 1}
		if cfg.DataDir != "" {
			dn, err := objstore.OpenDiskNode(i, filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", i)))
			if err != nil {
				return nil, fmt.Errorf("cluster: %w", err)
			}
			nodes[i] = dn
		} else {
			nodes[i] = objstore.NewNode(i)
		}
	}
	rg, err := ring.New(cfg.PartPower, cfg.Replicas, devs)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &Cluster{ring: rg, profile: cfg.Profile, clock: cfg.Clock, nodes: nodes}
	if cfg.DataDir != "" {
		c.recountUsage()
	}
	return c, nil
}

// recountUsage rebuilds the logical object/byte gauges from node state —
// needed when persistent nodes reopen with existing objects.
func (c *Cluster) recountUsage() {
	seen := make(map[string]bool)
	var objects, bytes int64
	for _, n := range c.nodes {
		for _, name := range n.Names() {
			if seen[name] {
				continue
			}
			seen[name] = true
			if info, err := n.Head(name); err == nil {
				objects++
				bytes += info.Size
			}
		}
	}
	c.objects.Store(objects)
	c.bytes.Store(bytes)
}

// NewSwiftLike builds the default paper-calibrated cluster.
func NewSwiftLike() *Cluster {
	c, err := New(Config{Profile: SwiftProfile()})
	if err != nil {
		panic(err) // unreachable with default config
	}
	return c
}

// Profile returns the cluster's cost profile.
func (c *Cluster) Profile() CostProfile { return c.profile }

// Ring exposes the cluster's consistent-hashing ring.
func (c *Cluster) Ring() *ring.Ring { return c.ring }

// Node returns the storage node with the given device ID, or nil.
func (c *Cluster) Node(id int) objstore.NodeStore {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[id]
}

// SetNodeDown marks a node unavailable (failure injection).
func (c *Cluster) SetNodeDown(id int, down bool) {
	if n := c.Node(id); n != nil {
		n.SetDown(down)
	}
}

// fanoutBuf is the stack-backed scratch size the per-op hot paths use for
// replica/handoff node sequences; clusters larger than this still work,
// the append just spills to the heap.
const fanoutBuf = 16

// containsID reports whether id occurs in ids. Replica sets are tiny
// (typically 3), so a linear scan beats building a set per call.
func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func (c *Cluster) replicaNodes(name string) []objstore.NodeStore {
	return c.appendReplicaNodes(make([]objstore.NodeStore, 0, c.ring.ReplicaCount()), name)
}

// appendReplicaNodes appends the primary replica nodes for an object to
// dst and returns the extended slice; hot paths pass a stack-backed
// buffer so the per-op fan-out allocates nothing.
func (c *Cluster) appendReplicaNodes(dst []objstore.NodeStore, name string) []objstore.NodeStore {
	var devBuf [fanoutBuf]int
	devs := c.ring.DevicesAppend(name, devBuf[:0])
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, id := range devs {
		if n, ok := c.nodes[id]; ok {
			dst = append(dst, n)
		}
	}
	return dst
}

// handoffNodes returns the non-primary devices for an object in a
// deterministic, partition-dependent order — Swift's handoff nodes, which
// absorb writes whose primary replicas are unreachable so availability
// survives multi-node failures.
func (c *Cluster) handoffNodes(name string) []objstore.NodeStore {
	return c.appendHandoffNodes(nil, name)
}

// appendHandoffNodes is the append-into-caller-buffer form of
// handoffNodes, preserving its rotation order exactly.
func (c *Cluster) appendHandoffNodes(dst []objstore.NodeStore, name string) []objstore.NodeStore {
	part := c.ring.Partition(name)
	var devBuf [fanoutBuf]int
	primaries := c.ring.DevicesAppend(name, devBuf[:0])
	var idBuf [fanoutBuf]int
	ids := c.ring.DeviceIDsAppend(idBuf[:0])
	rot := int(part) % len(ids)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := 0; i < len(ids); i++ {
		id := ids[(rot+i)%len(ids)]
		if containsID(primaries, id) {
			continue
		}
		if n, ok := c.nodes[id]; ok {
			dst = append(dst, n)
		}
	}
	return dst
}

// readSequence is the replica fall-through order: primaries first, then
// handoffs.
func (c *Cluster) readSequence(name string) []objstore.NodeStore {
	return c.appendReadSequence(nil, name)
}

// appendReadSequence appends the full fall-through order (primaries then
// handoffs) to dst and returns the extended slice.
func (c *Cluster) appendReadSequence(dst []objstore.NodeStore, name string) []objstore.NodeStore {
	dst = c.appendReplicaNodes(dst, name)
	return c.appendHandoffNodes(dst, name)
}

func transferCost(per time.Duration, size int) time.Duration {
	if per <= 0 || size <= 0 {
		return 0
	}
	kib := (size + 1023) / 1024
	return time.Duration(kib) * per
}

// Put stores data on every reachable primary replica; writes whose
// primary is down are diverted to handoff nodes (one per failed primary).
// It succeeds when a majority of the replica count landed somewhere,
// returning ErrNoQuorum otherwise. Replica writes happen server-side in
// parallel, so one base service time is charged.
func (c *Cluster) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	cost, err := c.putCore(name, data, meta)
	vclock.Charge(ctx, cost)
	return err
}

// putCore executes one replicated PUT without charging, returning the
// simulated service time it costs — singular callers charge it directly,
// batched callers fold it into one overlapped window.
func (c *Cluster) putCore(name string, data []byte, meta map[string]string) (time.Duration, error) {
	cost := c.profile.Put + transferCost(c.profile.PerKB, len(data))
	c.puts.Add(1)
	var nodeBuf, seqBuf [fanoutBuf]objstore.NodeStore
	nodes := c.appendReplicaNodes(nodeBuf[:0], name)
	now := c.clock()
	existed := false
	var prevSize int64
	for _, n := range c.appendReadSequence(seqBuf[:0], name) {
		if info, err := n.Head(name); err == nil {
			existed = true
			prevSize = info.Size
			break
		}
	}
	ok := 0
	failed := 0
	for _, n := range nodes {
		if err := n.Put(name, data, meta, now); err == nil {
			ok++
		} else {
			failed++
		}
	}
	// Divert failed replica writes to handoff nodes.
	if failed > 0 {
		var hBuf [fanoutBuf]objstore.NodeStore
		for _, h := range c.appendHandoffNodes(hBuf[:0], name) {
			if failed == 0 {
				break
			}
			if err := h.Put(name, data, meta, now); err == nil {
				ok++
				failed--
			}
		}
	}
	if ok <= len(nodes)/2 {
		return cost, fmt.Errorf("cluster: put %q: %w", name, objstore.ErrNoQuorum)
	}
	if existed {
		c.bytes.Add(int64(len(data)) - prevSize)
	} else {
		c.objects.Add(1)
		c.bytes.Add(int64(len(data)))
	}
	return cost, nil
}

// Get reads from the first reachable replica holding the object, falling
// through primaries and then handoffs. A read that succeeds only after an
// earlier replica failed or missed is degraded: it is counted, and the
// winning copy is written back to reachable primaries that miss it or
// hold a stale version (read-repair), so a single fallback read heals the
// divergence instead of leaving it for the next anti-entropy pass.
func (c *Cluster) Get(ctx context.Context, name string) ([]byte, objstore.ObjectInfo, error) {
	data, info, cost, err := c.getCore(name)
	vclock.Charge(ctx, cost)
	return data, info, err
}

// getCore executes one replicated GET without charging, returning the
// simulated service time it costs.
func (c *Cluster) getCore(name string) ([]byte, objstore.ObjectInfo, time.Duration, error) {
	c.gets.Add(1)
	lastErr := error(objstore.ErrNotFound)
	degraded := false
	var seqBuf [fanoutBuf]objstore.NodeStore
	for _, n := range c.appendReadSequence(seqBuf[:0], name) {
		data, info, err := n.Get(name)
		if err == nil {
			if degraded {
				c.degradedGets.Add(1)
				c.readRepair(name, data, info)
			}
			return data, info, c.profile.Get + transferCost(c.profile.PerKB, len(data)), nil
		}
		degraded = true
		lastErr = err
	}
	return nil, objstore.ObjectInfo{}, c.profile.Get, fmt.Errorf("cluster: get %q: %w", name, lastErr)
}

// readRepair pushes the copy a degraded read returned to every reachable
// primary replica that misses it or holds an older version. Repairs are
// server-side background work, so no virtual time is charged to the
// reading request.
func (c *Cluster) readRepair(name string, data []byte, info objstore.ObjectInfo) {
	for _, r := range c.replicaNodes(name) {
		if r.Down() {
			continue
		}
		if cur, err := r.Head(name); err == nil && !cur.LastModified.Before(info.LastModified) {
			continue
		}
		if err := r.Put(name, data, info.Meta, info.LastModified); err == nil {
			c.readRepairs.Add(1)
		}
	}
}

// GetRange reads a byte range from the first reachable replica holding
// the object: offset past the end yields empty, negative length means
// "to the end". Only the returned bytes are charged as transfer — the
// primitive behind ranged READs of large files.
func (c *Cluster) GetRange(ctx context.Context, name string, offset, length int64) ([]byte, objstore.ObjectInfo, error) {
	if offset < 0 {
		return nil, objstore.ObjectInfo{}, fmt.Errorf("cluster: negative range offset %d", offset)
	}
	c.gets.Add(1)
	var lastErr error = objstore.ErrNotFound
	degraded := false
	var seqBuf [fanoutBuf]objstore.NodeStore
	for _, n := range c.appendReadSequence(seqBuf[:0], name) {
		data, info, err := n.Get(name)
		if err != nil {
			degraded = true
			lastErr = err
			continue
		}
		if degraded {
			c.degradedGets.Add(1)
			c.readRepair(name, data, info)
		}
		if offset > int64(len(data)) {
			offset = int64(len(data))
		}
		end := int64(len(data))
		if length >= 0 && offset+length < end {
			end = offset + length
		}
		part := make([]byte, end-offset)
		copy(part, data[offset:end])
		vclock.Charge(ctx, c.profile.Get+transferCost(c.profile.PerKB, len(part)))
		return part, info, nil
	}
	vclock.Charge(ctx, c.profile.Get)
	return nil, objstore.ObjectInfo{}, fmt.Errorf("cluster: get range %q: %w", name, lastErr)
}

// Head reads metadata from the first reachable replica.
func (c *Cluster) Head(ctx context.Context, name string) (objstore.ObjectInfo, error) {
	info, cost, err := c.headCore(name)
	vclock.Charge(ctx, cost)
	return info, err
}

// headCore executes one replicated HEAD without charging, returning the
// simulated service time it costs.
func (c *Cluster) headCore(name string) (objstore.ObjectInfo, time.Duration, error) {
	c.heads.Add(1)
	var lastErr error = objstore.ErrNotFound
	var seqBuf [fanoutBuf]objstore.NodeStore
	for _, n := range c.appendReadSequence(seqBuf[:0], name) {
		info, err := n.Head(name)
		if err == nil {
			return info, c.profile.Head, nil
		}
		lastErr = err
	}
	return objstore.ObjectInfo{}, c.profile.Head, fmt.Errorf("cluster: head %q: %w", name, lastErr)
}

// Delete removes the object from all reachable replicas and from any
// handoff node holding a diverted copy. It returns ErrNotFound only if no
// node held the object.
func (c *Cluster) Delete(ctx context.Context, name string) error {
	cost, err := c.deleteCore(name)
	vclock.Charge(ctx, cost)
	return err
}

// deleteCore executes one replicated DELETE without charging, returning
// the simulated service time it costs.
func (c *Cluster) deleteCore(name string) (time.Duration, error) {
	c.deletes.Add(1)
	removed := false
	var size int64
	var seqBuf [fanoutBuf]objstore.NodeStore
	for _, n := range c.appendReadSequence(seqBuf[:0], name) {
		if info, err := n.Head(name); err == nil {
			size = info.Size
		}
		if err := n.Delete(name); err == nil {
			removed = true
		}
	}
	if !removed {
		return c.profile.Delete, fmt.Errorf("cluster: delete %q: %w", name, objstore.ErrNotFound)
	}
	c.objects.Add(-1)
	c.bytes.Add(-size)
	return c.profile.Delete, nil
}

// Copy duplicates src to dst server-side: no client transfer, one copy
// service charge plus destination placement.
func (c *Cluster) Copy(ctx context.Context, src, dst string) error {
	vclock.Charge(ctx, c.profile.Copy)
	c.copies.Add(1)
	var data []byte
	var info objstore.ObjectInfo
	err := objstore.ErrNotFound
	var seqBuf [fanoutBuf]objstore.NodeStore
	for _, n := range c.appendReadSequence(seqBuf[:0], src) {
		if data, info, err = n.Get(src); err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("cluster: copy %q: %w", src, err)
	}
	nodes := c.replicaNodes(dst)
	now := c.clock()
	existed := false
	var prevSize int64
	for _, n := range nodes {
		if old, err := n.Head(dst); err == nil {
			existed = true
			prevSize = old.Size
			break
		}
	}
	ok := 0
	for _, n := range nodes {
		if err := n.Put(dst, data, info.Meta, now); err == nil {
			ok++
		}
	}
	if ok <= len(nodes)/2 {
		return fmt.Errorf("cluster: copy to %q: %w", dst, objstore.ErrNoQuorum)
	}
	if existed {
		c.bytes.Add(info.Size - prevSize)
	} else {
		c.objects.Add(1)
		c.bytes.Add(info.Size)
	}
	return nil
}

// allNodes snapshots the node set in ascending id order under the read
// lock, so Repair's pass order (and therefore which replica wins a
// LastModified tie) is deterministic across runs.
func (c *Cluster) allNodes() []objstore.NodeStore {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	nodes := make([]objstore.NodeStore, 0, len(ids))
	for _, id := range ids {
		nodes = append(nodes, c.nodes[id])
	}
	return nodes
}

// Repair runs one anti-entropy pass: every object present on at least one
// replica of its partition is pushed to replicas that miss it or hold a
// stale copy (older LastModified). It returns the number of replica copies
// written and is the eventual-consistency mechanism behind the cloud's
// availability-over-consistency stance (§3.3.1).
//
// Probing is Head-first: every reachable node answers with metadata only,
// and full object bytes are fetched exactly once — from the freshest
// holder — and only when some replica is actually stale or missing, so a
// pass over a healthy cluster moves no content at all. Each object is
// healed as one task on the pipelined subtree engine (bounded by the
// profile's SubtreeFanout; zero keeps the pass sequential), with the
// simulated cost of the pass charged to the tracker carried by ctx —
// callers that treat repair as free background work pass an uncharged
// context, as before.
func (c *Cluster) Repair(ctx context.Context) int {
	nodes := c.allNodes()
	seen := make(map[string]bool)
	var names []string
	for _, n := range nodes {
		if n.Down() {
			continue
		}
		for _, name := range n.Names() {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	var repaired atomic.Int64
	eng := pipeline.New(ctx, c.profile.SubtreeFanout)
	for _, name := range names {
		name := name
		eng.Go(name, func(ctx context.Context) error {
			repaired.Add(int64(c.repairName(ctx, name, nodes)))
			return nil
		})
	}
	_ = eng.Wait() // repair tasks report no errors; Wait charges the window
	return int(repaired.Load())
}

// repairName heals one object: probe every reachable node with HEAD,
// push the freshest version to stale or missing primaries (fetching the
// bytes once), then reclaim redundant handoff copies once every primary
// is fresh. It returns the number of replica copies written or handed
// back.
func (c *Cluster) repairName(ctx context.Context, name string, nodes []objstore.NodeStore) int {
	// Find the freshest copy anywhere — a handoff node may hold the
	// newest version after a diverted write.
	infos := make(map[int]objstore.ObjectInfo, len(nodes))
	var bestInfo objstore.ObjectInfo
	var bestNode objstore.NodeStore
	for _, n := range nodes {
		if n.Down() {
			continue
		}
		vclock.Charge(ctx, c.profile.Head)
		info, err := n.Head(name)
		if err != nil {
			continue
		}
		infos[n.ID()] = info
		if bestNode == nil || info.LastModified.After(bestInfo.LastModified) {
			bestInfo, bestNode = info, n
		}
	}
	if bestNode == nil {
		return 0
	}
	replicas := c.replicaNodes(name)
	fresh := make(map[int]bool, len(replicas))
	var stale []objstore.NodeStore
	for _, r := range replicas {
		if r.Down() {
			continue
		}
		if info, ok := infos[r.ID()]; ok && !info.LastModified.Before(bestInfo.LastModified) {
			fresh[r.ID()] = true
			continue
		}
		stale = append(stale, r)
	}
	repaired := 0
	if len(stale) > 0 {
		data, info, err := bestNode.Get(name)
		vclock.Charge(ctx, c.profile.Get+transferCost(c.profile.PerKB, len(data)))
		if err != nil {
			return 0 // freshest holder vanished mid-pass; the next pass heals
		}
		for _, r := range stale {
			vclock.Charge(ctx, c.profile.Put+transferCost(c.profile.PerKB, len(data)))
			if r.Put(name, data, info.Meta, info.LastModified) == nil {
				repaired++
				fresh[r.ID()] = true
			}
		}
	}
	// Hand back: once every primary holds the newest version, diverted
	// handoff copies are redundant and reclaimed.
	primary := map[int]bool{}
	for _, r := range replicas {
		primary[r.ID()] = true
		if !fresh[r.ID()] {
			return repaired
		}
	}
	for _, n := range nodes {
		if primary[n.ID()] || n.Down() {
			continue
		}
		if _, ok := infos[n.ID()]; !ok {
			continue
		}
		vclock.Charge(ctx, c.profile.Delete)
		if n.Delete(name) == nil {
			repaired++
		}
	}
	return repaired
}

// Stats returns a snapshot of primitive-operation counters and logical
// storage usage. Logical object count/bytes deduplicate replicas, matching
// how the paper reports storage overhead (Figures 14 and 15).
func (c *Cluster) Stats() Stats {
	return Stats{
		Gets:         c.gets.Load(),
		Puts:         c.puts.Load(),
		Deletes:      c.deletes.Load(),
		Heads:        c.heads.Load(),
		Copies:       c.copies.Load(),
		Objects:      c.objects.Load(),
		Bytes:        c.bytes.Load(),
		DegradedGets: c.degradedGets.Load(),
		ReadRepairs:  c.readRepairs.Load(),
	}
}

// ResetCounters zeroes the primitive-operation counters (not the storage
// usage gauges).
func (c *Cluster) ResetCounters() {
	c.gets.Store(0)
	c.puts.Store(0)
	c.deletes.Store(0)
	c.heads.Store(0)
	c.copies.Store(0)
	c.degradedGets.Store(0)
	c.readRepairs.Store(0)
}

var _ objstore.Store = (*Cluster)(nil)
