package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

func newTest(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{Profile: ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustPut(t testing.TB, c *Cluster, ctx context.Context, key string, data []byte, meta map[string]string) {
	t.Helper()
	if err := c.Put(ctx, key, data, meta); err != nil {
		t.Fatalf("Put %s: %v", key, err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	if err := c.Put(ctx, "alice/file1", []byte("content"), map[string]string{"type": "file"}); err != nil {
		t.Fatal(err)
	}
	data, info, err := c.Get(ctx, "alice/file1")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "content" || info.Meta["type"] != "file" {
		t.Fatalf("got %q, meta %v", data, info.Meta)
	}
}

func TestGetMissing(t *testing.T) {
	c := newTest(t)
	_, _, err := c.Get(context.Background(), "nope")
	if !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestReplication(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	if err := c.Put(ctx, "obj", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	// The object must be present on exactly ReplicaCount nodes.
	replicas := 0
	for _, id := range c.Ring().DeviceIDs() {
		if _, err := c.Node(id).Head("obj"); err == nil {
			replicas++
		}
	}
	if want := c.Ring().ReplicaCount(); replicas != want {
		t.Fatalf("object on %d nodes, want %d", replicas, want)
	}
}

func TestGetSurvivesReplicaFailures(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	mustPut(t, c, ctx, "obj", []byte("x"), nil)
	devs := c.Ring().Devices("obj")
	// Take down all but the last replica.
	for _, id := range devs[:len(devs)-1] {
		c.SetNodeDown(id, true)
	}
	if _, _, err := c.Get(ctx, "obj"); err != nil {
		t.Fatalf("Get with one live replica failed: %v", err)
	}
	c.SetNodeDown(devs[len(devs)-1], true)
	if _, _, err := c.Get(ctx, "obj"); err == nil {
		t.Fatal("Get with all replicas down succeeded")
	}
}

func TestPutQuorumAndHandoffs(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	devs := c.Ring().Devices("obj")
	// One of three primaries down: quorum still reached.
	c.SetNodeDown(devs[0], true)
	if err := c.Put(ctx, "obj", []byte("x"), nil); err != nil {
		t.Fatalf("Put with 2/3 primaries up failed: %v", err)
	}
	// Two of three primaries down: handoff nodes absorb the diverted
	// writes and the put still succeeds (Swift's availability model).
	c.SetNodeDown(devs[1], true)
	if err := c.Put(ctx, "obj", []byte("y"), nil); err != nil {
		t.Fatalf("Put with handoffs available = %v", err)
	}
	if data, _, err := c.Get(ctx, "obj"); err != nil || string(data) != "y" {
		t.Fatalf("Get after diverted put = %q, %v", data, err)
	}
	// With every node but one down there is nowhere to reach quorum.
	for _, id := range c.Ring().DeviceIDs()[1:] {
		c.SetNodeDown(id, true)
	}
	err := c.Put(ctx, "obj", []byte("z"), nil)
	if !errors.Is(err, objstore.ErrNoQuorum) {
		t.Fatalf("Put with one live node = %v, want ErrNoQuorum", err)
	}
}

func TestHandoffHandback(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	devs := c.Ring().Devices("obj")
	c.SetNodeDown(devs[0], true)
	c.SetNodeDown(devs[1], true)
	if err := c.Put(ctx, "obj", []byte("diverted"), nil); err != nil {
		t.Fatal(err)
	}
	// Count copies on non-primary nodes.
	primary := map[int]bool{devs[0]: true, devs[1]: true, devs[2]: true}
	countHandoffCopies := func() int {
		n := 0
		for _, id := range c.Ring().DeviceIDs() {
			if primary[id] {
				continue
			}
			if _, err := c.Node(id).Head("obj"); err == nil {
				n++
			}
		}
		return n
	}
	if got := countHandoffCopies(); got != 2 {
		t.Fatalf("diverted copies = %d, want 2", got)
	}
	// Primaries recover; repair restores them and reclaims the handoffs.
	c.SetNodeDown(devs[0], false)
	c.SetNodeDown(devs[1], false)
	if n := c.Repair(context.Background()); n == 0 {
		t.Fatal("Repair did nothing")
	}
	for _, id := range devs {
		if _, err := c.Node(id).Head("obj"); err != nil {
			t.Fatalf("primary %d missing object after repair: %v", id, err)
		}
	}
	if got := countHandoffCopies(); got != 0 {
		t.Fatalf("handoff copies after repair = %d, want 0", got)
	}
	data, _, err := c.Get(ctx, "obj")
	if err != nil || string(data) != "diverted" {
		t.Fatalf("Get after handback = %q, %v", data, err)
	}
}

func TestDelete(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	mustPut(t, c, ctx, "obj", []byte("xyz"), nil)
	if err := c.Delete(ctx, "obj"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(ctx, "obj"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if err := c.Delete(ctx, "obj"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	st := c.Stats()
	if st.Objects != 0 || st.Bytes != 0 {
		t.Fatalf("Stats after delete: %+v", st)
	}
}

func TestServerSideCopy(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	mustPut(t, c, ctx, "src", []byte("payload"), map[string]string{"a": "1"})
	if err := c.Copy(ctx, "src", "dst"); err != nil {
		t.Fatal(err)
	}
	data, info, err := c.Get(ctx, "dst")
	if err != nil || string(data) != "payload" || info.Meta["a"] != "1" {
		t.Fatalf("copy result: %q %v %v", data, info.Meta, err)
	}
	if err := c.Copy(ctx, "missing", "x"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("copy missing = %v", err)
	}
	st := c.Stats()
	if st.Objects != 2 || st.Bytes != 14 {
		t.Fatalf("Stats after copy: %+v", st)
	}
}

func TestStatsCounters(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	mustPut(t, c, ctx, "a", []byte("12"), nil)
	if _, _, err := c.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	c.Head(ctx, "a")
	c.Copy(ctx, "a", "b")
	if err := c.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Heads != 1 || st.Copies != 1 || st.Deletes != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.Objects != 1 || st.Bytes != 2 {
		t.Fatalf("usage: %+v", st)
	}
	c.ResetCounters()
	st = c.Stats()
	if st.Puts != 0 || st.Objects != 1 {
		t.Fatalf("after reset: %+v", st)
	}
}

func TestOverwriteKeepsLogicalCount(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	mustPut(t, c, ctx, "a", make([]byte, 100), nil)
	mustPut(t, c, ctx, "a", make([]byte, 10), nil)
	st := c.Stats()
	if st.Objects != 1 || st.Bytes != 10 {
		t.Fatalf("Stats = %+v, want 1 object of 10 bytes", st)
	}
}

func TestCostCharging(t *testing.T) {
	c, err := New(Config{Profile: SwiftProfile()})
	if err != nil {
		t.Fatal(err)
	}
	tr := vclock.NewTracker()
	ctx := vclock.With(context.Background(), tr)
	mustPut(t, c, ctx, "a", make([]byte, 2048), nil)
	p := SwiftProfile()
	want := p.Put + 2*p.PerKB
	if got := tr.Elapsed(); got != want {
		t.Fatalf("Put charged %v, want %v", got, want)
	}
	tr.Reset()
	if _, _, err := c.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	want = p.Get + 2*p.PerKB
	if got := tr.Elapsed(); got != want {
		t.Fatalf("Get charged %v, want %v", got, want)
	}
	tr.Reset()
	c.Head(ctx, "a")
	if got := tr.Elapsed(); got != p.Head {
		t.Fatalf("Head charged %v, want %v", got, p.Head)
	}
}

func TestRepairRestoresMissingReplica(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	devs := c.Ring().Devices("obj")
	c.SetNodeDown(devs[0], true)
	if err := c.Put(ctx, "obj", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	c.SetNodeDown(devs[0], false)
	if _, err := c.Node(devs[0]).Head("obj"); err == nil {
		t.Fatal("node unexpectedly has the object before repair")
	}
	if n := c.Repair(context.Background()); n == 0 {
		t.Fatal("Repair reported no work")
	}
	if _, err := c.Node(devs[0]).Head("obj"); err != nil {
		t.Fatalf("replica still missing after repair: %v", err)
	}
	// Repair is idempotent.
	if n := c.Repair(context.Background()); n != 0 {
		t.Fatalf("second Repair wrote %d copies, want 0", n)
	}
}

func TestRepairPrefersNewest(t *testing.T) {
	now := time.Unix(1000, 0)
	c, err := New(Config{Profile: ZeroProfile(), Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustPut(t, c, ctx, "obj", []byte("old"), nil)
	devs := c.Ring().Devices("obj")
	c.SetNodeDown(devs[0], true)
	now = now.Add(time.Minute)
	mustPut(t, c, ctx, "obj", []byte("new"), nil)
	c.SetNodeDown(devs[0], false)
	c.Repair(context.Background())
	data, _, err := c.Node(devs[0]).Get("obj")
	if err != nil || string(data) != "new" {
		t.Fatalf("repaired replica = %q, %v; want \"new\"", data, err)
	}
}

func TestDegradedGetTriggersReadRepair(t *testing.T) {
	c := newTest(t)
	ctx := context.Background()
	devs := c.Ring().Devices("obj")
	// Write with the first primary down, then bring it back: the copy is
	// missing there, so a Get falls through to the second primary.
	c.SetNodeDown(devs[0], true)
	mustPut(t, c, ctx, "obj", []byte("x"), nil)
	c.SetNodeDown(devs[0], false)
	data, _, err := c.Get(ctx, "obj")
	if err != nil || string(data) != "x" {
		t.Fatalf("degraded Get = %q, %v", data, err)
	}
	st := c.Stats()
	if st.DegradedGets != 1 {
		t.Fatalf("DegradedGets = %d, want 1", st.DegradedGets)
	}
	if st.ReadRepairs == 0 {
		t.Fatal("degraded Get performed no read-repair")
	}
	// The fallback read healed the first primary in passing.
	if _, err := c.Node(devs[0]).Head("obj"); err != nil {
		t.Fatalf("replica not repaired by degraded read: %v", err)
	}
	// A healthy Get afterwards is not degraded and repairs nothing more.
	before := st
	if _, _, err := c.Get(ctx, "obj"); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.DegradedGets != before.DegradedGets || st.ReadRepairs != before.ReadRepairs {
		t.Fatalf("healthy Get changed degradation counters: %+v -> %+v", before, st)
	}
}

func TestConfigDefaults(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Ring().DeviceIDs()); got != 8 {
		t.Fatalf("default nodes = %d, want 8", got)
	}
	if got := c.Ring().ReplicaCount(); got != 3 {
		t.Fatalf("default replicas = %d, want 3", got)
	}
}

func BenchmarkClusterPut(b *testing.B) {
	c, _ := New(Config{Profile: ZeroProfile()})
	ctx := context.Background()
	data := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(ctx, "bench-object", data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterGet(b *testing.B) {
	c, _ := New(Config{Profile: ZeroProfile()})
	ctx := context.Background()
	mustPut(b, c, ctx, "bench-object", make([]byte, 256), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(ctx, "bench-object"); err != nil {
			b.Fatal(err)
		}
	}
}
