package cluster

import (
	"context"
	"testing"
)

// TestClusterPersistsAcrossRestart: a DataDir-backed cluster reopened on
// the same directory serves everything written before the "restart",
// with usage gauges rebuilt from disk.
func TestClusterPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := Config{Profile: ZeroProfile(), DataDir: dir, Nodes: 4}

	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(ctx, "alpha", []byte("one"), map[string]string{"m": "1"}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(ctx, "beta", []byte("twotwo"), nil); err != nil {
		t.Fatal(err)
	}
	if err := c1.Delete(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg) // "restart"
	if err != nil {
		t.Fatal(err)
	}
	data, info, err := c2.Get(ctx, "beta")
	if err != nil || string(data) != "twotwo" {
		t.Fatalf("beta after restart = %q, %v", data, err)
	}
	if info.Size != 6 {
		t.Fatalf("info = %+v", info)
	}
	if _, _, err := c2.Get(ctx, "alpha"); err == nil {
		t.Fatal("deleted object resurrected after restart")
	}
	st := c2.Stats()
	if st.Objects != 1 || st.Bytes != 6 {
		t.Fatalf("rebuilt gauges = %+v, want 1 object / 6 bytes", st)
	}
}

// TestDiskClusterReplication: replicas land on distinct persistent nodes.
func TestDiskClusterReplication(t *testing.T) {
	c, err := New(Config{Profile: ZeroProfile(), DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Put(ctx, "obj", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	replicas := 0
	for _, id := range c.Ring().DeviceIDs() {
		if _, err := c.Node(id).Head("obj"); err == nil {
			replicas++
		}
	}
	if want := c.Ring().ReplicaCount(); replicas != want {
		t.Fatalf("object on %d disk nodes, want %d", replicas, want)
	}
}
