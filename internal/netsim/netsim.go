// Package netsim models the wide-area network round-trip time between a
// client and the cloud filesystem.
//
// The paper's §5.3 RTT analysis measures Dropbox from Santa Cruz with
// 56-byte PINGs: an average latency of 58 ms ranging from 24 to 83 ms,
// and studies α = RTT / operation-time to decide which component
// dominates user experience. RTT depends on the network, not the storage
// system, so it is sampled from a seeded distribution rather than
// simulated mechanistically.
package netsim

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// RTTModel samples round-trip times from a truncated normal distribution.
// It is safe for concurrent use.
type RTTModel struct {
	mu   sync.Mutex
	rng  *rand.Rand
	mean time.Duration
	std  time.Duration
	min  time.Duration
	max  time.Duration
}

// NewRTTModel builds a sampler with the given parameters. Samples outside
// [min, max] are clamped.
func NewRTTModel(mean, std, min, max time.Duration, seed int64) *RTTModel {
	return &RTTModel{
		rng:  rand.New(rand.NewSource(seed)),
		mean: mean,
		std:  std,
		min:  min,
		max:  max,
	}
}

// PaperRTT returns the distribution measured in the paper: mean 58 ms,
// range 24–83 ms (§5.3, "The Impact of RTT").
func PaperRTT(seed int64) *RTTModel {
	return NewRTTModel(58*time.Millisecond, 12*time.Millisecond,
		24*time.Millisecond, 83*time.Millisecond, seed)
}

// Sample draws one round-trip time.
func (m *RTTModel) Sample() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := time.Duration(float64(m.mean) + m.rng.NormFloat64()*float64(m.std))
	if d < m.min {
		d = m.min
	}
	if d > m.max {
		d = m.max
	}
	return d
}

// Mean returns the configured mean RTT.
func (m *RTTModel) Mean() time.Duration { return m.mean }

// Alpha computes the paper's α ratio: RTT divided by filesystem operation
// time. α ≫ 1 means the network dominates user experience; α ≪ 1 means
// the storage system does.
func Alpha(rtt, opTime time.Duration) float64 {
	if opTime <= 0 {
		return math.Inf(1)
	}
	return float64(rtt) / float64(opTime)
}
