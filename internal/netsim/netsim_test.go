package netsim

import (
	"math"
	"testing"
	"time"
)

func TestPaperRTTWithinRange(t *testing.T) {
	m := PaperRTT(1)
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		d := m.Sample()
		if d < 24*time.Millisecond || d > 83*time.Millisecond {
			t.Fatalf("sample %v outside paper range [24ms, 83ms]", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 50*time.Millisecond || mean > 66*time.Millisecond {
		t.Fatalf("sample mean %v too far from 58ms", mean)
	}
	if m.Mean() != 58*time.Millisecond {
		t.Fatalf("Mean = %v", m.Mean())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, b := PaperRTT(42), PaperRTT(42)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestClamping(t *testing.T) {
	m := NewRTTModel(50*time.Millisecond, 1000*time.Millisecond, 40*time.Millisecond, 60*time.Millisecond, 7)
	for i := 0; i < 1000; i++ {
		d := m.Sample()
		if d < 40*time.Millisecond || d > 60*time.Millisecond {
			t.Fatalf("clamping failed: %v", d)
		}
	}
}

func TestAlpha(t *testing.T) {
	if got := Alpha(58*time.Millisecond, 10*time.Millisecond); math.Abs(got-5.8) > 1e-9 {
		t.Fatalf("Alpha = %v, want 5.8", got)
	}
	if got := Alpha(time.Millisecond, 0); !math.IsInf(got, 1) {
		t.Fatalf("Alpha with zero op time = %v, want +Inf", got)
	}
}
