// Package swiftfs implements the paper's OpenStack Swift baseline: a
// Consistent Hash pseudo-filesystem paired with a per-account file-path
// database (§2, Figure 3).
//
// Files and directory markers are placed by hashing their full paths,
// exactly as in package chfs; in addition every path is a record in an
// ordered file-path DB (package pathdb, standing in for Swift's SQLite
// container databases). Binary search over the DB gives the improved
// complexities of Table 1: LIST drops from O(N) to O(m·logN) — one or two
// ordered seeks per distinct child, the delimiter-query pattern of real
// Swift — and COPY from O(N) to O(n+logN). Directory operations that
// change paths still rewrite each affected file (O(n)), because the keys
// embed the full path; that is the behaviour Figures 7 and 8 measure.
package swiftfs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/pathdb"
)

const (
	metaType = "h2type"
	typeFile = "file"
	typeDir  = "dir"
)

// FS is one account's Swift-style pseudo-filesystem (CH + file-path DB).
type FS struct {
	store   objstore.Store
	profile cluster.CostProfile
	account string
	clock   func() time.Time

	// One mutex serializes DB access, mirroring SQLite's single-writer
	// model for the per-account container database.
	mu sync.Mutex
	db *pathdb.DB
}

var _ fsapi.FileSystem = (*FS)(nil)

// New returns an empty Swift-style filesystem for one account.
func New(store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time) *FS {
	if clock == nil {
		clock = time.Now
	}
	if profile.Fanout <= 0 {
		profile.Fanout = 16
	}
	return &FS{
		store:   store,
		profile: profile,
		account: account,
		clock:   clock,
		db: pathdb.New(pathdb.Costs{
			Probe: profile.DBProbe,
			Scan:  profile.DBScan,
			Write: profile.DBWrite,
		}),
	}
}

func (f *FS) key(path string) string { return "sw|" + f.account + path }

// lookup returns the DB record for a cleaned path.
func (f *FS) lookup(ctx context.Context, p string) (pathdb.Record, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db.Get(ctx, p)
}

// dbInsert, dbDelete, and dbRename are the defer-scoped critical
// sections for the file-path DB; every mutation goes through one.
func (f *FS) dbInsert(ctx context.Context, rec pathdb.Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.db.Insert(ctx, rec)
}

func (f *FS) dbDelete(ctx context.Context, p string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.db.Delete(ctx, p)
}

func (f *FS) dbRename(ctx context.Context, rec pathdb.Record, target string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.db.Delete(ctx, rec.Path)
	rec.Path = target
	f.db.Insert(ctx, rec)
}

func (f *FS) checkParent(ctx context.Context, p string) error {
	dir, _, err := fsapi.Split(p)
	if err != nil {
		return err
	}
	if dir == "/" {
		return nil
	}
	rec, ok := f.lookup(ctx, dir)
	if !ok {
		return fmt.Errorf("swiftfs: %s: %w", dir, fsapi.ErrNotFound)
	}
	if !rec.IsDir {
		return fmt.Errorf("swiftfs: %s: %w", dir, fsapi.ErrNotDir)
	}
	return nil
}

// Mkdir creates a marker object and a DB record — O(1).
func (f *FS) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("swiftfs: /: %w", fsapi.ErrExists)
	}
	if err := f.checkParent(ctx, p); err != nil {
		return err
	}
	if _, ok := f.lookup(ctx, p); ok {
		return fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrExists)
	}
	if err := f.store.Put(ctx, f.key(p), nil, map[string]string{metaType: typeDir}); err != nil {
		return err
	}
	f.dbInsert(ctx, pathdb.Record{Path: p, IsDir: true, ModTime: f.clock()})
	return nil
}

// WriteFile stores the object and upserts the DB record — O(1).
func (f *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("swiftfs: /: %w", fsapi.ErrIsDir)
	}
	if err := f.checkParent(ctx, p); err != nil {
		return err
	}
	if rec, ok := f.lookup(ctx, p); ok && rec.IsDir {
		return fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrIsDir)
	}
	if err := f.store.Put(ctx, f.key(p), data, map[string]string{metaType: typeFile}); err != nil {
		return err
	}
	f.dbInsert(ctx, pathdb.Record{Path: p, Size: int64(len(data)), ModTime: f.clock()})
	return nil
}

// ReadFile fetches the object at the hashed full path — O(1).
func (f *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("swiftfs: /: %w", fsapi.ErrIsDir)
	}
	if rec, ok := f.lookup(ctx, p); ok && rec.IsDir {
		return nil, fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrIsDir)
	}
	data, _, err := f.store.Get(ctx, f.key(p))
	if err != nil {
		return nil, fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrNotFound)
	}
	return data, nil
}

// Stat hashes the full path and issues one HEAD — the O(1) file access
// that keeps Swift flat in Figure 13.
func (f *FS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	if p == "/" {
		return fsapi.EntryInfo{Name: "/", IsDir: true}, nil
	}
	info, err := f.store.Head(ctx, f.key(p))
	if err != nil {
		return fsapi.EntryInfo{}, fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrNotFound)
	}
	_, name, _ := fsapi.Split(p)
	return fsapi.EntryInfo{
		Name:    name,
		IsDir:   info.Meta[metaType] == typeDir,
		Size:    info.Size,
		ModTime: info.LastModified,
	}, nil
}

// Remove deletes the object and its DB record — O(1).
func (f *FS) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	rec, ok := f.lookup(ctx, p)
	if !ok {
		return fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if rec.IsDir {
		return fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrIsDir)
	}
	if err := f.store.Delete(ctx, f.key(p)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	f.dbDelete(ctx, p)
	return nil
}

// List runs the delimiter-query pattern over the file-path DB: each
// distinct child costs one or two ordered seeks (binary searches), giving
// the O(m·logN) complexity of Table 1. Detailed metadata comes from the
// DB records themselves, as in real Swift container listings.
func (f *FS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p != "/" {
		rec, ok := f.lookup(ctx, p)
		if !ok {
			return nil, fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrNotFound)
		}
		if !rec.IsDir {
			return nil, fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrNotDir)
		}
	}
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	var entries []fsapi.EntryInfo
	seen := make(map[string]bool)
	from := prefix
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		var rec pathdb.Record
		found := false
		f.db.ScanRange(ctx, from, prefix+"\xff", func(r pathdb.Record) bool {
			rec, found = r, true
			return false
		})
		if !found {
			break
		}
		rest := rec.Path[len(prefix):]
		name, deeper := rest, false
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			name, deeper = rest[:i], true
		}
		if seen[name] {
			// Inside an already-reported child's subtree: seek past it.
			// '/'+1 == '0', the immediate successor of the subtree range.
			from = prefix + name + "0"
			continue
		}
		seen[name] = true
		e := fsapi.EntryInfo{Name: name, IsDir: deeper || rec.IsDir}
		if !deeper && detail {
			e.Size = rec.Size
			e.ModTime = rec.ModTime
		}
		entries = append(entries, e)
		from = prefix + name + "\x00"
	}
	return entries, nil
}

// subtree returns the DB records at or under root, in path order, charging
// one scan step per record — the O(n) discovery that dominates MOVE,
// RMDIR and COPY.
func (f *FS) subtree(ctx context.Context, root string) []pathdb.Record {
	var out []pathdb.Record
	f.mu.Lock()
	defer f.mu.Unlock()
	if rec, ok := f.db.Get(ctx, root); ok {
		out = append(out, rec)
	}
	f.db.ScanPrefix(ctx, root+"/", func(r pathdb.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Rmdir removes each of the directory's n files — O(n).
func (f *FS) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("swiftfs: /: %w", fsapi.ErrInvalidPath)
	}
	rec, ok := f.lookup(ctx, p)
	if !ok {
		return fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if !rec.IsDir {
		return fmt.Errorf("swiftfs: %s: %w", p, fsapi.ErrNotDir)
	}
	for _, member := range f.subtree(ctx, p) {
		if err := f.store.Delete(ctx, f.key(member.Path)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
		f.dbDelete(ctx, member.Path)
	}
	return nil
}

// Move rewrites every member object under a new full-path key — the O(n)
// curve of Figure 7.
func (f *FS) Move(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.checkSrcDst(ctx, src, dst)
	if err != nil {
		return err
	}
	for _, member := range f.subtree(ctx, srcP) {
		target := dstP + member.Path[len(srcP):]
		if err := f.store.Copy(ctx, f.key(member.Path), f.key(target)); err != nil {
			return err
		}
		if err := f.store.Delete(ctx, f.key(member.Path)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
		f.dbRename(ctx, member, target)
	}
	return nil
}

// Copy duplicates the subtree — O(n + logN) with the DB locating the
// range in one binary search.
func (f *FS) Copy(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.checkSrcDst(ctx, src, dst)
	if err != nil {
		return err
	}
	for _, member := range f.subtree(ctx, srcP) {
		target := dstP + member.Path[len(srcP):]
		if err := f.store.Copy(ctx, f.key(member.Path), f.key(target)); err != nil {
			return err
		}
		member.Path = target
		f.dbInsert(ctx, member)
	}
	return nil
}

func (f *FS) checkSrcDst(ctx context.Context, src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fmt.Errorf("swiftfs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fmt.Errorf("swiftfs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	if _, ok := f.lookup(ctx, srcP); !ok {
		return "", "", fmt.Errorf("swiftfs: %s: %w", srcP, fsapi.ErrNotFound)
	}
	if _, ok := f.lookup(ctx, dstP); ok {
		return "", "", fmt.Errorf("swiftfs: %s: %w", dstP, fsapi.ErrExists)
	}
	if err := f.checkParent(ctx, dstP); err != nil {
		return "", "", err
	}
	return srcP, dstP, nil
}

// DBLen reports the number of file-path records (exposed for the storage
// overhead experiments).
func (f *FS) DBLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db.Len()
}
