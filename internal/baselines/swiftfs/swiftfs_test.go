package swiftfs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

func newFS(t testing.TB, profile cluster.CostProfile) (*FS, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, profile, "alice", nil), c
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t, cluster.ZeroProfile())
		return fs
	})
}

func TestListDelimiterQueryChildNames(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	mustNoErr(t, fs.Mkdir(ctx, "/d/sub"))
	mustNoErr(t, fs.WriteFile(ctx, "/d/sub/deep1", []byte("x")))
	mustNoErr(t, fs.WriteFile(ctx, "/d/sub/deep2", []byte("x")))
	mustNoErr(t, fs.WriteFile(ctx, "/d/a", []byte("1")))
	mustNoErr(t, fs.WriteFile(ctx, "/d/z", []byte("2")))
	entries, err := fs.List(ctx, "/d", false)
	mustNoErr(t, err)
	want := []struct {
		name  string
		isDir bool
	}{{"a", false}, {"sub", true}, {"z", false}}
	if len(entries) != len(want) {
		t.Fatalf("List = %+v", entries)
	}
	for i, w := range want {
		if entries[i].Name != w.name || entries[i].IsDir != w.isDir {
			t.Fatalf("List[%d] = %+v, want %+v", i, entries[i], w)
		}
	}
}

func TestListTrickySiblingNames(t *testing.T) {
	// Sibling names that sort around the '/' delimiter must not be lost
	// by the subtree-skipping seeks.
	fs, _ := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	mustNoErr(t, fs.Mkdir(ctx, "/d/name"))
	mustNoErr(t, fs.WriteFile(ctx, "/d/name/inner", []byte("x")))
	for _, n := range []string{"name!", "name.", "name0", "namez", "nam"} {
		mustNoErr(t, fs.WriteFile(ctx, "/d/"+n, []byte("x")))
	}
	entries, err := fs.List(ctx, "/d", false)
	mustNoErr(t, err)
	got := map[string]bool{}
	for _, e := range entries {
		got[e.Name] = true
	}
	for _, n := range []string{"nam", "name", "name!", "name.", "name0", "namez"} {
		if !got[n] {
			t.Fatalf("List lost sibling %q: %+v", n, entries)
		}
	}
	if len(entries) != 6 {
		t.Fatalf("List = %+v, want 6 entries", entries)
	}
}

func TestListCostScalesWithMLogN(t *testing.T) {
	fs, _ := newFS(t, cluster.SwiftProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/small"))
	mustNoErr(t, fs.Mkdir(ctx, "/bulk"))
	for i := 0; i < 20; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/small/f%02d", i), []byte("x")))
	}
	cost := func() time.Duration {
		tr := vclock.NewTracker()
		_, err := fs.List(vclock.With(ctx, tr), "/small", true)
		mustNoErr(t, err)
		return tr.Elapsed()
	}
	before := cost()
	// Grow N elsewhere: cost grows only logarithmically (not linearly as
	// in plain CH).
	for i := 0; i < 2000; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/bulk/f%04d", i), []byte("x")))
	}
	after := cost()
	if after > 4*before {
		t.Fatalf("LIST cost grew too fast with N: %v -> %v", before, after)
	}
	if after <= before {
		t.Fatalf("LIST cost did not grow with logN: %v -> %v", before, after)
	}
}

func TestMoveCostLinearInN(t *testing.T) {
	fs, c := newFS(t, cluster.SwiftProfile())
	ctx := context.Background()
	cost := func(n int) time.Duration {
		dir := fmt.Sprintf("/dir%d", n)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		for i := 0; i < n; i++ {
			mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("%s/f%04d", dir, i), []byte("x")))
		}
		tr := vclock.NewTracker()
		mustNoErr(t, fs.Move(vclock.With(ctx, tr), dir, dir+"-moved"))
		return tr.Elapsed()
	}
	c10, c100 := cost(10), cost(100)
	_ = c
	ratio := float64(c100) / float64(c10)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("MOVE cost ratio n=100/n=10 = %.1f, want ~10 (linear)", ratio)
	}
}

func TestDBTracksState(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	mustNoErr(t, fs.WriteFile(ctx, "/d/f", []byte("xy")))
	if fs.DBLen() != 2 {
		t.Fatalf("DBLen = %d, want 2", fs.DBLen())
	}
	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	if fs.DBLen() != 0 {
		t.Fatalf("DBLen after rmdir = %d, want 0", fs.DBLen())
	}
}

func TestCopyKeepsSourceRecords(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/s"))
	mustNoErr(t, fs.WriteFile(ctx, "/s/f", []byte("abc")))
	mustNoErr(t, fs.Copy(ctx, "/s", "/t"))
	if fs.DBLen() != 4 {
		t.Fatalf("DBLen = %d, want 4", fs.DBLen())
	}
	data, err := fs.ReadFile(ctx, "/t/f")
	mustNoErr(t, err)
	if string(data) != "abc" {
		t.Fatalf("copied content = %q", data)
	}
}

func mustNoErr(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferential replays random operation traces against the in-memory
// oracle model (see fstest.RunDifferential).
func TestDifferential(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		return newDifferentialFS(t)
	})
}

func newDifferentialFS(t *testing.T) fsapi.FileSystem {
	fs, _ := newFS(t, cluster.ZeroProfile())
	return fs
}

func BenchmarkSwiftList1000(b *testing.B) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		b.Fatal(err)
	}
	fs := New(c, cluster.ZeroProfile(), "bench", nil)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/d/f%06d", i), []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.List(ctx, "/d", true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwiftWriteFile(b *testing.B) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		b.Fatal(err)
	}
	fs := New(c, cluster.ZeroProfile(), "bench", nil)
	ctx := context.Background()
	data := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/f%09d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}
