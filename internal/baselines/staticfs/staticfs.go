// Package staticfs implements the Static Partition baseline of the
// paper's §2: the AFS model in which the namespace is split across a
// fixed set of servers once and forever.
//
// Each top-level directory is assigned to a partition server by a static
// hash of its name; the server owns the entire subtree. Operations within
// one partition are as fast as a single index server, which is why AFS is
// popular for its simplicity. But the assignment never adapts: operations
// that span partitions (MOVE or COPY between differently-assigned
// top-level trees) must deep-copy every file through the client — the
// "negative effect on filesystem operations with different partitions
// involved" that rules out scalability in Table 1.
package staticfs

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/h2cloud/h2cloud/internal/baselines/sidxfs"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// FS is one account's statically partitioned filesystem.
type FS struct {
	parts []*sidxfs.FS
}

var _ fsapi.FileSystem = (*FS)(nil)

// New returns a static-partition filesystem with the given number of
// partition servers (default 4).
func New(store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time, servers int) *FS {
	if servers <= 0 {
		servers = 4
	}
	parts := make([]*sidxfs.FS, servers)
	for i := range parts {
		parts[i] = sidxfs.New(store, profile, account+"-part"+strconv.Itoa(i), clock)
	}
	return &FS{parts: parts}
}

// partition statically maps a top-level directory name to its server.
func (f *FS) partition(topName string) *sidxfs.FS {
	h := fnv.New32a()
	h.Write([]byte(topName))
	return f.parts[h.Sum32()%uint32(len(f.parts))]
}

// route picks the partition server owning a cleaned non-root path.
func (f *FS) route(p string) *sidxfs.FS {
	top := p[1:]
	if i := strings.IndexByte(top, '/'); i >= 0 {
		top = top[:i]
	}
	return f.partition(top)
}

// Mkdir delegates to the owning partition.
func (f *FS) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("staticfs: /: %w", fsapi.ErrExists)
	}
	return f.route(p).Mkdir(ctx, p)
}

// WriteFile delegates to the owning partition.
func (f *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("staticfs: /: %w", fsapi.ErrIsDir)
	}
	return f.route(p).WriteFile(ctx, p, data)
}

// ReadFile delegates to the owning partition.
func (f *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("staticfs: /: %w", fsapi.ErrIsDir)
	}
	return f.route(p).ReadFile(ctx, p)
}

// Stat delegates to the owning partition; the root is synthesized.
func (f *FS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	if p == "/" {
		return fsapi.EntryInfo{Name: "/", IsDir: true}, nil
	}
	return f.route(p).Stat(ctx, p)
}

// Remove delegates to the owning partition.
func (f *FS) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("staticfs: /: %w", fsapi.ErrIsDir)
	}
	return f.route(p).Remove(ctx, p)
}

// List delegates to the owning partition; listing the root queries every
// partition server and merges the results.
func (f *FS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p != "/" {
		return f.route(p).List(ctx, p, detail)
	}
	var out []fsapi.EntryInfo
	for _, part := range f.parts {
		entries, err := part.List(ctx, "/", detail)
		if err != nil {
			return nil, err
		}
		out = append(out, entries...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Rmdir delegates to the owning partition.
func (f *FS) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("staticfs: /: %w", fsapi.ErrInvalidPath)
	}
	return f.route(p).Rmdir(ctx, p)
}

// Move is an O(1) pointer update within one partition; across partitions
// it degrades to a full deep copy plus delete — the static-assignment
// penalty.
func (f *FS) Move(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	srcFS, dstFS := f.route(srcP), f.route(dstP)
	if srcFS == dstFS {
		return srcFS.Move(ctx, srcP, dstP)
	}
	if err := f.crossCopy(ctx, srcFS, srcP, dstFS, dstP); err != nil {
		return err
	}
	info, err := srcFS.Stat(ctx, srcP)
	if err != nil {
		return err
	}
	if info.IsDir {
		return srcFS.Rmdir(ctx, srcP)
	}
	return srcFS.Remove(ctx, srcP)
}

// Copy is delegated within a partition and deep-copied across partitions.
func (f *FS) Copy(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	srcFS, dstFS := f.route(srcP), f.route(dstP)
	if srcFS == dstFS {
		return srcFS.Copy(ctx, srcP, dstP)
	}
	return f.crossCopy(ctx, srcFS, srcP, dstFS, dstP)
}

// crossCopy replays a subtree from one partition server into another
// through the client: every file's content crosses the wire — O(n) with
// full data movement.
func (f *FS) crossCopy(ctx context.Context, srcFS *sidxfs.FS, srcP string, dstFS *sidxfs.FS, dstP string) error {
	if _, err := dstFS.Stat(ctx, dstP); err == nil {
		return fmt.Errorf("staticfs: %s: %w", dstP, fsapi.ErrExists)
	} else if !errors.Is(err, fsapi.ErrNotFound) {
		return err
	}
	// The destination parent must exist on the destination partition.
	if dir, _, err := fsapi.Split(dstP); err == nil && dir != "/" {
		info, err := dstFS.Stat(ctx, dir)
		if err != nil {
			return err
		}
		if !info.IsDir {
			return fmt.Errorf("staticfs: %s: %w", dir, fsapi.ErrNotDir)
		}
	}
	info, err := srcFS.Stat(ctx, srcP)
	if err != nil {
		return err
	}
	if !info.IsDir {
		data, err := srcFS.ReadFile(ctx, srcP)
		if err != nil {
			return err
		}
		return dstFS.WriteFile(ctx, dstP, data)
	}
	if err := dstFS.Mkdir(ctx, dstP); err != nil {
		return err
	}
	entries, err := srcFS.List(ctx, srcP, false)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := f.crossCopy(ctx, srcFS, fsapi.Join(srcP, e.Name), dstFS, fsapi.Join(dstP, e.Name)); err != nil {
			return err
		}
	}
	return nil
}

func (f *FS) cleanSrcDst(src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fmt.Errorf("staticfs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fmt.Errorf("staticfs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	return srcP, dstP, nil
}

// Partitions reports how many top-level names map to each partition
// server among the given names (for tests and the ablation bench).
func (f *FS) Partitions(topNames []string) []int {
	counts := make([]int, len(f.parts))
	for _, n := range topNames {
		h := fnv.New32a()
		h.Write([]byte(n))
		counts[h.Sum32()%uint32(len(f.parts))]++
	}
	return counts
}
