package staticfs

import (
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
)

func newFS(t testing.TB, servers int) (*FS, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, cluster.ZeroProfile(), "alice", nil, servers), c
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t, 4)
		return fs
	})
}

func TestConformanceSingleServer(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t, 1)
		return fs
	})
}

// findCrossPair locates two top-level names mapping to different
// partitions and one pair mapping to the same partition.
func findPairs(fs *FS) (crossA, crossB, sameA, sameB string) {
	names := make([]string, 40)
	for i := range names {
		names[i] = fmt.Sprintf("top%02d", i)
	}
	part := func(n string) int {
		counts := fs.Partitions([]string{n})
		for i, c := range counts {
			if c > 0 {
				return i
			}
		}
		return -1
	}
	p0 := part(names[0])
	for _, n := range names[1:] {
		if crossB == "" && part(n) != p0 {
			crossB = n
		}
		if sameB == "" && part(n) == p0 {
			sameB = n
		}
	}
	return names[0], crossB, names[0], sameB
}

func TestCrossPartitionMoveDeepCopies(t *testing.T) {
	fs, c := newFS(t, 4)
	ctx := context.Background()
	srcTop, dstTop, _, _ := findPairs(fs)
	if dstTop == "" {
		t.Skip("hash assigned all probe names to one partition")
	}
	mustNoErr(t, fs.Mkdir(ctx, "/"+srcTop))
	mustNoErr(t, fs.Mkdir(ctx, "/"+dstTop))
	mustNoErr(t, fs.Mkdir(ctx, "/"+srcTop+"/sub"))
	const n = 8
	for i := 0; i < n; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/%s/sub/f%d", srcTop, i), []byte("payload")))
	}
	before := c.Stats()
	mustNoErr(t, fs.Move(ctx, "/"+srcTop+"/sub", "/"+dstTop+"/sub"))
	after := c.Stats()
	// Cross-partition move re-uploads every file: n gets and n puts.
	if gets := after.Gets - before.Gets; gets < n {
		t.Fatalf("cross-partition move read %d objects, want >= %d", gets, n)
	}
	if puts := after.Puts - before.Puts; puts < n {
		t.Fatalf("cross-partition move wrote %d objects, want >= %d", puts, n)
	}
	data, err := fs.ReadFile(ctx, "/"+dstTop+"/sub/f0")
	mustNoErr(t, err)
	if string(data) != "payload" {
		t.Fatalf("moved content = %q", data)
	}
	if _, err := fs.Stat(ctx, "/"+srcTop+"/sub"); err == nil {
		t.Fatal("source survived cross-partition move")
	}
}

func TestSamePartitionMoveIsPointerUpdate(t *testing.T) {
	fs, c := newFS(t, 4)
	ctx := context.Background()
	_, _, srcTop, sameTop := findPairs(fs)
	if sameTop == "" {
		t.Skip("no same-partition pair found")
	}
	mustNoErr(t, fs.Mkdir(ctx, "/"+srcTop))
	mustNoErr(t, fs.Mkdir(ctx, "/"+sameTop))
	mustNoErr(t, fs.Mkdir(ctx, "/"+srcTop+"/sub"))
	for i := 0; i < 8; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/%s/sub/f%d", srcTop, i), []byte("x")))
	}
	before := c.Stats()
	mustNoErr(t, fs.Move(ctx, "/"+srcTop+"/sub", "/"+sameTop+"/sub"))
	after := c.Stats()
	if after.Gets != before.Gets || after.Puts != before.Puts {
		t.Fatal("same-partition move touched the object store")
	}
}

func TestRootListMergesPartitions(t *testing.T) {
	fs, _ := newFS(t, 4)
	ctx := context.Background()
	names := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for _, n := range names {
		mustNoErr(t, fs.Mkdir(ctx, "/"+n))
	}
	entries, err := fs.List(ctx, "/", false)
	mustNoErr(t, err)
	if len(entries) != len(names) {
		t.Fatalf("root List = %d entries, want %d", len(entries), len(names))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatal("merged root listing not sorted")
		}
	}
}

func mustNoErr(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferential replays random operation traces against the in-memory
// oracle model (see fstest.RunDifferential).
func TestDifferential(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		return newDifferentialFS(t)
	})
}

func newDifferentialFS(t *testing.T) fsapi.FileSystem {
	fs, _ := newFS(t, 4)
	return fs
}
