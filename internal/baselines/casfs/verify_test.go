package casfs

import (
	"context"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

func TestVerifyCleanTree(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/a"))
	mustNoErr(t, fs.Mkdir(ctx, "/a/b"))
	mustNoErr(t, fs.WriteFile(ctx, "/a/b/f1", []byte("one")))
	mustNoErr(t, fs.WriteFile(ctx, "/a/f2", []byte("two")))
	rep, err := fs.Verify(ctx)
	mustNoErr(t, err)
	if !rep.OK() {
		t.Fatalf("clean tree failed verification: %+v", rep)
	}
	if rep.Files != 2 || rep.Dirs != 3 { // root, /a, /a/b
		t.Fatalf("report = %+v, want 2 files, 3 dirs", rep)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	fs, c := newFS(t)
	ctx := context.Background()
	content := []byte("precious")
	mustNoErr(t, fs.WriteFile(ctx, "/f", content))
	// Corrupt the content block in place on every replica.
	key := fs.blockKey(objstore.ETag(content))
	for _, id := range c.Ring().Devices(key) {
		mustNoErr(t, c.Node(id).Put(key, []byte("tampered"), nil, time.Now()))
	}
	rep, err := fs.Verify(ctx)
	mustNoErr(t, err)
	if rep.OK() || len(rep.Corrupted) != 1 || rep.Corrupted[0] != "/f" {
		t.Fatalf("corruption not detected: %+v", rep)
	}
}

func TestVerifyDetectsMissingBlock(t *testing.T) {
	fs, c := newFS(t)
	ctx := context.Background()
	content := []byte("going missing")
	mustNoErr(t, fs.WriteFile(ctx, "/gone", content))
	mustNoErr(t, c.Delete(ctx, fs.blockKey(objstore.ETag(content))))
	rep, err := fs.Verify(ctx)
	mustNoErr(t, err)
	if rep.OK() || len(rep.Missing) != 1 || rep.Missing[0] != "/gone" {
		t.Fatalf("missing block not detected: %+v", rep)
	}
}
