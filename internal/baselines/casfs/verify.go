package casfs

import (
	"context"
	"fmt"
	"sort"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

// VerifyReport summarizes an integrity check.
type VerifyReport struct {
	Blocks    int      // reachable blocks checked
	Files     int      // file entries verified
	Dirs      int      // directory entries verified
	Corrupted []string // paths whose content hash does not match its key
	Missing   []string // paths whose referenced block is absent
}

// Verify walks the live tree from the root pointer and checks that every
// reachable block exists and that its content re-hashes to its key — the
// end-to-end integrity property content addressing gives for free
// (Venti's verifiable archival guarantee).
func (f *FS) Verify(ctx context.Context) (VerifyReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var rep VerifyReport
	if err := f.ensureRoot(ctx); err != nil {
		return rep, err
	}
	var walk func(hash, path string) error
	walk = func(hash, path string) error {
		data, _, err := f.store.Get(ctx, f.blockKey(hash))
		if err != nil {
			rep.Missing = append(rep.Missing, path)
			return nil
		}
		rep.Blocks++
		if objstore.ETag(data) != hash {
			rep.Corrupted = append(rep.Corrupted, path)
			return nil
		}
		entries, err := decodeDirBlock(data)
		if err != nil {
			return fmt.Errorf("casfs: %s: %w", path, err)
		}
		rep.Dirs++
		// Walk children in sorted name order so Missing/Corrupted keep a
		// deterministic order across runs (map iteration is randomized).
		names := make([]string, 0, len(entries))
		for name := range entries {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			e := entries[name]
			child := path + "/" + name
			if e.isDir {
				if err := walk(e.hash, child); err != nil {
					return err
				}
				continue
			}
			rep.Files++
			data, _, err := f.store.Get(ctx, f.blockKey(e.hash))
			if err != nil {
				rep.Missing = append(rep.Missing, child)
				continue
			}
			rep.Blocks++
			if objstore.ETag(data) != e.hash {
				rep.Corrupted = append(rep.Corrupted, child)
			}
		}
		return nil
	}
	err := walk(f.rootHash, "")
	return rep, err
}

// OK reports whether the verification found no problems.
func (r VerifyReport) OK() bool {
	return len(r.Corrupted) == 0 && len(r.Missing) == 0
}
