package casfs

import (
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

func newFS(t testing.TB) (*FS, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, cluster.ZeroProfile(), "alice", nil), c
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t)
		return fs
	})
}

func TestContentDeduplication(t *testing.T) {
	fs, c := newFS(t)
	ctx := context.Background()
	if err := fs.WriteFile(ctx, "/a", []byte("same-bytes")); err != nil {
		t.Fatal(err)
	}
	afterFirst := c.Stats().Objects
	if err := fs.WriteFile(ctx, "/b", []byte("same-bytes")); err != nil {
		t.Fatal(err)
	}
	// The second identical file adds only rewritten pointer blocks, not a
	// second content block: its hash key already exists.
	data, err := fs.ReadFile(ctx, "/b")
	if err != nil || string(data) != "same-bytes" {
		t.Fatalf("read = %q, %v", data, err)
	}
	// Root block changed (new object), content block did not.
	growth := c.Stats().Objects - afterFirst
	if growth > 1 {
		t.Fatalf("second identical write grew objects by %d, want <= 1 (dedup)", growth)
	}
}

func TestGetByHashO1(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	content := []byte("addressable")
	if err := fs.WriteFile(ctx, "/x", content); err != nil {
		t.Fatal(err)
	}
	data, err := fs.GetByHash(ctx, objstore.ETag(content))
	if err != nil || string(data) != "addressable" {
		t.Fatalf("GetByHash = %q, %v", data, err)
	}
}

func TestMutationRewritesChainToRoot(t *testing.T) {
	fs, c := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/a"))
	mustNoErr(t, fs.Mkdir(ctx, "/a/b"))
	mustNoErr(t, fs.Mkdir(ctx, "/a/b/c"))
	before := c.Stats().Puts
	mustNoErr(t, fs.WriteFile(ctx, "/a/b/c/leaf", []byte("x")))
	// Content block + 4 pointer blocks (c, b, a, root) + ROOT pointer.
	if got := c.Stats().Puts - before; got != 6 {
		t.Fatalf("deep write performed %d puts, want 6 (chain rewrite)", got)
	}
}

func TestCopySharesSubtreeBlocks(t *testing.T) {
	fs, c := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/src"))
	mustNoErr(t, fs.WriteFile(ctx, "/src/f", []byte("shared")))
	before := c.Stats().Copies
	mustNoErr(t, fs.Copy(ctx, "/src", "/dst"))
	if c.Stats().Copies != before {
		t.Fatal("CAS copy duplicated content blocks")
	}
	data, err := fs.ReadFile(ctx, "/dst/f")
	mustNoErr(t, err)
	if string(data) != "shared" {
		t.Fatalf("copied read = %q", data)
	}
	// Writing into the copy must not affect the source (copy-on-write).
	mustNoErr(t, fs.WriteFile(ctx, "/dst/f", []byte("changed")))
	data, err = fs.ReadFile(ctx, "/src/f")
	mustNoErr(t, err)
	if string(data) != "shared" {
		t.Fatalf("source after COW write = %q", data)
	}
}

func TestGCSweepReclaimsOrphanedBlocks(t *testing.T) {
	fs, c := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	mustNoErr(t, fs.WriteFile(ctx, "/d/f", []byte("going away")))
	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	swept, err := fs.GCSweep(ctx)
	mustNoErr(t, err)
	if swept == 0 {
		t.Fatal("GCSweep reclaimed nothing after rmdir")
	}
	// After the sweep only the live chain remains: root block + ROOT.
	if st := c.Stats(); st.Objects != 2 {
		t.Fatalf("objects after sweep = %d, want 2", st.Objects)
	}
	// A second sweep is a no-op.
	swept, err = fs.GCSweep(ctx)
	mustNoErr(t, err)
	if swept != 0 {
		t.Fatalf("second sweep reclaimed %d blocks", swept)
	}
}

func TestGCSweepKeepsLiveData(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/keep"))
	mustNoErr(t, fs.WriteFile(ctx, "/keep/f", []byte("live")))
	mustNoErr(t, fs.WriteFile(ctx, "/keep/f", []byte("live-v2"))) // orphan v1
	if _, err := fs.GCSweep(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(ctx, "/keep/f")
	mustNoErr(t, err)
	if string(data) != "live-v2" {
		t.Fatalf("live data lost by sweep: %q", data)
	}
}

func mustNoErr(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferential replays random operation traces against the in-memory
// oracle model (see fstest.RunDifferential).
func TestDifferential(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		return newDifferentialFS(t)
	})
}

func newDifferentialFS(t *testing.T) fsapi.FileSystem {
	fs, _ := newFS(t)
	return fs
}

func BenchmarkCASWriteFileDepth3(b *testing.B) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		b.Fatal(err)
	}
	fs := New(c, cluster.ZeroProfile(), "bench", nil)
	ctx := context.Background()
	for _, d := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := fs.Mkdir(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
	data := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i) // distinct content -> distinct hash
		data[1] = byte(i >> 8)
		data[2] = byte(i >> 16)
		if err := fs.WriteFile(ctx, fmt.Sprintf("/a/b/c/f%09d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}
