// Package casfs implements the Content Addressable Storage baseline of
// the paper's §2: a Venti/Foundation-style store where every block is
// located by the hash of its content, extended with Camlistore-style
// pointer blocks that pack child hashes into directory blocks to form a
// multi-layer hierarchical index.
//
// Content addressing makes access by hash O(1) and deduplicates identical
// content for free, but no block can be modified in place: any mutation
// re-hashes the changed directory block and every pointer block above it
// up to the root, which is why Table 1 charges directory operations O(N)-
// class costs. Orphaned blocks are immutable garbage reclaimed by a
// mark-and-sweep pass (GCSweep).
package casfs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

const dirMagic = "CASD/1"

// centry is one child reference inside a pointer block.
type centry struct {
	hash    string
	isDir   bool
	size    int64
	modNano int64
}

// FS is one account's content-addressed filesystem.
type FS struct {
	store   objstore.Store
	profile cluster.CostProfile
	account string
	clock   func() time.Time

	mu       sync.Mutex
	rootHash string
	// blocks registers every block key ever written, for mark-and-sweep.
	blocks map[string]bool
}

var _ fsapi.FileSystem = (*FS)(nil)

// New returns an empty content-addressed filesystem for one account.
func New(store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time) *FS {
	if clock == nil {
		clock = time.Now
	}
	return &FS{
		store:   store,
		profile: profile,
		account: account,
		clock:   clock,
		blocks:  make(map[string]bool),
	}
}

func (f *FS) blockKey(hash string) string { return "cas|" + f.account + "|" + hash }
func (f *FS) rootKey() string             { return "cas|" + f.account + "|ROOT" }

func encodeDirBlock(entries map[string]centry) []byte {
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(dirMagic)
	b.WriteByte('\n')
	for _, n := range names {
		e := entries[n]
		kind := "F"
		if e.isDir {
			kind = "D"
		}
		fmt.Fprintf(&b, "%s\t%s\t%s\t%d\t%d\n", strconv.Quote(n), e.hash, kind, e.size, e.modNano)
	}
	return []byte(b.String())
}

func decodeDirBlock(data []byte) (map[string]centry, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != dirMagic {
		return nil, fmt.Errorf("casfs: not a pointer block")
	}
	out := make(map[string]centry)
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("casfs: malformed pointer entry %q", line)
		}
		name, err := strconv.Unquote(fields[0])
		if err != nil {
			return nil, err
		}
		size, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, err
		}
		mod, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, err
		}
		out[name] = centry{hash: fields[1], isDir: fields[2] == "D", size: size, modNano: mod}
	}
	return out, nil
}

// putBlock stores a block under its content hash and returns the hash.
// Identical content lands on the same key: deduplication for free.
func (f *FS) putBlock(ctx context.Context, data []byte) (string, error) {
	hash := objstore.ETag(data)
	if err := f.store.Put(ctx, f.blockKey(hash), data, nil); err != nil {
		return "", err
	}
	f.blocks[f.blockKey(hash)] = true
	return hash, nil
}

func (f *FS) readDirBlock(ctx context.Context, hash string) (map[string]centry, error) {
	data, _, err := f.store.Get(ctx, f.blockKey(hash))
	if err != nil {
		return nil, err
	}
	return decodeDirBlock(data)
}

// ensureRoot creates the empty root pointer block on first use. Caller
// holds f.mu.
func (f *FS) ensureRoot(ctx context.Context) error {
	if f.rootHash != "" {
		return nil
	}
	hash, err := f.putBlock(ctx, encodeDirBlock(nil))
	if err != nil {
		return err
	}
	f.rootHash = hash
	return f.store.Put(ctx, f.rootKey(), []byte(hash), nil)
}

// level is one step of a resolved pointer-block chain.
type level struct {
	entries map[string]centry
	child   string // name of the next component inside entries
}

// resolveChain loads the pointer blocks from the root down to the parent
// of the last path component. comps must be non-empty; the returned chain
// has one level per component, where chain[i].entries is the block that
// should contain comps[i]. Caller holds f.mu.
func (f *FS) resolveChain(ctx context.Context, comps []string) ([]level, error) {
	if err := f.ensureRoot(ctx); err != nil {
		return nil, err
	}
	chain := make([]level, 0, len(comps))
	hash := f.rootHash
	for i, comp := range comps {
		entries, err := f.readDirBlock(ctx, hash)
		if err != nil {
			return nil, err
		}
		chain = append(chain, level{entries: entries, child: comp})
		if i == len(comps)-1 {
			break
		}
		e, ok := entries[comp]
		if !ok {
			return nil, fmt.Errorf("casfs: %s: %w", comp, fsapi.ErrNotFound)
		}
		if !e.isDir {
			return nil, fmt.Errorf("casfs: %s: %w", comp, fsapi.ErrNotDir)
		}
		hash = e.hash
	}
	return chain, nil
}

// rebuildChain writes the mutated bottom block and re-hashes every pointer
// block up to the root — the content-addressing tax on mutation. Caller
// holds f.mu; chain[len-1].entries must already hold the mutation.
func (f *FS) rebuildChain(ctx context.Context, chain []level) error {
	now := f.clock().UnixNano()
	childHash := ""
	for i := len(chain) - 1; i >= 0; i-- {
		if i < len(chain)-1 {
			// Point this block at the rewritten child block.
			e := chain[i].entries[chain[i].child]
			e.hash = childHash
			e.modNano = now
			chain[i].entries[chain[i].child] = e
		}
		hash, err := f.putBlock(ctx, encodeDirBlock(chain[i].entries))
		if err != nil {
			return err
		}
		childHash = hash
	}
	f.rootHash = childHash
	return f.store.Put(ctx, f.rootKey(), []byte(childHash), nil)
}

// Mkdir adds a pointer to a fresh empty block and rebuilds the chain.
func (f *FS) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("casfs: /: %w", fsapi.ErrExists)
	}
	comps, _ := fsapi.Components(p)
	f.mu.Lock()
	defer f.mu.Unlock()
	chain, err := f.resolveChain(ctx, comps)
	if err != nil {
		return err
	}
	leaf := &chain[len(chain)-1]
	if _, ok := leaf.entries[leaf.child]; ok {
		return fmt.Errorf("casfs: %s: %w", p, fsapi.ErrExists)
	}
	emptyHash, err := f.putBlock(ctx, encodeDirBlock(nil))
	if err != nil {
		return err
	}
	leaf.entries[leaf.child] = centry{hash: emptyHash, isDir: true, modNano: f.clock().UnixNano()}
	return f.rebuildChain(ctx, chain)
}

// WriteFile stores the content block by hash and rebuilds the chain.
func (f *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("casfs: /: %w", fsapi.ErrIsDir)
	}
	comps, _ := fsapi.Components(p)
	f.mu.Lock()
	defer f.mu.Unlock()
	chain, err := f.resolveChain(ctx, comps)
	if err != nil {
		return err
	}
	leaf := &chain[len(chain)-1]
	if e, ok := leaf.entries[leaf.child]; ok && e.isDir {
		return fmt.Errorf("casfs: %s: %w", p, fsapi.ErrIsDir)
	}
	hash, err := f.putBlock(ctx, data)
	if err != nil {
		return err
	}
	leaf.entries[leaf.child] = centry{hash: hash, size: int64(len(data)), modNano: f.clock().UnixNano()}
	return f.rebuildChain(ctx, chain)
}

// lookup resolves a cleaned non-root path to its entry. Caller holds f.mu.
func (f *FS) lookup(ctx context.Context, p string) (centry, error) {
	comps, _ := fsapi.Components(p)
	chain, err := f.resolveChain(ctx, comps)
	if err != nil {
		return centry{}, err
	}
	leaf := chain[len(chain)-1]
	e, ok := leaf.entries[leaf.child]
	if !ok {
		return centry{}, fmt.Errorf("casfs: %s: %w", p, fsapi.ErrNotFound)
	}
	return e, nil
}

// ReadFile fetches the content block named by the entry's hash.
func (f *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("casfs: /: %w", fsapi.ErrIsDir)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, err := f.lookup(ctx, p)
	if err != nil {
		return nil, err
	}
	if e.isDir {
		return nil, fmt.Errorf("casfs: %s: %w", p, fsapi.ErrIsDir)
	}
	data, _, err := f.store.Get(ctx, f.blockKey(e.hash))
	if err != nil {
		return nil, fmt.Errorf("casfs: %s: %w", p, fsapi.ErrNotFound)
	}
	return data, nil
}

// GetByHash is the O(1) content-addressed access of Table 1: callers that
// already hold a content hash skip the pointer-block walk entirely.
func (f *FS) GetByHash(ctx context.Context, hash string) ([]byte, error) {
	data, _, err := f.store.Get(ctx, f.blockKey(hash))
	return data, err
}

// Stat resolves the path through the pointer blocks.
func (f *FS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	if p == "/" {
		return fsapi.EntryInfo{Name: "/", IsDir: true}, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, err := f.lookup(ctx, p)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	_, name, _ := fsapi.Split(p)
	return fsapi.EntryInfo{Name: name, IsDir: e.isDir, Size: e.size, ModTime: time.Unix(0, e.modNano)}, nil
}

// Remove deletes the entry and rebuilds the chain; the content block
// becomes garbage for GCSweep.
func (f *FS) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	comps, compErr := fsapi.Components(p)
	if compErr != nil || len(comps) == 0 {
		return fmt.Errorf("casfs: %s: %w", p, fsapi.ErrIsDir)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	chain, err := f.resolveChain(ctx, comps)
	if err != nil {
		return err
	}
	leaf := &chain[len(chain)-1]
	e, ok := leaf.entries[leaf.child]
	if !ok {
		return fmt.Errorf("casfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if e.isDir {
		return fmt.Errorf("casfs: %s: %w", p, fsapi.ErrIsDir)
	}
	delete(leaf.entries, leaf.child)
	return f.rebuildChain(ctx, chain)
}

// List reads the directory's pointer block — O(m), with metadata free.
func (f *FS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var hash string
	if p == "/" {
		if err := f.ensureRoot(ctx); err != nil {
			return nil, err
		}
		hash = f.rootHash
	} else {
		e, err := f.lookup(ctx, p)
		if err != nil {
			return nil, err
		}
		if !e.isDir {
			return nil, fmt.Errorf("casfs: %s: %w", p, fsapi.ErrNotDir)
		}
		hash = e.hash
	}
	entries, err := f.readDirBlock(ctx, hash)
	if err != nil {
		return nil, err
	}
	out := make([]fsapi.EntryInfo, 0, len(entries))
	for name, e := range entries {
		info := fsapi.EntryInfo{Name: name, IsDir: e.isDir}
		if detail {
			info.Size = e.size
			info.ModTime = time.Unix(0, e.modNano)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Rmdir detaches the subtree's pointer; the subtree blocks become garbage.
func (f *FS) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("casfs: /: %w", fsapi.ErrInvalidPath)
	}
	comps, _ := fsapi.Components(p)
	f.mu.Lock()
	defer f.mu.Unlock()
	chain, err := f.resolveChain(ctx, comps)
	if err != nil {
		return err
	}
	leaf := &chain[len(chain)-1]
	e, ok := leaf.entries[leaf.child]
	if !ok {
		return fmt.Errorf("casfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if !e.isDir {
		return fmt.Errorf("casfs: %s: %w", p, fsapi.ErrNotDir)
	}
	delete(leaf.entries, leaf.child)
	return f.rebuildChain(ctx, chain)
}

// Move detaches the subtree pointer and reattaches it elsewhere; the
// subtree's blocks are shared, only the two chains are rebuilt.
func (f *FS) Move(ctx context.Context, src, dst string) error {
	return f.relink(ctx, src, dst, true)
}

// Copy points a second entry at the same subtree hash — content blocks
// deduplicate perfectly under content addressing.
func (f *FS) Copy(ctx context.Context, src, dst string) error {
	return f.relink(ctx, src, dst, false)
}

func (f *FS) relink(ctx context.Context, src, dst string, unlinkSrc bool) error {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return err
	}
	if srcP == "/" {
		return fmt.Errorf("casfs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return fmt.Errorf("casfs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	srcEntry, err := f.lookup(ctx, srcP)
	if err != nil {
		return err
	}
	if _, err := f.lookup(ctx, dstP); err == nil {
		return fmt.Errorf("casfs: %s: %w", dstP, fsapi.ErrExists)
	}
	// Unlink first so the destination chain sees the post-removal root.
	if unlinkSrc {
		comps, _ := fsapi.Components(srcP)
		chain, err := f.resolveChain(ctx, comps)
		if err != nil {
			return err
		}
		delete(chain[len(chain)-1].entries, chain[len(chain)-1].child)
		if err := f.rebuildChain(ctx, chain); err != nil {
			return err
		}
	}
	dstComps, _ := fsapi.Components(dstP)
	chain, err := f.resolveChain(ctx, dstComps)
	if err != nil {
		return err
	}
	leaf := &chain[len(chain)-1]
	if _, ok := leaf.entries[leaf.child]; ok {
		return fmt.Errorf("casfs: %s: %w", dstP, fsapi.ErrExists)
	}
	srcEntry.modNano = f.clock().UnixNano()
	leaf.entries[leaf.child] = srcEntry
	return f.rebuildChain(ctx, chain)
}

// GCSweep reclaims unreferenced blocks with a mark-and-sweep from the
// root pointer. It returns the number of blocks deleted.
func (f *FS) GCSweep(ctx context.Context) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.ensureRoot(ctx); err != nil {
		return 0, err
	}
	marked := map[string]bool{}
	var mark func(hash string, isDir bool) error
	mark = func(hash string, isDir bool) error {
		key := f.blockKey(hash)
		if marked[key] {
			return nil
		}
		marked[key] = true
		if !isDir {
			return nil
		}
		entries, err := f.readDirBlock(ctx, hash)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := mark(e.hash, e.isDir); err != nil {
				return err
			}
		}
		return nil
	}
	if err := mark(f.rootHash, true); err != nil {
		return 0, err
	}
	swept := 0
	for key := range f.blocks {
		if marked[key] {
			continue
		}
		if err := f.store.Delete(ctx, key); err == nil {
			swept++
		}
		delete(f.blocks, key)
	}
	return swept, nil
}
