package snapshotfs

import (
	"context"
	"errors"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

func TestRestoreRoundTrip(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile(), 32)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/docs/a.txt", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/docs/b.txt", []byte("bravo-bravo")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// A second snapshot after more changes: restore must pick the newest.
	if err := fs.WriteFile(ctx, "/docs/c.txt", []byte("charlie")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "/docs/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(ctx, c, cluster.ZeroProfile(), "alice", nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Stat(ctx, "/docs/a.txt"); err == nil {
		t.Fatal("restored snapshot resurrected a removed file")
	}
	for path, want := range map[string]string{
		"/docs/b.txt": "bravo-bravo",
		"/docs/c.txt": "charlie",
	} {
		data, err := restored.ReadFile(ctx, path)
		if err != nil {
			t.Fatalf("restored read %s: %v", path, err)
		}
		if string(data) != want {
			t.Fatalf("restored %s = %q, want %q", path, data, want)
		}
	}
	// The restored instance continues working: new writes get fresh
	// segment numbers that do not clobber old ones.
	if err := restored.WriteFile(ctx, "/docs/d.txt", []byte("delta")); err != nil {
		t.Fatal(err)
	}
	if err := restored.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := restored.ReadFile(ctx, "/docs/b.txt")
	if err != nil || string(data) != "bravo-bravo" {
		t.Fatalf("old segment damaged after post-restore writes: %q, %v", data, err)
	}
}

func TestRestoreWithoutSnapshot(t *testing.T) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(context.Background(), c, cluster.ZeroProfile(), "ghost", nil, 0); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("Restore on empty cloud = %v, want ErrNotFound", err)
	}
}

func TestParseMetaLogErrors(t *testing.T) {
	for _, bad := range []string{
		"onefield\n",
		"\"p\"\tnotabool\t1\t1\t\"s\"\t0\n",
		"\"p\"\ttrue\tx\t1\t\"s\"\t0\n",
		"\"p\"\ttrue\t1\tx\t\"s\"\t0\n",
		"\"p\"\ttrue\t1\t1\tunquoted\t0\n",
		"\"p\"\ttrue\t1\t1\t\"s\"\tx\n",
		"unquoted\ttrue\t1\t1\t\"s\"\t0\n",
	} {
		if _, _, err := parseMetaLog([]byte(bad)); err == nil {
			t.Errorf("parseMetaLog(%q) accepted", bad)
		}
	}
}
