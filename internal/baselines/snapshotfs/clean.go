package snapshotfs

import (
	"context"
	"errors"
	"fmt"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

// CleanReport summarizes one segment-cleaning pass.
type CleanReport struct {
	SegmentsScanned int
	SegmentsDeleted int
	SegmentsPacked  int   // segments rewritten because they held live data
	BytesReclaimed  int64 // dead bytes dropped from the store
}

// Clean is Cumulus's segment cleaning: overwrites and deletions leave
// dead bytes inside sealed segments, and the cleaner repacks any segment
// whose dead fraction has reached threshold (0..1), rewriting its live
// file contents into the current segment and deleting the old object.
// Fully-dead segments are always deleted. A threshold of 0 repacks on
// the first dead byte; 1 never repacks, only deleting fully-dead
// segments.
func (f *FS) Clean(ctx context.Context, threshold float64) (CleanReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var rep CleanReport
	// Live bytes per sealed segment.
	liveBytes := map[string]int64{}
	users := map[string][]string{} // segment -> paths of live entries
	for p, e := range f.entries {
		if e.isDir || e.segKey == f.currentSegKey() {
			continue
		}
		liveBytes[e.segKey] += e.size
		users[e.segKey] = append(users[e.segKey], p)
	}
	// Scan every sealed segment that exists in the store.
	for seq := 0; seq < f.segSeq; seq++ {
		segKey := f.segKey(seq)
		info, err := f.store.Head(ctx, segKey)
		if errors.Is(err, objstore.ErrNotFound) {
			continue
		}
		if err != nil {
			return rep, err
		}
		rep.SegmentsScanned++
		live := liveBytes[segKey]
		dead := info.Size - live
		if dead <= 0 {
			continue
		}
		deadFrac := float64(dead) / float64(info.Size)
		if live > 0 && deadFrac < threshold {
			continue // still dense enough
		}
		if live > 0 {
			// Repack live contents into the current segment buffer.
			seg, _, err := f.store.Get(ctx, segKey)
			if err != nil {
				return rep, err
			}
			for _, p := range users[segKey] {
				e := f.entries[p]
				if e.offset+e.size > int64(len(seg)) {
					return rep, fmt.Errorf("snapshotfs: segment %s truncated", segKey)
				}
				newOff := int64(len(f.segBuf))
				f.segBuf = append(f.segBuf, seg[e.offset:e.offset+e.size]...)
				e.segKey = f.currentSegKey()
				e.offset = newOff
				f.entries[p] = e
			}
			rep.SegmentsPacked++
		}
		if err := f.store.Delete(ctx, segKey); err != nil {
			return rep, err
		}
		rep.SegmentsDeleted++
		rep.BytesReclaimed += dead
	}
	// Seal the repacked data so it is durable.
	if len(f.segBuf) >= f.segTarget {
		if err := f.sealSegment(ctx); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
