package snapshotfs

import (
	"context"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
)

func TestCleanReclaimsDeadSegments(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile(), 8)
	ctx := context.Background()
	// Two files fill one segment each (8-byte target).
	mustOK(t, fs.WriteFile(ctx, "/a", []byte("AAAAAAAA")))
	mustOK(t, fs.WriteFile(ctx, "/b", []byte("BBBBBBBB")))
	if st := c.Stats(); st.Objects != 2 {
		t.Fatalf("objects = %d, want 2 segments", st.Objects)
	}
	// Delete one file: its segment is now fully dead.
	mustOK(t, fs.Remove(ctx, "/a"))
	rep, err := fs.Clean(ctx, 0)
	mustOK(t, err)
	if rep.SegmentsDeleted != 1 || rep.BytesReclaimed != 8 {
		t.Fatalf("report = %+v", rep)
	}
	if st := c.Stats(); st.Objects != 1 {
		t.Fatalf("objects after clean = %d, want 1", st.Objects)
	}
	// Survivor still readable.
	data, err := fs.ReadFile(ctx, "/b")
	mustOK(t, err)
	if string(data) != "BBBBBBBB" {
		t.Fatalf("survivor = %q", data)
	}
}

func TestCleanRepacksPartiallyDeadSegments(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile(), 8)
	ctx := context.Background()
	// Two 4-byte files share one 8-byte segment.
	mustOK(t, fs.WriteFile(ctx, "/keep", []byte("KKKK")))
	mustOK(t, fs.WriteFile(ctx, "/dead", []byte("DDDD")))
	mustOK(t, fs.Remove(ctx, "/dead"))
	rep, err := fs.Clean(ctx, 0.5) // 50% dead reaches the threshold
	mustOK(t, err)
	if rep.SegmentsPacked != 1 || rep.SegmentsDeleted != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.BytesReclaimed != 4 {
		t.Fatalf("reclaimed %d bytes, want 4", rep.BytesReclaimed)
	}
	// The live file survived the repack (now served from the new buffer
	// or segment).
	data, err := fs.ReadFile(ctx, "/keep")
	mustOK(t, err)
	if string(data) != "KKKK" {
		t.Fatalf("repacked read = %q", data)
	}
	// The old half-dead segment object is gone.
	if _, err := c.Head(ctx, fs.segKey(0)); err == nil {
		t.Fatal("repacked segment object still in the store")
	}
	// Checkpoint then reread to force the sealed-segment path.
	mustOK(t, fs.Checkpoint(ctx))
	data, err = fs.ReadFile(ctx, "/keep")
	mustOK(t, err)
	if string(data) != "KKKK" {
		t.Fatalf("post-checkpoint read = %q", data)
	}
}

func TestCleanThresholdSkipsDenseSegments(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile(), 16)
	ctx := context.Background()
	// 12 live + 4 dead bytes in one segment: 75% live.
	mustOK(t, fs.WriteFile(ctx, "/a", []byte("111111")))
	mustOK(t, fs.WriteFile(ctx, "/b", []byte("222222")))
	mustOK(t, fs.WriteFile(ctx, "/c", []byte("3333")))
	mustOK(t, fs.Remove(ctx, "/c"))
	// 25% dead: below a 0.3 threshold the segment is left alone.
	rep, err := fs.Clean(ctx, 0.3)
	mustOK(t, err)
	if rep.SegmentsPacked != 0 || rep.SegmentsDeleted != 0 {
		t.Fatalf("dense segment cleaned at threshold 0.3: %+v", rep)
	}
	// At a 0.2 threshold the 25% dead segment is repacked.
	rep, err = fs.Clean(ctx, 0.2)
	mustOK(t, err)
	if rep.SegmentsPacked != 1 || rep.SegmentsDeleted != 1 {
		t.Fatalf("expected repack at 25%% dead with threshold 0.2: %+v", rep)
	}
	// Nothing left to clean.
	rep, err = fs.Clean(ctx, 0)
	mustOK(t, err)
	if rep.SegmentsPacked != 0 || rep.SegmentsDeleted != 0 {
		t.Fatalf("clean not idempotent: %+v", rep)
	}
}

func mustOK(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
