// Package snapshotfs implements the Compressed Snapshot baseline — the
// Cumulus design of the paper's §2 and Figure 1a.
//
// File contents are packed into segment objects; the directory structure
// is flattened into a one-dimensional metadata log. The combination is a
// Compressed Snapshot stored in the object cloud. The layout is excellent
// for whole-filesystem backup and restore, but any operation against the
// stored snapshot must traverse the metadata log to locate anything:
// random file access, LIST, MOVE, RMDIR and COPY are all O(N) (Table 1),
// while MKDIR and WRITE are cheap appends to the incremental log.
//
// The writer keeps the current snapshot view in client memory (as Cumulus
// does during a backup run); the O(N) virtual-time charges model
// operating against the stored snapshot, one metadata-log record scanned
// per file in the filesystem.
package snapshotfs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// entry is one metadata-log record of the current snapshot.
type entry struct {
	isDir   bool
	size    int64
	modTime time.Time
	segKey  string // segment object holding the content (files)
	offset  int64  // content offset within the segment
}

// FS is one account's Cumulus-style snapshot filesystem.
type FS struct {
	store     objstore.Store
	profile   cluster.CostProfile
	account   string
	clock     func() time.Time
	segTarget int

	mu      sync.Mutex
	entries map[string]entry
	segBuf  []byte
	segSeq  int
	metaSeq int
}

var _ fsapi.FileSystem = (*FS)(nil)

// New returns an empty snapshot filesystem. segTarget is the segment size
// at which the current segment is sealed and uploaded (default 64 KiB).
func New(store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time, segTarget int) *FS {
	if clock == nil {
		clock = time.Now
	}
	if segTarget <= 0 {
		segTarget = 64 << 10
	}
	return &FS{
		store:     store,
		profile:   profile,
		account:   account,
		clock:     clock,
		segTarget: segTarget,
		entries:   make(map[string]entry),
	}
}

func (f *FS) segKey(seq int) string {
	return "cum|" + f.account + "|seg" + strconv.Itoa(seq)
}

func (f *FS) metaKey(seq int) string {
	return "cum|" + f.account + "|meta" + strconv.Itoa(seq)
}

// chargeLogScan prices one full traversal of the metadata log — the O(N)
// term that dominates every snapshot operation except appends.
func (f *FS) chargeLogScan(ctx context.Context) {
	vclock.Charge(ctx, time.Duration(len(f.entries))*f.profile.DBScan)
}

// currentSegKey returns the key the in-progress segment will be stored
// under.
func (f *FS) currentSegKey() string { return f.segKey(f.segSeq) }

// sealSegment uploads the in-progress segment and starts a new one.
// Caller holds f.mu.
func (f *FS) sealSegment(ctx context.Context) error {
	if len(f.segBuf) == 0 {
		return nil
	}
	if err := f.store.Put(ctx, f.currentSegKey(), f.segBuf, nil); err != nil {
		return err
	}
	f.segSeq++
	f.segBuf = nil
	return nil
}

// Checkpoint seals the current segment and uploads a fresh metadata log —
// completing one Compressed Snapshot. Restore-from-cloud starts from the
// latest metadata log object.
func (f *FS) Checkpoint(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.sealSegment(ctx); err != nil {
		return err
	}
	var b []byte
	paths := make([]string, 0, len(f.entries))
	for p := range f.entries {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		e := f.entries[p]
		b = append(b, fmt.Sprintf("%q\t%v\t%d\t%d\t%q\t%d\n",
			p, e.isDir, e.size, e.modTime.UnixNano(), e.segKey, e.offset)...)
	}
	f.metaSeq++
	return f.store.Put(ctx, f.metaKey(f.metaSeq), b, nil)
}

// Mkdir appends one record to the incremental metadata log — O(1).
func (f *FS) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("snapshotfs: /: %w", fsapi.ErrExists)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkParentLocked(p); err != nil {
		return err
	}
	if _, ok := f.entries[p]; ok {
		return fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrExists)
	}
	vclock.Charge(ctx, f.profile.DBWrite) // one incremental-log append
	f.entries[p] = entry{isDir: true, modTime: f.clock()}
	return nil
}

func (f *FS) checkParentLocked(p string) error {
	dir, _, err := fsapi.Split(p)
	if err != nil {
		return err
	}
	if dir == "/" {
		return nil
	}
	e, ok := f.entries[dir]
	if !ok {
		return fmt.Errorf("snapshotfs: %s: %w", dir, fsapi.ErrNotFound)
	}
	if !e.isDir {
		return fmt.Errorf("snapshotfs: %s: %w", dir, fsapi.ErrNotDir)
	}
	return nil
}

// WriteFile appends the content to the current segment and a record to
// the incremental log — an O(1) append, the one operation backup systems
// optimize for.
func (f *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("snapshotfs: /: %w", fsapi.ErrIsDir)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkParentLocked(p); err != nil {
		return err
	}
	if e, ok := f.entries[p]; ok && e.isDir {
		return fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrIsDir)
	}
	off := int64(len(f.segBuf))
	f.segBuf = append(f.segBuf, data...)
	f.entries[p] = entry{
		size: int64(len(data)), modTime: f.clock(),
		segKey: f.currentSegKey(), offset: off,
	}
	if len(f.segBuf) >= f.segTarget {
		return f.sealSegment(ctx)
	}
	return nil
}

// ReadFile locates the record by traversing the metadata log (O(N)) and
// extracts the content from its segment.
func (f *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("snapshotfs: /: %w", fsapi.ErrIsDir)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.chargeLogScan(ctx)
	e, ok := f.entries[p]
	if !ok {
		return nil, fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if e.isDir {
		return nil, fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrIsDir)
	}
	if e.segKey == f.currentSegKey() && e.offset < int64(len(f.segBuf)) {
		// Content still in the unsealed segment buffer.
		out := make([]byte, e.size)
		copy(out, f.segBuf[e.offset:e.offset+e.size])
		return out, nil
	}
	seg, _, err := f.store.Get(ctx, e.segKey)
	if err != nil {
		return nil, fmt.Errorf("snapshotfs: %s: segment: %w", p, err)
	}
	if e.offset+e.size > int64(len(seg)) {
		return nil, fmt.Errorf("snapshotfs: %s: segment truncated", p)
	}
	out := make([]byte, e.size)
	copy(out, seg[e.offset:e.offset+e.size])
	return out, nil
}

// Stat traverses the metadata log to locate the record — the O(N) random
// file access of Table 1.
func (f *FS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	if p == "/" {
		return fsapi.EntryInfo{Name: "/", IsDir: true}, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.chargeLogScan(ctx)
	e, ok := f.entries[p]
	if !ok {
		return fsapi.EntryInfo{}, fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrNotFound)
	}
	_, name, _ := fsapi.Split(p)
	return fsapi.EntryInfo{Name: name, IsDir: e.isDir, Size: e.size, ModTime: e.modTime}, nil
}

// Remove drops the record; segment bytes are reclaimed only by segment
// cleaning (not modeled) — O(1) log append.
func (f *FS) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[p]
	if !ok {
		return fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if e.isDir {
		return fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrIsDir)
	}
	delete(f.entries, p)
	return nil
}

// List traverses the whole metadata log to find the directory's children —
// O(N).
func (f *FS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if p != "/" {
		e, ok := f.entries[p]
		if !ok {
			return nil, fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrNotFound)
		}
		if !e.isDir {
			return nil, fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrNotDir)
		}
	}
	f.chargeLogScan(ctx)
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	var out []fsapi.EntryInfo
	for cand, e := range f.entries {
		if len(cand) <= len(prefix) || cand[:len(prefix)] != prefix {
			continue
		}
		rest := cand[len(prefix):]
		if indexByte(rest, '/') >= 0 {
			continue
		}
		info := fsapi.EntryInfo{Name: rest, IsDir: e.isDir}
		if detail {
			info.Size = e.size
			info.ModTime = e.modTime
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Rmdir rewrites the flattened directory list without the subtree — O(N).
func (f *FS) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("snapshotfs: /: %w", fsapi.ErrInvalidPath)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[p]
	if !ok {
		return fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if !e.isDir {
		return fmt.Errorf("snapshotfs: %s: %w", p, fsapi.ErrNotDir)
	}
	f.chargeLogScan(ctx)
	for cand := range f.entries {
		if cand == p || fsapi.IsAncestor(p, cand) {
			delete(f.entries, cand)
		}
	}
	return nil
}

// Move rewrites every affected record in the flattened list — O(N).
func (f *FS) Move(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.checkSrcDst(src, dst)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkMovePairLocked(srcP, dstP); err != nil {
		return err
	}
	f.chargeLogScan(ctx)
	moves := map[string]string{}
	for cand := range f.entries {
		if cand == srcP || fsapi.IsAncestor(srcP, cand) {
			moves[cand] = dstP + cand[len(srcP):]
		}
	}
	for from, to := range moves {
		f.entries[to] = f.entries[from]
		delete(f.entries, from)
	}
	return nil
}

// Copy duplicates the records; segment content is shared (snapshots are
// content-immutable) — O(N) log traversal.
func (f *FS) Copy(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.checkSrcDst(src, dst)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkMovePairLocked(srcP, dstP); err != nil {
		return err
	}
	f.chargeLogScan(ctx)
	copies := map[string]entry{}
	for cand, e := range f.entries {
		if cand == srcP || fsapi.IsAncestor(srcP, cand) {
			copies[dstP+cand[len(srcP):]] = e
		}
	}
	for to, e := range copies {
		f.entries[to] = e
	}
	return nil
}

func (f *FS) checkSrcDst(src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fmt.Errorf("snapshotfs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fmt.Errorf("snapshotfs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	return srcP, dstP, nil
}

func (f *FS) checkMovePairLocked(srcP, dstP string) error {
	if _, ok := f.entries[srcP]; !ok {
		return fmt.Errorf("snapshotfs: %s: %w", srcP, fsapi.ErrNotFound)
	}
	if _, ok := f.entries[dstP]; ok {
		return fmt.Errorf("snapshotfs: %s: %w", dstP, fsapi.ErrExists)
	}
	return f.checkParentLocked(dstP)
}

// Len reports the number of metadata-log records (for tests).
func (f *FS) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}
