package snapshotfs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

func newFS(t testing.TB, profile cluster.CostProfile, segTarget int) (*FS, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, profile, "alice", nil, segTarget), c
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t, cluster.ZeroProfile(), 0)
		return fs
	})
}

func TestConformanceTinySegments(t *testing.T) {
	// A 1-byte segment target forces a seal on every write, covering the
	// sealed-segment read path.
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t, cluster.ZeroProfile(), 1)
		return fs
	})
}

func TestSegmentPacking(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile(), 10)
	ctx := context.Background()
	// Three 4-byte files: first two fill a 10-byte segment (sealed on the
	// write that crosses the target), third starts the next.
	for i := 0; i < 3; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/f%d", i), []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	// Sealed segments become objects; unsealed content stays client-side.
	if st := c.Stats(); st.Objects != 1 {
		t.Fatalf("objects = %d, want 1 sealed segment", st.Objects)
	}
	for i := 0; i < 3; i++ {
		data, err := fs.ReadFile(ctx, fmt.Sprintf("/f%d", i))
		if err != nil || string(data) != "abcd" {
			t.Fatalf("ReadFile(f%d) = %q, %v", i, data, err)
		}
	}
}

func TestCheckpointProducesSnapshot(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile(), 1<<20)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/docs/a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// One sealed segment + one metadata log object.
	if st := c.Stats(); st.Objects != 2 {
		t.Fatalf("objects after checkpoint = %d, want 2", st.Objects)
	}
	// Content must be servable from the sealed segment.
	data, err := fs.ReadFile(ctx, "/docs/a")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read after checkpoint = %q, %v", data, err)
	}
}

func TestAccessCostLinearInN(t *testing.T) {
	fs, _ := newFS(t, cluster.SwiftProfile(), 0)
	ctx := context.Background()
	if err := fs.WriteFile(ctx, "/probe", []byte("x")); err != nil {
		t.Fatal(err)
	}
	cost := func() time.Duration {
		tr := vclock.NewTracker()
		if _, err := fs.Stat(vclock.With(ctx, tr), "/probe"); err != nil {
			t.Fatal(err)
		}
		return tr.Elapsed()
	}
	small := cost()
	for i := 0; i < 1000; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/bulk%04d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	large := cost()
	if large < 100*small {
		t.Fatalf("snapshot access cost not O(N): %v -> %v", small, large)
	}
}

func TestMkdirCostConstant(t *testing.T) {
	fs, _ := newFS(t, cluster.SwiftProfile(), 0)
	ctx := context.Background()
	cost := func(name string) time.Duration {
		tr := vclock.NewTracker()
		if err := fs.Mkdir(vclock.With(ctx, tr), name); err != nil {
			t.Fatal(err)
		}
		return tr.Elapsed()
	}
	first := cost("/d0")
	for i := 0; i < 500; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/d0/f%03d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	later := cost("/d1")
	// MKDIR is an O(1) append regardless of filesystem size (Table 1).
	if later != first {
		t.Fatalf("MKDIR cost changed with N: %v -> %v", first, later)
	}
}

func TestCopySharesSegments(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile(), 4)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/s"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/s/f", []byte("datadata")); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if err := fs.Copy(ctx, "/s", "/t"); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	// Snapshot COPY duplicates metadata records only; no new segments.
	if after.Puts != before.Puts || after.Copies != before.Copies {
		t.Fatal("snapshot COPY touched the object store")
	}
	data, err := fs.ReadFile(ctx, "/t/f")
	if err != nil || string(data) != "datadata" {
		t.Fatalf("copied read = %q, %v", data, err)
	}
}

// TestDifferential replays random operation traces against the in-memory
// oracle model (see fstest.RunDifferential).
func TestDifferential(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		return newDifferentialFS(t)
	})
}

func newDifferentialFS(t *testing.T) fsapi.FileSystem {
	fs, _ := newFS(t, cluster.ZeroProfile(), 64)
	return fs
}
