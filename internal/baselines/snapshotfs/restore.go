package snapshotfs

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// Restore rebuilds a filesystem view from the newest Compressed Snapshot
// in the cloud — the whole-filesystem retrieval Cumulus is designed for
// (and the one operation where the snapshot layout shines, §2). It scans
// metadata-log objects from the given sequence downward, loads the newest
// one, and returns a filesystem whose reads are served from the stored
// segments.
func Restore(ctx context.Context, store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time, segTarget int) (*FS, error) {
	f := New(store, profile, account, clock, segTarget)
	// Find the newest metadata log by probing upward from 1.
	newest := 0
	for seq := 1; ; seq++ {
		if _, err := store.Head(ctx, f.metaKey(seq)); err != nil {
			if errors.Is(err, objstore.ErrNotFound) {
				break
			}
			return nil, err
		}
		newest = seq
	}
	if newest == 0 {
		return nil, fmt.Errorf("snapshotfs: no snapshot found for %q: %w", account, objstore.ErrNotFound)
	}
	data, _, err := store.Get(ctx, f.metaKey(newest))
	if err != nil {
		return nil, err
	}
	entries, maxSeg, err := parseMetaLog(data)
	if err != nil {
		return nil, fmt.Errorf("snapshotfs: snapshot %d corrupt: %w", newest, err)
	}
	f.entries = entries
	f.metaSeq = newest
	f.segSeq = maxSeg + 1 // future segments must not collide
	return f, nil
}

// parseMetaLog decodes a metadata-log body and reports the largest
// segment sequence number referenced.
func parseMetaLog(data []byte) (map[string]entry, int, error) {
	out := make(map[string]entry)
	maxSeg := 0
	for i, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 6 {
			return nil, 0, fmt.Errorf("line %d: %d fields", i+1, len(fields))
		}
		path, err := strconv.Unquote(fields[0])
		if err != nil {
			return nil, 0, fmt.Errorf("line %d path: %w", i+1, err)
		}
		isDir, err := strconv.ParseBool(fields[1])
		if err != nil {
			return nil, 0, fmt.Errorf("line %d isDir: %w", i+1, err)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d size: %w", i+1, err)
		}
		mod, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d mtime: %w", i+1, err)
		}
		segKey, err := strconv.Unquote(fields[4])
		if err != nil {
			return nil, 0, fmt.Errorf("line %d segment: %w", i+1, err)
		}
		off, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d offset: %w", i+1, err)
		}
		out[path] = entry{isDir: isDir, size: size, modTime: time.Unix(0, mod), segKey: segKey, offset: off}
		if j := strings.LastIndex(segKey, "seg"); j >= 0 {
			if n, err := strconv.Atoi(segKey[j+3:]); err == nil && n > maxSeg {
				maxSeg = n
			}
		}
	}
	return out, maxSeg, nil
}
