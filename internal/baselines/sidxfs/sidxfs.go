// Package sidxfs implements the Single Index Server baseline of the
// paper's §2: the GFS/HDFS architecture where one central index server
// (the namenode) keeps the entire filesystem tree for the storage cluster
// and leaves refer to content objects in the object cloud.
//
// Metadata operations are fast — the namenode answers MKDIR/RMDIR/MOVE in
// O(1) and LIST in O(m) from memory — but every request funnels through
// the single server, which is the scalability ceiling Table 1 notes
// ("Limited") and the reason mainstream cloud storage services avoid the
// design. Each namenode visit charges one IndexRead (plus IndexCommit for
// mutations); inode lookups walk d levels in namenode memory, charged one
// IndexRecord per level.
package sidxfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// inode is one namenode table entry.
type inode struct {
	id       int64
	isDir    bool
	size     int64
	modTime  time.Time
	children map[string]int64 // name -> inode id (directories)
}

// FS is one account's filesystem through a single namenode.
type FS struct {
	store   objstore.Store
	profile cluster.CostProfile
	account string
	clock   func() time.Time

	mu     sync.RWMutex
	inodes map[int64]*inode
	nextID int64
}

var _ fsapi.FileSystem = (*FS)(nil)

const rootID int64 = 1

// New returns an empty single-index filesystem for one account.
func New(store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time) *FS {
	if clock == nil {
		clock = time.Now
	}
	f := &FS{
		store:   store,
		profile: profile,
		account: account,
		clock:   clock,
		inodes:  map[int64]*inode{rootID: {id: rootID, isDir: true, children: map[string]int64{}}},
		nextID:  rootID + 1,
	}
	return f
}

func (f *FS) objKey(id int64) string {
	return "si|" + f.account + "|" + strconv.FormatInt(id, 10)
}

// chargeVisit prices one namenode round trip plus the in-memory walk.
func (f *FS) chargeVisit(ctx context.Context, levels int) {
	vclock.Charge(ctx, f.profile.IndexRead+time.Duration(levels)*f.profile.IndexRecord)
}

// walk resolves a cleaned path. Caller holds a lock.
func (f *FS) walk(p string) (*inode, error) {
	n := f.inodes[rootID]
	if p == "/" {
		return n, nil
	}
	for _, comp := range strings.Split(p[1:], "/") {
		if !n.isDir {
			return nil, fmt.Errorf("sidxfs: %w", fsapi.ErrNotDir)
		}
		id, ok := n.children[comp]
		if !ok {
			return nil, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrNotFound)
		}
		n = f.inodes[id]
	}
	return n, nil
}

func (f *FS) walkParent(p string) (*inode, string, error) {
	dir, name, err := fsapi.Split(p)
	if err != nil {
		return nil, "", err
	}
	parent, err := f.walk(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir {
		return nil, "", fmt.Errorf("sidxfs: %s: %w", dir, fsapi.ErrNotDir)
	}
	return parent, name, nil
}

// Mkdir commits one namespace record — O(1).
func (f *FS) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("sidxfs: /: %w", fsapi.ErrExists)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.walkParent(p)
	if err != nil {
		return err
	}
	f.chargeVisit(ctx, fsapi.Depth(p))
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrExists)
	}
	id := f.nextID
	f.nextID++
	f.inodes[id] = &inode{id: id, isDir: true, modTime: f.clock(), children: map[string]int64{}}
	parent.children[name] = id
	vclock.Charge(ctx, f.profile.IndexCommit)
	return nil
}

// WriteFile stores the content object and commits the inode.
func (f *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("sidxfs: /: %w", fsapi.ErrIsDir)
	}
	f.mu.Lock()
	parent, name, err := f.walkParent(p)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	f.chargeVisit(ctx, fsapi.Depth(p))
	var n *inode
	if id, ok := parent.children[name]; ok {
		n = f.inodes[id]
		if n.isDir {
			f.mu.Unlock()
			return fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrIsDir)
		}
	} else {
		id := f.nextID
		f.nextID++
		n = &inode{id: id, modTime: f.clock()}
		f.inodes[id] = n
		parent.children[name] = id
	}
	id := n.id
	f.mu.Unlock()

	if err := f.store.Put(ctx, f.objKey(id), data, nil); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n.size = int64(len(data))
	n.modTime = f.clock()
	vclock.Charge(ctx, f.profile.IndexCommit)
	return nil
}

// ReadFile resolves through the namenode and fetches the content object.
func (f *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("sidxfs: /: %w", fsapi.ErrIsDir)
	}
	id, err := f.fileID(ctx, p)
	if err != nil {
		return nil, err
	}
	data, _, err := f.store.Get(ctx, f.objKey(id))
	if err != nil {
		return nil, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrNotFound)
	}
	return data, nil
}

// fileID resolves a cleaned file path to its inode id under the read
// lock, charging the namenode visit.
func (f *FS) fileID(ctx context.Context, p string) (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.walk(p)
	if err != nil {
		return 0, err
	}
	f.chargeVisit(ctx, fsapi.Depth(p))
	if n.isDir {
		return 0, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrIsDir)
	}
	return n.id, nil
}

// Stat is one namenode visit walking d levels in memory — the O(d) file
// access of Table 1.
func (f *FS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.walk(p)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	f.chargeVisit(ctx, fsapi.Depth(p))
	name := "/"
	if p != "/" {
		_, name, _ = fsapi.Split(p)
	}
	return fsapi.EntryInfo{Name: name, IsDir: n.isDir, Size: n.size, ModTime: n.modTime}, nil
}

// Remove deletes one file inode and its content object.
func (f *FS) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("sidxfs: /: %w", fsapi.ErrIsDir)
	}
	id, err := f.unlinkFile(ctx, p)
	if err != nil {
		return err
	}
	if err := f.store.Delete(ctx, f.objKey(id)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	return nil
}

// unlinkFile removes the file inode at cleaned path p under the write
// lock and returns its id so the caller can delete the content object.
func (f *FS) unlinkFile(ctx context.Context, p string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.walkParent(p)
	if err != nil {
		return 0, err
	}
	f.chargeVisit(ctx, fsapi.Depth(p))
	id, ok := parent.children[name]
	if !ok {
		return 0, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrNotFound)
	}
	n := f.inodes[id]
	if n.isDir {
		return 0, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrIsDir)
	}
	delete(parent.children, name)
	delete(f.inodes, id)
	vclock.Charge(ctx, f.profile.IndexCommit)
	return id, nil
}

// List reads the m child records from the namenode — O(m).
func (f *FS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.walk(p)
	if err != nil {
		return nil, err
	}
	if !n.isDir {
		return nil, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrNotDir)
	}
	f.chargeVisit(ctx, fsapi.Depth(p))
	vclock.Charge(ctx, time.Duration(len(n.children))*f.profile.IndexRecord)
	out := make([]fsapi.EntryInfo, 0, len(n.children))
	for name, id := range n.children {
		c := f.inodes[id]
		e := fsapi.EntryInfo{Name: name, IsDir: c.isDir}
		if detail {
			e.Size = c.size
			e.ModTime = c.modTime
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Rmdir detaches the subtree — one namenode commit, O(1); content objects
// are reclaimed synchronously afterwards (uncharged, as in h2fs).
func (f *FS) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("sidxfs: /: %w", fsapi.ErrInvalidPath)
	}
	fileIDs, err := f.detachSubtree(ctx, p)
	if err != nil {
		return err
	}
	for _, fid := range fileIDs {
		//h2vet:durable GC bracket: once the rmdir tombstone landed, orphan deletes must finish
		gcCtx := vclock.With(context.WithoutCancel(ctx), nil)
		if err := f.store.Delete(gcCtx, f.objKey(fid)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
	}
	return nil
}

// detachSubtree unlinks the directory at cleaned path p under the write
// lock and returns the file inode ids whose content objects need
// reclaiming.
func (f *FS) detachSubtree(ctx context.Context, p string) ([]int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.walkParent(p)
	if err != nil {
		return nil, err
	}
	f.chargeVisit(ctx, fsapi.Depth(p))
	id, ok := parent.children[name]
	if !ok {
		return nil, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrNotFound)
	}
	n := f.inodes[id]
	if !n.isDir {
		return nil, fmt.Errorf("sidxfs: %s: %w", p, fsapi.ErrNotDir)
	}
	delete(parent.children, name)
	var fileIDs []int64
	f.detach(n, &fileIDs)
	vclock.Charge(ctx, f.profile.IndexCommit)
	return fileIDs, nil
}

// detach removes a subtree from the inode table, collecting file ids.
// Caller holds the write lock.
func (f *FS) detach(n *inode, fileIDs *[]int64) {
	if !n.isDir {
		*fileIDs = append(*fileIDs, n.id)
		delete(f.inodes, n.id)
		return
	}
	for _, id := range n.children {
		f.detach(f.inodes[id], fileIDs)
	}
	delete(f.inodes, n.id)
}

// Move re-points one directory entry — O(1).
func (f *FS) Move(ctx context.Context, src, dst string) error {
	srcP, dstP, err := cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	srcParent, srcName, err := f.walkParent(srcP)
	if err != nil {
		return err
	}
	id, ok := srcParent.children[srcName]
	if !ok {
		return fmt.Errorf("sidxfs: %s: %w", srcP, fsapi.ErrNotFound)
	}
	dstParent, dstName, err := f.walkParent(dstP)
	if err != nil {
		return err
	}
	f.chargeVisit(ctx, fsapi.Depth(srcP)+fsapi.Depth(dstP))
	if _, exists := dstParent.children[dstName]; exists {
		return fmt.Errorf("sidxfs: %s: %w", dstP, fsapi.ErrExists)
	}
	delete(srcParent.children, srcName)
	dstParent.children[dstName] = id
	vclock.Charge(ctx, f.profile.IndexCommit)
	return nil
}

// Copy duplicates the subtree: metadata on the namenode, content via
// server-side copies — O(n).
func (f *FS) Copy(ctx context.Context, src, dst string) error {
	srcP, dstP, err := cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	srcNode, err := f.walk(srcP)
	if err != nil {
		return err
	}
	dstParent, dstName, err := f.walkParent(dstP)
	if err != nil {
		return err
	}
	f.chargeVisit(ctx, fsapi.Depth(srcP)+fsapi.Depth(dstP))
	if _, exists := dstParent.children[dstName]; exists {
		return fmt.Errorf("sidxfs: %s: %w", dstP, fsapi.ErrExists)
	}
	cloneID, err := f.copyInode(ctx, srcNode)
	if err != nil {
		return err
	}
	dstParent.children[dstName] = cloneID
	vclock.Charge(ctx, f.profile.IndexCommit)
	return nil
}

func (f *FS) copyInode(ctx context.Context, n *inode) (int64, error) {
	id := f.nextID
	f.nextID++
	clone := &inode{id: id, isDir: n.isDir, size: n.size, modTime: f.clock()}
	f.inodes[id] = clone
	if !n.isDir {
		if err := f.store.Copy(ctx, f.objKey(n.id), f.objKey(id)); err != nil {
			return 0, err
		}
		return id, nil
	}
	clone.children = make(map[string]int64, len(n.children))
	for name, cid := range n.children {
		ccid, err := f.copyInode(ctx, f.inodes[cid])
		if err != nil {
			return 0, err
		}
		clone.children[name] = ccid
	}
	return id, nil
}

func cleanSrcDst(src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fmt.Errorf("sidxfs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fmt.Errorf("sidxfs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	return srcP, dstP, nil
}

// InodeCount reports the namenode table size (for tests).
func (f *FS) InodeCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.inodes)
}
