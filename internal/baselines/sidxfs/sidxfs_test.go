package sidxfs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

func newFS(t testing.TB, profile cluster.CostProfile) (*FS, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, profile, "alice", nil), c
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t, cluster.ZeroProfile())
		return fs
	})
}

func TestMoveIsO1(t *testing.T) {
	fs, c := newFS(t, cluster.SwiftProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/dst"))
	cost := func(n int) time.Duration {
		dir := fmt.Sprintf("/d%d", n)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		for i := 0; i < n; i++ {
			mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("%s/f%d", dir, i), []byte("x")))
		}
		tr := vclock.NewTracker()
		mustNoErr(t, fs.Move(vclock.With(ctx, tr), dir, fmt.Sprintf("/dst/d%d", n)))
		return tr.Elapsed()
	}
	small, large := cost(5), cost(500)
	if large > 2*small {
		t.Fatalf("namenode MOVE scaled with n: %v vs %v", small, large)
	}
	_ = c
}

func TestInodeTableTracksTree(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/a"))
	mustNoErr(t, fs.WriteFile(ctx, "/a/f", []byte("x")))
	if got := fs.InodeCount(); got != 3 { // root + dir + file
		t.Fatalf("InodeCount = %d, want 3", got)
	}
	mustNoErr(t, fs.Rmdir(ctx, "/a"))
	if got := fs.InodeCount(); got != 1 {
		t.Fatalf("InodeCount after rmdir = %d, want 1", got)
	}
}

func TestRmdirReclaimsContent(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	for i := 0; i < 5; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/d/f%d", i), []byte("x")))
	}
	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	if st := c.Stats(); st.Objects != 0 {
		t.Fatalf("%d objects left after rmdir", st.Objects)
	}
}

func TestAccessWalksInodeLevels(t *testing.T) {
	fs, _ := newFS(t, cluster.SwiftProfile())
	ctx := context.Background()
	p := cluster.SwiftProfile()
	path := ""
	for d := 1; d <= 6; d++ {
		path += fmt.Sprintf("/d%d", d)
		mustNoErr(t, fs.Mkdir(ctx, path))
		tr := vclock.NewTracker()
		_, err := fs.Stat(vclock.With(ctx, tr), path)
		mustNoErr(t, err)
		want := p.IndexRead + time.Duration(d)*p.IndexRecord
		if tr.Elapsed() != want {
			t.Fatalf("depth %d Stat charged %v, want %v", d, tr.Elapsed(), want)
		}
	}
}

func mustNoErr(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferential replays random operation traces against the in-memory
// oracle model (see fstest.RunDifferential).
func TestDifferential(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		return newDifferentialFS(t)
	})
}

func newDifferentialFS(t *testing.T) fsapi.FileSystem {
	fs, _ := newFS(t, cluster.ZeroProfile())
	return fs
}
