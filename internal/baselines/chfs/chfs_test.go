package chfs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

func newFS(t testing.TB, profile cluster.CostProfile) *FS {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, profile, "alice", nil)
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		return newFS(t, cluster.ZeroProfile())
	})
}

func TestFileAccessConstantCost(t *testing.T) {
	fs := newFS(t, cluster.SwiftProfile())
	ctx := context.Background()
	path := ""
	var costs []time.Duration
	for d := 1; d <= 8; d++ {
		path += fmt.Sprintf("/d%d", d)
		if err := fs.Mkdir(ctx, path); err != nil {
			t.Fatal(err)
		}
		tr := vclock.NewTracker()
		if _, err := fs.Stat(vclock.With(ctx, tr), path); err != nil {
			t.Fatal(err)
		}
		costs = append(costs, tr.Elapsed())
	}
	// Full-path hashing: one HEAD regardless of depth.
	for i := 1; i < len(costs); i++ {
		if costs[i] != costs[0] {
			t.Fatalf("Stat cost varies with depth: %v", costs)
		}
	}
}

func TestListCostScalesWithN(t *testing.T) {
	fs := newFS(t, cluster.SwiftProfile())
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/target"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/bulk"); err != nil {
		t.Fatal(err)
	}
	listCost := func() time.Duration {
		tr := vclock.NewTracker()
		if _, err := fs.List(vclock.With(ctx, tr), "/target", false); err != nil {
			t.Fatal(err)
		}
		return tr.Elapsed()
	}
	small := listCost()
	// Add 500 files elsewhere in the filesystem: plain CH still scans them.
	for i := 0; i < 500; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/bulk/f%03d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	large := listCost()
	if large < 100*small/2 {
		t.Fatalf("LIST cost did not scale with N: %v -> %v", small, large)
	}
}

func TestMoveRewritesEveryFile(t *testing.T) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(c, cluster.ZeroProfile(), "alice", nil)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/d/f%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats()
	if err := fs.Move(ctx, "/d", "/e"); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	// n files + the directory marker each need one copy and one delete.
	if got := after.Copies - before.Copies; got != n+1 {
		t.Fatalf("move performed %d copies, want %d", got, n+1)
	}
	if got := after.Deletes - before.Deletes; got != n+1 {
		t.Fatalf("move performed %d deletes, want %d", got, n+1)
	}
}

func TestRmdirDeletesEveryFile(t *testing.T) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(c, cluster.ZeroProfile(), "alice", nil)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/d/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats()
	if err := fs.Rmdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Deletes - before.Deletes; got != 11 {
		t.Fatalf("rmdir performed %d deletes, want 11", got)
	}
	if got := c.Stats().Objects; got != 0 {
		t.Fatalf("%d objects left after rmdir", got)
	}
}

// TestDifferential replays random operation traces against the in-memory
// oracle model (see fstest.RunDifferential).
func TestDifferential(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		return newDifferentialFS(t)
	})
}

func newDifferentialFS(t *testing.T) fsapi.FileSystem {
	return newFS(t, cluster.ZeroProfile())
}
