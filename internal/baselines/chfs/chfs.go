// Package chfs implements the plain Consistent Hash pseudo-filesystem of
// the paper's §2 and Figure 1b: the file's full path is hashed to place it
// on the consistent hashing ring, directories are zero-byte marker
// objects, and no index of any kind exists.
//
// The consequence, quantified in Table 1, is that file access and MKDIR
// are O(1) while every operation that traverses or changes the directory
// structure must be performed across all affected files: LIST scans the
// entire flat namespace (O(N)), and MOVE/RMDIR/COPY rewrite each of the
// directory's n files because their keys embed the full path.
//
// The object Store interface deliberately has no enumeration primitive
// (real clouds page through container listings); FS mirrors the account's
// key set in memory as that listing, and charges one HEAD per visited key
// when it scans.
package chfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

const (
	metaType = "h2type"
	typeFile = "file"
	typeDir  = "dir"
)

// FS is one account's pseudo-filesystem over plain consistent hashing.
type FS struct {
	store   objstore.Store
	profile cluster.CostProfile
	account string
	clock   func() time.Time

	mu    sync.RWMutex
	paths map[string]bool // cleaned path -> isDir (the flat namespace)
}

var _ fsapi.FileSystem = (*FS)(nil)

// New returns an empty pseudo-filesystem for one account.
func New(store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time) *FS {
	if clock == nil {
		clock = time.Now
	}
	if profile.Fanout <= 0 {
		profile.Fanout = 16
	}
	return &FS{
		store:   store,
		profile: profile,
		account: account,
		clock:   clock,
		paths:   make(map[string]bool),
	}
}

// key returns the object key for a path: the hashed full file path of
// Figure 1b.
func (f *FS) key(path string) string { return "ch|" + f.account + path }

func (f *FS) isDir(path string) (isDir, ok bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	isDir, ok = f.paths[path]
	return isDir, ok
}

// setPath, deletePath, movePath, and copyPath are the defer-scoped
// critical sections for the in-memory namespace index; every map
// mutation goes through one of them.
func (f *FS) setPath(p string, isDir bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paths[p] = isDir
}

func (f *FS) deletePath(p string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.paths, p)
}

func (f *FS) movePath(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paths[to] = f.paths[from]
	delete(f.paths, from)
}

func (f *FS) copyPath(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paths[to] = f.paths[from]
}

// checkParent verifies the parent directory of a cleaned path exists,
// charging the HEAD a real proxy would issue.
func (f *FS) checkParent(ctx context.Context, p string) error {
	dir, _, err := fsapi.Split(p)
	if err != nil {
		return err
	}
	if dir == "/" {
		return nil
	}
	vclock.Charge(ctx, f.profile.Head)
	isDir, ok := f.isDir(dir)
	if !ok {
		return fmt.Errorf("chfs: %s: %w", dir, fsapi.ErrNotFound)
	}
	if !isDir {
		return fmt.Errorf("chfs: %s: %w", dir, fsapi.ErrNotDir)
	}
	return nil
}

// Mkdir creates a zero-byte directory marker object — O(1).
func (f *FS) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("chfs: /: %w", fsapi.ErrExists)
	}
	if err := f.checkParent(ctx, p); err != nil {
		return err
	}
	vclock.Charge(ctx, f.profile.Head) // existence probe
	if _, ok := f.isDir(p); ok {
		return fmt.Errorf("chfs: %s: %w", p, fsapi.ErrExists)
	}
	if err := f.store.Put(ctx, f.key(p), nil, map[string]string{metaType: typeDir}); err != nil {
		return err
	}
	f.setPath(p, true)
	return nil
}

// WriteFile stores the file object under its hashed full path — O(1).
func (f *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("chfs: /: %w", fsapi.ErrIsDir)
	}
	if err := f.checkParent(ctx, p); err != nil {
		return err
	}
	if isDir, ok := f.isDir(p); ok && isDir {
		return fmt.Errorf("chfs: %s: %w", p, fsapi.ErrIsDir)
	}
	if err := f.store.Put(ctx, f.key(p), data, map[string]string{metaType: typeFile}); err != nil {
		return err
	}
	f.setPath(p, false)
	return nil
}

// ReadFile fetches the object at the hashed full path — O(1).
func (f *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("chfs: /: %w", fsapi.ErrIsDir)
	}
	if isDir, ok := f.isDir(p); ok && isDir {
		return nil, fmt.Errorf("chfs: %s: %w", p, fsapi.ErrIsDir)
	}
	data, _, err := f.store.Get(ctx, f.key(p))
	if err != nil {
		return nil, fmt.Errorf("chfs: %s: %w", p, fsapi.ErrNotFound)
	}
	return data, nil
}

// Stat resolves a path with one HEAD — the O(1) file access of Table 1.
func (f *FS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	if p == "/" {
		return fsapi.EntryInfo{Name: "/", IsDir: true}, nil
	}
	info, err := f.store.Head(ctx, f.key(p))
	if err != nil {
		return fsapi.EntryInfo{}, fmt.Errorf("chfs: %s: %w", p, fsapi.ErrNotFound)
	}
	_, name, _ := fsapi.Split(p)
	return fsapi.EntryInfo{
		Name:    name,
		IsDir:   info.Meta[metaType] == typeDir,
		Size:    info.Size,
		ModTime: info.LastModified,
	}, nil
}

// Remove deletes a single file object — O(1).
func (f *FS) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	isDir, ok := f.isDir(p)
	if !ok {
		return fmt.Errorf("chfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if isDir {
		return fmt.Errorf("chfs: %s: %w", p, fsapi.ErrIsDir)
	}
	if err := f.store.Delete(ctx, f.key(p)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	f.deletePath(p)
	return nil
}

// snapshotPaths copies the namespace for a scan, charging per visited key.
func (f *FS) scanAll(ctx context.Context) map[string]bool {
	out := f.snapshotPaths()
	vclock.Charge(ctx, time.Duration(len(out))*f.profile.Head)
	return out
}

// snapshotPaths copies the namespace index under the read lock.
func (f *FS) snapshotPaths() map[string]bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]bool, len(f.paths))
	for p, d := range f.paths {
		out[p] = d
	}
	return out
}

// subtreePaths returns every path at or under root, charging one HEAD per
// member (the by-prefix container listing a real deployment would page
// through).
func (f *FS) subtreePaths(ctx context.Context, root string) []string {
	out := f.subtreeMembers(root)
	vclock.Charge(ctx, time.Duration(len(out))*f.profile.Head)
	return out
}

// subtreeMembers gathers every path at or under root, sorted, under the
// read lock.
func (f *FS) subtreeMembers(root string) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []string
	for p := range f.paths {
		if p == root || fsapi.IsAncestor(root, p) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// List enumerates the entire flat namespace to find direct children — the
// O(N) LIST of Table 1.
func (f *FS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p != "/" {
		isDir, ok := f.isDir(p)
		if !ok {
			return nil, fmt.Errorf("chfs: %s: %w", p, fsapi.ErrNotFound)
		}
		if !isDir {
			return nil, fmt.Errorf("chfs: %s: %w", p, fsapi.ErrNotDir)
		}
	}
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	all := f.scanAll(ctx)
	var entries []fsapi.EntryInfo
	for cand, isDir := range all {
		if !strings.HasPrefix(cand, prefix) {
			continue
		}
		rest := cand[len(prefix):]
		if rest == "" || strings.ContainsRune(rest, '/') {
			continue
		}
		entries = append(entries, fsapi.EntryInfo{Name: rest, IsDir: isDir})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	if detail {
		tasks := make([]func(context.Context) error, len(entries))
		for i := range entries {
			i := i
			tasks[i] = func(ctx context.Context) error {
				info, err := f.store.Head(ctx, f.key(fsapi.Join(p, entries[i].Name)))
				if err == nil {
					entries[i].Size = info.Size
					entries[i].ModTime = info.LastModified
				}
				return nil
			}
		}
		if err := vclock.Fanout(ctx, f.profile.Fanout, tasks); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// Rmdir removes a directory by deleting each of its n files — O(n).
func (f *FS) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("chfs: /: %w", fsapi.ErrInvalidPath)
	}
	isDir, ok := f.isDir(p)
	if !ok {
		return fmt.Errorf("chfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if !isDir {
		return fmt.Errorf("chfs: %s: %w", p, fsapi.ErrNotDir)
	}
	for _, member := range f.subtreePaths(ctx, p) {
		if err := f.store.Delete(ctx, f.key(member)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
		f.deletePath(member)
	}
	return nil
}

// Move relocates a subtree by copying and deleting every member object:
// the keys embed the full path, so each of the n files must be rewritten —
// O(n).
func (f *FS) Move(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.checkSrcDst(ctx, src, dst)
	if err != nil {
		return err
	}
	for _, member := range f.subtreePaths(ctx, srcP) {
		target := dstP + member[len(srcP):]
		if err := f.store.Copy(ctx, f.key(member), f.key(target)); err != nil {
			return err
		}
		if err := f.store.Delete(ctx, f.key(member)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
		f.movePath(member, target)
	}
	return nil
}

// Copy duplicates a subtree member by member — O(n).
func (f *FS) Copy(ctx context.Context, src, dst string) error {
	srcP, dstP, err := f.checkSrcDst(ctx, src, dst)
	if err != nil {
		return err
	}
	for _, member := range f.subtreePaths(ctx, srcP) {
		target := dstP + member[len(srcP):]
		if err := f.store.Copy(ctx, f.key(member), f.key(target)); err != nil {
			return err
		}
		f.copyPath(member, target)
	}
	return nil
}

func (f *FS) checkSrcDst(ctx context.Context, src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fmt.Errorf("chfs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fmt.Errorf("chfs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	vclock.Charge(ctx, 2*f.profile.Head) // src and dst probes
	if _, ok := f.isDir(srcP); !ok {
		return "", "", fmt.Errorf("chfs: %s: %w", srcP, fsapi.ErrNotFound)
	}
	if _, ok := f.isDir(dstP); ok {
		return "", "", fmt.Errorf("chfs: %s: %w", dstP, fsapi.ErrExists)
	}
	if err := f.checkParent(ctx, dstP); err != nil {
		return "", "", err
	}
	return srcP, dstP, nil
}
