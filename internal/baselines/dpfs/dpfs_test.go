package dpfs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/fsapi/fstest"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

func newFS(t testing.TB, profile cluster.CostProfile, opts ...Option) (*FS, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, profile, "alice", nil, opts...), c
}

func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FileSystem {
		fs, _ := newFS(t, cluster.ZeroProfile())
		return fs
	})
}

func TestMoveIsO1InSubtreeSize(t *testing.T) {
	fs, c := newFS(t, cluster.SwiftProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/dst"))
	cost := func(n int) time.Duration {
		dir := fmt.Sprintf("/d%d", n)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		for i := 0; i < n; i++ {
			mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("%s/f%04d", dir, i), []byte("x")))
		}
		tr := vclock.NewTracker()
		mustNoErr(t, fs.Move(vclock.With(ctx, tr), dir, fmt.Sprintf("/dst/d%d", n)))
		return tr.Elapsed()
	}
	small, large := cost(5), cost(500)
	if large > 2*small {
		t.Fatalf("DP MOVE scaled with n: %v vs %v", small, large)
	}
	// MOVE must not touch content objects at all.
	before := c.Stats()
	mustNoErr(t, fs.Move(ctx, "/dst/d5", "/d5back"))
	after := c.Stats()
	if after.Copies != before.Copies || after.Puts != before.Puts || after.Deletes != before.Deletes {
		t.Fatal("DP MOVE touched the object cloud")
	}
}

func TestListCostLinearInM(t *testing.T) {
	// One index server keeps the walk cost a single constant RPC, so the
	// per-record component can be isolated.
	fs, _ := newFS(t, cluster.SwiftProfile(), WithServers(1))
	ctx := context.Background()
	cost := func(m int) time.Duration {
		dir := fmt.Sprintf("/l%d", m)
		mustNoErr(t, fs.Mkdir(ctx, dir))
		for i := 0; i < m; i++ {
			mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("%s/f%05d", dir, i), []byte("x")))
		}
		tr := vclock.NewTracker()
		_, err := fs.List(vclock.With(ctx, tr), dir, true)
		mustNoErr(t, err)
		return tr.Elapsed()
	}
	p := cluster.SwiftProfile()
	c100, c1000 := cost(100), cost(1000)
	// Subtract the constant index RPC; the per-record part must be ~10x.
	v100 := c100 - p.IndexRead
	v1000 := c1000 - p.IndexRead
	ratio := float64(v1000) / float64(v100)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("LIST record cost ratio = %.1f, want ~10", ratio)
	}
}

func TestDynamicPartitioningBalancesLoad(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile(), WithServers(4), WithSplitFactor(1.2), WithMinSplit(8))
	ctx := context.Background()
	// A deep, wide tree should spread across servers.
	for i := 0; i < 8; i++ {
		top := fmt.Sprintf("/t%d", i)
		mustNoErr(t, fs.Mkdir(ctx, top))
		for j := 0; j < 25; j++ {
			mustNoErr(t, fs.Mkdir(ctx, fmt.Sprintf("%s/s%d", top, j)))
		}
	}
	loads := fs.ServerLoads()
	total, max := 0, 0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total != 8*25+8+1 {
		t.Fatalf("ServerLoads sum = %d, want %d (loads %v)", total, 8*25+8+1, loads)
	}
	for s, l := range loads {
		if l == 0 {
			t.Fatalf("server %d received no directories: %v", s, loads)
		}
	}
	if float64(max) > 2.2*float64(total)/float64(len(loads)) {
		t.Fatalf("partitioning left load imbalanced: %v", loads)
	}
}

func TestSingleServerNeverSplits(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile(), WithServers(1))
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		mustNoErr(t, fs.Mkdir(ctx, fmt.Sprintf("/d%d", i)))
	}
	loads := fs.ServerLoads()
	if len(loads) != 1 || loads[0] != 21 {
		t.Fatalf("ServerLoads = %v", loads)
	}
}

func TestAccessCostFlatWithinPartition(t *testing.T) {
	// With one index server the whole walk is a single RPC regardless of
	// depth — the O(1)-looking Dropbox behaviour of Figure 13.
	fs, _ := newFS(t, cluster.SwiftProfile(), WithServers(1))
	ctx := context.Background()
	path := ""
	var costs []time.Duration
	for d := 1; d <= 10; d++ {
		path += fmt.Sprintf("/d%d", d)
		mustNoErr(t, fs.Mkdir(ctx, path))
		tr := vclock.NewTracker()
		_, err := fs.Stat(vclock.With(ctx, tr), path)
		mustNoErr(t, err)
		costs = append(costs, tr.Elapsed())
	}
	for _, c := range costs {
		if c != costs[0] {
			t.Fatalf("access cost varies with depth inside one partition: %v", costs)
		}
	}
}

func TestAccessCostFluctuatesAcrossPartitions(t *testing.T) {
	fs, _ := newFS(t, cluster.SwiftProfile(), WithServers(4), WithSplitFactor(0.5), WithMinSplit(1))
	ctx := context.Background()
	path := ""
	seen := map[time.Duration]bool{}
	for d := 1; d <= 12; d++ {
		path += fmt.Sprintf("/d%d", d)
		mustNoErr(t, fs.Mkdir(ctx, path))
		tr := vclock.NewTracker()
		_, err := fs.Stat(vclock.With(ctx, tr), path)
		mustNoErr(t, err)
		seen[tr.Elapsed()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("expected partition crossings to vary access cost, got %v", seen)
	}
}

func TestRmdirReclaimsContentObjects(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/d"))
	for i := 0; i < 5; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/d/f%d", i), []byte("xx")))
	}
	mustNoErr(t, fs.Rmdir(ctx, "/d"))
	if st := c.Stats(); st.Objects != 0 {
		t.Fatalf("%d content objects left after rmdir", st.Objects)
	}
}

func TestCopyDuplicatesContent(t *testing.T) {
	fs, c := newFS(t, cluster.ZeroProfile())
	ctx := context.Background()
	mustNoErr(t, fs.Mkdir(ctx, "/s"))
	for i := 0; i < 4; i++ {
		mustNoErr(t, fs.WriteFile(ctx, fmt.Sprintf("/s/f%d", i), []byte("hello")))
	}
	before := c.Stats().Copies
	mustNoErr(t, fs.Copy(ctx, "/s", "/t"))
	if got := c.Stats().Copies - before; got != 4 {
		t.Fatalf("copy performed %d object copies, want 4", got)
	}
	data, err := fs.ReadFile(ctx, "/t/f0")
	mustNoErr(t, err)
	if string(data) != "hello" {
		t.Fatalf("copied content = %q", data)
	}
}

func mustNoErr(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferential replays random operation traces against the in-memory
// oracle model (see fstest.RunDifferential).
func TestDifferential(t *testing.T) {
	fstest.RunDifferential(t, func(t *testing.T) fsapi.FileSystem {
		return newDifferentialFS(t)
	})
}

func newDifferentialFS(t *testing.T) fsapi.FileSystem {
	fs, _ := newFS(t, cluster.ZeroProfile())
	return fs
}

func BenchmarkDPStat(b *testing.B) {
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		b.Fatal(err)
	}
	fs := New(c, cluster.ZeroProfile(), "bench", nil)
	ctx := context.Background()
	path := ""
	for d := 0; d < 6; d++ {
		path += fmt.Sprintf("/d%d", d)
		if err := fs.Mkdir(ctx, path); err != nil {
			b.Fatal(err)
		}
	}
	if err := fs.WriteFile(ctx, path+"/leaf", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat(ctx, path+"/leaf"); err != nil {
			b.Fatal(err)
		}
	}
}
