// Package dpfs implements the Dynamic Partition baseline (paper §2,
// Figure 1c): the two-cloud architecture of Ceph/PanFS and — per the
// paper's inference in §5.3 — of Dropbox.
//
// Directories live in a small set of index servers; the directory tree is
// dynamically partitioned across them for load balance, and each leaf
// refers to a content object in the object storage cloud. Directory
// operations are pointer updates on the index (O(1)), LIST reads m records
// from one index server (O(m)), and file access walks d levels that are
// usually co-located on a single index server — which is why Dropbox's
// measured access time looks O(1) with fluctuations where the path crosses
// partition boundaries (Figure 13).
//
// The price of this design is the separate index cloud itself: the index
// servers here are in-memory state that exists outside the object store,
// exactly the "secondary sub-system" H2Cloud exists to eliminate.
package dpfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// node is one entry in the partitioned index tree.
type node struct {
	isDir    bool
	size     int64
	modTime  time.Time
	objKey   string           // content object key (files only)
	children map[string]*node // directories only
	server   int              // index server owning this directory
}

// FS is one account's Dynamic Partition filesystem.
type FS struct {
	store   objstore.Store
	profile cluster.CostProfile
	account string
	clock   func() time.Time
	servers int
	// splitFactor controls dynamic partitioning: a new directory is
	// assigned to the least-loaded server once its parent's server holds
	// more than splitFactor times the mean directory count.
	splitFactor float64
	// minSplit is the minimum directory count on a server before it sheds
	// load: real DP systems split bulky subtrees, not every deep chain, so
	// small namespaces stay on one server (which is also what keeps
	// Dropbox-style file access flat in Figure 13).
	minSplit int
	eagerGC  bool

	mu       sync.RWMutex
	root     *node
	dirCount []int // directories per index server
	nextID   int64
}

var _ fsapi.FileSystem = (*FS)(nil)

// Option customizes a dpfs instance.
type Option func(*FS)

// WithServers sets the number of index servers (default 4).
func WithServers(n int) Option {
	return func(f *FS) {
		if n > 0 {
			f.servers = n
		}
	}
}

// WithSplitFactor sets the load-imbalance factor that triggers assigning
// new directories to the least-loaded index server (default 1.5).
func WithSplitFactor(s float64) Option {
	return func(f *FS) {
		if s > 0 {
			f.splitFactor = s
		}
	}
}

// WithEagerGC controls whether RMDIR reclaims content objects
// synchronously (default true).
func WithEagerGC(on bool) Option { return func(f *FS) { f.eagerGC = on } }

// WithMinSplit sets the minimum per-server directory count before load
// shedding starts (default 32).
func WithMinSplit(n int) Option {
	return func(f *FS) {
		if n > 0 {
			f.minSplit = n
		}
	}
}

// New returns an empty Dynamic Partition filesystem for one account.
func New(store objstore.Store, profile cluster.CostProfile, account string, clock func() time.Time, opts ...Option) *FS {
	if clock == nil {
		clock = time.Now
	}
	f := &FS{
		store:       store,
		profile:     profile,
		account:     account,
		clock:       clock,
		servers:     4,
		splitFactor: 1.5,
		minSplit:    32,
		eagerGC:     true,
		root:        &node{isDir: true, children: map[string]*node{}, server: 0},
	}
	for _, o := range opts {
		o(f)
	}
	f.dirCount = make([]int, f.servers)
	f.dirCount[0] = 1
	return f
}

// pickServer implements the dynamic partitioning policy for a new
// directory: inherit the parent's server unless it is overloaded, in
// which case the least-loaded server takes the new subtree.
func (f *FS) pickServer(parent int) int {
	if f.servers == 1 || f.dirCount[parent] <= f.minSplit {
		return parent
	}
	total := 0
	for _, c := range f.dirCount {
		total += c
	}
	mean := float64(total) / float64(f.servers)
	if float64(f.dirCount[parent]) <= f.splitFactor*mean {
		return parent
	}
	min := 0
	for s := 1; s < f.servers; s++ {
		if f.dirCount[s] < f.dirCount[min] {
			min = s
		}
	}
	return min
}

// chargeWalk prices an index traversal: one RPC to the first index server
// plus one per partition crossing. This is what makes DP file access look
// flat with fluctuations (Figure 13).
func (f *FS) chargeWalk(ctx context.Context, servers []int) {
	if len(servers) == 0 {
		return
	}
	rpcs := 1
	for i := 1; i < len(servers); i++ {
		if servers[i] != servers[i-1] {
			rpcs++
		}
	}
	vclock.Charge(ctx, time.Duration(rpcs)*f.profile.IndexRead)
}

// resolve walks the index tree. Caller must hold at least a read lock.
func (f *FS) resolve(p string) (n *node, servers []int, err error) {
	n = f.root
	servers = []int{n.server}
	if p == "/" {
		return n, servers, nil
	}
	for _, comp := range strings.Split(p[1:], "/") {
		if !n.isDir {
			return nil, nil, fmt.Errorf("dpfs: %w", fsapi.ErrNotDir)
		}
		child, ok := n.children[comp]
		if !ok {
			return nil, nil, fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrNotFound)
		}
		n = child
		if n.isDir {
			servers = append(servers, n.server)
		}
	}
	return n, servers, nil
}

// resolveParent returns the parent directory node of a cleaned non-root
// path. Caller must hold a lock.
func (f *FS) resolveParent(p string) (*node, []int, string, error) {
	dir, name, err := fsapi.Split(p)
	if err != nil {
		return nil, nil, "", err
	}
	parent, servers, err := f.resolve(dir)
	if err != nil {
		return nil, nil, "", err
	}
	if !parent.isDir {
		return nil, nil, "", fmt.Errorf("dpfs: %s: %w", dir, fsapi.ErrNotDir)
	}
	return parent, servers, name, nil
}

// Mkdir inserts one directory record — a single index commit, O(1).
func (f *FS) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("dpfs: /: %w", fsapi.ErrExists)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, servers, name, err := f.resolveParent(p)
	if err != nil {
		return err
	}
	f.chargeWalk(ctx, servers)
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrExists)
	}
	server := f.pickServer(parent.server)
	parent.children[name] = &node{
		isDir:    true,
		modTime:  f.clock(),
		children: map[string]*node{},
		server:   server,
	}
	f.dirCount[server]++
	vclock.Charge(ctx, f.profile.IndexCommit)
	return nil
}

// WriteFile puts the content object into the object cloud and commits one
// index record.
func (f *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("dpfs: /: %w", fsapi.ErrIsDir)
	}
	f.mu.Lock()
	parent, servers, name, err := f.resolveParent(p)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	f.chargeWalk(ctx, servers)
	existing := parent.children[name]
	if existing != nil && existing.isDir {
		f.mu.Unlock()
		return fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrIsDir)
	}
	objKey := ""
	if existing != nil {
		objKey = existing.objKey
	} else {
		f.nextID++
		objKey = "dp|" + f.account + "|" + strconv.FormatInt(f.nextID, 10)
	}
	f.mu.Unlock()

	// Content streaming happens outside the index lock.
	if err := f.store.Put(ctx, objKey, data, nil); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent.children[name] = &node{
		size: int64(len(data)), modTime: f.clock(), objKey: objKey,
	}
	vclock.Charge(ctx, f.profile.IndexCommit)
	return nil
}

// ReadFile resolves through the index and fetches the content object.
func (f *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fmt.Errorf("dpfs: /: %w", fsapi.ErrIsDir)
	}
	objKey, err := f.fileObjKey(ctx, p)
	if err != nil {
		return nil, err
	}
	data, _, err := f.store.Get(ctx, objKey)
	if err != nil {
		return nil, fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrNotFound)
	}
	return data, nil
}

// fileObjKey resolves a cleaned file path to its content object key
// under the read lock, charging the index walk.
func (f *FS) fileObjKey(ctx context.Context, p string) (string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, servers, err := f.resolve(p)
	if err != nil {
		return "", err
	}
	f.chargeWalk(ctx, servers)
	if n.isDir {
		return "", fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrIsDir)
	}
	return n.objKey, nil
}

// Stat walks the index — usually one RPC, plus one per partition crossing.
func (f *FS) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, servers, err := f.resolve(p)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	f.chargeWalk(ctx, servers)
	name := "/"
	if p != "/" {
		_, name, _ = fsapi.Split(p)
	}
	return fsapi.EntryInfo{Name: name, IsDir: n.isDir, Size: n.size, ModTime: n.modTime}, nil
}

// Remove deletes one file: an index commit plus the content object delete.
func (f *FS) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("dpfs: /: %w", fsapi.ErrIsDir)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, servers, name, err := f.resolveParent(p)
	if err != nil {
		return err
	}
	f.chargeWalk(ctx, servers)
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if n.isDir {
		return fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrIsDir)
	}
	delete(parent.children, name)
	vclock.Charge(ctx, f.profile.IndexCommit)
	if err := f.store.Delete(ctx, n.objKey); err != nil && !errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	return nil
}

// List reads the m child records from the directory's index server — the
// O(m) LIST of Table 1. Detail is free: the index stores metadata.
func (f *FS) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, servers, err := f.resolve(p)
	if err != nil {
		return nil, err
	}
	if !n.isDir {
		return nil, fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrNotDir)
	}
	f.chargeWalk(ctx, servers)
	entries := make([]fsapi.EntryInfo, 0, len(n.children))
	for name, child := range n.children {
		e := fsapi.EntryInfo{Name: name, IsDir: child.isDir}
		if detail {
			e.Size = child.size
			e.ModTime = child.modTime
		}
		entries = append(entries, e)
	}
	vclock.Charge(ctx, time.Duration(len(entries))*f.profile.IndexRecord)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// Rmdir detaches the subtree pointer — one index commit, O(1). Content
// objects are reclaimed out of band (eager here, uncharged).
func (f *FS) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("dpfs: /: %w", fsapi.ErrInvalidPath)
	}
	objKeys, err := f.detachSubtree(ctx, p)
	if err != nil {
		return err
	}
	for _, key := range objKeys {
		//h2vet:durable GC bracket: once the rmdir tombstone landed, orphan deletes must finish
		gcCtx := vclock.With(context.WithoutCancel(ctx), nil)
		if err := f.store.Delete(gcCtx, key); err != nil && !errors.Is(err, objstore.ErrNotFound) {
			return err
		}
	}
	return nil
}

// detachSubtree unlinks the directory at cleaned path p from its parent
// under the write lock and returns the content object keys to reclaim
// (empty unless eager GC is on).
func (f *FS) detachSubtree(ctx context.Context, p string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, servers, name, err := f.resolveParent(p)
	if err != nil {
		return nil, err
	}
	f.chargeWalk(ctx, servers)
	n, ok := parent.children[name]
	if !ok {
		return nil, fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrNotFound)
	}
	if !n.isDir {
		return nil, fmt.Errorf("dpfs: %s: %w", p, fsapi.ErrNotDir)
	}
	delete(parent.children, name)
	f.releaseDirs(n)
	vclock.Charge(ctx, f.profile.IndexCommit)
	var objKeys []string
	if f.eagerGC {
		collectObjKeys(n, &objKeys)
	}
	return objKeys, nil
}

func (f *FS) releaseDirs(n *node) {
	if !n.isDir {
		return
	}
	f.dirCount[n.server]--
	for _, c := range n.children {
		f.releaseDirs(c)
	}
}

func collectObjKeys(n *node, out *[]string) {
	if !n.isDir {
		*out = append(*out, n.objKey)
		return
	}
	for _, c := range n.children {
		collectObjKeys(c, out)
	}
}

// Move re-points the subtree: commits on the source and destination index
// servers — O(1) regardless of subtree size (Figure 7's flat curve).
func (f *FS) Move(ctx context.Context, src, dst string) error {
	srcP, dstP, err := cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	srcParent, sServers, srcName, err := f.resolveParent(srcP)
	if err != nil {
		return err
	}
	f.chargeWalk(ctx, sServers)
	n, ok := srcParent.children[srcName]
	if !ok {
		return fmt.Errorf("dpfs: %s: %w", srcP, fsapi.ErrNotFound)
	}
	dstParent, dServers, dstName, err := f.resolveParent(dstP)
	if err != nil {
		return err
	}
	f.chargeWalk(ctx, dServers)
	if _, exists := dstParent.children[dstName]; exists {
		return fmt.Errorf("dpfs: %s: %w", dstP, fsapi.ErrExists)
	}
	delete(srcParent.children, srcName)
	dstParent.children[dstName] = n
	commits := 1
	if srcParent.server != dstParent.server {
		commits = 2
	}
	vclock.Charge(ctx, time.Duration(commits)*f.profile.IndexCommit)
	return nil
}

// Copy duplicates content objects one by one — O(n) (Figure 11).
func (f *FS) Copy(ctx context.Context, src, dst string) error {
	srcP, dstP, err := cleanSrcDst(src, dst)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	srcNode, sServers, err := f.resolve(srcP)
	if err != nil {
		return err
	}
	f.chargeWalk(ctx, sServers)
	dstParent, dServers, dstName, err := f.resolveParent(dstP)
	if err != nil {
		return err
	}
	f.chargeWalk(ctx, dServers)
	if _, exists := dstParent.children[dstName]; exists {
		return fmt.Errorf("dpfs: %s: %w", dstP, fsapi.ErrExists)
	}
	clone, err := f.copyNode(ctx, srcNode, dstParent.server)
	if err != nil {
		return err
	}
	dstParent.children[dstName] = clone
	vclock.Charge(ctx, f.profile.IndexCommit)
	return nil
}

// copyNode deep-copies a subtree, duplicating file content with the
// cloud's server-side copy primitive. Caller holds the write lock.
func (f *FS) copyNode(ctx context.Context, n *node, server int) (*node, error) {
	now := f.clock()
	if !n.isDir {
		f.nextID++
		objKey := "dp|" + f.account + "|" + strconv.FormatInt(f.nextID, 10)
		if err := f.store.Copy(ctx, n.objKey, objKey); err != nil {
			return nil, err
		}
		return &node{size: n.size, modTime: now, objKey: objKey}, nil
	}
	clone := &node{isDir: true, modTime: now, children: map[string]*node{}, server: server}
	f.dirCount[server]++
	for name, child := range n.children {
		cc, err := f.copyNode(ctx, child, server)
		if err != nil {
			return nil, err
		}
		clone.children[name] = cc
	}
	return clone, nil
}

func cleanSrcDst(src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fmt.Errorf("dpfs: cannot move or copy /: %w", fsapi.ErrInvalidPath)
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fmt.Errorf("dpfs: %s is inside %s: %w", dstP, srcP, fsapi.ErrInvalidPath)
	}
	return srcP, dstP, nil
}

// ServerLoads reports the number of directories held by each index server
// (exposed for the load-balancing tests and the ablation bench).
func (f *FS) ServerLoads() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]int, len(f.dirCount))
	copy(out, f.dirCount)
	return out
}
