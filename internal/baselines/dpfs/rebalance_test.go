package dpfs

import (
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// buildSkewed puts every directory on server 0 by disabling splitting at
// creation time (huge minSplit), producing a maximally imbalanced index.
func buildSkewed(t *testing.T) *FS {
	t.Helper()
	fs, _ := newFS(t, cluster.ZeroProfile(), WithServers(4), WithMinSplit(1<<30))
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		top := fmt.Sprintf("/t%d", i)
		mustNoErr(t, fs.Mkdir(ctx, top))
		for j := 0; j < 10; j++ {
			sub := fmt.Sprintf("%s/s%d", top, j)
			mustNoErr(t, fs.Mkdir(ctx, sub))
			mustNoErr(t, fs.WriteFile(ctx, sub+"/f", []byte("x")))
		}
	}
	return fs
}

func TestRebalanceMigratesSubtrees(t *testing.T) {
	fs := buildSkewed(t)
	// All 89 dirs on server 0.
	loads := fs.ServerLoads()
	if loads[0] != 89 || loads[1] != 0 {
		t.Fatalf("precondition: %v", loads)
	}
	// Allow migration now.
	fs.minSplit = 4
	moved := fs.Rebalance(context.Background())
	if moved == 0 {
		t.Fatal("Rebalance moved nothing")
	}
	loads = fs.ServerLoads()
	total, max := 0, 0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total != 89 {
		t.Fatalf("Rebalance lost directories: %v", loads)
	}
	if float64(max) > 1.9*float64(total)/4 {
		t.Fatalf("still imbalanced after rebalance: %v", loads)
	}
}

func TestRebalancePreservesTree(t *testing.T) {
	fs := buildSkewed(t)
	ctx := context.Background()
	before, err := fsapi.Tree(ctx, fs, "/")
	mustNoErr(t, err)
	fs.minSplit = 4
	fs.Rebalance(ctx)
	after, err := fsapi.Tree(ctx, fs, "/")
	mustNoErr(t, err)
	if len(before) != len(after) {
		t.Fatalf("tree changed: %d -> %d entries", len(before), len(after))
	}
	for p, want := range before {
		got, ok := after[p]
		if !ok || got.IsDir != want.IsDir {
			t.Fatalf("entry %s changed: %+v vs %+v", p, got, want)
		}
	}
	// Content still served after migration.
	data, err := fs.ReadFile(ctx, "/t0/s0/f")
	mustNoErr(t, err)
	if string(data) != "x" {
		t.Fatalf("content after rebalance = %q", data)
	}
}

func TestRebalanceIdempotentWhenBalanced(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile(), WithServers(4), WithMinSplit(2))
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		mustNoErr(t, fs.Mkdir(ctx, fmt.Sprintf("/d%02d", i)))
	}
	fs.Rebalance(ctx)
	if moved := fs.Rebalance(ctx); moved != 0 {
		t.Fatalf("second rebalance moved %d dirs", moved)
	}
}

func TestRebalanceSingleServerNoop(t *testing.T) {
	fs, _ := newFS(t, cluster.ZeroProfile(), WithServers(1))
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		mustNoErr(t, fs.Mkdir(ctx, fmt.Sprintf("/d%d", i)))
	}
	if moved := fs.Rebalance(ctx); moved != 0 {
		t.Fatalf("single-server rebalance moved %d", moved)
	}
}
