package dpfs

import (
	"context"
	"time"

	"github.com/h2cloud/h2cloud/internal/vclock"
)

// Rebalance is the "sophisticated load-balance algorithm" half of Dynamic
// Partition (§2): it migrates whole directory subtrees from overloaded
// index servers to underloaded ones until the imbalance falls under the
// split factor. New-directory placement (pickServer) handles growth;
// Rebalance handles drift — e.g. after large MOVEs shifted subtrees
// between servers. It returns the number of directories migrated and
// charges one index record per migrated directory to the caller's virtual
// clock (subtree metadata must be shipped between index servers).
func (f *FS) Rebalance(ctx context.Context) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.servers == 1 {
		return 0
	}
	migrated := 0
	for round := 0; round < 2*f.servers; round++ {
		src, dst := f.extremes()
		total := 0
		for _, c := range f.dirCount {
			total += c
		}
		mean := float64(total) / float64(f.servers)
		if float64(f.dirCount[src]) <= f.splitFactor*mean || f.dirCount[src] <= f.minSplit {
			break
		}
		// The ideal migration halves the gap between src and dst.
		want := (f.dirCount[src] - f.dirCount[dst]) / 2
		if want < 1 {
			break
		}
		candidate, size := f.bestRegion(f.root, src, want)
		if candidate == nil {
			break
		}
		f.reassignRegion(candidate, src, dst)
		migrated += size
	}
	vclock.Charge(ctx, time.Duration(migrated)*f.profile.IndexRecord)
	return migrated
}

// extremes returns the most- and least-loaded server IDs.
func (f *FS) extremes() (src, dst int) {
	for s := 1; s < f.servers; s++ {
		if f.dirCount[s] > f.dirCount[src] {
			src = s
		}
		if f.dirCount[s] < f.dirCount[dst] {
			dst = s
		}
	}
	return src, dst
}

// regionSize counts the directories of the contiguous same-server region
// rooted at n (stopping at partition boundaries).
func regionSize(n *node, server int) int {
	if !n.isDir || n.server != server {
		return 0
	}
	size := 1
	for _, c := range n.children {
		if c.isDir && c.server == server {
			size += regionSize(c, server)
		}
	}
	return size
}

// bestRegion finds the src-owned subtree (never the tree root) whose
// region size is closest to want without exceeding the region it is cut
// from.
func (f *FS) bestRegion(root *node, src, want int) (*node, int) {
	var best *node
	bestSize := 0
	var walk func(n *node, isRoot bool)
	walk = func(n *node, isRoot bool) {
		if !n.isDir {
			return
		}
		if !isRoot && n.server == src {
			size := regionSize(n, src)
			// Prefer the size closest to the target from below, else the
			// smallest overshoot.
			better := false
			switch {
			case best == nil:
				better = true
			case bestSize <= want && size <= want:
				better = size > bestSize
			case bestSize > want:
				better = size <= want || size < bestSize
			}
			if better {
				best, bestSize = n, size
			}
		}
		for _, c := range n.children {
			walk(c, false)
		}
	}
	walk(root, true)
	return best, bestSize
}

// reassignRegion moves the contiguous src-owned region rooted at n to
// dst, updating load counters. Caller holds the write lock.
func (f *FS) reassignRegion(n *node, src, dst int) {
	if !n.isDir || n.server != src {
		return
	}
	n.server = dst
	f.dirCount[src]--
	f.dirCount[dst]++
	for _, c := range n.children {
		f.reassignRegion(c, src, dst)
	}
}
