// Package workload generates synthetic user filesystems and operation
// traces reproducing the population the paper evaluates on (§5.1).
//
// The paper hosted ~150 real users' filesystems: "light" users with a few
// shallow directories and hundreds of files, and "heavy" users with
// thousands of directories and up to millions of files; files per
// directory range from zero to nearly half a million, directory depth
// from zero to more than 20, and file sizes from sub-kilobyte configs to
// gigabyte videos. Those users are not available, so this package
// produces seeded filesystems with the same stated shape, scaled to fit a
// single machine (sizes above the content cap are generated as metadata
// only).
package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// Spec parameterizes one synthetic user filesystem.
type Spec struct {
	Seed     int64
	Dirs     int // number of directories (excluding the root)
	Files    int // number of files
	MaxDepth int // maximum directory depth
	// DirSkew shapes how files clump into directories: 0 spreads files
	// uniformly; higher values concentrate them into a few huge
	// directories (the paper saw up to ~half a million files in one).
	DirSkew float64
	// MeanFileSize and MaxFileSize shape the lognormal-ish size
	// distribution (sizes are metadata; content written is capped).
	MeanFileSize int64
	MaxFileSize  int64
}

// LightUser mirrors the paper's light population: several shallow
// directories and hundreds of files.
func LightUser(seed int64) Spec {
	return Spec{
		Seed: seed, Dirs: 12, Files: 300, MaxDepth: 4,
		DirSkew: 0.5, MeanFileSize: 64 << 10, MaxFileSize: 8 << 20,
	}
}

// HeavyUser mirrors the paper's heavy population, scaled to laptop size:
// thousands of directories at depths past 20 and tens of thousands of
// files (the paper's millions, divided down).
func HeavyUser(seed int64) Spec {
	return Spec{
		Seed: seed, Dirs: 2000, Files: 30000, MaxDepth: 22,
		DirSkew: 1.2, MeanFileSize: 1 << 20, MaxFileSize: 4 << 30,
	}
}

// File is one generated file: a path and a logical size.
type File struct {
	Path string
	Size int64
}

// Filesystem is one generated user tree. Dirs is ordered parents-first so
// it can be created by sequential MKDIRs.
type Filesystem struct {
	Dirs  []string
	Files []File
}

// Generate builds a filesystem from a spec. Generation is deterministic
// per seed.
func Generate(spec Spec) *Filesystem {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.MaxDepth < 1 {
		spec.MaxDepth = 1
	}
	if spec.MeanFileSize <= 0 {
		spec.MeanFileSize = 64 << 10
	}
	if spec.MaxFileSize < spec.MeanFileSize {
		spec.MaxFileSize = spec.MeanFileSize
	}

	type dirInfo struct {
		path  string
		depth int
	}
	dirs := []dirInfo{{path: "/", depth: 0}}
	deepest := 0 // index of the deepest directory so far
	out := &Filesystem{}
	for i := 0; i < spec.Dirs; i++ {
		// Parent selection mixes three habits seen in real trees: keep
		// drilling down the deepest chain (the paper's >20-deep users),
		// extend a recently created directory, or branch anywhere.
		var parent dirInfo
		for try := 0; ; try++ {
			var idx int
			switch r := rng.Float64(); {
			case r < 0.20:
				idx = deepest
			case r < 0.70:
				idx = len(dirs) - 1 - rng.Intn((len(dirs)+3)/4)
			default:
				idx = rng.Intn(len(dirs))
			}
			if idx < 0 {
				idx = rng.Intn(len(dirs))
			}
			parent = dirs[idx]
			if parent.depth < spec.MaxDepth || try > 8 {
				break
			}
		}
		if parent.depth >= spec.MaxDepth {
			parent = dirs[0]
		}
		path := fsapi.Join(parent.path, fmt.Sprintf("dir%05d", i))
		dirs = append(dirs, dirInfo{path: path, depth: parent.depth + 1})
		if parent.depth+1 > dirs[deepest].depth {
			deepest = len(dirs) - 1
		}
		out.Dirs = append(out.Dirs, path)
	}

	// Zipf-ish weights concentrate files into a few directories.
	weights := make([]float64, len(dirs))
	total := 0.0
	for i := range dirs {
		w := 1.0
		if spec.DirSkew > 0 {
			w = 1.0 / math.Pow(float64(i+1), spec.DirSkew)
		}
		weights[i] = w
		total += w
	}
	// Cumulative distribution for sampling.
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	pick := func() string {
		x := rng.Float64()
		idx := sort.SearchFloat64s(cum, x)
		if idx >= len(dirs) {
			idx = len(dirs) - 1
		}
		return dirs[idx].path
	}

	for i := 0; i < spec.Files; i++ {
		size := int64(float64(spec.MeanFileSize) * lognormalish(rng))
		if size < 16 {
			size = 16
		}
		if size > spec.MaxFileSize {
			size = spec.MaxFileSize
		}
		out.Files = append(out.Files, File{
			Path: fsapi.Join(pick(), fmt.Sprintf("file%06d.dat", i)),
			Size: size,
		})
	}
	return out
}

// lognormalish produces a positive multiplier with median ~0.5 and a long
// tail, approximating the paper's mix of tiny configs and huge videos.
func lognormalish(rng *rand.Rand) float64 {
	return math.Exp(rng.NormFloat64()*1.6 - 0.7)
}

// Stats summarizes a generated filesystem.
type Stats struct {
	Dirs       int
	Files      int
	MaxDepth   int
	MaxPerDir  int
	TotalBytes int64
}

// Stats computes summary statistics.
func (f *Filesystem) Stats() Stats {
	st := Stats{Dirs: len(f.Dirs), Files: len(f.Files)}
	perDir := map[string]int{}
	for _, d := range f.Dirs {
		if dep := fsapi.Depth(d); dep > st.MaxDepth {
			st.MaxDepth = dep
		}
	}
	for _, fl := range f.Files {
		if dep := fsapi.Depth(fl.Path); dep > st.MaxDepth {
			st.MaxDepth = dep
		}
		dir, _, _ := fsapi.Split(fl.Path)
		perDir[dir]++
		st.TotalBytes += fl.Size
	}
	for _, n := range perDir {
		if n > st.MaxPerDir {
			st.MaxPerDir = n
		}
	}
	return st
}

// Populate creates the filesystem on a target. File content is synthetic
// and capped at contentCap bytes (0 means 256) — logical sizes above the
// cap exist as metadata only, keeping gigabyte videos out of laptop RAM.
func (f *Filesystem) Populate(ctx context.Context, target fsapi.FileSystem, contentCap int) error {
	if contentCap <= 0 {
		contentCap = 256
	}
	for _, d := range f.Dirs {
		if err := target.Mkdir(ctx, d); err != nil {
			return fmt.Errorf("workload: mkdir %s: %w", d, err)
		}
	}
	buf := make([]byte, contentCap)
	for i := range buf {
		buf[i] = byte('a' + i%26)
	}
	for _, fl := range f.Files {
		n := int(fl.Size)
		if n > contentCap {
			n = contentCap
		}
		if err := target.WriteFile(ctx, fl.Path, buf[:n]); err != nil {
			return fmt.Errorf("workload: write %s: %w", fl.Path, err)
		}
	}
	return nil
}
