package workload

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// OpKind enumerates the POSIX-like operations the paper's users issued
// (§5.1): READ, WRITE, MKDIR, RMDIR, MOVE, RENAME, LIST, COPY and file
// access (Stat).
type OpKind int

// Operation kinds.
const (
	OpStat OpKind = iota
	OpRead
	OpWrite
	OpMkdir
	OpRmdir
	OpMove
	OpRename
	OpList
	OpCopy
	opKinds
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpStat:
		return "STAT"
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpMkdir:
		return "MKDIR"
	case OpRmdir:
		return "RMDIR"
	case OpMove:
		return "MOVE"
	case OpRename:
		return "RENAME"
	case OpList:
		return "LIST"
	case OpCopy:
		return "COPY"
	}
	return "UNKNOWN"
}

// Op is one trace entry.
type Op struct {
	Kind OpKind
	Path string
	Dst  string // MOVE/RENAME/COPY destination
	Data []byte // WRITE payload
}

// Weights gives the relative frequency of each kind; zero-valued kinds
// never occur. DefaultWeights approximates an interactive sync client:
// mostly reads/stats/lists, occasional structure changes.
func DefaultWeights() map[OpKind]int {
	return map[OpKind]int{
		OpStat: 30, OpRead: 20, OpWrite: 25, OpList: 12,
		OpMkdir: 6, OpRename: 3, OpMove: 2, OpCopy: 1, OpRmdir: 1,
	}
}

// GenerateOps produces a valid trace of n operations against a filesystem
// that starts in the state described by fs. Validity is maintained by
// tracking a model of the tree as the trace is generated, so every
// operation succeeds when replayed in order on a conforming
// implementation.
func GenerateOps(fs *Filesystem, n int, seed int64, weights map[OpKind]int) []Op {
	if weights == nil {
		weights = DefaultWeights()
	}
	rng := rand.New(rand.NewSource(seed))
	// Model state.
	dirs := []string{"/"}
	dirSet := map[string]bool{"/": true}
	var files []string
	fileSet := map[string]bool{}
	for _, d := range fs.Dirs {
		dirs = append(dirs, d)
		dirSet[d] = true
	}
	for _, f := range fs.Files {
		files = append(files, f.Path)
		fileSet[f.Path] = true
	}
	var kinds []OpKind
	for k := OpKind(0); k < opKinds; k++ {
		for i := 0; i < weights[k]; i++ {
			kinds = append(kinds, k)
		}
	}
	removeString := func(list []string, set map[string]bool, victim string) []string {
		delete(set, victim)
		for i, s := range list {
			if s == victim {
				list[i] = list[len(list)-1]
				return list[:len(list)-1]
			}
		}
		return list
	}
	seq := 0
	freshName := func() string {
		seq++
		return fmt.Sprintf("gen%06d", seq)
	}
	var ops []Op
	for len(ops) < n {
		kind := kinds[rng.Intn(len(kinds))]
		switch kind {
		case OpStat, OpRead:
			if len(files) == 0 {
				continue
			}
			ops = append(ops, Op{Kind: kind, Path: files[rng.Intn(len(files))]})
		case OpList:
			ops = append(ops, Op{Kind: kind, Path: dirs[rng.Intn(len(dirs))]})
		case OpWrite:
			dir := dirs[rng.Intn(len(dirs))]
			p := fsapi.Join(dir, freshName()+".dat")
			if dirSet[p] || fileSet[p] {
				continue
			}
			data := make([]byte, 16+rng.Intn(240))
			ops = append(ops, Op{Kind: kind, Path: p, Data: data})
			files = append(files, p)
			fileSet[p] = true
		case OpMkdir:
			dir := dirs[rng.Intn(len(dirs))]
			p := fsapi.Join(dir, freshName())
			if dirSet[p] || fileSet[p] {
				continue
			}
			ops = append(ops, Op{Kind: kind, Path: p})
			dirs = append(dirs, p)
			dirSet[p] = true
		case OpRmdir:
			// Only remove empty generated leaf dirs to keep the model simple.
			var candidates []string
			for _, d := range dirs {
				if d == "/" {
					continue
				}
				empty := true
				for _, other := range dirs {
					if fsapi.IsAncestor(d, other) {
						empty = false
						break
					}
				}
				if empty {
					for _, f := range files {
						if fsapi.IsAncestor(d, f) {
							empty = false
							break
						}
					}
				}
				if empty {
					candidates = append(candidates, d)
					if len(candidates) > 8 {
						break
					}
				}
			}
			if len(candidates) == 0 {
				continue
			}
			victim := candidates[rng.Intn(len(candidates))]
			ops = append(ops, Op{Kind: kind, Path: victim})
			dirs = removeString(dirs, dirSet, victim)
		case OpRename, OpMove, OpCopy:
			if len(files) == 0 {
				continue
			}
			src := files[rng.Intn(len(files))]
			srcDir, _, err := fsapi.Split(src)
			if err != nil {
				continue
			}
			dstDir := srcDir
			if kind != OpRename {
				dstDir = dirs[rng.Intn(len(dirs))]
			}
			dst := fsapi.Join(dstDir, freshName()+".dat")
			if dirSet[dst] || fileSet[dst] || dst == src {
				continue
			}
			ops = append(ops, Op{Kind: kind, Path: src, Dst: dst})
			if kind == OpCopy {
				files = append(files, dst)
				fileSet[dst] = true
			} else {
				files = removeString(files, fileSet, src)
				files = append(files, dst)
				fileSet[dst] = true
			}
		}
	}
	return ops
}

// Replay applies a trace to a filesystem, returning the first error.
func Replay(ctx context.Context, target fsapi.FileSystem, ops []Op) error {
	for i, op := range ops {
		var err error
		switch op.Kind {
		case OpStat:
			_, err = target.Stat(ctx, op.Path)
		case OpRead:
			_, err = target.ReadFile(ctx, op.Path)
		case OpWrite:
			err = target.WriteFile(ctx, op.Path, op.Data)
		case OpMkdir:
			err = target.Mkdir(ctx, op.Path)
		case OpRmdir:
			err = target.Rmdir(ctx, op.Path)
		case OpMove, OpRename:
			err = target.Move(ctx, op.Path, op.Dst)
		case OpList:
			_, err = target.List(ctx, op.Path, false)
		case OpCopy:
			err = target.Copy(ctx, op.Path, op.Dst)
		}
		if err != nil {
			return fmt.Errorf("workload: op %d %s %s: %w", i, op.Kind, op.Path, err)
		}
	}
	return nil
}
