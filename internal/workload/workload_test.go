package workload

import (
	"context"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/h2fs"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(LightUser(7))
	b := Generate(LightUser(7))
	if len(a.Dirs) != len(b.Dirs) || len(a.Files) != len(b.Files) {
		t.Fatal("generation not deterministic in counts")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs: %+v vs %+v", i, a.Files[i], b.Files[i])
		}
	}
	c := Generate(LightUser(8))
	same := len(c.Files) == len(a.Files)
	if same {
		diff := false
		for i := range a.Files {
			if a.Files[i] != c.Files[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical filesystems")
		}
	}
}

func TestGenerateRespectsSpec(t *testing.T) {
	spec := Spec{Seed: 1, Dirs: 100, Files: 500, MaxDepth: 6, DirSkew: 1.0, MeanFileSize: 1024, MaxFileSize: 1 << 20}
	fs := Generate(spec)
	st := fs.Stats()
	if st.Dirs != 100 || st.Files != 500 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.MaxDepth > 7 { // dirs capped at 6; files may sit one deeper
		t.Fatalf("MaxDepth = %d, want <= 7", st.MaxDepth)
	}
	if st.TotalBytes <= 0 {
		t.Fatal("no bytes generated")
	}
}

func TestParentsBeforeChildren(t *testing.T) {
	fs := Generate(Spec{Seed: 3, Dirs: 200, Files: 10, MaxDepth: 10})
	seen := map[string]bool{"/": true}
	for _, d := range fs.Dirs {
		parent := "/"
		for i := len(d) - 1; i > 0; i-- {
			if d[i] == '/' {
				parent = d[:i]
				break
			}
		}
		if !seen[parent] {
			t.Fatalf("dir %s generated before its parent %s", d, parent)
		}
		seen[d] = true
	}
}

func TestSkewConcentratesFiles(t *testing.T) {
	flat := Generate(Spec{Seed: 5, Dirs: 50, Files: 2000, MaxDepth: 5, DirSkew: 0}).Stats()
	skewed := Generate(Spec{Seed: 5, Dirs: 50, Files: 2000, MaxDepth: 5, DirSkew: 1.5}).Stats()
	if skewed.MaxPerDir <= flat.MaxPerDir {
		t.Fatalf("skew did not concentrate files: flat max %d, skewed max %d",
			flat.MaxPerDir, skewed.MaxPerDir)
	}
}

func newH2(t testing.TB) *h2fs.AccountFS {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h2fs.New(h2fs.Config{Store: c, Node: 1, EagerGC: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CreateAccount(context.Background(), "u1"); err != nil {
		t.Fatal(err)
	}
	return m.FS("u1")
}

func TestPopulateAndReplayOnH2(t *testing.T) {
	fs := Generate(Spec{Seed: 2, Dirs: 30, Files: 120, MaxDepth: 5, DirSkew: 0.8, MeanFileSize: 512, MaxFileSize: 4096})
	target := newH2(t)
	ctx := context.Background()
	if err := fs.Populate(ctx, target, 128); err != nil {
		t.Fatal(err)
	}
	// Spot-check a file exists with capped content.
	info, err := target.Stat(ctx, fs.Files[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size <= 0 || info.Size > 128 {
		t.Fatalf("populated size = %d, want (0,128]", info.Size)
	}
	ops := GenerateOps(fs, 400, 9, nil)
	if len(ops) != 400 {
		t.Fatalf("generated %d ops", len(ops))
	}
	if err := Replay(ctx, target, ops); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateOpsCoverKinds(t *testing.T) {
	fs := Generate(LightUser(1))
	ops := GenerateOps(fs, 2000, 4, nil)
	seen := map[OpKind]bool{}
	for _, op := range ops {
		seen[op.Kind] = true
	}
	for _, k := range []OpKind{OpStat, OpRead, OpWrite, OpMkdir, OpList, OpMove, OpRename, OpCopy} {
		if !seen[k] {
			t.Errorf("kind %s never generated", k)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpStat.String() != "STAT" || OpCopy.String() != "COPY" || OpKind(99).String() != "UNKNOWN" {
		t.Fatal("OpKind.String wrong")
	}
}
