package bench

import (
	"context"
	"fmt"
	"time"
)

// table1Scales defines the two measurement configurations whose ratio
// exposes each operation's complexity class empirically.
type table1Scale struct {
	bulk int // files elsewhere in the filesystem (the N term)
	n    int // files / children in the operated-on directory (n and m)
}

var (
	table1Small = table1Scale{bulk: 64, n: 16}
	table1Large = table1Scale{bulk: 4096, n: 512}
)

// table1Ops are the operation columns of Table 1.
var table1Ops = []string{"ACCESS", "MKDIR", "RMDIR", "MOVE", "LIST", "COPY"}

// measureTable1 builds one system at one scale and measures every Table 1
// operation.
func measureTable1(kind string, sc table1Scale) (map[string]time.Duration, error) {
	out := map[string]time.Duration{}
	sys, err := NewSystem(kind)
	if err != nil {
		return nil, err
	}
	// Fixture: /bulk carries the N term; /dir is the operated directory;
	// /a/b/c/probe.dat is the depth-4 access target.
	if err := populateDir(sys.FS, "/bulk", sc.bulk); err != nil {
		return nil, err
	}
	if err := populateDir(sys.FS, "/dir", sc.n); err != nil {
		return nil, err
	}
	for _, d := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := sys.FS.Mkdir(bg(), d); err != nil {
			return nil, err
		}
	}
	if err := sys.FS.WriteFile(bg(), "/a/b/c/probe.dat", []byte("x")); err != nil {
		return nil, err
	}
	if err := sys.FS.Mkdir(bg(), "/target"); err != nil {
		return nil, err
	}

	steps := []struct {
		name string
		op   func(ctx context.Context) error
	}{
		{"ACCESS", func(ctx context.Context) error {
			_, err := sys.FS.Stat(ctx, "/a/b/c/probe.dat")
			return err
		}},
		{"MKDIR", func(ctx context.Context) error {
			return sys.FS.Mkdir(ctx, "/fresh")
		}},
		{"LIST", func(ctx context.Context) error {
			_, err := sys.FS.List(ctx, "/dir", true)
			return err
		}},
		{"COPY", func(ctx context.Context) error {
			return sys.FS.Copy(ctx, "/dir", "/dir-copy")
		}},
		{"MOVE", func(ctx context.Context) error {
			return sys.FS.Move(ctx, "/dir", "/target/dir")
		}},
		{"RMDIR", func(ctx context.Context) error {
			return sys.FS.Rmdir(ctx, "/target/dir")
		}},
	}
	for _, step := range steps {
		d, err := Measure(step.op)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", kind, step.name, err)
		}
		out[step.name] = d
	}
	return out, nil
}

// Table1 regenerates the paper's Table 1 empirically: each data
// structure's operation time at a small and a large scale, with the
// growth ratio exposing the complexity class (flat ratio ⇒ O(1)/O(d);
// ratio tracking n (×32 here) ⇒ O(n); ratio tracking N (×64) ⇒ O(N)).
func Table1() (Result, error) {
	res := Result{
		Experiment: "table1",
		Title:      "Table 1 (empirical): operation time small -> large scale (growth ratio)",
		Unit:       "ms",
		Header:     append([]string{"Data structure"}, table1Ops...),
		Notes: []string{
			fmt.Sprintf("small: n=m=%d, N=%d;  large: n=m=%d, N=%d (n grew x%d, N grew x%d)",
				table1Small.n, table1Small.bulk+table1Small.n,
				table1Large.n, table1Large.bulk+table1Large.n,
				table1Large.n/table1Small.n,
				(table1Large.bulk+table1Large.n)/(table1Small.bulk+table1Small.n)),
			"flat ratio => O(1)/O(d); ratio ~ n growth => O(n); ratio ~ N growth => O(N)",
		},
	}
	for _, kind := range Kinds {
		small, err := measureTable1(kind, table1Small)
		if err != nil {
			return res, err
		}
		large, err := measureTable1(kind, table1Large)
		if err != nil {
			return res, err
		}
		row := []string{DisplayName(kind)}
		for _, op := range table1Ops {
			s, l := small[op], large[op]
			ratio := 0.0
			if s > 0 {
				ratio = float64(l) / float64(s)
			}
			row = append(row, fmt.Sprintf("%.1f->%.1f (x%.1f)", ms(s), ms(l), ratio))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
