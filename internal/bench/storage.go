package bench

import (
	"context"
	"fmt"

	"github.com/h2cloud/h2cloud/internal/workload"
)

// DefaultFileCounts is the x-axis for the storage-overhead figures.
var DefaultFileCounts = []int{1000, 5000, 10000, 20000}

// storagePopulate builds identical workloads on H2Cloud and Swift and
// returns their cluster statistics after all NameRing patches are folded.
func storageSweep(fileCounts []int, measure func(sys *System) float64, unit string) (map[string][]Point, error) {
	out := map[string][]Point{}
	for _, files := range fileCounts {
		spec := workload.Spec{
			Seed: 42, Dirs: files / 10, Files: files, MaxDepth: 8,
			DirSkew: 0.8, MeanFileSize: 4 << 10, MaxFileSize: 64 << 10,
		}
		fs := workload.Generate(spec)
		for _, kind := range []string{"h2cloud", "swift"} {
			sys, err := NewSystem(kind)
			if err != nil {
				return nil, err
			}
			//h2vet:ignore ctxcheck bench fixture population owns its root context
			if err := fs.Populate(context.Background(), sys.FS, 4096); err != nil {
				return nil, fmt.Errorf("%s: %w", kind, err)
			}
			if sys.MW != nil {
				//h2vet:ignore ctxcheck bench fixture population owns its root context
				if err := sys.MW.FlushAll(context.Background()); err != nil {
					return nil, err
				}
			}
			out[kind] = append(out[kind], Point{X: float64(files), Y: measure(sys)})
		}
	}
	_ = unit
	return out, nil
}

// Fig14ObjectCount regenerates Figure 14: the number of objects stored by
// H2Cloud versus OpenStack Swift for the same user filesystems. Expected
// shape: H2Cloud clearly higher — every directory adds a directory object
// and a NameRing object.
func Fig14ObjectCount(fileCounts []int) (Result, error) {
	if len(fileCounts) == 0 {
		fileCounts = DefaultFileCounts
	}
	res := Result{
		Experiment: "fig14", Title: "Number of objects (storage overhead)",
		XLabel: "files in filesystem", YLabel: "objects in cloud", Unit: "objects",
	}
	sweep, err := storageSweep(fileCounts, func(sys *System) float64 {
		return float64(sys.Cluster.Stats().Objects)
	}, "objects")
	if err != nil {
		return res, err
	}
	for _, kind := range []string{"h2cloud", "swift"} {
		res.Series = append(res.Series, Series{System: DisplayName(kind), Points: sweep[kind]})
	}
	res.Notes = append(res.Notes,
		"H2Cloud stores one directory object + one NameRing object per directory; Swift stores only files and zero-byte markers (its file-path records live in the separate per-account DB).")
	return res, nil
}

// Fig15ObjectSize regenerates Figure 15: total stored bytes for the same
// workloads. Expected shape: the two curves nearly coincide — directory
// and NameRing objects are sub-kilobyte next to file content.
func Fig15ObjectSize(fileCounts []int) (Result, error) {
	if len(fileCounts) == 0 {
		fileCounts = DefaultFileCounts
	}
	res := Result{
		Experiment: "fig15", Title: "Size of objects (storage overhead)",
		XLabel: "files in filesystem", YLabel: "stored bytes", Unit: "MB",
	}
	sweep, err := storageSweep(fileCounts, func(sys *System) float64 {
		return float64(sys.Cluster.Stats().Bytes) / (1 << 20)
	}, "MB")
	if err != nil {
		return res, err
	}
	for _, kind := range []string{"h2cloud", "swift"} {
		res.Series = append(res.Series, Series{System: DisplayName(kind), Points: sweep[kind]})
	}
	res.Notes = append(res.Notes,
		"File content here is capped at 4 KiB per file (laptop scale); with the paper's ~1 MB average files the relative metadata overhead shrinks by a further ~250x.")
	return res, nil
}

// Headline reproduces the paper's §1 headline numbers for H2Cloud:
// "LISTing 1000 files costs just 0.35 second and COPYing 1000 files costs
// ~10 seconds."
func Headline() (Result, error) {
	res := Result{
		Experiment: "headline", Title: "H2Cloud headline operations (paper §1)",
		XLabel: "operation", YLabel: "time", Unit: "ms",
	}
	sys, err := NewSystem("h2cloud")
	if err != nil {
		return res, err
	}
	if err := populateDir(sys.FS, "/dir", 1000); err != nil {
		return res, err
	}
	list, err := Measure(func(ctx context.Context) error {
		_, err := sys.FS.List(ctx, "/dir", true)
		return err
	})
	if err != nil {
		return res, err
	}
	cp, err := Measure(func(ctx context.Context) error {
		return sys.FS.Copy(ctx, "/dir", "/dir-copy")
	})
	if err != nil {
		return res, err
	}
	res.Series = []Series{
		{System: "LIST 1000 files (paper: ~350 ms)", Points: []Point{{X: 1000, Y: ms(list)}}},
		{System: "COPY 1000 files (paper: ~10000 ms)", Points: []Point{{X: 1000, Y: ms(cp)}}},
	}
	return res, nil
}
