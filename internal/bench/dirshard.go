package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

// DirShard is the giant-directory sharding experiment. The paper's
// workloads put half a million files in one directory (§5.1); with a
// monolithic NameRing every Background Merger flush rewrites the whole
// ring object, so the per-patch write cost grows with m even though a
// patch carries one tuple. Hash-partitioned sub-ring extents
// (CostProfile.DirShardThreshold) cut the steady-state flush to one
// extent plus the manifest. One row per directory size m, comparing the
// monolithic and 16-shard configurations on:
//
//   - per-patch ring bytes: ring-layer bytes one flush writes after a
//     single-file patch (the CI gate: >= 4x reduction at m=500000)
//   - cold detailed-LIST latency: manifest + extent fan-out reads in one
//     overlapped window vs one monolithic mega-object GET
//   - crash convergence: the merger is killed between the extent writes
//     and the manifest flip; after restart + replay + scrub the orphan
//     count must be 0
//
// Like every simulated experiment the numbers are virtual-clock costs
// and deterministic; the experiment is dispatchable by name but kept out
// of the "all" list so the committed results/*.csv corpus is untouched.
func DirShard(quick bool) (Result, error) {
	sizes := []int{64000, 256000, 500000}
	if quick {
		sizes = []int{64000, 500000}
	}
	const shards = 16
	res := Result{
		Experiment: "dirshard",
		Title:      "giant-directory NameRing sharding: per-patch write bytes and detailed LIST",
		Unit:       "mixed",
		Header: []string{
			"m", "shards", "patch bytes (mono)", "patch bytes (sharded)",
			"reduction", "list mono (ms)", "list sharded (ms)", "crash orphans",
		},
		Notes: []string{
			"patch bytes = ring-layer bytes (ring, manifest, extents) one merger flush writes after a one-tuple patch",
			"CI gates the m=500000 row: sharded per-patch bytes must be >= 4x below monolithic",
			"crash cell: flush killed between extent writes and manifest flip; replay + scrub must converge with 0 orphans",
			"DirShardThreshold=0 (the default) never writes a manifest: Table 1 and results/*.csv are byte-identical",
		},
	}
	for _, m := range sizes {
		row, err := dirShardRun(m, shards)
		if err != nil {
			return res, fmt.Errorf("dirshard m=%d: %w", m, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// dirShardRun drives one directory-size cell: a monolithic control and a
// sharded run (which doubles as the crash cell) on separate clusters.
func dirShardRun(m, shards int) ([]string, error) {
	monoBytes, monoList, err := dirShardConfig(m, 0)
	if err != nil {
		return nil, fmt.Errorf("monolithic: %w", err)
	}
	// Threshold placing m live tuples (plus the measurement extras) in
	// exactly `shards` power-of-two extents.
	threshold := m/shards + 256
	shardBytes, shardList, err := dirShardConfig(m, threshold)
	if err != nil {
		return nil, fmt.Errorf("sharded: %w", err)
	}
	orphans, err := dirShardCrash(m, threshold)
	if err != nil {
		return nil, fmt.Errorf("crash: %w", err)
	}
	return []string{
		fmt.Sprintf("%d", m),
		fmt.Sprintf("%d", shards),
		fmt.Sprintf("%d", monoBytes),
		fmt.Sprintf("%d", shardBytes),
		fmt.Sprintf("%.1fx", float64(monoBytes)/float64(shardBytes)),
		fmt.Sprintf("%.2f", ms(monoList)),
		fmt.Sprintf("%.2f", ms(shardList)),
		fmt.Sprintf("%d", orphans),
	}, nil
}

// dirShardConfig builds an m-child directory under the given threshold,
// reaches the steady state (split complete when threshold > 0), and
// measures one per-patch flush plus a cold detailed LIST page.
func dirShardConfig(m, threshold int) (int64, time.Duration, error) {
	f, err := newDirShardFixture(m, threshold)
	if err != nil {
		return 0, 0, err
	}
	// Reach steady state: the first flush after the ring injection does
	// the split (threshold > 0) or the first full rewrite (threshold 0).
	if err := f.patchAndFlush("extra1"); err != nil {
		return 0, 0, err
	}
	// The measured cell: one single-tuple patch, one merger flush.
	f.store.take()
	if err := f.patchAndFlush("extra2"); err != nil {
		return 0, 0, err
	}
	patchBytes := f.store.take()

	// Cold detailed LIST of the first page through a fresh middleware:
	// ring load (manifest + extent window when sharded) + one multi-HEAD.
	cold, err := h2fs.New(h2fs.Config{Store: f.store, Node: 2, Profile: f.profile, Clock: f.clock})
	if err != nil {
		return 0, 0, err
	}
	listTime, err := Measure(func(ctx context.Context) error {
		_, _, err := cold.ListPage(ctx, "bench", "/big", true, "", 1000)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	return patchBytes, listTime, nil
}

// dirShardCrash kills the split flush between the extent writes and the
// manifest flip, then verifies convergence: replay restores the patched
// view, scrub reclaims the abandoned extents, the retried split
// completes, and a final scrub finds zero orphans (the returned count).
func dirShardCrash(m, threshold int) (int, error) {
	f, err := newDirShardFixture(m, threshold)
	if err != nil {
		return -1, err
	}
	if err := f.mw.FS("bench").WriteFile(bg(), "/big/extra1", []byte("x")); err != nil {
		return -1, err
	}
	f.store.setFailFlip(true)
	if err := f.mw.FlushAll(bg()); err == nil {
		return -1, fmt.Errorf("split flush survived the injected flip failure")
	}
	f.store.setFailFlip(false)

	// Restart: descriptors drop, the patch chain replays, and the
	// half-written extents are unreferenced garbage for the scrubber.
	f.mw.Recover()
	entries, err := f.mw.FS("bench").List(bg(), "/big", false)
	if err != nil {
		return -1, err
	}
	if len(entries) != m+1 {
		return -1, fmt.Errorf("replay lost children: %d listed, want %d", len(entries), m+1)
	}
	rep, err := f.mw.Scrub(bg(), deviceNames(f.cluster), true)
	if err != nil {
		return -1, err
	}
	if rep.Reclaimed == 0 {
		return -1, fmt.Errorf("scrub reclaimed nothing after the crashed split")
	}
	// The retried flush completes the split; the final scrub must be
	// clean.
	if err := f.mw.FlushAll(bg()); err != nil {
		return -1, err
	}
	rep, err = f.mw.Scrub(bg(), deviceNames(f.cluster), false)
	if err != nil {
		return -1, err
	}
	return len(rep.Orphans), nil
}

// dirShardFixture is one cluster + middleware with an m-child /big
// directory, its ring injected directly (populating half a million
// children through WriteFile would swamp the fixture, and the flush
// paths under test only care about the stored ring).
type dirShardFixture struct {
	cluster *cluster.Cluster
	store   *dirShardStore
	mw      *h2fs.Middleware
	profile cluster.CostProfile
	clock   func() time.Time
}

func newDirShardFixture(m, threshold int) (*dirShardFixture, error) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	profile := cluster.SwiftProfile()
	profile.DirShardThreshold = threshold
	c, err := cluster.New(cluster.Config{Profile: profile, Clock: clock})
	if err != nil {
		return nil, err
	}
	store := newDirShardStore(c)
	mw, err := h2fs.New(h2fs.Config{Store: store, Node: 1, Profile: profile, Clock: clock})
	if err != nil {
		return nil, err
	}
	if err := mw.CreateAccount(bg(), "bench"); err != nil {
		return nil, err
	}
	if err := mw.FS("bench").Mkdir(bg(), "/big"); err != nil {
		return nil, err
	}
	if err := mw.FlushAll(bg()); err != nil {
		return nil, err
	}
	// Locate /big's namespace from the flushed root ring, then inject the
	// m-tuple ring object beneath it.
	rootData, _, err := c.Get(bg(), core.RootKey("bench"))
	if err != nil {
		return nil, err
	}
	rootRing, _, err := c.Get(bg(), core.RingKey("bench", string(rootData)))
	if err != nil {
		return nil, err
	}
	ring, err := core.DecodeNameRing(rootRing)
	if err != nil {
		return nil, err
	}
	ns := ""
	for _, t := range ring.Live() {
		if t.Name == "big" {
			ns = t.NS
		}
	}
	if ns == "" {
		return nil, fmt.Errorf("/big missing from the flushed root ring")
	}
	big := core.NewNameRing()
	for i := 0; i < m; i++ {
		big.Set(core.Tuple{Name: fmt.Sprintf("f%06d", i), Time: int64(i + 1)})
	}
	if err := c.Put(bg(), core.RingKey("bench", ns), core.EncodeNameRing(big), nil); err != nil {
		return nil, err
	}
	return &dirShardFixture{cluster: c, store: store, mw: mw, profile: profile, clock: clock}, nil
}

// patchAndFlush submits one single-tuple patch and runs the Background
// Merger once.
func (f *dirShardFixture) patchAndFlush(name string) error {
	if err := f.mw.FS("bench").WriteFile(bg(), "/big/"+name, []byte("x")); err != nil {
		return err
	}
	return f.mw.FlushAll(bg())
}

// dirShardStore wraps the cluster to count ring-layer put bytes (rings,
// manifests, extents — not patches or file objects) and to inject the
// crash between extent writes and manifest flip. It forwards the batch
// contract to the cluster's native Batcher so overlapped-window charging
// is preserved (interface embedding alone would hide it and silently
// serialize every fan-out).
type dirShardStore struct {
	objstore.Store
	batch objstore.Batcher

	mu        sync.Mutex
	ringBytes int64
	failFlip  bool
}

func newDirShardStore(c *cluster.Cluster) *dirShardStore {
	return &dirShardStore{Store: c, batch: c}
}

func (s *dirShardStore) noteRing(name string, n int) {
	if !strings.HasSuffix(name, "::/NameRing/") && !core.IsExtentKey(name) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ringBytes += int64(n)
}

func (s *dirShardStore) take() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.ringBytes
	s.ringBytes = 0
	return b
}

func (s *dirShardStore) setFailFlip(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failFlip = on
}

func (s *dirShardStore) flipArmed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failFlip
}

func (s *dirShardStore) Put(ctx context.Context, name string, data []byte, meta map[string]string) error {
	if core.IsShardManifest(data) && s.flipArmed() {
		return fmt.Errorf("dirshard: injected crash before manifest flip: %w", objstore.ErrNodeDown)
	}
	s.noteRing(name, len(data))
	return s.Store.Put(ctx, name, data, meta)
}

func (s *dirShardStore) MultiGet(ctx context.Context, names []string) []objstore.GetResult {
	return s.batch.MultiGet(ctx, names)
}

func (s *dirShardStore) MultiHead(ctx context.Context, names []string) []objstore.HeadResult {
	return s.batch.MultiHead(ctx, names)
}

func (s *dirShardStore) MultiPut(ctx context.Context, reqs []objstore.PutReq) []error {
	for _, r := range reqs {
		s.noteRing(r.Name, len(r.Data))
	}
	return s.batch.MultiPut(ctx, reqs)
}

func (s *dirShardStore) MultiDelete(ctx context.Context, names []string) []error {
	return s.batch.MultiDelete(ctx, names)
}
