package bench

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/h2cloud/h2cloud/internal/chaos"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/metrics"
)

// GCQueueReclamation is the durable-reclamation experiment: with EagerGC
// off and the GC queue on, RMDIR of an n-file directory must cost the
// same regardless of n (ring patch + two queue puts), while the actual
// reclamation happens in a background drain whose simulated lag scales
// with n. A targeted fault crashes the first drain partway through the
// walk; the middleware restarts (Recover) and the replayed drain must
// converge — scrubber-verified zero orphans, untouched survivor files —
// at every size. One row per subtree size.
func GCQueueReclamation(quick bool) (Result, error) {
	sizes := []int{64, 256, 1024}
	if quick {
		sizes = []int{8, 32, 128}
	}
	res := Result{
		Experiment: "gcqueue",
		Title:      "durable GC queue: O(1) rmdir, crash-safe background reclamation",
		Unit:       "mixed",
		Header: []string{
			"files", "rmdir (ms)", "enqueue objects", "pending",
			"crashed drain", "replay drain (ms)", "objects freed", "orphans",
		},
		Notes: []string{
			"rmdir cost must be flat across sizes: tombstone patch + entry + index, never the walk",
			"first drain is killed mid-walk by an injected fault; the replay resumes from the durable index",
			"orphans must be 0 after replay (scrubber-verified); survivor files are byte-checked",
			"same seed => byte-identical results (deterministic chaos engine + virtual clock)",
		},
	}
	for _, n := range sizes {
		row, err := gcQueueRun(n)
		if err != nil {
			return res, fmt.Errorf("gcqueue n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// gcQueueRun drives one subtree-size cell and returns its table row.
func gcQueueRun(n int) ([]string, error) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	profile := cluster.SwiftProfile()
	c, err := cluster.New(cluster.Config{Profile: profile, Clock: clock})
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	eng := chaos.New(chaos.Plan{Seed: 1337}, reg)
	eng.Bind(c)
	cs := eng.Store(c)
	m, err := h2fs.New(h2fs.Config{
		Store: cs, Node: 1, Profile: profile, Clock: clock,
		GCQueue: true, Retry: h2fs.DefaultRetryPolicy(), Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	if err := m.CreateAccount(bg(), "bench"); err != nil {
		return nil, err
	}
	fs := m.FS("bench")
	if err := fs.Mkdir(bg(), "/keep"); err != nil {
		return nil, err
	}
	keep := func(i int) ([]byte, string) {
		return []byte(fmt.Sprintf("survivor %d", i)), fmt.Sprintf("/keep/k%d", i)
	}
	for i := 0; i < 3; i++ {
		data, p := keep(i)
		if err := fs.WriteFile(bg(), p, data); err != nil {
			return nil, err
		}
	}
	if err := populateDir(fs, "/victim", n); err != nil {
		return nil, err
	}
	if err := m.FlushAll(bg()); err != nil {
		return nil, err
	}
	base := c.Stats().Objects

	// The O(1) claim: rmdir time on the virtual clock, independent of n.
	rmdirTime, err := Measure(func(ctx context.Context) error {
		return fs.Rmdir(ctx, "/victim")
	})
	if err != nil {
		return nil, err
	}
	enqObjects := c.Stats().Objects - base
	snap, err := m.GCQueueSnapshot(bg())
	if err != nil {
		return nil, err
	}

	// Crash the first drain partway through the file deletes, restart,
	// and measure the replayed drain — the reclamation lag.
	cs.FailOn(chaos.OpDelete, "::f0")
	crashed := "no"
	if _, err := m.DrainGC(bg()); err != nil {
		crashed = "yes"
	}
	cs.FailOn(chaos.OpDelete, "")
	m.Recover()
	drainTime, err := Measure(func(ctx context.Context) error {
		drained, err := m.DrainGC(ctx)
		if err == nil && drained != 1 {
			err = fmt.Errorf("replay drained %d entries, want 1", drained)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := m.FlushAll(bg()); err != nil {
		return nil, err
	}
	freed := base + enqObjects - c.Stats().Objects

	// Convergence: no orphans, survivors intact.
	rep, err := m.Scrub(bg(), deviceNames(c), false)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		want, p := keep(i)
		data, err := fs.ReadFile(bg(), p)
		if err != nil {
			return nil, fmt.Errorf("survivor %s damaged: %w", p, err)
		}
		if !bytes.Equal(data, want) {
			return nil, fmt.Errorf("survivor %s content = %q, want %q", p, data, want)
		}
	}
	return []string{
		fmt.Sprintf("%d", n),
		fmt.Sprintf("%.2f", ms(rmdirTime)),
		fmt.Sprintf("%d", enqObjects),
		fmt.Sprintf("%d", snap.Pending),
		crashed,
		fmt.Sprintf("%.2f", ms(drainTime)),
		fmt.Sprintf("%d", freed),
		fmt.Sprintf("%d", len(rep.Orphans)),
	}, nil
}

// deviceNames unions object names across every device — the key universe
// a scrub pass cross-checks.
func deviceNames(c *cluster.Cluster) []string {
	seen := make(map[string]bool)
	var names []string
	for _, id := range c.Ring().DeviceIDs() {
		for _, name := range c.Node(id).Names() {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names
}
