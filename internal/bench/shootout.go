package bench

import (
	"fmt"
	"time"

	"github.com/h2cloud/h2cloud/internal/vclock"
	"github.com/h2cloud/h2cloud/internal/workload"
)

// Shootout runs one synthetic user filesystem and one mixed POSIX-like
// operation trace over every Table 1 data structure and reports the
// simulated time each takes — the complexity table brought to life on a
// realistic interactive workload rather than single-operation
// microbenchmarks.
func Shootout(quick bool) (Result, error) {
	spec := workload.LightUser(2026)
	opCount := 500
	if quick {
		spec = workload.Spec{Seed: 2026, Dirs: 6, Files: 60, MaxDepth: 3,
			DirSkew: 0.5, MeanFileSize: 256, MaxFileSize: 1024}
		opCount = 120
	}
	tree := workload.Generate(spec)
	ops := workload.GenerateOps(tree, opCount, 7, nil)
	st := tree.Stats()
	res := Result{
		Experiment: "shootout",
		Title: fmt.Sprintf("Mixed workload: %d dirs, %d files, %d interactive ops",
			st.Dirs, st.Files, len(ops)),
		Unit:   "ms",
		Header: []string{"system", "populate (ms)", "trace (ms)", "per op (ms)"},
		Notes: []string{
			"simulated service time, excluding WAN RTT — the paper's metric (§5.2)",
		},
	}
	for _, kind := range Kinds {
		sys, err := NewSystem(kind)
		if err != nil {
			return res, err
		}
		popTr := vclock.NewTracker()
		if err := tree.Populate(vclock.With(bg(), popTr), sys.FS, 256); err != nil {
			return res, fmt.Errorf("%s populate: %w", kind, err)
		}
		opTr := vclock.NewTracker()
		if err := workload.Replay(vclock.With(bg(), opTr), sys.FS, ops); err != nil {
			return res, fmt.Errorf("%s replay: %w", kind, err)
		}
		perOp := opTr.Elapsed() / time.Duration(len(ops))
		res.Rows = append(res.Rows, []string{
			DisplayName(kind),
			fmt.Sprintf("%.0f", ms(popTr.Elapsed())),
			fmt.Sprintf("%.0f", ms(opTr.Elapsed())),
			fmt.Sprintf("%.1f", ms(perOp)),
		})
	}
	return res, nil
}
