package bench

import (
	"encoding/json"
	"fmt"
	"strings"
)

// FormatText renders a result as an aligned plain-text table for the
// terminal.
func FormatText(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.Experiment, r.Title)
	if len(r.Rows) > 0 {
		writeAligned(&b, append([][]string{r.Header}, r.Rows...))
	} else {
		header := []string{r.XLabel}
		for _, s := range r.Series {
			header = append(header, fmt.Sprintf("%s (%s)", s.System, r.Unit))
		}
		rows := [][]string{header}
		for i := range maxPoints(r.Series) {
			row := make([]string, 0, len(header))
			x := ""
			for _, s := range r.Series {
				if i < len(s.Points) {
					x = trimFloat(s.Points[i].X)
					break
				}
			}
			row = append(row, x)
			for _, s := range r.Series {
				if i < len(s.Points) {
					row = append(row, trimFloat(s.Points[i].Y))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		writeAligned(&b, rows)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// FormatCSV renders a result as CSV (series results only; table results
// are emitted row-wise).
func FormatCSV(r Result) string {
	var b strings.Builder
	if len(r.Rows) > 0 {
		b.WriteString(strings.Join(r.Header, ","))
		b.WriteByte('\n')
		for _, row := range r.Rows {
			b.WriteString(strings.Join(quoteAll(row), ","))
			b.WriteByte('\n')
		}
		return b.String()
	}
	header := []string{"x"}
	for _, s := range r.Series {
		header = append(header, s.System)
	}
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for i := range maxPoints(r.Series) {
		row := []string{""}
		for _, s := range r.Series {
			if i < len(s.Points) {
				if row[0] == "" {
					row[0] = trimFloat(s.Points[i].X)
				}
				row = append(row, trimFloat(s.Points[i].Y))
			} else {
				row = append(row, "")
			}
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatJSON renders a result as indented JSON — the machine-readable
// artifact (BENCH_<experiment>.json) CI jobs archive and diff. Field
// order is fixed by the Result struct, so two runs of a deterministic
// experiment produce byte-identical documents.
func FormatJSON(r Result) string {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf("{\"error\":%q}", err.Error())
	}
	return string(data) + "\n"
}

func quoteAll(row []string) []string {
	out := make([]string, len(row))
	for i, cell := range row {
		if strings.ContainsAny(cell, ",\"\n") {
			cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
		}
		out[i] = cell
	}
	return out
}

func maxPoints(series []Series) []struct{} {
	max := 0
	for _, s := range series {
		if len(s.Points) > max {
			max = len(s.Points)
		}
	}
	return make([]struct{}, max)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			pad := widths[i] - len(cell)
			b.WriteString("  ")
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
}

// Run dispatches an experiment by name.
func Run(name string, quick bool) (Result, error) {
	ns, ms, depths, files := DefaultNs, DefaultMs, DefaultDepths, DefaultFileCounts
	if quick {
		ns = []int{10, 100, 1000}
		ms = []int{10, 100, 1000}
		depths = []int{1, 2, 4, 8}
		files = []int{500, 2000}
	}
	switch name {
	case "fig7":
		return Fig7Move(ns)
	case "fig8":
		return Fig8Rmdir(ns)
	case "fig9":
		return Fig9ListVsN(ns, 1000)
	case "fig10":
		return Fig10ListVsM(ms)
	case "fig11":
		return Fig11Copy(ns)
	case "fig12":
		return Fig12Mkdir(ns)
	case "fig13":
		return Fig13Access(depths)
	case "fig14":
		return Fig14ObjectCount(files)
	case "fig15":
		return Fig15ObjectSize(files)
	case "table1":
		return Table1()
	case "rtt":
		return RTT()
	case "headline":
		return Headline()
	case "ablation-fanout":
		return AblationFanout(nil)
	case "ablation-dpsplit":
		return AblationDPSplit(nil)
	case "ablation-ring":
		return AblationRingBalance(nil)
	case "ablation-patchchain":
		return AblationPatchChain(nil)
	case "ablation-gossip":
		return AblationGossip(nil)
	case "ablation-syncproto":
		return AblationSyncProtocol(0)
	case "shootout":
		return Shootout(quick)
	case "chaos":
		return ChaosAvailability(quick)
	case "subtree":
		return SubtreePipeline(quick)
	case "gcqueue":
		return GCQueueReclamation(quick)
	case "dirshard":
		return DirShard(quick)
	case "hotpath":
		return HotPath(quick)
	}
	return Result{}, fmt.Errorf("bench: unknown experiment %q", name)
}

// Experiments lists every runnable experiment in paper order. Two
// experiments are dispatchable by name but kept out of this list on
// purpose: "hotpath", because its wall-clock ns/op numbers vary run to
// run while "-exp all" (and make experiments) must stay deterministic,
// and "dirshard", because the committed results/*.csv corpus is frozen
// to the monolithic configuration (its CI job runs it explicitly).
var Experiments = []string{
	"table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
	"fig14", "fig15", "rtt", "headline", "shootout", "chaos", "subtree", "gcqueue",
	"ablation-fanout", "ablation-dpsplit", "ablation-ring", "ablation-patchchain",
	"ablation-syncproto", "ablation-gossip",
}
