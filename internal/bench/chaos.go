package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"github.com/h2cloud/h2cloud/internal/chaos"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/metrics"
	"github.com/h2cloud/h2cloud/internal/netsim"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// ChaosAvailability is the availability-under-faults experiment: a seeded
// chaos engine injects transient store errors (rate swept along the x
// axis), latency spikes, a node crash/restart schedule, and gossip
// drops/delays, while two retry-enabled middlewares run a deterministic
// create/write/read workload. Reported per rate: acknowledged vs failed
// operations, retry and degraded-read counters, the retry-inflated mean
// service time, the paper's α ratio against that mean, and — the
// robustness acceptance bar — how many acknowledged writes were lost
// after the cluster heals (must be zero at every rate).
func ChaosAvailability(quick bool) (Result, error) {
	rates := []float64{0, 0.05, 0.10, 0.20, 0.30}
	ops := 400
	if quick {
		rates = []float64{0, 0.10, 0.20}
		ops = 150
	}
	res := Result{
		Experiment: "chaos",
		Title:      "availability under injected faults (retry + degraded reads + repair)",
		Unit:       "mixed",
		Header: []string{
			"fault rate", "ops", "acked", "failed", "retries",
			"degraded reads", "read repairs", "injected faults",
			"mean op (ms)", "alpha", "lost acked",
		},
		Notes: []string{
			"same seed => byte-identical results (deterministic chaos engine)",
			"lost acked must be 0: every acknowledged write is readable after Repair",
			"mean op time includes backoff charged to the virtual clock",
		},
	}
	rtt := netsim.PaperRTT(1).Mean()
	for _, rate := range rates {
		row, err := chaosRun(rate, ops, rtt)
		if err != nil {
			return res, fmt.Errorf("chaos rate %.2f: %w", rate, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// chaosRun drives one fault-rate cell and returns its table row.
func chaosRun(rate float64, ops int, rtt time.Duration) ([]string, error) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	profile := cluster.SwiftProfile()
	c, err := cluster.New(cluster.Config{Profile: profile, Clock: clock})
	if err != nil {
		return nil, err
	}
	devs := c.Ring().DeviceIDs()
	reg := metrics.NewRegistry()
	n := int64(ops)
	eng := chaos.New(chaos.Plan{
		Seed:      4242,
		ErrRate:   0, // window opens after setup
		SpikeRate: rate / 2,
		Spike:     30 * time.Millisecond,
		DropRate:  rate / 2,
		DelayRate: rate / 2,
		Events: []chaos.Event{
			{Step: n / 4, Node: devs[0], Down: true},
			{Step: n / 2, Node: devs[1], Down: true},
			{Step: 3 * n / 4, Node: devs[0], Down: false},
			{Step: 3 * n / 4, Node: devs[1], Down: false},
		},
	}, reg)
	eng.Bind(c)
	cs := eng.Store(c)
	inner := gossip.NewBus()
	bus := eng.Gossip(inner)

	mws := make([]*h2fs.Middleware, 2)
	for i := range mws {
		mws[i], err = h2fs.New(h2fs.Config{
			Store: cs, Node: i + 1, Profile: profile, Clock: clock,
			Gossip: bus, Retry: h2fs.DefaultRetryPolicy(), Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
	}
	if err := mws[0].CreateAccount(bg(), "bench"); err != nil {
		return nil, err
	}
	eng.SetErrRate(rate)

	content := func(p string) []byte { return []byte("chaos payload @ " + p) }
	tr := vclock.NewTracker()
	//h2vet:ignore ctxcheck chaos harness owns its root context
	ctx := vclock.With(context.Background(), tr)
	// Each worker owns the directories it created (per-directory affinity,
	// as a load balancer would route): unflushed NameRing updates are
	// visible to their own middleware immediately, so any failure below is
	// an injected fault, not eventual-consistency lag.
	type worker struct {
		fs    fsapi.FileSystem
		dirs  []string
		files []string
	}
	workers := make([]*worker, len(mws))
	for i, m := range mws {
		workers[i] = &worker{fs: m.FS("bench")}
	}
	var files []string // global list, for the post-heal verification
	acked, failed := 0, 0
	for i := 0; i < ops; i++ {
		eng.Step()
		w := workers[i%len(workers)]
		switch {
		case i%10 == 0:
			p := fmt.Sprintf("/d%03d", i)
			if err := w.fs.Mkdir(ctx, p); err == nil {
				w.dirs = append(w.dirs, p)
				acked++
			} else {
				failed++
			}
		case i%5 == 0 && len(w.files) > 0:
			p := w.files[i%len(w.files)]
			if data, err := w.fs.ReadFile(ctx, p); err == nil && bytes.Equal(data, content(p)) {
				acked++
			} else {
				failed++
			}
		default:
			dir := ""
			if len(w.dirs) > 0 {
				dir = w.dirs[i%len(w.dirs)]
			}
			p := fmt.Sprintf("%s/f%03d", dir, i)
			if err := w.fs.WriteFile(ctx, p, content(p)); err == nil {
				w.files = append(w.files, p)
				files = append(files, p)
				acked++
			} else {
				failed++
			}
		}
		if i%10 == 9 {
			inner.Pump(bg())
		}
	}
	meanOp := time.Duration(0)
	if ops > 0 {
		meanOp = tr.Elapsed() / time.Duration(ops)
	}

	// Heal: fault window closes, nodes restart, anti-entropy runs, every
	// middleware flushes, and delayed gossip finally arrives.
	eng.SetErrRate(0)
	for _, id := range devs {
		c.SetNodeDown(id, false)
	}
	for round := 0; round < 3; round++ {
		c.Repair(bg())
		for _, m := range mws {
			if err := m.FlushAll(bg()); err != nil {
				return nil, fmt.Errorf("heal flush: %w", err)
			}
		}
		bus.ReleaseDelayed()
		inner.Pump(bg())
	}

	// The acceptance bar: every acknowledged write must read back intact
	// through a restarted middleware.
	lost := 0
	mws[0].Recover()
	verify := mws[0].FS("bench")
	for _, p := range files {
		data, err := verify.ReadFile(bg(), p)
		if err != nil || !bytes.Equal(data, content(p)) {
			lost++
		}
	}

	st := c.Stats()
	cc := eng.Counters()
	return []string{
		fmt.Sprintf("%.2f", rate),
		fmt.Sprintf("%d", ops),
		fmt.Sprintf("%d", acked),
		fmt.Sprintf("%d", failed),
		fmt.Sprintf("%d", reg.Counter("retry.attempts")),
		fmt.Sprintf("%d", st.DegradedGets),
		fmt.Sprintf("%d", st.ReadRepairs),
		fmt.Sprintf("%d", cc.Faults),
		fmt.Sprintf("%.2f", ms(meanOp)),
		fmt.Sprintf("%.2f", netsim.Alpha(rtt, meanOp)),
		fmt.Sprintf("%d", lost),
	}, nil
}
