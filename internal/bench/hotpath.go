package bench

import (
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/pathdb"
	"github.com/h2cloud/h2cloud/internal/ring"
)

// hotSink defeats dead-code elimination in the measurement loops.
var hotSink int

// hotpathCase is one measured hot path with its committed allocs/op
// ceiling. The ceiling is the CI contract: a change that pushes a hot
// path above it fails the bench-wallclock gate. Ceilings carry headroom
// over the measured numbers so Go-runtime jitter can't flake the gate,
// but sit far below the pre-optimization counts (see the notes emitted
// with the result), so a real regression cannot hide.
type hotpathCase struct {
	path    string
	ceiling int64
	bench   func(b *testing.B)
}

// HotPath measures real wall-clock ns/op and allocs/op for the
// simulator's hot set: the NameRing/directory codecs, ring placement,
// the patch-merge path, and pathdb range scans, plus the end-to-end
// cluster PUT/GET fan-out they feed. Unlike every other experiment this
// one reports wall-clock numbers, so its output varies run to run; only
// the allocs/op columns (which are deterministic) are gated in CI.
func HotPath(quick bool) (Result, error) {
	ringSize := 1000
	dirs, perDir := 100, 1000
	if quick {
		ringSize = 200
		dirs, perDir = 20, 200
	}

	// Shared fixtures, built once outside the timed loops.
	src := core.NewNameRing()
	other := core.NewNameRing()
	for i := 0; i < ringSize; i++ {
		src.Set(core.Tuple{Name: fmt.Sprintf("child%06d", i), Time: int64(i + 1)})
		other.Set(core.Tuple{Name: fmt.Sprintf("child%06d", i+ringSize/2), Time: int64(i + 7)})
	}
	encoded := core.EncodeNameRing(src)
	dirObj := core.DirObject{NS: "01.123456.789", Name: "projects", Created: 1_700_000_000_000_000_000}
	encodedDir := core.EncodeDir(dirObj)
	manifest := core.ShardManifest{Shards: 16, Gen: 3}
	encodedManifest := core.EncodeShardManifest(manifest)
	routeNames := make([]string, 256)
	for i := range routeNames {
		routeNames[i] = fmt.Sprintf("child%06d", i)
	}

	rg, err := ring.New(16, 3, benchDevices(8))
	if err != nil {
		return Result{}, fmt.Errorf("hotpath: %w", err)
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct/%02d.1.1/NameRing/child%04d", i%16, i)
	}

	db := pathdb.New(pathdb.Costs{})
	ctx := bg()
	prefixes := make([]string, dirs)
	for i := 0; i < dirs; i++ {
		prefixes[i] = fmt.Sprintf("/d%03d/", i)
		for j := 0; j < perDir; j++ {
			db.Insert(ctx, pathdb.Record{Path: fmt.Sprintf("/d%03d/%06d", i, j)})
		}
	}

	cl, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		return Result{}, fmt.Errorf("hotpath: %w", err)
	}
	payload := []byte("0123456789abcdef0123456789abcdef")
	if err := cl.Put(ctx, "hot/object", payload, nil); err != nil {
		return Result{}, fmt.Errorf("hotpath: %w", err)
	}

	scan := func(pathdb.Record) bool { hotSink++; return true }

	cases := []hotpathCase{
		{"codec/encode-namering", 4, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += len(core.EncodeNameRing(src))
			}
		}},
		{"codec/decode-namering", 12, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.DecodeNameRing(encoded)
				if err != nil {
					b.Fatal(err)
				}
				hotSink += r.TotalLen()
			}
		}},
		{"codec/encode-dir", 2, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += len(core.EncodeDir(dirObj))
			}
		}},
		{"codec/decode-dir", 4, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := core.DecodeDir(encodedDir)
				if err != nil {
					b.Fatal(err)
				}
				hotSink += len(d.NS)
			}
		}},
		{"codec/encode-manifest", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += len(core.EncodeShardManifest(manifest))
			}
		}},
		{"codec/decode-manifest", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.DecodeShardManifest(encodedManifest)
				if err != nil {
					b.Fatal(err)
				}
				hotSink += m.Shards
			}
		}},
		{"codec/encode-extent", 4, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += len(core.EncodeNameRingExtent(src, i%16, 16))
			}
		}},
		{"shard/route", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += core.ShardOf(routeNames[i%len(routeNames)], 16)
			}
		}},
		{"placement/partition", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += int(rg.Partition(keys[i%len(keys)]))
			}
		}},
		{"placement/devices-append", 0, func(b *testing.B) {
			var buf [8]int
			for i := 0; i < b.N; i++ {
				hotSink += len(rg.DevicesAppend(keys[i%len(keys)], buf[:0]))
			}
		}},
		{"placement/device-ids-append", 0, func(b *testing.B) {
			var buf [16]int
			for i := 0; i < b.N; i++ {
				hotSink += len(rg.DeviceIDsAppend(buf[:0]))
			}
		}},
		{"merge/merged", 16, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += core.Merged(src, other).TotalLen()
			}
		}},
		{"merge/live", 2, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hotSink += len(src.Live())
			}
		}},
		{"pathdb/scan-prefix", 2, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.ScanPrefix(ctx, prefixes[i%len(prefixes)], scan)
			}
		}},
		{"cluster/get", 4, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data, _, err := cl.Get(ctx, "hot/object")
				if err != nil {
					b.Fatal(err)
				}
				hotSink += len(data)
			}
		}},
		{"cluster/put", 16, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := cl.Put(ctx, "hot/object", payload, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	res := Result{
		Experiment: "hotpath",
		Title:      fmt.Sprintf("hot-path wall-clock microbenchmarks (NameRing size %d, pathdb %d records)", ringSize, dirs*perDir),
		Unit:       "ns/op",
		Header:     []string{"path", "ns/op", "B/op", "allocs/op", "ceiling", "status"},
		Notes: []string{
			"allocs/op is gated in CI against the committed ceiling; ns/op and B/op are informational (wall clock)",
			"pre-PR-8 full-scale baselines: encode-namering 5767 allocs/op, decode-namering 1025, partition 1, devices 2, merged 32, live 4, cluster/get 7, cluster/put 20",
			"all simulated-cost figures (results/*.csv, chaos/subtree/gcqueue artifacts) are unaffected: these paths changed wall-clock speed only",
		},
	}
	for _, c := range cases {
		r := testing.Benchmark(c.bench)
		allocs := r.AllocsPerOp()
		status := "ok"
		if allocs > c.ceiling {
			status = "regress"
		}
		res.Rows = append(res.Rows, []string{
			c.path,
			fmt.Sprintf("%.1f", float64(r.T.Nanoseconds())/float64(r.N)),
			fmt.Sprintf("%d", r.AllocedBytesPerOp()),
			fmt.Sprintf("%d", allocs),
			fmt.Sprintf("%d", c.ceiling),
			status,
		})
	}
	return res, nil
}

// benchDevices builds n uniform devices across 4 zones, mirroring the
// default cluster layout.
func benchDevices(n int) []ring.Device {
	ds := make([]ring.Device, n)
	for i := range ds {
		ds[i] = ring.Device{ID: i, Zone: i % 4, Weight: 1}
	}
	return ds
}
