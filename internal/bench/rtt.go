package bench

import (
	"context"
	"fmt"

	"github.com/h2cloud/h2cloud/internal/netsim"
)

// RTT regenerates the paper's §5.3 RTT analysis: the ratio
// α = round-trip time / filesystem operation time for each system and
// operation, using the paper's measured RTT distribution (mean 58 ms,
// range 24–83 ms). α ≫ 1 means the network dominates user experience
// (the case for shallow file accesses); α ≪ 1 means the storage system
// does (the case for large directory operations) — the paper's argument
// for optimizing directory operations first.
func RTT() (Result, error) {
	res := Result{
		Experiment: "rtt",
		Title:      "alpha = RTT / operation time (RTT mean 58 ms)",
		Unit:       "ratio",
		Header:     []string{"operation", "H2Cloud", "OpenStack Swift", "Dropbox (DP)"},
		Notes: []string{
			"paper: access alpha falls 2.7 -> 0.3 for H2 as d goes 0 -> 20; ~5 for Swift; ~0.5 for Dropbox",
			"paper: directory-operation alpha stays within ~0.3 for all systems",
		},
	}
	rtt := netsim.PaperRTT(1).Mean()

	type probe struct {
		name string
		run  func(sys *System) (float64, error)
	}
	accessAt := func(depth int) func(sys *System) (float64, error) {
		return func(sys *System) (float64, error) {
			path := ""
			for d := 1; d < depth; d++ {
				path += fmt.Sprintf("/l%d", d)
				if _, err := sys.FS.Stat(bg(), path); err != nil {
					if err := sys.FS.Mkdir(bg(), path); err != nil {
						return 0, err
					}
				}
			}
			file := path + "/probe.dat"
			if err := sys.FS.WriteFile(bg(), file, []byte("x")); err != nil {
				return 0, err
			}
			d, err := Measure(func(ctx context.Context) error {
				_, err := sys.FS.Stat(ctx, file)
				return err
			})
			return netsim.Alpha(rtt, d), err
		}
	}
	probes := []probe{
		{"file access d=1", accessAt(1)},
		{"file access d=4", accessAt(4)},
		{"file access d=12", accessAt(12)},
		{"file access d=20", accessAt(20)},
		{"MKDIR", func(sys *System) (float64, error) {
			d, err := Measure(func(ctx context.Context) error {
				return sys.FS.Mkdir(ctx, "/mk")
			})
			return netsim.Alpha(rtt, d), err
		}},
		{"MOVE (n=1000)", func(sys *System) (float64, error) {
			if err := populateDir(sys.FS, "/mv", 1000); err != nil {
				return 0, err
			}
			d, err := Measure(func(ctx context.Context) error {
				return sys.FS.Move(ctx, "/mv", "/mv2")
			})
			return netsim.Alpha(rtt, d), err
		}},
		{"RMDIR (n=1000)", func(sys *System) (float64, error) {
			if err := populateDir(sys.FS, "/rm", 1000); err != nil {
				return 0, err
			}
			d, err := Measure(func(ctx context.Context) error {
				return sys.FS.Rmdir(ctx, "/rm")
			})
			return netsim.Alpha(rtt, d), err
		}},
		{"LIST (m=1000)", func(sys *System) (float64, error) {
			if err := populateDir(sys.FS, "/ls", 1000); err != nil {
				return 0, err
			}
			d, err := Measure(func(ctx context.Context) error {
				_, err := sys.FS.List(ctx, "/ls", true)
				return err
			})
			return netsim.Alpha(rtt, d), err
		}},
	}

	for _, p := range probes {
		row := []string{p.name}
		for _, kind := range FigureKinds {
			sys, err := NewSystem(kind)
			if err != nil {
				return res, err
			}
			alpha, err := p.run(sys)
			if err != nil {
				return res, fmt.Errorf("%s %s: %w", kind, p.name, err)
			}
			row = append(row, fmt.Sprintf("%.2f", alpha))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
