package bench

import (
	"testing"
)

// col finds a header column index by name.
func col(t *testing.T, r Result, name string) int {
	t.Helper()
	for i, h := range r.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("column %q missing from header %v", name, r.Header)
	return -1
}

// TestChaosAvailabilityDeterministic is the tentpole's acceptance check:
// two runs of the availability sweep with the same seed must produce
// byte-identical artifacts, every acknowledged write must survive Repair,
// and the retry / degraded-read machinery must actually fire at nonzero
// fault rates.
func TestChaosAvailabilityDeterministic(t *testing.T) {
	r1, err := ChaosAvailability(true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ChaosAvailability(true)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := FormatJSON(r1), FormatJSON(r2)
	if j1 != j2 {
		t.Fatalf("same-seed runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}

	rate := col(t, r1, "fault rate")
	acked := col(t, r1, "acked")
	retries := col(t, r1, "retries")
	degraded := col(t, r1, "degraded reads")
	lost := col(t, r1, "lost acked")
	if len(r1.Rows) == 0 {
		t.Fatal("sweep produced no rows")
	}
	for _, row := range r1.Rows {
		if row[lost] != "0" {
			t.Fatalf("rate %s lost %s acknowledged writes after Repair", row[rate], row[lost])
		}
		if parseF(t, row[acked]) == 0 {
			t.Fatalf("rate %s acknowledged nothing: %v", row[rate], row)
		}
		if parseF(t, row[rate]) >= 0.10 {
			if parseF(t, row[retries]) == 0 {
				t.Fatalf("rate %s: retry counter zero: %v", row[rate], row)
			}
			if parseF(t, row[degraded]) == 0 {
				t.Fatalf("rate %s: degraded-read counter zero: %v", row[rate], row)
			}
		}
	}
}
