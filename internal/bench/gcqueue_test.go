package bench

import (
	"testing"
)

// TestGCQueueDeterministic: two same-seed runs of the reclamation sweep
// must produce byte-identical artifacts, rmdir must cost the same at
// every subtree size (the O(1) bar), every first drain must hit the
// injected crash, and every replay must converge with zero orphans.
func TestGCQueueDeterministic(t *testing.T) {
	r1, err := GCQueueReclamation(true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GCQueueReclamation(true)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := FormatJSON(r1), FormatJSON(r2)
	if j1 != j2 {
		t.Fatalf("same-seed runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}

	rmdir := col(t, r1, "rmdir (ms)")
	crashed := col(t, r1, "crashed drain")
	drain := col(t, r1, "replay drain (ms)")
	orphans := col(t, r1, "orphans")
	if len(r1.Rows) < 2 {
		t.Fatal("sweep produced too few rows")
	}
	for _, row := range r1.Rows {
		if row[rmdir] != r1.Rows[0][rmdir] {
			t.Fatalf("rmdir cost varies with subtree size: %v", r1.Rows)
		}
		if row[crashed] != "yes" {
			t.Fatalf("first drain was not crashed: %v", row)
		}
		if row[orphans] != "0" {
			t.Fatalf("orphans after replay: %v", row)
		}
	}
	// Reclamation lag must actually grow with the subtree — the work the
	// O(1) rmdir deferred did not vanish.
	first := parseF(t, r1.Rows[0][drain])
	last := parseF(t, r1.Rows[len(r1.Rows)-1][drain])
	if last <= first {
		t.Fatalf("drain lag did not grow with subtree size: %v", r1.Rows)
	}
}
