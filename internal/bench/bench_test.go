package bench

import (
	"strconv"
	"strings"
	"testing"
)

// series fetches one system's curve from a result.
func series(t *testing.T, r Result, system string) []Point {
	t.Helper()
	for _, s := range r.Series {
		if s.System == system {
			return s.Points
		}
	}
	t.Fatalf("series %q missing in %s: %+v", system, r.Experiment, r.Series)
	return nil
}

func first(ps []Point) float64 { return ps[0].Y }
func last(ps []Point) float64  { return ps[len(ps)-1].Y }

var testNs = []int{10, 100, 1000}

// TestFig7Shape asserts the paper's Figure 7 shape: Swift's MOVE grows
// with n while H2Cloud and DP stay flat.
func TestFig7Shape(t *testing.T) {
	r, err := Fig7Move(testNs)
	if err != nil {
		t.Fatal(err)
	}
	swift := series(t, r, "OpenStack Swift")
	if last(swift) < 20*first(swift) {
		t.Fatalf("Swift MOVE not O(n): %v", swift)
	}
	for _, sysName := range []string{"H2Cloud", "Dropbox (DP)"} {
		ps := series(t, r, sysName)
		if last(ps) > 2*first(ps) {
			t.Fatalf("%s MOVE not flat: %v", sysName, ps)
		}
	}
	// At the largest n, Swift must be orders of magnitude slower than H2.
	if last(swift) < 10*last(series(t, r, "H2Cloud")) {
		t.Fatalf("Swift/H2 MOVE gap too small at n=%d", testNs[len(testNs)-1])
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8Rmdir(testNs)
	if err != nil {
		t.Fatal(err)
	}
	swift := series(t, r, "OpenStack Swift")
	if last(swift) < 20*first(swift) {
		t.Fatalf("Swift RMDIR not O(n): %v", swift)
	}
	for _, sysName := range []string{"H2Cloud", "Dropbox (DP)"} {
		ps := series(t, r, sysName)
		if last(ps) > 2*first(ps) {
			t.Fatalf("%s RMDIR not flat: %v", sysName, ps)
		}
	}
}

// TestFig9Shape: LIST depends on m, not n — curves stay flat as the rest
// of the filesystem grows; Swift sits above H2Cloud.
func TestFig9Shape(t *testing.T) {
	r, err := Fig9ListVsN([]int{10, 1000}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		if last(s.Points) > 3*first(s.Points) {
			t.Fatalf("%s LIST grew with n: %v", s.System, s.Points)
		}
	}
	if last(series(t, r, "OpenStack Swift")) < 2*last(series(t, r, "H2Cloud")) {
		t.Fatal("Swift LIST not slower than H2Cloud")
	}
}

func TestFig10Shape(t *testing.T) {
	// DP has a large constant (the index RPC), so its growth only shows
	// past m ~ 1000; sweep to 10000 as the paper does (it goes to 100k).
	r, err := Fig10ListVsM([]int{10, 1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		if last(s.Points) < 5*first(s.Points) {
			t.Fatalf("%s LIST did not grow with m: %v", s.System, s.Points)
		}
	}
}

// TestFig11Shape: COPY is linear in n and the three systems are similar.
func TestFig11Shape(t *testing.T) {
	r, err := Fig11Copy(testNs)
	if err != nil {
		t.Fatal(err)
	}
	var finals []float64
	for _, s := range r.Series {
		if last(s.Points) < 10*first(s.Points) {
			t.Fatalf("%s COPY not linear: %v", s.System, s.Points)
		}
		finals = append(finals, last(s.Points))
	}
	min, max := finals[0], finals[0]
	for _, f := range finals {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if max > 5*min {
		t.Fatalf("COPY systems diverge too much: %v", finals)
	}
}

// TestFig12Shape: MKDIR constant; Swift fastest; H2 and DP in the paper's
// 150–200 ms ballpark (we accept 50–400 ms).
func TestFig12Shape(t *testing.T) {
	r, err := Fig12Mkdir([]int{10, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		if last(s.Points) > 2*first(s.Points) {
			t.Fatalf("%s MKDIR not constant: %v", s.System, s.Points)
		}
	}
	swift := last(series(t, r, "OpenStack Swift"))
	h2 := last(series(t, r, "H2Cloud"))
	dp := last(series(t, r, "Dropbox (DP)"))
	if swift >= h2 || swift >= dp {
		t.Fatalf("Swift MKDIR (%v ms) not fastest (H2 %v, DP %v)", swift, h2, dp)
	}
	for name, v := range map[string]float64{"H2Cloud": h2, "DP": dp} {
		if v < 50 || v > 400 {
			t.Fatalf("%s MKDIR = %.1f ms, want within [50,400]", name, v)
		}
	}
}

// TestFig13Shape: Swift flat ~10 ms, H2 linear in d (~61 ms at the
// workload-average d=4), DP flat-ish between them.
func TestFig13Shape(t *testing.T) {
	r, err := Fig13Access([]int{1, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	swift := series(t, r, "OpenStack Swift")
	if last(swift) != first(swift) {
		t.Fatalf("Swift access not flat: %v", swift)
	}
	if first(swift) > 15 {
		t.Fatalf("Swift access = %.1f ms, want ~10 ms or less", first(swift))
	}
	h2 := series(t, r, "H2Cloud")
	if last(h2) < 3*first(h2) {
		t.Fatalf("H2 access not linear in d: %v", h2)
	}
	// d=4 is h2[1]; paper reports ~61 ms — accept 30–90 ms.
	if h2[1].Y < 30 || h2[1].Y > 90 {
		t.Fatalf("H2 access at d=4 = %.1f ms, want ~61 ms", h2[1].Y)
	}
	dp := series(t, r, "Dropbox (DP)")
	if last(dp) > 3*first(dp) {
		t.Fatalf("DP access grew with d: %v", dp)
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := Fig14ObjectCount([]int{500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	h2 := series(t, r, "H2Cloud")
	swift := series(t, r, "OpenStack Swift")
	for i := range h2 {
		if h2[i].Y <= swift[i].Y {
			t.Fatalf("H2 object count (%v) not above Swift (%v)", h2[i], swift[i])
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15ObjectSize([]int{500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	h2 := series(t, r, "H2Cloud")
	swift := series(t, r, "OpenStack Swift")
	for i := range h2 {
		// Extra bytes must be a small fraction.
		if h2[i].Y > 1.25*swift[i].Y {
			t.Fatalf("H2 bytes %.2f MB vs Swift %.2f MB: overhead not negligible",
				h2[i].Y, swift[i].Y)
		}
	}
}

// TestHeadline: the paper's §1 claims — LIST 1000 ≈ 0.35 s, COPY 1000 ≈
// 10 s. Accept ±50%.
func TestHeadline(t *testing.T) {
	r, err := Headline()
	if err != nil {
		t.Fatal(err)
	}
	list := r.Series[0].Points[0].Y
	cp := r.Series[1].Points[0].Y
	if list < 175 || list > 525 {
		t.Fatalf("LIST 1000 = %.0f ms, paper ~350 ms", list)
	}
	if cp < 5000 || cp > 15000 {
		t.Fatalf("COPY 1000 = %.0f ms, paper ~10000 ms", cp)
	}
}

func TestRTTAnalysis(t *testing.T) {
	r, err := RTT()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("RTT rows = %d", len(r.Rows))
	}
	// Shallow file access: network dominates for every system (alpha > 1
	// at d=1 for H2; ~5+ for Swift).
	var d1 []string = r.Rows[0]
	if d1[0] != "file access d=1" {
		t.Fatalf("row order: %v", d1)
	}
	if v := parseF(t, d1[2]); v < 3 { // Swift column
		t.Fatalf("Swift alpha at d=1 = %v, want > 3", v)
	}
	if v := parseF(t, d1[1]); v < 1 { // H2 column
		t.Fatalf("H2 alpha at d=1 = %v, want > 1", v)
	}
	// Large directory ops: storage dominates (alpha well below 1).
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], "MOVE") || strings.HasPrefix(row[0], "LIST") {
			for i := 1; i < len(row); i++ {
				if v := parseF(t, row[i]); v > 1 {
					t.Fatalf("%s alpha = %v, want < 1", row[0], v)
				}
			}
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 builds every system at two scales")
	}
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Kinds) {
		t.Fatalf("Table1 rows = %d, want %d", len(r.Rows), len(Kinds))
	}
	txt := FormatText(r)
	if !strings.Contains(txt, "H2Cloud") || !strings.Contains(txt, "Compressed Snapshot") {
		t.Fatalf("Table1 text missing systems:\n%s", txt)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, name := range []string{"ablation-fanout", "ablation-dpsplit", "ablation-ring", "ablation-patchchain"} {
		r, err := Run(name, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Series) == 0 || len(r.Series[0].Points) == 0 {
			t.Fatalf("%s produced no points", name)
		}
	}
}

func TestAblationFanoutMonotone(t *testing.T) {
	r, err := AblationFanout([]int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	ps := r.Series[0].Points
	if ps[1].Y >= ps[0].Y {
		t.Fatalf("wider fan-out did not reduce LIST time: %v", ps)
	}
}

func TestShootoutRuns(t *testing.T) {
	r, err := Shootout(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Kinds) {
		t.Fatalf("shootout rows = %d, want %d", len(r.Rows), len(Kinds))
	}
	txt := FormatText(r)
	if !strings.Contains(txt, "H2Cloud") {
		t.Fatalf("shootout text:\n%s", txt)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFormatters(t *testing.T) {
	r := Result{
		Experiment: "x", Title: "T", XLabel: "n", Unit: "ms",
		Series: []Series{{System: "A", Points: []Point{{X: 1, Y: 2.5}, {X: 10, Y: 25}}}},
		Notes:  []string{"note"},
	}
	txt := FormatText(r)
	if !strings.Contains(txt, "A (ms)") || !strings.Contains(txt, "note") {
		t.Fatalf("FormatText:\n%s", txt)
	}
	csv := FormatCSV(r)
	if !strings.Contains(csv, "x,A") || !strings.Contains(csv, "1,2.5") {
		t.Fatalf("FormatCSV:\n%s", csv)
	}
	tbl := Result{Header: []string{"a", "b"}, Rows: [][]string{{"1", "va,l"}}}
	csv = FormatCSV(tbl)
	if !strings.Contains(csv, `"va,l"`) {
		t.Fatalf("CSV quoting:\n%s", csv)
	}
}
