package bench

import (
	"context"
	"fmt"

	"github.com/h2cloud/h2cloud/internal/baselines/dpfs"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/gossip"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/ring"
	"github.com/h2cloud/h2cloud/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out: the middleware's
// outbound fan-out width, DP's dynamic-split threshold, the ring's
// partition power, and the cost of long unflushed patch chains.

// AblationFanout sweeps the H2Middleware's outbound concurrency and
// measures detailed LIST of 1000 children — the knob the cost model
// calibrates against the paper's 0.35 s headline.
func AblationFanout(widths []int) (Result, error) {
	if len(widths) == 0 {
		widths = []int{1, 4, 16, 64}
	}
	res := Result{
		Experiment: "ablation-fanout",
		Title:      "H2Cloud LIST(m=1000, detailed) vs middleware fan-out width",
		XLabel:     "fan-out width", YLabel: "operation time", Unit: "ms",
	}
	series := Series{System: "H2Cloud"}
	for _, w := range widths {
		profile := cluster.SwiftProfile()
		profile.Fanout = w
		c, err := cluster.New(cluster.Config{Profile: profile})
		if err != nil {
			return res, err
		}
		mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1, Profile: profile})
		if err != nil {
			return res, err
		}
		if err := mw.CreateAccount(bg(), "bench"); err != nil {
			return res, err
		}
		fs := mw.FS("bench")
		if err := populateDir(fs, "/dir", 1000); err != nil {
			return res, err
		}
		d, err := Measure(func(ctx context.Context) error {
			_, err := fs.List(ctx, "/dir", true)
			return err
		})
		if err != nil {
			return res, err
		}
		series.Points = append(series.Points, Point{X: float64(w), Y: ms(d)})
	}
	res.Series = append(res.Series, series)
	return res, nil
}

// AblationDPSplit sweeps the Dynamic Partition split factor and reports
// the resulting index-server load imbalance (max/mean directory count)
// over a heavy synthetic tree — the load-balancing policy §2 credits DP
// systems with.
func AblationDPSplit(factors []float64) (Result, error) {
	if len(factors) == 0 {
		factors = []float64{0.8, 1.2, 1.5, 2.5, 10}
	}
	res := Result{
		Experiment: "ablation-dpsplit",
		Title:      "DP index-server load imbalance vs split factor",
		XLabel:     "split factor", YLabel: "max/mean directory load", Unit: "ratio",
	}
	tree := workload.Generate(workload.Spec{Seed: 11, Dirs: 600, Files: 0, MaxDepth: 10, DirSkew: 0.5})
	series := Series{System: "Dynamic Partition"}
	for _, factor := range factors {
		c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
		if err != nil {
			return res, err
		}
		fs := dpfs.New(c, cluster.ZeroProfile(), "bench", nil,
			dpfs.WithServers(4), dpfs.WithSplitFactor(factor))
		if err := tree.Populate(bg(), fs, 64); err != nil {
			return res, err
		}
		loads := fs.ServerLoads()
		total, max := 0, 0
		for _, l := range loads {
			total += l
			if l > max {
				max = l
			}
		}
		mean := float64(total) / float64(len(loads))
		series.Points = append(series.Points, Point{X: factor, Y: float64(max) / mean})
	}
	res.Series = append(res.Series, series)
	res.Notes = append(res.Notes, "lower is better; very large factors never split (single-server behaviour)")
	return res, nil
}

// AblationRingBalance sweeps the consistent-hashing ring's partition
// power and reports placement balance across the 8 storage devices — the
// property §3.1 relies on for "the overall load balance of objects is
// automatically kept".
func AblationRingBalance(powers []int) (Result, error) {
	if len(powers) == 0 {
		powers = []int{4, 6, 8, 10, 12}
	}
	res := Result{
		Experiment: "ablation-ring",
		Title:      "Ring placement balance vs partition power",
		XLabel:     "partition power (2^p partitions)", YLabel: "max device load / fair share", Unit: "ratio",
	}
	series := Series{System: "consistent hashing ring"}
	for _, p := range powers {
		devs := make([]ring.Device, 8)
		for i := range devs {
			devs[i] = ring.Device{ID: i, Zone: i % 4, Weight: 1}
		}
		r, err := ring.New(p, 3, devs)
		if err != nil {
			return res, err
		}
		series.Points = append(series.Points, Point{X: float64(p), Y: r.Stats().MaxRatio})
	}
	res.Series = append(res.Series, series)
	return res, nil
}

// AblationSyncProtocol compares the strawman synchronous NameRing
// maintenance (§3.3.1) against the asynchronous patch protocol the paper
// adopts: per-mutation virtual cost for a burst of file creations in one
// directory. The synchronous mode pays a read-modify-write of the ring
// object on every mutation; the asynchronous mode pays one small patch
// PUT and defers merging to the Background Merger.
func AblationSyncProtocol(burst int) (Result, error) {
	if burst <= 0 {
		burst = 200
	}
	res := Result{
		Experiment: "ablation-syncproto",
		Title:      fmt.Sprintf("WRITE cost: synchronous (strawman, §3.3.1) vs asynchronous patches (%d writes)", burst),
		XLabel:     "write index", YLabel: "mean per-write time", Unit: "ms",
	}
	for _, mode := range []struct {
		name string
		sync bool
	}{{"asynchronous patches", false}, {"synchronous strawman", true}} {
		profile := cluster.SwiftProfile()
		c, err := cluster.New(cluster.Config{Profile: profile})
		if err != nil {
			return res, err
		}
		mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1, Profile: profile, SyncProtocol: mode.sync})
		if err != nil {
			return res, err
		}
		if err := mw.CreateAccount(bg(), "bench"); err != nil {
			return res, err
		}
		fs := mw.FS("bench")
		if err := fs.Mkdir(bg(), "/dir"); err != nil {
			return res, err
		}
		total, err := Measure(func(ctx context.Context) error {
			for i := 0; i < burst; i++ {
				if err := fs.WriteFile(ctx, fmt.Sprintf("/dir/f%05d", i), []byte("x")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, Series{
			System: mode.name,
			Points: []Point{{X: float64(burst), Y: ms(total) / float64(burst)}},
		})
	}
	res.Notes = append(res.Notes,
		"the strawman also serializes concurrent mutations of hot directories and couples availability to the ring object write path")
	return res, nil
}

// AblationGossip measures the inter-middleware synchronization cost of
// §3.3.2 phase 2 as the deployment scales: K middlewares each write one
// file into a shared directory, then flush; the metric is how many gossip
// messages the flooding protocol delivers before every node converges.
// Each update costs O(K²) deliveries (broadcast plus forward-once), and
// the race-repair rounds add a constant factor; the timestamp loop-back
// suppression is what stops the flood from circulating indefinitely.
func AblationGossip(fleet []int) (Result, error) {
	if len(fleet) == 0 {
		fleet = []int{2, 3, 4, 6, 8}
	}
	res := Result{
		Experiment: "ablation-gossip",
		Title:      "Gossip messages to converge K middlewares on one shared directory",
		XLabel:     "middlewares (K)", YLabel: "messages delivered", Unit: "messages",
	}
	series := Series{System: "gossip flooding"}
	for _, k := range fleet {
		c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
		if err != nil {
			return res, err
		}
		bus := gossip.NewBus()
		mws := make([]*h2fs.Middleware, k)
		for i := range mws {
			mw, err := h2fs.New(h2fs.Config{Store: c, Node: i + 1, Gossip: bus})
			if err != nil {
				return res, err
			}
			mws[i] = mw
		}
		ctx := bg()
		if err := mws[0].CreateAccount(ctx, "bench"); err != nil {
			return res, err
		}
		if err := mws[0].FS("bench").Mkdir(ctx, "/shared"); err != nil {
			return res, err
		}
		if err := mws[0].FlushAll(ctx); err != nil {
			return res, err
		}
		bus.Pump(ctx)
		for i, mw := range mws {
			if err := mw.FS("bench").WriteFile(ctx, fmt.Sprintf("/shared/from%d", i), []byte("x")); err != nil {
				return res, err
			}
		}
		delivered := 0
		for round := 0; round < k+2; round++ {
			for _, mw := range mws {
				if err := mw.FlushAll(ctx); err != nil {
					return res, err
				}
			}
			n := bus.Pump(ctx)
			delivered += n
			if n == 0 && converged(ctx, mws, k) {
				break
			}
		}
		if !converged(ctx, mws, k) {
			return res, fmt.Errorf("fleet of %d did not converge", k)
		}
		series.Points = append(series.Points, Point{X: float64(k), Y: float64(delivered)})
	}
	res.Series = append(res.Series, series)
	return res, nil
}

// converged reports whether every middleware sees all k files.
func converged(ctx context.Context, mws []*h2fs.Middleware, k int) bool {
	for _, mw := range mws {
		entries, err := mw.FS("bench").List(ctx, "/shared", false)
		if err != nil || len(entries) != k {
			return false
		}
	}
	return true
}

// AblationPatchChain measures the cold-start descriptor load cost as the
// unflushed patch chain grows: the price of deferring the Background
// Merger (§4.5). A fresh middleware must fetch the ring object plus every
// orphaned patch.
func AblationPatchChain(chainLens []int) (Result, error) {
	if len(chainLens) == 0 {
		chainLens = []int{0, 8, 32, 128}
	}
	res := Result{
		Experiment: "ablation-patchchain",
		Title:      "H2Cloud cold NameRing load vs unflushed patch-chain length",
		XLabel:     "unflushed patches", YLabel: "first-list time", Unit: "ms",
	}
	series := Series{System: "H2Cloud"}
	for _, n := range chainLens {
		profile := cluster.SwiftProfile()
		c, err := cluster.New(cluster.Config{Profile: profile})
		if err != nil {
			return res, err
		}
		writer, err := h2fs.New(h2fs.Config{Store: c, Node: 1, Profile: profile})
		if err != nil {
			return res, err
		}
		if err := writer.CreateAccount(bg(), "bench"); err != nil {
			return res, err
		}
		fs := writer.FS("bench")
		if err := fs.Mkdir(bg(), "/dir"); err != nil {
			return res, err
		}
		if err := writer.FlushAll(bg()); err != nil {
			return res, err
		}
		// n writes whose patches are never flushed.
		for i := 0; i < n; i++ {
			if err := fs.WriteFile(bg(), fmt.Sprintf("/dir/f%04d", i), []byte("x")); err != nil {
				return res, err
			}
		}
		// A restarted middleware (same node number) replays the chain.
		reborn, err := h2fs.New(h2fs.Config{Store: c, Node: 1, Profile: profile})
		if err != nil {
			return res, err
		}
		d, err := Measure(func(ctx context.Context) error {
			_, err := reborn.FS("bench").List(ctx, "/dir", false)
			return err
		})
		if err != nil {
			return res, err
		}
		series.Points = append(series.Points, Point{X: float64(n), Y: ms(d)})
	}
	res.Series = append(res.Series, series)
	return res, nil
}
