package bench

import (
	"context"
	"fmt"
)

// DefaultNs is the paper's x-axis for Figures 7–9 and 11: the number of
// files in the directory, 10 to 100,000.
var DefaultNs = []int{10, 100, 1000, 10000, 100000}

// DefaultMs is the x-axis of Figure 10: direct children per directory.
var DefaultMs = []int{10, 100, 1000, 10000, 100000}

// DefaultDepths is the x-axis of Figure 13: directory depth 0–20.
var DefaultDepths = []int{1, 2, 4, 8, 12, 16, 20}

// Fig7Move regenerates Figure 7: MOVE (and RENAME, its special case)
// operation time as the number of files n in the moved directory grows.
// Expected shape: Swift grows linearly with n; H2Cloud and DP stay flat.
func Fig7Move(ns []int) (Result, error) {
	if len(ns) == 0 {
		ns = DefaultNs
	}
	res := Result{
		Experiment: "fig7", Title: "Operation time for MOVE and RENAME",
		XLabel: "files in directory (n)", YLabel: "operation time", Unit: "ms",
	}
	for _, kind := range FigureKinds {
		series := Series{System: DisplayName(kind)}
		for _, n := range ns {
			sys, err := NewSystem(kind)
			if err != nil {
				return res, err
			}
			dir := fmt.Sprintf("/move-%d", n)
			if err := populateDir(sys.FS, dir, n); err != nil {
				return res, err
			}
			if err := sys.FS.Mkdir(bg(), "/target"); err != nil {
				return res, err
			}
			d, err := Measure(func(ctx context.Context) error {
				return sys.FS.Move(ctx, dir, "/target/moved")
			})
			if err != nil {
				return res, err
			}
			series.Points = append(series.Points, Point{X: float64(n), Y: ms(d)})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Fig8Rmdir regenerates Figure 8: RMDIR operation time versus n.
// Expected shape: Swift linear, H2Cloud and DP flat.
func Fig8Rmdir(ns []int) (Result, error) {
	if len(ns) == 0 {
		ns = DefaultNs
	}
	res := Result{
		Experiment: "fig8", Title: "Operation time for RMDIR",
		XLabel: "files in directory (n)", YLabel: "operation time", Unit: "ms",
	}
	for _, kind := range FigureKinds {
		series := Series{System: DisplayName(kind)}
		for _, n := range ns {
			sys, err := NewSystem(kind)
			if err != nil {
				return res, err
			}
			dir := fmt.Sprintf("/rm-%d", n)
			if err := populateDir(sys.FS, dir, n); err != nil {
				return res, err
			}
			d, err := Measure(func(ctx context.Context) error {
				return sys.FS.Rmdir(ctx, dir)
			})
			if err != nil {
				return res, err
			}
			series.Points = append(series.Points, Point{X: float64(n), Y: ms(d)})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Fig9ListVsN regenerates Figure 9: detailed LIST of a directory with
// m=1000 children while the total filesystem size n grows. Expected
// shape: LIST depends on m, not n — all three curves stay roughly flat,
// with Swift above DP ≈ H2 by its logN factor.
func Fig9ListVsN(ns []int, m int) (Result, error) {
	if len(ns) == 0 {
		ns = DefaultNs
	}
	if m <= 0 {
		m = 1000
	}
	res := Result{
		Experiment: "fig9", Title: fmt.Sprintf("Operation time for LIST (m=%d children) vs filesystem size", m),
		XLabel: "files in filesystem (n)", YLabel: "operation time", Unit: "ms",
	}
	for _, kind := range FigureKinds {
		series := Series{System: DisplayName(kind)}
		for _, n := range ns {
			sys, err := NewSystem(kind)
			if err != nil {
				return res, err
			}
			if err := populateDir(sys.FS, "/listed", m); err != nil {
				return res, err
			}
			if err := populateDir(sys.FS, "/bulk", n); err != nil {
				return res, err
			}
			d, err := Measure(func(ctx context.Context) error {
				_, err := sys.FS.List(ctx, "/listed", true)
				return err
			})
			if err != nil {
				return res, err
			}
			series.Points = append(series.Points, Point{X: float64(n), Y: ms(d)})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Fig10ListVsM regenerates Figure 10: detailed LIST versus the number of
// direct children m. Expected shape: all three grow with m, Swift
// steepest (O(m·logN)).
func Fig10ListVsM(msizes []int) (Result, error) {
	if len(msizes) == 0 {
		msizes = DefaultMs
	}
	res := Result{
		Experiment: "fig10", Title: "Operation time for LIST vs direct children",
		XLabel: "direct children (m)", YLabel: "operation time", Unit: "ms",
	}
	for _, kind := range FigureKinds {
		series := Series{System: DisplayName(kind)}
		for _, m := range msizes {
			sys, err := NewSystem(kind)
			if err != nil {
				return res, err
			}
			if err := populateDir(sys.FS, "/listed", m); err != nil {
				return res, err
			}
			d, err := Measure(func(ctx context.Context) error {
				_, err := sys.FS.List(ctx, "/listed", true)
				return err
			})
			if err != nil {
				return res, err
			}
			series.Points = append(series.Points, Point{X: float64(m), Y: ms(d)})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Fig11Copy regenerates Figure 11: COPY operation time versus n.
// Expected shape: all three systems similar and linear in n.
func Fig11Copy(ns []int) (Result, error) {
	if len(ns) == 0 {
		ns = DefaultNs
	}
	res := Result{
		Experiment: "fig11", Title: "Operation time for COPY",
		XLabel: "files in directory (n)", YLabel: "operation time", Unit: "ms",
	}
	for _, kind := range FigureKinds {
		series := Series{System: DisplayName(kind)}
		for _, n := range ns {
			sys, err := NewSystem(kind)
			if err != nil {
				return res, err
			}
			dir := fmt.Sprintf("/copy-%d", n)
			if err := populateDir(sys.FS, dir, n); err != nil {
				return res, err
			}
			d, err := Measure(func(ctx context.Context) error {
				return sys.FS.Copy(ctx, dir, dir+"-copy")
			})
			if err != nil {
				return res, err
			}
			series.Points = append(series.Points, Point{X: float64(n), Y: ms(d)})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Fig12Mkdir regenerates Figure 12: MKDIR operation time at growing
// filesystem sizes. Expected shape: constant for every system; Swift the
// fastest, H2Cloud and DP within the 150–200 ms band the paper reports.
func Fig12Mkdir(ns []int) (Result, error) {
	if len(ns) == 0 {
		ns = DefaultNs
	}
	res := Result{
		Experiment: "fig12", Title: "Operation time for MKDIR",
		XLabel: "files in filesystem (n)", YLabel: "operation time", Unit: "ms",
	}
	for _, kind := range FigureKinds {
		series := Series{System: DisplayName(kind)}
		for _, n := range ns {
			sys, err := NewSystem(kind)
			if err != nil {
				return res, err
			}
			if err := populateDir(sys.FS, "/bulk", n); err != nil {
				return res, err
			}
			d, err := Measure(func(ctx context.Context) error {
				return sys.FS.Mkdir(ctx, "/fresh")
			})
			if err != nil {
				return res, err
			}
			series.Points = append(series.Points, Point{X: float64(n), Y: ms(d)})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Fig13Access regenerates Figure 13: file-access (lookup) time versus the
// file's directory depth d. Expected shape: Swift flat and lowest
// (full-path hash), H2Cloud linear in d (one NameRing per level), DP flat
// with fluctuations at partition crossings.
func Fig13Access(depths []int) (Result, error) {
	if len(depths) == 0 {
		depths = DefaultDepths
	}
	res := Result{
		Experiment: "fig13", Title: "Operation time for file access (lookup)",
		XLabel: "directory depth (d)", YLabel: "operation time", Unit: "ms",
	}
	for _, kind := range FigureKinds {
		sys, err := NewSystem(kind)
		if err != nil {
			return res, err
		}
		// Build one deep path, measuring at each requested depth.
		maxD := depths[len(depths)-1]
		path := ""
		files := map[int]string{}
		for d := 1; d <= maxD; d++ {
			path += fmt.Sprintf("/l%d", d)
			if err := sys.FS.Mkdir(bg(), path); err != nil {
				return res, err
			}
			file := path + "/probe.dat"
			if err := sys.FS.WriteFile(bg(), file, []byte("x")); err != nil {
				return res, err
			}
			files[d+1] = file // the file sits one level below directory d
		}
		series := Series{System: DisplayName(kind)}
		for _, d := range depths {
			file, ok := files[d]
			if !ok {
				// Depth 1: a file directly under the root.
				file = "/root-probe.dat"
				if _, err := sys.FS.Stat(bg(), file); err != nil {
					if err := sys.FS.WriteFile(bg(), file, []byte("x")); err != nil {
						return res, err
					}
				}
			}
			dur, err := Measure(func(ctx context.Context) error {
				_, err := sys.FS.Stat(ctx, file)
				return err
			})
			if err != nil {
				return res, err
			}
			series.Points = append(series.Points, Point{X: float64(d), Y: ms(dur)})
		}
		res.Series = append(res.Series, series)
	}
	res.Notes = append(res.Notes,
		"Workload-average depth is 4; the paper reports H2Cloud ~61 ms there vs Swift's flat ~10 ms.")
	return res, nil
}
