// Package bench regenerates the paper's evaluation: one runner per table
// and figure (§5, Figures 7–15, Table 1, and the RTT analysis), each
// producing the same series the paper plots.
//
// Numbers are simulated operation times from the calibrated cost model
// (see cluster.SwiftProfile and DESIGN.md), so absolute values are close
// to — not identical with — the paper's testbed; the shapes (who wins, by
// what factor, where the curves bend) are the reproduction target.
package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/h2cloud/h2cloud/internal/baselines/casfs"
	"github.com/h2cloud/h2cloud/internal/baselines/chfs"
	"github.com/h2cloud/h2cloud/internal/baselines/dpfs"
	"github.com/h2cloud/h2cloud/internal/baselines/sidxfs"
	"github.com/h2cloud/h2cloud/internal/baselines/snapshotfs"
	"github.com/h2cloud/h2cloud/internal/baselines/staticfs"
	"github.com/h2cloud/h2cloud/internal/baselines/swiftfs"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

// System is one filesystem under test over its own simulated cloud.
type System struct {
	Name    string
	FS      fsapi.FileSystem
	Cluster *cluster.Cluster
	MW      *h2fs.Middleware // non-nil for H2Cloud
}

// Kinds lists every buildable system, in Table 1 order.
var Kinds = []string{
	"snapshot", "cas", "ch", "swift", "sidx", "static", "dp", "h2cloud",
}

// FigureKinds are the three systems the paper's figures compare:
// H2Cloud, OpenStack Swift (CH + file-path DB), and Dropbox (Dynamic
// Partition stand-in).
var FigureKinds = []string{"h2cloud", "swift", "dp"}

// DisplayName maps a system kind to the label used in the paper.
func DisplayName(kind string) string {
	switch kind {
	case "h2cloud":
		return "H2Cloud"
	case "swift":
		return "OpenStack Swift"
	case "dp":
		return "Dropbox (DP)"
	case "ch":
		return "Consistent Hash"
	case "snapshot":
		return "Compressed Snapshot"
	case "cas":
		return "CAS"
	case "static":
		return "Static Partition"
	case "sidx":
		return "Single Index Server"
	}
	return kind
}

// NewSystem builds a fresh system of the given kind over a
// paper-calibrated cloud.
func NewSystem(kind string) (*System, error) {
	profile := cluster.SwiftProfile()
	c, err := cluster.New(cluster.Config{Profile: profile})
	if err != nil {
		return nil, err
	}
	s := &System{Name: DisplayName(kind), Cluster: c}
	switch kind {
	case "h2cloud":
		mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1, Profile: profile})
		if err != nil {
			return nil, err
		}
		//h2vet:ignore ctxcheck bench harness owns its root context
		if err := mw.CreateAccount(context.Background(), "bench"); err != nil {
			return nil, err
		}
		s.MW = mw
		s.FS = mw.FS("bench")
	case "swift":
		s.FS = swiftfs.New(c, profile, "bench", nil)
	case "dp":
		s.FS = dpfs.New(c, profile, "bench", nil)
	case "ch":
		s.FS = chfs.New(c, profile, "bench", nil)
	case "snapshot":
		s.FS = snapshotfs.New(c, profile, "bench", nil, 0)
	case "cas":
		s.FS = casfs.New(c, profile, "bench", nil)
	case "static":
		s.FS = staticfs.New(c, profile, "bench", nil, 4)
	case "sidx":
		s.FS = sidxfs.New(c, profile, "bench", nil)
	default:
		return nil, fmt.Errorf("bench: unknown system kind %q", kind)
	}
	return s, nil
}

// Measure runs op once with a fresh virtual-clock tracker and returns the
// simulated operation time.
func Measure(op func(ctx context.Context) error) (time.Duration, error) {
	tr := vclock.NewTracker()
	//h2vet:ignore ctxcheck bench harness owns its root context
	ctx := vclock.With(context.Background(), tr)
	if err := op(ctx); err != nil {
		return 0, err
	}
	return tr.Elapsed(), nil
}

// bg is the uncharged context used to build fixtures.
//
//h2vet:ignore ctxcheck bench harness owns its root context
func bg() context.Context { return context.Background() }

// populateDir fills a directory with n small files named f000000..; the
// directory is created if missing.
func populateDir(fs fsapi.FileSystem, dir string, n int) error {
	ctx := bg()
	if _, err := fs.Stat(ctx, dir); err != nil {
		if err := fs.Mkdir(ctx, dir); err != nil {
			return err
		}
	}
	payload := []byte("0123456789abcdef")
	for i := 0; i < n; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("%s/f%06d", dir, i), payload); err != nil {
			return err
		}
	}
	return nil
}

// Point is one sample of a figure series.
type Point struct {
	X float64 `json:"x"` // figure's x value (n, m, d, or file count)
	Y float64 `json:"y"` // measured value in Unit
}

// Series is one system's curve.
type Series struct {
	System string  `json:"system"`
	Points []Point `json:"points"`
}

// Result is one regenerated table or figure. Figure-style results fill
// Series; table-style results (Table 1, the RTT analysis) fill Header and
// Rows instead.
type Result struct {
	Experiment string     `json:"experiment"` // e.g. "fig7"
	Title      string     `json:"title"`
	XLabel     string     `json:"xLabel,omitempty"`
	YLabel     string     `json:"yLabel,omitempty"`
	Unit       string     `json:"unit"` // "ms", "objects", "MB", "ratio"
	Series     []Series   `json:"series,omitempty"`
	Header     []string   `json:"header,omitempty"`
	Rows       [][]string `json:"rows,omitempty"`
	Notes      []string   `json:"notes,omitempty"`
}

// ms converts a duration to the float milliseconds the figures plot.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
