package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/h2fs"
)

// SubtreePipeline measures what the batched multi-object API and the
// pipelined subtree walker buy on deep-tree maintenance: COPY of a whole
// subtree, background REPAIR after a node outage, and namespace GC
// (account deletion). The sequential system issues every store call one
// at a time (Fanout=1, SubtreeFanout=1); the pipelined system overlaps
// both the per-object fanout window and the subtree walk
// (Fanout/SubtreeFanout=16). Both leave byte-identical cloud state —
// only the simulated makespan differs.
func SubtreePipeline(quick bool) (Result, error) {
	treeFanout := 16
	if quick {
		treeFanout = 8
	}
	res := Result{
		Experiment: "subtree",
		Title:      fmt.Sprintf("deep-tree maintenance, depth-3 x fanout-%d (sequential vs pipelined)", treeFanout),
		Unit:       "ms",
		Header:     []string{"operation", "sequential (ms)", "pipelined (ms)", "speedup"},
		Notes: []string{
			"sequential: Fanout=1, SubtreeFanout=1 (every store call charged back to back)",
			"pipelined: Fanout=16, SubtreeFanout=16 (batch window + bounded-fanout subtree walk)",
			fmt.Sprintf("tree: %d dirs, %d files; both modes leave identical cloud state", treeFanout*treeFanout+treeFanout+1, treeFanout*treeFanout*treeFanout),
		},
	}
	seq, err := subtreeRun(false, treeFanout)
	if err != nil {
		return res, fmt.Errorf("subtree sequential: %w", err)
	}
	pipe, err := subtreeRun(true, treeFanout)
	if err != nil {
		return res, fmt.Errorf("subtree pipelined: %w", err)
	}
	for i, op := range []string{"copy", "repair", "gc"} {
		res.Rows = append(res.Rows, []string{
			op,
			fmt.Sprintf("%.1f", seq[i]),
			fmt.Sprintf("%.1f", pipe[i]),
			fmt.Sprintf("%.1fx", seq[i]/pipe[i]),
		})
	}
	return res, nil
}

// subtreeRun builds a fresh depth-3 tree and returns the measured
// [copy, repair, gc] times in milliseconds.
func subtreeRun(pipelined bool, treeFanout int) ([3]float64, error) {
	var out [3]float64
	// Pinned clock: namespace UUIDs embed timestamps, which decide object
	// names and thus ring placement — a wall clock here would make the
	// repair row drift between runs.
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	profile := cluster.SwiftProfile()
	if pipelined {
		profile.SubtreeFanout = 16
	} else {
		profile.Fanout = 1
		profile.SubtreeFanout = 1
	}
	c, err := cluster.New(cluster.Config{Profile: profile, Clock: clock})
	if err != nil {
		return out, err
	}
	mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1, Profile: profile, Clock: clock, EagerGC: true})
	if err != nil {
		return out, err
	}
	ctx := bg()
	if err := mw.CreateAccount(ctx, "bench"); err != nil {
		return out, err
	}

	// Depth-3 tree: /tree/d<i>/d<j>/f<k>, treeFanout wide at every level.
	var files []string
	if err := mw.Mkdir(ctx, "bench", "/tree"); err != nil {
		return out, err
	}
	for i := 0; i < treeFanout; i++ {
		l1 := fmt.Sprintf("/tree/d%02d", i)
		if err := mw.Mkdir(ctx, "bench", l1); err != nil {
			return out, err
		}
		for j := 0; j < treeFanout; j++ {
			l2 := fmt.Sprintf("%s/d%02d", l1, j)
			if err := mw.Mkdir(ctx, "bench", l2); err != nil {
				return out, err
			}
			for k := 0; k < treeFanout; k++ {
				p := fmt.Sprintf("%s/f%02d", l2, k)
				if err := mw.WriteFile(ctx, "bench", p, []byte("0123456789abcdef")); err != nil {
					return out, err
				}
				files = append(files, p)
			}
		}
	}

	copyTime, err := Measure(func(ctx context.Context) error {
		return mw.Copy(ctx, "bench", "/tree", "/treecopy")
	})
	if err != nil {
		return out, err
	}

	// Knock a node out, dirty a slice of the tree so its replicas go
	// stale, bring the node back, and measure the repair sweep.
	c.SetNodeDown(0, true)
	for i := 0; i < len(files); i += 16 {
		if err := mw.WriteFile(ctx, "bench", files[i], []byte("fresh-bytes-after-outage")); err != nil {
			return out, err
		}
	}
	c.SetNodeDown(0, false)
	repairTime, err := Measure(func(ctx context.Context) error {
		c.Repair(ctx)
		return nil
	})
	if err != nil {
		return out, err
	}

	gcTime, err := Measure(func(ctx context.Context) error {
		return mw.DeleteAccount(ctx, "bench")
	})
	if err != nil {
		return out, err
	}
	out[0], out[1], out[2] = ms(copyTime), ms(repairTime), ms(gcTime)
	return out, nil
}
