package objstore

import "context"

// Batch API. The paper's maintenance operations (COPY of a subtree, GC of
// a namespace, anti-entropy repair) touch many independent objects at
// once; issuing the primitives one round trip at a time serializes what
// the object cloud would happily absorb concurrently. Batcher is the
// optional contract a Store may implement to accept a whole group of
// primitives in one call: a native implementation (internal/cluster)
// executes the group as one overlapped fan-out window and charges the
// vclock its makespan instead of the per-item sum, while middleware
// wrappers forward the batch downward — applying their own behaviour
// per item — without re-charging.
//
// Every batch method is positional: result slot i always corresponds to
// input slot i, and per-item failures are reported in the slot rather
// than failing the whole batch, so callers can tolerate individual
// misses (a child deleted mid-listing) without retrying the group.

// GetResult is the per-item outcome of a MultiGet.
type GetResult struct {
	Data []byte
	Info ObjectInfo
	Err  error
}

// HeadResult is the per-item outcome of a MultiHead.
type HeadResult struct {
	Info ObjectInfo
	Err  error
}

// PutReq is one object write in a MultiPut.
type PutReq struct {
	Name string
	Data []byte
	Meta map[string]string
}

// Batcher is the optional batched half of the store contract. All
// methods are safe for concurrent use and return exactly one result per
// input, in input order.
type Batcher interface {
	// MultiGet reads many objects.
	MultiGet(ctx context.Context, names []string) []GetResult
	// MultiHead reads many objects' metadata.
	MultiHead(ctx context.Context, names []string) []HeadResult
	// MultiPut stores many objects.
	MultiPut(ctx context.Context, reqs []PutReq) []error
	// MultiDelete removes many objects; deleting a missing object yields
	// ErrNotFound in its slot.
	MultiDelete(ctx context.Context, names []string) []error
}

// MultiGet dispatches to s's native Batcher implementation when it has
// one, and otherwise falls back to issuing the singular primitive per
// item — so callers can batch unconditionally against any Store.
func MultiGet(ctx context.Context, s Store, names []string) []GetResult {
	if b, ok := s.(Batcher); ok {
		return b.MultiGet(ctx, names)
	}
	out := make([]GetResult, len(names))
	for i, name := range names {
		out[i].Data, out[i].Info, out[i].Err = s.Get(ctx, name)
	}
	return out
}

// MultiHead dispatches like MultiGet.
func MultiHead(ctx context.Context, s Store, names []string) []HeadResult {
	if b, ok := s.(Batcher); ok {
		return b.MultiHead(ctx, names)
	}
	out := make([]HeadResult, len(names))
	for i, name := range names {
		out[i].Info, out[i].Err = s.Head(ctx, name)
	}
	return out
}

// MultiPut dispatches like MultiGet.
func MultiPut(ctx context.Context, s Store, reqs []PutReq) []error {
	if b, ok := s.(Batcher); ok {
		return b.MultiPut(ctx, reqs)
	}
	out := make([]error, len(reqs))
	for i, r := range reqs {
		out[i] = s.Put(ctx, r.Name, r.Data, r.Meta)
	}
	return out
}

// MultiDelete dispatches like MultiGet.
func MultiDelete(ctx context.Context, s Store, names []string) []error {
	if b, ok := s.(Batcher); ok {
		return b.MultiDelete(ctx, names)
	}
	out := make([]error, len(names))
	for i, name := range names {
		out[i] = s.Delete(ctx, name)
	}
	return out
}
