package objstore

import (
	"crypto/md5"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// NodeStore is the per-device storage contract shared by the in-memory
// Node and the persistent DiskNode; the cluster's replication layer works
// against it.
type NodeStore interface {
	// ID returns the device ID.
	ID() int
	// SetDown marks the node unavailable (failure injection).
	SetDown(down bool)
	// Down reports whether the node is marked unavailable.
	Down() bool
	// Put stores a copy of data under name.
	Put(name string, data []byte, meta map[string]string, now time.Time) error
	// Get returns the object's content and metadata.
	Get(name string) ([]byte, ObjectInfo, error)
	// Head returns the object's metadata.
	Head(name string) (ObjectInfo, error)
	// Delete removes the object.
	Delete(name string) error
	// Stats reports object count and stored bytes.
	Stats() (objects int, bytes int64)
	// Names returns all object names, sorted.
	Names() []string
}

var (
	_ NodeStore = (*Node)(nil)
	_ NodeStore = (*DiskNode)(nil)
)

// DiskNode is a storage device persisted to a directory: each object is a
// data file plus a JSON metadata sidecar, keyed by the MD5 of its name.
// Writes go through a temp-file rename so a crash never leaves a torn
// object. An in-memory index of metadata keeps HEAD and listing fast; it
// is rebuilt from the sidecars on open.
type DiskNode struct {
	id  int
	dir string

	mu    sync.RWMutex
	down  bool
	index map[string]ObjectInfo
	bytes int64
}

// diskMeta is the sidecar schema.
type diskMeta struct {
	Name         string            `json:"name"`
	Size         int64             `json:"size"`
	ETag         string            `json:"etag"`
	LastModified time.Time         `json:"lastModified"`
	Meta         map[string]string `json:"meta,omitempty"`
}

// OpenDiskNode opens (creating if needed) a persistent node rooted at
// dir, rebuilding its index from the metadata sidecars.
func OpenDiskNode(id int, dir string) (*DiskNode, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: disk node %d: %w", id, err)
	}
	n := &DiskNode{id: id, dir: dir, index: make(map[string]ObjectInfo)}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".meta") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var dm diskMeta
		if err := json.Unmarshal(raw, &dm); err != nil {
			return fmt.Errorf("objstore: corrupt sidecar %s: %w", path, err)
		}
		info := ObjectInfo{
			Name: dm.Name, Size: dm.Size, ETag: dm.ETag,
			LastModified: dm.LastModified, Meta: dm.Meta,
		}
		n.index[dm.Name] = info
		n.bytes += dm.Size
		return nil
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

// ID returns the node's device ID.
func (n *DiskNode) ID() int { return n.id }

// SetDown marks the node unavailable.
func (n *DiskNode) SetDown(down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = down
}

// Down reports whether the node is marked unavailable.
func (n *DiskNode) Down() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down
}

// paths returns the data and sidecar file paths for an object name.
func (n *DiskNode) paths(name string) (data, meta string) {
	sum := md5.Sum([]byte(name))
	base := filepath.Join(n.dir, hex.EncodeToString(sum[:]))
	return base + ".data", base + ".meta"
}

// writeAtomic writes content to path via a temp file + rename.
func writeAtomic(path string, content []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, content, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Put stores the object durably.
func (n *DiskNode) Put(name string, data []byte, meta map[string]string, now time.Time) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	dataPath, metaPath := n.paths(name)
	var metaCopy map[string]string
	if len(meta) > 0 {
		metaCopy = make(map[string]string, len(meta))
		for k, v := range meta {
			metaCopy[k] = v
		}
	}
	dm := diskMeta{
		Name: name, Size: int64(len(data)), ETag: ETag(data),
		LastModified: now, Meta: metaCopy,
	}
	sidecar, err := json.Marshal(dm)
	if err != nil {
		return err
	}
	if err := writeAtomic(dataPath, data); err != nil {
		return err
	}
	if err := writeAtomic(metaPath, sidecar); err != nil {
		return err
	}
	if old, ok := n.index[name]; ok {
		n.bytes -= old.Size
	}
	n.index[name] = ObjectInfo{
		Name: name, Size: dm.Size, ETag: dm.ETag,
		LastModified: now, Meta: metaCopy,
	}
	n.bytes += dm.Size
	return nil
}

// Get reads the object's content from disk.
func (n *DiskNode) Get(name string) ([]byte, ObjectInfo, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down {
		return nil, ObjectInfo{}, ErrNodeDown
	}
	info, ok := n.index[name]
	if !ok {
		return nil, ObjectInfo{}, ErrNotFound
	}
	dataPath, _ := n.paths(name)
	data, err := os.ReadFile(dataPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ObjectInfo{}, ErrNotFound
		}
		return nil, ObjectInfo{}, err
	}
	return data, info, nil
}

// Head returns the object's metadata from the in-memory index.
func (n *DiskNode) Head(name string) (ObjectInfo, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down {
		return ObjectInfo{}, ErrNodeDown
	}
	info, ok := n.index[name]
	if !ok {
		return ObjectInfo{}, ErrNotFound
	}
	return info, nil
}

// Delete removes the object's files and index entry.
func (n *DiskNode) Delete(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	info, ok := n.index[name]
	if !ok {
		return ErrNotFound
	}
	dataPath, metaPath := n.paths(name)
	if err := os.Remove(metaPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if err := os.Remove(dataPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	delete(n.index, name)
	n.bytes -= info.Size
	return nil
}

// Stats reports object count and stored bytes.
func (n *DiskNode) Stats() (int, int64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.index), n.bytes
}

// Names returns all object names, sorted.
func (n *DiskNode) Names() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	names := make([]string, 0, len(n.index))
	for name := range n.index {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
