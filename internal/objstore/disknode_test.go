package objstore

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func openDisk(t *testing.T, dir string) *DiskNode {
	t.Helper()
	n, err := OpenDiskNode(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDiskNodeRoundTrip(t *testing.T) {
	n := openDisk(t, t.TempDir())
	now := time.Unix(50, 0)
	if err := n.Put("a/b::c", []byte("payload"), map[string]string{"k": "v"}, now); err != nil {
		t.Fatal(err)
	}
	data, info, err := n.Get("a/b::c")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" || info.Size != 7 || info.Meta["k"] != "v" {
		t.Fatalf("got %q, %+v", data, info)
	}
	if !info.LastModified.Equal(now) {
		t.Fatalf("LastModified = %v", info.LastModified)
	}
}

func TestDiskNodePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	n := openDisk(t, dir)
	if err := n.Put("keep", []byte("durable"), map[string]string{"x": "1"}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("drop", []byte("temp"), nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete("drop"); err != nil {
		t.Fatal(err)
	}

	reopened := openDisk(t, dir)
	data, info, err := reopened.Get("keep")
	if err != nil || string(data) != "durable" || info.Meta["x"] != "1" {
		t.Fatalf("after reopen: %q, %+v, %v", data, info, err)
	}
	if _, _, err := reopened.Get("drop"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted object resurrected: %v", err)
	}
	count, bytes := reopened.Stats()
	if count != 1 || bytes != 7 {
		t.Fatalf("Stats after reopen = (%d, %d)", count, bytes)
	}
	names := reopened.Names()
	if len(names) != 1 || names[0] != "keep" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDiskNodeOverwrite(t *testing.T) {
	n := openDisk(t, t.TempDir())
	if err := n.Put("x", make([]byte, 100), nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("x", make([]byte, 10), nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	count, bytes := n.Stats()
	if count != 1 || bytes != 10 {
		t.Fatalf("Stats = (%d, %d)", count, bytes)
	}
}

func TestDiskNodeDownAndErrors(t *testing.T) {
	n := openDisk(t, t.TempDir())
	if err := n.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v", err)
	}
	if _, err := n.Head("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Head missing = %v", err)
	}
	n.SetDown(true)
	if err := n.Put("x", nil, nil, time.Now()); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Put while down = %v", err)
	}
	if !n.Down() {
		t.Fatal("Down = false")
	}
}

func TestDiskNodeCorruptSidecarRejectedAtOpen(t *testing.T) {
	dir := t.TempDir()
	n := openDisk(t, dir)
	if err := n.Put("x", []byte("1"), nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the sidecar on disk.
	matches, err := filepath.Glob(filepath.Join(dir, "*.meta"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("sidecars: %v, %v", matches, err)
	}
	if err := writeAtomic(matches[0], []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskNode(1, dir); err == nil {
		t.Fatal("corrupt sidecar accepted at open")
	}
}
