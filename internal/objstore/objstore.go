// Package objstore defines the flat object storage primitives that the
// whole H2Cloud stack — and every baseline filesystem — is built on.
//
// An object storage cloud (paper §1) exposes only PUT, GET and DELETE on a
// flat namespace; HEAD and server-side COPY are the two auxiliary
// primitives mainstream clouds (Swift, S3) add. Store is that contract.
// The production implementation in this repository is
// internal/cluster.Cluster, a replicated in-process cloud; tests may use
// the simple single-node Node directly.
package objstore

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"sort"
	"sync"
	"time"
)

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	Name         string
	Size         int64
	ETag         string // hex MD5 of the content
	LastModified time.Time
	Meta         map[string]string // user metadata, copied on write
}

// Typed errors returned by Store implementations.
var (
	// ErrNotFound reports that the named object does not exist.
	ErrNotFound = errors.New("objstore: object not found")
	// ErrNodeDown reports that a storage node is unavailable.
	ErrNodeDown = errors.New("objstore: node down")
	// ErrNoQuorum reports that too few replicas were reachable to commit a
	// write durably.
	ErrNoQuorum = errors.New("objstore: quorum not reached")
)

// Transient reports whether err is a fault that may heal on retry: a
// node that is down can restart, and a write that missed quorum can
// succeed once replicas return. ErrNotFound is not transient — the
// object is genuinely absent from every reachable replica.
func Transient(err error) bool {
	return errors.Is(err, ErrNodeDown) || errors.Is(err, ErrNoQuorum)
}

// Store is the flat object interface (the paper's PUT/GET/DELETE "and other
// primitives", §4.2). All methods are safe for concurrent use.
type Store interface {
	// Put stores data under name, overwriting any existing object.
	Put(ctx context.Context, name string, data []byte, meta map[string]string) error
	// Get returns the object's content and metadata.
	Get(ctx context.Context, name string) ([]byte, ObjectInfo, error)
	// GetRange returns length bytes of the object starting at offset
	// (length < 0 means to the end), with only the returned bytes
	// counting as transfer. Offsets past the end yield an empty slice.
	GetRange(ctx context.Context, name string, offset, length int64) ([]byte, ObjectInfo, error)
	// Head returns the object's metadata without its content.
	Head(ctx context.Context, name string) (ObjectInfo, error)
	// Delete removes the object. Deleting a missing object returns
	// ErrNotFound.
	Delete(ctx context.Context, name string) error
	// Copy duplicates src to dst server-side without client transfer.
	Copy(ctx context.Context, src, dst string) error
}

// ETag computes the hex MD5 content hash used by ObjectInfo.
func ETag(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// Node is one in-memory storage device. It implements the per-device half
// of the cloud: the replication, placement and cost accounting live in
// internal/cluster. The zero value is not usable; call NewNode.
type Node struct {
	id int

	mu      sync.RWMutex
	down    bool
	objects map[string]*object
	bytes   int64
}

type object struct {
	data []byte
	info ObjectInfo
}

// NewNode returns an empty storage node with the given device ID.
func NewNode(id int) *Node {
	return &Node{id: id, objects: make(map[string]*object)}
}

// ID returns the node's device ID.
func (n *Node) ID() int { return n.id }

// SetDown marks the node unavailable (true) or available (false); used for
// failure injection.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = down
}

// Down reports whether the node is marked unavailable.
func (n *Node) Down() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down
}

// Put stores a copy of data under name.
func (n *Node) Put(name string, data []byte, meta map[string]string, now time.Time) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	stored := make([]byte, len(data))
	copy(stored, data)
	var metaCopy map[string]string
	if len(meta) > 0 {
		metaCopy = make(map[string]string, len(meta))
		for k, v := range meta {
			metaCopy[k] = v
		}
	}
	if old, ok := n.objects[name]; ok {
		n.bytes -= old.info.Size
	}
	n.objects[name] = &object{
		data: stored,
		info: ObjectInfo{
			Name:         name,
			Size:         int64(len(stored)),
			ETag:         ETag(stored),
			LastModified: now,
			Meta:         metaCopy,
		},
	}
	n.bytes += int64(len(stored))
	return nil
}

// Get returns a copy of the object's content and its metadata.
func (n *Node) Get(name string) ([]byte, ObjectInfo, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down {
		return nil, ObjectInfo{}, ErrNodeDown
	}
	o, ok := n.objects[name]
	if !ok {
		return nil, ObjectInfo{}, ErrNotFound
	}
	data := make([]byte, len(o.data))
	copy(data, o.data)
	return data, o.info, nil
}

// Head returns the object's metadata.
func (n *Node) Head(name string) (ObjectInfo, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down {
		return ObjectInfo{}, ErrNodeDown
	}
	o, ok := n.objects[name]
	if !ok {
		return ObjectInfo{}, ErrNotFound
	}
	return o.info, nil
}

// Delete removes the object.
func (n *Node) Delete(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	o, ok := n.objects[name]
	if !ok {
		return ErrNotFound
	}
	n.bytes -= o.info.Size
	delete(n.objects, name)
	return nil
}

// Stats reports the node's object count and stored bytes.
func (n *Node) Stats() (objects int, bytes int64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.objects), n.bytes
}

// Names returns all object names on the node, sorted. Intended for
// anti-entropy repair and tests, not the data path.
func (n *Node) Names() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	names := make([]string, 0, len(n.objects))
	for name := range n.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
