package objstore

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func putOK(t *testing.T, n *Node, name string, data []byte) {
	t.Helper()
	if err := n.Put(name, data, nil, time.Now()); err != nil {
		t.Fatalf("Put %s: %v", name, err)
	}
}

func TestNodePutGetRoundTrip(t *testing.T) {
	n := NewNode(1)
	now := time.Unix(100, 0)
	if err := n.Put("a/b", []byte("hello"), map[string]string{"k": "v"}, now); err != nil {
		t.Fatal(err)
	}
	data, info, err := n.Get("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("data = %q", data)
	}
	if info.Size != 5 || info.Name != "a/b" || !info.LastModified.Equal(now) {
		t.Fatalf("info = %+v", info)
	}
	if info.Meta["k"] != "v" {
		t.Fatalf("meta = %v", info.Meta)
	}
	if info.ETag != ETag([]byte("hello")) {
		t.Fatalf("ETag mismatch")
	}
}

func TestNodeGetCopiesData(t *testing.T) {
	n := NewNode(1)
	src := []byte("abc")
	putOK(t, n, "x", src)
	src[0] = 'Z' // caller mutates its buffer after Put
	data, _, err := n.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abc" {
		t.Fatalf("stored data aliased caller buffer: %q", data)
	}
	data[0] = 'Q' // caller mutates the returned buffer
	again, _, err := n.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "abc" {
		t.Fatalf("returned data aliased store: %q", again)
	}
}

func TestNodeOverwriteUpdatesBytes(t *testing.T) {
	n := NewNode(1)
	putOK(t, n, "x", make([]byte, 100))
	putOK(t, n, "x", make([]byte, 40))
	count, bytes := n.Stats()
	if count != 1 || bytes != 40 {
		t.Fatalf("Stats = (%d, %d), want (1, 40)", count, bytes)
	}
}

func TestNodeDeleteAndNotFound(t *testing.T) {
	n := NewNode(1)
	if err := n.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(missing) = %v, want ErrNotFound", err)
	}
	putOK(t, n, "x", []byte("1"))
	if err := n.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Get("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	count, bytes := n.Stats()
	if count != 0 || bytes != 0 {
		t.Fatalf("Stats = (%d, %d), want (0, 0)", count, bytes)
	}
}

func TestNodeHead(t *testing.T) {
	n := NewNode(1)
	if _, err := n.Head("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Head(missing) = %v", err)
	}
	putOK(t, n, "x", []byte("12345"))
	info, err := n.Head("x")
	if err != nil || info.Size != 5 {
		t.Fatalf("Head = %+v, %v", info, err)
	}
}

func TestNodeDown(t *testing.T) {
	n := NewNode(1)
	putOK(t, n, "x", []byte("1"))
	n.SetDown(true)
	if !n.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	if err := n.Put("y", nil, nil, time.Now()); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Put on down node = %v", err)
	}
	if _, _, err := n.Get("x"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Get on down node = %v", err)
	}
	if _, err := n.Head("x"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Head on down node = %v", err)
	}
	if err := n.Delete("x"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Delete on down node = %v", err)
	}
	n.SetDown(false)
	if _, _, err := n.Get("x"); err != nil {
		t.Fatalf("Get after recovery = %v", err)
	}
}

func TestNodeNamesSorted(t *testing.T) {
	n := NewNode(1)
	for _, name := range []string{"c", "a", "b"} {
		putOK(t, n, name, nil)
	}
	names := n.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names = %v", names)
	}
}

// Property: Put then Get returns exactly the stored bytes for arbitrary
// names and contents.
func TestNodeRoundTripProperty(t *testing.T) {
	n := NewNode(1)
	f := func(name string, data []byte) bool {
		if err := n.Put(name, data, nil, time.Now()); err != nil {
			return false
		}
		got, info, err := n.Get(name)
		if err != nil || info.Size != int64(len(data)) {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for i := range got {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestETagStable(t *testing.T) {
	if ETag([]byte("x")) != ETag([]byte("x")) {
		t.Fatal("ETag not deterministic")
	}
	if ETag([]byte("x")) == ETag([]byte("y")) {
		t.Fatal("ETag collision on different content")
	}
}
