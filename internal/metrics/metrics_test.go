package metrics

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Observe("LIST", 10*time.Microsecond, nil)
	r.Observe("LIST", 20*time.Microsecond, nil)
	r.Observe("LIST", 30*time.Microsecond, errors.New("x"))
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	s := snaps[0]
	if s.Name != "LIST" || s.Count != 3 || s.Errors != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean != 20*time.Microsecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.P50 < 10*time.Microsecond || s.P50 > 64*time.Microsecond {
		t.Fatalf("P50 = %v", s.P50)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		r.Observe(n, time.Millisecond, nil)
	}
	snaps := r.Snapshot()
	if snaps[0].Name != "a" || snaps[1].Name != "m" || snaps[2].Name != "z" {
		t.Fatalf("order: %+v", snaps)
	}
}

func TestTimed(t *testing.T) {
	r := NewRegistry()
	sentinel := errors.New("boom")
	if err := r.Timed("op", func() error { return sentinel }); err != sentinel {
		t.Fatalf("Timed err = %v", err)
	}
	s := r.Snapshot()[0]
	if s.Count != 1 || s.Errors != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestTimedInjectedClockDeterministic(t *testing.T) {
	// A fake clock advancing 3ms per read makes Timed's recorded latency
	// exact: start read + end read = 3ms measured, every run.
	var ticks int
	clock := func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*3_000_000)
	}
	r := NewRegistryWithClock(clock)
	if err := r.Timed("op", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()[0]
	if s.Mean != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want exactly 3ms from the injected clock", s.Mean)
	}
}

func TestPercentileBuckets(t *testing.T) {
	r := NewRegistry()
	// 99 fast ops, 2 slow: the nearest-rank P99 (the 100th of 101) must
	// land in the slow bucket region, P50 in the fast one.
	for i := 0; i < 99; i++ {
		r.Observe("op", 5*time.Microsecond, nil)
	}
	r.Observe("op", 50*time.Millisecond, nil)
	r.Observe("op", 50*time.Millisecond, nil)
	s := r.Snapshot()[0]
	if s.P50 > 100*time.Microsecond {
		t.Fatalf("P50 = %v, want fast", s.P50)
	}
	if s.P99 < 10*time.Millisecond {
		t.Fatalf("P99 = %v, want slow", s.P99)
	}
}

func TestZeroValueRegistryUsable(t *testing.T) {
	var r Registry
	r.Observe("op", time.Millisecond, nil)
	if got := r.Snapshot()[0].Count; got != 1 {
		t.Fatalf("Count = %d", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe("op", time.Microsecond, nil)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot()[0].Count; got != 4000 {
		t.Fatalf("Count = %d, want 4000", got)
	}
}

func TestBucketBoundsMonotone(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i < nBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d) = %v not increasing (prev %v)", i, u, prev)
		}
		prev = u
	}
	for _, d := range []time.Duration{0, time.Microsecond, time.Millisecond, time.Second, time.Hour} {
		b := bucketFor(d)
		if b < 0 || b >= nBuckets {
			t.Fatalf("bucketFor(%v) = %d", d, b)
		}
		// The last bucket saturates; every other bucket must contain d.
		if b < nBuckets-1 && d > bucketUpper(b) {
			t.Fatalf("d=%v exceeds its bucket upper %v", d, bucketUpper(b))
		}
	}
}
