// Package metrics provides the lightweight operation counters and latency
// histograms behind the H2Middleware's monitoring module (paper §4.2
// lists "system monitoring" among the middleware's components).
//
// A Registry tracks named operations; each records a count, an error
// count, and a log2-bucketed latency histogram cheap enough for the data
// path. Snapshots serialize to JSON through the web API's /v1/stats.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// nBuckets covers 1µs .. ~17min in powers of two.
const nBuckets = 31

// opStats is one operation's live counters.
type opStats struct {
	count   atomic.Int64
	errors  atomic.Int64
	sumNano atomic.Int64
	buckets [nBuckets]atomic.Int64
}

// Registry tracks a set of named operations. The zero value is ready to
// use and reads the wall clock; construct with NewRegistryWithClock to
// time operations against an injected clock (deterministic tests, or the
// simulator's virtual time).
type Registry struct {
	mu       sync.RWMutex
	ops      map[string]*opStats
	counters map[string]*atomic.Int64
	now      func() time.Time // nil means defaultNow
}

// defaultNow is the wall clock, referenced (never called) inside this
// package so the daemon edge stays the only place real time enters.
var defaultNow = time.Now

// NewRegistry returns an empty registry timing against the wall clock.
func NewRegistry() *Registry {
	return NewRegistryWithClock(nil)
}

// NewRegistryWithClock returns an empty registry whose Timed measures
// durations with now. A nil now falls back to the wall clock.
func NewRegistryWithClock(now func() time.Time) *Registry {
	if now == nil {
		now = defaultNow
	}
	return &Registry{ops: make(map[string]*opStats), now: now}
}

// clock returns the registry's time source.
func (r *Registry) clock() func() time.Time {
	if r.now == nil {
		return defaultNow
	}
	return r.now
}

// lookup fetches an existing operation under the read lock.
func (r *Registry) lookup(name string) (*opStats, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.ops[name]
	return s, ok
}

func (r *Registry) op(name string) *opStats {
	if s, ok := r.lookup(name); ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.ops[name]; ok {
		return s
	}
	if r.ops == nil {
		r.ops = make(map[string]*opStats)
	}
	s := &opStats{}
	r.ops[name] = s
	return s
}

// lookupCounter fetches an existing counter under the read lock.
func (r *Registry) lookupCounter(name string) (*atomic.Int64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.counters[name]
	return c, ok
}

// counter fetches or creates the named counter.
func (r *Registry) counter(name string) *atomic.Int64 {
	if c, ok := r.lookupCounter(name); ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*atomic.Int64)
	}
	c := &atomic.Int64{}
	r.counters[name] = c
	return c
}

// Inc adds delta to the named event counter. Counters are the plain
// tallies behind fault-injection and degradation accounting (injected
// faults, retries, degraded reads); unlike operations they carry no
// latency. Inc on a nil registry is a no-op, so instrumented code paths
// need no nil checks.
func (r *Registry) Inc(name string, delta int64) {
	if r == nil {
		return
	}
	r.counter(name).Add(delta)
}

// Counter reads the named counter (0 if it was never incremented). Safe
// on a nil registry.
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	if c, ok := r.lookupCounter(name); ok {
		return c.Load()
	}
	return 0
}

// CounterSnapshot is one counter's aggregated view.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// counterNames returns the registered counter names, sorted, reading
// under the read lock.
func (r *Registry) counterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Counters returns all event counters sorted by name. Safe on a nil
// registry (returns nil).
func (r *Registry) Counters() []CounterSnapshot {
	if r == nil {
		return nil
	}
	names := r.counterNames()
	out := make([]CounterSnapshot, 0, len(names))
	for _, name := range names {
		out = append(out, CounterSnapshot{Name: name, Value: r.Counter(name)})
	}
	return out
}

// bucketFor maps a duration to its log2 bucket index.
func bucketFor(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	us := d.Nanoseconds() / 1000
	b := 0
	for us > 0 && b < nBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one completed operation.
func (r *Registry) Observe(name string, d time.Duration, err error) {
	s := r.op(name)
	s.count.Add(1)
	if err != nil {
		s.errors.Add(1)
	}
	s.sumNano.Add(d.Nanoseconds())
	s.buckets[bucketFor(d)].Add(1)
}

// Timed runs fn, observing its latency and error under name. Latency is
// measured on the registry's injected clock (wall clock by default).
func (r *Registry) Timed(name string, fn func() error) error {
	now := r.clock()
	start := now()
	err := fn()
	r.Observe(name, now().Sub(start), err)
	return err
}

// OpSnapshot is one operation's aggregated view.
type OpSnapshot struct {
	Name   string        `json:"name"`
	Count  int64         `json:"count"`
	Errors int64         `json:"errors"`
	Mean   time.Duration `json:"meanNs"`
	// P50/P90/P99 are bucket-resolution estimates (upper bucket bound).
	P50 time.Duration `json:"p50Ns"`
	P90 time.Duration `json:"p90Ns"`
	P99 time.Duration `json:"p99Ns"`
}

// opNames returns the registered operation names, sorted, reading under
// the read lock.
func (r *Registry) opNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.ops))
	for name := range r.ops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns all operations sorted by name.
func (r *Registry) Snapshot() []OpSnapshot {
	names := r.opNames()
	out := make([]OpSnapshot, 0, len(names))
	for _, name := range names {
		s := r.op(name)
		snap := OpSnapshot{Name: name, Count: s.count.Load(), Errors: s.errors.Load()}
		if snap.Count > 0 {
			snap.Mean = time.Duration(s.sumNano.Load() / snap.Count)
		}
		var counts [nBuckets]int64
		total := int64(0)
		for i := range counts {
			counts[i] = s.buckets[i].Load()
			total += counts[i]
		}
		snap.P50 = percentile(counts[:], total, 0.50)
		snap.P90 = percentile(counts[:], total, 0.90)
		snap.P99 = percentile(counts[:], total, 0.99)
		out = append(out, snap)
	}
	return out
}

// percentile returns the upper bound of the bucket containing quantile q.
func percentile(buckets []int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	target := int64(float64(total)*q + 0.5)
	if target < 1 {
		target = 1
	}
	acc := int64(0)
	for i, c := range buckets {
		acc += c
		if acc >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(nBuckets - 1)
}

// bucketUpper is the inclusive upper latency bound of bucket i.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return time.Microsecond
	}
	return time.Duration(int64(1)<<uint(i-1)) * 2 * time.Microsecond
}
