package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestShardManifestRoundTrip(t *testing.T) {
	for _, m := range []ShardManifest{
		{Shards: 2, Gen: 0},
		{Shards: 16, Gen: 3},
		{Shards: MaxDirShards, Gen: 1 << 40},
	} {
		data := EncodeShardManifest(m)
		if !IsShardManifest(data) {
			t.Fatalf("IsShardManifest(%q) = false", data)
		}
		got, err := DecodeShardManifest(data)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %+v -> %+v", m, got)
		}
	}
}

// TestShardManifestGolden pins the exact H2DRX/1 wire format. A sharded
// directory written by one build must decode on every other, so this
// encoding may only ever be extended, never changed.
func TestShardManifestGolden(t *testing.T) {
	got := string(EncodeShardManifest(ShardManifest{Shards: 16, Gen: 3}))
	want := "H2DRX/1\nshards=16\ngen=3\n"
	if got != want {
		t.Fatalf("EncodeShardManifest = %q, want %q", got, want)
	}
}

func TestShardManifestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"H2NR/1\n",
		"H2DRX/1",                       // no newline after magic
		"H2DRX/1\nshards=1\ngen=0\n",    // below minimum
		"H2DRX/1\nshards=9999\ngen=0\n", // above maximum
		"H2DRX/1\nshards=16\ngen=-1\n",
		"H2DRX/1\nshards=16\ngen=x\n",
		"H2DRX/1\nshards=x\ngen=0\n",
		"H2DRX/1\nbogus\n",
		"H2DRX/1\nshards=16\ngen=0\nextra=1\n",
	}
	for _, c := range cases {
		if _, err := DecodeShardManifest([]byte(c)); err == nil {
			t.Errorf("DecodeShardManifest(%q) accepted", c)
		}
	}
}

func TestIsShardManifestRejectsRing(t *testing.T) {
	ring := EncodeNameRing(NewNameRing())
	if IsShardManifest(ring) {
		t.Fatalf("ring object misdetected as manifest: %q", ring)
	}
	if IsShardManifest([]byte("H2DRX/10\n")) {
		t.Fatal("H2DRX/10 misdetected as H2DRX/1")
	}
}

// TestShardOfPinned pins the FNV-1a routing to known values. These
// constants are part of the on-disk format: a tuple stored in extent
// ShardOf(name, shards) is only found again if every build computes the
// same number.
func TestShardOfPinned(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		want   int
	}{
		{"", 16, 5},       // FNV offset basis 2166136261 % 16
		{"a", 16, refA16}, // computed below for self-consistency
		{"file1", 16, 6},
		{"file1", 4, 2},
		{"child000042", 16, 11},
		{"projects", 8, 7},
		{"проект", 16, 5}, // routing is byte-wise, multi-byte safe
	}
	for _, c := range cases {
		if got := ShardOf(c.name, c.shards); got != c.want {
			t.Errorf("ShardOf(%q, %d) = %d, want %d", c.name, c.shards, got, c.want)
		}
	}
	if got := ShardOf("anything", 1); got != 0 {
		t.Errorf("ShardOf(_, 1) = %d, want 0", got)
	}
	if got := ShardOf("anything", 0); got != 0 {
		t.Errorf("ShardOf(_, 0) = %d, want 0", got)
	}
}

// refA16 spells out the reference FNV-1a computation once, so the pinned
// table above cannot drift together with a broken implementation.
var refA16 = func() int {
	h := uint32(2166136261)
	h ^= 'a'
	h *= 16777619
	return int(h % 16)
}()

func TestExtentKeyRoundTrip(t *testing.T) {
	key := ExtentKey("alice", "N97", 7, 16)
	if want := "alice|N97::/NameRing/.Extent007-016"; key != want {
		t.Fatalf("ExtentKey = %q, want %q", key, want)
	}
	if !IsExtentKey(key) {
		t.Fatalf("IsExtentKey(%q) = false", key)
	}
	account, ns, shard, shards, err := ParseExtentKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if account != "alice" || ns != "N97" || shard != 7 || shards != 16 {
		t.Fatalf("ParseExtentKey = %q %q %d %d", account, ns, shard, shards)
	}
	for _, bad := range []string{
		"alice|N97::/NameRing/",
		"alice|N97::/NameRing/.Node01.Patch000003",
		"alice|N97::/NameRing/.Extent016-016", // shard >= shards
		"alice|N97::/NameRing/.Extent000-001", // count below minimum
		"alice|N97::/NameRing/.Extentxx-016",
	} {
		if _, _, _, _, err := ParseExtentKey(bad); err == nil {
			t.Errorf("ParseExtentKey(%q) accepted", bad)
		}
	}
	// Extent keys must never collide with ring or patch key classes.
	if IsExtentKey(RingKey("alice", "N97")) {
		t.Error("ring key misdetected as extent")
	}
	if IsExtentKey(PatchKey("alice", "N97", 1, 3)) {
		t.Error("patch key misdetected as extent")
	}
	if strings.Contains(key, ".Node") {
		t.Error("extent key collides with the patch key marker")
	}
}

func TestExtentKeysDerivation(t *testing.T) {
	keys := ExtentKeys("a", "N1", 4)
	if len(keys) != 4 {
		t.Fatalf("len = %d", len(keys))
	}
	for i, k := range keys {
		_, _, shard, shards, err := ParseExtentKey(k)
		if err != nil || shard != i || shards != 4 {
			t.Fatalf("keys[%d] = %q (%v)", i, k, err)
		}
	}
}

// TestExtentPartition checks the load-bearing partition property: the
// extents of a ring are disjoint, cover every tuple (tombstones
// included), and each round-trips through the ordinary NameRing codec.
func TestExtentPartition(t *testing.T) {
	src := NewNameRing()
	for i := 0; i < 500; i++ {
		src.Set(Tuple{Name: fmt.Sprintf("child%04d", i), Time: int64(i + 1), Deleted: i%7 == 0})
	}
	const shards = 8
	decoded := make([]*NameRing, shards)
	total := 0
	for s := 0; s < shards; s++ {
		data := EncodeNameRingExtent(src, s, shards)
		ext, err := DecodeNameRing(data)
		if err != nil {
			t.Fatalf("extent %d: %v", s, err)
		}
		for _, tp := range ext.All() {
			if got := ShardOf(tp.Name, shards); got != s {
				t.Fatalf("tuple %q found in extent %d, routes to %d", tp.Name, s, got)
			}
		}
		total += ext.TotalLen()
		decoded[s] = ext
	}
	if total != src.TotalLen() {
		t.Fatalf("extents hold %d tuples, ring has %d", total, src.TotalLen())
	}
	merged := MergedExtents(decoded)
	if !merged.Equal(src) {
		t.Fatal("MergedExtents != source ring")
	}
}

func TestMergedExtentsSkipsNil(t *testing.T) {
	a := NewNameRing()
	a.Set(Tuple{Name: "x", Time: 1})
	got := MergedExtents([]*NameRing{nil, a, nil})
	if got.TotalLen() != 1 {
		t.Fatalf("TotalLen = %d", got.TotalLen())
	}
}

func TestCompactFuncReportsDropped(t *testing.T) {
	r := NewNameRing()
	r.Set(Tuple{Name: "live", Time: 5})
	r.Set(Tuple{Name: "old", Time: 3, Deleted: true})
	r.Set(Tuple{Name: "fresh", Time: 9, Deleted: true})
	var dropped []string
	n := r.CompactFunc(4, func(t Tuple) { dropped = append(dropped, t.Name) })
	if n != 1 || len(dropped) != 1 || dropped[0] != "old" {
		t.Fatalf("CompactFunc = %d, dropped %v", n, dropped)
	}
}
