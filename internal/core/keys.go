package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Object key scheme. H2 addresses every object through a namespace-
// decorated relative path (§3.1): hashing "N02::file1" on the consistent
// hashing ring locates file1 inside the directory whose namespace is N02
// in O(1) time. Keys are prefixed with the owning account so one cloud
// hosts many users' filesystems, mirroring Swift's account/container
// scoping.

// ringSuffix is the reserved child name under which a directory's
// NameRing object lives. Child names never contain '/', so it cannot
// collide with a real child.
const ringSuffix = "/NameRing/"

// ChildKey returns the object key of the child `name` inside the
// directory with namespace ns — the namespace-decorated relative path.
func ChildKey(account, ns, name string) string {
	return account + "|" + ns + "::" + name
}

// RingKey returns the object key of the NameRing of namespace ns.
func RingKey(account, ns string) string {
	return account + "|" + ns + "::" + ringSuffix
}

// PatchKey returns the object key of one NameRing patch, following the
// paper's naming: "N97::/NameRing/.Node01.Patch03 indicates the third
// patch of the namespace N97's NameRing, submitted by node 01" (§3.3.2).
func PatchKey(account, ns string, node, seq int) string {
	return fmt.Sprintf("%s.Node%02d.Patch%06d", RingKey(account, ns), node, seq)
}

// RootKey returns the object key of the account's root record, which
// stores the namespace UUID of the user's root directory.
func RootKey(account string) string {
	return account + "|/root"
}

// ParsePatchKey extracts the node number and patch sequence from a patch
// object key.
func ParsePatchKey(key string) (node, seq int, err error) {
	i := strings.LastIndex(key, ".Node")
	if i < 0 {
		return 0, 0, fmt.Errorf("core: %q is not a patch key", key)
	}
	rest := key[i+len(".Node"):]
	nodeStr, seqPart, ok := strings.Cut(rest, ".Patch")
	if !ok {
		return 0, 0, fmt.Errorf("core: %q is not a patch key", key)
	}
	node, err = strconv.Atoi(nodeStr)
	if err != nil {
		return 0, 0, fmt.Errorf("core: bad node in patch key %q: %w", key, err)
	}
	seq, err = strconv.Atoi(seqPart)
	if err != nil {
		return 0, 0, fmt.Errorf("core: bad sequence in patch key %q: %w", key, err)
	}
	return node, seq, nil
}

// ValidAccount reports whether an account name is usable in object keys:
// non-empty, ASCII letters/digits/dash/underscore only.
func ValidAccount(account string) bool {
	if account == "" {
		return false
	}
	for _, c := range account {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// ValidChildName reports whether a name may appear as a path component:
// non-empty, no '/', not "." or "..".
func ValidChildName(name string) bool {
	return name != "" && name != "." && name != ".." && !strings.ContainsRune(name, '/')
}
