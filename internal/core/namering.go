package core

import "sort"

// NameRing maintains the direct children of one directory (§3.1). The
// zero value is not usable; call NewNameRing. NameRing is not safe for
// concurrent use: the maintenance module serializes access through the
// per-NameRing File Descriptor (§4.5).
type NameRing struct {
	children map[string]Tuple
}

// NewNameRing returns an empty NameRing.
func NewNameRing() *NameRing {
	return &NameRing{children: make(map[string]Tuple)}
}

// Set stores the tuple unconditionally, replacing any entry for the same
// child. Local authoritative operations (the submitting middleware) use
// Set; merges use Update.
func (r *NameRing) Set(t Tuple) {
	r.children[t.Name] = t
}

// Update applies the tuple with merge semantics: it is stored only if no
// entry exists for the child or if it wins by timestamp. It reports
// whether the ring changed.
func (r *NameRing) Update(t Tuple) bool {
	old, ok := r.children[t.Name]
	if ok && !t.Wins(old) {
		return false
	}
	r.children[t.Name] = t
	return true
}

// Get returns the tuple recorded for a child, including tombstones.
func (r *NameRing) Get(name string) (Tuple, bool) {
	t, ok := r.children[name]
	return t, ok
}

// Has reports whether the child exists and is not fake-deleted.
func (r *NameRing) Has(name string) bool {
	t, ok := r.children[name]
	return ok && !t.Deleted
}

// Live returns the non-deleted tuples sorted alphabetically by name, the
// order the Formatter packs them in (§4.4).
func (r *NameRing) Live() []Tuple {
	out := make([]Tuple, 0, len(r.children))
	for _, t := range r.children {
		if !t.Deleted {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns every tuple — tombstones included — sorted by name.
func (r *NameRing) All() []Tuple {
	out := make([]Tuple, 0, len(r.children))
	for _, t := range r.children {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of live (non-deleted) children.
func (r *NameRing) Len() int {
	n := 0
	for _, t := range r.children {
		if !t.Deleted {
			n++
		}
	}
	return n
}

// TotalLen reports the number of tuples including tombstones.
func (r *NameRing) TotalLen() int { return len(r.children) }

// Version returns the largest tuple timestamp in the ring; the gossip
// protocol advertises it as the ring's update time t_k (§3.3.2).
func (r *NameRing) Version() int64 {
	var v int64
	for _, t := range r.children {
		if t.Time > v {
			v = t.Time
		}
	}
	return v
}

// Merge folds other into r using the NameRing merging algorithm of
// §3.3.2: for each child of the incoming ring, a child present in both
// is overridden by the larger timestamp, and a child only present in the
// incoming ring is inserted. No child is ever removed by a merge. It
// reports how many entries changed.
func (r *NameRing) Merge(other *NameRing) int {
	if other == nil {
		return 0
	}
	changed := 0
	for _, t := range other.children {
		if r.Update(t) {
			changed++
		}
	}
	return changed
}

// Merged returns a new ring equal to a merged with b, leaving both inputs
// untouched.
func Merged(a, b *NameRing) *NameRing {
	out := NewNameRing()
	out.Merge(a)
	out.Merge(b)
	return out
}

// Compact "really" removes fake-deleted tuples whose timestamp is at or
// before horizon (§3.3.2 leaves this until the NameRing is in use, e.g.
// during MOVE or LIST). Tombstones newer than the horizon are kept so
// that in-flight patches from other nodes cannot resurrect the child. It
// reports how many tombstones were dropped.
func (r *NameRing) Compact(horizon int64) int {
	dropped := 0
	for name, t := range r.children {
		if t.Deleted && t.Time <= horizon {
			delete(r.children, name)
			dropped++
		}
	}
	return dropped
}

// Clone returns a deep copy.
func (r *NameRing) Clone() *NameRing {
	out := &NameRing{children: make(map[string]Tuple, len(r.children))}
	for name, t := range r.children {
		out.children[name] = t
	}
	return out
}

// Equal reports whether two rings hold exactly the same tuples.
func (r *NameRing) Equal(other *NameRing) bool {
	if len(r.children) != len(other.children) {
		return false
	}
	for name, t := range r.children {
		if ot, ok := other.children[name]; !ok || ot != t {
			return false
		}
	}
	return true
}
