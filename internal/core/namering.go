package core

import (
	"slices"
	"strings"
)

// NameRing maintains the direct children of one directory (§3.1). The
// zero value is not usable; call NewNameRing. NameRing is not safe for
// concurrent use: the maintenance module serializes access through the
// per-NameRing File Descriptor (§4.5).
type NameRing struct {
	children map[string]Tuple
}

// NewNameRing returns an empty NameRing.
func NewNameRing() *NameRing {
	return &NameRing{children: make(map[string]Tuple)}
}

// newNameRingCap returns an empty NameRing pre-sized for n children, so
// hot paths that know the final size (decode, merge) avoid incremental
// map growth.
func newNameRingCap(n int) *NameRing {
	return &NameRing{children: make(map[string]Tuple, n)}
}

// Set stores the tuple unconditionally, replacing any entry for the same
// child. Local authoritative operations (the submitting middleware) use
// Set; merges use Update.
func (r *NameRing) Set(t Tuple) {
	r.children[t.Name] = t
}

// Update applies the tuple with merge semantics: it is stored only if no
// entry exists for the child or if it wins by timestamp. It reports
// whether the ring changed.
func (r *NameRing) Update(t Tuple) bool {
	old, ok := r.children[t.Name]
	if ok && !t.Wins(old) {
		return false
	}
	r.children[t.Name] = t
	return true
}

// Get returns the tuple recorded for a child, including tombstones.
func (r *NameRing) Get(name string) (Tuple, bool) {
	t, ok := r.children[name]
	return t, ok
}

// Has reports whether the child exists and is not fake-deleted.
func (r *NameRing) Has(name string) bool {
	t, ok := r.children[name]
	return ok && !t.Deleted
}

func tupleNameCmp(a, b Tuple) int { return strings.Compare(a.Name, b.Name) }

// Live returns the non-deleted tuples sorted alphabetically by name, the
// order the Formatter packs them in (§4.4).
func (r *NameRing) Live() []Tuple {
	return r.AppendLive(make([]Tuple, 0, len(r.children)))
}

// AppendLive appends the non-deleted tuples, sorted by name, to dst and
// returns the extended slice. Callers on the hot path pass a reusable
// scratch slice to avoid the per-call allocation of Live.
func (r *NameRing) AppendLive(dst []Tuple) []Tuple {
	start := len(dst)
	if free := cap(dst) - start; free < len(r.children) {
		grown := make([]Tuple, start, start+len(r.children))
		copy(grown, dst)
		dst = grown
	}
	for _, t := range r.children {
		if !t.Deleted {
			dst = append(dst, t)
		}
	}
	slices.SortFunc(dst[start:], tupleNameCmp)
	return dst
}

// All returns every tuple — tombstones included — sorted by name.
func (r *NameRing) All() []Tuple {
	return r.AppendAll(make([]Tuple, 0, len(r.children)))
}

// AppendAll appends every tuple — tombstones included — sorted by name,
// to dst and returns the extended slice. The zero-alloc sibling of All.
func (r *NameRing) AppendAll(dst []Tuple) []Tuple {
	start := len(dst)
	if free := cap(dst) - start; free < len(r.children) {
		grown := make([]Tuple, start, start+len(r.children))
		copy(grown, dst)
		dst = grown
	}
	for _, t := range r.children {
		dst = append(dst, t)
	}
	slices.SortFunc(dst[start:], tupleNameCmp)
	return dst
}

// AppendExtent appends the tuples — tombstones included — whose name
// routes to shard (of shards), sorted by name, to dst and returns the
// extended slice. It is the iteration primitive behind
// EncodeNameRingExtent; like the other Append* methods it allocates only
// when dst lacks capacity.
func (r *NameRing) AppendExtent(dst []Tuple, shard, shards int) []Tuple {
	start := len(dst)
	for _, t := range r.children {
		if ShardOf(t.Name, shards) == shard {
			dst = append(dst, t)
		}
	}
	slices.SortFunc(dst[start:], tupleNameCmp)
	return dst
}

// Len reports the number of live (non-deleted) children.
func (r *NameRing) Len() int {
	n := 0
	for _, t := range r.children {
		if !t.Deleted {
			n++
		}
	}
	return n
}

// TotalLen reports the number of tuples including tombstones.
func (r *NameRing) TotalLen() int { return len(r.children) }

// Version returns the largest tuple timestamp in the ring; the gossip
// protocol advertises it as the ring's update time t_k (§3.3.2).
func (r *NameRing) Version() int64 {
	var v int64
	for _, t := range r.children {
		if t.Time > v {
			v = t.Time
		}
	}
	return v
}

// Merge folds other into r using the NameRing merging algorithm of
// §3.3.2: for each child of the incoming ring, a child present in both
// is overridden by the larger timestamp, and a child only present in the
// incoming ring is inserted. No child is ever removed by a merge. It
// reports how many entries changed.
func (r *NameRing) Merge(other *NameRing) int {
	return r.MergeFunc(other, nil)
}

// MergeFunc is Merge with a per-changed-tuple callback: sharded
// descriptors use it to record which children a merge actually altered,
// so a later flush rewrites only the extents holding them. A nil fn is
// allowed.
func (r *NameRing) MergeFunc(other *NameRing, fn func(Tuple)) int {
	if other == nil {
		return 0
	}
	changed := 0
	for _, t := range other.children {
		if r.Update(t) {
			changed++
			if fn != nil {
				fn(t)
			}
		}
	}
	return changed
}

// Merged returns a new ring equal to a merged with b, leaving both inputs
// untouched.
func Merged(a, b *NameRing) *NameRing {
	n := 0
	if a != nil {
		n += a.TotalLen()
	}
	if b != nil {
		n += b.TotalLen()
	}
	out := newNameRingCap(n)
	out.Merge(a)
	out.Merge(b)
	return out
}

// Compact "really" removes fake-deleted tuples whose timestamp is at or
// before horizon (§3.3.2 leaves this until the NameRing is in use, e.g.
// during MOVE or LIST). Tombstones newer than the horizon are kept so
// that in-flight patches from other nodes cannot resurrect the child. It
// reports how many tombstones were dropped.
func (r *NameRing) Compact(horizon int64) int {
	return r.CompactFunc(horizon, nil)
}

// CompactFunc is Compact with a per-dropped-tombstone callback: sharded
// flushes use it to mark the extent of every removed tuple dirty, so the
// store copy of that extent is rewritten without its tombstone instead of
// silently keeping it. A nil fn is allowed.
func (r *NameRing) CompactFunc(horizon int64, fn func(Tuple)) int {
	dropped := 0
	for name, t := range r.children {
		if t.Deleted && t.Time <= horizon {
			delete(r.children, name)
			dropped++
			if fn != nil {
				fn(t)
			}
		}
	}
	return dropped
}

// Clone returns a deep copy.
func (r *NameRing) Clone() *NameRing {
	out := &NameRing{children: make(map[string]Tuple, len(r.children))}
	for name, t := range r.children {
		out.children[name] = t
	}
	return out
}

// Equal reports whether two rings hold exactly the same tuples.
func (r *NameRing) Equal(other *NameRing) bool {
	if len(r.children) != len(other.children) {
		return false
	}
	for name, t := range r.children {
		if ot, ok := other.children[name]; !ok || ot != t {
			return false
		}
	}
	return true
}
