package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeNameRingRoundTrip(t *testing.T) {
	r := NewNameRing()
	r.Set(Tuple{Name: "cat", Time: 100})
	r.Set(Tuple{Name: "bash", Time: 200, Dir: true, NS: "02.01.1469346604539"})
	r.Set(Tuple{Name: "nc", Time: 300, Deleted: true})
	r.Set(Tuple{Name: "video.bin", Time: 350, Chunked: true})
	r.Set(Tuple{Name: "weird\tname\n", Time: 400, Dir: true, Deleted: true, NS: "03.02.7"})
	got, err := DecodeNameRing(EncodeNameRing(r))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", r.All(), got.All())
	}
}

func TestEncodeNameRingSortedASCII(t *testing.T) {
	r := NewNameRing()
	r.Set(Tuple{Name: "zebra", Time: 1})
	r.Set(Tuple{Name: "apple", Time: 2})
	out := string(EncodeNameRing(r))
	if !strings.HasPrefix(out, "H2NR/1\n") {
		t.Fatalf("missing magic: %q", out)
	}
	if strings.Index(out, "apple") > strings.Index(out, "zebra") {
		t.Fatal("tuples not alphabetically sorted")
	}
	for _, c := range out {
		if c > 127 {
			t.Fatalf("non-ASCII byte in encoding: %q", c)
		}
	}
}

func TestDecodeNameRingErrors(t *testing.T) {
	cases := []string{
		"",
		"WRONG/1\n",
		"H2NR/1\nunquoted\t1\t-\t-\n",
		"H2NR/1\n\"x\"\tnotanumber\t-\t-\n",
		"H2NR/1\n\"x\"\t1\tq\t-\n",
		"H2NR/1\n\"x\"\t1\t-\n",
		"H2NR/1\n\"x\"\t1\n",
	}
	for _, c := range cases {
		if _, err := DecodeNameRing([]byte(c)); err == nil {
			t.Errorf("DecodeNameRing(%q) accepted", c)
		}
	}
}

func TestEmptyNameRingRoundTrip(t *testing.T) {
	got, err := DecodeNameRing(EncodeNameRing(NewNameRing()))
	if err != nil || got.TotalLen() != 0 {
		t.Fatalf("empty round trip: %v, %d tuples", err, got.TotalLen())
	}
}

// Property: encode/decode is lossless for arbitrary names and flags.
func TestNameRingCodecProperty(t *testing.T) {
	f := func(names []string, times []int64, flags []uint8) bool {
		r := NewNameRing()
		for i, n := range names {
			if n == "" {
				continue
			}
			tp := Tuple{Name: n}
			if i < len(times) {
				tp.Time = times[i]
			}
			if i < len(flags) {
				tp.Deleted = flags[i]&1 != 0
				tp.Dir = flags[i]&2 != 0
				if tp.Dir && flags[i]&4 != 0 {
					tp.NS = "01.02.3"
				}
				if !tp.Dir {
					tp.Chunked = flags[i]&8 != 0
				}
			}
			r.Set(tp)
		}
		got, err := DecodeNameRing(EncodeNameRing(r))
		return err == nil && got.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirObjectRoundTrip(t *testing.T) {
	d := DirObject{NS: "06.01.1469346604539", Name: "home dir \"x\"", Created: 123456789}
	got, err := DecodeDir(EncodeDir(d))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip = %+v, want %+v", got, d)
	}
	if !IsDirObject(EncodeDir(d)) {
		t.Fatal("IsDirObject = false on encoded dir")
	}
	if IsDirObject([]byte("random")) {
		t.Fatal("IsDirObject = true on junk")
	}
}

func TestDecodeDirErrors(t *testing.T) {
	cases := []string{
		"",
		"H2DIR/1\nnope\n",
		"H2DIR/1\nname=\"x\"\n",          // missing ns
		"H2DIR/1\nns=1.1.1\nname=bare\n", // unquoted name
		"H2DIR/1\nns=1.1.1\ncreated=x\n",
		"H2DIR/1\nunknown=1\n",
	}
	for _, c := range cases {
		if _, err := DecodeDir([]byte(c)); err == nil {
			t.Errorf("DecodeDir(%q) accepted", c)
		}
	}
}

func TestPatchKeyMatchesPaperFormat(t *testing.T) {
	// §3.3.2 example: "N97::/NameRing/.Node01.Patch03".
	key := PatchKey("alice", "N97", 1, 3)
	if !strings.Contains(key, "N97::/NameRing/.Node01.Patch") {
		t.Fatalf("patch key = %q", key)
	}
	node, seq, err := ParsePatchKey(key)
	if err != nil || node != 1 || seq != 3 {
		t.Fatalf("ParsePatchKey = %d, %d, %v", node, seq, err)
	}
}

func TestParsePatchKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "alice|N97::/NameRing/", "x.Node01", "x.NodeAA.Patch01", "x.Node01.PatchZZ"} {
		if _, _, err := ParsePatchKey(bad); err == nil {
			t.Errorf("ParsePatchKey(%q) accepted", bad)
		}
	}
}

func TestPatchEncodeDecodeRoundTrip(t *testing.T) {
	ring := NewNameRing()
	ring.Set(Tuple{Name: "file1", Time: 42})
	ring.Set(Tuple{Name: "gone", Time: 43, Deleted: true})
	p := &Patch{Account: "alice", NS: "02.01.99", Node: 3, Seq: 17, Ring: ring}
	got, err := DecodePatch(p.Key(), p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Account != "alice" || got.NS != "02.01.99" || got.Node != 3 || got.Seq != 17 {
		t.Fatalf("decoded patch = %+v", got)
	}
	if !got.Ring.Equal(ring) {
		t.Fatal("patch ring mismatch")
	}
}

func TestDecodePatchErrors(t *testing.T) {
	ring := EncodeNameRing(NewNameRing())
	cases := []struct{ key string }{
		{"no-account-sep.Node01.Patch01"},
		{"alice|nomarker.Node01.Patch01"},
		{"alice|ns::/NameRing/"},
	}
	for _, c := range cases {
		if _, err := DecodePatch(c.key, ring); err == nil {
			t.Errorf("DecodePatch(%q) accepted", c.key)
		}
	}
	if _, err := DecodePatch(PatchKey("a", "n", 1, 1), []byte("junk")); err == nil {
		t.Error("DecodePatch accepted junk body")
	}
}

func TestKeySchemeDistinct(t *testing.T) {
	// The three key kinds for one namespace must never collide, nor may a
	// child named like the ring marker (names with '/' are invalid anyway).
	keys := []string{
		ChildKey("alice", "N1", "file"),
		RingKey("alice", "N1"),
		PatchKey("alice", "N1", 1, 1),
		RootKey("alice"),
		ChildKey("bob", "N1", "file"),
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("key collision: %q", k)
		}
		seen[k] = true
	}
}

func TestValidAccount(t *testing.T) {
	for _, ok := range []string{"alice", "user-1", "A_B9"} {
		if !ValidAccount(ok) {
			t.Errorf("ValidAccount(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "a|b", "a/b", "a b", "ü"} {
		if ValidAccount(bad) {
			t.Errorf("ValidAccount(%q) = true", bad)
		}
	}
}

func TestValidChildName(t *testing.T) {
	for _, ok := range []string{"file1", ".hidden", "na me", "::"} {
		if !ValidChildName(ok) {
			t.Errorf("ValidChildName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b"} {
		if ValidChildName(bad) {
			t.Errorf("ValidChildName(%q) = true", bad)
		}
	}
}

func BenchmarkEncodeNameRing1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	r := NewNameRing()
	for i := 0; i < 1000; i++ {
		r.Set(Tuple{Name: randName(rng), Time: int64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeNameRing(r)
	}
}

func BenchmarkDecodeNameRing1000(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	r := NewNameRing()
	for i := 0; i < 1000; i++ {
		r.Set(Tuple{Name: randName(rng), Time: int64(i)})
	}
	data := EncodeNameRing(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeNameRing(data); err != nil {
			b.Fatal(err)
		}
	}
}
