package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleWins(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want bool
	}{
		{Tuple{Name: "x", Time: 2}, Tuple{Name: "x", Time: 1}, true},
		{Tuple{Name: "x", Time: 1}, Tuple{Name: "x", Time: 2}, false},
		{Tuple{Name: "x", Time: 1, Deleted: true}, Tuple{Name: "x", Time: 1}, true},
		{Tuple{Name: "x", Time: 1}, Tuple{Name: "x", Time: 1, Deleted: true}, false},
		{Tuple{Name: "x", Time: 1, Dir: true}, Tuple{Name: "x", Time: 1}, true},
		{Tuple{Name: "x", Time: 1}, Tuple{Name: "x", Time: 1}, false},
	}
	for i, c := range cases {
		if got := c.a.Wins(c.b); got != c.want {
			t.Errorf("case %d: Wins = %v, want %v", i, got, c.want)
		}
	}
}

// Property: Wins is a strict total order on distinct tuples with the same
// name — exactly one of a.Wins(b), b.Wins(a) holds unless a == b.
func TestTupleWinsAntisymmetric(t *testing.T) {
	f := func(t1, t2 int64, d1, d2, dir1, dir2 bool, n1, n2 uint8) bool {
		nss := []string{"", "01.1.1", "02.1.1"}
		a := Tuple{Name: "n", Time: t1 % 100, Deleted: d1, Dir: dir1, NS: nss[int(n1)%3]}
		b := Tuple{Name: "n", Time: t2 % 100, Deleted: d2, Dir: dir2, NS: nss[int(n2)%3]}
		if a == b {
			return !a.Wins(b) && !b.Wins(a)
		}
		return a.Wins(b) != b.Wins(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetGetLive(t *testing.T) {
	r := NewNameRing()
	r.Set(Tuple{Name: "cat", Time: 1})
	r.Set(Tuple{Name: "bash", Time: 2})
	r.Set(Tuple{Name: "nc", Time: 3, Deleted: true})
	if r.Len() != 2 || r.TotalLen() != 3 {
		t.Fatalf("Len = %d, TotalLen = %d", r.Len(), r.TotalLen())
	}
	live := r.Live()
	if len(live) != 2 || live[0].Name != "bash" || live[1].Name != "cat" {
		t.Fatalf("Live = %+v", live)
	}
	if !r.Has("cat") || r.Has("nc") || r.Has("ghost") {
		t.Fatal("Has wrong")
	}
	if tp, ok := r.Get("nc"); !ok || !tp.Deleted {
		t.Fatalf("Get(nc) = %+v, %v", tp, ok)
	}
}

func TestUpdateRespectsTimestamps(t *testing.T) {
	r := NewNameRing()
	r.Set(Tuple{Name: "f", Time: 10})
	if r.Update(Tuple{Name: "f", Time: 5, Deleted: true}) {
		t.Fatal("stale update applied")
	}
	if !r.Has("f") {
		t.Fatal("stale tombstone deleted child")
	}
	if !r.Update(Tuple{Name: "f", Time: 15, Deleted: true}) {
		t.Fatal("fresh update rejected")
	}
	if r.Has("f") {
		t.Fatal("fresh tombstone ignored")
	}
}

func TestMergePaperSemantics(t *testing.T) {
	// §3.3.2: child in both -> larger timestamp overrides; child only in
	// patch -> inserted; no child is removed by a merge.
	a := NewNameRing()
	a.Set(Tuple{Name: "shared", Time: 10})
	a.Set(Tuple{Name: "only-a", Time: 5})
	b := NewNameRing()
	b.Set(Tuple{Name: "shared", Time: 20, Deleted: true})
	b.Set(Tuple{Name: "only-b", Time: 7})
	changed := a.Merge(b)
	if changed != 2 {
		t.Fatalf("Merge changed %d entries, want 2", changed)
	}
	if a.TotalLen() != 3 {
		t.Fatalf("TotalLen = %d, want 3", a.TotalLen())
	}
	if a.Has("shared") {
		t.Fatal("newer tombstone did not override")
	}
	if !a.Has("only-a") || !a.Has("only-b") {
		t.Fatal("merge dropped a child")
	}
}

func TestMergeNil(t *testing.T) {
	r := NewNameRing()
	if r.Merge(nil) != 0 {
		t.Fatal("Merge(nil) changed something")
	}
}

func TestCompactDropsOldTombstonesOnly(t *testing.T) {
	r := NewNameRing()
	r.Set(Tuple{Name: "old", Time: 5, Deleted: true})
	r.Set(Tuple{Name: "new", Time: 50, Deleted: true})
	r.Set(Tuple{Name: "live", Time: 5})
	if got := r.Compact(10); got != 1 {
		t.Fatalf("Compact dropped %d, want 1", got)
	}
	if _, ok := r.Get("old"); ok {
		t.Fatal("old tombstone survived")
	}
	if _, ok := r.Get("new"); !ok {
		t.Fatal("recent tombstone dropped")
	}
	if !r.Has("live") {
		t.Fatal("live entry dropped")
	}
}

func TestCloneIndependent(t *testing.T) {
	r := NewNameRing()
	r.Set(Tuple{Name: "a", Time: 1})
	c := r.Clone()
	c.Set(Tuple{Name: "b", Time: 2})
	if r.TotalLen() != 1 || c.TotalLen() != 2 {
		t.Fatalf("clone aliased: r=%d c=%d", r.TotalLen(), c.TotalLen())
	}
	if !r.Equal(r.Clone()) {
		t.Fatal("clone not Equal to source")
	}
}

func TestVersion(t *testing.T) {
	r := NewNameRing()
	if r.Version() != 0 {
		t.Fatal("empty ring has nonzero version")
	}
	r.Set(Tuple{Name: "a", Time: 3})
	r.Set(Tuple{Name: "b", Time: 9, Deleted: true})
	r.Set(Tuple{Name: "c", Time: 6})
	if got := r.Version(); got != 9 {
		t.Fatalf("Version = %d, want 9", got)
	}
}

// randomRing builds a ring from fuzz data over a small name alphabet so
// rings collide on children frequently.
func randomRing(rng *rand.Rand, n int) *NameRing {
	names := []string{"a", "b", "c", "d", "e"}
	nss := []string{"", "01.1.1", "02.2.2"}
	r := NewNameRing()
	for i := 0; i < n; i++ {
		r.Set(Tuple{
			Name:    names[rng.Intn(len(names))],
			Time:    int64(rng.Intn(20)),
			Deleted: rng.Intn(3) == 0,
			Dir:     rng.Intn(4) == 0,
			NS:      nss[rng.Intn(len(nss))],
		})
	}
	return r
}

// Properties of the merge algorithm (§3.3.2). These are what eventual
// consistency rests on: every node applying the same set of patches in
// any order and any grouping converges to the same NameRing.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b := randomRing(rng, 8), randomRing(rng, 8)
		if !Merged(a, b).Equal(Merged(b, a)) {
			t.Fatalf("merge not commutative:\na=%+v\nb=%+v", a.All(), b.All())
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		a, b, c := randomRing(rng, 6), randomRing(rng, 6), randomRing(rng, 6)
		left := Merged(Merged(a, b), c)
		right := Merged(a, Merged(b, c))
		if !left.Equal(right) {
			t.Fatalf("merge not associative:\na=%+v\nb=%+v\nc=%+v", a.All(), b.All(), c.All())
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		a := randomRing(rng, 8)
		if !Merged(a, a).Equal(a) {
			t.Fatalf("merge not idempotent: %+v", a.All())
		}
		b := a.Clone()
		if b.Merge(a) != 0 {
			t.Fatal("self-merge reported changes")
		}
	}
}

func TestMergeMonotoneVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		a, b := randomRing(rng, 8), randomRing(rng, 8)
		m := Merged(a, b)
		if m.Version() < a.Version() || m.Version() < b.Version() {
			t.Fatal("merge lowered version")
		}
	}
}

func BenchmarkMerge1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	big := NewNameRing()
	for i := 0; i < 1000; i++ {
		big.Set(Tuple{Name: randName(rng), Time: int64(i)})
	}
	patch := NewNameRing()
	for i := 0; i < 50; i++ {
		patch.Set(Tuple{Name: randName(rng), Time: int64(2000 + i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		big.Clone().Merge(patch)
	}
}

func benchRing(seed int64, n int) *NameRing {
	rng := rand.New(rand.NewSource(seed))
	r := NewNameRing()
	for i := 0; i < n; i++ {
		r.Set(Tuple{Name: randName(rng), Time: int64(i)})
	}
	return r
}

func BenchmarkMerged1000(b *testing.B) {
	x := benchRing(7, 1000)
	y := benchRing(8, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merged(x, y)
	}
}

func BenchmarkMergePatch(b *testing.B) {
	// The descriptor path: a small patch folded into a large local ring.
	big := benchRing(9, 10000)
	patch := benchRing(10, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		big.Merge(patch)
	}
}

func BenchmarkLive1000(b *testing.B) {
	r := benchRing(11, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Live()
	}
}

func randName(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 8)
	for i := range buf {
		buf[i] = letters[rng.Intn(len(letters))]
	}
	return string(buf)
}
