package core

import (
	"fmt"
	"strconv"
	"strings"
)

// The Formatter (§4.4) "stringifies" every data type into ASCII objects
// before it is put in the object storage cloud: files are stored as raw
// byte strings, directories as small ASCII records carrying their
// namespace, and NameRings (and patches, which share the NameRing format)
// as alphabetically sorted tuple lists packed one per line.

const (
	ringMagic = "H2NR/1"
	dirMagic  = "H2DIR/1"
)

// EncodeNameRing packs a NameRing into its ASCII object representation:
// the magic line followed by one "name<TAB>timestamp<TAB>flags<TAB>ns"
// line per tuple, alphabetically sorted by name. Names are Go-quoted so
// arbitrary child names survive the round trip; the namespace field is
// "-" for files.
func EncodeNameRing(r *NameRing) []byte {
	var b strings.Builder
	b.WriteString(ringMagic)
	b.WriteByte('\n')
	for _, t := range r.All() {
		flags := ""
		if t.Dir {
			flags += "d"
		}
		if t.Deleted {
			flags += "x"
		}
		if t.Chunked {
			flags += "c"
		}
		if flags == "" {
			flags = "-"
		}
		ns := t.NS
		if ns == "" {
			ns = "-"
		}
		fmt.Fprintf(&b, "%s\t%d\t%s\t%s\n", strconv.Quote(t.Name), t.Time, flags, ns)
	}
	return []byte(b.String())
}

// DecodeNameRing parses the output of EncodeNameRing.
func DecodeNameRing(data []byte) (*NameRing, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != ringMagic {
		return nil, fmt.Errorf("core: not a NameRing object (bad magic)")
	}
	r := NewNameRing()
	for i, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("core: NameRing line %d malformed: %q", i+2, line)
		}
		name, err := strconv.Unquote(fields[0])
		if err != nil {
			return nil, fmt.Errorf("core: NameRing line %d bad name: %w", i+2, err)
		}
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: NameRing line %d bad timestamp: %w", i+2, err)
		}
		t := Tuple{Name: name, Time: ts}
		for _, c := range fields[2] {
			switch c {
			case 'd':
				t.Dir = true
			case 'x':
				t.Deleted = true
			case 'c':
				t.Chunked = true
			case '-':
			default:
				return nil, fmt.Errorf("core: NameRing line %d unknown flag %q", i+2, c)
			}
		}
		if fields[3] != "-" {
			t.NS = fields[3]
		}
		r.Set(t)
	}
	return r, nil
}

// DirObject is the stringified directory record (§4.4): a directory is
// "converted to an ASCII string corresponding to its namespace".
type DirObject struct {
	NS      string // the directory's namespace UUID
	Name    string // the directory's base name
	Created int64  // creation UNIX timestamp in nanoseconds
}

// EncodeDir packs a directory record into its ASCII object form. It is
// on the per-operation hot path, so the buffer is pre-sized and built
// with append instead of fmt.
func EncodeDir(d DirObject) []byte {
	name := strconv.Quote(d.Name)
	buf := make([]byte, 0, len(dirMagic)+len(d.NS)+len(name)+40)
	buf = append(buf, dirMagic...)
	buf = append(buf, "\nns="...)
	buf = append(buf, d.NS...)
	buf = append(buf, "\nname="...)
	buf = append(buf, name...)
	buf = append(buf, "\ncreated="...)
	buf = strconv.AppendInt(buf, d.Created, 10)
	buf = append(buf, '\n')
	return buf
}

// DecodeDir parses the output of EncodeDir.
func DecodeDir(data []byte) (DirObject, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != dirMagic {
		return DirObject{}, fmt.Errorf("core: not a directory object (bad magic)")
	}
	var d DirObject
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return DirObject{}, fmt.Errorf("core: directory line malformed: %q", line)
		}
		switch key {
		case "ns":
			d.NS = val
		case "name":
			name, err := strconv.Unquote(val)
			if err != nil {
				return DirObject{}, fmt.Errorf("core: directory bad name: %w", err)
			}
			d.Name = name
		case "created":
			ts, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return DirObject{}, fmt.Errorf("core: directory bad created: %w", err)
			}
			d.Created = ts
		default:
			return DirObject{}, fmt.Errorf("core: directory unknown field %q", key)
		}
	}
	if d.NS == "" {
		return DirObject{}, fmt.Errorf("core: directory object missing namespace")
	}
	return d, nil
}

// IsDirObject reports whether object data looks like an encoded directory.
func IsDirObject(data []byte) bool {
	return strings.HasPrefix(string(data), dirMagic+"\n")
}
