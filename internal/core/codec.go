package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// The Formatter (§4.4) "stringifies" every data type into ASCII objects
// before it is put in the object storage cloud: files are stored as raw
// byte strings, directories as small ASCII records carrying their
// namespace, and NameRings (and patches, which share the NameRing format)
// as alphabetically sorted tuple lists packed one per line.
//
// The codecs below are on the per-operation hot path (every metadata op
// decodes a ring, mutates it, and re-encodes it), so they are written for
// low allocation: encoding sorts through a pooled scratch slice and
// appends into one pre-sized buffer; decoding makes exactly one copy of
// the input and hands out sub-strings of that copy, so the caller may
// reuse or mutate the input buffer freely after Decode returns.

const (
	ringMagic = "H2NR/1"
	dirMagic  = "H2DIR/1"
)

var dirMagicLine = []byte(dirMagic + "\n")

// tupleScratch pools the sort scratch used by EncodeNameRing. Pooling a
// *[]Tuple (not the slice header itself) keeps Put allocation-free.
var tupleScratch = sync.Pool{New: func() any { s := make([]Tuple, 0, 64); return &s }}

// EncodeNameRing packs a NameRing into its ASCII object representation:
// the magic line followed by one "name<TAB>timestamp<TAB>flags<TAB>ns"
// line per tuple, alphabetically sorted by name. Names are Go-quoted so
// arbitrary child names survive the round trip; the namespace field is
// "-" for files.
//
// The returned buffer is always freshly allocated — object stores are
// allowed to retain Put data, so encode output is never pooled.
func EncodeNameRing(r *NameRing) []byte {
	sp := tupleScratch.Get().(*[]Tuple)
	tuples := r.AppendAll((*sp)[:0])
	buf := encodeTuples(tuples)
	clear(tuples) // drop string references before pooling
	*sp = tuples[:0]
	tupleScratch.Put(sp)
	return buf
}

// EncodeNameRingExtent packs one sub-ring extent of a sharded directory:
// only the tuples whose ShardOf(name, shards) equals shard are emitted,
// in the same sorted NameRing object format (an extent is an ordinary
// NameRing object and round-trips through DecodeNameRing). Flushing a
// sharded ring calls this once per dirty extent, writing O(m/shards)
// bytes instead of the monolithic O(m).
func EncodeNameRingExtent(r *NameRing, shard, shards int) []byte {
	sp := tupleScratch.Get().(*[]Tuple)
	tuples := r.AppendExtent((*sp)[:0], shard, shards)
	buf := encodeTuples(tuples)
	clear(tuples)
	*sp = tuples[:0]
	tupleScratch.Put(sp)
	return buf
}

// encodeTuples writes the NameRing object form of an already-sorted tuple
// list into one freshly allocated, pre-sized buffer.
func encodeTuples(tuples []Tuple) []byte {
	// Pre-size for the common case of names without escapes; a name that
	// quotes longer than len+2 costs at most one regrow.
	size := len(ringMagic) + 1
	for i := range tuples {
		t := &tuples[i]
		ns := len(t.NS)
		if ns == 0 {
			ns = 1
		}
		size += len(t.Name) + 2 + 1 + 20 + 1 + 3 + 1 + ns + 1
	}
	buf := make([]byte, 0, size)
	buf = append(buf, ringMagic...)
	buf = append(buf, '\n')
	for i := range tuples {
		t := &tuples[i]
		buf = strconv.AppendQuote(buf, t.Name)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, t.Time, 10)
		buf = append(buf, '\t')
		var fl [3]byte
		n := 0
		if t.Dir {
			fl[n] = 'd'
			n++
		}
		if t.Deleted {
			fl[n] = 'x'
			n++
		}
		if t.Chunked {
			fl[n] = 'c'
			n++
		}
		if n == 0 {
			fl[n] = '-'
			n++
		}
		buf = append(buf, fl[:n]...)
		buf = append(buf, '\t')
		if t.NS == "" {
			buf = append(buf, '-')
		} else {
			buf = append(buf, t.NS...)
		}
		buf = append(buf, '\n')
	}
	return buf
}

// DecodeNameRing parses the output of EncodeNameRing.
//
// Alias safety: the input is copied once up front and every string in the
// returned ring is a sub-string of that copy, so mutating data after the
// call cannot corrupt the result.
func DecodeNameRing(data []byte) (*NameRing, error) {
	s := string(data) // the single defensive copy; everything below sub-slices it
	var rest string
	if nl := strings.IndexByte(s, '\n'); nl >= 0 {
		if s[:nl] != ringMagic {
			return nil, fmt.Errorf("core: not a NameRing object (bad magic)")
		}
		rest = s[nl+1:]
	} else {
		if s != ringMagic {
			return nil, fmt.Errorf("core: not a NameRing object (bad magic)")
		}
		rest = ""
	}
	r := newNameRingCap(strings.Count(rest, "\n") + 1)
	for i := 0; rest != ""; i++ {
		var line string
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			line, rest = rest[:nl], rest[nl+1:]
		} else {
			line, rest = rest, ""
		}
		if line == "" {
			continue
		}
		// Split into exactly 4 TAB-separated fields without allocating.
		tab1 := strings.IndexByte(line, '\t')
		if tab1 < 0 {
			return nil, fmt.Errorf("core: NameRing line %d malformed: %q", i+2, line)
		}
		tab2 := strings.IndexByte(line[tab1+1:], '\t')
		if tab2 < 0 {
			return nil, fmt.Errorf("core: NameRing line %d malformed: %q", i+2, line)
		}
		tab2 += tab1 + 1
		tab3 := strings.IndexByte(line[tab2+1:], '\t')
		if tab3 < 0 {
			return nil, fmt.Errorf("core: NameRing line %d malformed: %q", i+2, line)
		}
		tab3 += tab2 + 1
		if strings.IndexByte(line[tab3+1:], '\t') >= 0 {
			return nil, fmt.Errorf("core: NameRing line %d malformed: %q", i+2, line)
		}
		name, err := strconv.Unquote(line[:tab1])
		if err != nil {
			return nil, fmt.Errorf("core: NameRing line %d bad name: %w", i+2, err)
		}
		ts, err := strconv.ParseInt(line[tab1+1:tab2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: NameRing line %d bad timestamp: %w", i+2, err)
		}
		t := Tuple{Name: name, Time: ts}
		for _, c := range line[tab2+1 : tab3] {
			switch c {
			case 'd':
				t.Dir = true
			case 'x':
				t.Deleted = true
			case 'c':
				t.Chunked = true
			case '-':
			default:
				return nil, fmt.Errorf("core: NameRing line %d unknown flag %q", i+2, c)
			}
		}
		if ns := line[tab3+1:]; ns != "-" {
			t.NS = ns
		}
		r.Set(t)
	}
	return r, nil
}

// DirObject is the stringified directory record (§4.4): a directory is
// "converted to an ASCII string corresponding to its namespace".
type DirObject struct {
	NS      string // the directory's namespace UUID
	Name    string // the directory's base name
	Created int64  // creation UNIX timestamp in nanoseconds
}

// EncodeDir packs a directory record into its ASCII object form. It is
// on the per-operation hot path, so the buffer is pre-sized and built
// with append instead of fmt.
func EncodeDir(d DirObject) []byte {
	buf := make([]byte, 0, len(dirMagic)+len(d.NS)+len(d.Name)+2+40)
	buf = append(buf, dirMagic...)
	buf = append(buf, "\nns="...)
	buf = append(buf, d.NS...)
	buf = append(buf, "\nname="...)
	buf = strconv.AppendQuote(buf, d.Name)
	buf = append(buf, "\ncreated="...)
	buf = strconv.AppendInt(buf, d.Created, 10)
	buf = append(buf, '\n')
	return buf
}

// DecodeDir parses the output of EncodeDir. Like DecodeNameRing it copies
// the input once and returns sub-strings of that copy (alias-safe).
func DecodeDir(data []byte) (DirObject, error) {
	s := string(data)
	var rest string
	if nl := strings.IndexByte(s, '\n'); nl >= 0 {
		if s[:nl] != dirMagic {
			return DirObject{}, fmt.Errorf("core: not a directory object (bad magic)")
		}
		rest = s[nl+1:]
	} else {
		if s != dirMagic {
			return DirObject{}, fmt.Errorf("core: not a directory object (bad magic)")
		}
		rest = ""
	}
	var d DirObject
	for rest != "" {
		var line string
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			line, rest = rest[:nl], rest[nl+1:]
		} else {
			line, rest = rest, ""
		}
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return DirObject{}, fmt.Errorf("core: directory line malformed: %q", line)
		}
		switch key {
		case "ns":
			d.NS = val
		case "name":
			name, err := strconv.Unquote(val)
			if err != nil {
				return DirObject{}, fmt.Errorf("core: directory bad name: %w", err)
			}
			d.Name = name
		case "created":
			ts, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return DirObject{}, fmt.Errorf("core: directory bad created: %w", err)
			}
			d.Created = ts
		default:
			return DirObject{}, fmt.Errorf("core: directory unknown field %q", key)
		}
	}
	if d.NS == "" {
		return DirObject{}, fmt.Errorf("core: directory object missing namespace")
	}
	return d, nil
}

// IsDirObject reports whether object data looks like an encoded directory.
func IsDirObject(data []byte) bool {
	return bytes.HasPrefix(data, dirMagicLine)
}
