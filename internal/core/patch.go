package core

import (
	"fmt"
	"strings"
)

// Patch is the unit of NameRing maintenance (§3.3.2 phase 1): "a log file
// recording the update information" submitted for every filesystem
// operation that changes a NameRing. A patch "is in the same format as a
// NameRing", so its body is simply a NameRing holding the changed tuples
// (insertions, overrides, or Deleted-tagged tombstones).
type Patch struct {
	Account string    // owning account
	NS      string    // namespace whose NameRing this patch updates
	Node    int       // middleware node that submitted the patch
	Seq     int       // incremental patch number on that node
	Ring    *NameRing // the update content
}

// Key returns the patch's object key (e.g.
// "alice|N97::/NameRing/.Node01.Patch000003").
func (p *Patch) Key() string {
	return PatchKey(p.Account, p.NS, p.Node, p.Seq)
}

// Encode stringifies the patch body; it shares the NameRing object format.
func (p *Patch) Encode() []byte {
	return EncodeNameRing(p.Ring)
}

// DecodePatch reconstructs a patch from its object key and body.
func DecodePatch(key string, data []byte) (*Patch, error) {
	account, rest, ok := strings.Cut(key, "|")
	if !ok {
		return nil, fmt.Errorf("core: patch key %q missing account", key)
	}
	marker := "::" + ringSuffix
	i := strings.Index(rest, marker)
	if i < 0 {
		return nil, fmt.Errorf("core: patch key %q missing NameRing marker", key)
	}
	ns := rest[:i]
	node, seq, err := ParsePatchKey(key)
	if err != nil {
		return nil, err
	}
	ring, err := DecodeNameRing(data)
	if err != nil {
		return nil, fmt.Errorf("core: patch %q body: %w", key, err)
	}
	return &Patch{Account: account, NS: ns, Node: node, Seq: seq, Ring: ring}, nil
}
