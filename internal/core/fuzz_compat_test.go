package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// This file pins the PR-8 zero-copy decoders to the seed decoders they
// replaced. seedDecodeNameRing and seedDecodeDir are verbatim copies of
// the pre-optimization implementations (strings.Split based, one
// allocation per field); the fuzzers assert the rewritten decoders are
// observationally identical — same accept/reject decision, same error
// text, same decoded value — and additionally alias-safe: the rewritten
// decoders copy the input once, so scribbling over the input buffer
// after Decode returns must not corrupt the result.

// seedDecodeNameRing is the pre-PR-8 DecodeNameRing, kept as the
// reference semantics for the Formatter.
func seedDecodeNameRing(data []byte) (*NameRing, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != ringMagic {
		return nil, fmt.Errorf("core: not a NameRing object (bad magic)")
	}
	r := NewNameRing()
	for i, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("core: NameRing line %d malformed: %q", i+2, line)
		}
		name, err := strconv.Unquote(fields[0])
		if err != nil {
			return nil, fmt.Errorf("core: NameRing line %d bad name: %w", i+2, err)
		}
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: NameRing line %d bad timestamp: %w", i+2, err)
		}
		t := Tuple{Name: name, Time: ts}
		for _, c := range fields[2] {
			switch c {
			case 'd':
				t.Dir = true
			case 'x':
				t.Deleted = true
			case 'c':
				t.Chunked = true
			case '-':
			default:
				return nil, fmt.Errorf("core: NameRing line %d unknown flag %q", i+2, c)
			}
		}
		if fields[3] != "-" {
			t.NS = fields[3]
		}
		r.Set(t)
	}
	return r, nil
}

// seedDecodeDir is the pre-PR-8 DecodeDir, kept as the reference
// semantics for directory objects.
func seedDecodeDir(data []byte) (DirObject, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != dirMagic {
		return DirObject{}, fmt.Errorf("core: not a directory object (bad magic)")
	}
	var d DirObject
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return DirObject{}, fmt.Errorf("core: directory line malformed: %q", line)
		}
		switch key {
		case "ns":
			d.NS = val
		case "name":
			name, err := strconv.Unquote(val)
			if err != nil {
				return DirObject{}, fmt.Errorf("core: directory bad name: %w", err)
			}
			d.Name = name
		case "created":
			ts, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return DirObject{}, fmt.Errorf("core: directory bad created: %w", err)
			}
			d.Created = ts
		default:
			return DirObject{}, fmt.Errorf("core: directory unknown field %q", key)
		}
	}
	if d.NS == "" {
		return DirObject{}, fmt.Errorf("core: directory object missing namespace")
	}
	return d, nil
}

// FuzzNameRingDecodeCompat: the zero-copy DecodeNameRing must be
// byte-for-byte equivalent to the seed decoder on every input, and the
// decoded ring must survive the caller mutating the input buffer.
func FuzzNameRingDecodeCompat(f *testing.F) {
	r := NewNameRing()
	r.Set(Tuple{Name: "cat", Time: 100})
	r.Set(Tuple{Name: "dir", Time: 200, Dir: true, NS: "01.02.3"})
	r.Set(Tuple{Name: "gone", Time: 300, Deleted: true})
	r.Set(Tuple{Name: "tab\tquote\"nl\n", Time: 400, Chunked: true})
	r.Set(Tuple{Name: "unié", Time: 500})
	f.Add(EncodeNameRing(r))
	f.Add(EncodeNameRing(NewNameRing()))
	f.Add([]byte(ringMagic))
	f.Add([]byte("H2NR/1\n\"x\"\t1\t-\t-\n"))
	f.Add([]byte("H2NR/1\n\n\"x\"\t1\t-\t-"))
	f.Add([]byte("H2NR/1\n\"x\"\t1\t-\t-\textra\n"))
	f.Add([]byte("H2NR/1\n\"x\"\t1\tz\t-\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := bytes.Clone(data)
		got, gotErr := DecodeNameRing(data)
		// Alias safety: the result may not reference data after return.
		for i := range data {
			data[i] = 0xAA
		}
		want, wantErr := seedDecodeNameRing(orig)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept/reject diverged: new=%v seed=%v\ninput: %q", gotErr, wantErr, orig)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text diverged:\nnew:  %v\nseed: %v\ninput: %q", gotErr, wantErr, orig)
			}
			return
		}
		if !got.Equal(want) {
			t.Fatalf("decoded rings diverged on %q", orig)
		}
		if ne, se := EncodeNameRing(got), EncodeNameRing(want); !bytes.Equal(ne, se) {
			t.Fatalf("re-encodings diverged:\nnew:  %q\nseed: %q", ne, se)
		}
	})
}

// FuzzDirDecodeCompat: same contract for directory objects.
func FuzzDirDecodeCompat(f *testing.F) {
	f.Add(EncodeDir(DirObject{NS: "06.01.1469346604539", Name: "home", Created: 1}))
	f.Add(EncodeDir(DirObject{NS: "1.1.1", Name: "q\"t\tn\n", Created: -7}))
	f.Add([]byte(dirMagic))
	f.Add([]byte("H2DIR/1\nns=1.1.1\n"))
	f.Add([]byte("H2DIR/1\nns=1.1.1\nname=\"x\"\ncreated=5\n"))
	f.Add([]byte("H2DIR/1\nbogus\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := bytes.Clone(data)
		got, gotErr := DecodeDir(data)
		for i := range data {
			data[i] = 0xAA
		}
		want, wantErr := seedDecodeDir(orig)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept/reject diverged: new=%v seed=%v\ninput: %q", gotErr, wantErr, orig)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text diverged:\nnew:  %v\nseed: %v\ninput: %q", gotErr, wantErr, orig)
			}
			return
		}
		if got != want {
			t.Fatalf("decoded objects diverged: new=%+v seed=%+v\ninput: %q", got, want, orig)
		}
	})
}
