// Package core implements the Hierarchical Hash (H2) data structure of the
// paper's §3: NameRings, their tuples, the patch format, the NameRing
// merging algorithm, and the Formatter that stringifies them into objects.
//
// A NameRing is the per-directory structure that "goes through all the
// direct children of the directory by recording their names" (§3.1) as a
// list of (child, timestamp) tuples. Deletion is "fake" (§3.3.3): a
// Deleted tag is appended and the tuple overrides its predecessor by
// timestamp; tombstones are really removed only when the NameRing is in
// use. Merging is last-writer-wins per child, which makes a NameRing a
// convergent replicated structure: merge is commutative, associative and
// idempotent — the properties the asynchronous maintenance protocol
// (§3.3.2) relies on for eventual consistency.
package core

// Tuple is one NameRing entry: the (child_i, t_i) pair of §3.1, extended
// with the Deleted tag of §3.3.2, a directory marker, and — for directory
// children — the child's namespace UUID. Carrying the namespace in the
// tuple is what lets H2 "use the name of an L1 directory to locate the
// NameRing of the L2 directory" (§3.2): each level's NameRing hands the
// walker the namespace it needs to hash for the next level.
type Tuple struct {
	Name    string // child file or directory name (one path component)
	Time    int64  // creation/deletion UNIX timestamp in nanoseconds
	Deleted bool   // fake-deletion tombstone
	Dir     bool   // child is a directory
	Chunked bool   // child is a chunked (large object) file with segments
	NS      string // namespace UUID of the child directory; empty for files
}

// Wins reports whether t overrides o when both describe the same child in
// a merge: "the one that has a larger timestamp will override the other"
// (§3.3.2). Ties are broken deterministically — tombstone first, then the
// directory bit, then the namespace string — so that merging stays
// commutative under equal timestamps.
func (t Tuple) Wins(o Tuple) bool {
	if t.Time != o.Time {
		return t.Time > o.Time
	}
	if t.Deleted != o.Deleted {
		return t.Deleted
	}
	if t.Dir != o.Dir {
		return t.Dir
	}
	if t.Chunked != o.Chunked {
		return t.Chunked
	}
	if t.NS != o.NS {
		return t.NS > o.NS
	}
	return false
}
