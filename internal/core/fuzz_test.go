package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeNameRing: decoding must never panic, and anything that
// decodes must re-encode/decode to the same ring (the Formatter is a
// bijection on valid objects).
func FuzzDecodeNameRing(f *testing.F) {
	r := NewNameRing()
	r.Set(Tuple{Name: "cat", Time: 100})
	r.Set(Tuple{Name: "dir", Time: 200, Dir: true, NS: "01.02.3"})
	r.Set(Tuple{Name: "gone", Time: 300, Deleted: true})
	f.Add(EncodeNameRing(r))
	f.Add(EncodeNameRing(NewNameRing()))
	f.Add([]byte("H2NR/1\n\"x\"\t1\t-\t-\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ring, err := DecodeNameRing(data)
		if err != nil {
			return
		}
		re := EncodeNameRing(ring)
		ring2, err := DecodeNameRing(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded: %q", err, re)
		}
		if !ring2.Equal(ring) {
			t.Fatalf("re-decode not equal")
		}
		if !bytes.Equal(EncodeNameRing(ring2), re) {
			t.Fatalf("encoding not canonical")
		}
	})
}

// FuzzDecodeDir: directory-object decoding must never panic and valid
// objects must round-trip.
func FuzzDecodeDir(f *testing.F) {
	f.Add(EncodeDir(DirObject{NS: "06.01.1469346604539", Name: "home", Created: 1}))
	f.Add([]byte("H2DIR/1\nns=1.1.1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDir(data)
		if err != nil {
			return
		}
		d2, err := DecodeDir(EncodeDir(d))
		if err != nil || d2 != d {
			t.Fatalf("round trip: %+v vs %+v (%v)", d2, d, err)
		}
	})
}

// FuzzParsePatchKey: key parsing must never panic, and parsed components
// must rebuild a key that parses to the same components.
func FuzzParsePatchKey(f *testing.F) {
	f.Add(PatchKey("alice", "N97", 1, 3))
	f.Add("junk")
	f.Add("a|n::/NameRing/.Node-1.Patch-2")
	f.Fuzz(func(t *testing.T, key string) {
		node, seq, err := ParsePatchKey(key)
		if err != nil {
			return
		}
		k2 := PatchKey("acct", "ns", node, seq)
		n2, s2, err := ParsePatchKey(k2)
		if err != nil || n2 != node || s2 != seq {
			t.Fatalf("rebuild mismatch: %d/%d vs %d/%d (%v)", n2, s2, node, seq, err)
		}
	})
}
