package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeNameRing: decoding must never panic, and anything that
// decodes must re-encode/decode to the same ring (the Formatter is a
// bijection on valid objects).
func FuzzDecodeNameRing(f *testing.F) {
	r := NewNameRing()
	r.Set(Tuple{Name: "cat", Time: 100})
	r.Set(Tuple{Name: "dir", Time: 200, Dir: true, NS: "01.02.3"})
	r.Set(Tuple{Name: "gone", Time: 300, Deleted: true})
	f.Add(EncodeNameRing(r))
	f.Add(EncodeNameRing(NewNameRing()))
	f.Add([]byte("H2NR/1\n\"x\"\t1\t-\t-\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ring, err := DecodeNameRing(data)
		if err != nil {
			return
		}
		re := EncodeNameRing(ring)
		ring2, err := DecodeNameRing(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded: %q", err, re)
		}
		if !ring2.Equal(ring) {
			t.Fatalf("re-decode not equal")
		}
		if !bytes.Equal(EncodeNameRing(ring2), re) {
			t.Fatalf("encoding not canonical")
		}
	})
}

// FuzzDecodeDir: directory-object decoding must never panic and valid
// objects must round-trip.
func FuzzDecodeDir(f *testing.F) {
	f.Add(EncodeDir(DirObject{NS: "06.01.1469346604539", Name: "home", Created: 1}))
	f.Add([]byte("H2DIR/1\nns=1.1.1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDir(data)
		if err != nil {
			return
		}
		d2, err := DecodeDir(EncodeDir(d))
		if err != nil || d2 != d {
			t.Fatalf("round trip: %+v vs %+v (%v)", d2, d, err)
		}
	})
}

// FuzzDecodeShardManifest: manifest decoding must never panic, anything
// that decodes must round-trip canonically, and nothing may decode as
// both a manifest and a NameRing (the RingKey dispatch relies on the
// magics being disjoint).
func FuzzDecodeShardManifest(f *testing.F) {
	f.Add(EncodeShardManifest(ShardManifest{Shards: 16, Gen: 3}))
	f.Add(EncodeShardManifest(ShardManifest{Shards: 2, Gen: 0}))
	f.Add([]byte("H2DRX/1\nshards=512\ngen=99\n"))
	f.Add([]byte("H2NR/1\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShardManifest(data)
		if err != nil {
			return
		}
		re := EncodeShardManifest(m)
		m2, err := DecodeShardManifest(re)
		if err != nil || m2 != m {
			t.Fatalf("round trip: %+v vs %+v (%v)", m2, m, err)
		}
		if _, err := DecodeNameRing(data); err == nil {
			t.Fatalf("object decodes as both manifest and ring: %q", data)
		}
	})
}

// FuzzParseExtentKey: extent-key parsing must never panic, and parsed
// components must rebuild a key that parses identically.
func FuzzParseExtentKey(f *testing.F) {
	f.Add(ExtentKey("alice", "N97", 7, 16))
	f.Add("junk")
	f.Add("a|n::/NameRing/.Extent-1-16")
	f.Fuzz(func(t *testing.T, key string) {
		account, ns, shard, shards, err := ParseExtentKey(key)
		if err != nil {
			return
		}
		k2 := ExtentKey(account, ns, shard, shards)
		a2, n2, s2, c2, err := ParseExtentKey(k2)
		if err != nil || a2 != account || n2 != ns || s2 != shard || c2 != shards {
			t.Fatalf("rebuild mismatch: %q %q %d/%d vs %q %q %d/%d (%v)",
				a2, n2, s2, c2, account, ns, shard, shards, err)
		}
	})
}

// FuzzParsePatchKey: key parsing must never panic, and parsed components
// must rebuild a key that parses to the same components.
func FuzzParsePatchKey(f *testing.F) {
	f.Add(PatchKey("alice", "N97", 1, 3))
	f.Add("junk")
	f.Add("a|n::/NameRing/.Node-1.Patch-2")
	f.Fuzz(func(t *testing.T, key string) {
		node, seq, err := ParsePatchKey(key)
		if err != nil {
			return
		}
		k2 := PatchKey("acct", "ns", node, seq)
		n2, s2, err := ParsePatchKey(k2)
		if err != nil || n2 != node || s2 != seq {
			t.Fatalf("rebuild mismatch: %d/%d vs %d/%d (%v)", n2, s2, node, seq, err)
		}
	})
}
