package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Sharded directory rings. A giant directory's NameRing is split into
// hash-partitioned sub-ring extents once its live-tuple count crosses the
// deployment's DirShardThreshold: the object at the directory's RingKey
// becomes a small manifest (the H2DRX codec below) recording how many
// extents exist, and each extent — an ordinary NameRing object holding the
// tuples whose child-name hash routes to it — lives at a derived key next
// to the patch chain. Per-patch write amplification drops from O(m) to
// O(m/shards) because a flush rewrites only the extents holding changed
// tuples, while readers fan out over all extents in one batched window.
//
// Routing is by FNV-1a over the child name, so a tuple's extent is a pure
// function of (name, shard count): every node, the scrubber, and the
// inspector agree on placement without coordination. The hash is part of
// the on-disk format — see TestShardOfPinned — and must never change.

// manifestMagic is the first line of a shard-manifest object. The object
// lives at the directory's RingKey, so decoders distinguish a sharded
// directory from a monolithic one by this magic alone.
const manifestMagic = "H2DRX/1"

// MaxDirShards bounds the extent count a manifest may record; the
// three-digit extent key format and the batched fan-out window both rely
// on it.
const MaxDirShards = 512

// ShardManifest is the parent record of a sharded directory ring: the
// extent count and the split generation. Extent keys are derived, not
// listed — ExtentKey(account, ns, i, Shards) for i in [0, Shards) — so the
// manifest stays O(1) bytes no matter how big the directory grows.
type ShardManifest struct {
	Shards int   // number of sub-ring extents, in [2, MaxDirShards]
	Gen    int64 // split generation, bumped on every shards-count transition
}

// EncodeShardManifest packs a manifest into its ASCII object form.
func EncodeShardManifest(m ShardManifest) []byte {
	buf := make([]byte, 0, len(manifestMagic)+40)
	buf = append(buf, manifestMagic...)
	buf = append(buf, "\nshards="...)
	buf = strconv.AppendInt(buf, int64(m.Shards), 10)
	buf = append(buf, "\ngen="...)
	buf = strconv.AppendInt(buf, m.Gen, 10)
	buf = append(buf, '\n')
	return buf
}

// DecodeShardManifest parses the output of EncodeShardManifest. It works
// on the raw byte slice — no string conversion, no allocation on the
// success path — because every ring read of a sharded directory passes
// through here (the decode is on the alloccheck hot set).
func DecodeShardManifest(data []byte) (ShardManifest, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || string(data[:nl]) != manifestMagic {
		return ShardManifest{}, fmt.Errorf("core: not a shard manifest (bad magic)")
	}
	rest := data[nl+1:]
	var m ShardManifest
	for len(rest) > 0 {
		var line []byte
		if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
			line, rest = rest[:nl], rest[nl+1:]
		} else {
			line, rest = rest, nil
		}
		if len(line) == 0 {
			continue
		}
		eq := bytes.IndexByte(line, '=')
		if eq < 0 {
			return ShardManifest{}, fmt.Errorf("core: shard manifest line malformed: %q", line)
		}
		key, val := line[:eq], line[eq+1:]
		switch {
		case string(key) == "shards":
			n, ok := parseManifestInt(val)
			if !ok {
				return ShardManifest{}, fmt.Errorf("core: shard manifest bad shards %q", val)
			}
			m.Shards = int(n)
		case string(key) == "gen":
			g, ok := parseManifestInt(val)
			if !ok {
				return ShardManifest{}, fmt.Errorf("core: shard manifest bad gen %q", val)
			}
			m.Gen = g
		default:
			return ShardManifest{}, fmt.Errorf("core: shard manifest unknown field %q", key)
		}
	}
	if m.Shards < 2 || m.Shards > MaxDirShards {
		return ShardManifest{}, fmt.Errorf("core: shard manifest shards %d out of range [2, %d]", m.Shards, MaxDirShards)
	}
	return m, nil
}

// parseManifestInt parses a canonical non-negative decimal — exactly what
// EncodeShardManifest emits. Signs, blanks, and overflow-length runs are
// rejected, so gen can never decode negative.
func parseManifestInt(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// IsShardManifest reports whether object data looks like an encoded shard
// manifest — the cheap dispatch every RingKey reader performs before
// choosing between DecodeNameRing and DecodeShardManifest.
func IsShardManifest(data []byte) bool {
	return len(data) > len(manifestMagic) &&
		data[len(manifestMagic)] == '\n' &&
		string(data[:len(manifestMagic)]) == manifestMagic
}

// ShardOf routes a child name to its extent: FNV-1a over the name, modulo
// the shard count. shards <= 1 always routes to 0 (the monolithic case).
// The function is pinned by TestShardOfPinned: changing it would strand
// every tuple already stored in a sharded directory in the wrong extent.
func ShardOf(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// extentMarker is the key fragment every extent key contains, directly
// after the ring suffix.
const extentMarker = ringSuffix + ".Extent"

// ExtentKey returns the object key of one sub-ring extent. The shard
// count is part of the key, so a re-split to a different count writes to
// fresh keys and the flip from old to new extents stays atomic at the
// manifest object (e.g. "alice|N97::/NameRing/.Extent007-016" is extent 7
// of 16).
func ExtentKey(account, ns string, shard, shards int) string {
	buf := make([]byte, 0, len(account)+len(ns)+len(extentMarker)+2+8)
	buf = append(buf, account...)
	buf = append(buf, '|')
	buf = append(buf, ns...)
	buf = append(buf, "::"...)
	buf = append(buf, extentMarker...)
	buf = appendPadded3(buf, shard)
	buf = append(buf, '-')
	buf = appendPadded3(buf, shards)
	return string(buf)
}

// appendPadded3 appends n zero-padded to at least three digits.
func appendPadded3(buf []byte, n int) []byte {
	if n < 10 {
		buf = append(buf, '0', '0')
	} else if n < 100 {
		buf = append(buf, '0')
	}
	return strconv.AppendInt(buf, int64(n), 10)
}

// IsExtentKey reports whether key names a sub-ring extent object.
func IsExtentKey(key string) bool {
	return strings.Contains(key, "::"+extentMarker)
}

// ParseExtentKey extracts the account, namespace, shard index and shard
// count from an extent key.
func ParseExtentKey(key string) (account, ns string, shard, shards int, err error) {
	account, rest, ok := strings.Cut(key, "|")
	if !ok {
		return "", "", 0, 0, fmt.Errorf("core: %q is not an extent key", key)
	}
	ns, rest, ok = strings.Cut(rest, "::"+extentMarker)
	if !ok || ns == "" {
		return "", "", 0, 0, fmt.Errorf("core: %q is not an extent key", key)
	}
	shardStr, shardsStr, ok := strings.Cut(rest, "-")
	if !ok {
		return "", "", 0, 0, fmt.Errorf("core: %q is not an extent key", key)
	}
	shard, err = strconv.Atoi(shardStr)
	if err != nil {
		return "", "", 0, 0, fmt.Errorf("core: bad shard in extent key %q: %w", key, err)
	}
	shards, err = strconv.Atoi(shardsStr)
	if err != nil {
		return "", "", 0, 0, fmt.Errorf("core: bad shard count in extent key %q: %w", key, err)
	}
	if shard < 0 || shards < 2 || shard >= shards {
		return "", "", 0, 0, fmt.Errorf("core: extent key %q shard %d/%d out of range", key, shard, shards)
	}
	return account, ns, shard, shards, nil
}

// ExtentKeys returns the full derived key set of a sharded directory —
// what a reader fans a batched MultiGet over, and what GC and the
// scrubber claim when the directory is reclaimed.
func ExtentKeys(account, ns string, shards int) []string {
	keys := make([]string, shards)
	for i := 0; i < shards; i++ {
		keys[i] = ExtentKey(account, ns, i, shards)
	}
	return keys
}

// MergedExtents folds a sharded directory's decoded extents into one
// ring. Extents partition the name space, so the merge never sees the
// same child twice; nil slots (a missing or torn extent the caller chose
// to tolerate) are skipped.
func MergedExtents(extents []*NameRing) *NameRing {
	n := 0
	for _, e := range extents {
		if e != nil {
			n += e.TotalLen()
		}
	}
	out := newNameRingCap(n)
	for _, e := range extents {
		out.Merge(e)
	}
	return out
}
