package core

import (
	"reflect"
	"testing"
)

func TestGCEntryRoundTrip(t *testing.T) {
	cases := []GCEntry{
		{Account: "alice", NS: "N05", ParentNS: "N01", Name: "videos", Enqueued: 42},
		{Account: "bob", NS: "N07", ParentNS: "N02", Name: "weird\tname\n=x", Enqueued: -1},
		{Account: "carol", NS: "N09", Root: true, Enqueued: 1700000000000000000},
	}
	for _, want := range cases {
		got, err := DecodeGCEntry(EncodeGCEntry(want))
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestGCEntryDecodeRejectsGarbage(t *testing.T) {
	for _, data := range []string{"", "H2DIR/1\nns=x\n", "H2GCQ/1\nnonsense\n", "H2GCQ/1\naccount=a\n"} {
		if _, err := DecodeGCEntry([]byte(data)); err == nil {
			t.Fatalf("decode %q: expected error", data)
		}
	}
}

func TestGCEntryEntryKey(t *testing.T) {
	e := GCEntry{Account: "alice", NS: "N05", ParentNS: "N01", Name: "videos"}
	if got, want := e.EntryKey(), ChildKey("alice", "N01", "videos"); got != want {
		t.Fatalf("EntryKey = %q, want %q", got, want)
	}
	root := GCEntry{Account: "alice", NS: "N01", Root: true}
	if got := root.EntryKey(); got != "" {
		t.Fatalf("root EntryKey = %q, want empty", got)
	}
}

func TestGCQueueKeyRoundTrip(t *testing.T) {
	key := GCQueueKey("alice", 3, 17)
	if !IsGCQueueKey(key) {
		t.Fatalf("IsGCQueueKey(%q) = false", key)
	}
	account, node, seq, err := ParseGCQueueKey(key)
	if err != nil {
		t.Fatalf("parse %q: %v", key, err)
	}
	if account != "alice" || node != 3 || seq != 17 {
		t.Fatalf("parse %q = (%q, %d, %d)", key, account, node, seq)
	}
	if IsGCQueueKey(ChildKey("alice", "N01", "file")) {
		t.Fatal("child key misdetected as queue key")
	}
	if _, _, _, err := ParseGCQueueKey("alice|N01::file"); err == nil {
		t.Fatal("expected parse error for non-queue key")
	}
}

func TestGCIndexKeyOutsideAccountKeyspace(t *testing.T) {
	key := GCIndexKey(7)
	if !IsGCIndexKey(key) {
		t.Fatalf("IsGCIndexKey(%q) = false", key)
	}
	// The '#' prefix can never be an account name, so index objects can
	// never collide with user data.
	account, _, _ := splitAccount(key)
	if ValidAccount(account) {
		t.Fatalf("index key account part %q must be invalid as an account", account)
	}
}

// splitAccount mirrors how scrubbing code extracts the account prefix.
func splitAccount(key string) (string, string, bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}

func TestGCIndexRoundTripSortedAndDeterministic(t *testing.T) {
	in := []GCIndexEntry{
		{Account: "zed", Cursor: 4, Head: 9},
		{Account: "alice", Cursor: 1, Head: 1},
	}
	data := EncodeGCIndex(in)
	if string(data) != string(EncodeGCIndex([]GCIndexEntry{in[1], in[0]})) {
		t.Fatal("encoding must not depend on input order")
	}
	got, err := DecodeGCIndex(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := []GCIndexEntry{
		{Account: "alice", Cursor: 1, Head: 1},
		{Account: "zed", Cursor: 4, Head: 9},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	if _, err := DecodeGCIndex([]byte("H2NR/1\n")); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if _, err := DecodeGCIndex([]byte("H2GCX/1\nalice\t1\n")); err == nil {
		t.Fatal("expected malformed-line error")
	}
}
