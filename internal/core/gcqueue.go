package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Durable garbage-collection queue records. RMDIR (and account deletion)
// is fake deletion (§3.3.3): one tombstone makes a whole subtree
// unreachable at O(1) NameRing cost, and the objects underneath are
// reclaimed out-of-band. The queue makes that reclamation crash-safe:
// before the tombstone is submitted, a GCEntry — the intent to reclaim
// namespace NS — is written as an ordinary object on the same consistent
// hashing ring, and a per-node GCIndex object records the live sequence
// span so a restarted node can find every pending intent without a
// listing primitive. Entries are deleted only after the subtree is fully
// reclaimed, so replay after a crash re-walks already-emptied namespaces
// (every delete tolerates "already gone") instead of losing work.

const (
	gcEntryMagic = "H2GCQ/1"
	gcIndexMagic = "H2GCX/1"
	gcQueueInfix = "|/gcq/Node"
	// gcIndexPrefix starts with '#', which ValidAccount rejects, so index
	// keys can never collide with any account's keyspace.
	gcIndexPrefix = "#gc|Node"
)

// GCEntry is one durable reclamation intent: namespace NS of Account is
// (about to be) unreachable and its subtree must be reclaimed. For a
// directory removal, ParentNS/Name identify the tombstoned tuple in the
// parent's NameRing — the drain validates the intent against that tuple,
// so an intent whose RMDIR was never acknowledged (crash between enqueue
// and tombstone) is dropped instead of reclaiming a live subtree. For an
// account deletion Root is set and validation checks the account's root
// record instead.
type GCEntry struct {
	Account  string
	NS       string // namespace whose subtree is to be reclaimed
	ParentNS string // namespace holding the tombstoned tuple ("" when Root)
	Name     string // tombstoned child name ("" when Root)
	Root     bool   // account deletion: NS is the account's root namespace
	Enqueued int64  // enqueue timestamp, nanoseconds
}

// EntryKey returns the object key of the directory child object the
// entry's tombstone shadows ("" for account deletions).
func (e GCEntry) EntryKey() string {
	if e.Root || e.ParentNS == "" {
		return ""
	}
	return ChildKey(e.Account, e.ParentNS, e.Name)
}

// GCQueueKey returns the object key of one queue entry, following the
// patch-chain naming discipline: per (account, node) sequences, so each
// middleware owns (and drains) the intents it enqueued.
func GCQueueKey(account string, node, seq int) string {
	return fmt.Sprintf("%s|/gcq/Node%02d.Item%06d", account, node, seq)
}

// GCIndexKey returns the object key of one node's queue index.
func GCIndexKey(node int) string {
	return fmt.Sprintf("#gc|Node%02d", node)
}

// IsGCQueueKey reports whether key names a queue entry object.
func IsGCQueueKey(key string) bool {
	return strings.Contains(key, gcQueueInfix)
}

// IsGCIndexKey reports whether key names a queue index object.
func IsGCIndexKey(key string) bool {
	return strings.HasPrefix(key, gcIndexPrefix)
}

// ParseGCQueueKey extracts the account, node and sequence from a queue
// entry key.
func ParseGCQueueKey(key string) (account string, node, seq int, err error) {
	i := strings.Index(key, gcQueueInfix)
	if i < 0 {
		return "", 0, 0, fmt.Errorf("core: %q is not a gc queue key", key)
	}
	account = key[:i]
	rest := key[i+len(gcQueueInfix):]
	nodeStr, seqStr, ok := strings.Cut(rest, ".Item")
	if !ok {
		return "", 0, 0, fmt.Errorf("core: %q is not a gc queue key", key)
	}
	node, err = strconv.Atoi(nodeStr)
	if err != nil {
		return "", 0, 0, fmt.Errorf("core: bad node in gc queue key %q: %w", key, err)
	}
	seq, err = strconv.Atoi(seqStr)
	if err != nil {
		return "", 0, 0, fmt.Errorf("core: bad sequence in gc queue key %q: %w", key, err)
	}
	return account, node, seq, nil
}

// EncodeGCEntry packs an intent record into its ASCII object form, one
// key=value per line with the child name Go-quoted (arbitrary names
// survive the round trip, matching the NameRing codec).
func EncodeGCEntry(e GCEntry) []byte {
	name := strconv.Quote(e.Name)
	buf := make([]byte, 0, len(gcEntryMagic)+len(e.Account)+len(e.NS)+len(e.ParentNS)+len(name)+64)
	buf = append(buf, gcEntryMagic...)
	buf = append(buf, "\naccount="...)
	buf = append(buf, e.Account...)
	buf = append(buf, "\nns="...)
	buf = append(buf, e.NS...)
	buf = append(buf, "\nparent="...)
	buf = append(buf, e.ParentNS...)
	buf = append(buf, "\nname="...)
	buf = append(buf, name...)
	buf = append(buf, "\nroot="...)
	if e.Root {
		buf = append(buf, '1')
	} else {
		buf = append(buf, '0')
	}
	buf = append(buf, "\nenqueued="...)
	buf = strconv.AppendInt(buf, e.Enqueued, 10)
	buf = append(buf, '\n')
	return buf
}

// DecodeGCEntry parses the output of EncodeGCEntry.
func DecodeGCEntry(data []byte) (GCEntry, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != gcEntryMagic {
		return GCEntry{}, fmt.Errorf("core: not a gc queue entry (bad magic)")
	}
	var e GCEntry
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return GCEntry{}, fmt.Errorf("core: gc entry line malformed: %q", line)
		}
		switch key {
		case "account":
			e.Account = val
		case "ns":
			e.NS = val
		case "parent":
			e.ParentNS = val
		case "name":
			name, err := strconv.Unquote(val)
			if err != nil {
				return GCEntry{}, fmt.Errorf("core: gc entry bad name: %w", err)
			}
			e.Name = name
		case "root":
			e.Root = val == "1"
		case "enqueued":
			ts, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return GCEntry{}, fmt.Errorf("core: gc entry bad enqueued: %w", err)
			}
			e.Enqueued = ts
		default:
			return GCEntry{}, fmt.Errorf("core: gc entry unknown field %q", key)
		}
	}
	if e.NS == "" {
		return GCEntry{}, fmt.Errorf("core: gc entry missing namespace")
	}
	return e, nil
}

// GCIndexEntry is one account's pending sequence span in a node's queue
// index: entries with Cursor <= seq <= Head may still exist (a probe of a
// reclaimed sequence answers not-found and is skipped, so a stale cursor
// only costs probes, never correctness).
type GCIndexEntry struct {
	Account string
	Cursor  int // lowest possibly-pending sequence
	Head    int // highest sequence ever enqueued
}

// EncodeGCIndex packs a queue index, sorted by account for deterministic
// bytes.
func EncodeGCIndex(entries []GCIndexEntry) []byte {
	sorted := make([]GCIndexEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Account < sorted[j].Account })
	buf := make([]byte, 0, len(gcIndexMagic)+1+len(sorted)*32)
	buf = append(buf, gcIndexMagic...)
	buf = append(buf, '\n')
	for _, e := range sorted {
		buf = append(buf, e.Account...)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(e.Cursor), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(e.Head), 10)
		buf = append(buf, '\n')
	}
	return buf
}

// DecodeGCIndex parses the output of EncodeGCIndex.
func DecodeGCIndex(data []byte) ([]GCIndexEntry, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != gcIndexMagic {
		return nil, fmt.Errorf("core: not a gc queue index (bad magic)")
	}
	out := make([]GCIndexEntry, 0, len(lines)-1)
	for i, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("core: gc index line %d malformed: %q", i+2, line)
		}
		cursor, err1 := strconv.Atoi(fields[1])
		head, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("core: gc index line %d bad span: %q", i+2, line)
		}
		out = append(out, GCIndexEntry{Account: fields[0], Cursor: cursor, Head: head})
	}
	return out, nil
}
