package fsapi

import "context"

// Walk visits every entry below root depth-first in name order, calling
// fn with each entry's absolute path. The root itself is not visited.
// Returning an error from fn stops the walk.
func Walk(ctx context.Context, fs FileSystem, root string, fn func(path string, info EntryInfo) error) error {
	p, err := Clean(root)
	if err != nil {
		return err
	}
	entries, err := fs.List(ctx, p, true)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := Join(p, e.Name)
		if err := fn(child, e); err != nil {
			return err
		}
		if e.IsDir {
			if err := Walk(ctx, fs, child, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tree returns a map of every path below root to its entry — convenient
// for comparing two filesystems in tests.
func Tree(ctx context.Context, fs FileSystem, root string) (map[string]EntryInfo, error) {
	out := map[string]EntryInfo{}
	err := Walk(ctx, fs, root, func(path string, info EntryInfo) error {
		out[path] = info
		return nil
	})
	return out, err
}
