package fsapi_test

import (
	"context"
	"errors"
	"testing"

	"github.com/h2cloud/h2cloud/internal/baselines/sidxfs"
	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/fsapi"
)

func newFS(t *testing.T) fsapi.FileSystem {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	return sidxfs.New(c, cluster.ZeroProfile(), "walker", nil)
}

func TestWalkDepthFirstInOrder(t *testing.T) {
	fs := newFS(t)
	ctx := context.Background()
	for _, d := range []string{"/b", "/a", "/a/inner"} {
		if err := fs.Mkdir(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []string{"/a/z.txt", "/a/inner/deep.txt", "/b/x.txt", "/top.txt"} {
		if err := fs.WriteFile(ctx, f, []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := fsapi.Walk(ctx, fs, "/", func(path string, info fsapi.EntryInfo) error {
		got = append(got, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a", "/a/inner", "/a/inner/deep.txt", "/a/z.txt", "/b", "/b/x.txt", "/top.txt"}
	if len(got) != len(want) {
		t.Fatalf("Walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order = %v, want %v", got, want)
		}
	}
}

func TestWalkStopsOnError(t *testing.T) {
	fs := newFS(t)
	ctx := context.Background()
	for _, f := range []string{"/a.txt", "/b.txt", "/c.txt"} {
		if err := fs.WriteFile(ctx, f, nil); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("stop")
	visits := 0
	err := fsapi.Walk(ctx, fs, "/", func(string, fsapi.EntryInfo) error {
		visits++
		if visits == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || visits != 2 {
		t.Fatalf("err=%v visits=%d", err, visits)
	}
}

func TestWalkSubdirectoryAndErrors(t *testing.T) {
	fs := newFS(t)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/only"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/only/f", nil); err != nil {
		t.Fatal(err)
	}
	tree, err := fsapi.Tree(ctx, fs, "/only")
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 1 {
		t.Fatalf("Tree(/only) = %v", tree)
	}
	if _, ok := tree["/only/f"]; !ok {
		t.Fatalf("Tree missing /only/f: %v", tree)
	}
	if err := fsapi.Walk(ctx, fs, "bad-path", nil); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("Walk(bad) = %v", err)
	}
	if _, err := fsapi.Tree(ctx, fs, "/missing"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Tree(missing) = %v", err)
	}
}
