package fsapi

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCleanValid(t *testing.T) {
	cases := map[string]string{
		"/":                  "/",
		"/home":              "/home",
		"/home/":             "/home",
		"/home/ubuntu/file1": "/home/ubuntu/file1",
	}
	for in, want := range cases {
		got, err := Clean(in)
		if err != nil || got != want {
			t.Errorf("Clean(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
}

func TestCleanInvalid(t *testing.T) {
	for _, in := range []string{"", "relative", "//", "/a//b", "/a/./b", "/a/../b", "/.."} {
		if _, err := Clean(in); !errors.Is(err, ErrInvalidPath) {
			t.Errorf("Clean(%q) err = %v, want ErrInvalidPath", in, err)
		}
	}
}

func TestSplit(t *testing.T) {
	dir, name, err := Split("/home/ubuntu/file1")
	if err != nil || dir != "/home/ubuntu" || name != "file1" {
		t.Fatalf("Split = %q, %q, %v", dir, name, err)
	}
	dir, name, err = Split("/home")
	if err != nil || dir != "/" || name != "home" {
		t.Fatalf("Split(/home) = %q, %q, %v", dir, name, err)
	}
	if _, _, err := Split("/"); err == nil {
		t.Fatal("Split(/) succeeded")
	}
}

func TestComponents(t *testing.T) {
	cs, err := Components("/home/ubuntu/file1")
	if err != nil || len(cs) != 3 || cs[0] != "home" || cs[2] != "file1" {
		t.Fatalf("Components = %v, %v", cs, err)
	}
	cs, err = Components("/")
	if err != nil || len(cs) != 0 {
		t.Fatalf("Components(/) = %v, %v", cs, err)
	}
}

func TestJoin(t *testing.T) {
	if got := Join("/", "home"); got != "/home" {
		t.Fatalf("Join(/, home) = %q", got)
	}
	if got := Join("/home", "ubuntu"); got != "/home/ubuntu" {
		t.Fatalf("Join = %q", got)
	}
}

func TestDepthMatchesPaperExample(t *testing.T) {
	// Paper §3.2: /home/ubuntu/file1 has d = 3.
	if got := Depth("/home/ubuntu/file1"); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
	if got := Depth("/"); got != 0 {
		t.Fatalf("Depth(/) = %d, want 0", got)
	}
	if got := Depth("/home"); got != 1 {
		t.Fatalf("Depth(/home) = %d, want 1", got)
	}
}

func TestIsAncestor(t *testing.T) {
	cases := []struct {
		anc, path string
		want      bool
	}{
		{"/", "/home", true},
		{"/home", "/home/ubuntu", true},
		{"/home", "/home", false},
		{"/home", "/homework", false},
		{"/home/ubuntu", "/home", false},
		{"/", "/", false},
	}
	for _, c := range cases {
		if got := IsAncestor(c.anc, c.path); got != c.want {
			t.Errorf("IsAncestor(%q, %q) = %v, want %v", c.anc, c.path, got, c.want)
		}
	}
}

// Property: Split then Join reconstructs any cleaned non-root path.
func TestSplitJoinRoundTrip(t *testing.T) {
	f := func(a, b uint8) bool {
		names := []string{"bin", "home", "usr", "cat", "file1", "x"}
		path := "/" + names[int(a)%len(names)] + "/" + names[int(b)%len(names)]
		dir, name, err := Split(path)
		if err != nil {
			return false
		}
		return Join(dir, name) == path
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clean is idempotent.
func TestCleanIdempotent(t *testing.T) {
	f := func(segs []uint8) bool {
		path := "/"
		names := []string{"a", "b", "c"}
		for _, s := range segs {
			path = Join(path, names[int(s)%len(names)])
			if path == "/a" && len(segs) > 6 {
				break
			}
		}
		c1, err := Clean(path)
		if err != nil {
			return false
		}
		c2, err := Clean(c1)
		return err == nil && c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
