// Package fsapi defines the POSIX-like filesystem contract that H2Cloud
// and every baseline data structure in this repository implement.
//
// The paper's evaluation (§5) compares systems on a fixed operation set:
// file access (lookup), READ, WRITE, MKDIR, RMDIR, MOVE, RENAME, LIST and
// COPY. FileSystem captures exactly that set so the benchmark harness and
// the conformance test suite can run unchanged over H2, OpenStack Swift's
// CH+DB, Dynamic Partition, and the other Table 1 structures.
package fsapi

import (
	"context"
	"errors"
	"time"
)

// Typed errors shared by all implementations.
var (
	// ErrNotFound reports that a path does not exist.
	ErrNotFound = errors.New("fs: not found")
	// ErrExists reports that the destination already exists.
	ErrExists = errors.New("fs: already exists")
	// ErrNotDir reports that a directory operation hit a regular file.
	ErrNotDir = errors.New("fs: not a directory")
	// ErrIsDir reports that a file operation hit a directory.
	ErrIsDir = errors.New("fs: is a directory")
	// ErrInvalidPath reports a malformed path.
	ErrInvalidPath = errors.New("fs: invalid path")
	// ErrCrossAccount reports an operation spanning two accounts, which no
	// evaluated system supports.
	ErrCrossAccount = errors.New("fs: cross-account operation")
)

// EntryInfo describes one file or directory.
type EntryInfo struct {
	Name    string    // base name
	IsDir   bool      // true for directories
	Size    int64     // content size in bytes; 0 for directories
	ModTime time.Time // last modification (or creation) time
}

// FileSystem is the hierarchical filesystem surface mapped onto the flat
// object storage cloud. Paths are absolute, slash-separated and rooted at
// "/". Implementations are safe for concurrent use unless noted.
type FileSystem interface {
	// Mkdir creates an empty directory. Parent directories must exist.
	Mkdir(ctx context.Context, path string) error
	// Rmdir removes a directory and everything beneath it (the paper's
	// RMDIR is evaluated on directories holding n files, Figure 8).
	Rmdir(ctx context.Context, path string) error
	// Move relocates a file or directory subtree to a new absolute path.
	// RENAME is the special case where only the base name changes (§5.3).
	Move(ctx context.Context, src, dst string) error
	// Copy duplicates a file or directory subtree to a new absolute path.
	Copy(ctx context.Context, src, dst string) error
	// List returns the direct children of a directory, sorted by name.
	// With detail=false only names and directory bits are filled (the O(1)
	// NameRing fast path in H2); with detail=true size and mtime are
	// populated, which requires touching each child (O(m)).
	List(ctx context.Context, path string, detail bool) ([]EntryInfo, error)
	// WriteFile creates or replaces a file's content. The parent directory
	// must exist.
	WriteFile(ctx context.Context, path string, data []byte) error
	// ReadFile returns a file's content.
	ReadFile(ctx context.Context, path string) ([]byte, error)
	// Stat resolves a path to its metadata — the paper's "file access"
	// operation, measured as lookup time only (§5.2).
	Stat(ctx context.Context, path string) (EntryInfo, error)
	// Remove deletes a single file (not a directory).
	Remove(ctx context.Context, path string) error
}

// Rename changes the base name of a file or directory in place; it is the
// special case of MOVE the paper measures alongside it (Figure 7).
func Rename(ctx context.Context, fs FileSystem, path, newName string) error {
	dir, _, err := Split(path)
	if err != nil {
		return err
	}
	return fs.Move(ctx, path, Join(dir, newName))
}
