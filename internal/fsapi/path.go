package fsapi

import (
	"fmt"
	"strings"
)

// Clean validates and canonicalizes an absolute slash path: it must start
// with "/", contain no empty, "." or ".." components, and is returned
// without a trailing slash ("/" stays "/"). Every filesystem operation
// cleans its path first, so this is opted into the allocation budget.
//
//h2vet:hotpath
func Clean(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", fmt.Errorf("%w: %q must be absolute", ErrInvalidPath, path)
	}
	if path == "/" {
		return "/", nil
	}
	parts := strings.Split(path[1:], "/")
	out := make([]string, 0, len(parts))
	for i, p := range parts {
		if p == "" {
			// Allow exactly one trailing slash.
			if i == len(parts)-1 {
				continue
			}
			return "", fmt.Errorf("%w: %q has empty component", ErrInvalidPath, path)
		}
		if p == "." || p == ".." {
			return "", fmt.Errorf("%w: %q contains %q", ErrInvalidPath, path, p)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// Split cleans path and returns its parent directory and base name.
// Splitting "/" returns an error: the root has no parent.
func Split(path string) (dir, name string, err error) {
	p, err := Clean(path)
	if err != nil {
		return "", "", err
	}
	if p == "/" {
		return "", "", fmt.Errorf("%w: cannot split root", ErrInvalidPath)
	}
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:], nil
	}
	return p[:i], p[i+1:], nil
}

// Components cleans path and returns its path elements; the root yields an
// empty slice.
func Components(path string) ([]string, error) {
	p, err := Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, nil
	}
	return strings.Split(p[1:], "/"), nil
}

// Join concatenates a cleaned directory path with a base name.
func Join(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Depth reports the directory depth d of a cleaned path: "/" is 0,
// "/home" is 1, "/home/ubuntu/file1" is 3 (matching the paper's example
// in §3.2 where /home/ubuntu/file1 has d = 3).
func Depth(path string) int {
	if path == "/" || path == "" {
		return 0
	}
	return strings.Count(path, "/")
}

// IsAncestor reports whether anc is a strict ancestor directory of path
// (both must be cleaned).
func IsAncestor(anc, path string) bool {
	if anc == path {
		return false
	}
	if anc == "/" {
		return strings.HasPrefix(path, "/") && path != "/"
	}
	return strings.HasPrefix(path, anc+"/")
}
