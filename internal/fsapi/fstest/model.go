package fstest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// model is the oracle for RunDifferential: the simplest possible correct
// FileSystem — one mutex, one map. No rings, hashes, partitions or logs.
// Timestamps come from an injectable clock; the default is a logical
// clock ticking one second per mutation from a fixed epoch, so model
// runs are bit-for-bit reproducible (no wall-clock reads — the
// virtualtime invariant).
type model struct {
	mu      sync.Mutex
	entries map[string]*modelEntry
	now     func() time.Time
}

type modelEntry struct {
	isDir   bool
	data    []byte
	modTime time.Time
}

func newModel() *model {
	return newModelWithClock(nil)
}

// NewModel returns the oracle filesystem with its deterministic logical
// clock. Robustness tests outside this package apply acknowledged
// operations to it and compare trees after recovery, reusing the
// differential harness's notion of correctness.
func NewModel() fsapi.FileSystem {
	return newModel()
}

// newModelWithClock builds a model using now for timestamps; nil selects
// the deterministic logical clock.
func newModelWithClock(now func() time.Time) *model {
	if now == nil {
		epoch := time.Unix(1_500_000_000, 0).UTC()
		tick := 0
		now = func() time.Time {
			tick++
			return epoch.Add(time.Duration(tick) * time.Second)
		}
	}
	return &model{entries: map[string]*modelEntry{}, now: now}
}

var _ fsapi.FileSystem = (*model)(nil)

func (m *model) parentOK(p string) error {
	dir, _, err := fsapi.Split(p)
	if err != nil {
		return err
	}
	if dir == "/" {
		return nil
	}
	e, ok := m.entries[dir]
	if !ok {
		return fmt.Errorf("model: %s: %w", dir, fsapi.ErrNotFound)
	}
	if !e.isDir {
		return fmt.Errorf("model: %s: %w", dir, fsapi.ErrNotDir)
	}
	return nil
}

func (m *model) Mkdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fsapi.ErrExists
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.parentOK(p); err != nil {
		return err
	}
	if _, ok := m.entries[p]; ok {
		return fsapi.ErrExists
	}
	m.entries[p] = &modelEntry{isDir: true, modTime: m.now()}
	return nil
}

func (m *model) WriteFile(ctx context.Context, path string, data []byte) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fsapi.ErrIsDir
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.parentOK(p); err != nil {
		return err
	}
	if e, ok := m.entries[p]; ok && e.isDir {
		return fsapi.ErrIsDir
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	m.entries[p] = &modelEntry{data: buf, modTime: m.now()}
	return nil
}

func (m *model) ReadFile(ctx context.Context, path string) ([]byte, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	if p == "/" {
		return nil, fsapi.ErrIsDir
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[p]
	if !ok {
		return nil, fsapi.ErrNotFound
	}
	if e.isDir {
		return nil, fsapi.ErrIsDir
	}
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return out, nil
}

func (m *model) Stat(ctx context.Context, path string) (fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return fsapi.EntryInfo{}, err
	}
	if p == "/" {
		return fsapi.EntryInfo{Name: "/", IsDir: true}, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[p]
	if !ok {
		return fsapi.EntryInfo{}, fsapi.ErrNotFound
	}
	_, name, _ := fsapi.Split(p)
	return fsapi.EntryInfo{Name: name, IsDir: e.isDir, Size: int64(len(e.data)), ModTime: e.modTime}, nil
}

func (m *model) Remove(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[p]
	if !ok {
		return fsapi.ErrNotFound
	}
	if e.isDir {
		return fsapi.ErrIsDir
	}
	delete(m.entries, p)
	return nil
}

func (m *model) List(ctx context.Context, path string, detail bool) ([]fsapi.EntryInfo, error) {
	p, err := fsapi.Clean(path)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p != "/" {
		e, ok := m.entries[p]
		if !ok {
			return nil, fsapi.ErrNotFound
		}
		if !e.isDir {
			return nil, fsapi.ErrNotDir
		}
	}
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	var out []fsapi.EntryInfo
	for cand, e := range m.entries {
		if !strings.HasPrefix(cand, prefix) {
			continue
		}
		rest := cand[len(prefix):]
		if rest == "" || strings.ContainsRune(rest, '/') {
			continue
		}
		info := fsapi.EntryInfo{Name: rest, IsDir: e.isDir}
		if detail {
			info.Size = int64(len(e.data))
			info.ModTime = e.modTime
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (m *model) Rmdir(ctx context.Context, path string) error {
	p, err := fsapi.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return fsapi.ErrInvalidPath
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[p]
	if !ok {
		return fsapi.ErrNotFound
	}
	if !e.isDir {
		return fsapi.ErrNotDir
	}
	for cand := range m.entries {
		if cand == p || fsapi.IsAncestor(p, cand) {
			delete(m.entries, cand)
		}
	}
	return nil
}

func (m *model) srcDst(src, dst string) (string, string, error) {
	srcP, err := fsapi.Clean(src)
	if err != nil {
		return "", "", err
	}
	dstP, err := fsapi.Clean(dst)
	if err != nil {
		return "", "", err
	}
	if srcP == "/" {
		return "", "", fsapi.ErrInvalidPath
	}
	if fsapi.IsAncestor(srcP, dstP) {
		return "", "", fsapi.ErrInvalidPath
	}
	if _, ok := m.entries[srcP]; !ok {
		return "", "", fsapi.ErrNotFound
	}
	if _, ok := m.entries[dstP]; ok {
		return "", "", fsapi.ErrExists
	}
	if err := m.parentOK(dstP); err != nil {
		return "", "", err
	}
	return srcP, dstP, nil
}

func (m *model) Move(ctx context.Context, src, dst string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	srcP, dstP, err := m.srcDst(src, dst)
	if err != nil {
		return err
	}
	moves := map[string]string{}
	for cand := range m.entries {
		if cand == srcP || fsapi.IsAncestor(srcP, cand) {
			moves[cand] = dstP + cand[len(srcP):]
		}
	}
	for from, to := range moves {
		m.entries[to] = m.entries[from]
		delete(m.entries, from)
	}
	return nil
}

func (m *model) Copy(ctx context.Context, src, dst string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	srcP, dstP, err := m.srcDst(src, dst)
	if err != nil {
		return err
	}
	copies := map[string]*modelEntry{}
	for cand, e := range m.entries {
		if cand == srcP || fsapi.IsAncestor(srcP, cand) {
			buf := make([]byte, len(e.data))
			copy(buf, e.data)
			copies[dstP+cand[len(srcP):]] = &modelEntry{isDir: e.isDir, data: buf, modTime: e.modTime}
		}
	}
	for to, e := range copies {
		m.entries[to] = e
	}
	return nil
}
