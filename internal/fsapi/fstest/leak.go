package fstest

import (
	"runtime"
	"testing"
	"time"
)

// AssertNoGoroutineLeak snapshots the goroutine count and, at test
// cleanup, fails the test if the count has not returned to that
// baseline. Concurrency-heavy suites (subtree engine, chaos) call it
// first so a worker that outlives its operation — exactly what the
// leakcheck lint rule catches statically — also fails dynamically.
//
// The grace window uses the real clock on purpose: goroutine shutdown
// is a property of the Go runtime, not of simulated time, and this is
// test scaffolding rather than simulator code.
func AssertNoGoroutineLeak(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		//h2vet:ignore virtualtime real-clock grace window; goroutine shutdown is runtime behavior, not simulated time
		deadline := time.Now().Add(2 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= base {
				return
			}
			//h2vet:ignore virtualtime see above: runtime settling, not simulated time
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine leak: %d goroutines at cleanup, test started with %d\n%s", n, base, buf)
				return
			}
			//h2vet:ignore virtualtime real sleep while polling the runtime for goroutine exit
			time.Sleep(10 * time.Millisecond) //h2vet:ignore backoffcheck polling the runtime, nothing to charge to vclock
		}
	})
}
