// Package fstest provides a conformance test suite for fsapi.FileSystem
// implementations.
//
// Nine data structures from the paper's Table 1 implement the same
// filesystem contract in this repository; Run exercises the shared
// semantics (creation, lookup, recursive directory operations, error
// taxonomy) so each implementation's own tests only need to cover what is
// unique to its data structure.
package fstest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

// Factory builds a fresh, empty filesystem for one subtest.
type Factory func(t *testing.T) fsapi.FileSystem

// Run executes the conformance suite against implementations produced by
// the factory.
func Run(t *testing.T, mk Factory) {
	t.Helper()
	for _, tc := range suite {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, mk(t))
		})
	}
}

var suite = []struct {
	name string
	fn   func(t *testing.T, fs fsapi.FileSystem)
}{
	{"MkdirAndStat", testMkdirAndStat},
	{"MkdirRequiresParent", testMkdirRequiresParent},
	{"MkdirDuplicate", testMkdirDuplicate},
	{"MkdirOverFile", testMkdirOverFile},
	{"MkdirRoot", testMkdirRoot},
	{"StatRoot", testStatRoot},
	{"StatMissing", testStatMissing},
	{"WriteRead", testWriteRead},
	{"WriteOverwrite", testWriteOverwrite},
	{"WriteRequiresParent", testWriteRequiresParent},
	{"WriteOverDirectory", testWriteOverDirectory},
	{"ReadMissing", testReadMissing},
	{"ReadDirectory", testReadDirectory},
	{"RemoveFile", testRemoveFile},
	{"RemoveMissing", testRemoveMissing},
	{"RemoveDirectory", testRemoveDirectory},
	{"ListEmpty", testListEmpty},
	{"ListSorted", testListSorted},
	{"ListDetail", testListDetail},
	{"ListFile", testListFile},
	{"ListMissing", testListMissing},
	{"RmdirRecursive", testRmdirRecursive},
	{"RmdirFile", testRmdirFile},
	{"RmdirMissing", testRmdirMissing},
	{"RmdirRoot", testRmdirRoot},
	{"MoveFile", testMoveFile},
	{"MoveDirectorySubtree", testMoveDirectorySubtree},
	{"MoveToExisting", testMoveToExisting},
	{"MoveMissing", testMoveMissing},
	{"MoveIntoOwnSubtree", testMoveIntoOwnSubtree},
	{"Rename", testRename},
	{"CopyFile", testCopyFile},
	{"CopyDirectoryRecursive", testCopyDirectoryRecursive},
	{"CopyPreservesSource", testCopyPreservesSource},
	{"CopyToExisting", testCopyToExisting},
	{"CopyIntoOwnSubtree", testCopyIntoOwnSubtree},
	{"DeepNesting", testDeepNesting},
	{"ManyChildren", testManyChildren},
	{"InvalidPaths", testInvalidPaths},
	{"ConcurrentWriters", testConcurrentWriters},
}

//h2vet:ignore ctxcheck test scaffold owns its root context
func ctx() context.Context { return context.Background() }

func mustMkdir(t *testing.T, fs fsapi.FileSystem, path string) {
	t.Helper()
	if err := fs.Mkdir(ctx(), path); err != nil {
		t.Fatalf("Mkdir(%q): %v", path, err)
	}
}

func mustWrite(t *testing.T, fs fsapi.FileSystem, path, content string) {
	t.Helper()
	if err := fs.WriteFile(ctx(), path, []byte(content)); err != nil {
		t.Fatalf("WriteFile(%q): %v", path, err)
	}
}

func mustRead(t *testing.T, fs fsapi.FileSystem, path, want string) {
	t.Helper()
	data, err := fs.ReadFile(ctx(), path)
	if err != nil {
		t.Fatalf("ReadFile(%q): %v", path, err)
	}
	if !bytes.Equal(data, []byte(want)) {
		t.Fatalf("ReadFile(%q) = %q, want %q", path, data, want)
	}
}

func mustAbsent(t *testing.T, fs fsapi.FileSystem, path string) {
	t.Helper()
	if _, err := fs.Stat(ctx(), path); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Stat(%q) = %v, want ErrNotFound", path, err)
	}
}

func testMkdirAndStat(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/home")
	mustMkdir(t, fs, "/home/ubuntu")
	info, err := fs.Stat(ctx(), "/home/ubuntu")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir || info.Name != "ubuntu" {
		t.Fatalf("Stat = %+v", info)
	}
}

func testMkdirRequiresParent(t *testing.T, fs fsapi.FileSystem) {
	if err := fs.Mkdir(ctx(), "/no/parent"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Mkdir without parent = %v, want ErrNotFound", err)
	}
}

func testMkdirDuplicate(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/dir")
	if err := fs.Mkdir(ctx(), "/dir"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("duplicate Mkdir = %v, want ErrExists", err)
	}
}

func testMkdirOverFile(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/f", "x")
	if err := fs.Mkdir(ctx(), "/f"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("Mkdir over file = %v, want ErrExists", err)
	}
}

func testMkdirRoot(t *testing.T, fs fsapi.FileSystem) {
	if err := fs.Mkdir(ctx(), "/"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("Mkdir(/) = %v, want ErrExists", err)
	}
}

func testStatRoot(t *testing.T, fs fsapi.FileSystem) {
	info, err := fs.Stat(ctx(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir {
		t.Fatalf("root not a directory: %+v", info)
	}
}

func testStatMissing(t *testing.T, fs fsapi.FileSystem) {
	mustAbsent(t, fs, "/missing")
	mustMkdir(t, fs, "/d")
	mustAbsent(t, fs, "/d/missing")
	mustAbsent(t, fs, "/d/missing/deeper")
}

func testWriteRead(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/docs")
	mustWrite(t, fs, "/docs/a.txt", "hello world")
	mustRead(t, fs, "/docs/a.txt", "hello world")
	info, err := fs.Stat(ctx(), "/docs/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != 11 || info.Name != "a.txt" {
		t.Fatalf("Stat = %+v", info)
	}
}

func testWriteOverwrite(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/f", "v1")
	mustWrite(t, fs, "/f", "version2")
	mustRead(t, fs, "/f", "version2")
	info, _ := fs.Stat(ctx(), "/f")
	if info.Size != 8 {
		t.Fatalf("Size = %d, want 8", info.Size)
	}
}

func testWriteRequiresParent(t *testing.T, fs fsapi.FileSystem) {
	if err := fs.WriteFile(ctx(), "/no/parent.txt", nil); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("WriteFile without parent = %v, want ErrNotFound", err)
	}
}

func testWriteOverDirectory(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/d")
	if err := fs.WriteFile(ctx(), "/d", []byte("x")); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("WriteFile over dir = %v, want ErrIsDir", err)
	}
}

func testReadMissing(t *testing.T, fs fsapi.FileSystem) {
	if _, err := fs.ReadFile(ctx(), "/nope"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("ReadFile missing = %v, want ErrNotFound", err)
	}
}

func testReadDirectory(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/d")
	if _, err := fs.ReadFile(ctx(), "/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("ReadFile(dir) = %v, want ErrIsDir", err)
	}
}

func testRemoveFile(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/f", "x")
	if err := fs.Remove(ctx(), "/f"); err != nil {
		t.Fatal(err)
	}
	mustAbsent(t, fs, "/f")
}

func testRemoveMissing(t *testing.T, fs fsapi.FileSystem) {
	if err := fs.Remove(ctx(), "/nope"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Remove missing = %v, want ErrNotFound", err)
	}
}

func testRemoveDirectory(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/d")
	if err := fs.Remove(ctx(), "/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("Remove(dir) = %v, want ErrIsDir", err)
	}
}

func testListEmpty(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/empty")
	entries, err := fs.List(ctx(), "/empty", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("List = %v, want empty", entries)
	}
}

func testListSorted(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/bin")
	for _, n := range []string{"nc", "cat", "bash"} {
		mustWrite(t, fs, "/bin/"+n, n)
	}
	mustMkdir(t, fs, "/bin/subdir")
	entries, err := fs.List(ctx(), "/bin", false)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bash", "cat", "nc", "subdir"}
	if len(entries) != len(want) {
		t.Fatalf("List = %v, want %v", entries, want)
	}
	for i, e := range entries {
		if e.Name != want[i] {
			t.Fatalf("List order = %v, want %v", entries, want)
		}
	}
	if !entries[3].IsDir || entries[0].IsDir {
		t.Fatalf("IsDir bits wrong: %+v", entries)
	}
}

func testListDetail(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/d")
	mustWrite(t, fs, "/d/a", "12345")
	mustWrite(t, fs, "/d/b", "12")
	entries, err := fs.List(ctx(), "/d", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Size != 5 || entries[1].Size != 2 {
		t.Fatalf("detailed List = %+v", entries)
	}
}

func testListFile(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/f", "x")
	if _, err := fs.List(ctx(), "/f", false); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("List(file) = %v, want ErrNotDir", err)
	}
}

func testListMissing(t *testing.T, fs fsapi.FileSystem) {
	if _, err := fs.List(ctx(), "/nope", false); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("List missing = %v, want ErrNotFound", err)
	}
}

func testRmdirRecursive(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/top")
	mustMkdir(t, fs, "/top/sub")
	mustWrite(t, fs, "/top/f1", "1")
	mustWrite(t, fs, "/top/sub/f2", "2")
	if err := fs.Rmdir(ctx(), "/top"); err != nil {
		t.Fatal(err)
	}
	mustAbsent(t, fs, "/top")
	mustAbsent(t, fs, "/top/sub")
	mustAbsent(t, fs, "/top/f1")
	mustAbsent(t, fs, "/top/sub/f2")
}

func testRmdirFile(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/f", "x")
	if err := fs.Rmdir(ctx(), "/f"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("Rmdir(file) = %v, want ErrNotDir", err)
	}
}

func testRmdirMissing(t *testing.T, fs fsapi.FileSystem) {
	if err := fs.Rmdir(ctx(), "/nope"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Rmdir missing = %v, want ErrNotFound", err)
	}
}

func testRmdirRoot(t *testing.T, fs fsapi.FileSystem) {
	if err := fs.Rmdir(ctx(), "/"); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("Rmdir(/) = %v, want ErrInvalidPath", err)
	}
}

func testMoveFile(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/b")
	mustWrite(t, fs, "/a/f", "payload")
	if err := fs.Move(ctx(), "/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	mustAbsent(t, fs, "/a/f")
	mustRead(t, fs, "/b/g", "payload")
}

func testMoveDirectorySubtree(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/src")
	mustMkdir(t, fs, "/src/inner")
	mustWrite(t, fs, "/src/f1", "1")
	mustWrite(t, fs, "/src/inner/f2", "2")
	mustMkdir(t, fs, "/dstparent")
	if err := fs.Move(ctx(), "/src", "/dstparent/dst"); err != nil {
		t.Fatal(err)
	}
	mustAbsent(t, fs, "/src")
	mustRead(t, fs, "/dstparent/dst/f1", "1")
	mustRead(t, fs, "/dstparent/dst/inner/f2", "2")
	info, err := fs.Stat(ctx(), "/dstparent/dst/inner")
	if err != nil || !info.IsDir {
		t.Fatalf("inner dir after move: %+v, %v", info, err)
	}
}

func testMoveToExisting(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/a", "1")
	mustWrite(t, fs, "/b", "2")
	if err := fs.Move(ctx(), "/a", "/b"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("Move onto existing = %v, want ErrExists", err)
	}
}

func testMoveMissing(t *testing.T, fs fsapi.FileSystem) {
	if err := fs.Move(ctx(), "/nope", "/dst"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("Move missing = %v, want ErrNotFound", err)
	}
}

func testMoveIntoOwnSubtree(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/d")
	mustMkdir(t, fs, "/d/sub")
	if err := fs.Move(ctx(), "/d", "/d/sub/d2"); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("Move into own subtree = %v, want ErrInvalidPath", err)
	}
}

func testRename(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/dir")
	mustWrite(t, fs, "/dir/old", "content")
	if err := fsapi.Rename(ctx(), fs, "/dir/old", "new"); err != nil {
		t.Fatal(err)
	}
	mustAbsent(t, fs, "/dir/old")
	mustRead(t, fs, "/dir/new", "content")
}

func testCopyFile(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/src", "data")
	if err := fs.Copy(ctx(), "/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	mustRead(t, fs, "/src", "data")
	mustRead(t, fs, "/dst", "data")
}

func testCopyDirectoryRecursive(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/src")
	mustMkdir(t, fs, "/src/sub")
	mustWrite(t, fs, "/src/f", "1")
	mustWrite(t, fs, "/src/sub/g", "2")
	if err := fs.Copy(ctx(), "/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	mustRead(t, fs, "/dst/f", "1")
	mustRead(t, fs, "/dst/sub/g", "2")
}

func testCopyPreservesSource(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/src")
	mustWrite(t, fs, "/src/f", "1")
	if err := fs.Copy(ctx(), "/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, fs, "/dst/f", "changed")
	mustRead(t, fs, "/src/f", "1") // copies must not alias
}

func testCopyToExisting(t *testing.T, fs fsapi.FileSystem) {
	mustWrite(t, fs, "/a", "1")
	mustWrite(t, fs, "/b", "2")
	if err := fs.Copy(ctx(), "/a", "/b"); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("Copy onto existing = %v, want ErrExists", err)
	}
}

func testCopyIntoOwnSubtree(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/d")
	if err := fs.Copy(ctx(), "/d", "/d/copy"); !errors.Is(err, fsapi.ErrInvalidPath) {
		t.Fatalf("Copy into own subtree = %v, want ErrInvalidPath", err)
	}
}

func testDeepNesting(t *testing.T, fs fsapi.FileSystem) {
	// The paper's workloads reach depth > 20 (§5.1).
	path := ""
	for i := 0; i < 22; i++ {
		path = fmt.Sprintf("%s/d%d", path, i)
		mustMkdir(t, fs, path)
	}
	mustWrite(t, fs, path+"/leaf", "deep")
	mustRead(t, fs, path+"/leaf", "deep")
	info, err := fs.Stat(ctx(), path+"/leaf")
	if err != nil || info.Size != 4 {
		t.Fatalf("deep Stat = %+v, %v", info, err)
	}
}

func testManyChildren(t *testing.T, fs fsapi.FileSystem) {
	mustMkdir(t, fs, "/big")
	const n = 300
	for i := 0; i < n; i++ {
		mustWrite(t, fs, fmt.Sprintf("/big/f%04d", i), "x")
	}
	entries, err := fs.List(ctx(), "/big", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("List found %d children, want %d", len(entries), n)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatal("List not sorted")
		}
	}
}

func testInvalidPaths(t *testing.T, fs fsapi.FileSystem) {
	for _, p := range []string{"", "rel/path", "/a//b", "/a/../b"} {
		if err := fs.Mkdir(ctx(), p); !errors.Is(err, fsapi.ErrInvalidPath) {
			t.Errorf("Mkdir(%q) = %v, want ErrInvalidPath", p, err)
		}
		if _, err := fs.Stat(ctx(), p); !errors.Is(err, fsapi.ErrInvalidPath) {
			t.Errorf("Stat(%q) = %v, want ErrInvalidPath", p, err)
		}
	}
}

func testConcurrentWriters(t *testing.T, fs fsapi.FileSystem) {
	const writers, files = 4, 25
	for w := 0; w < writers; w++ {
		mustMkdir(t, fs, fmt.Sprintf("/w%d", w))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < files; i++ {
				p := fmt.Sprintf("/w%d/f%d", w, i)
				if err := fs.WriteFile(ctx(), p, []byte(p)); err != nil {
					errCh <- fmt.Errorf("write %s: %w", p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		entries, err := fs.List(ctx(), fmt.Sprintf("/w%d", w), false)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != files {
			t.Fatalf("writer %d has %d files, want %d", w, len(entries), files)
		}
	}
}
