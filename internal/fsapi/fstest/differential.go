package fstest

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud/internal/fsapi"
	"github.com/h2cloud/h2cloud/internal/workload"
)

// RunDifferential replays seeded random operation traces on the
// implementation and on a minimal in-memory model, then requires their
// trees (structure, sizes, contents) to be identical. Conformance (Run)
// checks prescribed behaviours; this catches interactions — a MOVE after
// a COPY after an RMDIR — that enumerated cases miss.
func RunDifferential(t *testing.T, mk Factory) {
	t.Helper()
	for _, seed := range []int64{11, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			impl := mk(t)
			model := newModel()
			//h2vet:ignore ctxcheck test scaffold owns its root context
			ctx := context.Background()

			base := workload.Generate(workload.Spec{
				Seed: seed, Dirs: 25, Files: 80, MaxDepth: 5,
				DirSkew: 0.7, MeanFileSize: 64, MaxFileSize: 512,
			})
			if err := base.Populate(ctx, impl, 64); err != nil {
				t.Fatal(err)
			}
			if err := base.Populate(ctx, model, 64); err != nil {
				t.Fatal(err)
			}
			ops := workload.GenerateOps(base, 400, seed*3, nil)
			for i, op := range ops {
				if err := workload.Replay(ctx, impl, ops[i:i+1]); err != nil {
					t.Fatalf("impl op %d %s %s: %v", i, op.Kind, op.Path, err)
				}
				if err := workload.Replay(ctx, model, ops[i:i+1]); err != nil {
					t.Fatalf("model op %d %s %s: %v", i, op.Kind, op.Path, err)
				}
			}
			compareTrees(t, ctx, impl, model)
		})
	}
}

func compareTrees(t *testing.T, ctx context.Context, impl, model fsapi.FileSystem) {
	t.Helper()
	implTree, err := fsapi.Tree(ctx, impl, "/")
	if err != nil {
		t.Fatal(err)
	}
	modelTree, err := fsapi.Tree(ctx, model, "/")
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range modelTree {
		got, ok := implTree[path]
		if !ok {
			t.Fatalf("implementation missing %s", path)
		}
		if got.IsDir != want.IsDir {
			t.Fatalf("%s: IsDir %v, model %v", path, got.IsDir, want.IsDir)
		}
		if !got.IsDir && got.Size != want.Size {
			t.Fatalf("%s: size %d, model %d", path, got.Size, want.Size)
		}
	}
	for path := range implTree {
		if _, ok := modelTree[path]; !ok {
			t.Fatalf("implementation has extra entry %s", path)
		}
	}
	// Content spot-check.
	checked := 0
	for path, info := range modelTree {
		if info.IsDir || checked >= 20 {
			continue
		}
		want, err := model.ReadFile(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := impl.ReadFile(ctx, path)
		if err != nil {
			t.Fatalf("impl read %s: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s content differs", path)
		}
		checked++
	}
}
