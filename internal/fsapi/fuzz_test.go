package fsapi

import (
	"strings"
	"testing"
)

// FuzzClean: path cleaning must never panic; cleaned paths must be
// absolute, idempotent under Clean, and must survive Split+Join.
func FuzzClean(f *testing.F) {
	for _, seed := range []string{"/", "/a/b", "//", "/a//b", "/a/../b", "rel", "", "/ /", "/a/"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		p, err := Clean(path)
		if err != nil {
			return
		}
		if !strings.HasPrefix(p, "/") {
			t.Fatalf("cleaned %q not absolute", p)
		}
		p2, err := Clean(p)
		if err != nil || p2 != p {
			t.Fatalf("Clean not idempotent: %q -> %q (%v)", p, p2, err)
		}
		if p == "/" {
			return
		}
		dir, name, err := Split(p)
		if err != nil {
			t.Fatalf("Split(%q): %v", p, err)
		}
		if Join(dir, name) != p {
			t.Fatalf("Join(Split(%q)) = %q", p, Join(dir, name))
		}
		if Depth(p) < 1 {
			t.Fatalf("Depth(%q) = %d", p, Depth(p))
		}
	})
}
