package gossip

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBroadcastExcludesSender(t *testing.T) {
	b := NewBus()
	got := map[int][]Message{}
	for n := 0; n < 3; n++ {
		n := n
		b.Register(n, func(_ context.Context, m Message) {
			got[n] = append(got[n], m)
		})
	}
	msg := Message{Account: "alice", NS: "N1", Origin: 0, Version: 5}
	b.Broadcast(0, msg)
	if delivered := b.Pump(context.Background()); delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if len(got[0]) != 0 {
		t.Fatal("sender received its own broadcast")
	}
	if len(got[1]) != 1 || got[1][0] != msg {
		t.Fatalf("node 1 got %v", got[1])
	}
	if len(got[2]) != 1 {
		t.Fatalf("node 2 got %v", got[2])
	}
}

func TestPumpDrainsForwardedMessages(t *testing.T) {
	b := NewBus()
	var forwards int
	b.Register(0, func(context.Context, Message) {})
	b.Register(1, func(ctx context.Context, m Message) {
		if forwards < 1 {
			forwards++
			b.Broadcast(1, m) // put it forward once
		}
	})
	b.Register(2, func(context.Context, Message) {})
	b.Broadcast(0, Message{NS: "N1"})
	delivered := b.Pump(context.Background())
	// 0 -> {1,2} = 2, then 1 -> {0,2} = 2.
	if delivered != 4 {
		t.Fatalf("delivered %d, want 4", delivered)
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after pump", b.Pending())
	}
}

func TestPendingCounts(t *testing.T) {
	b := NewBus()
	b.Register(0, func(context.Context, Message) {})
	b.Register(1, func(context.Context, Message) {})
	b.Broadcast(0, Message{})
	if b.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", b.Pending())
	}
	b.Pump(context.Background())
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", b.Pending())
	}
}

func TestUnregisteredNodeIgnored(t *testing.T) {
	b := NewBus()
	b.Register(0, func(context.Context, Message) {})
	// No other nodes: broadcast delivers nothing, and must not panic.
	b.Broadcast(0, Message{})
	if n := b.Pump(context.Background()); n != 0 {
		t.Fatalf("delivered %d, want 0", n)
	}
}

func TestRunDeliversInBackground(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	var count int
	b.Register(0, func(context.Context, Message) {})
	b.Register(1, func(context.Context, Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		b.Run(ctx, 5*time.Millisecond)
		close(done)
	}()
	b.Broadcast(0, Message{NS: "N"})
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("message not delivered by Run")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
}

func TestConcurrentBroadcasts(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	count := 0
	for n := 0; n < 4; n++ {
		b.Register(n, func(context.Context, Message) {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Broadcast(i%4, Message{Version: int64(i)})
		}(i)
	}
	wg.Wait()
	delivered := b.Pump(context.Background())
	if delivered != 30 { // 10 broadcasts x 3 receivers
		t.Fatalf("delivered %d, want 30", delivered)
	}
	if count != 30 {
		t.Fatalf("handled %d, want 30", count)
	}
}
