package gossip

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBroadcastExcludesSender(t *testing.T) {
	b := NewBus()
	got := map[int][]Message{}
	for n := 0; n < 3; n++ {
		n := n
		b.Register(n, func(_ context.Context, m Message) {
			got[n] = append(got[n], m)
		})
	}
	msg := Message{Account: "alice", NS: "N1", Origin: 0, Version: 5}
	b.Broadcast(0, msg)
	if delivered := b.Pump(context.Background()); delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if len(got[0]) != 0 {
		t.Fatal("sender received its own broadcast")
	}
	if len(got[1]) != 1 || got[1][0] != msg {
		t.Fatalf("node 1 got %v", got[1])
	}
	if len(got[2]) != 1 {
		t.Fatalf("node 2 got %v", got[2])
	}
}

func TestPumpDrainsForwardedMessages(t *testing.T) {
	b := NewBus()
	var forwards int
	b.Register(0, func(context.Context, Message) {})
	b.Register(1, func(ctx context.Context, m Message) {
		if forwards < 1 {
			forwards++
			b.Broadcast(1, m) // put it forward once
		}
	})
	b.Register(2, func(context.Context, Message) {})
	b.Broadcast(0, Message{NS: "N1"})
	delivered := b.Pump(context.Background())
	// 0 -> {1,2} = 2, then 1 -> {0,2} = 2.
	if delivered != 4 {
		t.Fatalf("delivered %d, want 4", delivered)
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after pump", b.Pending())
	}
}

func TestPendingCounts(t *testing.T) {
	b := NewBus()
	b.Register(0, func(context.Context, Message) {})
	b.Register(1, func(context.Context, Message) {})
	b.Broadcast(0, Message{})
	if b.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", b.Pending())
	}
	b.Pump(context.Background())
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", b.Pending())
	}
}

func TestUnregisteredNodeIgnored(t *testing.T) {
	b := NewBus()
	b.Register(0, func(context.Context, Message) {})
	// No other nodes: broadcast delivers nothing, and must not panic.
	b.Broadcast(0, Message{})
	if n := b.Pump(context.Background()); n != 0 {
		t.Fatalf("delivered %d, want 0", n)
	}
}

func TestZeroValueBusReady(t *testing.T) {
	var b Bus
	var got []int64
	b.Register(1, func(_ context.Context, m Message) { got = append(got, m.Version) })
	b.Broadcast(0, Message{Version: 7})
	if n := b.Pump(context.Background()); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v, want [7]", got)
	}
	b.Close()
	b.Broadcast(0, Message{Version: 8})
	if b.Pending() != 0 {
		t.Fatal("broadcast after Close was queued")
	}
}

func TestBroadcastFanOutDeterministic(t *testing.T) {
	// Registration order is scrambled; delivery must still be ascending
	// node order, independent of map hash seeding.
	b := NewBus()
	var order []int
	for _, n := range []int{3, 1, 4, 0, 2} {
		n := n
		b.Register(n, func(context.Context, Message) { order = append(order, n) })
	}
	b.Broadcast(0, Message{NS: "N"})
	b.Pump(context.Background())
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("delivered to %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
}

func TestRunDeliversInBackground(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	var count int
	b.Register(0, func(context.Context, Message) {})
	b.Register(1, func(context.Context, Message) {
		mu.Lock()
		defer mu.Unlock()
		count++
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		b.Run(ctx, 5*time.Millisecond)
		close(done)
	}()
	b.Broadcast(0, Message{NS: "N"})
	read := func() int {
		mu.Lock()
		defer mu.Unlock()
		return count
	}
	deadline := time.After(2 * time.Second)
	for {
		if read() == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("message not delivered by Run")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run leaked: did not return after cancel")
	}
}

func TestRunDrainsQueueOnClose(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	var count int
	for n := 0; n < 3; n++ {
		b.Register(n, func(context.Context, Message) {
			mu.Lock()
			defer mu.Unlock()
			count++
		})
	}
	done := make(chan struct{})
	// A long poll interval: delivery must come from Close's wakeup and
	// final drain, not the ticker.
	go func() {
		b.Run(context.Background(), time.Hour)
		close(done)
	}()
	for i := 0; i < 50; i++ {
		b.Broadcast(i%3, Message{Version: int64(i)})
	}
	b.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Close")
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 100 { // 50 broadcasts x 2 receivers
		t.Fatalf("delivered %d, want 100", count)
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", b.Pending())
	}
}

func TestRunDrainsQueueOnCancel(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	var count int
	b.Register(0, func(context.Context, Message) {})
	b.Register(1, func(context.Context, Message) {
		mu.Lock()
		defer mu.Unlock()
		count++
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		b.Run(ctx, time.Hour)
		close(done)
	}()
	for i := 0; i < 10; i++ {
		b.Broadcast(0, Message{Version: int64(i)})
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 10 {
		t.Fatalf("delivered %d, want 10", count)
	}
}

func TestConcurrentBroadcasts(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	count := 0
	for n := 0; n < 4; n++ {
		b.Register(n, func(context.Context, Message) {
			mu.Lock()
			defer mu.Unlock()
			count++
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Broadcast(i%4, Message{Version: int64(i)})
		}(i)
	}
	wg.Wait()
	delivered := b.Pump(context.Background())
	if delivered != 30 { // 10 broadcasts x 3 receivers
		t.Fatalf("delivered %d, want 30", delivered)
	}
	if count != 30 {
		t.Fatalf("handled %d, want 30", count)
	}
}

// TestStressBroadcastWhileRunning hammers the bus from many goroutines
// while Run concurrently drains, then closes and checks nothing was lost
// and the Run goroutine exited. Run under -race this exercises every
// lock path in the bus.
func TestStressBroadcastWhileRunning(t *testing.T) {
	const (
		nodes        = 8
		broadcasters = 16
		perSender    = 50
	)
	b := NewBus()
	var mu sync.Mutex
	count := 0
	for n := 0; n < nodes; n++ {
		b.Register(n, func(context.Context, Message) {
			mu.Lock()
			defer mu.Unlock()
			count++
		})
	}
	done := make(chan struct{})
	go func() {
		b.Run(context.Background(), time.Millisecond)
		close(done)
	}()
	var wg sync.WaitGroup
	for s := 0; s < broadcasters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				b.Broadcast(s%nodes, Message{Origin: s, Version: int64(i)})
			}
		}(s)
	}
	wg.Wait()
	b.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run goroutine leaked after Close")
	}
	mu.Lock()
	defer mu.Unlock()
	want := broadcasters * perSender * (nodes - 1)
	if count != want {
		t.Fatalf("delivered %d, want %d", count, want)
	}
}
