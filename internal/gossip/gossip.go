// Package gossip implements the inter-node spread of NameRing update
// advertisements (paper §3.3.2, phase 2, step 2).
//
// Each gossip message is a (N_i, H_j, t_k) tuple: "the local version of
// NameRing N_i in node H_j has been updated at timestamp t_k". A node
// receiving a gossip fetches the updated version, merges it into its local
// version, and puts the gossip forward; forwarding stops when the local
// timestamp already covers the advertised one, which prevents propagation
// loop-back.
//
// The Bus is an in-process transport connecting the H2Middlewares of one
// deployment. Delivery is queued: Broadcast enqueues, and either Pump
// (deterministic, used by tests and benchmarks) or Run (background, used
// by the daemon) drains the queue. Fan-out is deterministic: one
// broadcast enqueues its envelopes in ascending node order, so repeated
// simulations deliver in identical order regardless of map hash seeding.
//
// Locking discipline (enforced by cmd/h2vet lockcheck): the bus mutex is
// only ever held inside small defer-scoped helpers, and handlers are
// always invoked with no lock held, so a handler may freely call back
// into Broadcast.
package gossip

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Message is one gossip advertisement.
type Message struct {
	Account string // owning account
	NS      string // namespace of the updated NameRing (N_i)
	Origin  int    // node whose local version changed (H_j)
	Version int64  // update timestamp (t_k), nanoseconds
}

// Handler consumes a gossip message on a node. Handlers may call Broadcast
// to put the message forward.
type Handler func(ctx context.Context, msg Message)

// Broadcaster is the sending side used by middlewares.
type Broadcaster interface {
	// Broadcast enqueues msg for delivery to every node except from.
	Broadcast(from int, msg Message)
}

// Registrar is implemented by transports that can deliver to per-node
// handlers: the Bus itself, and wrappers (such as the chaos fault
// injector's bus) that forward registration to a wrapped Bus.
type Registrar interface {
	Register(node int, h Handler)
}

// Bus is an in-process gossip transport. The zero value is ready to use.
type Bus struct {
	mu sync.Mutex
	//h2vet:guardedby mu
	handlers map[int]Handler
	//h2vet:guardedby mu
	queue []envelope
	//h2vet:guardedby mu
	notify chan struct{} // buffered wakeup for Run
	//h2vet:guardedby mu
	done chan struct{} // closed by Close
	//h2vet:guardedby mu
	closed bool
}

type envelope struct {
	to  int
	msg Message
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	b := &Bus{}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	return b
}

// initLocked lazily allocates the bus internals so the zero value works.
func (b *Bus) initLocked() {
	if b.handlers == nil {
		b.handlers = make(map[int]Handler)
	}
	if b.notify == nil {
		b.notify = make(chan struct{}, 1)
	}
	if b.done == nil {
		b.done = make(chan struct{})
	}
}

// Register installs the handler for a node. Registering a node twice
// replaces its handler.
func (b *Bus) Register(node int, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	b.handlers[node] = h
}

// Broadcast enqueues msg for every registered node except from, in
// ascending node order. Broadcasts on a closed bus are dropped.
func (b *Bus) Broadcast(from int, msg Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	if b.closed {
		return
	}
	nodes := make([]int, 0, len(b.handlers))
	for node := range b.handlers {
		if node != from {
			nodes = append(nodes, node)
		}
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		b.queue = append(b.queue, envelope{to: node, msg: msg})
	}
	// Non-blocking wakeup; Run coalesces missed signals via its ticker.
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// pop dequeues the next envelope and resolves its handler under the lock.
func (b *Bus) pop() (envelope, Handler, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return envelope{}, nil, false
	}
	env := b.queue[0]
	b.queue = b.queue[1:]
	return env, b.handlers[env.to], true
}

// Pump synchronously delivers every queued message, including messages
// enqueued by handlers during the pump, until the queue is empty. It
// returns the number of messages delivered. Tests and benchmarks use Pump
// to drive the protocol deterministically. Handlers run with no bus lock
// held.
func (b *Bus) Pump(ctx context.Context) int {
	delivered := 0
	for {
		env, h, ok := b.pop()
		if !ok {
			return delivered
		}
		if h != nil {
			h(ctx, env.msg)
		}
		delivered++
	}
}

// Pending reports the number of undelivered messages.
func (b *Bus) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Close marks the bus closed and wakes Run, which drains the remaining
// queue and returns. Later Broadcasts are dropped; Close is idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	if b.closed {
		return
	}
	b.closed = true
	close(b.done)
}

// doneCh returns the close-notification channel, allocating it if needed.
func (b *Bus) doneCh() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	return b.done
}

// notifyCh returns the broadcast wakeup channel, allocating it if needed.
func (b *Bus) notifyCh() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	return b.notify
}

// Run delivers messages until ctx is cancelled or the bus is closed,
// waking on new broadcasts and polling at the given interval as a safety
// net. Messages already queued when Run stops are drained before it
// returns, so no accepted broadcast is lost.
func (b *Bus) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	notify, done := b.notifyCh(), b.doneCh()
	for {
		b.Pump(ctx)
		select {
		case <-ctx.Done():
			b.Pump(ctx) // final drain: deliver everything accepted so far
			return
		case <-done:
			b.Pump(ctx)
			return
		case <-notify:
		case <-ticker.C:
		}
	}
}
