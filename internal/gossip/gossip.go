// Package gossip implements the inter-node spread of NameRing update
// advertisements (paper §3.3.2, phase 2, step 2).
//
// Each gossip message is a (N_i, H_j, t_k) tuple: "the local version of
// NameRing N_i in node H_j has been updated at timestamp t_k". A node
// receiving a gossip fetches the updated version, merges it into its local
// version, and puts the gossip forward; forwarding stops when the local
// timestamp already covers the advertised one, which prevents propagation
// loop-back.
//
// The Bus is an in-process transport connecting the H2Middlewares of one
// deployment. Delivery is queued: Broadcast enqueues, and either Pump
// (deterministic, used by tests and benchmarks) or Run (background, used
// by the daemon) drains the queue.
package gossip

import (
	"context"
	"sync"
	"time"
)

// Message is one gossip advertisement.
type Message struct {
	Account string // owning account
	NS      string // namespace of the updated NameRing (N_i)
	Origin  int    // node whose local version changed (H_j)
	Version int64  // update timestamp (t_k), nanoseconds
}

// Handler consumes a gossip message on a node. Handlers may call Broadcast
// to put the message forward.
type Handler func(ctx context.Context, msg Message)

// Broadcaster is the sending side used by middlewares.
type Broadcaster interface {
	// Broadcast enqueues msg for delivery to every node except from.
	Broadcast(from int, msg Message)
}

// Bus is an in-process gossip transport. The zero value is ready to use.
type Bus struct {
	mu       sync.Mutex
	handlers map[int]Handler
	queue    []envelope
	notify   chan struct{} // closed/remade to wake Run
}

type envelope struct {
	to  int
	msg Message
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{handlers: make(map[int]Handler), notify: make(chan struct{}, 1)}
}

// Register installs the handler for a node. Registering a node twice
// replaces its handler.
func (b *Bus) Register(node int, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[node] = h
}

// Broadcast enqueues msg for every registered node except from.
func (b *Bus) Broadcast(from int, msg Message) {
	b.mu.Lock()
	for node := range b.handlers {
		if node != from {
			b.queue = append(b.queue, envelope{to: node, msg: msg})
		}
	}
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// Pump synchronously delivers every queued message, including messages
// enqueued by handlers during the pump, until the queue is empty. It
// returns the number of messages delivered. Tests and benchmarks use Pump
// to drive the protocol deterministically.
func (b *Bus) Pump(ctx context.Context) int {
	delivered := 0
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.mu.Unlock()
			return delivered
		}
		env := b.queue[0]
		b.queue = b.queue[1:]
		h := b.handlers[env.to]
		b.mu.Unlock()
		if h != nil {
			h(ctx, env.msg)
		}
		delivered++
	}
}

// Pending reports the number of undelivered messages.
func (b *Bus) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Run delivers messages until ctx is cancelled, waking on new broadcasts
// and polling at the given interval as a safety net.
func (b *Bus) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		b.Pump(ctx)
		select {
		case <-ctx.Done():
			return
		case <-b.notify:
		case <-ticker.C:
		}
	}
}
