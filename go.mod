module github.com/h2cloud/h2cloud

go 1.22
