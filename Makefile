# H2Cloud developer targets (pure Go stdlib; no external dependencies).

GO ?= go

.PHONY: all build lint lint-json lint-timed test race bench bench-smoke bench-wallclock fuzz experiments examples tools clean

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Repo-specific static analysis: per-unit rules (virtual-time,
# map-iteration-determinism, lock-hygiene, dropped-error, loop-backoff)
# plus whole-program rules (costcheck, lockorder, sentinelcheck,
# guardcheck, leakcheck, alloccheck, poolcheck, ctxcheck, atomiccheck,
# deadignore) over a shared typed module with an RTA-refined call graph
# (see DESIGN.md).
lint:
	$(GO) run ./cmd/h2vet ./...

# Machine-readable findings for the CI baseline gate: emits h2vet.json.
# Exits 1 on findings absent from h2vet.baseline.json and 3 on baseline
# entries that no longer fire (stale suppressions must be pruned).
lint-json:
	$(GO) run ./cmd/h2vet -json -baseline h2vet.baseline.json ./... > h2vet.json

# Wall-clock guard for the whole-program analyses: make lint must finish
# within 2x the committed budget (seconds in lint.budget; 50s covers the
# v4 dataflow rules plus CI cold-cache compile — warm local runs take
# ~4s). A blowup usually means an analyzer went superlinear on the call
# graph or the RTA fixpoint stopped converging.
lint-timed:
	@start=$$(date +%s); $(MAKE) lint; end=$$(date +%s); \
	budget=$$(cat lint.budget); elapsed=$$((end-start)); \
	echo "lint took $${elapsed}s (budget $${budget}s, limit $$((budget*2))s)"; \
	if [ $$elapsed -gt $$((budget*2)) ]; then \
		echo "make lint exceeded 2x lint.budget; speed it up or justify raising the budget"; \
		exit 1; \
	fi

test:
	$(GO) test ./...

# The four packages whose tests exercise real concurrency (pipelined
# subtree engine, replica fan-out, gossip, background maintenance) get a
# second -count=2 pass: reusing state across runs shakes out leaked
# goroutines and order-dependent schedules the first pass misses.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/pipeline/ ./internal/cluster/ ./internal/h2fs/ ./internal/gossip/

# One testing.B benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Fast CI benchmark: the deep-tree sequential-vs-pipelined comparison,
# emitting out/BENCH_subtree.json for the artifact gate.
bench-smoke:
	$(GO) run ./cmd/h2bench -exp subtree -json out

# Wall-clock hot-path microbenchmarks (codec, ring placement, merge,
# pathdb scan, cluster fan-out), emitting out/BENCH_hotpath.json. CI
# gates the deterministic allocs/op columns against committed ceilings;
# ns/op is informational. Deliberately not part of '-exp all': results/
# must stay deterministic and this experiment measures the wall clock.
bench-wallclock:
	$(GO) run ./cmd/h2bench -exp hotpath -quick -json out

# Short fuzzing pass over the codecs, path cleaner, and h2vet's
# directive/flag parsers.
fuzz:
	$(GO) test -fuzz=FuzzDecodeNameRing -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeDir -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzNameRingDecodeCompat -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzDirDecodeCompat -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParsePatchKey -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeShardManifest -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParseExtentKey -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzClean -fuzztime=10s ./internal/fsapi/
	$(GO) test -fuzz=FuzzIgnoreDirective -fuzztime=10s ./cmd/h2vet/
	$(GO) test -fuzz=FuzzRulesFlag -fuzztime=10s ./cmd/h2vet/

# Regenerate the paper's evaluation (Table 1, Figures 7-15, RTT, headline,
# shootout, ablations) into results/.
experiments:
	$(GO) run ./cmd/h2bench -exp all -csv results | tee results/h2bench_full.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gossipdemo
	$(GO) run ./examples/failover
	$(GO) run ./examples/shootout
	$(GO) run ./examples/mirror ./internal/core

tools:
	$(GO) build -o bin/h2cloudd ./cmd/h2cloudd
	$(GO) build -o bin/h2cli ./cmd/h2cli
	$(GO) build -o bin/h2bench ./cmd/h2bench
	$(GO) build -o bin/h2inspect ./cmd/h2inspect

clean:
	rm -rf bin
