package h2cloud_test

import (
	"context"
	"fmt"
	"log"

	"github.com/h2cloud/h2cloud"
)

// Example shows the whole H2Cloud flow: build a cloud, attach a
// middleware, and use the filesystem — including the O(1) directory MOVE
// that is the paper's headline property.
func Example() {
	ctx := context.Background()
	cloud := h2cloud.NewSwiftLikeCluster()
	mw, err := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := mw.CreateAccount(ctx, "alice"); err != nil {
		log.Fatal(err)
	}
	fs := mw.FS("alice")

	_ = fs.Mkdir(ctx, "/photos")
	_ = fs.WriteFile(ctx, "/photos/cat.jpg", []byte("meow"))
	_ = fs.Mkdir(ctx, "/archive")
	_ = fs.Move(ctx, "/photos", "/archive/photos-2018")

	data, _ := fs.ReadFile(ctx, "/archive/photos-2018/cat.jpg")
	fmt.Println(string(data))
	// Output: meow
}

// ExampleMiddleware_AccessRelative demonstrates the quick O(1) access
// method (§3.2): resolve a directory's namespace once, then address its
// children with a single object GET each, regardless of depth.
func ExampleMiddleware_AccessRelative() {
	ctx := context.Background()
	cloud := h2cloud.NewSwiftLikeCluster()
	mw, _ := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
	_ = mw.CreateAccount(ctx, "alice")
	fs := mw.FS("alice")
	_ = fs.Mkdir(ctx, "/very")
	_ = fs.Mkdir(ctx, "/very/deep")
	_ = fs.Mkdir(ctx, "/very/deep/directory")
	_ = fs.WriteFile(ctx, "/very/deep/directory/note.txt", []byte("found me in O(1)"))

	ns, _ := mw.ResolveNS(ctx, "alice", "/very/deep/directory")
	data, _, _ := mw.AccessRelative(ctx, "alice", ns+"::note.txt")
	fmt.Println(string(data))
	// Output: found me in O(1)
}

// ExampleRename renames in place; RENAME is the special case of MOVE the
// paper measures alongside it.
func ExampleRename() {
	ctx := context.Background()
	cloud := h2cloud.NewSwiftLikeCluster()
	mw, _ := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
	_ = mw.CreateAccount(ctx, "alice")
	fs := mw.FS("alice")
	_ = fs.WriteFile(ctx, "/draft.txt", []byte("v1"))
	_ = h2cloud.Rename(ctx, fs, "/draft.txt", "final.txt")

	entries, _ := fs.List(ctx, "/", false)
	for _, e := range entries {
		fmt.Println(e.Name)
	}
	// Output: final.txt
}
