// Command h2cli is the command-line client for an H2Cloud server.
//
// Usage:
//
//	h2cli -server http://127.0.0.1:8420 -account alice <command> [args]
//
// Commands:
//
//	account-create              create the account
//	account-delete              delete the account and its filesystem
//	mkdir  /path                create a directory
//	rmdir  /path                remove a directory subtree
//	ls     /path [-l]           list a directory (-l for details)
//	put    /remote local-file   upload a file ("-" reads stdin)
//	get    /remote [local-file] download a file (default stdout)
//	rm     /path                remove a file
//	mv     /src /dst            move or rename
//	cp     /src /dst            copy
//	stat   /path                show entry metadata
//	sync-up /remote local-dir   mirror a local directory into the cloud
//	du                          account usage (directories, files, bytes)
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"github.com/h2cloud/h2cloud"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: h2cli -server URL -account NAME <command> [args]  (see -h)")
	os.Exit(2)
}

func main() {
	server := "http://127.0.0.1:8420"
	account := ""
	args := os.Args[1:]
	// Tiny manual flag scan so flags may precede the subcommand.
	var rest []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-server", "--server":
			i++
			if i >= len(args) {
				usage()
			}
			server = args[i]
		case "-account", "--account":
			i++
			if i >= len(args) {
				usage()
			}
			account = args[i]
		case "-h", "--help":
			usage()
		default:
			rest = append(rest, args[i])
		}
	}
	if len(rest) == 0 {
		usage()
	}
	if account == "" {
		account = os.Getenv("H2CLOUD_ACCOUNT")
	}
	if account == "" {
		fail(fmt.Errorf("no account: pass -account or set H2CLOUD_ACCOUNT"))
	}
	client := h2cloud.NewClient(server)
	fs := client.FS(account)
	ctx := context.Background()
	cmd, cargs := rest[0], rest[1:]

	switch cmd {
	case "account-create":
		check(client.CreateAccount(ctx, account))
	case "account-delete":
		check(client.DeleteAccount(ctx, account))
	case "mkdir":
		need(cargs, 1)
		check(fs.Mkdir(ctx, cargs[0]))
	case "rmdir":
		need(cargs, 1)
		check(fs.Rmdir(ctx, cargs[0]))
	case "rm":
		need(cargs, 1)
		check(fs.Remove(ctx, cargs[0]))
	case "mv":
		need(cargs, 2)
		check(fs.Move(ctx, cargs[0], cargs[1]))
	case "cp":
		need(cargs, 2)
		check(fs.Copy(ctx, cargs[0], cargs[1]))
	case "ls":
		need(cargs, 1)
		detail := len(cargs) > 1 && cargs[1] == "-l"
		entries, err := fs.List(ctx, cargs[0], detail)
		check(err)
		for _, e := range entries {
			if detail {
				kind := "-"
				if e.IsDir {
					kind = "d"
				}
				fmt.Printf("%s %10d %s %s\n", kind, e.Size, e.ModTime.Format("2006-01-02 15:04:05"), e.Name)
			} else {
				suffix := ""
				if e.IsDir {
					suffix = "/"
				}
				fmt.Println(e.Name + suffix)
			}
		}
	case "stat":
		need(cargs, 1)
		info, err := fs.Stat(ctx, cargs[0])
		check(err)
		kind := "file"
		if info.IsDir {
			kind = "directory"
		}
		fmt.Printf("name: %s\ntype: %s\nsize: %d\nmodified: %s\n",
			info.Name, kind, info.Size, info.ModTime.Format("2006-01-02 15:04:05"))
	case "put":
		need(cargs, 2)
		var data []byte
		var err error
		if cargs[1] == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(cargs[1])
		}
		check(err)
		check(fs.WriteFile(ctx, cargs[0], data))
	case "du":
		u, err := client.Usage(ctx, account)
		check(err)
		fmt.Printf("directories: %d\nfiles: %d\nbytes: %d\n", u.Dirs, u.Files, u.Bytes)
	case "sync-up":
		need(cargs, 2)
		n, err := syncUp(ctx, fs, cargs[0], cargs[1])
		check(err)
		fmt.Printf("uploaded %d files\n", n)
	case "get":
		if len(cargs) < 1 {
			usage()
		}
		data, err := fs.ReadFile(ctx, cargs[0])
		check(err)
		if len(cargs) > 1 {
			check(os.WriteFile(cargs[1], data, 0o644))
		} else {
			_, _ = os.Stdout.Write(data)
		}
	default:
		usage()
	}
}

// syncUp mirrors a local directory tree into the cloud under remoteRoot,
// creating directories as needed and overwriting existing files.
func syncUp(ctx context.Context, fsys *h2cloud.ClientFS, remoteRoot, localDir string) (int, error) {
	if err := fsys.Mkdir(ctx, remoteRoot); err != nil && !errors.Is(err, h2cloud.ErrExists) {
		return 0, err
	}
	files := 0
	err := filepath.WalkDir(localDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(localDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".") {
			if d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		remote := remoteRoot + "/" + filepath.ToSlash(rel)
		if remoteRoot == "/" {
			remote = "/" + filepath.ToSlash(rel)
		}
		if d.IsDir() {
			if err := fsys.Mkdir(ctx, remote); err != nil && !errors.Is(err, h2cloud.ErrExists) {
				return err
			}
			return nil
		}
		info, err := d.Info()
		if err != nil || !info.Mode().IsRegular() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := fsys.WriteFile(ctx, remote, data); err != nil {
			return err
		}
		files++
		return nil
	})
	return files, err
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "h2cli:", err)
	os.Exit(1)
}
