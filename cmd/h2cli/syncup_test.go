package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/h2cloud/h2cloud"
)

func newClientFS(t *testing.T) *h2cloud.ClientFS {
	t.Helper()
	cloud, err := h2cloud.NewCluster(h2cloud.ClusterConfig{Profile: h2cloud.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.CreateAccount(context.Background(), "cli"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h2cloud.NewServer(mw))
	t.Cleanup(ts.Close)
	return h2cloud.NewClient(ts.URL).FS("cli")
}

func TestSyncUpMirrorsTree(t *testing.T) {
	fs := newClientFS(t)
	ctx := context.Background()
	local := t.TempDir()
	mustWrite := func(rel, content string) {
		t.Helper()
		p := filepath.Join(local, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("a.txt", "A")
	mustWrite("sub/b.txt", "B")
	mustWrite("sub/deep/c.txt", "C")
	mustWrite(".hidden/skipped.txt", "no")
	mustWrite(".dotfile", "no")

	n, err := syncUp(ctx, fs, "/backup", local)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("uploaded %d files, want 3 (dotfiles skipped)", n)
	}
	for rel, want := range map[string]string{
		"/backup/a.txt":          "A",
		"/backup/sub/b.txt":      "B",
		"/backup/sub/deep/c.txt": "C",
	} {
		data, err := fs.ReadFile(ctx, rel)
		if err != nil {
			t.Fatalf("read %s: %v", rel, err)
		}
		if string(data) != want {
			t.Fatalf("%s = %q", rel, data)
		}
	}
	if _, err := fs.Stat(ctx, "/backup/.hidden"); err == nil {
		t.Fatal("dot-directory was synced")
	}

	// Re-sync is idempotent for dirs and overwrites files.
	mustWrite("a.txt", "A2")
	n, err = syncUp(ctx, fs, "/backup", local)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("re-sync uploaded %d files", n)
	}
	data, _ := fs.ReadFile(ctx, "/backup/a.txt")
	if string(data) != "A2" {
		t.Fatalf("overwrite = %q", data)
	}
}

func TestSyncUpToRoot(t *testing.T) {
	fs := newClientFS(t)
	local := t.TempDir()
	if err := os.WriteFile(filepath.Join(local, "r.txt"), []byte("root"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := syncUp(context.Background(), fs, "/", local)
	if err != nil || n != 1 {
		t.Fatalf("syncUp to root: n=%d err=%v", n, err)
	}
	data, err := fs.ReadFile(context.Background(), "/r.txt")
	if err != nil || string(data) != "root" {
		t.Fatalf("root sync read = %q, %v", data, err)
	}
}
