package main

import (
	"strings"
)

// collectLineDirectives gathers every "//h2vet:<name> <args>" directive
// across the given units into file -> line -> args. A directive applies
// to its own line and, by convention, the line below it (the declaration
// it annotates); consumers decide which lines to consult.
func collectLineDirectives(units []*unit, name string) map[string]map[int]string {
	out := map[string]map[int]string{}
	prefix := "//h2vet:" + name
	for _, u := range units {
		for _, f := range u.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, prefix)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					pos := u.fset.Position(c.Pos())
					lines := out[pos.Filename]
					if lines == nil {
						lines = map[int]string{}
						out[pos.Filename] = lines
					}
					lines[pos.Line] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return out
}

// directiveFor looks up a directive annotating the declaration at pos:
// on the same line or the line above.
func directiveFor(dirs map[string]map[int]string, file string, line int) (string, bool) {
	lines := dirs[file]
	if lines == nil {
		return "", false
	}
	if args, ok := lines[line]; ok {
		return args, true
	}
	if args, ok := lines[line-1]; ok {
		return args, true
	}
	return "", false
}
