package main

import (
	"go/token"
	"sort"
	"strconv"
)

// deadignoreAnalyzer reports //h2vet:ignore directives that have no
// effect: the rule name is a typo, or no diagnostic of that rule fires
// on the directive's line or the line below it. Dead directives are how
// a suppression outlives the code it excused — the bug pattern comes
// back and the stale ignore swallows it silently.
//
// The rule has no Run/RunProgram of its own: the driver tracks which
// directives actually suppressed a diagnostic while the other analyzers
// run, then reports the remainder (see deadIgnores). When -rules
// restricts the analyzer set, directives for rules that did not run are
// given the benefit of the doubt; only unknown rule names are still
// reported. A deadignore finding is itself suppressible with an explicit
// "//h2vet:ignore deadignore <reason>" directive (a blanket "all" does
// not apply — it would excuse its own staleness).
var deadignoreAnalyzer = &Analyzer{
	Name: "deadignore",
	Doc:  "every //h2vet:ignore directive suppresses a real diagnostic of a known rule",
}

// ignoreDirective is one parsed //h2vet:ignore occurrence.
type ignoreDirective struct {
	pos  token.Position
	rule string
}

// collectIgnoreDirectives parses every //h2vet:ignore directive in the
// loaded module, deduplicated (the same file can be parsed into both a
// source unit and an analysis unit) and position-sorted.
func collectIgnoreDirectives(prog *Program) []ignoreDirective {
	seen := map[string]bool{}
	var out []ignoreDirective
	for _, units := range [][]*unit{prog.source, prog.units} {
		for _, u := range units {
			for _, f := range u.files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						rule, ok := parseIgnoreDirective(c.Text)
						if !ok {
							continue
						}
						pos := u.fset.Position(c.Pos())
						key := pos.Filename + "\x00" + rule + "\x00" + strconv.Itoa(pos.Line)
						if seen[key] {
							continue
						}
						seen[key] = true
						out = append(out, ignoreDirective{pos: pos, rule: rule})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.rule < b.rule
	})
	return out
}

// deadIgnores runs after every analyzer has finished and reports the
// directives that suppressed nothing. used is the merged usage table the
// passes recorded through markUsed.
func deadIgnores(prog *Program, analyzers []*Analyzer, subset bool, used map[string]map[int]map[string]bool) []Diagnostic {
	known := map[string]bool{"all": true}
	for _, a := range allAnalyzers() {
		known[a.Name] = true
	}
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	ignores := programIgnores(prog)
	analyzed := analyzedFiles(prog)

	var diags []Diagnostic
	for _, dir := range collectIgnoreDirectives(prog) {
		if !analyzed[dir.pos.Filename] {
			continue
		}
		if dir.rule == deadignoreAnalyzer.Name {
			continue // meta-suppressions are judged by what they annotate
		}
		// An explicit deadignore suppression on the directive's line or
		// the line above keeps it; a blanket "all" does not.
		suppressed := false
		for _, line := range []int{dir.pos.Line, dir.pos.Line - 1} {
			if ignores[dir.pos.Filename][line][deadignoreAnalyzer.Name] {
				suppressed = true
			}
		}
		if suppressed {
			continue
		}
		if !known[dir.rule] {
			diags = append(diags, Diagnostic{
				Pos:  dir.pos,
				Rule: deadignoreAnalyzer.Name,
				Msg:  "//h2vet:ignore " + dir.rule + " suppresses nothing: unknown rule (see h2vet -list)",
			})
			continue
		}
		if subset && (dir.rule == "all" || !selected[dir.rule]) {
			continue // the rule did not run; cannot judge the directive
		}
		if !used[dir.pos.Filename][dir.pos.Line][dir.rule] {
			msg := "//h2vet:ignore " + dir.rule + " suppresses nothing: no " + dir.rule + " finding on this line or the next; delete the stale directive"
			if dir.rule == "all" {
				msg = "//h2vet:ignore all suppresses nothing: no finding on this line or the next; delete the stale directive"
			}
			diags = append(diags, Diagnostic{Pos: dir.pos, Rule: deadignoreAnalyzer.Name, Msg: msg})
		}
	}
	return diags
}
