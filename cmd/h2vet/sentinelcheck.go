package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// sentinelcheckAnalyzer enforces the error-taxonomy invariants that keep
// typed sentinels (ErrNotFound, ErrNodeDown, ErrNoQuorum, ...) usable
// after wrapping and across the HTTP wire:
//
// Per-unit (tests included):
//   - sentinels must be tested with errors.Is, never == / != — a wrapped
//     sentinel compares unequal and the check silently stops matching.
//
// Per-unit (non-test code):
//   - error conditions must not be detected by string matching: no
//     ==/!= or strings.Contains/HasPrefix/HasSuffix over err.Error();
//   - fmt.Errorf with an error argument must use %w so errors.Is sees
//     through the wrap.
//
// Whole-program:
//   - every exported Err* sentinel of internal/fsapi and
//     internal/objstore must appear in httpapi's server status mapping
//     (writeErr) — otherwise it crosses the wire as a bare 500 and the
//     client loses the type;
//   - the server's code strings and the client's reconstruction table
//     (decodeErr) must agree in both directions, where a code may
//     collapse several sentinels into one (objstore.ErrNotFound and
//     fsapi.ErrNotFound both travel as "not_found") as long as the
//     reconstructed sentinel is one the server maps to that same code.
var sentinelcheckAnalyzer = &Analyzer{
	Name:       "sentinelcheck",
	Doc:        "errors.Is over ==/string-matching; sentinels survive the httpapi wire",
	Run:        runSentinelUnit,
	RunProgram: runSentinelProgram,
}

func runSentinelUnit(p *Pass) {
	for _, f := range p.Files {
		isTest := p.IsTestFile(f.Pos())
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if obj := sentinelVar(p.Info, side); obj != nil {
						p.Reportf(n.Pos(), "sentinel %s compared with %s; use errors.Is so wrapped errors still match", shortName(obj), n.Op)
						return true
					}
				}
				if !isTest && (isErrorStringCall(p.Info, n.X) || isErrorStringCall(p.Info, n.Y)) {
					p.Reportf(n.Pos(), "error detected by string comparison on err.Error(); match the typed sentinel with errors.Is")
				}
			case *ast.CallExpr:
				if isTest {
					return true
				}
				if p.pkgQualifier(f, n) == "strings" {
					switch calleeName(n) {
					case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
						for _, arg := range n.Args {
							if isErrorStringCall(p.Info, arg) {
								p.Reportf(n.Pos(), "error detected by strings.%s over err.Error(); match the typed sentinel with errors.Is", calleeName(n))
								break
							}
						}
					}
				}
				if p.pkgQualifier(f, n) == "fmt" && calleeName(n) == "Errorf" {
					checkErrorfWrap(p, n)
				}
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error argument but
// never use the %w verb, which strips the sentinel from the chain.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorTyped(p.Info, arg) {
			p.Reportf(call.Pos(), "fmt.Errorf passes an error without %%w; the sentinel is flattened to text and errors.Is stops matching")
			return
		}
	}
}

// sentinelVar resolves an expression to an exported package-level Err*
// variable of type error, or nil.
func sentinelVar(info *types.Info, e ast.Expr) types.Object {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(x)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(x.Sel)
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !strings.HasPrefix(v.Name(), "Err") || !v.Exported() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorStringCall reports whether e is a call of Error() on an error
// value.
func isErrorStringCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && isErrorType(t)
}

func isErrorTyped(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isErrorType(t)
}

// isErrorType reports whether t implements the built-in error interface.
func isErrorType(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// --- whole-program: httpapi wire tables ------------------------------

// wireTables is what sentinel-taxonomy facts the program analyzer
// extracts from internal/httpapi.
type wireTables struct {
	// server: sentinel objKey -> code, plus positions for reporting.
	serverCodes map[string]string
	serverNames map[string]string // objKey -> display name
	serverPos   map[string]token.Pos
	writeErrPos token.Pos
	// client: code -> sentinel objKey.
	clientSentinels map[string]string
	clientNames     map[string]string // code -> display name
	clientPos       map[string]token.Pos
	decodeErrPos    token.Pos
}

func runSentinelProgram(p *ProgramPass) {
	tables := extractWireTables(p.Prog)
	if tables == nil {
		return // module has no httpapi package (golden tests)
	}

	// Every exported sentinel of the wire-crossing packages must appear in
	// the server mapping.
	for _, suffix := range []string{"internal/fsapi", "internal/objstore"} {
		pkg := p.Prog.lookupPackage(suffix)
		if pkg == nil {
			continue
		}
		scope := pkg.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !strings.HasPrefix(name, "Err") || !v.Exported() || !isErrorType(v.Type()) {
				continue
			}
			if _, mapped := tables.serverCodes[objKey(v)]; !mapped {
				p.Reportf(v.Pos(), "sentinel %s.%s is not mapped in httpapi writeErr; it crosses the wire as a bare 500 and the client loses the type", pkg.Name(), name)
			}
		}
	}

	// Server -> client: every code the server emits must reconstruct to a
	// sentinel the server maps to that same code (alias collapse allowed).
	serverByCode := map[string][]string{} // code -> sentinel objKeys
	var serverKeys []string
	for key := range tables.serverCodes {
		serverKeys = append(serverKeys, key)
	}
	sort.Strings(serverKeys)
	for _, key := range serverKeys {
		serverByCode[tables.serverCodes[key]] = append(serverByCode[tables.serverCodes[key]], key)
	}
	var codes []string
	for code := range serverByCode {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		back, ok := tables.clientSentinels[code]
		if !ok {
			p.Reportf(tables.serverPos[serverByCode[code][0]], "error code %q mapped by writeErr has no reconstruction case in decodeErr; clients get an untyped error", code)
			continue
		}
		if !containsString(serverByCode[code], back) {
			p.Reportf(tables.clientPos[code], "decodeErr reconstructs code %q as %s, but writeErr maps %s to a different code; the sentinel mutates across the wire", code, tables.clientNames[code], tables.clientNames[code])
		}
	}

	// Client -> server: every code the client recognizes must be one the
	// server can emit.
	var clientCodes []string
	for code := range tables.clientSentinels {
		clientCodes = append(clientCodes, code)
	}
	sort.Strings(clientCodes)
	for _, code := range clientCodes {
		if _, ok := serverByCode[code]; !ok {
			p.Reportf(tables.clientPos[code], "decodeErr handles code %q that writeErr never emits; dead reconstruction case or missing server mapping", code)
		}
	}
}

// extractWireTables parses httpapi's writeErr and decodeErr switches.
func extractWireTables(prog *Program) *wireTables {
	pkg := prog.lookupPackage("internal/httpapi")
	if pkg == nil {
		return nil
	}
	var httpUnit *unit
	for _, u := range prog.source {
		if u.pkg == pkg {
			httpUnit = u
		}
	}
	if httpUnit == nil {
		return nil
	}
	t := &wireTables{
		serverCodes: map[string]string{}, serverNames: map[string]string{}, serverPos: map[string]token.Pos{},
		clientSentinels: map[string]string{}, clientNames: map[string]string{}, clientPos: map[string]token.Pos{},
	}
	for _, f := range httpUnit.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "writeErr":
				t.writeErrPos = fd.Pos()
				extractServerTable(httpUnit.info, fd, t)
			case "decodeErr":
				t.decodeErrPos = fd.Pos()
				extractClientTable(httpUnit.info, fd, t)
			}
		}
	}
	if !t.writeErrPos.IsValid() || !t.decodeErrPos.IsValid() {
		return nil
	}
	return t
}

// extractServerTable reads writeErr's switch: each case's errors.Is
// calls name sentinels, and the case body assigns the code string.
func extractServerTable(info *types.Info, fd *ast.FuncDecl, t *wireTables) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil {
				continue
			}
			code, ok := caseCodeString(cc.Body)
			if !ok {
				continue
			}
			for _, expr := range cc.List {
				call, ok := ast.Unparen(expr).(*ast.CallExpr)
				if !ok || calleeName(call) != "Is" || len(call.Args) != 2 {
					continue
				}
				obj := sentinelVar(info, call.Args[1])
				if obj == nil {
					continue
				}
				key := objKey(obj)
				t.serverCodes[key] = code
				t.serverNames[key] = shortName(obj)
				t.serverPos[key] = call.Args[1].Pos()
			}
		}
		return true
	})
}

// caseCodeString finds the string literal assigned to a variable named
// "code" in a case body.
func caseCodeString(body []ast.Stmt) (string, bool) {
	for _, stmt := range body {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name != "code" || i >= len(as.Rhs) {
				continue
			}
			if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					return s, true
				}
			}
		}
	}
	return "", false
}

// extractClientTable reads decodeErr's switch over the code field: each
// case maps a code literal to the sentinel assigned in its body.
func extractClientTable(info *types.Info, fd *ast.FuncDecl, t *wireTables) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil {
				continue
			}
			var sentinel types.Object
			for _, bstmt := range cc.Body {
				as, ok := bstmt.(*ast.AssignStmt)
				if !ok {
					continue
				}
				for _, rhs := range as.Rhs {
					if obj := sentinelVar(info, rhs); obj != nil {
						sentinel = obj
					}
				}
			}
			if sentinel == nil {
				continue
			}
			for _, expr := range cc.List {
				lit, ok := ast.Unparen(expr).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				code, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				t.clientSentinels[code] = objKey(sentinel)
				t.clientNames[code] = shortName(sentinel)
				t.clientPos[code] = expr.Pos()
			}
		}
		return true
	})
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
