package main

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path"
	"sort"
	"testing"
)

const testModule = "github.com/h2cloud/h2cloud"

// checkProgram type-checks a mini multi-package module (file name ->
// source, names module-relative like "internal/fake/impl.go") into a
// shared typed universe — the same pipeline h2vet ./... uses — and
// returns one analyzer's formatted diagnostics, per-unit and
// whole-program halves both. Packages named like real module packages
// (internal/objstore, internal/httpapi) shadow the real ones, so golden
// tests control both sides of every whole-program fact.
func checkProgram(t *testing.T, a *Analyzer, files map[string]string) []string {
	t.Helper()
	return checkProgramRules(t, []*Analyzer{a}, files)
}

// checkProgramRules is checkProgram for several analyzers at once —
// deadignore goldens need the suppressed rule and the deadignore driver
// logic running in the same pass.
func checkProgramRules(t *testing.T, analyzers []*Analyzer, files map[string]string) []string {
	t.Helper()
	prog := buildTestProgram(t, files)
	diags := runAll(prog, analyzers, false)
	var out []string
	for _, d := range diags {
		out = append(out, d.String())
	}
	return out
}

// buildTestProgram type-checks a mini module into the shared Program
// shape the whole-program analyzers (and the call-graph goldens) consume.
func buildTestProgram(t *testing.T, files map[string]string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	pkgFiles := map[string][]*ast.File{}
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		p := testModule + "/" + path.Dir(name)
		pkgFiles[p] = append(pkgFiles[p], f)
	}
	var paths []string
	for p := range pkgFiles {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var order []string
	state := map[string]int{}
	var visit func(p string)
	visit = func(p string) {
		if _, ok := pkgFiles[p]; !ok || state[p] != 0 {
			return
		}
		state[p] = 1
		for _, dep := range moduleImports(testModule, pkgFiles[p]) {
			visit(dep)
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}

	imp := &moduleImporter{
		pkgs:     map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	prog := &Program{fset: fset, module: testModule, pkgs: imp.pkgs}
	for _, p := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { t.Logf("type error: %v", err) },
		}
		pkg, _ := conf.Check(p, fset, pkgFiles[p], info)
		imp.add(p, pkg)
		u := &unit{pkgPath: p, module: testModule, fset: fset, files: pkgFiles[p], info: info, pkg: pkg}
		prog.source = append(prog.source, u)
		prog.units = append(prog.units, u)
	}
	return prog
}

// miniObjstore and miniVclock stand in for the real packages in
// costcheck goldens: costcheck finds Store and Charge by package path,
// not by identity with the real module.
const miniObjstore = `package objstore

type Store interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
}
`

const miniVclock = `package vclock

func Charge(d int) {}
`

func TestCostcheck(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			// The old AST-only pass had no concept of "this method never
			// charges": Leaf.Get is a silent cost-model hole only visible
			// through the call graph.
			name: "seeded violations caught",
			impl: `package fake

import (
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

type Leaf struct{}

func (l *Leaf) Put(name string, data []byte) error {
	vclock.Charge(1)
	return nil
}

func (l *Leaf) Get(name string) ([]byte, error) { return nil, nil }

type Wrap struct{ inner objstore.Store }

func (w *Wrap) Put(name string, data []byte) error {
	vclock.Charge(1)
	return w.inner.Put(name, data)
}

func (w *Wrap) Get(name string) ([]byte, error) { return w.inner.Get(name) }
`,
			want: []string{
				"internal/fake/impl.go:15:1: costcheck: Store primitive fake.Leaf.Get never reaches vclock.Charge; its simulated service time is zero (charge the cost model or delegate to a charging Store)",
				"internal/fake/impl.go:20:2: costcheck: charge reachable from delegating Store wrapper method(s) fake.Wrap.Put; the wrapped Store already charges, so this double-counts unless intended (//h2vet:ignore costcheck <reason>)",
			},
		},
		{
			name: "charge through a helper counts",
			impl: `package fake

import "github.com/h2cloud/h2cloud/internal/vclock"

type Leaf struct{}

func (l *Leaf) bill() { vclock.Charge(1) }

func (l *Leaf) Put(name string, data []byte) error {
	l.bill()
	return nil
}

func (l *Leaf) Get(name string) ([]byte, error) {
	l.bill()
	return nil, nil
}
`,
			want: nil,
		},
		{
			name: "pure delegation is not a double charge",
			impl: `package fake

import "github.com/h2cloud/h2cloud/internal/objstore"

type Wrap struct{ inner objstore.Store }

func (w *Wrap) Put(name string, data []byte) error {
	return w.inner.Put(name, data)
}

func (w *Wrap) Get(name string) ([]byte, error) { return w.inner.Get(name) }
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses an intended extra charge",
			impl: `package fake

import (
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

type Wrap struct{ inner objstore.Store }

func (w *Wrap) Put(name string, data []byte) error {
	//h2vet:ignore costcheck models injected latency on top of the wrapped store
	vclock.Charge(1)
	return w.inner.Put(name, data)
}

func (w *Wrap) Get(name string) ([]byte, error) { return w.inner.Get(name) }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, costcheckAnalyzer, map[string]string{
				"internal/objstore/objstore.go": miniObjstore,
				"internal/vclock/vclock.go":     miniVclock,
				"internal/fake/impl.go":         tc.impl,
			})
			expectDiags(t, got, tc.want)
		})
	}
}

// miniObjstoreBatch extends the mini store with the optional Batcher
// interface and the sequential dispatch helper, mirroring the real
// package's shape.
const miniObjstoreBatch = `package objstore

type Store interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
}

type Batcher interface {
	MultiGet(names []string) []error
}

func MultiGet(s Store, names []string) []error {
	if b, ok := s.(Batcher); ok {
		return b.MultiGet(names)
	}
	out := make([]error, len(names))
	for i, name := range names {
		_, out[i] = s.Get(name)
	}
	return out
}
`

func TestCostcheckBatcher(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			// A native batch implementation owns the overlapped fanout
			// window; one that never charges is a silent cost-model hole
			// exactly like an uncharged singular primitive.
			name: "native batch must charge",
			impl: `package fake

import "github.com/h2cloud/h2cloud/internal/vclock"

type Native struct{}

func (n *Native) Put(name string, data []byte) error {
	vclock.Charge(1)
	return nil
}

func (n *Native) Get(name string) ([]byte, error) {
	vclock.Charge(1)
	return nil, nil
}

func (n *Native) MultiGet(names []string) []error { return make([]error, len(names)) }
`,
			want: []string{
				"internal/fake/impl.go:17:1: costcheck: Batcher primitive fake.Native.MultiGet never reaches vclock.Charge; its simulated service time is zero (charge the cost model or delegate to a charging Store)",
			},
		},
		{
			// A wrapper forwarding batches through the dispatch helper must
			// not re-charge: the inner store already accounted the window.
			name: "forwarding wrapper must not re-charge",
			impl: `package fake

import (
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

type Wrap struct{ inner objstore.Store }

func (w *Wrap) Put(name string, data []byte) error { return w.inner.Put(name, data) }

func (w *Wrap) Get(name string) ([]byte, error) { return w.inner.Get(name) }

func (w *Wrap) MultiGet(names []string) []error {
	vclock.Charge(1)
	return objstore.MultiGet(w.inner, names)
}
`,
			want: []string{
				"internal/fake/impl.go:15:2: costcheck: charge reachable from delegating Store wrapper method(s) fake.Wrap.MultiGet; the wrapped Store already charges, so this double-counts unless intended (//h2vet:ignore costcheck <reason>)",
			},
		},
		{
			// Charging batch + clean forwarding + a singular fallback inside
			// the dispatch helper: the canonical shapes are all clean.
			name: "native charge and pure forwarding are clean",
			impl: `package fake

import (
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

type Native struct{}

func (n *Native) Put(name string, data []byte) error {
	vclock.Charge(1)
	return nil
}

func (n *Native) Get(name string) ([]byte, error) {
	vclock.Charge(1)
	return nil, nil
}

func (n *Native) MultiGet(names []string) []error {
	vclock.Charge(len(names))
	return make([]error, len(names))
}

type Wrap struct{ inner objstore.Store }

func (w *Wrap) Put(name string, data []byte) error { return w.inner.Put(name, data) }

func (w *Wrap) Get(name string) ([]byte, error) { return w.inner.Get(name) }

func (w *Wrap) MultiGet(names []string) []error { return objstore.MultiGet(w.inner, names) }
`,
			want: nil,
		},
		{
			name: "ignore directive keeps an intended batch surcharge",
			impl: `package fake

import (
	"github.com/h2cloud/h2cloud/internal/objstore"
	"github.com/h2cloud/h2cloud/internal/vclock"
)

type Wrap struct{ inner objstore.Store }

func (w *Wrap) Put(name string, data []byte) error { return w.inner.Put(name, data) }

func (w *Wrap) Get(name string) ([]byte, error) { return w.inner.Get(name) }

func (w *Wrap) MultiGet(names []string) []error {
	//h2vet:ignore costcheck models a per-batch dispatch latency on top of the inner window
	vclock.Charge(1)
	return objstore.MultiGet(w.inner, names)
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, costcheckAnalyzer, map[string]string{
				"internal/objstore/objstore.go": miniObjstoreBatch,
				"internal/vclock/vclock.go":     miniVclock,
				"internal/fake/impl.go":         tc.impl,
			})
			expectDiags(t, got, tc.want)
		})
	}
}

func TestLockorder(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			// Each function is locally clean (Lock + defer Unlock), so the
			// old per-function lockcheck sees nothing; the AB/BA cycle only
			// exists across the call graph.
			name: "opposite acquisition orders form a cycle",
			src: `package fake

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) AB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.lockB()
}

func (s *S) lockB() {
	s.b.Lock()
	defer s.b.Unlock()
}

func (s *S) BA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.lockA()
}

func (s *S) lockA() {
	s.a.Lock()
	defer s.a.Unlock()
}
`,
			want: []string{
				"internal/fake/locks.go:13:2: lockorder: lock-order cycle between fake.S.a -> fake.S.b -> fake.S.a; acquire these mutexes in one consistent order",
			},
		},
		{
			name: "same-mutex re-entry through a callee",
			src: `package fake

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner()
}

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
`,
			want: []string{
				"internal/fake/locks.go:10:2: lockorder: mutex fake.S.mu may be re-acquired while already held (same-mutex re-entry deadlocks)",
			},
		},
		{
			name: "consistent order is clean",
			src: `package fake

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) AB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.lockB()
}

func (s *S) lockB() {
	s.b.Lock()
	defer s.b.Unlock()
}
`,
			want: nil,
		},
		{
			name: "explicit unlock closes the span before the call",
			src: `package fake

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Outer() {
	s.mu.Lock()
	v := 1
	_ = v
	s.mu.Unlock()
	s.inner()
}

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses an intended hierarchy",
			src: `package fake

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//h2vet:ignore lockorder the two instances are ordered parent-before-child by construction
	s.inner()
}

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, lockorderAnalyzer, map[string]string{
				"internal/fake/locks.go": tc.src,
			})
			expectDiags(t, got, tc.want)
		})
	}
}

func TestSentinelcheckUnit(t *testing.T) {
	cases := []struct {
		name string
		file string
		src  string
		want []string
	}{
		{
			name: "seeded violations caught",
			file: "internal/fake/errs.go",
			src: `package fake

import (
	"errors"
	"fmt"
	"strings"
)

var ErrGone = errors.New("gone")

func eq(err error) bool {
	return err == ErrGone
}

func wrapless(err error) error {
	return fmt.Errorf("op failed: %v", err)
}

func sniff(err error) bool {
	return strings.Contains(err.Error(), "gone")
}

func ok(err error) bool {
	return errors.Is(err, ErrGone)
}
`,
			want: []string{
				"internal/fake/errs.go:12:9: sentinelcheck: sentinel fake.ErrGone compared with ==; use errors.Is so wrapped errors still match",
				"internal/fake/errs.go:16:9: sentinelcheck: fmt.Errorf passes an error without %w; the sentinel is flattened to text and errors.Is stops matching",
				"internal/fake/errs.go:20:9: sentinelcheck: error detected by strings.Contains over err.Error(); match the typed sentinel with errors.Is",
			},
		},
		{
			// == on a sentinel is wrong even in tests, but %v-wrapping and
			// string matching are test-only conveniences.
			name: "test files keep the == rule but drop the wrap rules",
			file: "internal/fake/fake_test.go",
			src: `package fake

import (
	"errors"
	"fmt"
)

var ErrGone = errors.New("gone")

func eq(err error) bool {
	return err != ErrGone
}

func wrapless(err error) error {
	return fmt.Errorf("op failed: %v", err)
}
`,
			want: []string{
				"internal/fake/fake_test.go:11:9: sentinelcheck: sentinel fake.ErrGone compared with !=; use errors.Is so wrapped errors still match",
			},
		},
		{
			name: "ignore directive suppresses an intended identity check",
			file: "internal/fake/errs.go",
			src: `package fake

import "errors"

var ErrGone = errors.New("gone")

func eq(err error) bool {
	//h2vet:ignore sentinelcheck identity comparison against the unwrapped value is intended
	return err == ErrGone
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, sentinelcheckAnalyzer, map[string]string{tc.file: tc.src})
			expectDiags(t, got, tc.want)
		})
	}
}

func TestSentinelcheckWireTables(t *testing.T) {
	cases := []struct {
		name    string
		fsapi   string
		httpapi string
		want    []string
	}{
		{
			name: "seeded table drift caught",
			fsapi: `package fsapi

import "errors"

var (
	ErrMissing = errors.New("missing")
	ErrOrphan  = errors.New("orphan")
	ErrStale   = errors.New("stale")
)
`,
			httpapi: `package httpapi

import (
	"errors"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

func writeErr(err error) (int, string) {
	status, code := 500, "internal"
	switch {
	case errors.Is(err, fsapi.ErrMissing):
		status, code = 404, "missing"
	case errors.Is(err, fsapi.ErrOrphan):
		status, code = 410, "orphan"
	}
	return status, code
}

func decodeErr(code string) error {
	var base error
	switch code {
	case "missing":
		base = fsapi.ErrMissing
	case "stale":
		base = fsapi.ErrStale
	}
	return base
}
`,
			want: []string{
				"internal/fsapi/fsapi.go:8:2: sentinelcheck: sentinel fsapi.ErrStale is not mapped in httpapi writeErr; it crosses the wire as a bare 500 and the client loses the type",
				"internal/httpapi/api.go:14:22: sentinelcheck: error code \"orphan\" mapped by writeErr has no reconstruction case in decodeErr; clients get an untyped error",
				"internal/httpapi/api.go:25:7: sentinelcheck: decodeErr handles code \"stale\" that writeErr never emits; dead reconstruction case or missing server mapping",
			},
		},
		{
			// objstore.ErrNotFound and fsapi.ErrNotFound both travel as
			// "not_found" in the real tables; the reconstruction only has to
			// land on one sentinel of the code's alias group.
			name: "alias collapse onto one code is clean",
			fsapi: `package fsapi

import "errors"

var (
	ErrMissing = errors.New("missing")
	ErrLost    = errors.New("lost")
)
`,
			httpapi: `package httpapi

import (
	"errors"

	"github.com/h2cloud/h2cloud/internal/fsapi"
)

func writeErr(err error) (int, string) {
	status, code := 500, "internal"
	switch {
	case errors.Is(err, fsapi.ErrMissing), errors.Is(err, fsapi.ErrLost):
		status, code = 404, "missing"
	}
	return status, code
}

func decodeErr(code string) error {
	var base error
	switch code {
	case "missing":
		base = fsapi.ErrMissing
	}
	return base
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, sentinelcheckAnalyzer, map[string]string{
				"internal/fsapi/fsapi.go": tc.fsapi,
				"internal/httpapi/api.go": tc.httpapi,
			})
			expectDiags(t, got, tc.want)
		})
	}
}
