package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one invariant checker. Run inspects one unit via the Pass;
// RunProgram inspects the whole typed module at once via the ProgramPass.
// An analyzer may have either or both: sentinelcheck, for example, checks
// local comparison idioms per unit and table consistency program-wide.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

func allAnalyzers() []*Analyzer {
	return []*Analyzer{
		virtualtimeAnalyzer, mapiterAnalyzer, lockcheckAnalyzer, droppederrAnalyzer, backoffcheckAnalyzer,
		costcheckAnalyzer, lockorderAnalyzer, sentinelcheckAnalyzer,
		guardcheckAnalyzer, leakcheckAnalyzer, alloccheckAnalyzer,
		poolcheckAnalyzer, ctxcheckAnalyzer, atomiccheckAnalyzer, deadignoreAnalyzer,
	}
}

// Diagnostic is one finding, formatted as path:line:col: rule: message.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Pass carries one unit through the analyzers.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	PkgPath    string
	ModulePath string
	Info       *types.Info

	rule    string
	ignores map[string]map[int]map[string]bool // file -> line -> rule set
	used    map[string]map[int]map[string]bool // directives that suppressed something
	diags   *[]Diagnostic
}

// Reportf records a diagnostic unless an ignore directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if file, line, rule, ok := ignoreMatch(p.ignores, p.rule, position); ok {
		markUsed(p.used, file, line, rule)
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: position, Rule: p.rule, Msg: fmt.Sprintf(format, args...)})
}

// RelPkgPath is the package path relative to the module root ("" for the
// module root itself).
func (p *Pass) RelPkgPath() string {
	if p.PkgPath == p.ModulePath {
		return ""
	}
	return strings.TrimPrefix(p.PkgPath, p.ModulePath+"/")
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ProgramPass carries the whole typed module through a whole-program
// analyzer. Reporting is restricted to the files of the analysis units
// the command-line patterns selected, so `h2vet ./internal/cluster` never
// surfaces findings in unrelated directories even though whole-program
// rules always inspect the full module.
type ProgramPass struct {
	Prog *Program

	rule     string
	ignores  map[string]map[int]map[string]bool
	used     map[string]map[int]map[string]bool
	analyzed map[string]bool // filenames eligible for reporting; nil = all
	diags    *[]Diagnostic
	mu       *sync.Mutex
}

// Reportf records a diagnostic unless an ignore directive suppresses it
// or the position lies outside the analyzed file set.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfAt(p.Prog.fset.Position(pos), format, args...)
}

// ReportfAt is Reportf for an already-resolved source position.
func (p *ProgramPass) ReportfAt(position token.Position, format string, args ...any) {
	if p.analyzed != nil && !p.analyzed[position.Filename] {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if file, line, rule, ok := ignoreMatch(p.ignores, p.rule, position); ok {
		markUsed(p.used, file, line, rule)
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: position, Rule: p.rule, Msg: fmt.Sprintf(format, args...)})
}

// ignoreMatch finds the "//h2vet:ignore" directive suppressing a rule
// diagnostic at pos — on the same line or the line above — and returns
// the directive's location and the rule name it was written with ("all"
// when a blanket directive matched), so the caller can record the
// directive as live.
func ignoreMatch(ignores map[string]map[int]map[string]bool, rule string, pos token.Position) (string, int, string, bool) {
	lines := ignores[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		switch rules := lines[line]; {
		case rules[rule]:
			return pos.Filename, line, rule, true
		case rules["all"]:
			return pos.Filename, line, "all", true
		}
	}
	return "", 0, "", false
}

// markUsed records that the directive at file:line for rule suppressed a
// diagnostic. Usage feeds the deadignore rule: directives that never
// suppress anything are themselves findings.
func markUsed(used map[string]map[int]map[string]bool, file string, line int, rule string) {
	if used == nil {
		return
	}
	lines := used[file]
	if lines == nil {
		lines = map[int]map[string]bool{}
		used[file] = lines
	}
	rules := lines[line]
	if rules == nil {
		rules = map[string]bool{}
		lines[line] = rules
	}
	rules[rule] = true
}

func runAnalyzers(u *unit, analyzers []*Analyzer) ([]Diagnostic, map[string]map[int]map[string]bool) {
	var diags []Diagnostic
	ignores := map[string]map[int]map[string]bool{}
	collectIgnores(u, ignores)
	used := map[string]map[int]map[string]bool{}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:       u.fset,
			Files:      u.files,
			PkgPath:    u.pkgPath,
			ModulePath: u.module,
			Info:       u.info,
			rule:       a.Name,
			ignores:    ignores,
			used:       used,
			diags:      &diags,
		}
		a.Run(pass)
	}
	return diags, used
}

// programIgnores gathers //h2vet:ignore directives across every loaded
// unit — whole-program rules report anywhere in the module, so their
// suppression table must span it too.
func programIgnores(prog *Program) map[string]map[int]map[string]bool {
	ignores := map[string]map[int]map[string]bool{}
	for _, u := range prog.source {
		collectIgnores(u, ignores)
	}
	for _, u := range prog.units {
		collectIgnores(u, ignores)
	}
	return ignores
}

// analyzedFiles is the set of filenames belonging to the analysis units
// the command-line patterns selected; findings elsewhere are dropped.
func analyzedFiles(prog *Program) map[string]bool {
	analyzed := map[string]bool{}
	for _, u := range prog.units {
		for _, f := range u.files {
			analyzed[prog.fset.Position(f.Pos()).Filename] = true
		}
	}
	return analyzed
}

// runProgramAnalyzers runs the whole-program half of each analyzer over
// the shared typed module. ignores and the analyzed-file set span every
// loaded unit so suppression directives work identically for both kinds
// of rule.
func runProgramAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, map[string]map[int]map[string]bool) {
	ignores := programIgnores(prog)
	analyzed := analyzedFiles(prog)
	used := map[string]map[int]map[string]bool{}
	var diags []Diagnostic
	var mu sync.Mutex
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		a.RunProgram(&ProgramPass{
			Prog:     prog,
			rule:     a.Name,
			ignores:  ignores,
			used:     used,
			analyzed: analyzed,
			diags:    &diags,
			mu:       &mu,
		})
	}
	return diags, used
}

// collectIgnores gathers //h2vet:ignore directives per file and line into
// the shared table.
func collectIgnores(u *unit, out map[string]map[int]map[string]bool) {
	for _, f := range u.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				pos := u.fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[pos.Line] = rules
				}
				rules[rule] = true
			}
		}
	}
}

// parseIgnoreDirective parses one comment's text as an
// "//h2vet:ignore <rule> <reason>" directive, returning the suppressed
// rule name. The reason is free text and not interpreted.
func parseIgnoreDirective(text string) (rule string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//h2vet:ignore")
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// splitRules splits a -rules flag value into trimmed rule names. Empty
// segments are preserved so the caller can report them as unknown rules
// rather than silently dropping typos like "a,,b".
func splitRules(s string) []string {
	parts := strings.Split(s, ",")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	return parts
}

// exprText renders an identifier or selector chain ("b.mu", "s.reg").
// Non-chain expressions render as "".
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprText(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	}
	return ""
}

// calleeName returns the rightmost name of a call's function expression
// ("Sort" for slices.Sort, "Lock" for b.mu.Lock).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// pkgQualifier resolves the package a selector call is qualified with
// ("time" for time.Now()), or "" when the call is not package-qualified.
// When type information is incomplete it falls back to matching the
// identifier against the enclosing file's imports.
func (p *Pass) pkgQualifier(f *ast.File, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // resolved to a value, not a package
	}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndexByte(path, '/')+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// funcBodies yields every function body in the file along with its
// declaration-level context: FuncDecls and FuncLits are separate units
// (defer scopes differ).
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// inspectShallow walks n but does not descend into nested function
// literals, so per-function analyses stay within one defer scope.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}
