// Command h2vet is H2Cloud's repo-specific static-analysis pass. It
// enforces the determinism and locking invariants the simulator's
// evaluation depends on (DESIGN.md, "Determinism & concurrency
// invariants"):
//
//	virtualtime   no time.Now/time.Since/time.Sleep inside internal/
//	              packages; wall-clock flows through internal/vclock or
//	              an injected clock
//	mapiter       no order-sensitive use (append without a later sort,
//	              encode, hash, write, broadcast, channel send) of a
//	              map iteration
//	lockcheck     mu.Lock() must be paired with defer mu.Unlock() in the
//	              same function, and no handler/callback/Broadcast-like
//	              calls while a lock is held
//	droppederr    error results of internal/core Decode*/Encode* and
//	              objstore/cluster Put/Get/Delete must not be discarded
//	backoffcheck  no time.Sleep/time.After/timer waits inside loops in
//	              internal/ packages; retry backoff is charged to
//	              internal/vclock, never the wall clock
//	costcheck     every objstore.Store implementation reaches
//	              vclock.Charge on its success paths, and wrappers that
//	              delegate to an inner Store do not double-charge
//	lockorder     the static lock-acquisition graph (mutex held -> mutex
//	              acquired, propagated through the call graph) must be
//	              acyclic with no same-mutex re-entry
//	sentinelcheck typed Err* sentinels are compared with errors.Is (never
//	              == / != or string matching), wrapped with %w, and every
//	              sentinel crossing internal/httpapi appears in both the
//	              server status table and the client reconstruction table
//
// The first five rules are per-unit and syntactic; the last three are
// whole-program: h2vet loads and type-checks the entire module once into
// a shared typed universe, builds a CHA-style call graph over go/types,
// and runs the analyzers in parallel over it.
//
// h2vet is built only on the standard library (go/ast, go/parser,
// go/types with the source importer), preserving the repo's
// no-external-dependencies rule. A diagnostic can be suppressed with a
// line directive on the flagged line or the line above it:
//
//	//h2vet:ignore <rule> <reason>
//
// Findings can be emitted as JSON (-json) and gated against a committed
// baseline (-baseline h2vet.baseline.json): all findings are printed, but
// only findings absent from the baseline affect the exit code.
//
// Usage: go run ./cmd/h2vet [-rules a,b] [-json] [-baseline file] [patterns...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one diagnostic. The baseline file
// is a JSON array of the same shape; col is ignored when matching against
// a baseline so unrelated edits above a tolerated finding don't re-open
// it (file+rule+msg identifies a finding; line drifts too easily).
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (f jsonFinding) key() string {
	return f.File + "\x00" + f.Rule + "\x00" + f.Msg
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("h2vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	debug := fs.Bool("debug", false, "print loader and type-checker warnings")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := fs.String("baseline", "", "JSON baseline file; findings present in it do not affect the exit code")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := allAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rulesFlag != "" {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var keep []*Analyzer
		for _, r := range splitRules(*rulesFlag) {
			a, ok := byName[r]
			if !ok {
				fmt.Fprintf(stderr, "h2vet: unknown rule %q\n", r)
				return 2
			}
			keep = append(keep, a)
		}
		analyzers = keep
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, warnings, err := load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "h2vet: %v\n", err)
		return 2
	}
	if *debug {
		for _, w := range warnings {
			fmt.Fprintf(stderr, "h2vet: warning: %s\n", w)
		}
	}

	diags := runAll(prog, analyzers)

	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "h2vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}

	baseline := map[string]bool{}
	if *baselinePath != "" {
		baseline, err = loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "h2vet: %v\n", err)
			return 2
		}
	}
	fresh := 0
	for _, d := range diags {
		f := jsonFinding{File: d.Pos.Filename, Rule: d.Rule, Msg: d.Msg}
		if !baseline[f.key()] {
			fresh++
		}
	}
	if known := len(diags) - fresh; known > 0 {
		fmt.Fprintf(stderr, "h2vet: %d finding(s) matched the baseline\n", known)
	}
	if fresh > 0 {
		fmt.Fprintf(stderr, "h2vet: %d new finding(s)\n", fresh)
		return 1
	}
	return 0
}

// runAll runs the per-unit half of each analyzer concurrently across
// units, and the whole-program half over the shared typed module, then
// merges and sorts. Per-unit results land in preassigned slots so the
// final ordering is independent of goroutine scheduling.
func runAll(prog *Program, analyzers []*Analyzer) []Diagnostic {
	perUnit := make([][]Diagnostic, len(prog.units))
	var wg sync.WaitGroup
	for i, u := range prog.units {
		wg.Add(1)
		go func() {
			defer wg.Done()
			perUnit[i] = runAnalyzers(u, analyzers)
		}()
	}
	progDiags := runProgramAnalyzers(prog, analyzers)
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perUnit {
		diags = append(diags, d...)
	}
	diags = append(diags, progDiags...)
	sortDiagnostics(diags)
	return diags
}

// writeJSON emits the diagnostics as a sorted JSON array ([] when empty).
func writeJSON(w io.Writer, diags []Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Msg: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// loadBaseline reads a -json findings file into a lookup set.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	set := make(map[string]bool, len(findings))
	for _, f := range findings {
		set[f.key()] = true
	}
	return set, nil
}
