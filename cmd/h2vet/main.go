// Command h2vet is H2Cloud's repo-specific static-analysis pass. It
// enforces the determinism and locking invariants the simulator's
// evaluation depends on (DESIGN.md, "Determinism & concurrency
// invariants"):
//
//	virtualtime  no time.Now/time.Since/time.Sleep inside internal/
//	             packages; wall-clock flows through internal/vclock or
//	             an injected clock
//	mapiter      no order-sensitive use (append without a later sort,
//	             encode, hash, write, broadcast, channel send) of a
//	             map iteration
//	lockcheck    mu.Lock() must be paired with defer mu.Unlock() in the
//	             same function, and no handler/callback/Broadcast-like
//	             calls while a lock is held
//	droppederr   error results of internal/core Decode*/Encode* and
//	             objstore/cluster Put/Get/Delete must not be discarded
//	backoffcheck no time.Sleep/time.After/timer waits inside loops in
//	             internal/ packages; retry backoff is charged to
//	             internal/vclock, never the wall clock
//
// h2vet is built only on the standard library (go/ast, go/parser,
// go/types with the source importer), preserving the repo's
// no-external-dependencies rule. A diagnostic can be suppressed with a
// line directive on the flagged line or the line above it:
//
//	//h2vet:ignore <rule> <reason>
//
// Usage: go run ./cmd/h2vet [-rules a,b] [patterns...] (default ./...)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("h2vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	debug := fs.Bool("debug", false, "print loader and type-checker warnings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := allAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rulesFlag != "" {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var keep []*Analyzer
		for _, r := range strings.Split(*rulesFlag, ",") {
			a, ok := byName[strings.TrimSpace(r)]
			if !ok {
				fmt.Fprintf(stderr, "h2vet: unknown rule %q\n", strings.TrimSpace(r))
				return 2
			}
			keep = append(keep, a)
		}
		analyzers = keep
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, warnings, err := load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "h2vet: %v\n", err)
		return 2
	}
	if *debug {
		for _, w := range warnings {
			fmt.Fprintf(stderr, "h2vet: warning: %s\n", w)
		}
	}

	var diags []Diagnostic
	for _, u := range units {
		diags = append(diags, runAnalyzers(u, analyzers)...)
	}
	sortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "h2vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
